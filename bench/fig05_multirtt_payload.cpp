// Figure 5: payload exchanged during multi-RTT handshakes, split into
// TLS payload and remaining QUIC bytes, ranked by received volume.
#include <algorithm>

#include "common.hpp"
#include "core/census.hpp"

int main() {
  using namespace certquic;
  bench::header("Figure 5", "payload exchanged during multi-RTT handshakes");

  const auto cfg = bench::population_config();
  const auto& model = bench::shared_model();
  core::census_options opt;
  opt.initial_size = 1362;
  opt.max_services = bench::sample_cap(3000);
  const auto census = core::run_census(model, opt);

  auto rows = census.multi_rtt_payload;  // (total received, TLS-only)
  std::sort(rows.begin(), rows.end());
  const std::size_t limit = 3 * 1362;

  text_table table({"rank", "received [B]", "TLS-only [B]", "QUIC rest [B]",
                    "TLS alone > 3x limit?"});
  const std::size_t steps = 12;
  for (std::size_t i = 0; i < steps && !rows.empty(); ++i) {
    const std::size_t idx =
        i * (rows.size() - 1) / (steps > 1 ? steps - 1 : 1);
    const auto& [total, tls] = rows[idx];
    table.add_row({std::to_string(idx), std::to_string(total),
                   std::to_string(tls), std::to_string(total - tls),
                   tls > limit ? "yes" : "no"});
  }
  std::printf("%s", table.render().c_str());

  const double exceeding =
      rows.empty() ? 0.0
                   : static_cast<double>(census.multi_tls_exceeding_limit) /
                         static_cast<double>(rows.size());
  std::printf(
      "\nTLS payload alone exceeds the 3x limit for %.1f%% of multi-RTT "
      "handshakes (paper: 87%%).\nMaximum remaining QUIC bytes: %zu "
      "(paper annotation: 27461 at 1M scale).\n",
      exceeding * 100.0, census.max_non_tls_bytes);
  bench::footnote_scale(cfg);
  return 0;
}
