// Figure 9 + §4.3 active scans: QUIC amplification factors when clients
// never acknowledge (spoofed sources observed at a telescope), per
// hypergiant, plus the Meta /24 single-Initial probe groups.
#include "common.hpp"
#include "core/amplification_study.hpp"

int main() {
  using namespace certquic;
  bench::header("Figure 9",
                "amplification for unanswered handshakes (telescope + scans)");

  const auto cfg = bench::population_config();
  const auto& model = bench::shared_model();

  core::spoofed_options opt;
  opt.sessions_per_provider = bench::sample_cap(120);
  const auto telescope = core::run_telescope_study(model, opt);

  for (const auto& [provider, samples] : telescope.amplification) {
    bench::print_cdf(provider.c_str(), samples, 11, 1);
  }
  std::printf(
      "\nPaper: Cloudflare/Google mostly below 10x; Meta up to 45x. "
      "Measured Meta max: %.1fx.\nMeta backscatter sessions: median %.0f s, "
      "max %.0f s (paper: ~51 s / 206 s).\n",
      telescope.meta_max_amplification,
      telescope.meta_session_duration_s.empty()
          ? 0.0
          : telescope.meta_session_duration_s.median(),
      telescope.meta_session_duration_s.empty()
          ? 0.0
          : telescope.meta_session_duration_s.max());

  // §4.3 active confirmation: the three host groups of the Meta /24.
  std::printf("\nActive /24 scan (single 1252-byte Initial, no ACKs):\n");
  const auto rows = core::run_meta_scan(model, /*post_disclosure=*/false, 2);
  std::size_t group1 = 0;
  stats::sample_set group2;
  stats::sample_set group3;
  for (const auto& row : rows) {
    if (!row.responded) {
      ++group1;
    } else if (row.amplification.mean() > 15.0) {
      group3.add(static_cast<double>(row.bytes_received));
    } else {
      group2.add(static_cast<double>(row.bytes_received));
    }
  }
  std::printf(
      "  group 1: %zu hosts with no QUIC response (<=150 B)\n"
      "  group 2: %zu hosts, ~%.0f B responses (~%.1fx) — facebook.com "
      "front-ends\n"
      "  group 3: %zu hosts, ~%.0f B responses (~%.1fx) — instagram/"
      "whatsapp\n",
      group1, group2.size(), group2.empty() ? 0.0 : group2.median(),
      group2.empty() ? 0.0 : group2.median() / 1252.0, group3.size(),
      group3.empty() ? 0.0 : group3.median(),
      group3.empty() ? 0.0 : group3.median() / 1252.0);
  std::printf(
      "  (paper: no response / ~7 kB at >5x / ~35 kB at >28x)\n");
  bench::footnote_scale(cfg);
  return 0;
}
