// Table 1: browser Initial sizes and TLS certificate-compression
// support, plus the compression rates and service-support shares our
// scans measure.
#include "common.hpp"
#include "core/browsers.hpp"
#include "core/compression_study.hpp"

int main() {
  using namespace certquic;
  bench::header("Table 1", "browser Initial sizes and compression support");

  const auto cfg = bench::population_config();
  const auto& model = bench::shared_model();
  core::compression_options opt;
  opt.max_chains = bench::sample_cap(1500);
  opt.max_probes = bench::sample_cap(400);
  const auto study = core::run_compression_study(model, opt);

  text_table table({"Browser", "Version", "Init. size [B]", "Algorithms"});
  for (const auto& browser : core::browser_profiles()) {
    std::string algorithms;
    for (const auto alg : browser.compression) {
      if (!algorithms.empty()) {
        algorithms += ", ";
      }
      algorithms += compress::to_string(alg);
    }
    table.add_row({browser.name, browser.version,
                   browser.initial_size
                       ? std::to_string(*browser.initial_size)
                       : "no QUIC",
                   algorithms.empty() ? "-" : algorithms});
  }
  std::printf("%s", table.render().c_str());

  std::printf("\nMeasured compression rates on served chains:\n");
  static const char* kNames[] = {"brotli", "zlib", "zstd"};
  static const char* kPaper[] = {"73%", "74%", "72%"};
  for (int a = 0; a < 3; ++a) {
    const auto& samples = study.synthetic_savings[static_cast<std::size_t>(a)];
    std::printf("  %-7s mean rate %5.1f%%  (paper: %s)\n", kNames[a],
                samples.mean() * 100.0, kPaper[a]);
  }
  std::printf(
      "\nService support: brotli %.1f%% (paper: 96%%), all three "
      "algorithms %.2f%% (paper: 0.05%%, Meta).\n",
      study.support_brotli * 100.0, study.support_all_three * 100.0);
  bench::footnote_scale(cfg);
  return 0;
}
