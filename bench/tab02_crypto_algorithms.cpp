// Table 2: relative ratio of crypto algorithms and key lengths in use,
// for leaf and non-leaf certificates of QUIC vs HTTPS-only services.
// Paper: HTTPS-only depends heavily on RSA.
#include "common.hpp"
#include "core/certificates.hpp"

int main() {
  using namespace certquic;
  bench::header("Table 2", "crypto algorithms and key lengths in use");

  const auto cfg = bench::population_config();
  const auto& model = bench::shared_model();
  const auto corpus =
      core::analyze_corpus(model, {.max_services = bench::sample_cap(8000)});

  text_table table({"Service", "Certificate", "RSA-2048", "RSA-4096",
                    "ECDSA-256", "ECDSA-384"});
  static const char* kSides[] = {"QUIC", "HTTPS-only"};
  static const char* kRoles[] = {"Leaf", "Non-leaf"};
  for (int side = 0; side < 2; ++side) {
    for (int role = 1; role >= 0; --role) {  // paper lists non-leaf first
      const auto& counts =
          corpus.alg_counts[static_cast<std::size_t>(side)]
                           [static_cast<std::size_t>(role == 0 ? 0 : 1)];
      std::size_t total = 0;
      for (const auto count : counts) {
        total += count;
      }
      std::vector<std::string> row = {kSides[side], kRoles[role == 0 ? 0 : 1]};
      for (const auto count : counts) {
        row.push_back(total == 0 ? "-"
                                 : pct(static_cast<double>(count) /
                                       static_cast<double>(total), 1));
      }
      table.add_row(std::move(row));
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nPaper (QUIC non-leaf): 15.1 / 22.4 / 40.4 / 22.1 %%; (HTTPS-only "
      "leaf): 81.4 / 8.1 / 7.8 / 1.9 %%.\nPaper: certificates delivered "
      "by QUIC servers use more efficient crypto algorithms.\n");
  bench::footnote_scale(cfg);
  return 0;
}
