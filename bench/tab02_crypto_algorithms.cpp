// Table 2: relative ratio of crypto algorithms and key lengths in use,
// for leaf and non-leaf certificates of QUIC vs HTTPS-only services.
// Paper: HTTPS-only depends heavily on RSA.
//
// CERTQUIC_PQ_PROFILE=classical|pqc_leaf|pqc_full materializes the
// corpus under a PQC chain profile; the ML-DSA columns appear only
// when that switch actually put post-quantum certificates in the
// corpus, so the default run renders the published four-column table.
#include "common.hpp"
#include "core/certificates.hpp"

int main() {
  using namespace certquic;
  bench::header("Table 2", "crypto algorithms and key lengths in use");

  const auto cfg = bench::population_config();
  const auto& model = bench::shared_model();
  core::corpus_options copt;
  copt.max_services = bench::sample_cap(8000);
  if (const char* profile = std::getenv("CERTQUIC_PQ_PROFILE");
      profile != nullptr && *profile != '\0') {
    try {
      copt.profile = x509::parse_pq_profile(profile);
    } catch (const config_error& e) {
      std::fprintf(stderr,
                   "tab02_crypto_algorithms: %s (expected classical, "
                   "pqc_leaf or pqc_full)\n",
                   e.what());
      return 2;
    }
  }
  const auto corpus = core::analyze_corpus(model, copt);

  std::size_t classes = core::kClassicalAlgClasses;
  for (const auto& side : corpus.alg_counts) {
    for (const auto& role : side) {
      for (std::size_t a = core::kClassicalAlgClasses; a < core::kAlgClasses;
           ++a) {
        if (role[a] > 0) {
          classes = core::kAlgClasses;
        }
      }
    }
  }

  std::vector<std::string> headers = {"Service", "Certificate"};
  for (std::size_t a = 0; a < classes; ++a) {
    headers.push_back(core::alg_class_names()[a]);
  }
  text_table table(std::move(headers));
  static const char* kSides[] = {"QUIC", "HTTPS-only"};
  static const char* kRoles[] = {"Leaf", "Non-leaf"};
  for (int side = 0; side < 2; ++side) {
    for (int role = 1; role >= 0; --role) {  // paper lists non-leaf first
      const auto& counts =
          corpus.alg_counts[static_cast<std::size_t>(side)]
                           [static_cast<std::size_t>(role == 0 ? 0 : 1)];
      std::size_t total = 0;
      for (const auto count : counts) {
        total += count;
      }
      std::vector<std::string> row = {kSides[side], kRoles[role == 0 ? 0 : 1]};
      for (std::size_t a = 0; a < classes; ++a) {
        row.push_back(total == 0 ? "-"
                                 : pct(static_cast<double>(counts[a]) /
                                       static_cast<double>(total), 1));
      }
      table.add_row(std::move(row));
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nPaper (QUIC non-leaf): 15.1 / 22.4 / 40.4 / 22.1 %%; (HTTPS-only "
      "leaf): 81.4 / 8.1 / 7.8 / 1.9 %%.\nPaper: certificates delivered "
      "by QUIC servers use more efficient crypto algorithms.\n");
  bench::footnote_scale(cfg);
  return 0;
}
