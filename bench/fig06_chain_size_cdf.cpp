// Figure 6: distribution of certificate chain sizes grouped by QUIC
// support. Paper: QUIC median 2329 B vs HTTPS-only 4022 B; 35% of all
// chains exceed 3x1357 = 4071 B; tails reach 18162 / 38059 B.
#include "common.hpp"
#include "core/certificates.hpp"

int main() {
  using namespace certquic;
  bench::header("Figure 6", "certificate chain sizes by QUIC support");

  const auto cfg = bench::population_config();
  const auto& model = bench::shared_model();
  const auto corpus =
      core::analyze_corpus(model, {.max_services = bench::sample_cap(8000)});

  bench::print_cdf("QUIC services", corpus.quic_chain_sizes, 13);
  bench::print_cdf("HTTPS-only services", corpus.https_chain_sizes, 13);

  std::printf("\n%-28s %10s %10s\n", "", "paper", "measured");
  std::printf("%-28s %10s %10.0f\n", "QUIC median [B]", "2329",
              corpus.quic_chain_sizes.median());
  std::printf("%-28s %10s %10.0f\n", "HTTPS-only median [B]", "4022",
              corpus.https_chain_sizes.median());
  std::printf("%-28s %10s %9.1f%%\n", "all chains > 3x1357", "35%",
              corpus.all_chains_over_4071 * 100.0);
  std::printf("%-28s %10s %10.0f\n", "QUIC tail max [B]", "18162",
              corpus.quic_chain_sizes.max());
  std::printf("%-28s %10s %10.0f\n", "HTTPS-only tail max [B]", "38059",
              corpus.https_chain_sizes.max());
  std::printf(
      "\nPaper: domains without QUIC support will be affected negatively "
      "when they adopt QUIC\nand keep their existing (larger) "
      "certificates.\n");
  bench::footnote_scale(cfg);
  return 0;
}
