// Figure 14 (Appendix E): relative size of subject alternative names in
// QUIC leaf certificates — "cruise-liner" certificates are rare.
// Paper quadrants: 99% / 0.9% / 0.1% / 0%.
#include "common.hpp"
#include "core/certificates.hpp"

int main() {
  using namespace certquic;
  bench::header("Figure 14", "SAN byte share of QUIC leaf certificates");

  const auto cfg = bench::population_config();
  const auto& model = bench::shared_model();
  const auto corpus =
      core::analyze_corpus(model, {.max_services = bench::sample_cap(8000)});

  bench::print_cdf("SAN byte share of leaf certificates",
                   corpus.san_shares, 11, 3);

  const auto total = static_cast<double>(
      corpus.quadrant_small_low + corpus.quadrant_small_high +
      corpus.quadrant_large_low + corpus.quadrant_large_high);
  auto q = [&](std::size_t v) {
    return total == 0.0 ? 0.0 : 100.0 * static_cast<double>(v) / total;
  };
  std::printf(
      "\nQuadrants (thresholds: leaf size 3x1357 B, SAN share p99 = "
      "%.1f%%):\n",
      corpus.san_share_p99 * 100.0);
  std::printf("  small leaf, low SAN share : %6.2f%%   (paper: 99%%)\n",
              q(corpus.quadrant_small_low));
  std::printf("  small leaf, high SAN share: %6.2f%%   (paper: 0.9%%)\n",
              q(corpus.quadrant_small_high));
  std::printf("  large leaf, high SAN share: %6.2f%%   (paper: 0.1%%)\n",
              q(corpus.quadrant_large_high));
  std::printf("  large leaf, low SAN share : %6.2f%%   (paper: 0%%)\n",
              q(corpus.quadrant_large_low));
  std::printf(
      "\nPaper: most SANs amount to <10%% of leaf bytes; cruise-liner "
      "certificates are rare for QUIC.\n");
  bench::footnote_scale(cfg);
  return 0;
}
