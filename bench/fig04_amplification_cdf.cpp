// Figure 4: amplification factor during the first RTT for complete
// client handshakes (paper: relatively small, below ~6x; 165k services).
#include "common.hpp"
#include "core/census.hpp"

int main() {
  using namespace certquic;
  bench::header("Figure 4", "first-RTT amplification factor CDF");

  const auto cfg = bench::population_config();
  const auto& model = bench::shared_model();
  core::census_options opt;
  opt.initial_size = 1362;
  opt.max_services = bench::sample_cap(3000);
  const auto census = core::run_census(model, opt);

  bench::print_cdf("Recv. UDP payload during first RTT [amplification factor]",
                   census.first_burst_amplification, 13, 2);
  std::printf(
      "\nPaper: the factor exceeds 3x for the majority of handshakes but "
      "remains below ~6x.\nMeasured: median %.2fx, p99 %.2fx, max %.2fx "
      "(over %zu completing handshakes).\n",
      census.first_burst_amplification.median(),
      census.first_burst_amplification.quantile(0.99),
      census.first_burst_amplification.max(),
      census.first_burst_amplification.size());
  std::printf(
      "Cloudflare attribution (§4.1): %.1f%% of amplifying handshakes "
      "(paper: 96%%);\nconstant superfluous padding on those: %.0f bytes "
      "(paper: 2462).\n",
      census.amplifying == 0
          ? 0.0
          : 100.0 * static_cast<double>(census.amplifying_cloudflare) /
                static_cast<double>(census.amplifying),
      census.cloudflare_padding.empty() ? 0.0
                                        : census.cloudflare_padding.median());
  bench::footnote_scale(cfg);
  return 0;
}
