// google-benchmark micro-benchmarks for the library's hot paths:
// DER encoding, LZ compression, QUIC packet (de)coding and full
// simulated handshakes.
#include <benchmark/benchmark.h>

#include "ca/ecosystem.hpp"
#include "compress/codec.hpp"
#include "net/simulator.hpp"
#include "quic/client.hpp"
#include "quic/server.hpp"
#include "quic/varint.hpp"
#include "tls/handshake.hpp"

namespace {

using namespace certquic;

void BM_VarintEncode(benchmark::State& state) {
  rng r{1};
  std::vector<std::uint64_t> values(1024);
  for (auto& v : values) {
    v = r.uniform(0, quic::kVarintMax);
  }
  for (auto _ : state) {
    buffer_writer w;
    for (const auto v : values) {
      quic::write_varint(w, v);
    }
    benchmark::DoNotOptimize(w.view().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(values.size()));
}
BENCHMARK(BM_VarintEncode);

void BM_CertificateIssue(benchmark::State& state) {
  auto eco = ca::ecosystem::make();
  const auto& profile = eco.profile("le-r3-x1cross");
  rng r{2};
  for (auto _ : state) {
    const auto chain = eco.issue(profile, "bench.example", r);
    benchmark::DoNotOptimize(chain.wire_size());
  }
}
BENCHMARK(BM_CertificateIssue);

void BM_LzCompressChain(benchmark::State& state) {
  auto eco = ca::ecosystem::make();
  rng r{3};
  const auto chain = eco.issue(eco.profile("le-r3-x1cross"), "z.example", r);
  const bytes payload = chain.concatenated_der();
  const compress::codec codec{compress::algorithm::brotli,
                              eco.compression_dictionary()};
  for (auto _ : state) {
    const bytes compressed = codec.compress(payload);
    benchmark::DoNotOptimize(compressed.size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_LzCompressChain);

void BM_LzRoundTrip(benchmark::State& state) {
  auto eco = ca::ecosystem::make();
  rng r{4};
  const auto chain = eco.issue(eco.profile("cloudflare"), "rt.example", r);
  const bytes payload = chain.concatenated_der();
  const compress::codec codec{compress::algorithm::zstd,
                              eco.compression_dictionary()};
  for (auto _ : state) {
    const bytes compressed = codec.compress(payload);
    const bytes restored = codec.decompress(compressed);
    benchmark::DoNotOptimize(restored.size());
  }
}
BENCHMARK(BM_LzRoundTrip);

void BM_ServerFlightBuild(benchmark::State& state) {
  auto eco = ca::ecosystem::make();
  rng r{5};
  const auto chain = eco.issue(eco.profile("sectigo"), "f.example", r);
  for (auto _ : state) {
    const auto flight = tls::build_server_flight(chain, nullptr, r);
    benchmark::DoNotOptimize(flight.total_size());
  }
}
BENCHMARK(BM_ServerFlightBuild);

void BM_FullHandshake(benchmark::State& state) {
  auto eco = ca::ecosystem::make();
  rng r{6};
  auto chain = eco.issue(eco.profile("cloudflare"), "hs.example", r);
  const net::endpoint_id server_ep{net::ipv4::of(192, 0, 2, 9), 443};
  const net::endpoint_id client_ep{net::ipv4::of(10, 0, 0, 9), 55555};
  for (auto _ : state) {
    net::simulator sim;
    quic::server srv{sim, server_ep, chain,
                     quic::server_behavior::cloudflare(), {}, 7};
    quic::client cli{sim, client_ep, server_ep,
                     {.initial_size = 1362}, 8};
    cli.start();
    sim.run();
    benchmark::DoNotOptimize(cli.result().bytes_received_total);
  }
}
BENCHMARK(BM_FullHandshake);

void BM_DatagramParse(benchmark::State& state) {
  rng r{9};
  quic::packet p;
  p.type = quic::packet_type::initial;
  p.dcid.resize(8);
  r.fill(p.dcid);
  bytes crypto(900);
  r.fill(crypto);
  p.frames.push_back(quic::crypto_frame{0, crypto});
  std::vector<quic::packet> dgram{p};
  (void)quic::pad_datagram_to(dgram, 1200);
  const bytes wire = quic::encode_datagram(dgram);
  for (auto _ : state) {
    const auto parsed = quic::parse_datagram(wire);
    benchmark::DoNotOptimize(parsed.size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_DatagramParse);

}  // namespace

BENCHMARK_MAIN();
