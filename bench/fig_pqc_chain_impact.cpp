// PQC what-if study: the chain-size (Fig. 6), amplification (Fig. 4)
// and handshake-class analyses re-run under post-quantum chain
// profiles (Chou & Cao: ML-DSA chains vs the QUIC amplification
// budgets). The classical slice reproduces the published numbers;
// pqc_leaf swaps the leaf key for ML-DSA-44, pqc_full serves ML-DSA
// keys and signatures on every certificate.
#include "common.hpp"
#include "core/pqc_study.hpp"
#include "util/text_table.hpp"

int main() {
  using namespace certquic;
  bench::header("PQC study",
                "post-quantum chain profiles vs QUIC handshake performance");

  const auto cfg = bench::population_config();
  const auto& model = bench::shared_model();
  core::pqc_options opt;
  opt.max_services = bench::sample_cap(4000);
  opt.max_corpus = bench::sample_cap(4000);
  const auto study = core::run_pqc_study(model, opt);

  for (const auto& slice : study.slices) {
    bench::print_cdf(
        ("chain sizes [B], QUIC services — " + x509::to_string(slice.profile))
            .c_str(),
        slice.quic_chain_sizes, 9);
  }

  std::printf("\n");
  text_table sizes({"profile", "QUIC med [B]", "HTTPS med [B]", "QUIC max [B]",
                    "> 3x1357", "amp med", "amp p99"});
  for (const auto& slice : study.slices) {
    sizes.add_row(
        {x509::to_string(slice.profile),
         fixed(slice.quic_chain_sizes.median(), 0),
         fixed(slice.https_chain_sizes.median(), 0),
         fixed(slice.quic_chain_sizes.max(), 0),
         pct(slice.over_amp_limit, 1),
         slice.amplification.empty() ? std::string("-")
                                     : fixed(slice.amplification.median(), 2),
         slice.amplification.empty()
             ? std::string("-")
             : fixed(slice.amplification.quantile(0.99), 2)});
  }
  std::printf("%s", sizes.render().c_str());

  std::printf("\n");
  text_table classes({"profile", "1-RTT", "Multi-RTT", "Amplification",
                      "RETRY", "failed", "d 1-RTT", "d Multi-RTT",
                      "d failed"});
  for (std::size_t i = 0; i < study.slices.size(); ++i) {
    const auto& slice = study.slices[i];
    auto delta = [&](scan::handshake_class c) {
      char buf[16];
      std::snprintf(buf, sizeof buf, "%+lld", study.class_delta(i, c));
      return std::string(buf);
    };
    classes.add_row(
        {x509::to_string(slice.profile),
         std::to_string(slice.count(scan::handshake_class::one_rtt)),
         std::to_string(slice.count(scan::handshake_class::multi_rtt)),
         std::to_string(slice.count(scan::handshake_class::amplification)),
         std::to_string(slice.count(scan::handshake_class::retry)),
         std::to_string(slice.count(scan::handshake_class::unreachable)),
         delta(scan::handshake_class::one_rtt),
         delta(scan::handshake_class::multi_rtt),
         delta(scan::handshake_class::unreachable)});
  }
  std::printf("%s", classes.render().c_str());

  std::printf(
      "\nChou & Cao: post-quantum chains overshoot the QUIC amplification "
      "budgets that this paper's\nclassical chains already strain; every "
      "borderline 1-RTT service goes multi-RTT, and the\n3x1357 limit is "
      "exceeded by most chains once intermediates carry ML-DSA "
      "signatures.\n");
  bench::footnote_scale(cfg);
  return 0;
}
