// Throughput: the certificate-corpus path (per-service chain
// materialization over QUIC and HTTPS, field/size aggregation) through
// the streaming executor. Each sized chain is one probe and one record.
#include "throughput_common.hpp"

#include "core/certificates.hpp"

int main() {
  using namespace certquic;
  bench::header("Throughput: corpus", "chain materialization, size/field "
                                      "aggregation");

  const auto& model = bench::shared_model();
  core::corpus_options opt;
  opt.max_services = bench::sample_cap(0);

  const engine::options exec{};
  const bench::wall_timer timer;
  const auto result = core::analyze_corpus(model, opt, exec);

  const std::size_t chains =
      result.quic_chain_sizes.size() + result.https_chain_sizes.size();
  bench::finish({
      .path = "corpus",
      .probes = chains,
      .records = chains,
      .wall_seconds = timer.seconds(),
      .threads = engine::resolved_threads(exec),
  });
  return 0;
}
