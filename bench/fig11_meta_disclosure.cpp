// Figure 11: mean amplification factors per host octet of the Meta /24
// point-of-presence, before (a) and after (b) the responsible
// disclosure. Paper: heterogeneous up to ~30x before; ~5x mean after.
#include "common.hpp"
#include "core/amplification_study.hpp"

namespace {

void print_panel(const char* title,
                 const std::vector<certquic::core::meta_probe_row>& rows) {
  using namespace certquic;
  std::printf("\n%s\n", title);
  std::printf("  %-6s %-12s %-8s %s\n", "octet", "ampl (CI95)", "dur [s]",
              "services");
  stats::summary responding;
  for (const auto& row : rows) {
    if (!row.responded) {
      continue;
    }
    responding.add(row.amplification.mean());
    std::printf("  %-6d %5.1f ±%4.1f  %-8.1f %s\n", row.host_octet,
                row.amplification.mean(), row.amplification.ci95_half_width(),
                row.duration_s, row.services.c_str());
  }
  std::printf("  -> mean over responding hosts: %.1fx (max %.1fx)\n",
              responding.mean(), responding.max());
}

}  // namespace

int main() {
  using namespace certquic;
  bench::header("Figure 11", "Meta /24 amplification before/after disclosure");

  const auto cfg = bench::population_config();
  const auto& model = bench::shared_model();
  const std::size_t repeats = bench::sample_cap(3);

  print_panel("(a) before disclosure (August 2022)",
              core::run_meta_scan(model, /*post_disclosure=*/false, repeats));
  print_panel("(b) after disclosure (October 2022)",
              core::run_meta_scan(model, /*post_disclosure=*/true, repeats));

  std::printf(
      "\nPaper: significant improvement after disclosure, but with a mean "
      "amplification of ~5x\nthe responses still exceed the RFC 9000 "
      "anti-amplification limit.\n");
  bench::footnote_scale(cfg);
  return 0;
}
