// Figure 13: handshake classification per Tranco rank group at the
// default Initial size of 1362 bytes. Paper: stable across groups,
// except 1-RTT which is more common among the top-100k (3.02%).
#include "common.hpp"
#include "core/census.hpp"

int main() {
  using namespace certquic;
  bench::header("Figure 13", "handshake classification per rank group");

  const auto cfg = bench::population_config();
  const auto& model = bench::shared_model();
  core::census_options opt;
  opt.initial_size = 1362;
  opt.max_services = bench::sample_cap(6000);
  opt.collect_payload_details = false;
  const auto census = core::run_census(model, opt);

  text_table table({"rank group", "Amplification", "Multi-RTT", "RETRY",
                    "1-RTT"});
  constexpr std::size_t kGroups = internet::model::kRankGroups;
  const std::size_t group_span = cfg.domains / kGroups;
  for (std::size_t g = 0; g < kGroups; ++g) {
    const auto& row = census.group_counts[g];
    std::size_t n = 0;
    for (const auto count : row) {
      n += count;
    }
    auto share = [&](scan::handshake_class c) {
      return n == 0 ? 0.0
                    : static_cast<double>(
                          row[static_cast<std::size_t>(c)]) /
                          static_cast<double>(n);
    };
    table.add_row({"[" + std::to_string(g * group_span + 1) + ", " +
                       std::to_string((g + 1) * group_span + 1) + ")",
                   pct(share(scan::handshake_class::amplification)),
                   pct(share(scan::handshake_class::multi_rtt)),
                   pct(share(scan::handshake_class::retry)),
                   pct(share(scan::handshake_class::one_rtt))});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nPaper (top group): 64.18%% / 32.76%% / 0.04%% / 3.02%%; bottom "
      "group: 57.37%% / 42.40%% / 0.06%% / 0.18%%.\n");
  bench::footnote_scale(cfg);
  return 0;
}
