// Longitudinal census: handshake-class shares, amplification and
// certificate-size medians tracked across epochs of one evolving
// population (key rotations, chain migrations, ALPN churn, domain
// arrival/departure), with epoch-over-epoch deltas. The paper's census
// is one snapshot; this figure shows what its repeated-scan service
// reports as the population drifts.
//
// When CERTQUIC_BENCH_JSON names a file, a machine-readable summary
// (per-epoch records/churn/classes + wall time) is written there;
// stdout stays byte-identical either way so the golden diff is
// unaffected.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "common.hpp"
#include "service/census_service.hpp"

namespace {

void write_bench_json(const char* path,
                      const certquic::service::service_result& result,
                      double wall_seconds) {
  using certquic::scan::handshake_class;
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "fig_epoch_deltas: cannot write %s\n", path);
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"epochs\",\n  \"wall_seconds\": %.3f,\n",
               wall_seconds);
  std::fprintf(f, "  \"epochs\": [\n");
  for (std::size_t i = 0; i < result.epochs.size(); ++i) {
    const auto& rep = result.epochs[i];
    std::fprintf(
        f,
        "    {\"epoch\": %llu, \"records\": %zu, \"churn\": %zu, "
        "\"amplification\": %zu, \"multi_rtt\": %zu, \"retry\": %zu, "
        "\"one_rtt\": %zu, \"unreachable\": %zu, "
        "\"ampl_median\": %.3f}%s\n",
        static_cast<unsigned long long>(rep.epoch), rep.aggregate.records,
        rep.churn.total(), rep.aggregate.count(handshake_class::amplification),
        rep.aggregate.count(handshake_class::multi_rtt),
        rep.aggregate.count(handshake_class::retry),
        rep.aggregate.count(handshake_class::one_rtt),
        rep.aggregate.count(handshake_class::unreachable),
        rep.aggregate.first_burst_amplification.empty()
            ? 0.0
            : rep.aggregate.first_burst_amplification.median(),
        i + 1 < result.epochs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  using namespace certquic;
  bench::header("Epoch deltas",
                "longitudinal census over an evolving population");

  const auto cfg = bench::population_config();
  service::service_options opt;
  opt.domains = cfg.domains;
  opt.seed = cfg.seed;
  opt.sample = bench::sample_cap(200);
  opt.shards = 3;
  opt.epochs = bench::env_size("CERTQUIC_EPOCHS", 4);
  opt.store_dir = (std::filesystem::temp_directory_path() /
                   ("certquic_epochs_bench_" + std::to_string(::getpid())))
                      .string();

  const auto wall_start = std::chrono::steady_clock::now();
  const auto result = service::run_epochs(opt);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  {
    std::error_code ec;
    std::filesystem::remove_all(opt.store_dir, ec);
  }

  std::printf("\n%s", service::render_epoch_tables(result).c_str());
  std::printf(
      "\nThe population drifts, the census follows: key rotations and "
      "chain migrations move\nservices across the amplification "
      "boundary, ALPN churn shifts the probed set, and the\ndelta rows "
      "attribute each epoch's class shifts to the churn that caused "
      "them.\n");
  bench::footnote_scale(cfg);

  if (const char* json_path = std::getenv("CERTQUIC_BENCH_JSON")) {
    if (*json_path != '\0') {
      write_bench_json(json_path, result, wall_seconds);
    }
  }
  return 0;
}
