// Figure 7: the top-10 parent certificate chains for QUIC services (a)
// and HTTPS-only services (b): per-chain parent sizes, median/max leaf
// sizes and deployment shares.
#include "common.hpp"
#include "core/certificates.hpp"

namespace {

void print_panel(const char* title, const std::vector<certquic::core::chain_row>& rows,
                 double coverage, const char* paper_coverage) {
  using namespace certquic;
  std::printf("\n%s\n", title);
  text_table table({"#", "share", "parents [B]", "median leaf", "max leaf",
                    "chain"});
  int rank = 1;
  for (const auto& row : rows) {
    std::string parents;
    std::size_t parent_total = 0;
    for (const std::size_t size : row.parent_sizes) {
      if (!parents.empty()) {
        parents += " + ";
      }
      parents += std::to_string(size);
      parent_total += size;
    }
    table.add_row({std::to_string(rank++), pct(row.share),
                   parents + " = " + std::to_string(parent_total),
                   std::to_string(row.median_leaf),
                   std::to_string(row.max_leaf), row.display});
  }
  std::printf("%s", table.render().c_str());
  std::printf("top-10 coverage: %.1f%% (paper: %s)\n", coverage * 100.0,
              paper_coverage);
}

}  // namespace

int main() {
  using namespace certquic;
  bench::header("Figure 7", "top-10 certificate parent chains");

  const auto cfg = bench::population_config();
  const auto& model = bench::shared_model();
  const auto corpus =
      core::analyze_corpus(model, {.max_services = bench::sample_cap(8000)});

  print_panel("(a) QUIC services", corpus.quic_rows,
              corpus.quic_top10_coverage, "96.5%");
  print_panel("(b) HTTPS-only services", corpus.https_rows,
              corpus.https_top10_coverage, "72%");

  std::printf(
      "\nPaper: 7 of 10 QUIC parent chains + median leaf exceed common "
      "amplification limits\n(5 of 10 for HTTPS-only); the shortest "
      "chains are Cloudflare's, and rows 2/3 carry the\ncross-signed "
      "ISRG Root X1 although the self-signed variant is in trust "
      "stores.\n");
  bench::footnote_scale(cfg);
  return 0;
}
