// Shared scaffolding for the bench/throughput_* suite: each binary
// drives one engine path (census, corpus, spill/merge, epochs) through
// the streaming executor at full thread count, times the run, and
// reports probes/sec and records/sec. When CERTQUIC_BENCH_JSON names a
// file, one machine-readable JSON object is written there (one line,
// so tools/verify.sh --bench can assemble the per-path objects into
// one BENCH_throughput.json). Schema per object:
//   {"bench": "throughput", "path": <census|corpus|spill|epochs>,
//    "threads": N, "probes": P, "records": R, "wall_seconds": W,
//    "probes_per_sec": P/W, "records_per_sec": R/W}
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common.hpp"
#include "engine/engine.hpp"

namespace certquic::bench {

/// One timed engine path.
struct throughput_row {
  const char* path = "";        // census | corpus | spill | epochs
  std::size_t probes = 0;       // probe executions (work units)
  std::size_t records = 0;      // records streamed into the sink
  double wall_seconds = 0.0;
  std::size_t threads = 0;
};

class wall_timer {
 public:
  wall_timer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline double per_sec(std::size_t count, double wall_seconds) {
  return wall_seconds > 0.0 ? static_cast<double>(count) / wall_seconds : 0.0;
}

/// Human-readable report on stdout (rates vary run to run — these
/// binaries are deliberately not golden-pinned).
inline void print_throughput(const throughput_row& row) {
  std::printf("\npath=%s threads=%zu\n", row.path, row.threads);
  std::printf("  probes : %10zu  (%12.0f/sec)\n", row.probes,
              per_sec(row.probes, row.wall_seconds));
  std::printf("  records: %10zu  (%12.0f/sec)\n", row.records,
              per_sec(row.records, row.wall_seconds));
  std::printf("  wall   : %10.3f s\n", row.wall_seconds);
}

/// One-line JSON object to $CERTQUIC_BENCH_JSON, if set.
inline void write_throughput_json(const throughput_row& row) {
  const char* json_path = std::getenv("CERTQUIC_BENCH_JSON");
  if (json_path == nullptr || *json_path == '\0') {
    return;
  }
  std::FILE* f = std::fopen(json_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "throughput bench: cannot write %s\n", json_path);
    return;
  }
  std::fprintf(f,
               "{\"bench\": \"throughput\", \"path\": \"%s\", "
               "\"threads\": %zu, \"probes\": %zu, \"records\": %zu, "
               "\"wall_seconds\": %.3f, \"probes_per_sec\": %.0f, "
               "\"records_per_sec\": %.0f}\n",
               row.path, row.threads, row.probes, row.records,
               row.wall_seconds, per_sec(row.probes, row.wall_seconds),
               per_sec(row.records, row.wall_seconds));
  std::fclose(f);
}

inline void finish(throughput_row row) {
  print_throughput(row);
  write_throughput_json(row);
}

}  // namespace certquic::bench
