// Throughput: the census path (stateless reach backend → class
// counting aggregator) through the streaming executor at full thread
// count. One probe per sampled QUIC service; one record per probe.
#include "throughput_common.hpp"

#include "core/census.hpp"

int main() {
  using namespace certquic;
  bench::header("Throughput: census", "reach backend, class aggregation");

  const auto& model = bench::shared_model();
  core::census_options opt;
  opt.max_services = bench::sample_cap(0);  // 0 = the full population

  const engine::options exec{};
  const bench::wall_timer timer;
  const auto result = core::run_census(model, opt, exec);

  bench::finish({
      .path = "census",
      .probes = result.probed,
      .records = result.probed,
      .wall_seconds = timer.seconds(),
      .threads = engine::resolved_threads(exec),
  });
  return 0;
}
