// Figure 12: share of QUIC and HTTPS-only services per Tranco rank
// group. Paper: ~21% QUIC per group (sigma = 3) + ~59% HTTPS-only,
// independent of popularity.
#include "common.hpp"
#include "stats/summary.hpp"

int main() {
  using namespace certquic;
  bench::header("Figure 12", "service deployment across rank groups");

  const auto cfg = bench::population_config();
  const auto& model = bench::shared_model();

  constexpr std::size_t kGroups = internet::model::kRankGroups;
  std::array<std::size_t, kGroups> total{};
  std::array<std::size_t, kGroups> quic{};
  std::array<std::size_t, kGroups> https_only{};
  for (const auto& rec : model.records()) {
    const std::size_t g = model.rank_group(rec);
    ++total[g];
    quic[g] += rec.serves_quic() ? 1 : 0;
    https_only[g] +=
        rec.svc == internet::service_class::https_only ? 1 : 0;
  }

  text_table table({"rank group", "QUIC", "HTTPS only", "no TLS"});
  stats::summary quic_share;
  const std::size_t group_span = cfg.domains / kGroups;
  for (std::size_t g = 0; g < kGroups; ++g) {
    const double n = static_cast<double>(total[g]);
    const double q = static_cast<double>(quic[g]) / n;
    const double h = static_cast<double>(https_only[g]) / n;
    quic_share.add(q * 100.0);
    table.add_row({"[" + std::to_string(g * group_span + 1) + ", " +
                       std::to_string((g + 1) * group_span + 1) + ")",
                   pct(q), pct(h), pct(1.0 - q - h)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nQUIC share across groups: mean %.1f%%, sigma %.1f (paper: ~21%%, "
      "sigma = 3).\nPaper: popularity has no influence on QUIC deployment "
      "share.\n",
      quic_share.mean(), quic_share.stddev());
  bench::footnote_scale(cfg);
  return 0;
}
