// TTFB under post-quantum chain profiles x network conditions: the
// full grid of the time-domain study. Every (profile, condition) cell
// probes the census population with matched per-probe randomness, so
// the per-cell deltas against the classical baseline isolate what the
// bigger chains cost in *time* — extra round trips on clean paths,
// serialization stretch on thin pipes, PTO tails under loss.
//
// When CERTQUIC_BENCH_JSON names a file, a machine-readable summary
// (median/p95 TTFB per cell + wall time) is written there; stdout stays
// byte-identical either way so the golden diff is unaffected.
#include <chrono>
#include <cstdio>

#include "common.hpp"
#include "core/ttfb_study.hpp"
#include "util/text_table.hpp"

namespace {

void write_bench_json(const char* path,
                      const certquic::core::ttfb_study_result& study,
                      double wall_seconds) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "fig_ttfb_pqc: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"ttfb\",\n  \"wall_seconds\": %.3f,\n",
               wall_seconds);
  std::fprintf(f, "  \"cells\": [\n");
  for (std::size_t i = 0; i < study.cells.size(); ++i) {
    const auto& cell = study.cells[i];
    std::fprintf(
        f,
        "    {\"profile\": \"%s\", \"condition\": \"%s\", "
        "\"probed\": %zu, \"fetched\": %zu, \"ttfb_ms_median\": %.3f, "
        "\"ttfb_ms_p95\": %.3f}%s\n",
        certquic::x509::to_string(cell.profile).c_str(),
        cell.condition.name.c_str(), cell.probed, cell.completed(),
        cell.ttfb_ms.empty() ? 0.0 : cell.ttfb_ms.median(),
        cell.ttfb_ms.empty() ? 0.0 : cell.ttfb_ms.quantile(0.95),
        i + 1 < study.cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  using namespace certquic;
  bench::header("TTFB x PQC study",
                "time to first byte: chain profiles x network conditions");

  const auto cfg = bench::population_config();
  const auto& model = bench::shared_model();
  core::ttfb_options opt;
  opt.max_services = bench::sample_cap(4000);

  const auto wall_start = std::chrono::steady_clock::now();
  const auto study = core::run_ttfb_study(model, opt);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  std::printf("\n");
  text_table grid({"profile", "condition", "probed", "fetched", "med [ms]",
                   "p95 [ms]", "d med [ms]", "d p95 [ms]"});
  for (const auto& cell : study.cells) {
    // Matched-randomness delta against the classical cell of the same
    // condition.
    const std::size_t cond_idx =
        static_cast<std::size_t>(&cell - study.cells.data()) %
        study.conditions.size();
    const auto& base =
        study.cell(x509::pq_profile::classical, cond_idx);
    auto delta = [&](double mine, double theirs) {
      char buf[24];
      std::snprintf(buf, sizeof buf, "%+.1f", mine - theirs);
      return std::string(buf);
    };
    const bool have = !cell.ttfb_ms.empty() && !base.ttfb_ms.empty();
    grid.add_row(
        {x509::to_string(cell.profile), cell.condition.name,
         std::to_string(cell.probed), std::to_string(cell.completed()),
         cell.ttfb_ms.empty() ? std::string("-")
                              : fixed(cell.ttfb_ms.median(), 1),
         cell.ttfb_ms.empty() ? std::string("-")
                              : fixed(cell.ttfb_ms.quantile(0.95), 1),
         have ? delta(cell.ttfb_ms.median(), base.ttfb_ms.median())
              : std::string("-"),
         have ? delta(cell.ttfb_ms.quantile(0.95),
                      base.ttfb_ms.quantile(0.95))
              : std::string("-")});
  }
  std::printf("%s", grid.render().c_str());

  std::printf(
      "\nPost-quantum chains cost little extra TTFB on clean fast paths "
      "(the extra bytes ride\nexisting flights) but compound on "
      "constrained ones: serialization of ML-DSA chains adds\nwhole "
      "milliseconds per flight, and any lost Initial turns the larger "
      "flight into a longer\nPTO recovery.\n");
  bench::footnote_scale(cfg);

  if (const char* json_path = std::getenv("CERTQUIC_BENCH_JSON")) {
    if (*json_path != '\0') {
      write_bench_json(json_path, study, wall_seconds);
    }
  }
  return 0;
}
