// Table 3 (Appendix C), as an executable ablation: the bytes a spoofing
// attacker elicits from the same deployment under each historical IETF
// anti-amplification rule.
#include "common.hpp"
#include "core/policy_study.hpp"

int main() {
  using namespace certquic;
  bench::header("Table 3", "anti-amplification rules across IETF drafts");

  const auto cfg = bench::population_config();
  const auto& model = bench::shared_model();

  text_table table({"IETF spec", "rule", "backscatter [B]", "amplification"});
  for (const auto& row : core::run_policy_study(model, "le-r3-x1cross")) {
    table.add_row({row.spec, row.rule, std::to_string(row.bytes_received),
                   fixed(row.amplification, 1) + "x"});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nWorkload: one unacknowledged 1200-byte Initial against a "
      "non-coalescing server serving the\nLet's Encrypt R3 + ISRG Root X1 "
      "chain (2 retransmissions allowed).\nPaper: the limit evolved from "
      "none, to packet counts, to datagram counts, to 3x bytes.\n");
  bench::footnote_scale(cfg);
  return 0;
}
