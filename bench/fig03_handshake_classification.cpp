// Figure 3: handshake classification (Amplification / Multi-RTT / RETRY
// / 1-RTT) as a function of the client Initial size, 1200..1472 bytes.
#include "common.hpp"
#include "core/census.hpp"

int main() {
  using namespace certquic;
  bench::header("Figure 3",
                "influence of QUIC Initial sizes on the QUIC handshake");

  const auto cfg = bench::population_config();
  const auto& model = bench::shared_model();
  const std::size_t per_size = bench::sample_cap(1200);

  text_table table({"Initial", "Amplification", "Multi-RTT", "RETRY",
                    "1-RTT", "unreachable", "reachable"});
  for (const std::size_t size : core::initial_size_sweep()) {
    core::census_options opt;
    opt.initial_size = size;
    opt.max_services = per_size;
    opt.collect_payload_details = false;
    const auto census = core::run_census(model, opt);
    const std::size_t reachable =
        census.probed - census.count(scan::handshake_class::unreachable);
    table.add_row({std::to_string(size),
                   pct(census.share(scan::handshake_class::amplification)),
                   pct(census.share(scan::handshake_class::multi_rtt)),
                   pct(census.share(scan::handshake_class::retry)),
                   pct(census.share(scan::handshake_class::one_rtt)),
                   pct(census.share(scan::handshake_class::unreachable)),
                   std::to_string(reachable)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nPaper @1362: 61%% amplification, 38%% multi-RTT, 0.07%% RETRY, "
      "0.75%% 1-RTT;\nreachability drops ~1.2%% for the largest Initials "
      "(load-balancer encapsulation).\n");
  bench::footnote_scale(cfg);
  return 0;
}
