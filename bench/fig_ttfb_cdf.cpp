// Time-to-first-byte CDFs under today's (classical) certificate chains:
// the handshake-timeline model driven across the network-condition grid.
// Each curve is the TTFB distribution (first Initial sent -> first
// application byte) of the census population probed under one network
// regime — the time-domain counterpart of the size-domain figures.
#include "common.hpp"
#include "core/ttfb_study.hpp"
#include "util/text_table.hpp"

int main() {
  using namespace certquic;
  bench::header("TTFB study",
                "time to first byte across network conditions (classical)");

  const auto cfg = bench::population_config();
  const auto& model = bench::shared_model();
  core::ttfb_options opt;
  opt.max_services = bench::sample_cap(4000);
  opt.profiles = {x509::pq_profile::classical};
  const auto study = core::run_ttfb_study(model, opt);

  for (const auto& cell : study.cells) {
    bench::print_cdf(("TTFB [ms] — " + cell.condition.name).c_str(),
                     cell.ttfb_ms, 9, 1);
  }

  std::printf("\n");
  text_table summary({"condition", "RTT [ms]", "loss", "bw [Mbit/s]",
                      "probed", "fetched", "med [ms]", "p95 [ms]"});
  for (const auto& cell : study.cells) {
    const auto& cond = cell.condition;
    summary.add_row(
        {cond.name, fixed(static_cast<double>(cond.rtt) / 1000.0, 0),
         pct(cond.loss_rate, 1),
         cond.bandwidth_bps == 0
             ? std::string("-")
             : fixed(static_cast<double>(cond.bandwidth_bps) / 1e6, 0),
         std::to_string(cell.probed), std::to_string(cell.completed()),
         cell.ttfb_ms.empty() ? std::string("-")
                              : fixed(cell.ttfb_ms.median(), 1),
         cell.ttfb_ms.empty() ? std::string("-")
                              : fixed(cell.ttfb_ms.quantile(0.95), 1)});
  }
  std::printf("%s", summary.render().c_str());

  std::printf(
      "\nThe ideal curve is a pure round-trip ladder (1-RTT handshakes "
      "fetch in ~2 RTT);\nbandwidth pacing stretches the first flights on "
      "thin pipes, and loss turns the\nPTO tail into whole extra RTTs of "
      "TTFB.\n");
  bench::footnote_scale(cfg);
  return 0;
}
