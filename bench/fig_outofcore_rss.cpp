// Out-of-core figure: the sharded spill → merge pipeline against the
// materializing in-memory baseline over the census population. The
// golden pins everything deterministic — record counts per shard, the
// class mix, the aggregate byte sums and the path-vs-path deltas (all
// zero by construction) — while the peak-RSS comparison, which depends
// on the host, goes to stderr and is excluded from the golden.
#include <cstdlib>
#include <filesystem>
#include <string>

#include <unistd.h>

#include "common.hpp"
#include "core/outofcore_study.hpp"
#include "scan/classify.hpp"
#include "util/text_table.hpp"

using namespace certquic;

int main() {
  const internet::config cfg = bench::population_config();
  const internet::model& m = bench::shared_model();

  core::outofcore_options opt;
  opt.max_services = bench::sample_cap(200);
  opt.shards = bench::env_size("CERTQUIC_SHARDS", 4);
  opt.spill_dir = (std::filesystem::temp_directory_path() /
                   ("certquic_fig_outofcore_" + std::to_string(::getpid())))
                      .string();
  const core::outofcore_result result = core::run_outofcore_study(m, opt);
  std::error_code ec;
  std::filesystem::remove_all(opt.spill_dir, ec);

  bench::header("fig_outofcore_rss",
                "out-of-core spill/merge vs in-memory sweep");

  std::printf("sampled services : %zu across %zu shards\n", result.sampled,
              result.shards);
  text_table shard_table({"shard", "records"});
  for (std::size_t s = 0; s < result.shard_records.size(); ++s) {
    shard_table.add_row({std::to_string(s),
                         std::to_string(result.shard_records[s])});
  }
  std::printf("%s\n", shard_table.render().c_str());

  text_table agg({"aggregate", "spill+merge", "in-memory", "delta"});
  const auto row = [&](const char* label, unsigned long long spill,
                       unsigned long long direct) {
    agg.add_row({label, std::to_string(spill), std::to_string(direct),
                 std::to_string(static_cast<long long>(spill) -
                                static_cast<long long>(direct))});
  };
  row("records", result.spill.records, result.in_memory.records);
  for (const auto cls :
       {scan::handshake_class::amplification,
        scan::handshake_class::multi_rtt, scan::handshake_class::retry,
        scan::handshake_class::one_rtt,
        scan::handshake_class::unreachable}) {
    row(scan::to_string(cls).c_str(), result.spill.count(cls),
        result.in_memory.count(cls));
  }
  row("bytes sent", result.spill.bytes_sent_total,
      result.in_memory.bytes_sent_total);
  row("bytes received", result.spill.bytes_received_total,
      result.in_memory.bytes_received_total);
  row("certificate bytes", result.spill.certificate_bytes,
      result.in_memory.certificate_bytes);
  std::printf("%s", agg.render().c_str());
  std::printf("\nstream digests match: %s (spill path replays the exact "
              "in-memory record stream)\n",
              result.identical ? "yes" : "NO");

  bench::print_cdf("\nfirst-burst amplification CDF (merged spill stream)",
                   result.spill.first_burst_amplification, 11, 2);
  bench::footnote_scale(cfg);

  // Host-dependent: stderr only, never in the golden.
  std::fprintf(stderr,
               "peak RSS: spill+merge %zu kB | in-memory %zu kB\n",
               result.spill_peak_rss_kb, result.in_memory_peak_rss_kb);
  return result.identical ? 0 : 1;
}
