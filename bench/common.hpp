// Shared scaffolding for the per-figure bench binaries.
//
// Every binary regenerates one table or figure of the paper against the
// synthetic Internet. Scale knobs come from the environment:
//   CERTQUIC_DOMAINS — population size   (default 30000; paper: 1M)
//   CERTQUIC_SEED    — generator seed    (default 42)
//   CERTQUIC_SAMPLE  — max probes per experiment step (default varies)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "internet/model.hpp"
#include "stats/cdf.hpp"
#include "util/text_table.hpp"

namespace certquic::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  return static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
}

inline internet::config population_config() {
  internet::config cfg;
  cfg.domains = env_size("CERTQUIC_DOMAINS", 30000);
  cfg.seed = env_size("CERTQUIC_SEED", 42);
  return cfg;
}

/// The process-wide population: built once from the environment knobs
/// and shared by every experiment in the binary, so multi-study figures
/// (and any future combined drivers) pay the generation cost once. The
/// engine-backed studies then probe it from their sharded thread pools.
inline const internet::model& shared_model() {
  static const internet::model model =
      internet::model::generate(population_config());
  return model;
}

inline std::size_t sample_cap(std::size_t fallback) {
  return env_size("CERTQUIC_SAMPLE", fallback);
}

inline void header(const char* id, const char* title) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("================================================================\n");
}

inline void footnote_scale(const internet::config& cfg) {
  std::printf("\n[population: %zu domains, seed %llu — paper scanned 1M; "
              "counts scale linearly, shares are comparable]\n",
              cfg.domains, static_cast<unsigned long long>(cfg.seed));
}

/// Prints an empirical CDF as aligned rows of (x, F(x)).
inline void print_cdf(const char* label, const stats::sample_set& samples,
                      std::size_t points = 11, int x_digits = 0) {
  std::printf("%s (n=%zu)\n", label, samples.size());
  if (samples.empty()) {
    std::printf("  (no samples)\n");
    return;
  }
  for (const auto& point : samples.cdf_series(points)) {
    std::printf("  F(%12s) = %5.1f%%\n", fixed(point.x, x_digits).c_str(),
                point.f * 100.0);
  }
}

}  // namespace certquic::bench
