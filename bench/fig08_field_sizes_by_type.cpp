// Figure 8: mean certificate field sizes for QUIC domains, split into
// leaf/non-leaf certificates and small/large chains (threshold 4000 B).
// Paper: non-leaf public key + signature dominate large chains.
#include "common.hpp"
#include "core/certificates.hpp"

int main() {
  using namespace certquic;
  bench::header("Figure 8", "mean certificate field sizes by type");

  const auto cfg = bench::population_config();
  const auto& model = bench::shared_model();
  const auto corpus =
      core::analyze_corpus(model, {.max_services = bench::sample_cap(8000)});

  static const char* kFields[] = {"Subject", "Issuer", "SPKI",
                                  "Extensions", "Signature", "Other"};
  text_table table({"chain class", "cert type", "Subject", "Issuer", "SPKI",
                    "Extensions", "Signature", "Other", "sum"});
  for (int size_class = 0; size_class < 2; ++size_class) {
    for (int role = 0; role < 2; ++role) {
      std::vector<std::string> row = {
          size_class == 0 ? "<=4000 B" : "> 4000 B",
          role == 0 ? "leaf" : "non-leaf"};
      double total = 0.0;
      for (int f = 0; f < 6; ++f) {
        const double mean = corpus
                                .field_means[static_cast<std::size_t>(
                                    size_class)][static_cast<std::size_t>(
                                    role)][static_cast<std::size_t>(f)]
                                .mean();
        total += mean;
        row.push_back(fixed(mean, 0));
      }
      row.push_back(fixed(total, 0));
      table.add_row(std::move(row));
    }
  }
  (void)kFields;
  std::printf("%s", table.render().c_str());

  const double big_nonleaf_key_sig =
      corpus.field_means[1][1][2].mean() + corpus.field_means[1][1][4].mean();
  const double small_nonleaf_key_sig =
      corpus.field_means[0][1][2].mean() + corpus.field_means[0][1][4].mean();
  std::printf(
      "\nPaper: for chains > 4000 B, non-leaf public key + signature "
      "contribute the most bytes.\nMeasured non-leaf SPKI+signature mean: "
      "%.0f B (large chains) vs %.0f B (small chains).\n",
      big_nonleaf_key_sig, small_nonleaf_key_sig);
  bench::footnote_scale(cfg);
  return 0;
}
