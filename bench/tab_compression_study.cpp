// §4.2 "Compression helps": synthetic compression of collected chains
// and in-the-wild rates. Paper: median synthetic rate ~65%; 99% of
// compressed chains fit under 3x1357; wild mean 73%.
#include "common.hpp"
#include "core/compression_study.hpp"

int main() {
  using namespace certquic;
  bench::header("§4.2", "certificate compression study");

  const auto cfg = bench::population_config();
  const auto& model = bench::shared_model();
  core::compression_options opt;
  opt.max_chains = bench::sample_cap(1500);
  opt.max_probes = bench::sample_cap(400);
  const auto study = core::run_compression_study(model, opt);

  bench::print_cdf("brotli savings on collected chains",
                   study.synthetic_savings[0], 11, 3);

  std::printf("\n%-44s %10s %10s\n", "", "paper", "measured");
  std::printf("%-44s %10s %9.1f%%\n", "median synthetic compression rate",
              "~65%", study.synthetic_savings[0].median() * 100.0);
  std::printf("%-44s %10s %9.1f%%\n",
              "chains under 3x1357 after compression", "99%",
              study.under_limit_compressed * 100.0);
  std::printf("%-44s %10s %9.1f%%\n",
              "chains under 3x1357 uncompressed", "-",
              study.under_limit_uncompressed * 100.0);
  std::printf("%-44s %10s %9.1f%%\n", "mean in-the-wild compression rate",
              "73%", study.wild_savings.mean() * 100.0);
  std::printf(
      "\nPaper: compression keeps 99%% of chains below the amplification "
      "limit, preventing\nmulti-RTT handshakes — but OpenSSL lacks "
      "certificate compression, so deployment lags.\n");
  bench::footnote_scale(cfg);
  return 0;
}
