// Throughput: the out-of-core path (sharded probe → spill to disk →
// k-way merge in plan order) through the streaming executor. The
// in-memory baseline is skipped: this measures the spill pipeline.
#include <unistd.h>

#include <filesystem>
#include <string>

#include "throughput_common.hpp"

#include "core/outofcore_study.hpp"

int main() {
  using namespace certquic;
  bench::header("Throughput: spill", "sharded spill → merge pipeline");

  const auto& model = bench::shared_model();
  core::outofcore_options opt;
  opt.max_services = bench::sample_cap(0);
  opt.shards = 4;
  opt.compare_in_memory = false;
  opt.spill_dir = (std::filesystem::temp_directory_path() /
                   ("certquic_throughput_spill_" + std::to_string(::getpid())))
                      .string();

  const engine::options exec{};
  const bench::wall_timer timer;
  const auto result = core::run_outofcore_study(model, opt, exec);
  const double wall_seconds = timer.seconds();
  {
    std::error_code ec;
    std::filesystem::remove_all(opt.spill_dir, ec);
  }

  bench::finish({
      .path = "spill",
      .probes = result.sampled,
      .records = result.spill.records,
      .wall_seconds = wall_seconds,
      .threads = engine::resolved_threads(exec),
  });
  return 0;
}
