// Throughput: the longitudinal-service path (per-epoch churn → sharded
// census → epoch store spill → manifest seal → re-merge) through the
// streaming executor, over a fresh 3-epoch store.
#include <unistd.h>

#include <filesystem>
#include <string>

#include "throughput_common.hpp"

#include "service/census_service.hpp"

int main() {
  using namespace certquic;
  bench::header("Throughput: epochs", "longitudinal census service");

  const auto cfg = bench::population_config();
  service::service_options opt;
  opt.domains = cfg.domains;
  opt.seed = cfg.seed;
  opt.sample = bench::sample_cap(0);
  opt.shards = 4;
  opt.epochs = bench::env_size("CERTQUIC_EPOCHS", 3);
  opt.store_dir = (std::filesystem::temp_directory_path() /
                   ("certquic_throughput_epochs_" + std::to_string(::getpid())))
                      .string();

  const engine::options exec{};
  const bench::wall_timer timer;
  const auto result = service::run_epochs(opt, exec);
  const double wall_seconds = timer.seconds();
  {
    std::error_code ec;
    std::filesystem::remove_all(opt.store_dir, ec);
  }

  std::size_t probes = 0;
  std::size_t records = 0;
  for (const auto& epoch : result.epochs) {
    probes += epoch.sampled;
    records += epoch.aggregate.records;
  }
  bench::finish({
      .path = "epochs",
      .probes = probes,
      .records = records,
      .wall_seconds = wall_seconds,
      .threads = engine::resolved_threads(exec),
  });
  return 0;
}
