// Figure 2(b): CDF of X.509 certificate field sizes (subject, issuer,
// SubjectPublicKeyInfo, extensions, signature) across the corpus.
#include "common.hpp"
#include "core/certificates.hpp"

int main() {
  using namespace certquic;
  bench::header("Figure 2(b)", "X.509 certificate field size distribution");

  const auto cfg = bench::population_config();
  const auto& model = bench::shared_model();
  const auto corpus =
      core::analyze_corpus(model, {.max_services = bench::sample_cap(6000)});

  bench::print_cdf("Subject", corpus.field_subject);
  bench::print_cdf("Issuer", corpus.field_issuer);
  bench::print_cdf("SubjectPublicKeyInfo", corpus.field_spki);
  bench::print_cdf("Extensions", corpus.field_extensions);
  bench::print_cdf("Signature", corpus.field_signature);

  std::printf(
      "\nPaper: extensions, then signature and public key, consume the "
      "most certificate bytes.\n"
      "Measured medians [B]: subject=%.0f issuer=%.0f spki=%.0f "
      "extensions=%.0f signature=%.0f\n",
      corpus.field_subject.median(), corpus.field_issuer.median(),
      corpus.field_spki.median(), corpus.field_extensions.median(),
      corpus.field_signature.median());
  bench::footnote_scale(cfg);
  return 0;
}
