// Error types shared across the library.
#pragma once

#include <stdexcept>
#include <string>

namespace certquic {

/// Raised when an encoder or decoder encounters malformed or truncated
/// input, or when an encoding constraint (e.g. value range) is violated.
class codec_error : public std::runtime_error {
 public:
  explicit codec_error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a simulation is configured inconsistently (unknown host,
/// invalid parameter combination, ...). Indicates a programming error in
/// the caller rather than bad wire data.
class config_error : public std::logic_error {
 public:
  explicit config_error(const std::string& what) : std::logic_error(what) {}
};

}  // namespace certquic
