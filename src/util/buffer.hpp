// Bounds-checked big-endian byte readers and writers.
//
// Every wire format in this project (DER, TLS 1.3 handshake framing and
// QUIC v1 packets) is big-endian, so a single pair of primitives serves
// all encoders/decoders.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/bytes.hpp"
#include "util/errors.hpp"

namespace certquic {

/// Appends big-endian integers and raw bytes to an owned buffer.
///
/// The writer never fails: it grows the underlying vector as needed.
/// Length-prefix patterns (write a placeholder, fill it in later) are
/// supported through `reserve_u16`/`patch_u16` style pairs used by the
/// TLS message encoders.
class buffer_writer {
 public:
  buffer_writer() = default;

  /// Writes an 8-bit value.
  void u8(std::uint8_t v);
  /// Writes a 16-bit value, big-endian.
  void u16(std::uint16_t v);
  /// Writes a 24-bit value, big-endian. Throws codec_error if v >= 2^24.
  void u24(std::uint32_t v);
  /// Writes a 32-bit value, big-endian.
  void u32(std::uint32_t v);
  /// Writes a 64-bit value, big-endian.
  void u64(std::uint64_t v);
  /// Appends raw bytes.
  void raw(bytes_view v);
  /// Appends raw characters of a string (no terminator, no length prefix).
  void raw(std::string_view v);
  /// Appends `n` zero bytes.
  void zeros(std::size_t n);

  /// Reserves a 16-bit slot and returns its offset for later patching.
  [[nodiscard]] std::size_t reserve_u16();
  /// Reserves a 24-bit slot and returns its offset for later patching.
  [[nodiscard]] std::size_t reserve_u24();
  /// Patches a previously reserved 16-bit slot with `v`.
  void patch_u16(std::size_t offset, std::uint16_t v);
  /// Patches a previously reserved 24-bit slot. Throws if v >= 2^24.
  void patch_u24(std::size_t offset, std::uint32_t v);

  /// Number of bytes written so far.
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

  /// Read-only view of the bytes written so far.
  [[nodiscard]] bytes_view view() const noexcept { return buf_; }

  /// Moves the accumulated bytes out of the writer.
  [[nodiscard]] bytes take() && { return std::move(buf_); }

  /// Direct access for in-place appends by callers that already have bytes.
  [[nodiscard]] bytes& storage() noexcept { return buf_; }

 private:
  bytes buf_;
};

/// Reads big-endian integers and raw spans from a byte view.
///
/// All reads are bounds-checked and throw `codec_error` on truncation;
/// a reader never reads past the end of its view.
class buffer_reader {
 public:
  explicit buffer_reader(bytes_view data) noexcept : data_(data) {}

  /// Reads an 8-bit value.
  [[nodiscard]] std::uint8_t u8();
  /// Reads a 16-bit big-endian value.
  [[nodiscard]] std::uint16_t u16();
  /// Reads a 24-bit big-endian value.
  [[nodiscard]] std::uint32_t u24();
  /// Reads a 32-bit big-endian value.
  [[nodiscard]] std::uint32_t u32();
  /// Reads a 64-bit big-endian value.
  [[nodiscard]] std::uint64_t u64();
  /// Reads `n` raw bytes as a sub-view (no copy).
  [[nodiscard]] bytes_view raw(std::size_t n);
  /// Peeks at the next byte without consuming it.
  [[nodiscard]] std::uint8_t peek_u8() const;

  /// Skips `n` bytes. Throws codec_error if fewer remain.
  void skip(std::size_t n);

  /// Bytes not yet consumed.
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  /// True when every byte has been consumed.
  [[nodiscard]] bool empty() const noexcept { return remaining() == 0; }
  /// Absolute read position from the start of the view.
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

 private:
  void require(std::size_t n) const;

  bytes_view data_;
  std::size_t pos_ = 0;
};

}  // namespace certquic
