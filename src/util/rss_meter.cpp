#include "util/rss_meter.hpp"

#include <chrono>
#include <cstdio>
#include <cstring>

namespace certquic {
namespace {

/// Reads one "<field>: <kB> kB" line from /proc/self/status; 0 when the
/// file or field is unavailable (non-Linux).
std::size_t read_status_kb(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return 0;
  }
  const std::size_t field_len = std::strlen(field);
  char line[256];
  std::size_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0 &&
        line[field_len] == ':') {
      unsigned long long value = 0;
      if (std::sscanf(line + field_len + 1, "%llu", &value) == 1) {
        kb = static_cast<std::size_t>(value);
      }
      break;
    }
  }
  std::fclose(f);
  return kb;
}

}  // namespace

std::size_t rss_meter::current_kb() { return read_status_kb("VmRSS"); }

std::size_t rss_meter::peak_kb() { return read_status_kb("VmHWM"); }

bool rss_meter::reset_peak() {
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) {
    return false;
  }
  const bool wrote = std::fputs("5", f) >= 0;
  const bool closed = std::fclose(f) == 0;
  return wrote && closed;
}

rss_meter::phase::phase() {
  reset_worked_ = reset_peak() && peak_kb() > 0;
  if (reset_worked_ || current_kb() == 0) {
    return;  // precise kernel peak, or nothing measurable at all
  }
  // clear_refs unavailable (e.g. locked-down container): sample VmRSS
  // in the background so a growing phase still reports its plateau.
  sampler_ = std::thread([this] {
    while (!stop_.load(std::memory_order_relaxed)) {
      const std::size_t now = current_kb();
      if (now > sampled_peak_.load(std::memory_order_relaxed)) {
        sampled_peak_.store(now, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
}

rss_meter::phase::~phase() {
  if (sampler_.joinable()) {
    stop_.store(true, std::memory_order_relaxed);
    sampler_.join();
  }
}

std::size_t rss_meter::phase::peak_kb() const {
  if (reset_worked_) {
    return rss_meter::peak_kb();
  }
  const std::size_t sampled = sampled_peak_.load(std::memory_order_relaxed);
  const std::size_t now = current_kb();
  return sampled > now ? sampled : now;
}

}  // namespace certquic
