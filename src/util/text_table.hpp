// Minimal fixed-width table rendering for bench / example output.
//
// Every bench binary regenerates one of the paper's tables or figures as
// rows of text; this helper keeps their output aligned and uniform.
#pragma once

#include <string>
#include <vector>

namespace certquic {

/// Accumulates rows of cells and renders them as an aligned text table.
class text_table {
 public:
  /// Creates a table with the given column headers.
  explicit text_table(std::vector<std::string> headers);

  /// Appends one row; missing cells render empty, extra cells are kept
  /// (the column count grows).
  void add_row(std::vector<std::string> cells);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders the table with a header underline, columns padded to the
  /// widest cell, two spaces between columns.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places (std::snprintf "%.*f").
[[nodiscard]] std::string fixed(double v, int digits);

/// Formats a fraction as a percent string, e.g. pct(0.6154, 2) == "61.54%".
[[nodiscard]] std::string pct(double fraction, int digits = 2);

/// Groups digits of an integer for readability, e.g. 272000 -> "272,000".
[[nodiscard]] std::string with_commas(long long v);

}  // namespace certquic
