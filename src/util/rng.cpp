#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace certquic {
namespace {

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

rng::rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
}

std::uint64_t rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) {
    throw config_error("rng::uniform: lo > hi");
  }
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) {  // full 64-bit range
    return next();
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t v = next();
  while (v >= limit) {
    v = next();
  }
  return lo + v % span;
}

double rng::uniform01() noexcept {
  // 53 random mantissa bits.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool rng::chance(double p) noexcept {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return uniform01() < p;
}

double rng::normal(double mean, double stddev) noexcept {
  // Box-Muller; one value per call keeps the stream layout simple and
  // deterministic across platforms.
  double u1 = uniform01();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double rng::log_normal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double rng::pareto(double lo, double hi, double alpha) {
  if (!(lo > 0.0) || hi < lo || !(alpha > 0.0)) {
    throw config_error("rng::pareto: invalid parameters");
  }
  // Inverse-CDF sampling of a bounded Pareto distribution.
  const double u = uniform01();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

std::size_t rng::weighted_index(std::span<const double> weights) {
  double total = 0.0;
  for (const double w : weights) {
    total += (w > 0.0 ? w : 0.0);
  }
  if (weights.empty() || total <= 0.0) {
    throw config_error("rng::weighted_index: empty or all-zero weights");
  }
  double point = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (point < w) {
      return i;
    }
    point -= w;
  }
  return weights.size() - 1;  // guard against floating-point edge
}

std::string rng::ascii_label(std::size_t min_len, std::size_t max_len) {
  if (min_len > max_len || max_len == 0) {
    throw config_error("rng::ascii_label: invalid length range");
  }
  const auto len = static_cast<std::size_t>(uniform(min_len, max_len));
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>('a' + uniform(0, 25)));
  }
  return out;
}

void rng::fill(std::span<std::uint8_t> out) noexcept {
  std::size_t i = 0;
  while (i + 8 <= out.size()) {
    std::uint64_t v = next();
    for (int b = 0; b < 8; ++b) {
      out[i++] = static_cast<std::uint8_t>(v);
      v >>= 8;
    }
  }
  if (i < out.size()) {
    std::uint64_t v = next();
    while (i < out.size()) {
      out[i++] = static_cast<std::uint8_t>(v);
      v >>= 8;
    }
  }
}

rng rng::fork(std::uint64_t tag) noexcept {
  // Mix the tag into a fresh seed derived from this generator's stream.
  std::uint64_t s = next() ^ (tag * 0x9e3779b97f4a7c15ULL);
  return rng{splitmix64(s)};
}

}  // namespace certquic
