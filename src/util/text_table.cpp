#include "util/text_table.hpp"

#include <algorithm>
#include <cstdio>

namespace certquic {

text_table::text_table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void text_table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string text_table::render() const {
  std::size_t columns = headers_.size();
  for (const auto& row : rows_) {
    columns = std::max(columns, row.size());
  }
  std::vector<std::size_t> widths(columns, 0);
  auto measure = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  measure(headers_);
  for (const auto& row : rows_) {
    measure(row);
  }

  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < columns; ++i) {
      const std::string cell = i < row.size() ? row[i] : std::string{};
      out += cell;
      if (i + 1 < columns) {
        out.append(widths[i] - cell.size() + 2, ' ');
      }
    }
    out += '\n';
  };
  emit(headers_);
  std::size_t underline = 0;
  for (std::size_t i = 0; i < columns; ++i) {
    underline += widths[i] + (i + 1 < columns ? 2 : 0);
  }
  out.append(underline, '-');
  out += '\n';
  for (const auto& row : rows_) {
    emit(row);
  }
  return out;
}

std::string fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string pct(double fraction, int digits) {
  return fixed(fraction * 100.0, digits) + "%";
}

std::string with_commas(long long v) {
  const bool negative = v < 0;
  unsigned long long magnitude =
      negative ? 0ULL - static_cast<unsigned long long>(v)
               : static_cast<unsigned long long>(v);
  std::string digits = std::to_string(magnitude);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) {
      out.push_back(',');
    }
    out.push_back(*it);
    ++count;
  }
  if (negative) {
    out.push_back('-');
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace certquic
