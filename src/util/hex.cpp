#include "util/hex.hpp"

#include "util/errors.hpp"

namespace certquic {
namespace {

constexpr char kDigits[] = "0123456789abcdef";

int nibble(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  throw codec_error(std::string("invalid hex character: ") + c);
}

}  // namespace

std::string to_hex(bytes_view data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (const std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0f]);
  }
  return out;
}

std::string to_hex_colon(bytes_view data) {
  std::string out;
  if (data.empty()) {
    return out;
  }
  out.reserve(data.size() * 3 - 1);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i != 0) {
      out.push_back(':');
    }
    out.push_back(kDigits[data[i] >> 4]);
    out.push_back(kDigits[data[i] & 0x0f]);
  }
  return out;
}

bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw codec_error("hex string has odd length");
  }
  bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>((nibble(hex[i]) << 4) |
                                            nibble(hex[i + 1])));
  }
  return out;
}

}  // namespace certquic
