// Debug invariant checks for the determinism-critical paths.
//
// CERTQUIC_ASSERT(cond, msg) polices invariants that the golden tests
// only catch indirectly (sink lifecycle order, plan-order monotonicity
// in the sequencer and spill merge, sample_set mutation racing reads).
// The checks are ON when CERTQUIC_ENABLE_ASSERTS is defined — which the
// build system does for Debug builds and for every sanitized build
// (CERTQUIC_SANITIZE, see the root CMakeLists.txt) — and compile to
// nothing in optimized release builds, so hot paths pay zero cost.
//
// A failed assert prints the condition, location and message to stderr
// and aborts: these are programming errors (an engine or sink breaking
// its own contract), not recoverable input errors — those throw
// config_error/codec_error instead.
#pragma once

#if defined(CERTQUIC_ENABLE_ASSERTS)

#include <cstdio>
#include <cstdlib>

#define CERTQUIC_ASSERT(cond, msg)                                     \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::fprintf(stderr,                                             \
                   "CERTQUIC_ASSERT failed: %s\n  at %s:%d\n  %s\n",   \
                   #cond, __FILE__, __LINE__, (msg));                  \
      std::abort();                                                    \
    }                                                                  \
  } while (false)

#else

#define CERTQUIC_ASSERT(cond, msg) ((void)0)

#endif
