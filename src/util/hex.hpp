// Hex encoding helpers for diagnostics and certificate serial rendering.
#pragma once

#include <string>
#include <string_view>

#include "util/bytes.hpp"

namespace certquic {

/// Lower-case hex string of `data` ("" for empty input).
[[nodiscard]] std::string to_hex(bytes_view data);

/// Colon-separated hex (e.g. "01:74:ca:7e") as used in certificate dumps.
[[nodiscard]] std::string to_hex_colon(bytes_view data);

/// Parses a lower/upper-case hex string. Throws codec_error on odd length
/// or non-hex characters.
[[nodiscard]] bytes from_hex(std::string_view hex);

}  // namespace certquic
