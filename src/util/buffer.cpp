#include "util/buffer.hpp"

namespace certquic {

void buffer_writer::u8(std::uint8_t v) { buf_.push_back(v); }

void buffer_writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void buffer_writer::u24(std::uint32_t v) {
  if (v >= (1u << 24)) {
    throw codec_error("u24 overflow: " + std::to_string(v));
  }
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void buffer_writer::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void buffer_writer::u64(std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void buffer_writer::raw(bytes_view v) { append(buf_, v); }

void buffer_writer::raw(std::string_view v) { append(buf_, v); }

void buffer_writer::zeros(std::size_t n) { append_zeros(buf_, n); }

std::size_t buffer_writer::reserve_u16() {
  const std::size_t offset = buf_.size();
  buf_.insert(buf_.end(), 2, std::uint8_t{0});
  return offset;
}

std::size_t buffer_writer::reserve_u24() {
  const std::size_t offset = buf_.size();
  buf_.insert(buf_.end(), 3, std::uint8_t{0});
  return offset;
}

void buffer_writer::patch_u16(std::size_t offset, std::uint16_t v) {
  if (offset + 2 > buf_.size()) {
    throw codec_error("patch_u16 out of range");
  }
  buf_[offset] = static_cast<std::uint8_t>(v >> 8);
  buf_[offset + 1] = static_cast<std::uint8_t>(v);
}

void buffer_writer::patch_u24(std::size_t offset, std::uint32_t v) {
  if (v >= (1u << 24)) {
    throw codec_error("patch_u24 overflow: " + std::to_string(v));
  }
  if (offset + 3 > buf_.size()) {
    throw codec_error("patch_u24 out of range");
  }
  buf_[offset] = static_cast<std::uint8_t>(v >> 16);
  buf_[offset + 1] = static_cast<std::uint8_t>(v >> 8);
  buf_[offset + 2] = static_cast<std::uint8_t>(v);
}

void buffer_reader::require(std::size_t n) const {
  if (remaining() < n) {
    throw codec_error("buffer underrun: need " + std::to_string(n) +
                      " bytes, have " + std::to_string(remaining()));
  }
}

std::uint8_t buffer_reader::u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t buffer_reader::u16() {
  require(2);
  const auto v = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t buffer_reader::u24() {
  require(3);
  const std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 16) |
                          (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8) |
                          data_[pos_ + 2];
  pos_ += 3;
  return v;
}

std::uint32_t buffer_reader::u32() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  }
  pos_ += 4;
  return v;
}

std::uint64_t buffer_reader::u64() {
  require(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  }
  pos_ += 8;
  return v;
}

bytes_view buffer_reader::raw(std::size_t n) {
  require(n);
  const bytes_view v = data_.subspan(pos_, n);
  pos_ += n;
  return v;
}

std::uint8_t buffer_reader::peek_u8() const {
  require(1);
  return data_[pos_];
}

void buffer_reader::skip(std::size_t n) {
  require(n);
  pos_ += n;
}

}  // namespace certquic
