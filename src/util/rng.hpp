// Deterministic random number generation for reproducible simulations.
//
// Every stochastic decision in the synthetic Internet (domain names, CA
// assignment, key algorithms, loss, ...) flows through this generator so
// that a fixed seed reproduces the entire corpus bit-for-bit.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/errors.hpp"

namespace certquic {

/// One splitmix64 step: advances `x` and returns the mixed output.
/// The seeding/mixing primitive shared by `rng` construction, stream
/// forking, and the engine's per-probe seed derivation.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& x) noexcept;

/// xoshiro256** PRNG seeded through splitmix64.
///
/// Small, fast and with well-understood statistical quality; good enough
/// for simulation workloads (not for cryptography — none is needed here,
/// signatures in this project are size-faithful placeholders).
class rng {
 public:
  /// Seeds the generator deterministically from a 64-bit seed.
  explicit rng(std::uint64_t seed = 0x5eed'cafe'f00d'd00dULL) noexcept;

  /// Next raw 64-bit output.
  [[nodiscard]] std::uint64_t next() noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Throws config_error if lo > hi.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept;

  /// Bernoulli trial with probability `p` (clamped to [0, 1]).
  [[nodiscard]] bool chance(double p) noexcept;

  /// Standard normal via Box-Muller.
  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0) noexcept;

  /// Log-normal draw: exp(normal(mu, sigma)). Used for heavy-tailed
  /// certificate-size jitter.
  [[nodiscard]] double log_normal(double mu, double sigma) noexcept;

  /// Bounded Pareto draw over [lo, hi] with tail index `alpha`.
  /// Used for SAN counts ("cruise-liner" certificates) and similar
  /// heavy-tailed count distributions.
  [[nodiscard]] double pareto(double lo, double hi, double alpha);

  /// Picks an index in [0, weights.size()) with probability proportional
  /// to weights[i]. Throws config_error on empty or all-zero weights.
  [[nodiscard]] std::size_t weighted_index(std::span<const double> weights);

  /// Uniformly picks one element of a non-empty container.
  template <typename Container>
  [[nodiscard]] const auto& pick(const Container& c) {
    if (c.empty()) {
      throw config_error("rng::pick on empty container");
    }
    return c[static_cast<std::size_t>(uniform(0, c.size() - 1))];
  }

  /// Random lowercase ASCII label of length in [min_len, max_len];
  /// used for synthetic domain names and DN fields.
  [[nodiscard]] std::string ascii_label(std::size_t min_len,
                                        std::size_t max_len);

  /// Fills `out` with random bytes.
  void fill(std::span<std::uint8_t> out) noexcept;

  /// Derives an independent child generator; `tag` separates streams so
  /// that adding draws in one subsystem does not disturb another.
  [[nodiscard]] rng fork(std::uint64_t tag) noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace certquic
