// Peak-resident-set metering for the out-of-core studies: how much
// memory did *this phase* of the process actually pin, measured by the
// kernel rather than by counting our own allocations.
//
// On Linux the meter reads VmRSS / VmHWM from /proc/self/status and —
// where the kernel allows it — resets the high-water mark between
// phases by writing "5" to /proc/self/clear_refs, so consecutive
// phases report independent peaks. When the reset is unavailable the
// phase falls back to sampling VmRSS from a background thread (the
// peak of a growing phase is still captured; very short spikes may be
// missed). On systems without /proc every query returns 0 — callers
// must treat 0 as "not measurable", never as "no memory used".
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>

namespace certquic {

/// Process-wide RSS queries. All sizes are in kilobytes, 0 when the
/// platform offers no measurement.
struct rss_meter {
  /// Current resident set (VmRSS).
  [[nodiscard]] static std::size_t current_kb();
  /// Lifetime peak resident set (VmHWM) — monotonic unless reset.
  [[nodiscard]] static std::size_t peak_kb();
  /// Resets the kernel high-water mark so peak_kb() reflects only what
  /// happens after this call. Returns false when unsupported.
  static bool reset_peak();

  /// Scoped per-phase peak: resets the high-water mark on construction
  /// and reports the peak observed since. Falls back to a VmRSS
  /// sampling thread when the reset is unsupported.
  class phase {
   public:
    phase();
    ~phase();
    phase(const phase&) = delete;
    phase& operator=(const phase&) = delete;

    /// Peak RSS (kB) since construction; callable repeatedly. 0 when
    /// the platform cannot measure.
    [[nodiscard]] std::size_t peak_kb() const;

   private:
    bool reset_worked_ = false;
    std::atomic<bool> stop_{false};
    std::atomic<std::size_t> sampled_peak_{0};
    std::thread sampler_;
  };
};

}  // namespace certquic
