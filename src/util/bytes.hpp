// Basic byte-sequence aliases and helpers shared by every wire-format module.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace certquic {

/// Owned, growable byte sequence. All wire encodings in this project
/// (DER, TLS handshake messages, QUIC packets, UDP datagrams) are built
/// into and parsed from this type.
using bytes = std::vector<std::uint8_t>;

/// Non-owning read-only view over a byte sequence.
using bytes_view = std::span<const std::uint8_t>;

/// Appends the contents of `src` to `dst`.
inline void append(bytes& dst, bytes_view src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// Appends the raw characters of `src` (no terminator) to `dst`.
inline void append(bytes& dst, std::string_view src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// Builds a byte sequence from the raw characters of `src`.
inline bytes to_bytes(std::string_view src) {
  return bytes{src.begin(), src.end()};
}

/// Constant-size zero padding appended to `dst`.
inline void append_zeros(bytes& dst, std::size_t n) {
  dst.insert(dst.end(), n, std::uint8_t{0});
}

}  // namespace certquic
