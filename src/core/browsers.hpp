// Browser client profiles (Table 1).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "compress/codec.hpp"

namespace certquic::core {

/// One row of Table 1.
struct browser_profile {
  std::string name;
  std::string version;
  /// Initial datagram size; nullopt for browsers without QUIC support.
  std::optional<std::size_t> initial_size;
  /// Certificate-compression algorithms offered (TLS 1.3).
  std::vector<compress::algorithm> compression;
};

/// The browsers the paper tabulates: Firefox (1357, none),
/// Chromium-family (1250, brotli; recently reduced from 1350),
/// Safari (no QUIC; zlib + zstd over TCP).
[[nodiscard]] const std::vector<browser_profile>& browser_profiles();

}  // namespace certquic::core
