#include "core/tuner.hpp"

#include <algorithm>

#include "scan/reach.hpp"

namespace certquic::core {

void initial_size_tuner::record(const std::string& domain,
                                std::size_t server_flight_bytes) {
  cache_[domain] = server_flight_bytes;
}

std::size_t initial_size_tuner::recommend(const std::string& domain) const {
  const auto it = cache_.find(domain);
  if (it == cache_.end()) {
    return kMinInitial;
  }
  // The server may send up to 3x the client Initial before validation;
  // a small headroom covers ACK/padding overhead variations.
  const std::size_t needed = (it->second + 2) / 3 + 16;
  return std::clamp(needed, kMinInitial, kMaxInitial);
}

tuner_result run_tuner_study(const internet::model& m,
                             std::size_t max_services) {
  tuner_result out;
  initial_size_tuner tuner;
  scan::reach prober{m};

  std::size_t quic_total = 0;
  for (const auto& rec : m.records()) {
    quic_total += rec.serves_quic() ? 1 : 0;
  }
  const std::size_t stride =
      max_services == 0 || quic_total <= max_services
          ? 1
          : (quic_total + max_services - 1) / max_services;

  std::size_t quic_index = 0;
  for (const auto& rec : m.records()) {
    if (!rec.serves_quic()) {
      continue;
    }
    if (quic_index++ % stride != 0) {
      continue;
    }
    ++out.services;

    // Visit 1: RFC-minimum Initial; learn the server's flight size.
    scan::probe_options first;
    first.initial_size = initial_size_tuner::kMinInitial;
    const scan::probe_result visit1 = prober.probe(rec, first);
    const bool was_multi =
        visit1.cls == scan::handshake_class::multi_rtt;
    out.multi_rtt_default += was_multi ? 1 : 0;
    if (visit1.obs.bytes_received_total > 0) {
      tuner.record(rec.domain, visit1.obs.bytes_received_total);
    }

    // Visit 2: tuned Initial.
    scan::probe_options second;
    second.initial_size = tuner.recommend(rec.domain);
    const scan::probe_result visit2 = prober.probe(rec, second);
    const bool still_multi =
        visit2.cls == scan::handshake_class::multi_rtt;
    out.multi_rtt_tuned += still_multi ? 1 : 0;
    if (was_multi && visit2.cls == scan::handshake_class::one_rtt) {
      ++out.converted_to_one_rtt;
    }
  }
  return out;
}

}  // namespace certquic::core
