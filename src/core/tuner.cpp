#include "core/tuner.hpp"

#include <algorithm>

#include "engine/engine.hpp"
#include "scan/reach.hpp"

namespace certquic::core {

void initial_size_tuner::record(const std::string& domain,
                                std::size_t server_flight_bytes) {
  cache_[domain] = server_flight_bytes;
}

std::size_t initial_size_tuner::recommend_for(
    std::size_t server_flight_bytes) {
  // The server may send up to 3x the client Initial before validation;
  // a small headroom covers ACK/padding overhead variations.
  const std::size_t needed = (server_flight_bytes + 2) / 3 + 16;
  return std::clamp(needed, kMinInitial, kMaxInitial);
}

std::size_t initial_size_tuner::recommend(const std::string& domain) const {
  const auto it = cache_.find(domain);
  if (it == cache_.end()) {
    return kMinInitial;
  }
  return recommend_for(it->second);
}

namespace {

/// Outcome of one service's two-visit probe pair.
struct visit_pair {
  bool was_multi = false;
  bool still_multi = false;
  bool converted = false;
};

}  // namespace

tuner_result run_tuner_study(const internet::model& m,
                             std::size_t max_services,
                             const engine::options& exec) {
  tuner_result out;
  // Both visits of a service serve the same chain: memoize the
  // materialization so the repeat visit re-simulates the handshake but
  // not the issuance. Pure memoization — results are bit-identical.
  const internet::chain_cache chains{m};
  const scan::reach prober{m, &chains};

  // The second visit's Initial size depends on the first visit of the
  // *same* service only, so each service's visit pair is an independent
  // unit of work: an adaptive two-probe job on the engine's pool.
  const std::vector<std::uint32_t> sampled = engine::sample_indices(
      m, engine::service_filter::quic, max_services);
  engine::parallel_ordered(
      sampled.size(), exec,
      [&](std::size_t i) {
        const auto& rec = m.records()[sampled[i]];

        // Visit 1: RFC-minimum Initial; learn the server's flight size.
        scan::probe_options first;
        first.initial_size = initial_size_tuner::kMinInitial;
        const scan::probe_result visit1 = prober.probe(rec, first);

        // Visit 2: tuned Initial.
        scan::probe_options second;
        second.initial_size =
            visit1.obs.bytes_received_total > 0
                ? initial_size_tuner::recommend_for(
                      visit1.obs.bytes_received_total)
                : initial_size_tuner::kMinInitial;
        const scan::probe_result visit2 = prober.probe(rec, second);

        visit_pair pair;
        pair.was_multi = visit1.cls == scan::handshake_class::multi_rtt;
        pair.still_multi = visit2.cls == scan::handshake_class::multi_rtt;
        pair.converted =
            pair.was_multi && visit2.cls == scan::handshake_class::one_rtt;
        return pair;
      },
      [&](std::size_t, visit_pair&& pair) {
        ++out.services;
        out.multi_rtt_default += pair.was_multi ? 1 : 0;
        out.multi_rtt_tuned += pair.still_multi ? 1 : 0;
        out.converted_to_one_rtt += pair.converted ? 1 : 0;
      });
  return out;
}

}  // namespace certquic::core
