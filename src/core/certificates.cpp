#include "core/certificates.hpp"

#include <algorithm>
#include <set>

#include "engine/engine.hpp"
#include "util/hex.hpp"

namespace certquic::core {
namespace {

std::size_t alg_index(x509::key_algorithm a) {
  switch (a) {
    case x509::key_algorithm::rsa_2048:
      return 0;
    case x509::key_algorithm::rsa_4096:
      return 1;
    case x509::key_algorithm::ecdsa_p256:
      return 2;
    case x509::key_algorithm::ecdsa_p384:
      return 3;
    case x509::key_algorithm::mldsa_44:
      return 4;
    case x509::key_algorithm::mldsa_65:
      return 5;
    case x509::key_algorithm::mldsa_87:
      return 6;
  }
  return 0;
}

void account_fields(const x509::certificate& cert,
                    std::array<stats::summary, 6>& sums) {
  const auto& s = cert.sizes();
  sums[0].add(static_cast<double>(s.subject));
  sums[1].add(static_cast<double>(s.issuer));
  sums[2].add(static_cast<double>(s.public_key_info));
  sums[3].add(static_cast<double>(s.extensions));
  sums[4].add(static_cast<double>(s.signature));
  sums[5].add(static_cast<double>(s.other()));
}

struct profile_accumulator {
  std::size_t count = 0;
  stats::sample_set leaf_sizes;
  std::vector<std::size_t> parent_sizes;
  std::string display;
};

}  // namespace

double share_over_amp_limit(const stats::sample_set& quic,
                            const stats::sample_set& https) {
  const std::size_t all = quic.size() + https.size();
  if (all == 0) {
    return 0.0;
  }
  const double over =
      quic.fraction_above(kAmpLimitBytes) * static_cast<double>(quic.size()) +
      https.fraction_above(kAmpLimitBytes) * static_cast<double>(https.size());
  return over / static_cast<double>(all);
}

const std::array<std::string, kAlgClasses>& alg_class_names() {
  static const std::array<std::string, kAlgClasses> names = {
      "RSA-2048",  "RSA-4096",  "ECDSA-256", "ECDSA-384",
      "ML-DSA-44", "ML-DSA-65", "ML-DSA-87"};
  return names;
}

corpus_result analyze_corpus(const internet::model& m,
                             const corpus_options& opt,
                             const engine::options& exec) {
  corpus_result out;

  // One up-front deterministic sample (shared striding rule); chain
  // materialization is the hot path and shards across the engine pool,
  // while the ordered consumer below aggregates bit-identically to the
  // old interleaved walk.
  const std::vector<std::uint32_t> sample = engine::sample_indices(
      m, engine::service_filter::tls, opt.max_services);

  std::map<std::string, profile_accumulator> quic_profiles;
  std::map<std::string, profile_accumulator> https_profiles;
  std::set<std::string> seen_nonleaf_serials[2];
  std::size_t quic_services = 0;
  std::size_t https_services = 0;
  /// (leaf size, SAN share) per sampled QUIC service, for the Fig. 14
  /// quadrant pass — recorded here so the corpus is walked only once.
  std::vector<std::pair<std::size_t, double>> quic_leaves;

  out.quic_chain_sizes.reserve(sample.size());
  out.https_chain_sizes.reserve(sample.size());
  // Every chain carries at least a leaf and one parent, so the Fig. 2b
  // field sets see >= 2 adds per sampled service; reserving for the
  // common two-certificate depth removes almost all growth churn.
  for (stats::sample_set* fields :
       {&out.field_subject, &out.field_issuer, &out.field_spki,
        &out.field_extensions, &out.field_signature}) {
    fields->reserve(2 * sample.size());
  }
  out.san_shares.reserve(sample.size());

  engine::parallel_ordered(
      sample.size(), exec,
      [&](std::size_t i) {
        return internet::fetch_chain(m, opt.chains, m.records()[sample[i]],
                                     internet::fetch_protocol::https,
                                     opt.profile);
      },
      [&](std::size_t i, x509::chain&& chain) {
        const auto& rec = m.records()[sample[i]];
        const bool is_quic = rec.serves_quic();
        (is_quic ? quic_services : https_services) += 1;
        const std::size_t chain_size = chain.wire_size();
        (is_quic ? out.quic_chain_sizes : out.https_chain_sizes)
            .add(static_cast<double>(chain_size));

        // Fig. 2b field sizes across every certificate in the corpus.
        chain.for_each([&out](const x509::certificate& cert) {
          const auto& s = cert.sizes();
          out.field_subject.add(static_cast<double>(s.subject));
          out.field_issuer.add(static_cast<double>(s.issuer));
          out.field_spki.add(static_cast<double>(s.public_key_info));
          out.field_extensions.add(static_cast<double>(s.extensions));
          out.field_signature.add(static_cast<double>(s.signature));
        });

        // Fig. 8 (QUIC only): field means by chain-size and role.
        if (is_quic) {
          const std::size_t size_class = chain_size > 4000 ? 1 : 0;
          account_fields(chain.leaf(), out.field_means[size_class][0]);
          for (const auto& parent : chain.parents()) {
            account_fields(*parent, out.field_means[size_class][1]);
          }
        }

        // Table 2: unique certificates per corpus side.
        const std::size_t side = is_quic ? 0 : 1;
        ++out.alg_counts[side][0][alg_index(chain.leaf().key_alg())];
        for (const auto& parent : chain.parents()) {
          if (seen_nonleaf_serials[side].insert(to_hex(parent->serial()))
                  .second) {
            ++out.alg_counts[side][1][alg_index(parent->key_alg())];
          }
        }

        // Fig. 7 accumulation for named profiles.
        if (rec.chain_profile != "other" && rec.cruise_sans == 0) {
          auto& acc = (is_quic ? quic_profiles
                               : https_profiles)[rec.chain_profile];
          if (acc.count == 0) {
            acc.display = m.ecosystem().profile(rec.chain_profile).display;
            for (const auto& parent : chain.parents()) {
              acc.parent_sizes.push_back(parent->size());
            }
          }
          ++acc.count;
          acc.leaf_sizes.add(static_cast<double>(chain.leaf().size()));
        }

        // Fig. 14 (QUIC leaves): SAN byte share vs leaf size.
        if (is_quic) {
          ++out.leaves_total;
          const auto& leaf = chain.leaf();
          const double share = leaf.size() == 0
                                   ? 0.0
                                   : static_cast<double>(leaf.san_bytes()) /
                                         static_cast<double>(leaf.size());
          out.san_shares.add(share);
          quic_leaves.emplace_back(leaf.size(), share);
        }
  });

  // "35% of all certificate chains exceed even the larger of the two
  // common amplification limits (3x1357)".
  out.all_chains_over_4071 =
      share_over_amp_limit(out.quic_chain_sizes, out.https_chain_sizes);

  // Fig. 7 rows: top-10 by share, largest first.
  auto build_rows = [](std::map<std::string, profile_accumulator>& profiles,
                       std::size_t corpus_size,
                       std::vector<chain_row>& rows, double& coverage) {
    std::vector<const profile_accumulator*> ordered;
    ordered.reserve(profiles.size());
    for (auto& [id, acc] : profiles) {
      ordered.push_back(&acc);
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const auto* a, const auto* b) { return a->count > b->count; });
    double covered = 0.0;
    for (const auto* acc : ordered) {
      if (rows.size() >= 10 || acc->count == 0) {
        break;
      }
      chain_row row;
      row.display = acc->display;
      row.parent_sizes = acc->parent_sizes;
      row.median_leaf = static_cast<std::size_t>(acc->leaf_sizes.median());
      row.max_leaf = static_cast<std::size_t>(acc->leaf_sizes.max());
      row.share = corpus_size == 0 ? 0.0
                                   : static_cast<double>(acc->count) /
                                         static_cast<double>(corpus_size);
      covered += row.share;
      rows.push_back(std::move(row));
    }
    coverage = covered;
  };
  build_rows(quic_profiles, quic_services, out.quic_rows,
             out.quic_top10_coverage);
  build_rows(https_profiles, https_services, out.https_rows,
             out.https_top10_coverage);

  // Fig. 14 quadrants relative to the p99 SAN-share line and the
  // 3x1357 size threshold (the paper reports 99% / 0.9% / 0.1% / 0%).
  if (!out.san_shares.empty()) {
    out.san_share_p99 = out.san_shares.quantile(0.99);
  }
  // The quadrants are re-derived from the leaf sizes and shares stored
  // during the single corpus walk — no second materialization pass.
  for (const auto& [leaf_size, share] : quic_leaves) {
    const bool high = share >= out.san_share_p99;
    const bool large = leaf_size > 3 * 1357;
    if (large && high) {
      ++out.quadrant_large_high;
    } else if (large) {
      ++out.quadrant_large_low;
    } else if (high) {
      ++out.quadrant_small_high;
    } else {
      ++out.quadrant_small_low;
    }
  }
  return out;
}

}  // namespace certquic::core
