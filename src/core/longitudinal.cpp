#include "core/longitudinal.hpp"

namespace certquic::core {

void epoch_aggregate_sink::on_begin(const engine::probe_plan& plan,
                                    std::size_t sampled) {
  lifecycle_.begin();
  agg_.first_burst_amplification.reserve(sampled * plan.variants.size());
  agg_.certificate_msg_sizes.reserve(sampled * plan.variants.size());
}

void epoch_aggregate_sink::on_record(const engine::probe_record& rec) {
  lifecycle_.record();
  const quic::observation& o = rec.result.obs;
  ++agg_.records;
  ++agg_.counts[static_cast<std::size_t>(rec.result.cls)];
  agg_.bytes_sent_total += o.bytes_sent_total;
  agg_.bytes_received_total += o.bytes_received_total;
  agg_.certificate_bytes += o.certificate_msg_size;
  if (o.handshake_complete) {
    agg_.first_burst_amplification.add(o.first_burst_amplification());
  }
  if (o.certificate_msg_size > 0) {
    agg_.certificate_msg_sizes.add(
        static_cast<double>(o.certificate_msg_size));
  }
  digest_record(agg_.stream_digest, rec.service_index, rec.variant_index,
                rec.result);
}

void epoch_aggregate_sink::on_end() {
  lifecycle_.end();
  agg_.first_burst_amplification.finalize();
  agg_.certificate_msg_sizes.finalize();
}

epoch_delta delta_between(const epoch_aggregate& prev,
                          const epoch_aggregate& cur) {
  epoch_delta d;
  for (std::size_t c = 0; c < kClassCount; ++c) {
    d.class_delta[c] = static_cast<long long>(cur.counts[c]) -
                       static_cast<long long>(prev.counts[c]);
  }
  d.record_delta = static_cast<long long>(cur.records) -
                   static_cast<long long>(prev.records);
  const auto q = [](const stats::sample_set& s, double quantile) {
    return s.empty() ? 0.0 : s.quantile(quantile);
  };
  d.amplification_median_delta = q(cur.first_burst_amplification, 0.5) -
                                 q(prev.first_burst_amplification, 0.5);
  d.amplification_p95_delta = q(cur.first_burst_amplification, 0.95) -
                              q(prev.first_burst_amplification, 0.95);
  d.certificate_median_delta = q(cur.certificate_msg_sizes, 0.5) -
                               q(prev.certificate_msg_sizes, 0.5);
  d.certificate_p95_delta = q(cur.certificate_msg_sizes, 0.95) -
                            q(prev.certificate_msg_sizes, 0.95);
  return d;
}

}  // namespace certquic::core
