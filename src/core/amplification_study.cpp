#include "core/amplification_study.hpp"

#include <algorithm>

#include "engine/backend.hpp"
#include "scan/zmap.hpp"
#include "util/rng.hpp"

namespace certquic::core {
namespace {

/// The hypergiant server fleets observed at the telescope.
struct provider_fleet {
  std::string name;
  net::ipv4 prefix;
};

constexpr std::uint64_t kTelescopeSeed = 0xa77ac;

/// Per-session stream separator: pure function of the session's
/// position in the plan, so shard worlds never share randomness.
std::uint64_t session_seed(std::size_t index) {
  std::uint64_t state = kTelescopeSeed ^
                        (0x9e37'79b9'7f4a'7c15ULL * (index + 1));
  const std::uint64_t seed = splitmix64(state);
  return seed == 0 ? 1 : seed;
}

}  // namespace

engine::backscatter_plan build_telescope_plan(const internet::model& m,
                                              const spoofed_options& opt) {
  engine::backscatter_plan plan;
  plan.base_seed = kTelescopeSeed;
  // 10 per-provider session triples share one simulator + telescope
  // world. Part of the plan: it fixes which sessions coexist, so the
  // aggregates are identical at any thread count.
  plan.sessions_per_shard = 30;
  plan.telescope_base = net::ipv4::of(203, 0, 113, 0);
  plan.dictionary = m.compression_dictionary();

  const provider_fleet fleets[] = {
      {"Cloudflare", net::ipv4::of(104, 16, 1, 0)},
      {"Google", net::ipv4::of(142, 250, 64, 0)},
      {"Meta", net::ipv4::of(157, 240, 229, 0)},
  };
  for (const auto& fleet : fleets) {
    plan.provider_prefixes.emplace_back(fleet.prefix, fleet.name);
  }

  // Backscatter at real telescopes is dominated by the heavily
  // retransmitting instagram/whatsapp infrastructure (§4.3: median
  // session ~51 s); bias the attacked Meta hosts accordingly.
  const auto pop = m.meta_pop(/*post_disclosure=*/false);
  std::vector<const internet::meta_host*> deep;
  std::vector<const internet::meta_host*> shallow;
  for (const auto& host : pop) {
    if (!host.serves_quic) {
      continue;
    }
    (host.retransmissions >= 5 ? deep : shallow).push_back(&host);
  }

  const auto& eco = m.ecosystem();
  plan.sessions.reserve(3 * opt.sessions_per_provider);
  const auto add = [&](const provider_fleet& fleet, x509::chain chain,
                       const quic::server_behavior& behavior,
                       const std::string& sni, std::size_t index) {
    engine::spoofed_session session;
    // Fleet slots wrap every 200 sessions so host octets stay inside
    // the /24. A reused slot only shares a server (and its chain) with
    // the colliding session when both land in the same shard world;
    // across shards each world spawns its own instance on first touch.
    session.server = net::endpoint_id{
        net::ipv4{fleet.prefix.value |
                  static_cast<std::uint32_t>(1 + index % 200)},
        443};
    session.chain = std::move(chain);
    session.behavior = behavior;
    session.sni = sni;
    session.initial_size = opt.assumed_initial;
    session.timeout = net::seconds(400);
    session.seed = session_seed(plan.sessions.size());
    plan.sessions.push_back(std::move(session));
  };

  for (std::size_t i = 0; i < opt.sessions_per_provider; ++i) {
    rng issue{session_seed(plan.sessions.size()) ^ 0x155eULL};
    add(fleets[0],
        eco.issue(eco.profile("cloudflare"),
                  "cf-" + std::to_string(i) + ".example", issue),
        quic::server_behavior::cloudflare(), "site.example", i);
    add(fleets[1],
        eco.issue(eco.profile("gts-1c3"), "g-" + std::to_string(i) + ".example",
                  issue),
        quic::server_behavior::google(), "google.example", i);
    const bool pick_deep = !deep.empty() && (i % 4 != 0 || shallow.empty());
    const auto& pool = pick_deep ? deep : shallow;
    const internet::meta_host& host = *pool[i % pool.size()];
    add(fleets[2], m.meta_chain(host), m.meta_behavior(host), host.sni, i);
  }
  return plan;
}

telescope_result run_telescope_study(const internet::model& m,
                                     const spoofed_options& opt,
                                     const engine::options& exec) {
  telescope_result out;
  out.meta_session_duration_s.reserve(opt.sessions_per_provider);

  const engine::backscatter_backend backend{build_telescope_plan(m, opt)};
  engine::run_backend(
      backend, exec, [&](std::size_t, engine::unit_outcome&& outcome) {
        const scan::backscatter_session& session = outcome.backscatter;
        if (session.datagrams == 0) {
          return;  // the spoofed Initial elicited nothing
        }
        const double factor = static_cast<double>(session.bytes) /
                              static_cast<double>(opt.assumed_initial);
        // Providers appear only once observed (a silent fleet prints no
        // row); reserve on the first observation.
        stats::sample_set& samples = out.amplification[session.provider];
        if (samples.empty()) {
          samples.reserve(opt.sessions_per_provider);
        }
        samples.add(factor);
        if (session.provider == "Meta") {
          out.meta_session_duration_s.add(
              net::to_seconds(session.duration()));
          out.meta_max_amplification =
              std::max(out.meta_max_amplification, factor);
        }
      });
  return out;
}

std::vector<meta_probe_row> run_meta_scan(const internet::model& m,
                                          bool post_disclosure,
                                          std::size_t repeats,
                                          const engine::options& exec) {
  std::vector<meta_probe_row> rows;
  const auto pop = m.meta_pop(post_disclosure);
  rows.reserve(pop.size());
  // One host (with its probe repeats) is one unit of work; row order
  // follows the /24's host order regardless of shard count.
  engine::parallel_ordered(
      pop.size(), exec,
      [&](std::size_t i) {
        const internet::meta_host& host = pop[i];
        meta_probe_row row;
        row.host_octet = host.address.host_octet();
        row.services = host.services;
        if (!host.serves_quic) {
          return row;
        }
        for (std::size_t k = 0; k < repeats; ++k) {
          // §4.3: single 1252-byte Initial, no ACK.
          const scan::zmap_result probe =
              scan::zmap_probe(m.meta_chain(host), m.meta_behavior(host),
                               1252, net::seconds(400), host.seed + k);
          row.responded |= probe.responded;
          row.bytes_received = probe.bytes_received;
          row.amplification.add(probe.amplification);
          row.duration_s = net::to_seconds(probe.backscatter_duration);
        }
        return row;
      },
      [&](std::size_t, meta_probe_row&& row) {
        rows.push_back(std::move(row));
      });
  return rows;
}

}  // namespace certquic::core
