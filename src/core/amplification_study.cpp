#include "core/amplification_study.hpp"

#include "engine/engine.hpp"
#include "net/simulator.hpp"
#include "quic/client.hpp"
#include "quic/server.hpp"
#include "scan/telescope.hpp"
#include "scan/zmap.hpp"

namespace certquic::core {
namespace {

/// The hypergiant server fleets observed at the telescope.
struct provider_fleet {
  std::string name;
  net::ipv4 prefix;
};

}  // namespace

telescope_result run_telescope_study(const internet::model& m,
                                     const spoofed_options& opt) {
  // Unlike the per-record probes, every spoofed session shares one
  // simulator (server fleets are reused across sessions and all
  // backscatter lands on one telescope), so this study is inherently a
  // single-simulation workload and stays off the sharded engine.
  telescope_result out;
  net::simulator sim{0x7e1e'5c0e};
  scan::telescope scope{sim, net::ipv4::of(203, 0, 113, 0)};

  const provider_fleet fleets[] = {
      {"Cloudflare", net::ipv4::of(104, 16, 1, 0)},
      {"Google", net::ipv4::of(142, 250, 64, 0)},
      {"Meta", net::ipv4::of(157, 240, 229, 0)},
  };
  for (const auto& fleet : fleets) {
    scope.map_prefix(fleet.prefix, fleet.name);
  }

  rng r{0xa77ac};
  std::vector<std::unique_ptr<quic::server>> servers;
  std::vector<std::unique_ptr<quic::client>> attackers;

  // Cloudflare & Google fleets: one server per session (distinct hosts).
  auto spawn = [&](const provider_fleet& fleet, x509::chain chain,
                   const quic::server_behavior& behavior,
                   const std::string& sni, std::size_t index) {
    const net::endpoint_id server_ep{
        net::ipv4{fleet.prefix.value |
                  static_cast<std::uint32_t>(1 + index % 200)},
        443};
    if (index < 200) {  // servers are reused across sessions beyond that
      servers.push_back(std::make_unique<quic::server>(
          sim, server_ep, std::move(chain), behavior,
          m.compression_dictionary(), r.next()));
    }
    quic::client_config config;
    config.initial_size = opt.assumed_initial;
    config.send_acks = false;
    config.sni = sni;
    config.timeout = net::seconds(400);
    config.spoof_source = scope.allocate_sensor();
    const net::endpoint_id attacker_ep{net::ipv4::of(10, 66, 0, 1),
                                       static_cast<std::uint16_t>(
                                           10000 + attackers.size())};
    attackers.push_back(std::make_unique<quic::client>(
        sim, attacker_ep, server_ep, std::move(config), r.next()));
    attackers.back()->start();
  };

  const auto& eco = m.ecosystem();
  for (std::size_t i = 0; i < opt.sessions_per_provider; ++i) {
    rng issue{r.next()};
    spawn(fleets[0],
          eco.issue(eco.profile("cloudflare"),
                    "cf-" + std::to_string(i) + ".example", issue),
          quic::server_behavior::cloudflare(), "site.example", i);
    spawn(fleets[1],
          eco.issue(eco.profile("gts-1c3"),
                    "g-" + std::to_string(i) + ".example", issue),
          quic::server_behavior::google(), "google.example", i);
    const auto pop = m.meta_pop(/*post_disclosure=*/false);
    // Backscatter at real telescopes is dominated by the heavily
    // retransmitting instagram/whatsapp infrastructure (§4.3: median
    // session ~51 s); bias the attacked hosts accordingly.
    std::vector<const internet::meta_host*> deep;
    std::vector<const internet::meta_host*> shallow;
    for (const auto& host : pop) {
      if (!host.serves_quic) {
        continue;
      }
      (host.retransmissions >= 5 ? deep : shallow).push_back(&host);
    }
    const bool pick_deep = !deep.empty() && (i % 4 != 0 || shallow.empty());
    const auto& pool = pick_deep ? deep : shallow;
    const internet::meta_host& host = *pool[i % pool.size()];
    spawn(fleets[2], m.meta_chain(host), m.meta_behavior(host), host.sni, i);
  }
  sim.run();

  for (const auto& session : scope.sessions()) {
    const double factor = static_cast<double>(session.bytes) /
                          static_cast<double>(opt.assumed_initial);
    out.amplification[session.provider].add(factor);
    if (session.provider == "Meta") {
      out.meta_session_duration_s.add(net::to_seconds(session.duration()));
      out.meta_max_amplification =
          std::max(out.meta_max_amplification, factor);
    }
  }
  return out;
}

std::vector<meta_probe_row> run_meta_scan(const internet::model& m,
                                          bool post_disclosure,
                                          std::size_t repeats,
                                          const engine::options& exec) {
  std::vector<meta_probe_row> rows;
  const auto pop = m.meta_pop(post_disclosure);
  rows.reserve(pop.size());
  // One host (with its probe repeats) is one unit of work; row order
  // follows the /24's host order regardless of shard count.
  engine::parallel_ordered(
      pop.size(), exec,
      [&](std::size_t i) {
        const internet::meta_host& host = pop[i];
        meta_probe_row row;
        row.host_octet = host.address.host_octet();
        row.services = host.services;
        if (!host.serves_quic) {
          return row;
        }
        for (std::size_t k = 0; k < repeats; ++k) {
          // §4.3: single 1252-byte Initial, no ACK.
          const scan::zmap_result probe =
              scan::zmap_probe(m.meta_chain(host), m.meta_behavior(host),
                               1252, net::seconds(400), host.seed + k);
          row.responded |= probe.responded;
          row.bytes_received = probe.bytes_received;
          row.amplification.add(probe.amplification);
          row.duration_s = net::to_seconds(probe.backscatter_duration);
        }
        return row;
      },
      [&](std::size_t, meta_probe_row&& row) {
        rows.push_back(std::move(row));
      });
  return rows;
}

}  // namespace certquic::core
