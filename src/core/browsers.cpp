#include "core/browsers.hpp"

namespace certquic::core {

const std::vector<browser_profile>& browser_profiles() {
  static const std::vector<browser_profile> profiles = {
      {"Firefox", "101.x", 1357, {}},
      {"Chromium-based", "105.x", 1250, {compress::algorithm::brotli}},
      {"Safari (macOS)",
       "15.5",
       std::nullopt,
       {compress::algorithm::zlib, compress::algorithm::zstd}},
  };
  return profiles;
}

}  // namespace certquic::core
