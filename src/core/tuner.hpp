// The §5 client-side mitigation: a cache of per-server response sizes
// that lets a client pick an Initial size large enough for the server's
// flight to fit within 3x — converting Multi-RTT into 1-RTT handshakes
// without certificate compression.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "engine/engine.hpp"
#include "internet/model.hpp"

namespace certquic::internet {
class model;
}

namespace certquic::core {

/// Client-side cache of observed server first-flight sizes.
class initial_size_tuner {
 public:
  /// Client Initial bounds: RFC minimum and the local MTU ceiling.
  static constexpr std::size_t kMinInitial = 1200;
  static constexpr std::size_t kMaxInitial = 1472;

  /// Records the server's observed pre-validation requirement (bytes
  /// the server needed to deliver its full first flight).
  void record(const std::string& domain, std::size_t server_flight_bytes);

  /// Recommends an Initial size: ceil(flight/3) clamped to the legal
  /// range; kMinInitial for unknown servers.
  [[nodiscard]] std::size_t recommend(const std::string& domain) const;

  /// The recommendation arithmetic for a known flight size (shared with
  /// the engine-sharded study, which keeps no cross-thread cache).
  [[nodiscard]] static std::size_t recommend_for(
      std::size_t server_flight_bytes);

  [[nodiscard]] bool knows(const std::string& domain) const {
    return cache_.contains(domain);
  }
  [[nodiscard]] std::size_t size() const noexcept { return cache_.size(); }

 private:
  std::unordered_map<std::string, std::size_t> cache_;
};

/// Outcome of the tuner demonstration.
struct tuner_result {
  std::size_t services = 0;
  std::size_t multi_rtt_default = 0;   // with kMinInitial Initials
  std::size_t multi_rtt_tuned = 0;     // second visit, tuned Initials
  std::size_t converted_to_one_rtt = 0;
};

/// Runs the two-visit experiment: first contact with minimum-size
/// Initials (populating the cache), second contact with tuned sizes.
/// Each service's visit pair is an independent job on the engine pool.
[[nodiscard]] tuner_result run_tuner_study(const internet::model& m,
                                           std::size_t max_services,
                                           const engine::options& exec = {});

}  // namespace certquic::core
