// Post-quantum chain-profile what-if study (Chou & Cao, "Network
// Impact of Post-Quantum Certificate Chain sizes on Time to First Byte
// in TLS Deployments", applied to this paper's QUIC datasets).
//
// The study sweeps the server-side chain-profile axis — classical,
// pqc_leaf (ML-DSA-44 leaf, classical intermediates), pqc_full (ML-DSA
// everywhere) — over both aggregator populations:
//  * the certificate corpus (census + corpus: every TLS service),
//    yielding per-profile chain-size CDFs and the share of chains that
//    exceed the 3x1357 amplification budget;
//  * the handshake census (every QUIC service), probed once per
//    profile on the engine with matched per-probe randomness, yielding
//    amplification-factor distributions and handshake-class deltas
//    (1-RTT vs multi-RTT vs failed) relative to the classical baseline.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/census.hpp"
#include "engine/engine.hpp"
#include "internet/model.hpp"
#include "scan/classify.hpp"
#include "stats/cdf.hpp"

namespace certquic::core {

struct pqc_options {
  /// Client Initial size of the census pass (the paper's default).
  std::size_t initial_size = 1362;
  /// 0 = probe every QUIC service in the census pass; otherwise the
  /// shared deterministic sample.
  std::size_t max_services = 0;
  /// 0 = size every TLS chain in the corpus pass; otherwise sampled.
  std::size_t max_corpus = 0;
};

/// Everything measured under one chain profile.
struct pqc_profile_slice {
  x509::pq_profile profile = x509::pq_profile::classical;

  // Corpus pass: chain sizes by deployment class (the per-profile
  // Fig. 6 re-run). The classical slice is bit-identical to
  // analyze_corpus on the same sample.
  stats::sample_set quic_chain_sizes;
  stats::sample_set https_chain_sizes;
  /// Share of all sized chains above the 3x1357-byte amplification
  /// budget (the paper's "35%" under classical).
  double over_amp_limit = 0.0;

  // Census pass: handshake outcomes of the engine sweep.
  std::size_t probed = 0;
  std::array<std::size_t, kClassCount> counts{};
  /// First-burst amplification factors of completing handshakes (the
  /// per-profile Fig. 4 re-run).
  stats::sample_set amplification;

  [[nodiscard]] std::size_t count(scan::handshake_class c) const {
    return counts[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] double share(scan::handshake_class c) const {
    return probed == 0 ? 0.0
                       : static_cast<double>(count(c)) /
                             static_cast<double>(probed);
  }
};

struct pqc_study_result {
  std::size_t initial_size = 0;
  /// One slice per profile, in all_pq_profiles() order (classical
  /// first — the baseline every delta is computed against).
  std::vector<pqc_profile_slice> slices;

  [[nodiscard]] const pqc_profile_slice& slice(x509::pq_profile p) const;

  /// Class-count delta of slices[i] relative to the classical baseline.
  [[nodiscard]] long long class_delta(std::size_t i,
                                      scan::handshake_class c) const {
    return static_cast<long long>(slices[i].count(c)) -
           static_cast<long long>(slices[0].count(c));
  }
};

/// Runs the full sweep: one corpus sizing pass and one engine census
/// pass per profile, all on the engine pool; bit-identical at any
/// thread count. Base seed and salt stay zero so each profile probes a
/// service under its historical record-derived randomness — the three
/// runs form matched pairs and the deltas isolate the chain profile.
[[nodiscard]] pqc_study_result run_pqc_study(const internet::model& m,
                                             const pqc_options& opt,
                                             const engine::options& exec = {});

}  // namespace certquic::core
