// Order-sensitive FNV-1a fold over a probe-record stream, shared by
// every pipeline that needs to prove two record streams were identical
// *including order* (the out-of-core spill/merge comparison and the
// longitudinal service's per-epoch checkpoints). Equal digests over the
// same field set mean the streams matched record for record; aggregate
// equality alone cannot distinguish a reordering.
#pragma once

#include <cstdint>

#include "scan/reach.hpp"

namespace certquic::core {

/// FNV-1a offset basis — the digest's initial value.
inline constexpr std::uint64_t kStreamDigestSeed = 0xcbf2'9ce4'8422'2325ULL;

/// Folds one 64-bit value into the digest byte by byte.
inline void digest_mix(std::uint64_t& h, std::uint64_t v) noexcept {
  for (int shift = 0; shift < 64; shift += 8) {
    h ^= (v >> shift) & 0xff;
    h *= 0x0000'0100'0000'01b3ULL;
  }
}

/// Folds one record's identifying and observation fields. The field
/// set (and its order) is the digest's wire format: the out-of-core
/// study and the epoch store both persist/compare these values, so
/// changing it invalidates every stored digest.
inline void digest_record(std::uint64_t& h, std::uint32_t service_index,
                          std::uint32_t variant_index,
                          const scan::probe_result& result) noexcept {
  const quic::observation& o = result.obs;
  digest_mix(h, service_index);
  digest_mix(h, variant_index);
  digest_mix(h, static_cast<std::uint64_t>(result.cls));
  digest_mix(h, o.handshake_complete ? 1 : 0);
  digest_mix(h, o.bytes_sent_total);
  digest_mix(h, o.bytes_received_total);
  digest_mix(h, o.bytes_received_first_burst);
  digest_mix(h, o.tls_bytes_received);
  digest_mix(h, o.certificate_msg_size);
  digest_mix(h, o.complete_time);
  digest_mix(h, o.certificate_message.size());
}

}  // namespace certquic::core
