#include "core/outofcore_study.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "core/stream_digest.hpp"
#include "engine/spill.hpp"
#include "util/errors.hpp"
#include "util/rss_meter.hpp"

namespace certquic::core {
namespace {

/// Folds one record into the aggregate. Shared by both paths, so any
/// divergence between them is a pipeline bug, never an aggregator one.
void accumulate(outofcore_aggregate& agg, std::uint32_t service_index,
                std::uint32_t variant_index,
                const scan::probe_result& result) {
  const quic::observation& o = result.obs;
  ++agg.records;
  ++agg.counts[static_cast<std::size_t>(result.cls)];
  agg.bytes_sent_total += o.bytes_sent_total;
  agg.bytes_received_total += o.bytes_received_total;
  agg.certificate_bytes += o.certificate_msg_size;
  if (o.handshake_complete) {
    agg.first_burst_amplification.add(o.first_burst_amplification());
  }
  digest_record(agg.stream_digest, service_index, variant_index, result);
}

/// Streaming aggregator for the spill → merge path: folds each merged
/// record and keeps nothing else.
class aggregate_sink final : public engine::observation_sink {
 public:
  explicit aggregate_sink(outofcore_aggregate& agg) : agg_(agg) {}

  void on_begin(const engine::probe_plan& plan,
                std::size_t sampled) override {
    lifecycle_.begin();
    agg_.first_burst_amplification.reserve(sampled * plan.variants.size());
  }
  void on_record(const engine::probe_record& rec) override {
    lifecycle_.record();
    accumulate(agg_, rec.service_index, rec.variant_index, rec.result);
  }
  void on_end() override { lifecycle_.end(); }

 private:
  outofcore_aggregate& agg_;
  engine::sink_lifecycle lifecycle_;
};

/// What the materializing baseline keeps per probe: the full result —
/// including any captured certificate bytes — exactly what a
/// store-then-analyze pipeline pins in memory for the whole run.
struct stored_record {
  std::uint32_t service_index = 0;
  std::uint32_t variant_index = 0;
  scan::probe_result result;
};

std::string shard_path(const std::filesystem::path& dir, std::size_t shard) {
  char name[48];
  std::snprintf(name, sizeof name, "shard_%04zu.spill", shard);
  return (dir / name).string();
}

/// Deletes the shard files on scope exit unless released — spills must
/// not leak on the error paths (disk-full, failed replay) this
/// pipeline exists to surface.
class spill_cleanup {
 public:
  explicit spill_cleanup(const std::vector<std::string>& paths)
      : paths_(paths) {}
  ~spill_cleanup() {
    if (released_) {
      return;
    }
    std::error_code ec;
    for (const std::string& path : paths_) {
      std::filesystem::remove(path, ec);
    }
  }
  void release() noexcept { released_ = true; }

 private:
  const std::vector<std::string>& paths_;
  bool released_ = false;
};

}  // namespace

outofcore_result run_outofcore_study(const internet::model& m,
                                     const outofcore_options& opt,
                                     const engine::options& exec) {
  if (opt.spill_dir.empty()) {
    throw config_error("run_outofcore_study: spill_dir must be set");
  }
  const std::filesystem::path dir{opt.spill_dir};
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw config_error("run_outofcore_study: cannot create spill_dir " +
                       opt.spill_dir + ": " + ec.message());
  }

  engine::probe_variant variant;
  variant.initial_size = opt.initial_size;
  variant.capture_certificate = opt.capture_certificate;
  variant.chain_profile = opt.chain_profile;
  const engine::probe_plan plan =
      engine::probe_plan::single(std::move(variant), opt.max_services);

  const engine::executor eng{m, exec};
  const std::vector<std::uint32_t> sampled = eng.sample(plan);

  outofcore_result out;
  out.sampled = sampled.size();
  out.shards = std::clamp<std::size_t>(
      opt.shards, 1, std::max<std::size_t>(1, sampled.size()));
  const std::size_t per_shard =
      (std::max<std::size_t>(1, sampled.size()) + out.shards - 1) /
      out.shards;

  std::vector<std::string> paths;
  paths.reserve(out.shards);
  for (std::size_t s = 0; s < out.shards; ++s) {
    paths.push_back(shard_path(dir, s));
  }
  spill_cleanup cleanup{paths};

  // Spill path first: with per-phase peak resets this order does not
  // matter, but on platforms where the meter falls back to sampling a
  // monotonic RSS it keeps the baseline's heap from being billed to
  // the spill phase.
  {
    rss_meter::phase phase;
    for (std::size_t s = 0; s < out.shards; ++s) {
      const std::size_t lo = std::min(sampled.size(), s * per_shard);
      const std::size_t hi = std::min(sampled.size(), lo + per_shard);
      const std::vector<std::uint32_t> slice(sampled.begin() + lo,
                                             sampled.begin() + hi);
      engine::spill_sink sink{paths[s]};
      eng.run(plan, slice, sink);
      out.shard_records.push_back(sink.records_written());
    }
    aggregate_sink agg{out.spill};
    const engine::spill_merge merge{m, plan};
    merge.replay(paths, agg);
    out.spill_peak_rss_kb = phase.peak_kb();
  }

  if (opt.compare_in_memory) {
    rss_meter::phase phase;
    std::vector<stored_record> all;
    all.reserve(sampled.size() * plan.variants.size());
    engine::callback_sink collect{[&](const engine::probe_record& rec) {
      all.push_back(stored_record{
          .service_index = rec.service_index,
          .variant_index = rec.variant_index,
          .result = rec.result,
      });
    }};
    eng.run(plan, sampled, collect);
    out.in_memory.first_burst_amplification.reserve(all.size());
    for (const stored_record& rec : all) {
      accumulate(out.in_memory, rec.service_index, rec.variant_index,
                 rec.result);
    }
    out.in_memory_peak_rss_kb = phase.peak_kb();
    out.compared = true;
    out.identical = out.spill.same_as(out.in_memory);
  }

  if (opt.keep_spills) {
    out.spill_paths = paths;
    cleanup.release();
  }
  return out;
}

}  // namespace certquic::core
