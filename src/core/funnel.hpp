// The §3.1/§3.2 measurement funnel: DNS resolution, HTTPS certificate
// collection, QUIC service discovery and the certificate-consistency
// sanitization.
#pragma once

#include <array>
#include <cstdint>

#include "engine/engine.hpp"
#include "http/collector.hpp"
#include "internet/model.hpp"

namespace certquic::core {

struct funnel_result {
  std::size_t domains = 0;
  // DNS outcomes (§3.1): indexed by dns::outcome.
  std::array<std::size_t, 6> dns_outcomes{};
  http::collection_stats collection;
  std::size_t quic_services = 0;
  // §3.2 sanitization: fraction of QUIC services serving the same leaf
  // as over HTTPS (96.7% in the paper).
  std::size_t consistency_checked = 0;
  std::size_t consistency_same = 0;

  [[nodiscard]] double consistency_share() const {
    return consistency_checked == 0
               ? 0.0
               : static_cast<double>(consistency_same) /
                     static_cast<double>(consistency_checked);
  }
};

struct funnel_options {
  /// QUIC services to cross-check over both protocols (QScanner pass).
  std::size_t consistency_sample = 300;
};

[[nodiscard]] funnel_result run_funnel(const internet::model& m,
                                       const funnel_options& opt,
                                       const engine::options& exec = {});

}  // namespace certquic::core
