// Spoofed-handshake amplification studies (§4.3): telescope backscatter
// per hypergiant (Fig. 9) and the active Meta /24 scans (Fig. 11).
// Both run on the experiment engine — the telescope pass as a
// backscatter_backend whose shard worlds each host one simulator and
// telescope shared by a fixed slice of sessions, so its aggregates are
// bit-identical at any thread count.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "engine/backend.hpp"
#include "engine/engine.hpp"
#include "internet/model.hpp"
#include "stats/cdf.hpp"
#include "stats/summary.hpp"

namespace certquic::core {

struct spoofed_options {
  /// Spoofed sessions per provider fed to the telescope.
  std::size_t sessions_per_provider = 120;
  /// Assumed client Initial for the amplification divisor (the paper
  /// divides telescope bytes by 1362).
  std::size_t assumed_initial = 1362;
};

/// Telescope study output (Fig. 9).
struct telescope_result {
  std::map<std::string, stats::sample_set> amplification;  // per provider
  stats::sample_set meta_session_duration_s;
  double meta_max_amplification = 0.0;
};

/// The spoofed-session plan behind the telescope study: hypergiant
/// fleets plus the biased Meta host mix, with per-session seeds that
/// are pure functions of the session index. Exposed for tests and for
/// callers composing their own backscatter sweeps.
[[nodiscard]] engine::backscatter_plan build_telescope_plan(
    const internet::model& m, const spoofed_options& opt);

/// Runs the telescope study on the engine's backscatter backend;
/// parallel by default, bit-identical at any thread count.
[[nodiscard]] telescope_result run_telescope_study(
    const internet::model& m, const spoofed_options& opt,
    const engine::options& exec = {});

/// One row of the Meta /24 active scan (Fig. 11, §4.3 groups).
struct meta_probe_row {
  int host_octet = 0;
  std::string services;
  bool responded = false;
  std::size_t bytes_received = 0;
  stats::summary amplification;  // across repeats, with CI
  double duration_s = 0.0;
};

/// Active single-Initial scan of every host in the Meta PoP /24
/// (1252-byte Initial, no ACKs — §4.3). Hosts are probed in parallel on
/// the engine pool; rows keep the /24's host order.
[[nodiscard]] std::vector<meta_probe_row> run_meta_scan(
    const internet::model& m, bool post_disclosure, std::size_t repeats = 3,
    const engine::options& exec = {});

}  // namespace certquic::core
