#include "core/census.hpp"

#include "scan/reach.hpp"

namespace certquic::core {

std::vector<std::size_t> initial_size_sweep() {
  std::vector<std::size_t> sizes;
  for (std::size_t s = 1200; s + 10 <= 1472; s += 10) {
    sizes.push_back(s);
  }
  sizes.push_back(1472);
  return sizes;
}

census_result run_census(const internet::model& m,
                         const census_options& opt) {
  census_result out;
  out.initial_size = opt.initial_size;

  scan::reach prober{m};
  scan::probe_options popt;
  popt.initial_size = opt.initial_size;

  // Deterministic striding sample when capped.
  std::size_t quic_total = 0;
  for (const auto& rec : m.records()) {
    quic_total += rec.serves_quic() ? 1 : 0;
  }
  const std::size_t stride =
      opt.max_services == 0 || quic_total <= opt.max_services
          ? 1
          : (quic_total + opt.max_services - 1) / opt.max_services;

  std::size_t quic_index = 0;
  for (const auto& rec : m.records()) {
    if (!rec.serves_quic()) {
      continue;
    }
    if (quic_index++ % stride != 0) {
      continue;
    }
    const scan::probe_result probe = prober.probe(rec, popt);
    ++out.probed;
    const auto cls_idx = static_cast<std::size_t>(probe.cls);
    ++out.counts[cls_idx];
    ++out.group_counts[m.rank_group(rec)][cls_idx];

    if (!opt.collect_payload_details) {
      continue;
    }
    const quic::observation& obs = probe.obs;
    if (obs.handshake_complete) {
      out.first_burst_amplification.add(obs.first_burst_amplification());
    }
    switch (probe.cls) {
      case scan::handshake_class::multi_rtt: {
        out.multi_rtt_payload.emplace_back(obs.bytes_received_total,
                                           obs.tls_bytes_received);
        if (obs.tls_bytes_received > 3 * obs.bytes_sent_first_flight) {
          ++out.multi_tls_exceeding_limit;
        }
        const std::size_t non_tls =
            obs.bytes_received_total - obs.tls_bytes_received;
        out.max_non_tls_bytes = std::max(out.max_non_tls_bytes, non_tls);
        break;
      }
      case scan::handshake_class::amplification: {
        ++out.amplifying;
        if (rec.behavior == internet::behavior_kind::cloudflare) {
          ++out.amplifying_cloudflare;
          out.cloudflare_padding.add(
              static_cast<double>(obs.padding_bytes_first_burst));
        }
        break;
      }
      default:
        break;
    }
  }
  return out;
}

}  // namespace certquic::core
