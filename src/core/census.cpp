#include "core/census.hpp"

#include "engine/engine.hpp"

namespace certquic::core {
namespace {

/// Streams census probes into a census_result. Runs on the executor's
/// caller thread in plan order, so the aggregate is bit-identical to
/// the historical serial loop at any thread count.
class census_aggregator final : public engine::observation_sink {
 public:
  census_aggregator(const internet::model& m, const census_options& opt,
                    census_result& out)
      : model_(m), opt_(opt), out_(out) {}

  void on_begin(const engine::probe_plan& plan,
                std::size_t sampled) override {
    lifecycle_.begin();
    if (opt_.collect_payload_details) {
      out_.first_burst_amplification.reserve(sampled * plan.variants.size());
    }
  }

  void on_record(const engine::probe_record& pr) override {
    lifecycle_.record();
    const scan::probe_result& probe = pr.result;
    ++out_.probed;
    const auto cls_idx = static_cast<std::size_t>(probe.cls);
    ++out_.counts[cls_idx];
    ++out_.group_counts[model_.rank_group(pr.record)][cls_idx];

    if (!opt_.collect_payload_details) {
      return;
    }
    const quic::observation& obs = probe.obs;
    if (obs.handshake_complete) {
      out_.first_burst_amplification.add(obs.first_burst_amplification());
    }
    switch (probe.cls) {
      case scan::handshake_class::multi_rtt: {
        out_.multi_rtt_payload.emplace_back(obs.bytes_received_total,
                                            obs.tls_bytes_received);
        if (obs.tls_bytes_received > 3 * obs.bytes_sent_first_flight) {
          ++out_.multi_tls_exceeding_limit;
        }
        const std::size_t non_tls =
            obs.bytes_received_total - obs.tls_bytes_received;
        out_.max_non_tls_bytes = std::max(out_.max_non_tls_bytes, non_tls);
        break;
      }
      case scan::handshake_class::amplification: {
        ++out_.amplifying;
        if (pr.record.behavior == internet::behavior_kind::cloudflare) {
          ++out_.amplifying_cloudflare;
          out_.cloudflare_padding.add(
              static_cast<double>(obs.padding_bytes_first_burst));
        }
        break;
      }
      default:
        break;
    }
  }

  void on_end() override {
    lifecycle_.end();
    // Eager sort while still single-threaded (the sample_set contract):
    // results handed out of the run are then safe for concurrent
    // quantile reads without ever contending on the lazy-sort lock.
    out_.first_burst_amplification.finalize();
    out_.cloudflare_padding.finalize();
  }

 private:
  const internet::model& model_;
  const census_options& opt_;
  census_result& out_;
  engine::sink_lifecycle lifecycle_;
};

}  // namespace

std::vector<std::size_t> initial_size_sweep() {
  std::vector<std::size_t> sizes;
  for (std::size_t s = 1200; s + 10 <= 1472; s += 10) {
    sizes.push_back(s);
  }
  sizes.push_back(1472);
  return sizes;
}

census_result run_census(const internet::model& m, const census_options& opt,
                         const engine::options& exec) {
  census_result out;
  out.initial_size = opt.initial_size;

  engine::probe_variant variant;
  variant.initial_size = opt.initial_size;
  const engine::probe_plan plan =
      engine::probe_plan::single(std::move(variant), opt.max_services);

  census_aggregator aggregator{m, opt, out};
  engine::executor{m, exec}.run(plan, aggregator);
  return out;
}

namespace {

/// Streams the 3-variant ACK-policy sweep into per-policy slices; one
/// on_record dispatch keyed by variant index, no locking (plan order).
class ack_sweep_aggregator final : public engine::observation_sink {
 public:
  explicit ack_sweep_aggregator(ack_sweep_result& out) : out_(out) {}

  void on_begin(const engine::probe_plan& plan,
                std::size_t sampled) override {
    lifecycle_.begin();
    out_.slices.resize(plan.variants.size());
    for (std::size_t v = 0; v < plan.variants.size(); ++v) {
      out_.slices[v].policy = plan.variants[v].ack;
      out_.slices[v].handshake_ms.reserve(sampled);
    }
  }

  void on_record(const engine::probe_record& pr) override {
    lifecycle_.record();
    ack_census_slice& slice = out_.slices[pr.variant_index];
    ++slice.probed;
    ++slice.counts[static_cast<std::size_t>(pr.result.cls)];
    const quic::observation& obs = pr.result.obs;
    if (obs.handshake_complete) {
      slice.handshake_ms.add(
          static_cast<double>(obs.complete_time - obs.start_time) / 1000.0);
    }
  }

  void on_end() override {
    lifecycle_.end();
    for (ack_census_slice& slice : out_.slices) {
      slice.handshake_ms.finalize();
    }
  }

 private:
  ack_sweep_result& out_;
  engine::sink_lifecycle lifecycle_;
};

}  // namespace

ack_sweep_result run_ack_sweep(const internet::model& m,
                               std::size_t max_services,
                               const engine::options& exec) {
  // Base seed and salt stay zero: every variant probes a service under
  // its historical record-derived randomness, so the three policies
  // form matched pairs and their deltas isolate the client behaviour.
  engine::probe_plan plan;
  plan.max_services = max_services;
  plan.sweep_ack_policies();

  ack_sweep_result out;
  ack_sweep_aggregator aggregator{out};
  engine::executor{m, exec}.run(plan, aggregator);
  return out;
}

}  // namespace certquic::core
