// Out-of-core sweep study: the driver that finally decouples population
// size from resident memory. A large probe plan is partitioned into
// shard-sized sub-plans, each shard runs through the engine into its
// own spill file (engine/spill.hpp), and the shards are merged back in
// plan order through a streaming aggregator — so the peak working set
// is one record per shard instead of the whole record stream. The study
// optionally runs the materializing in-memory baseline over the same
// plan and reports both aggregates (bit-identical by construction —
// enforced at 1/2/8 threads by tests/outofcore_test.cpp) plus the peak
// RSS of each path (util/rss_meter.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/census.hpp"
#include "core/stream_digest.hpp"
#include "engine/engine.hpp"
#include "internet/model.hpp"
#include "scan/classify.hpp"
#include "stats/cdf.hpp"

namespace certquic::core {

/// Parameters of one out-of-core sweep.
struct outofcore_options {
  /// 0 = probe every QUIC service; otherwise the deterministic sample.
  std::size_t max_services = 0;
  /// Spill shards. The sample is cut into `shards` contiguous slices;
  /// each slice spills to its own file. Clamped to [1, sample size].
  std::size_t shards = 8;
  /// Directory for the shard spill files; created when missing.
  std::string spill_dir;
  std::size_t initial_size = 1362;
  /// Retain raw Certificate messages in the stream (QScanner mode) —
  /// multiplies per-record bytes, which is exactly what makes the
  /// in-memory path blow up first on pqc_full-style chains.
  bool capture_certificate = false;
  /// Chain profile served by the probed population (the PQC axis).
  x509::pq_profile chain_profile = x509::pq_profile::classical;
  /// Also run the materializing in-memory baseline and compare.
  bool compare_in_memory = true;
  /// Leave the shard files on disk (for later re-aggregation).
  bool keep_spills = false;
};

/// One path's aggregate over the full record stream. Every field is a
/// pure fold over the stream in plan order, so two paths that saw the
/// same records in the same order agree bit-for-bit.
struct outofcore_aggregate {
  std::size_t records = 0;
  std::array<std::size_t, kClassCount> counts{};
  unsigned long long bytes_sent_total = 0;
  unsigned long long bytes_received_total = 0;
  unsigned long long certificate_bytes = 0;
  stats::sample_set first_burst_amplification;
  /// Order-sensitive FNV-1a fold over every record's identifying and
  /// observation fields (core/stream_digest.hpp): equal digests mean
  /// the two streams were identical *including order*, not just equal
  /// in aggregate.
  std::uint64_t stream_digest = kStreamDigestSeed;

  [[nodiscard]] std::size_t count(scan::handshake_class c) const {
    return counts[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] bool same_as(const outofcore_aggregate& other) const {
    return records == other.records && counts == other.counts &&
           bytes_sent_total == other.bytes_sent_total &&
           bytes_received_total == other.bytes_received_total &&
           certificate_bytes == other.certificate_bytes &&
           stream_digest == other.stream_digest;
  }
};

/// Study output. RSS figures are kilobytes and 0 when the platform
/// cannot measure (see util/rss_meter.hpp) — never compare them into
/// pass/fail logic on such platforms.
struct outofcore_result {
  std::size_t sampled = 0;
  std::size_t shards = 0;
  /// Records written per shard file (sums to spill.records).
  std::vector<std::size_t> shard_records;
  /// Shard spill paths; populated only when keep_spills was set.
  std::vector<std::string> spill_paths;

  outofcore_aggregate spill;      // shard → spill → merge path
  outofcore_aggregate in_memory;  // materializing baseline (if compared)
  bool compared = false;
  bool identical = false;  // spill.same_as(in_memory), when compared

  std::size_t spill_peak_rss_kb = 0;
  std::size_t in_memory_peak_rss_kb = 0;
};

/// Runs the sharded spill → merge pipeline (and, by default, the
/// in-memory baseline) over the QUIC population. Probes execute on the
/// engine's thread pool; both paths' aggregates are bit-identical at
/// any thread count. Throws config_error when spill_dir is empty or
/// cannot be created.
[[nodiscard]] outofcore_result run_outofcore_study(
    const internet::model& m, const outofcore_options& opt,
    const engine::options& exec = {});

}  // namespace certquic::core
