#include "core/ttfb_study.hpp"

#include "engine/probe_plan.hpp"
#include "util/errors.hpp"

namespace certquic::core {
namespace {

/// Streams the profile x condition sweep into per-cell slices; one
/// on_record dispatch keyed by variant index, no locking (records
/// arrive in plan order on the caller's thread).
class ttfb_aggregator final : public engine::observation_sink {
 public:
  explicit ttfb_aggregator(std::vector<ttfb_cell>& cells) : cells_(cells) {}

  void on_begin(const engine::probe_plan& plan,
                std::size_t sampled) override {
    (void)plan;
    lifecycle_.begin();
    for (ttfb_cell& cell : cells_) {
      cell.ttfb_ms.reserve(sampled);
    }
  }

  void on_record(const engine::probe_record& pr) override {
    lifecycle_.record();
    ttfb_cell& cell = cells_[pr.variant_index];
    ++cell.probed;
    ++cell.counts[static_cast<std::size_t>(pr.result.cls)];
    if (pr.result.ttfb != 0) {
      cell.ttfb_ms.add(static_cast<double>(pr.result.ttfb) / 1000.0);
    }
  }

  void on_end() override {
    lifecycle_.end();
    for (ttfb_cell& cell : cells_) {
      cell.ttfb_ms.finalize();
    }
  }

 private:
  std::vector<ttfb_cell>& cells_;
  engine::sink_lifecycle lifecycle_;
};

}  // namespace

std::vector<net::network_condition> default_network_conditions() {
  return {
      // The historical simulator path every other study runs under.
      {.name = "ideal", .rtt = net::milliseconds(20), .loss_rate = 0.0,
       .bandwidth_bps = 0},
      // Wired access: fast, clean, but serialization is no longer free.
      {.name = "broadband", .rtt = net::milliseconds(30), .loss_rate = 0.0,
       .bandwidth_bps = 100'000'000},
      // Cellular: longer path, 1% loss makes PTOs part of the timeline.
      {.name = "mobile", .rtt = net::milliseconds(60), .loss_rate = 0.01,
       .bandwidth_bps = 20'000'000},
      // Satellite/rural long-thin pipe: big chains pay for every byte.
      {.name = "constrained", .rtt = net::milliseconds(120),
       .loss_rate = 0.0, .bandwidth_bps = 2'000'000},
  };
}

const ttfb_cell& ttfb_study_result::cell(x509::pq_profile p,
                                         std::size_t condition) const {
  // Cells are profile-major: each profile owns one contiguous run of
  // conditions.size() cells.
  for (std::size_t i = 0; condition < conditions.size() &&
                          i + conditions.size() <= cells.size();
       i += conditions.size()) {
    if (cells[i].profile == p) {
      return cells[i + condition];
    }
  }
  throw config_error("ttfb_study_result: no cell for profile " +
                     x509::to_string(p) + " condition " +
                     std::to_string(condition));
}

ttfb_study_result run_ttfb_study(const internet::model& m,
                                 const ttfb_options& opt,
                                 const engine::options& exec) {
  const std::vector<x509::pq_profile> profiles =
      opt.profiles.empty() ? std::vector<x509::pq_profile>(
                                 x509::all_pq_profiles().begin(),
                                 x509::all_pq_profiles().end())
                           : opt.profiles;
  const std::vector<net::network_condition> conditions =
      opt.conditions.empty() ? default_network_conditions() : opt.conditions;

  ttfb_study_result out;
  out.initial_size = opt.initial_size;
  out.conditions = conditions;

  // Profile-major over the condition grid, classical x ideal first:
  // with base seed and salt at zero, every variant probes each service
  // under its historical record-derived randomness, so the classical x
  // ideal cell consumes randomness matched to run_census and its class
  // counts agree bit-for-bit (tests/ttfb_test pins this).
  engine::probe_plan plan;
  plan.max_services = opt.max_services;
  for (const x509::pq_profile profile : profiles) {
    for (const net::network_condition& condition : conditions) {
      engine::probe_variant v;
      v.initial_size = opt.initial_size;
      v.chain_profile = profile;
      v.network = condition;
      v.measure_ttfb = true;
      plan.variants.push_back(std::move(v));

      ttfb_cell cell;
      cell.profile = profile;
      cell.condition = condition;
      out.cells.push_back(std::move(cell));
    }
  }

  ttfb_aggregator aggregator{out.cells};
  engine::executor{m, exec}.run(plan, aggregator);
  return out;
}

}  // namespace certquic::core
