#include "core/funnel.hpp"

#include "engine/engine.hpp"
#include "scan/qscanner.hpp"

namespace certquic::core {
namespace {

/// Outcome of one consistency cross-check (QUIC fetch vs HTTPS chain).
struct consistency_check {
  bool fetched = false;
  bool same_leaf = false;
};

}  // namespace

funnel_result run_funnel(const internet::model& m, const funnel_options& opt,
                         const engine::options& exec) {
  funnel_result out;
  out.domains = m.records().size();
  for (const auto& rec : m.records()) {
    ++out.dns_outcomes[static_cast<std::size_t>(rec.dns_result)];
    out.quic_services += rec.serves_quic() ? 1 : 0;
  }

  const http::collector collector{m};
  out.collection = collector.collect_all();

  // QScanner cross-check: fetch over QUIC, compare against HTTPS. The
  // whole check — probe, Certificate-message parse and the HTTPS chain
  // re-materialization — is deterministic per record, so it all runs
  // on the engine pool; only two counters aggregate serially.
  const scan::qscanner qs{m};
  const std::vector<std::uint32_t> sampled = engine::sample_indices(
      m, engine::service_filter::quic, opt.consistency_sample);
  engine::parallel_ordered(
      sampled.size(), exec,
      [&](std::size_t i) {
        const auto& rec = m.records()[sampled[i]];
        const scan::qscan_result fetched = qs.fetch(rec);
        consistency_check check;
        check.fetched = fetched.ok;
        check.same_leaf =
            fetched.ok && qs.leaf_matches_https(m, rec, fetched);
        return check;
      },
      [&](std::size_t, consistency_check&& check) {
        if (!check.fetched) {
          return;
        }
        ++out.consistency_checked;
        out.consistency_same += check.same_leaf ? 1 : 0;
      });
  return out;
}

}  // namespace certquic::core
