#include "core/funnel.hpp"

#include "scan/qscanner.hpp"

namespace certquic::core {

funnel_result run_funnel(const internet::model& m,
                         const funnel_options& opt) {
  funnel_result out;
  out.domains = m.records().size();
  for (const auto& rec : m.records()) {
    ++out.dns_outcomes[static_cast<std::size_t>(rec.dns_result)];
    out.quic_services += rec.serves_quic() ? 1 : 0;
  }

  const http::collector collector{m};
  out.collection = collector.collect_all();

  // QScanner cross-check: fetch over QUIC, compare against HTTPS.
  scan::qscanner qs{m};
  std::size_t quic_total = out.quic_services;
  const std::size_t stride =
      opt.consistency_sample == 0 || quic_total <= opt.consistency_sample
          ? 1
          : (quic_total + opt.consistency_sample - 1) /
                opt.consistency_sample;
  std::size_t quic_index = 0;
  for (const auto& rec : m.records()) {
    if (!rec.serves_quic()) {
      continue;
    }
    if (quic_index++ % stride != 0) {
      continue;
    }
    const scan::qscan_result fetched = qs.fetch(rec);
    if (!fetched.ok) {
      continue;
    }
    ++out.consistency_checked;
    out.consistency_same +=
        qs.leaf_matches_https(m, rec, fetched) ? 1 : 0;
  }
  return out;
}

}  // namespace certquic::core
