// Per-epoch aggregation for the longitudinal census service
// (src/service/): one epoch_aggregate is a pure fold over an epoch's
// record stream in plan order — counts, byte totals, the amplification
// and certificate-size distributions, and the order-sensitive stream
// digest the epoch store checkpoints. epoch_delta is the epoch-over-
// epoch movement report (handshake-class shifts, CDF movement) the
// service and bench/fig_epoch_deltas print.
#pragma once

#include <array>
#include <cstdint>

#include "core/census.hpp"
#include "core/stream_digest.hpp"
#include "engine/sink.hpp"
#include "stats/cdf.hpp"

namespace certquic::core {

/// Everything one census epoch aggregates. Every field is a pure fold
/// over the stream in plan order, so a re-merged (resumed) epoch is
/// bit-identical to an uninterrupted one.
struct epoch_aggregate {
  std::size_t records = 0;
  std::array<std::size_t, kClassCount> counts{};
  unsigned long long bytes_sent_total = 0;
  unsigned long long bytes_received_total = 0;
  unsigned long long certificate_bytes = 0;
  /// First-burst amplification of completed handshakes (the Fig. 4
  /// axis; its CDF movement across epochs tracks the churn).
  stats::sample_set first_burst_amplification;
  /// Certificate message sizes (bytes) of records that delivered one —
  /// the chain-size axis of Fig. 6.
  stats::sample_set certificate_msg_sizes;
  /// Order-sensitive digest (core/stream_digest.hpp) over the same
  /// field set the out-of-core study folds; persisted per epoch by the
  /// epoch store and cross-checked on resume.
  std::uint64_t stream_digest = kStreamDigestSeed;

  [[nodiscard]] std::size_t count(scan::handshake_class c) const {
    return counts[static_cast<std::size_t>(c)];
  }
};

/// Streaming sink that folds a plan-ordered record stream into an
/// epoch_aggregate; on_end finalizes the sample sets so the aggregate
/// can be shared read-only.
class epoch_aggregate_sink final : public engine::observation_sink {
 public:
  explicit epoch_aggregate_sink(epoch_aggregate& agg) : agg_(agg) {}

  void on_begin(const engine::probe_plan& plan,
                std::size_t sampled) override;
  void on_record(const engine::probe_record& rec) override;
  void on_end() override;

 private:
  epoch_aggregate& agg_;
  engine::sink_lifecycle lifecycle_;
};

/// Epoch-over-epoch movement between two aggregates.
struct epoch_delta {
  std::array<long long, kClassCount> class_delta{};
  long long record_delta = 0;
  double amplification_median_delta = 0.0;
  double amplification_p95_delta = 0.0;
  double certificate_median_delta = 0.0;
  double certificate_p95_delta = 0.0;

  [[nodiscard]] long long class_shift(scan::handshake_class c) const {
    return class_delta[static_cast<std::size_t>(c)];
  }
};

/// The movement from `prev` to `cur`. Quantile deltas treat an empty
/// sample set as 0 (an epoch with no completed handshakes reports the
/// full drop through the class counts instead).
[[nodiscard]] epoch_delta delta_between(const epoch_aggregate& prev,
                                        const epoch_aggregate& cur);

}  // namespace certquic::core
