// Handshake census: an aggregator over the experiment engine that
// probes every QUIC service and accumulates the data behind Figures 3,
// 4, 5 and 13.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "engine/engine.hpp"
#include "internet/model.hpp"
#include "scan/classify.hpp"
#include "stats/cdf.hpp"

namespace certquic::core {

/// Number of handshake classes (indexable by handshake_class).
inline constexpr std::size_t kClassCount = 5;

/// Census parameters.
struct census_options {
  std::size_t initial_size = 1362;
  /// 0 = probe every QUIC service; otherwise a deterministic sample.
  std::size_t max_services = 0;
  /// Collect the per-probe payload details (Figs. 4/5); skip to speed
  /// up pure classification sweeps (Fig. 3).
  bool collect_payload_details = true;
};

/// Census output.
struct census_result {
  std::size_t initial_size = 0;
  std::size_t probed = 0;

  /// Counts by handshake class.
  std::array<std::size_t, kClassCount> counts{};
  /// Counts by rank group x class (Fig. 13).
  std::array<std::array<std::size_t, kClassCount>,
             internet::model::kRankGroups>
      group_counts{};

  /// First-burst amplification factors of completing handshakes
  /// (Fig. 4).
  stats::sample_set first_burst_amplification;

  /// Per multi-RTT handshake: (total received, TLS-only received)
  /// during the whole handshake (Fig. 5).
  std::vector<std::pair<std::size_t, std::size_t>> multi_rtt_payload;
  std::size_t multi_tls_exceeding_limit = 0;
  std::size_t max_non_tls_bytes = 0;  // "remaining QUIC bytes" maximum

  /// Amplification attribution (§4.1).
  std::size_t amplifying = 0;
  std::size_t amplifying_cloudflare = 0;
  /// Padding observed on Cloudflare-profile amplifying handshakes
  /// (constant 2462 in the paper).
  stats::sample_set cloudflare_padding;

  [[nodiscard]] std::size_t count(scan::handshake_class c) const {
    return counts[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] double share(scan::handshake_class c) const {
    return probed == 0 ? 0.0
                       : static_cast<double>(count(c)) /
                             static_cast<double>(probed);
  }
};

/// Runs the census at one Initial size. Probes execute on the engine's
/// sharded thread pool (`exec`); the aggregate is bit-identical at any
/// thread count.
[[nodiscard]] census_result run_census(const internet::model& m,
                                       const census_options& opt,
                                       const engine::options& exec = {});

/// Convenience: the paper's Fig. 3 sweep, 1200..1472 in steps of 10
/// (the last step lands on 1472, the MTU-dictated maximum).
[[nodiscard]] std::vector<std::size_t> initial_size_sweep();

/// One ACK-policy slice of the ReACKed-QUICer sweep: class counts and
/// handshake completion times under a single client ACK behaviour.
struct ack_census_slice {
  quic::ack_policy policy = quic::ack_policy::delayed;
  std::size_t probed = 0;
  std::array<std::size_t, kClassCount> counts{};
  /// Completion time (ms) of every completed handshake.
  stats::sample_set handshake_ms;

  [[nodiscard]] std::size_t count(scan::handshake_class c) const {
    return counts[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::size_t completed() const {
    return handshake_ms.size();
  }
};

/// Output of the client-behaviour sweep (delayed / instant / none).
struct ack_sweep_result {
  std::vector<ack_census_slice> slices;  // plan variant order

  /// Class-count delta of `slice` relative to the delayed baseline.
  [[nodiscard]] long long class_delta(std::size_t slice,
                                      scan::handshake_class c) const {
    return static_cast<long long>(slices[slice].count(c)) -
           static_cast<long long>(slices[0].count(c));
  }
};

/// Sweeps the client ACK-policy axis over the census population: the
/// same services, matched per-probe randomness, three client
/// behaviours. Reports per-class deltas and completion-time shifts
/// (the "ReACKed QUICer" scenario).
[[nodiscard]] ack_sweep_result run_ack_sweep(
    const internet::model& m, std::size_t max_services,
    const engine::options& exec = {});

}  // namespace certquic::core
