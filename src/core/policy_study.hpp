// Executable ablation of Table 3: how many bytes a spoofing attacker
// elicits from the same server under each historical IETF draft's
// anti-amplification rule.
#pragma once

#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "internet/model.hpp"
#include "quic/behavior.hpp"

namespace certquic::core {

/// One Table 3 row, measured.
struct policy_row {
  quic::amplification_policy policy;
  std::string spec;        // "Draft 09", "RFC 9000", ...
  std::string rule;        // the paper's quoted rule, abbreviated
  std::size_t bytes_sent = 0;      // attacker's single Initial
  std::size_t bytes_received = 0;  // total backscatter incl. resends
  double amplification = 0.0;
};

/// Probes one representative chain under every policy with an
/// unacknowledged 1200-byte Initial. Runs on the engine's backscatter
/// backend — one isolated spoofed-session world per policy — so the
/// rows are bit-identical at any thread count.
[[nodiscard]] std::vector<policy_row> run_policy_study(
    const internet::model& m, const std::string& chain_profile_id,
    const engine::options& exec = {});

}  // namespace certquic::core
