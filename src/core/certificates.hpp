// Certificate-corpus analyses: Figures 2b, 6, 7, 8, 14 and Table 2.
#pragma once

#include <array>
#include <map>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "internet/chain_cache.hpp"
#include "internet/model.hpp"
#include "stats/cdf.hpp"
#include "stats/summary.hpp"

namespace certquic::core {

/// The key-algorithm classes of Table 2 in display order — the four
/// classical classes of the paper followed by the ML-DSA classes of the
/// PQC what-if axis. Under the default `classical` profile the ML-DSA
/// counts are always zero, and Table 2 renders only the first
/// `kClassicalAlgClasses` columns (the published table, goldens
/// unchanged).
inline constexpr std::size_t kClassicalAlgClasses = 4;
inline constexpr std::size_t kAlgClasses = 7;

struct corpus_options {
  /// 0 = analyse every TLS service; otherwise a deterministic sample.
  std::size_t max_services = 0;
  /// Optional shared materialization cache: combined drivers that also
  /// run the compression study over the same TLS sample pass one cache
  /// so each chain is issued exactly once across both studies.
  const internet::chain_cache* chains = nullptr;
  /// Chain profile the corpus is materialized under (the PQC what-if
  /// switch); `classical` reproduces every published number.
  x509::pq_profile profile = x509::pq_profile::classical;
};

/// One Fig. 7 row, measured from the corpus.
struct chain_row {
  std::string display;
  std::vector<std::size_t> parent_sizes;  // white boxes, served order
  std::size_t median_leaf = 0;            // yellow box
  std::size_t max_leaf = 0;               // orange box extent
  double share = 0.0;                     // of the respective corpus
};

/// All certificate-corpus outputs.
struct corpus_result {
  // Fig. 6: chain sizes by deployment class.
  stats::sample_set quic_chain_sizes;
  stats::sample_set https_chain_sizes;
  double all_chains_over_4071 = 0.0;  // "35% exceed 3x1357"

  // Fig. 2b: field-size distributions over every certificate seen.
  stats::sample_set field_subject;
  stats::sample_set field_issuer;
  stats::sample_set field_spki;
  stats::sample_set field_extensions;
  stats::sample_set field_signature;

  // Fig. 8: mean field sizes for QUIC chains, split by chain size class
  // (<=4000 / >4000) and certificate role (leaf / non-leaf). Field
  // order: subject, issuer, SPKI, extensions, signature, other.
  std::array<std::array<std::array<stats::summary, 6>, 2>, 2> field_means;

  // Table 2: unique-certificate algorithm counts,
  // [quic|https_only][leaf|non_leaf][alg].
  std::array<std::array<std::array<std::size_t, kAlgClasses>, 2>, 2>
      alg_counts{};

  // Fig. 7: measured top-chain rows.
  std::vector<chain_row> quic_rows;
  std::vector<chain_row> https_rows;
  double quic_top10_coverage = 0.0;
  double https_top10_coverage = 0.0;

  // Fig. 14: SAN byte share quadrants over QUIC leaf certificates.
  std::size_t leaves_total = 0;
  std::size_t quadrant_small_low = 0;   // <=4071 leaf, low SAN share
  std::size_t quadrant_small_high = 0;  // <=4071, SAN share >= p99 line
  std::size_t quadrant_large_high = 0;  // >4071 and high SAN share
  std::size_t quadrant_large_low = 0;
  double san_share_p99 = 0.0;  // the 28.9% threshold in the paper
  stats::sample_set san_shares;
};

[[nodiscard]] corpus_result analyze_corpus(const internet::model& m,
                                           const corpus_options& opt,
                                           const engine::options& exec = {});

/// The larger of the two common amplification budgets, 3x1357 bytes —
/// the threshold behind the paper's "35% of all chains exceed it".
inline constexpr double kAmpLimitBytes = 3.0 * 1357.0;

/// Share of all sized chains above kAmpLimitBytes, weighted across the
/// QUIC and HTTPS-only corpus sides (QUIC term first). Shared by
/// analyze_corpus and the PQC study so the two can never diverge; 0
/// when both sets are empty.
[[nodiscard]] double share_over_amp_limit(const stats::sample_set& quic,
                                          const stats::sample_set& https);

/// Display names for the Table 2 algorithm classes.
[[nodiscard]] const std::array<std::string, kAlgClasses>& alg_class_names();

}  // namespace certquic::core
