// Time-to-first-byte study: the time-domain counterpart of the
// size-domain censuses. Every probe performs a full handshake *and*
// fetches one application object, and the simulator's time model —
// per-path RTT, loss and bandwidth/serialization pacing — turns the
// handshake into a timeline whose endpoint (the first application
// byte) is the paper's user-facing metric.
//
// The study sweeps chain_profile x network condition over the census
// population: for each (profile, condition) cell it probes the QUIC
// services with matched per-probe randomness (base seed and salt stay
// zero, as in run_census and run_pqc_study) and reports the TTFB
// distribution of completing handshakes as a stats::sample_set. The
// classical x ideal cell therefore probes exactly the services and
// randomness of run_census — its class counts match the census
// bit-for-bit (pinned by tests/ttfb_test) — while the pqc_* rows show
// how post-quantum chains push extra round trips (and thus whole RTTs
// of TTFB) onto slow or lossy paths.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/census.hpp"
#include "engine/engine.hpp"
#include "internet/model.hpp"
#include "net/simulator.hpp"
#include "scan/classify.hpp"
#include "stats/cdf.hpp"

namespace certquic::core {

struct ttfb_options {
  /// Client Initial size (the paper's default).
  std::size_t initial_size = 1362;
  /// 0 = probe every QUIC service; otherwise the shared deterministic
  /// sample.
  std::size_t max_services = 0;
  /// Network conditions to sweep; empty = default_network_conditions().
  std::vector<net::network_condition> conditions;
  /// Chain profiles to sweep; empty = all_pq_profiles().
  std::vector<x509::pq_profile> profiles;
};

/// The study's canonical network grid: the historical ideal path plus
/// three access-network regimes. The first entry ("ideal", 20 ms RTT,
/// no loss, no bandwidth cap) is exactly the condition every other
/// study runs under.
[[nodiscard]] std::vector<net::network_condition> default_network_conditions();

/// One (chain profile, network condition) cell of the sweep.
struct ttfb_cell {
  x509::pq_profile profile = x509::pq_profile::classical;
  net::network_condition condition;

  std::size_t probed = 0;
  std::array<std::size_t, kClassCount> counts{};
  /// TTFB (ms, first Initial sent -> first application byte) of every
  /// probe that received application data. Finalized (sorted) by the
  /// study, so quantile reads are lock-free and thread-safe.
  stats::sample_set ttfb_ms;

  [[nodiscard]] std::size_t count(scan::handshake_class c) const {
    return counts[static_cast<std::size_t>(c)];
  }
  /// Probes whose TTFB was observed (handshake + object fetch done).
  [[nodiscard]] std::size_t completed() const { return ttfb_ms.size(); }
};

struct ttfb_study_result {
  std::size_t initial_size = 0;
  std::vector<net::network_condition> conditions;
  /// Profile-major over the condition grid: all conditions under
  /// profiles[0] (classical first), then profiles[1], ... — one cell
  /// per plan variant, in plan order.
  std::vector<ttfb_cell> cells;

  /// The cell of one (profile, condition-index) pair.
  [[nodiscard]] const ttfb_cell& cell(x509::pq_profile p,
                                      std::size_t condition) const;
};

/// Runs the full sweep on the engine pool; bit-identical at any thread
/// count. Base seed and salt stay zero so every cell probes a service
/// under its historical record-derived randomness: cells form matched
/// pairs along both axes, and TTFB deltas isolate chain size (across
/// profiles) or path quality (across conditions).
[[nodiscard]] ttfb_study_result run_ttfb_study(const internet::model& m,
                                               const ttfb_options& opt,
                                               const engine::options& exec = {});

}  // namespace certquic::core
