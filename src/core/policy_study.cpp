#include "core/policy_study.hpp"

#include "engine/engine.hpp"
#include "scan/zmap.hpp"

namespace certquic::core {

std::vector<policy_row> run_policy_study(const internet::model& m,
                                         const std::string& chain_profile_id,
                                         const engine::options& exec) {
  struct policy_spec {
    quic::amplification_policy policy;
    const char* spec;
    const char* rule;
  };
  static constexpr policy_spec kSpecs[] = {
      {quic::amplification_policy::unlimited, "Drafts 01-08",
       "no server-side limit"},
      {quic::amplification_policy::min_initial_only, "Draft 09",
       "reject client Initials < 1200 octets"},
      {quic::amplification_policy::max_three_handshake_packets,
       "Drafts 10-12", "<= 3 Handshake packets before validation"},
      {quic::amplification_policy::max_three_datagrams, "Drafts 13-14",
       "<= 3 datagrams before validation"},
      {quic::amplification_policy::three_x_bytes, "Drafts 15-34, RFC 9000",
       "<= 3x bytes received before validation"},
  };

  std::vector<policy_row> rows;
  rows.reserve(std::size(kSpecs));
  const auto& eco = m.ecosystem();
  engine::parallel_ordered(
      std::size(kSpecs), exec,
      [&](std::size_t i) {
        const policy_spec& spec = kSpecs[i];
        // A typical non-coalescing deployment makes the policies
        // maximally distinguishable (packet- and datagram-count rules
        // then bite).
        quic::server_behavior behavior =
            quic::server_behavior::standard_no_coalesce();
        behavior.policy = spec.policy;
        behavior.max_retransmissions = 2;  // same loss-recovery everywhere
        rng issue{0x7ab1e3};
        const scan::zmap_result probe = scan::zmap_probe(
            eco.issue(eco.profile(chain_profile_id), "policy.example", issue),
            behavior, 1200, net::seconds(30), 0xdeed);
        policy_row row;
        row.policy = spec.policy;
        row.spec = spec.spec;
        row.rule = spec.rule;
        row.bytes_sent = probe.bytes_sent;
        row.bytes_received = probe.bytes_received;
        row.amplification = probe.amplification;
        return row;
      },
      [&](std::size_t, policy_row&& row) { rows.push_back(std::move(row)); });
  return rows;
}

}  // namespace certquic::core
