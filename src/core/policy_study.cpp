#include "core/policy_study.hpp"

#include "engine/backend.hpp"
#include "util/rng.hpp"

namespace certquic::core {

std::vector<policy_row> run_policy_study(const internet::model& m,
                                         const std::string& chain_profile_id,
                                         const engine::options& exec) {
  struct policy_spec {
    quic::amplification_policy policy;
    const char* spec;
    const char* rule;
  };
  static constexpr policy_spec kSpecs[] = {
      {quic::amplification_policy::unlimited, "Drafts 01-08",
       "no server-side limit"},
      {quic::amplification_policy::min_initial_only, "Draft 09",
       "reject client Initials < 1200 octets"},
      {quic::amplification_policy::max_three_handshake_packets,
       "Drafts 10-12", "<= 3 Handshake packets before validation"},
      {quic::amplification_policy::max_three_datagrams, "Drafts 13-14",
       "<= 3 datagrams before validation"},
      {quic::amplification_policy::three_x_bytes, "Drafts 15-34, RFC 9000",
       "<= 3x bytes received before validation"},
  };

  // The ZMap imitation as a backscatter plan: one unacknowledged
  // 1200-byte Initial per policy, each probe in its own isolated world
  // (sessions_per_shard = 1) so the policies cannot interact. The same
  // chain is re-issued for every policy from a fixed stream, keeping
  // the ablation a pure policy comparison.
  engine::backscatter_plan plan;
  plan.base_seed = 0xdeed;
  plan.sessions_per_shard = 1;
  plan.telescope_base = net::ipv4::of(203, 0, 113, 0);
  plan.provider_prefixes.emplace_back(net::ipv4::of(198, 51, 100, 0),
                                      "policy");
  const auto& eco = m.ecosystem();
  std::uint64_t stream = plan.base_seed;
  plan.sessions.reserve(std::size(kSpecs));
  for (std::size_t i = 0; i < std::size(kSpecs); ++i) {
    // A typical non-coalescing deployment makes the policies maximally
    // distinguishable (packet- and datagram-count rules then bite).
    quic::server_behavior behavior =
        quic::server_behavior::standard_no_coalesce();
    behavior.policy = kSpecs[i].policy;
    behavior.max_retransmissions = 2;  // same loss-recovery everywhere
    rng issue{0x7ab1e3};
    engine::spoofed_session session;
    session.server = net::endpoint_id{
        net::ipv4::of(198, 51, 100, static_cast<std::uint8_t>(1 + i)), 443};
    session.chain =
        eco.issue(eco.profile(chain_profile_id), "policy.example", issue);
    session.behavior = behavior;
    session.sni = "policy.example";
    session.initial_size = 1200;
    session.timeout = net::seconds(30);
    session.seed = splitmix64(stream);
    plan.sessions.push_back(std::move(session));
  }

  std::vector<policy_row> rows;
  rows.reserve(std::size(kSpecs));
  const engine::backscatter_backend backend{std::move(plan)};
  engine::run_backend(
      backend, exec, [&](std::size_t i, engine::unit_outcome&& outcome) {
        const policy_spec& spec = kSpecs[i];
        policy_row row;
        row.policy = spec.policy;
        row.spec = spec.spec;
        row.rule = spec.rule;
        row.bytes_sent = outcome.probe.obs.bytes_sent_first_flight;
        row.bytes_received = outcome.backscatter.bytes;
        row.amplification =
            row.bytes_sent == 0
                ? 0.0
                : static_cast<double>(row.bytes_received) /
                      static_cast<double>(row.bytes_sent);
        rows.push_back(std::move(row));
      });
  return rows;
}

}  // namespace certquic::core
