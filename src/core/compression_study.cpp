#include "core/compression_study.hpp"

#include "scan/reach.hpp"
#include "tls/handshake.hpp"

namespace certquic::core {

compression_result run_compression_study(const internet::model& m,
                                         const compression_options& opt) {
  compression_result out;
  const bytes& dict = m.compression_dictionary();
  const compress::codec codecs[3] = {
      compress::codec{compress::algorithm::brotli, dict},
      compress::codec{compress::algorithm::zlib, dict},
      compress::codec{compress::algorithm::zstd, dict},
  };

  // ---- Synthetic experiment over collected chains -----------------------
  std::size_t tls_total = 0;
  for (const auto& rec : m.records()) {
    tls_total += rec.serves_tls() ? 1 : 0;
  }
  const std::size_t stride =
      opt.max_chains == 0 || tls_total <= opt.max_chains
          ? 1
          : (tls_total + opt.max_chains - 1) / opt.max_chains;

  std::size_t under_limit = 0;
  std::size_t under_limit_plain = 0;
  std::size_t chains = 0;
  std::size_t tls_index = 0;
  constexpr double kLimit = 3.0 * 1357.0;
  for (const auto& rec : m.records()) {
    if (!rec.serves_tls()) {
      continue;
    }
    if (tls_index++ % stride != 0) {
      continue;
    }
    const x509::chain chain =
        m.chain_of(rec, internet::fetch_protocol::https);
    const bytes cert_msg = tls::encode_certificate(chain);
    ++chains;
    under_limit_plain +=
        static_cast<double>(cert_msg.size()) <= kLimit ? 1 : 0;
    for (int a = 0; a < 3; ++a) {
      const bytes compressed = codecs[a].compress(cert_msg);
      const double saving =
          1.0 - static_cast<double>(compressed.size()) /
                    static_cast<double>(cert_msg.size());
      out.synthetic_savings[static_cast<std::size_t>(a)].add(saving);
      if (a == 0) {
        under_limit +=
            static_cast<double>(compressed.size()) <= kLimit ? 1 : 0;
      }
    }
  }
  if (chains > 0) {
    out.under_limit_compressed =
        static_cast<double>(under_limit) / static_cast<double>(chains);
    out.under_limit_uncompressed =
        static_cast<double>(under_limit_plain) / static_cast<double>(chains);
  }

  // ---- In-the-wild probe: offer all three algorithms --------------------
  scan::reach prober{m};
  scan::probe_options popt;
  popt.initial_size = 1250;  // Chromium-like client (Table 1)
  popt.offer_compression = {compress::algorithm::brotli,
                            compress::algorithm::zlib,
                            compress::algorithm::zstd};
  std::size_t quic_total = 0;
  for (const auto& rec : m.records()) {
    quic_total += rec.serves_quic() ? 1 : 0;
  }
  const std::size_t probe_stride =
      opt.max_probes == 0 || quic_total <= opt.max_probes
          ? 1
          : (quic_total + opt.max_probes - 1) / opt.max_probes;
  std::size_t probed = 0;
  std::size_t brotli_support = 0;
  std::size_t all_support = 0;
  std::size_t quic_index = 0;
  for (const auto& rec : m.records()) {
    if (!rec.serves_quic()) {
      continue;
    }
    if (quic_index++ % probe_stride != 0) {
      continue;
    }
    ++probed;
    brotli_support += rec.supports_brotli ? 1 : 0;
    all_support += rec.supports_all_algorithms ? 1 : 0;
    const scan::probe_result probe = prober.probe(rec, popt);
    const quic::observation& obs = probe.obs;
    if (obs.handshake_complete && obs.compression_used &&
        obs.certificate_uncompressed_size > 0) {
      out.wild_savings.add(
          1.0 - static_cast<double>(obs.certificate_msg_size) /
                    static_cast<double>(obs.certificate_uncompressed_size));
    }
  }
  if (probed > 0) {
    out.support_brotli =
        static_cast<double>(brotli_support) / static_cast<double>(probed);
    out.support_all_three =
        static_cast<double>(all_support) / static_cast<double>(probed);
  }
  return out;
}

}  // namespace certquic::core
