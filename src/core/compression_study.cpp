#include "core/compression_study.hpp"

#include "engine/engine.hpp"
#include "tls/handshake.hpp"

namespace certquic::core {
namespace {

constexpr double kLimit = 3.0 * 1357.0;

/// Per-chain synthetic compression outcome, computed on the pool.
struct chain_compression {
  std::size_t plain_size = 0;
  std::array<std::size_t, 3> compressed_size{};  // brotli/zlib/zstd
};

/// Streams compression-offering probes into the "in the wild" rates.
class wild_aggregator final : public engine::observation_sink {
 public:
  explicit wild_aggregator(compression_result& out) : out_(out) {}

  void on_begin(const engine::probe_plan& plan,
                std::size_t sampled) override {
    lifecycle_.begin();
    out_.wild_savings.reserve(sampled * plan.variants.size());
  }

  void on_record(const engine::probe_record& pr) override {
    lifecycle_.record();
    ++probed_;
    brotli_support_ += pr.record.supports_brotli ? 1 : 0;
    all_support_ += pr.record.supports_all_algorithms ? 1 : 0;
    const quic::observation& obs = pr.result.obs;
    if (obs.handshake_complete && obs.compression_used &&
        obs.certificate_uncompressed_size > 0) {
      out_.wild_savings.add(
          1.0 - static_cast<double>(obs.certificate_msg_size) /
                    static_cast<double>(obs.certificate_uncompressed_size));
    }
  }

  void on_end() override { lifecycle_.end(); }

  void finish() const {
    if (probed_ == 0) {
      return;
    }
    out_.support_brotli = static_cast<double>(brotli_support_) /
                          static_cast<double>(probed_);
    out_.support_all_three = static_cast<double>(all_support_) /
                             static_cast<double>(probed_);
  }

 private:
  compression_result& out_;
  std::size_t probed_ = 0;
  std::size_t brotli_support_ = 0;
  std::size_t all_support_ = 0;
  engine::sink_lifecycle lifecycle_;
};

}  // namespace

compression_result run_compression_study(const internet::model& m,
                                         const compression_options& opt,
                                         const engine::options& exec) {
  compression_result out;
  const bytes& dict = m.compression_dictionary();
  const compress::codec codecs[3] = {
      compress::codec{compress::algorithm::brotli, dict},
      compress::codec{compress::algorithm::zlib, dict},
      compress::codec{compress::algorithm::zstd, dict},
  };

  // ---- Synthetic experiment over collected chains -----------------------
  // One up-front deterministic sample, then chain materialization and
  // compression sharded across the pool; the ordered consumer keeps the
  // aggregates bit-identical to the serial walk.
  const std::vector<std::uint32_t> chain_sample = engine::sample_indices(
      m, engine::service_filter::tls, opt.max_chains);

  std::size_t under_limit = 0;
  std::size_t under_limit_plain = 0;
  std::size_t chains = 0;
  for (auto& savings : out.synthetic_savings) {
    savings.reserve(chain_sample.size());
  }
  engine::parallel_ordered(
      chain_sample.size(), exec,
      [&](std::size_t i) {
        const auto& rec = m.records()[chain_sample[i]];
        const bytes cert_msg = tls::encode_certificate(internet::fetch_chain(
            m, opt.chains, rec, internet::fetch_protocol::https));
        chain_compression result;
        result.plain_size = cert_msg.size();
        for (int a = 0; a < 3; ++a) {
          result.compressed_size[static_cast<std::size_t>(a)] =
              codecs[a].compress(cert_msg).size();
        }
        return result;
      },
      [&](std::size_t, chain_compression&& result) {
        ++chains;
        under_limit_plain +=
            static_cast<double>(result.plain_size) <= kLimit ? 1 : 0;
        for (std::size_t a = 0; a < 3; ++a) {
          const double saving =
              1.0 - static_cast<double>(result.compressed_size[a]) /
                        static_cast<double>(result.plain_size);
          out.synthetic_savings[a].add(saving);
          if (a == 0) {
            under_limit +=
                static_cast<double>(result.compressed_size[a]) <= kLimit ? 1
                                                                         : 0;
          }
        }
      });
  if (chains > 0) {
    out.under_limit_compressed =
        static_cast<double>(under_limit) / static_cast<double>(chains);
    out.under_limit_uncompressed =
        static_cast<double>(under_limit_plain) / static_cast<double>(chains);
  }

  // ---- In-the-wild probe: offer all three algorithms --------------------
  engine::probe_variant variant;
  variant.initial_size = 1250;  // Chromium-like client (Table 1)
  variant.offer_compression = {compress::algorithm::brotli,
                               compress::algorithm::zlib,
                               compress::algorithm::zstd};
  const engine::probe_plan plan =
      engine::probe_plan::single(std::move(variant), opt.max_probes);
  wild_aggregator aggregator{out};
  engine::executor{m, exec}.run(plan, aggregator);
  aggregator.finish();
  return out;
}

}  // namespace certquic::core
