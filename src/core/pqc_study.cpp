#include "core/pqc_study.hpp"

#include <utility>

#include "core/certificates.hpp"
#include "engine/probe_plan.hpp"
#include "util/errors.hpp"

namespace certquic::core {
namespace {

/// Streams the three-variant chain-profile sweep into per-profile
/// slices; one on_record dispatch keyed by variant index, no locking
/// (records arrive in plan order on the caller's thread).
class pqc_census_aggregator final : public engine::observation_sink {
 public:
  explicit pqc_census_aggregator(std::vector<pqc_profile_slice>& slices)
      : slices_(slices) {}

  void on_begin(const engine::probe_plan& plan,
                std::size_t sampled) override {
    (void)plan;
    lifecycle_.begin();
    for (pqc_profile_slice& slice : slices_) {
      slice.amplification.reserve(sampled);
    }
  }

  void on_record(const engine::probe_record& pr) override {
    lifecycle_.record();
    pqc_profile_slice& slice = slices_[pr.variant_index];
    ++slice.probed;
    ++slice.counts[static_cast<std::size_t>(pr.result.cls)];
    if (pr.result.obs.handshake_complete) {
      slice.amplification.add(pr.result.obs.first_burst_amplification());
    }
  }

  void on_end() override {
    lifecycle_.end();
    for (pqc_profile_slice& slice : slices_) {
      slice.amplification.finalize();
    }
  }

 private:
  std::vector<pqc_profile_slice>& slices_;
  engine::sink_lifecycle lifecycle_;
};

}  // namespace

const pqc_profile_slice& pqc_study_result::slice(x509::pq_profile p) const {
  for (const pqc_profile_slice& s : slices) {
    if (s.profile == p) {
      return s;
    }
  }
  throw config_error("pqc_study_result: no slice for profile " +
                     x509::to_string(p));
}

pqc_study_result run_pqc_study(const internet::model& m,
                               const pqc_options& opt,
                               const engine::options& exec) {
  const auto& profiles = x509::all_pq_profiles();
  pqc_study_result out;
  out.initial_size = opt.initial_size;
  out.slices.resize(profiles.size());
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    out.slices[p].profile = profiles[p];
  }

  // --- Corpus pass: size every sampled TLS chain under every profile.
  // One parallel_ordered unit materializes a record's three chains, so
  // the per-record work (the hot path) shards across the pool while
  // the ordered consumer keeps each slice's sample order — and thus
  // its CDF — identical to a serial walk. The classical adds happen in
  // the same order as analyze_corpus on the same sample, which is what
  // the fig06-equivalence tier-1 check pins down.
  const std::vector<std::uint32_t> sample = engine::sample_indices(
      m, engine::service_filter::tls, opt.max_corpus);
  for (pqc_profile_slice& slice : out.slices) {
    slice.quic_chain_sizes.reserve(sample.size());
    slice.https_chain_sizes.reserve(sample.size());
  }
  struct sized_record {
    std::array<std::size_t, 3> wire_size{};
    bool quic = false;
  };
  engine::parallel_ordered(
      sample.size(), exec,
      [&](std::size_t i) {
        const auto& rec = m.records()[sample[i]];
        sized_record sized;
        sized.quic = rec.serves_quic();
        for (std::size_t p = 0; p < profiles.size(); ++p) {
          sized.wire_size[p] =
              m.chain_of(rec, internet::fetch_protocol::https, profiles[p])
                  .wire_size();
        }
        return sized;
      },
      [&](std::size_t, sized_record&& sized) {
        for (std::size_t p = 0; p < profiles.size(); ++p) {
          (sized.quic ? out.slices[p].quic_chain_sizes
                      : out.slices[p].https_chain_sizes)
              .add(static_cast<double>(sized.wire_size[p]));
        }
      });
  for (pqc_profile_slice& slice : out.slices) {
    // Shared with analyze_corpus, so the classical slice matches
    // all_chains_over_4071 bit-for-bit by construction.
    slice.over_amp_limit = share_over_amp_limit(slice.quic_chain_sizes,
                                                slice.https_chain_sizes);
    slice.quic_chain_sizes.finalize();
    slice.https_chain_sizes.finalize();
  }

  // --- Census pass: the engine sweep over the QUIC population, one
  // variant per profile with matched per-probe randomness.
  engine::probe_plan plan;
  plan.max_services = opt.max_services;
  plan.sweep_chain_profiles(opt.initial_size);

  pqc_census_aggregator aggregator{out.slices};
  engine::executor{m, exec}.run(plan, aggregator);
  return out;
}

}  // namespace certquic::core
