// Certificate-compression study (§4.2, Table 1): synthetic compression
// of collected chains plus "in the wild" rates via compression-probing
// handshakes.
#pragma once

#include <array>

#include "engine/engine.hpp"
#include "internet/chain_cache.hpp"
#include "internet/model.hpp"
#include "stats/cdf.hpp"

namespace certquic::core {

struct compression_options {
  /// Chains to compress synthetically (0 = all TLS services).
  std::size_t max_chains = 2000;
  /// QUIC services to probe with a compression-capable client.
  std::size_t max_probes = 300;
  /// Optional shared materialization cache (see corpus_options::chains).
  const internet::chain_cache* chains = nullptr;
};

struct compression_result {
  /// Synthetic experiment: savings per algorithm over collected chains.
  std::array<stats::sample_set, 3> synthetic_savings;  // brotli/zlib/zstd
  /// Fraction of chains whose brotli-compressed Certificate message
  /// stays under the common limit 3x1357 (paper: 99%).
  double under_limit_compressed = 0.0;
  double under_limit_uncompressed = 0.0;

  /// Service-side support measured by offering all three algorithms.
  double support_brotli = 0.0;
  double support_all_three = 0.0;

  /// "In the wild" rates: savings observed on real handshakes where
  /// the server compressed (mean 73% in the paper).
  stats::sample_set wild_savings;
};

[[nodiscard]] compression_result run_compression_study(
    const internet::model& m, const compression_options& opt,
    const engine::options& exec = {});

}  // namespace certquic::core
