#include "x509/certificate.hpp"

#include "asn1/der.hpp"
#include "x509/oids.hpp"

namespace certquic::x509 {

certificate::certificate(certificate_spec spec, rng& r)
    : spec_(std::move(spec)) {
  // Random positive 16-byte serial, as issued by modern public CAs.
  serial_.resize(16);
  r.fill(serial_);
  serial_[0] &= 0x7f;

  const bytes version = asn1::context(0, asn1::encode_integer(2));  // v3
  const bytes serial_der = asn1::encode_big_integer(serial_);
  const bytes sig_alg_der = encode_signature_algorithm(spec_.sig_alg);
  const bytes issuer_der = spec_.issuer.encode();
  const bytes validity_der = asn1::sequence({
      asn1::encode_utc_time(spec_.valid.not_before),
      asn1::encode_utc_time(spec_.valid.not_after),
  });
  const bytes subject_der = spec_.subject.encode();
  const bytes spki_der = encode_spki(spec_.key_alg, r);

  std::vector<bytes> ext_ders;
  ext_ders.reserve(spec_.extensions.size());
  for (const auto& ext : spec_.extensions) {
    ext_ders.push_back(ext.encode());
    if (ext.id == oids::subject_alt_name) {
      san_bytes_ += ext_ders.back().size();
    }
    if (ext.id == oids::basic_constraints) {
      // A CA certificate encodes cA=TRUE as a non-empty constraint body.
      is_ca_ = !ext.value.empty() && ext.value.size() > 2;
    }
  }
  const bytes extensions_seq = asn1::sequence(ext_ders);
  const bytes extensions_block = asn1::context(3, extensions_seq);

  const bytes tbs = asn1::sequence({
      version,
      serial_der,
      sig_alg_der,
      issuer_der,
      validity_der,
      subject_der,
      spki_der,
      extensions_block,
  });
  const bytes signature_der = encode_signature_value(spec_.sig_alg, r);
  der_ = asn1::sequence({tbs, sig_alg_der, signature_der});

  sizes_.subject = subject_der.size();
  sizes_.issuer = issuer_der.size();
  sizes_.public_key_info = spki_der.size();
  sizes_.extensions = extensions_seq.size();
  sizes_.signature = signature_der.size();
  sizes_.total = der_.size();
}

std::vector<std::string> certificate::subject_alt_names() const {
  for (const auto& ext : spec_.extensions) {
    if (ext.id == oids::subject_alt_name) {
      return parse_subject_alt_name(ext);
    }
  }
  return {};
}

std::string certificate::describe() const {
  return spec_.subject.to_string() + " (" + to_string(spec_.key_alg) + ", " +
         std::to_string(der_.size()) + "B)";
}

}  // namespace certquic::x509
