// X.509v3 extension model and builders for the extensions that dominate
// real-world certificate sizes (Fig. 2 of the paper).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "asn1/der.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace certquic::x509 {

/// One certificate extension. `value` holds the DER inside the extnValue
/// OCTET STRING; `encode()` produces the full Extension SEQUENCE.
struct extension {
  asn1::oid id;
  std::string name;  // for reports, e.g. "subjectAltName"
  bool critical = false;
  bytes value;

  /// Extension ::= SEQUENCE { extnID, critical BOOLEAN DEFAULT FALSE,
  ///                          extnValue OCTET STRING }.
  [[nodiscard]] bytes encode() const;
  /// Size of the encoded Extension TLV in bytes.
  [[nodiscard]] std::size_t encoded_size() const;
};

// --- Builders -------------------------------------------------------------

/// basicConstraints; CA certificates set `is_ca` (critical).
[[nodiscard]] extension make_basic_constraints(
    bool is_ca, std::optional<int> path_len = std::nullopt);

/// keyUsage bit string; pass X.509 bit flags (digitalSignature = 0x80,
/// keyCertSign = 0x04, cRLSign = 0x02, keyEncipherment = 0x20).
[[nodiscard]] extension make_key_usage(std::uint8_t bits);

/// extKeyUsage with serverAuth (+clientAuth when `client_auth`).
[[nodiscard]] extension make_ext_key_usage(bool client_auth = true);

/// subjectKeyIdentifier with a random 20-byte key id.
[[nodiscard]] extension make_subject_key_id(rng& r);

/// authorityKeyIdentifier referencing a 20-byte issuer key id.
[[nodiscard]] extension make_authority_key_id(bytes_view issuer_key_id);

/// subjectAltName with the given DNS names.
[[nodiscard]] extension make_subject_alt_name(
    const std::vector<std::string>& dns_names);

/// authorityInfoAccess with OCSP and/or caIssuers URLs (empty = omit).
[[nodiscard]] extension make_authority_info_access(
    const std::string& ocsp_url, const std::string& ca_issuers_url);

/// cRLDistributionPoints with one URL.
[[nodiscard]] extension make_crl_distribution_points(const std::string& url);

/// certificatePolicies with a DV/OV policy and optional CPS URI.
[[nodiscard]] extension make_certificate_policies(
    bool organization_validated, const std::string& cps_uri);

/// Embedded signed-certificate-timestamp list with `count` synthetic
/// SCTs of realistic size (~119 bytes each); leaf certificates from
/// public CAs typically embed 2-3.
[[nodiscard]] extension make_sct_list(std::size_t count, rng& r);

/// Parses the dns names back out of a subjectAltName value (used by
/// tests and by the SAN-share analysis of Fig. 14).
[[nodiscard]] std::vector<std::string> parse_subject_alt_name(
    const extension& ext);

/// The fixed 32-byte id of CT log `index % 8`; exposed so the
/// compression-dictionary builder can include the well-known log ids.
[[nodiscard]] bytes well_known_log_id(std::size_t index);

}  // namespace certquic::x509
