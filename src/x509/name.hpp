// X.501 distinguished names (issuer / subject fields).
#pragma once

#include <string>
#include <vector>

#include "asn1/der.hpp"
#include "util/bytes.hpp"

namespace certquic::x509 {

/// One relative distinguished name component, e.g. CN=example.org.
struct rdn {
  asn1::oid attribute;
  std::string value;
  /// PrintableString when true (C=, short names), UTF8String otherwise.
  bool printable = false;
};

/// An ordered distinguished name; encodes as RDNSequence.
class distinguished_name {
 public:
  distinguished_name() = default;
  explicit distinguished_name(std::vector<rdn> parts)
      : parts_(std::move(parts)) {}

  /// Just CN=<common_name>.
  [[nodiscard]] static distinguished_name cn(std::string common_name);
  /// C=<country>, O=<org>, CN=<common_name> — the usual CA layout.
  [[nodiscard]] static distinguished_name org(std::string country,
                                              std::string org_name,
                                              std::string common_name);

  [[nodiscard]] const std::vector<rdn>& parts() const noexcept {
    return parts_;
  }
  [[nodiscard]] bool empty() const noexcept { return parts_.empty(); }

  /// Returns the CN value or "" when absent.
  [[nodiscard]] std::string common_name() const;

  /// DER RDNSequence encoding.
  [[nodiscard]] bytes encode() const;

  /// Human-readable "C=US, O=Example, CN=example.org".
  [[nodiscard]] std::string to_string() const;

  /// Structural equality (attribute OIDs and values).
  [[nodiscard]] bool operator==(const distinguished_name& other) const;

 private:
  std::vector<rdn> parts_;
};

}  // namespace certquic::x509
