#include "x509/name.hpp"

#include "x509/oids.hpp"

namespace certquic::x509 {

distinguished_name distinguished_name::cn(std::string common_name) {
  return distinguished_name{{rdn{oids::common_name, std::move(common_name)}}};
}

distinguished_name distinguished_name::org(std::string country,
                                           std::string org_name,
                                           std::string common_name) {
  return distinguished_name{{
      rdn{oids::country, std::move(country), /*printable=*/true},
      rdn{oids::organization, std::move(org_name)},
      rdn{oids::common_name, std::move(common_name)},
  }};
}

std::string distinguished_name::common_name() const {
  for (const auto& part : parts_) {
    if (part.attribute == oids::common_name) {
      return part.value;
    }
  }
  return {};
}

bytes distinguished_name::encode() const {
  std::vector<bytes> rdns;
  rdns.reserve(parts_.size());
  for (const auto& part : parts_) {
    const bytes attr = asn1::encode_oid(part.attribute);
    const bytes value = part.printable
                            ? asn1::encode_printable_string(part.value)
                            : asn1::encode_utf8_string(part.value);
    rdns.push_back(asn1::set({asn1::sequence({attr, value})}));
  }
  return asn1::sequence(rdns);
}

std::string distinguished_name::to_string() const {
  std::string out;
  for (const auto& part : parts_) {
    if (!out.empty()) {
      out += ", ";
    }
    if (part.attribute == oids::common_name) {
      out += "CN=";
    } else if (part.attribute == oids::country) {
      out += "C=";
    } else if (part.attribute == oids::organization) {
      out += "O=";
    } else if (part.attribute == oids::organizational_unit) {
      out += "OU=";
    } else if (part.attribute == oids::locality) {
      out += "L=";
    } else if (part.attribute == oids::state) {
      out += "ST=";
    } else {
      out += "?=";
    }
    out += part.value;
  }
  return out;
}

bool distinguished_name::operator==(const distinguished_name& other) const {
  if (parts_.size() != other.parts_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    if (parts_[i].attribute != other.parts_[i].attribute ||
        parts_[i].value != other.parts_[i].value) {
      return false;
    }
  }
  return true;
}

}  // namespace certquic::x509
