// Certificate chains: leaf-first sequences as delivered by TLS servers.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "x509/certificate.hpp"

namespace certquic::x509 {

/// A server certificate chain, leaf first, as sent in the TLS
/// Certificate message. Parent certificates (intermediates, and
/// sometimes superfluous roots) are shared between services via
/// shared_ptr since real deployments reuse the exact same intermediate
/// DER bytes.
class chain {
 public:
  chain() = default;
  /// Builds a chain from an owned leaf plus shared parent certificates.
  chain(certificate leaf,
        std::vector<std::shared_ptr<const certificate>> parents);

  [[nodiscard]] bool empty() const noexcept { return !leaf_.has_value(); }
  [[nodiscard]] const certificate& leaf() const;
  [[nodiscard]] const std::vector<std::shared_ptr<const certificate>>&
  parents() const noexcept {
    return parents_;
  }

  /// Number of certificates (leaf + parents).
  [[nodiscard]] std::size_t depth() const noexcept {
    return (leaf_ ? 1 : 0) + parents_.size();
  }

  /// Sum of DER sizes of all certificates — the "certificate chain size"
  /// measured throughout the paper (Figs. 6 and 7).
  [[nodiscard]] std::size_t wire_size() const noexcept;

  /// Sum of DER sizes excluding the leaf (the "parent chain" whose
  /// choice the service operator does not control).
  [[nodiscard]] std::size_t parent_wire_size() const noexcept;

  /// Concatenated DER of every certificate, leaf first; input to the
  /// certificate-compression experiments.
  [[nodiscard]] bytes concatenated_der() const;

  /// True when the chain includes a self-signed (trust-anchor)
  /// certificate — the superfluous-root anti-pattern from §4.2.
  [[nodiscard]] bool includes_trust_anchor() const noexcept;

  /// Visits every certificate, leaf first.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (leaf_) {
      fn(*leaf_);
    }
    for (const auto& parent : parents_) {
      fn(*parent);
    }
  }

 private:
  std::optional<certificate> leaf_;
  std::vector<std::shared_ptr<const certificate>> parents_;
};

}  // namespace certquic::x509
