// X.509v3 certificate: semantic model + real DER encoding + per-field
// size accounting (the measurement basis for Figs. 2b, 6, 7, 8 and 14).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "x509/extensions.hpp"
#include "x509/key.hpp"
#include "x509/name.hpp"

namespace certquic::x509 {

/// Validity window, UTCTime strings ("YYMMDDHHMMSSZ").
struct validity {
  std::string not_before = "220910000000Z";
  std::string not_after = "221209000000Z";
};

/// Measured sizes (bytes) of the encoded certificate components; these
/// are exactly the field classes of Figure 2(b) / Figure 8.
struct field_sizes {
  std::size_t subject = 0;
  std::size_t issuer = 0;
  std::size_t public_key_info = 0;
  std::size_t extensions = 0;
  std::size_t signature = 0;  // signatureValue BIT STRING
  std::size_t total = 0;      // full DER certificate

  /// Everything not covered above (serial, version, validity, framing).
  [[nodiscard]] std::size_t other() const noexcept {
    const std::size_t known =
        subject + issuer + public_key_info + extensions + signature;
    return total >= known ? total - known : 0;
  }
};

/// Semantic description of a certificate to build.
struct certificate_spec {
  distinguished_name issuer;
  distinguished_name subject;
  validity valid;
  key_algorithm key_alg = key_algorithm::ecdsa_p256;
  signature_algorithm sig_alg = signature_algorithm::ecdsa_sha256;
  std::vector<extension> extensions;
};

/// An immutable certificate: constructed once, DER-encoded eagerly,
/// size breakdown cached.
class certificate {
 public:
  /// Synthesizes serial, key material and signature from `r`, encodes
  /// the certificate and records the field sizes.
  certificate(certificate_spec spec, rng& r);

  [[nodiscard]] const distinguished_name& issuer() const noexcept {
    return spec_.issuer;
  }
  [[nodiscard]] const distinguished_name& subject() const noexcept {
    return spec_.subject;
  }
  [[nodiscard]] key_algorithm key_alg() const noexcept {
    return spec_.key_alg;
  }
  [[nodiscard]] signature_algorithm sig_alg() const noexcept {
    return spec_.sig_alg;
  }
  [[nodiscard]] const std::vector<extension>& extensions() const noexcept {
    return spec_.extensions;
  }
  [[nodiscard]] const bytes& serial() const noexcept { return serial_; }

  /// Full DER encoding.
  [[nodiscard]] const bytes& der() const noexcept { return der_; }
  /// Size of the DER encoding.
  [[nodiscard]] std::size_t size() const noexcept { return der_.size(); }
  /// Field-size breakdown.
  [[nodiscard]] const field_sizes& sizes() const noexcept { return sizes_; }

  /// True when basicConstraints marks this certificate as a CA.
  [[nodiscard]] bool is_ca() const noexcept { return is_ca_; }
  /// True when issuer == subject.
  [[nodiscard]] bool self_signed() const noexcept {
    return spec_.issuer == spec_.subject;
  }

  /// DNS names in subjectAltName ({} when absent).
  [[nodiscard]] std::vector<std::string> subject_alt_names() const;
  /// Encoded size of the subjectAltName extension (0 when absent);
  /// numerator of the Fig. 14 SAN byte share.
  [[nodiscard]] std::size_t san_bytes() const noexcept { return san_bytes_; }

  /// One-line render for diagnostics: "CN=leaf.example (ECDSA-P256, 1034B)".
  [[nodiscard]] std::string describe() const;

 private:
  certificate_spec spec_;
  bytes serial_;
  bytes der_;
  field_sizes sizes_;
  bool is_ca_ = false;
  std::size_t san_bytes_ = 0;
};

}  // namespace certquic::x509
