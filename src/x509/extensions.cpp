#include "x509/extensions.hpp"

#include "util/errors.hpp"
#include "x509/oids.hpp"

namespace certquic::x509 {
namespace {

bytes random_octets(std::size_t n, rng& r) {
  bytes out(n);
  r.fill(out);
  return out;
}

}  // namespace

bytes extension::encode() const {
  std::vector<bytes> parts;
  parts.push_back(asn1::encode_oid(id));
  if (critical) {
    parts.push_back(asn1::encode_boolean(true));
  }
  parts.push_back(asn1::encode_octet_string(value));
  return asn1::sequence(parts);
}

std::size_t extension::encoded_size() const { return encode().size(); }

extension make_basic_constraints(bool is_ca, std::optional<int> path_len) {
  std::vector<bytes> parts;
  if (is_ca) {
    parts.push_back(asn1::encode_boolean(true));
    if (path_len) {
      parts.push_back(asn1::encode_integer(*path_len));
    }
  }
  return extension{oids::basic_constraints, "basicConstraints",
                   /*critical=*/true, asn1::sequence(parts)};
}

extension make_key_usage(std::uint8_t bits) {
  // KeyUsage is a BIT STRING; X.509 uses up to 9 bits, we model the
  // common single-octet form.
  int unused = 0;
  std::uint8_t probe = bits;
  if (probe == 0) {
    unused = 8;
  } else {
    while ((probe & 0x01) == 0) {
      probe = static_cast<std::uint8_t>(probe >> 1);
      ++unused;
    }
  }
  const bytes content{bits};
  return extension{oids::key_usage, "keyUsage", /*critical=*/true,
                   asn1::encode_bit_string(content,
                                           static_cast<std::uint8_t>(unused))};
}

extension make_ext_key_usage(bool client_auth) {
  std::vector<bytes> purposes;
  purposes.push_back(asn1::encode_oid(oids::eku_server_auth));
  if (client_auth) {
    purposes.push_back(asn1::encode_oid(oids::eku_client_auth));
  }
  return extension{oids::ext_key_usage, "extKeyUsage", /*critical=*/false,
                   asn1::sequence(purposes)};
}

extension make_subject_key_id(rng& r) {
  return extension{oids::subject_key_identifier, "subjectKeyIdentifier",
                   /*critical=*/false,
                   asn1::encode_octet_string(random_octets(20, r))};
}

extension make_authority_key_id(bytes_view issuer_key_id) {
  // AuthorityKeyIdentifier ::= SEQUENCE { keyIdentifier [0] IMPLICIT ... }.
  const bytes key_id = asn1::context(0, issuer_key_id, /*constructed=*/false);
  return extension{oids::authority_key_identifier, "authorityKeyIdentifier",
                   /*critical=*/false, asn1::sequence({key_id})};
}

extension make_subject_alt_name(const std::vector<std::string>& dns_names) {
  std::vector<bytes> names;
  names.reserve(dns_names.size());
  for (const auto& name : dns_names) {
    // GeneralName dNSName is [2] IMPLICIT IA5String.
    names.push_back(asn1::context(
        2,
        bytes_view{reinterpret_cast<const std::uint8_t*>(name.data()),
                   name.size()},
        /*constructed=*/false));
  }
  return extension{oids::subject_alt_name, "subjectAltName",
                   /*critical=*/false, asn1::sequence(names)};
}

extension make_authority_info_access(const std::string& ocsp_url,
                                     const std::string& ca_issuers_url) {
  std::vector<bytes> descriptions;
  auto access = [](const asn1::oid& method, const std::string& url) {
    // GeneralName uniformResourceIdentifier is [6] IMPLICIT IA5String.
    return asn1::sequence({
        asn1::encode_oid(method),
        asn1::context(6,
                      bytes_view{reinterpret_cast<const std::uint8_t*>(
                                     url.data()),
                                 url.size()},
                      /*constructed=*/false),
    });
  };
  if (!ocsp_url.empty()) {
    descriptions.push_back(access(oids::aia_ocsp, ocsp_url));
  }
  if (!ca_issuers_url.empty()) {
    descriptions.push_back(access(oids::aia_ca_issuers, ca_issuers_url));
  }
  return extension{oids::authority_info_access, "authorityInfoAccess",
                   /*critical=*/false, asn1::sequence(descriptions)};
}

extension make_crl_distribution_points(const std::string& url) {
  const bytes uri = asn1::context(
      6, bytes_view{reinterpret_cast<const std::uint8_t*>(url.data()),
                    url.size()},
      /*constructed=*/false);
  // DistributionPoint ::= SEQUENCE { distributionPoint [0] { fullName [0]
  //   GeneralNames } } — two nested context tags around the URI.
  const bytes point = asn1::sequence(
      {asn1::context(0, asn1::context(0, uri))});
  return extension{oids::crl_distribution_points, "cRLDistributionPoints",
                   /*critical=*/false, asn1::sequence({point})};
}

extension make_certificate_policies(bool organization_validated,
                                    const std::string& cps_uri) {
  std::vector<bytes> qualifiers;
  if (!cps_uri.empty()) {
    qualifiers.push_back(asn1::sequence({
        asn1::encode_oid(oids::policy_cps),
        asn1::encode_ia5_string(cps_uri),
    }));
  }
  std::vector<bytes> policy_info;
  policy_info.push_back(asn1::encode_oid(
      organization_validated ? oids::policy_organization_validated
                             : oids::policy_domain_validated));
  if (!qualifiers.empty()) {
    policy_info.push_back(asn1::sequence(qualifiers));
  }
  return extension{oids::certificate_policies, "certificatePolicies",
                   /*critical=*/false,
                   asn1::sequence({asn1::sequence(policy_info)})};
}

bytes well_known_log_id(std::size_t index) {
  // A fixed set of CT log identities stands in for the real public logs
  // (Google Argon/Xenon, Cloudflare Nimbus, DigiCert Yeti, ...). Keeping
  // them constant matters for the compression study: log ids repeat
  // across the whole corpus and are dictionary-compressible, exactly as
  // in real chains.
  bytes id(32);
  rng log_rng{0x1070'0000 + static_cast<std::uint64_t>(index % 8)};
  log_rng.fill(id);
  return id;
}

extension make_sct_list(std::size_t count, rng& r) {
  // RFC 6962 SignedCertificateTimestampList inside an OCTET STRING:
  // a 2-byte list length, then per SCT a 2-byte length + 119 bytes
  // (version + 32-byte log id + timestamp + ECDSA signature).
  bytes list;
  buffer_writer w;
  const auto list_len = w.reserve_u16();
  for (std::size_t i = 0; i < count; ++i) {
    bytes sct;
    sct.push_back(0);  // version v1
    const bytes log_id = well_known_log_id(r.uniform(0, 7));
    append(sct, log_id);
    bytes tail = random_octets(86, r);  // timestamp + ECDSA signature
    append(sct, tail);
    w.u16(static_cast<std::uint16_t>(sct.size()));
    w.raw(sct);
  }
  w.patch_u16(list_len, static_cast<std::uint16_t>(w.size() - 2));
  list = std::move(w).take();
  return extension{oids::sct_list, "signedCertificateTimestamps",
                   /*critical=*/false, asn1::encode_octet_string(list)};
}

std::vector<std::string> parse_subject_alt_name(const extension& ext) {
  if (ext.id != oids::subject_alt_name) {
    throw codec_error("extension is not subjectAltName");
  }
  buffer_reader r{ext.value};
  const asn1::tlv outer = asn1::read_tlv(r);
  std::vector<std::string> names;
  for (const auto& child : asn1::children(outer)) {
    if (child.tag_byte == 0x82) {  // [2] IMPLICIT dNSName
      names.emplace_back(child.content.begin(), child.content.end());
    }
  }
  return names;
}

}  // namespace certquic::x509
