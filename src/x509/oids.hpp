// Well-known object identifiers used by the X.509 encoder.
#pragma once

#include "asn1/der.hpp"

namespace certquic::x509::oids {

// --- Distinguished-name attribute types (X.520) ---
inline const asn1::oid common_name{2, 5, 4, 3};
inline const asn1::oid country{2, 5, 4, 6};
inline const asn1::oid locality{2, 5, 4, 7};
inline const asn1::oid state{2, 5, 4, 8};
inline const asn1::oid organization{2, 5, 4, 10};
inline const asn1::oid organizational_unit{2, 5, 4, 11};

// --- Public key algorithms ---
inline const asn1::oid rsa_encryption{1, 2, 840, 113549, 1, 1, 1};
inline const asn1::oid ec_public_key{1, 2, 840, 10045, 2, 1};
inline const asn1::oid curve_p256{1, 2, 840, 10045, 3, 1, 7};
inline const asn1::oid curve_p384{1, 3, 132, 0, 34};

// --- Post-quantum signature algorithms (NIST CSOR, FIPS 204) ---
// ML-DSA uses one OID per parameter set for both the key and the
// signature AlgorithmIdentifier.
inline const asn1::oid ml_dsa_44{2, 16, 840, 1, 101, 3, 4, 3, 17};
inline const asn1::oid ml_dsa_65{2, 16, 840, 1, 101, 3, 4, 3, 18};
inline const asn1::oid ml_dsa_87{2, 16, 840, 1, 101, 3, 4, 3, 19};

// --- Signature algorithms ---
inline const asn1::oid sha256_with_rsa{1, 2, 840, 113549, 1, 1, 11};
inline const asn1::oid sha384_with_rsa{1, 2, 840, 113549, 1, 1, 12};
inline const asn1::oid sha512_with_rsa{1, 2, 840, 113549, 1, 1, 13};
inline const asn1::oid ecdsa_with_sha256{1, 2, 840, 10045, 4, 3, 2};
inline const asn1::oid ecdsa_with_sha384{1, 2, 840, 10045, 4, 3, 3};

// --- Certificate extensions (id-ce / id-pe) ---
inline const asn1::oid subject_key_identifier{2, 5, 29, 14};
inline const asn1::oid key_usage{2, 5, 29, 15};
inline const asn1::oid subject_alt_name{2, 5, 29, 17};
inline const asn1::oid basic_constraints{2, 5, 29, 19};
inline const asn1::oid crl_distribution_points{2, 5, 29, 31};
inline const asn1::oid certificate_policies{2, 5, 29, 32};
inline const asn1::oid authority_key_identifier{2, 5, 29, 35};
inline const asn1::oid ext_key_usage{2, 5, 29, 37};
inline const asn1::oid authority_info_access{1, 3, 6, 1, 5, 5, 7, 1, 1};
inline const asn1::oid sct_list{1, 3, 6, 1, 4, 1, 11129, 2, 4, 2};

// --- Extended key usage purposes ---
inline const asn1::oid eku_server_auth{1, 3, 6, 1, 5, 5, 7, 3, 1};
inline const asn1::oid eku_client_auth{1, 3, 6, 1, 5, 5, 7, 3, 2};

// --- Certificate policy identifiers ---
inline const asn1::oid policy_domain_validated{2, 23, 140, 1, 2, 1};
inline const asn1::oid policy_organization_validated{2, 23, 140, 1, 2, 2};
inline const asn1::oid policy_cps{1, 3, 6, 1, 5, 5, 7, 2, 1};

// --- Authority info access methods ---
inline const asn1::oid aia_ocsp{1, 3, 6, 1, 5, 5, 7, 48, 1};
inline const asn1::oid aia_ca_issuers{1, 3, 6, 1, 5, 5, 7, 48, 2};

}  // namespace certquic::x509::oids
