#include "x509/chain.hpp"

#include "util/errors.hpp"

namespace certquic::x509 {

chain::chain(certificate leaf,
             std::vector<std::shared_ptr<const certificate>> parents)
    : leaf_(std::move(leaf)), parents_(std::move(parents)) {}

const certificate& chain::leaf() const {
  if (!leaf_) {
    throw config_error("chain::leaf on empty chain");
  }
  return *leaf_;
}

std::size_t chain::wire_size() const noexcept {
  std::size_t total = leaf_ ? leaf_->size() : 0;
  for (const auto& parent : parents_) {
    total += parent->size();
  }
  return total;
}

std::size_t chain::parent_wire_size() const noexcept {
  std::size_t total = 0;
  for (const auto& parent : parents_) {
    total += parent->size();
  }
  return total;
}

bytes chain::concatenated_der() const {
  bytes out;
  out.reserve(wire_size());
  for_each([&out](const certificate& cert) { append(out, cert.der()); });
  return out;
}

bool chain::includes_trust_anchor() const noexcept {
  for (const auto& parent : parents_) {
    if (parent->self_signed()) {
      return true;
    }
  }
  return false;
}

}  // namespace certquic::x509
