#include "x509/key.hpp"

#include "util/errors.hpp"
#include "x509/oids.hpp"

namespace certquic::x509 {
namespace {

bytes random_magnitude(std::size_t n, rng& r, bool set_top_bit) {
  bytes out(n);
  r.fill(out);
  if (set_top_bit && !out.empty()) {
    out[0] |= 0x80;
  }
  return out;
}

bytes encode_rsa_spki(std::size_t modulus_bytes, rng& r) {
  const bytes modulus = random_magnitude(modulus_bytes, r, true);
  const bytes rsa_key = asn1::sequence({
      asn1::encode_big_integer(modulus),
      asn1::encode_integer(65537),
  });
  const bytes alg = asn1::sequence({
      asn1::encode_oid(oids::rsa_encryption),
      asn1::encode_null(),
  });
  return asn1::sequence({alg, asn1::encode_bit_string(rsa_key)});
}

bytes encode_ec_spki(const asn1::oid& curve, std::size_t coord_bytes, rng& r) {
  // Uncompressed point: 0x04 || X || Y.
  bytes point(1 + 2 * coord_bytes);
  point[0] = 0x04;
  r.fill({point.data() + 1, point.size() - 1});
  const bytes alg = asn1::sequence({
      asn1::encode_oid(oids::ec_public_key),
      asn1::encode_oid(curve),
  });
  return asn1::sequence({alg, asn1::encode_bit_string(point)});
}

bytes ecdsa_signature(std::size_t coord_bytes, rng& r) {
  // ECDSA-Sig-Value ::= SEQUENCE { r INTEGER, s INTEGER }.
  // Random magnitudes reproduce the real size jitter (+0/1 byte for the
  // sign octet) of DER-encoded ECDSA signatures.
  const bytes rv = random_magnitude(coord_bytes, r, false);
  const bytes sv = random_magnitude(coord_bytes, r, false);
  return asn1::sequence({
      asn1::encode_big_integer(rv),
      asn1::encode_big_integer(sv),
  });
}

// ML-DSA public-key and signature byte sizes per FIPS 204 (Table 2 of
// the standard); the quantities that make PQC chains blow through the
// QUIC amplification budgets.
struct mldsa_params {
  const asn1::oid& oid;
  std::size_t public_key_bytes;
  std::size_t signature_bytes;
};

const mldsa_params& mldsa_of(key_algorithm a) {
  static const mldsa_params k44{oids::ml_dsa_44, 1312, 2420};
  static const mldsa_params k65{oids::ml_dsa_65, 1952, 3309};
  static const mldsa_params k87{oids::ml_dsa_87, 2592, 4627};
  switch (a) {
    case key_algorithm::mldsa_44:
      return k44;
    case key_algorithm::mldsa_65:
      return k65;
    case key_algorithm::mldsa_87:
      return k87;
    default:
      throw config_error("mldsa_of: not an ML-DSA key algorithm");
  }
}

const mldsa_params& mldsa_of(signature_algorithm a) {
  switch (a) {
    case signature_algorithm::mldsa_44:
      return mldsa_of(key_algorithm::mldsa_44);
    case signature_algorithm::mldsa_65:
      return mldsa_of(key_algorithm::mldsa_65);
    case signature_algorithm::mldsa_87:
      return mldsa_of(key_algorithm::mldsa_87);
    default:
      throw config_error("mldsa_of: not an ML-DSA signature algorithm");
  }
}

bytes encode_mldsa_spki(key_algorithm a, rng& r) {
  // ML-DSA AlgorithmIdentifiers carry no parameters, and the key is the
  // raw encoded public key inside the BIT STRING.
  const mldsa_params& p = mldsa_of(a);
  bytes key(p.public_key_bytes);
  r.fill(key);
  const bytes alg = asn1::sequence({asn1::encode_oid(p.oid)});
  return asn1::sequence({alg, asn1::encode_bit_string(key)});
}

}  // namespace

bool is_post_quantum(key_algorithm a) noexcept {
  return a == key_algorithm::mldsa_44 || a == key_algorithm::mldsa_65 ||
         a == key_algorithm::mldsa_87;
}

const std::array<pq_profile, 3>& all_pq_profiles() noexcept {
  static const std::array<pq_profile, 3> profiles = {
      pq_profile::classical, pq_profile::pqc_leaf, pq_profile::pqc_full};
  return profiles;
}

std::string to_string(pq_profile p) {
  switch (p) {
    case pq_profile::classical:
      return "classical";
    case pq_profile::pqc_leaf:
      return "pqc_leaf";
    case pq_profile::pqc_full:
      return "pqc_full";
  }
  throw config_error("unknown pq_profile");
}

pq_profile parse_pq_profile(std::string_view name) {
  for (const pq_profile p : all_pq_profiles()) {
    if (to_string(p) == name) {
      return p;
    }
  }
  throw config_error("unknown pq_profile: " + std::string(name));
}

std::string to_string(key_algorithm a) {
  switch (a) {
    case key_algorithm::rsa_2048:
      return "RSA-2048";
    case key_algorithm::rsa_4096:
      return "RSA-4096";
    case key_algorithm::ecdsa_p256:
      return "ECDSA-P256";
    case key_algorithm::ecdsa_p384:
      return "ECDSA-P384";
    case key_algorithm::mldsa_44:
      return "ML-DSA-44";
    case key_algorithm::mldsa_65:
      return "ML-DSA-65";
    case key_algorithm::mldsa_87:
      return "ML-DSA-87";
  }
  throw config_error("unknown key_algorithm");
}

std::string to_string(signature_algorithm a) {
  switch (a) {
    case signature_algorithm::sha256_rsa_2048:
      return "sha256WithRSA(2048)";
    case signature_algorithm::sha256_rsa_4096:
      return "sha256WithRSA(4096)";
    case signature_algorithm::ecdsa_sha256:
      return "ecdsa-with-SHA256";
    case signature_algorithm::ecdsa_sha384:
      return "ecdsa-with-SHA384";
    case signature_algorithm::mldsa_44:
      return "ML-DSA-44";
    case signature_algorithm::mldsa_65:
      return "ML-DSA-65";
    case signature_algorithm::mldsa_87:
      return "ML-DSA-87";
  }
  throw config_error("unknown signature_algorithm");
}

signature_algorithm signature_by(key_algorithm issuer_key) {
  switch (issuer_key) {
    case key_algorithm::rsa_2048:
      return signature_algorithm::sha256_rsa_2048;
    case key_algorithm::rsa_4096:
      return signature_algorithm::sha256_rsa_4096;
    case key_algorithm::ecdsa_p256:
      return signature_algorithm::ecdsa_sha256;
    case key_algorithm::ecdsa_p384:
      return signature_algorithm::ecdsa_sha384;
    case key_algorithm::mldsa_44:
      return signature_algorithm::mldsa_44;
    case key_algorithm::mldsa_65:
      return signature_algorithm::mldsa_65;
    case key_algorithm::mldsa_87:
      return signature_algorithm::mldsa_87;
  }
  throw config_error("unknown issuer key_algorithm");
}

bytes encode_signature_algorithm(signature_algorithm a) {
  switch (a) {
    case signature_algorithm::sha256_rsa_2048:
    case signature_algorithm::sha256_rsa_4096:
      // RSA AlgorithmIdentifiers carry an explicit NULL parameter.
      return asn1::sequence({
          asn1::encode_oid(oids::sha256_with_rsa),
          asn1::encode_null(),
      });
    case signature_algorithm::ecdsa_sha256:
      return asn1::sequence({asn1::encode_oid(oids::ecdsa_with_sha256)});
    case signature_algorithm::ecdsa_sha384:
      return asn1::sequence({asn1::encode_oid(oids::ecdsa_with_sha384)});
    case signature_algorithm::mldsa_44:
    case signature_algorithm::mldsa_65:
    case signature_algorithm::mldsa_87:
      // ML-DSA AlgorithmIdentifiers have absent parameters.
      return asn1::sequence({asn1::encode_oid(mldsa_of(a).oid)});
  }
  throw config_error("unknown signature_algorithm");
}

bytes encode_spki(key_algorithm a, rng& r) {
  switch (a) {
    case key_algorithm::rsa_2048:
      return encode_rsa_spki(256, r);
    case key_algorithm::rsa_4096:
      return encode_rsa_spki(512, r);
    case key_algorithm::ecdsa_p256:
      return encode_ec_spki(oids::curve_p256, 32, r);
    case key_algorithm::ecdsa_p384:
      return encode_ec_spki(oids::curve_p384, 48, r);
    case key_algorithm::mldsa_44:
    case key_algorithm::mldsa_65:
    case key_algorithm::mldsa_87:
      return encode_mldsa_spki(a, r);
  }
  throw config_error("unknown key_algorithm");
}

bytes encode_signature_value(signature_algorithm a, rng& r) {
  switch (a) {
    case signature_algorithm::sha256_rsa_2048:
      return asn1::encode_bit_string(random_magnitude(256, r, true));
    case signature_algorithm::sha256_rsa_4096:
      return asn1::encode_bit_string(random_magnitude(512, r, true));
    case signature_algorithm::ecdsa_sha256:
      return asn1::encode_bit_string(ecdsa_signature(32, r));
    case signature_algorithm::ecdsa_sha384:
      return asn1::encode_bit_string(ecdsa_signature(48, r));
    case signature_algorithm::mldsa_44:
    case signature_algorithm::mldsa_65:
    case signature_algorithm::mldsa_87: {
      // The ML-DSA signature is a fixed-size opaque byte string.
      bytes sig(mldsa_of(a).signature_bytes);
      r.fill(sig);
      return asn1::encode_bit_string(sig);
    }
  }
  throw config_error("unknown signature_algorithm");
}

}  // namespace certquic::x509
