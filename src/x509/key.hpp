// Public key and signature algorithm modelling.
//
// Keys and signatures carry size-faithful synthetic material: the DER
// layout (AlgorithmIdentifier, SubjectPublicKeyInfo, signature BIT
// STRING) is exactly that of real certificates, while the key/signature
// bits themselves are random. Certificate *sizes* — the quantity this
// paper studies — are therefore accurate without implementing RSA/ECDSA.
#pragma once

#include <string>

#include "asn1/der.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace certquic::x509 {

/// Public key algorithm and length, the classes of Table 2 of the paper.
enum class key_algorithm {
  rsa_2048,
  rsa_4096,
  ecdsa_p256,
  ecdsa_p384,
};

/// Signature algorithm of the issuing CA.
enum class signature_algorithm {
  sha256_rsa_2048,  // sha256WithRSAEncryption, 2048-bit issuer key
  sha256_rsa_4096,  // sha256WithRSAEncryption, 4096-bit issuer key
  ecdsa_sha256,     // ecdsa-with-SHA256 (P-256 issuer)
  ecdsa_sha384,     // ecdsa-with-SHA384 (P-384 issuer)
};

/// Human-readable name, e.g. "RSA-2048" / "ECDSA-P256".
[[nodiscard]] std::string to_string(key_algorithm a);
[[nodiscard]] std::string to_string(signature_algorithm a);

/// Signature algorithm naturally produced by a CA holding a key of
/// algorithm `a` (RSA keys sign sha256WithRSA, P-384 signs ecdsa-sha384).
[[nodiscard]] signature_algorithm signature_by(key_algorithm issuer_key);

/// DER AlgorithmIdentifier for a signature algorithm.
[[nodiscard]] bytes encode_signature_algorithm(signature_algorithm a);

/// DER SubjectPublicKeyInfo with freshly synthesized key bits.
[[nodiscard]] bytes encode_spki(key_algorithm a, rng& r);

/// Synthesized signatureValue BIT STRING matching the algorithm's
/// real-world size (RSA: modulus-sized; ECDSA: DER-encoded r/s pair).
[[nodiscard]] bytes encode_signature_value(signature_algorithm a, rng& r);

}  // namespace certquic::x509
