// Public key and signature algorithm modelling.
//
// Keys and signatures carry size-faithful synthetic material: the DER
// layout (AlgorithmIdentifier, SubjectPublicKeyInfo, signature BIT
// STRING) is exactly that of real certificates, while the key/signature
// bits themselves are random. Certificate *sizes* — the quantity this
// paper studies — are therefore accurate without implementing RSA/ECDSA.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "asn1/der.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace certquic::x509 {

/// Public key algorithm and length: the classes of Table 2 of the
/// paper, plus the ML-DSA (FIPS 204) parameter sets used by the
/// post-quantum what-if study (Chou & Cao).
enum class key_algorithm {
  rsa_2048,
  rsa_4096,
  ecdsa_p256,
  ecdsa_p384,
  mldsa_44,  // ML-DSA-44: 1312-byte public key
  mldsa_65,  // ML-DSA-65: 1952-byte public key
  mldsa_87,  // ML-DSA-87: 2592-byte public key
};

/// Signature algorithm of the issuing CA.
enum class signature_algorithm {
  sha256_rsa_2048,  // sha256WithRSAEncryption, 2048-bit issuer key
  sha256_rsa_4096,  // sha256WithRSAEncryption, 4096-bit issuer key
  ecdsa_sha256,     // ecdsa-with-SHA256 (P-256 issuer)
  ecdsa_sha384,     // ecdsa-with-SHA384 (P-384 issuer)
  mldsa_44,         // ML-DSA-44: 2420-byte signature
  mldsa_65,         // ML-DSA-65: 3309-byte signature
  mldsa_87,         // ML-DSA-87: 4627-byte signature
};

/// True for the ML-DSA key classes.
[[nodiscard]] bool is_post_quantum(key_algorithm a) noexcept;

/// Which certificates of a served chain carry post-quantum material —
/// the chain-profile sweep axis of the PQC what-if study. `classical`
/// is the default everywhere and reproduces today's chains byte for
/// byte; the two PQC profiles model the migration stages of Chou & Cao.
enum class pq_profile : std::uint8_t {
  classical,  // today's RSA/ECDSA chains
  pqc_leaf,   // ML-DSA-44 leaf key, classical intermediates + signatures
  pqc_full,   // ML-DSA keys and signatures on every certificate
};

/// The three profiles in sweep order (classical first).
[[nodiscard]] const std::array<pq_profile, 3>& all_pq_profiles() noexcept;

/// Human-readable name, e.g. "RSA-2048" / "ECDSA-P256" / "ML-DSA-44".
[[nodiscard]] std::string to_string(key_algorithm a);
[[nodiscard]] std::string to_string(signature_algorithm a);
/// Profile name as used on CLIs and in reports: "classical" /
/// "pqc_leaf" / "pqc_full".
[[nodiscard]] std::string to_string(pq_profile p);
/// Inverse of to_string(pq_profile); throws config_error on unknown
/// names.
[[nodiscard]] pq_profile parse_pq_profile(std::string_view name);

/// Signature algorithm naturally produced by a CA holding a key of
/// algorithm `a` (RSA keys sign sha256WithRSA, P-384 signs ecdsa-sha384).
[[nodiscard]] signature_algorithm signature_by(key_algorithm issuer_key);

/// DER AlgorithmIdentifier for a signature algorithm.
[[nodiscard]] bytes encode_signature_algorithm(signature_algorithm a);

/// DER SubjectPublicKeyInfo with freshly synthesized key bits.
[[nodiscard]] bytes encode_spki(key_algorithm a, rng& r);

/// Synthesized signatureValue BIT STRING matching the algorithm's
/// real-world size (RSA: modulus-sized; ECDSA: DER-encoded r/s pair).
[[nodiscard]] bytes encode_signature_value(signature_algorithm a, rng& r);

}  // namespace certquic::x509
