// Fixed-size lock-free single-producer/single-consumer ring — the
// hand-off primitive of the streaming executor (streaming_executor.hpp),
// in the spirit of firedancer's mcache stages: one producer thread
// pushes, one consumer thread pops, and the only synchronization is an
// acquire/release pair on two monotonically increasing cursors.
//
// Design:
//  * Capacity is rounded up to a power of two, so slot lookup is a mask
//    (cursor & mask) and full/empty tests are plain cursor subtraction
//    (tail - head == capacity / tail == head) that stays correct across
//    wraparound of the std::size_t cursors themselves.
//  * The producer owns tail_ (release-stored after the slot is
//    constructed), the consumer owns head_ (release-stored after the
//    slot is destroyed). Each side keeps a plain-cache copy of the
//    *other* side's cursor and refreshes it with an acquire load only
//    when the stale value says full/empty — the common-case push/pop
//    touches no shared cache line of the peer.
//  * The cursor pairs live on their own cache lines (alignas) and the
//    class itself is cache-line aligned, so producer and consumer never
//    false-share, and two adjacent rings never share a line.
//  * try_push/try_pop never block and never spin: backpressure policy
//    (what to do when full/empty — yield, park, abort) belongs to the
//    caller, which keeps the ring itself trivially lock-free and lets
//    the executor check its cancellation flag between retries.
//  * A failed try_push does NOT consume the value: the argument is only
//    moved from once a free slot is secured, so callers may retry with
//    the same object.
//
// The ring stores move-constructible payloads (move-only types
// included) in raw storage: slots are placement-new constructed on push
// and destroyed on pop, so no default-constructibility is required and
// capacity-1 rings are legal.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <memory>
#include <new>
#include <optional>
#include <type_traits>
#include <utility>

namespace certquic::engine {

/// Destructive-interference padding for the ring cursors. A fixed 64
/// instead of std::hardware_destructive_interference_size: the constant
/// must not vary between translation units (ODR), and 64 is the line
/// size of every deployment target.
inline constexpr std::size_t kCacheLineSize = 64;

template <typename T>
class alignas(kCacheLineSize) spsc_ring {
  static_assert(std::is_move_constructible_v<T>,
                "spsc_ring payloads must be move-constructible");

 public:
  /// Builds a ring holding at least `min_capacity` elements; the actual
  /// capacity is the next power of two (minimum 1).
  explicit spsc_ring(std::size_t min_capacity)
      : capacity_(std::bit_ceil(min_capacity == 0 ? std::size_t{1}
                                                  : min_capacity)),
        mask_(capacity_ - 1),
        slots_(std::allocator<T>{}.allocate(capacity_)) {}

  ~spsc_ring() {
    // Single-threaded by the SPSC contract at destruction time; drain
    // whatever the consumer never popped.
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    for (std::size_t cursor = head_.load(std::memory_order_acquire);
         cursor != tail; ++cursor) {
      slot(cursor)->~T();
    }
    std::allocator<T>{}.deallocate(slots_, capacity_);
  }

  spsc_ring(const spsc_ring&) = delete;
  spsc_ring& operator=(const spsc_ring&) = delete;

  /// Producer side. Returns false when the ring is full; the value is
  /// left untouched in that case, so the producer can retry with it.
  [[nodiscard]] bool try_push(T&& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ == capacity_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ == capacity_) {
        return false;  // genuinely full — backpressure
      }
    }
    ::new (static_cast<void*>(slot(tail))) T(std::move(value));
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns the oldest element, or nullopt when the
  /// ring is empty.
  [[nodiscard]] std::optional<T> try_pop() {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) {
        return std::nullopt;  // genuinely empty
      }
    }
    T* occupied = slot(head);
    std::optional<T> out{std::move(*occupied)};
    occupied->~T();
    head_.store(head + 1, std::memory_order_release);
    return out;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Element-count snapshot; exact only while the other side is quiet
  /// (diagnostics, tests — never synchronization).
  [[nodiscard]] std::size_t approx_size() const noexcept {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

 private:
  [[nodiscard]] T* slot(std::size_t cursor) noexcept {
    return slots_ + (cursor & mask_);
  }

  // Immutable after construction; shared read-only by both sides.
  const std::size_t capacity_;
  const std::size_t mask_;
  T* const slots_;

  // Producer cache line: the producer's cursor plus its stale copy of
  // the consumer's.
  alignas(kCacheLineSize) std::atomic<std::size_t> tail_{0};
  std::size_t head_cache_ = 0;

  // Consumer cache line, symmetric. The class-level alignas rounds
  // sizeof(spsc_ring) up to a full line, so this group never shares a
  // line with a neighboring object either.
  alignas(kCacheLineSize) std::atomic<std::size_t> head_{0};
  std::size_t tail_cache_ = 0;
};

}  // namespace certquic::engine
