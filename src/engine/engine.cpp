#include "engine/engine.hpp"

#include <cstdlib>

#include "engine/backend.hpp"
#include "util/errors.hpp"

namespace certquic::engine {

std::size_t resolved_threads(const options& opt) {
  if (opt.threads > 0) {
    return opt.threads;
  }
  if (const char* env = std::getenv("CERTQUIC_THREADS");
      env != nullptr && *env != '\0') {
    const auto parsed = std::strtoull(env, nullptr, 10);
    if (parsed > 0) {
      // Cap garbage values (e.g. "-1" wrapping to ULLONG_MAX) at a
      // generous ceiling instead of spawning unbounded threads.
      constexpr unsigned long long kMaxThreads = 1024;
      return static_cast<std::size_t>(std::min(parsed, kMaxThreads));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

executor_mode resolved_mode(const options& opt) {
  return opt.mode == executor_mode::automatic ? executor_mode_from_env()
                                              : opt.mode;
}

void executor::run(const probe_plan& plan, observation_sink& sink) const {
  run(plan, sample(plan), sink);
}

void executor::run(const probe_plan& plan,
                   const std::vector<std::uint32_t>& sampled,
                   observation_sink& sink) const {
  if (plan.variants.empty()) {
    throw config_error("probe_plan without variants");
  }
  const std::size_t services = sampled.size();
  sink.on_begin(plan, services);
  if (services > 0) {
    const reach_backend backend{model_, plan, sampled};
    run_backend(backend, opt_, [&](std::size_t k, unit_outcome&& outcome) {
      const auto variant_index = static_cast<std::uint32_t>(k / services);
      const std::uint32_t service_index = sampled[k % services];
      sink.on_record(probe_record{
          .service_index = service_index,
          .variant_index = variant_index,
          .record = model_.records()[service_index],
          .variant = plan.variants[variant_index],
          .result = outcome.probe,
      });
    });
  }
  sink.on_end();
}

}  // namespace certquic::engine
