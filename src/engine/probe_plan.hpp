// Declarative probe plans: a deterministic service sample crossed with
// client-configuration variants (Initial size, compression offers, ACK
// behaviour, certificate capture). A plan says *what* to measure; the
// executor (engine.hpp) decides how to shard it across threads.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "internet/model.hpp"
#include "net/time.hpp"
#include "quic/client.hpp"
#include "scan/reach.hpp"

namespace certquic::engine {

/// Which service records of the population a plan covers.
enum class service_filter : std::uint8_t {
  quic,  // records with svc == service_class::quic
  tls,   // QUIC + HTTPS-only records
  all,   // every record
};

/// Deterministic up-front sampling shared by every study: walks the
/// population once and returns the record indices selected by the
/// historical striding rule (every `stride`-th matching record, where
/// stride = ceil(matching / cap)). cap == 0 selects every match.
///
/// Taking the sample once — instead of interleaving the stride test
/// with the record walk in each study — is what lets the executor shard
/// the plan while keeping the probed set and its order bit-identical to
/// the old serial loops.
[[nodiscard]] std::vector<std::uint32_t> sample_indices(
    const internet::model& m, service_filter filter, std::size_t cap);

/// One client-configuration point of the plan's cross product.
struct probe_variant {
  std::size_t initial_size = 1362;
  /// Algorithms offered via compress_certificate (empty = quicreach).
  std::vector<compress::algorithm> offer_compression{};
  /// Client acknowledgement behaviour axis ("ReACKed QUICer"): the
  /// default delayed-ack client, the instant-ACK variant, or the silent
  /// adversary that never acknowledges anything.
  quic::ack_policy ack = quic::ack_policy::delayed;
  /// Retain the raw Certificate message (QScanner mode).
  bool capture_certificate = false;
  /// Server-side chain-profile axis (the PQC what-if sweep): which
  /// chain profile the probed services serve their certificates under.
  /// A world transform rather than a client knob — the default keeps
  /// every existing plan, and thus every golden, byte-identical.
  x509::pq_profile chain_profile = x509::pq_profile::classical;
  /// Observation deadline override; unset keeps the client default.
  std::optional<net::duration> timeout{};
  /// Network regime the probe's two paths run under (the time-domain
  /// axis). The default condition is the historical simulator setup,
  /// so plans that never touch it stay golden-identical.
  net::network_condition network{};
  /// Request one application object after the handshake and record the
  /// probe's TTFB (probe_record::ttfb()). Default off: the exchange
  /// perturbs the byte totals size-domain goldens pin down.
  bool measure_ttfb = false;
  /// Stream separator mixed into the per-probe seed so repeated visits
  /// of the same service draw independent randomness. Salt 0 under a
  /// zero base seed preserves the historical record-derived seeding.
  std::uint64_t salt = 0;

  /// The scan-layer options this variant resolves to (seed filled in by
  /// the executor).
  [[nodiscard]] scan::probe_options to_probe_options() const;
};

/// A full plan: sample spec x variant list. The executor enumerates the
/// cross product variant-major (all services under variants[0], then
/// variants[1], ...), matching how the old per-study loops nested.
struct probe_plan {
  service_filter filter = service_filter::quic;
  /// 0 = probe every matching service; otherwise the deterministic
  /// striding sample above.
  std::size_t max_services = 0;
  /// At least one variant; single() builds the common one-variant plan.
  std::vector<probe_variant> variants;
  /// Base seed of the per-probe seeding hash(base_seed, domain, salt).
  /// 0 (with salt 0) keeps the historical record-derived simulator
  /// seeds, which the golden figures are captured under.
  std::uint64_t base_seed = 0;

  [[nodiscard]] static probe_plan single(probe_variant v,
                                         std::size_t max_services = 0,
                                         service_filter f =
                                             service_filter::quic);

  /// Appends one variant per Initial size (e.g. the Fig. 3 sweep).
  probe_plan& sweep_initial_sizes(const std::vector<std::size_t>& sizes);

  /// Appends one variant per client ACK policy (delayed, instant,
  /// none), all at `initial_size` — the ReACKed-QUICer axis.
  probe_plan& sweep_ack_policies(std::size_t initial_size = 1362);

  /// Appends one variant per chain profile (classical, pqc_leaf,
  /// pqc_full), all at `initial_size` — the PQC what-if axis. With
  /// base_seed and salt at zero, every profile probes a service under
  /// its historical record-derived randomness, so the three runs form
  /// matched pairs and per-class deltas isolate the chain-size effect.
  probe_plan& sweep_chain_profiles(std::size_t initial_size = 1362);
};

/// Per-probe deterministic seed: identical regardless of shard count or
/// execution order. Returns 0 — "derive from the record seed as the
/// serial scanners always did" — when base_seed and salt are both 0.
[[nodiscard]] std::uint64_t probe_seed(std::uint64_t base_seed,
                                       const std::string& domain,
                                       std::uint64_t salt);

}  // namespace certquic::engine
