// The experiment engine: shards a probe_plan across a thread pool and
// streams the results to an observation_sink in deterministic plan
// order, so parallel runs are bit-identical to serial ones. World
// construction is delegated to pluggable probe_backends
// (engine/backend.hpp): the executor runs plans on the stateless
// reach_backend; shared-world studies (telescope backscatter) drive
// run_backend with a backscatter_backend directly.
//
// parallel_ordered is the single execution primitive underneath it
// all. It dispatches, per engine::options, between two bit-identical
// implementations: the default lock-free streaming pipeline over SPSC
// rings (engine/streaming_executor.hpp — no join barrier, results flow
// to the consumer while workers are still probing) and the historical
// chunk-and-join path kept below as the reference implementation.
//
// Determinism rests on three invariants:
//  1. every probe's randomness is a pure function of the plan and the
//     record (probe_seed / the record's own seed), never of scheduling;
//  2. a backend's unit→shard partition is fixed by the plan, never by
//     the thread count, so shared-world interactions are reproducible;
//  3. workers only *compute*; all aggregation happens on the caller's
//     thread, in plan order, via parallel_ordered's ordered consumer.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "engine/probe_plan.hpp"
#include "engine/sink.hpp"
#include "engine/streaming_executor.hpp"
#include "internet/model.hpp"

namespace certquic::engine {

/// Execution knobs shared by every engine entry point.
struct options {
  /// Worker threads. 0 resolves to $CERTQUIC_THREADS when set, else
  /// std::thread::hardware_concurrency() — the engine is parallel by
  /// default. 1 forces the serial path.
  std::size_t threads = 0;
  /// Probes per shard handed to a worker at a time. 0 resolves to the
  /// default via resolved_chunk().
  std::size_t chunk = 64;
  /// Which parallel_ordered implementation to use. `automatic` defers
  /// to $CERTQUIC_EXECUTOR ("streaming" | "chunked"), defaulting to
  /// the lock-free streaming pipeline; both are bit-identical, so this
  /// knob exists for A/B benchmarking and regression bisection, not
  /// correctness.
  executor_mode mode = executor_mode::automatic;
  /// Per-worker SPSC ring capacity for the streaming executor, rounded
  /// up to a power of two. 0 resolves to kDefaultRingCapacity.
  std::size_t ring = 0;

  /// The effective chunk size; the single place the `0 means 64`
  /// default lives, shared by parallel_ordered and run_backend so the
  /// two paths cannot drift.
  [[nodiscard]] std::size_t resolved_chunk() const noexcept {
    return chunk == 0 ? 64 : chunk;
  }

  /// The effective streaming-ring capacity.
  [[nodiscard]] std::size_t resolved_ring() const noexcept {
    return ring == 0 ? kDefaultRingCapacity : ring;
  }

  [[nodiscard]] static options serial() { return {.threads = 1}; }
};

/// Resolves options::threads against the environment and hardware;
/// never returns 0.
[[nodiscard]] std::size_t resolved_threads(const options& opt);

/// Resolves options::mode against $CERTQUIC_EXECUTOR; never returns
/// `automatic`.
[[nodiscard]] executor_mode resolved_mode(const options& opt);

/// Ordered parallel map: computes work(i) for i in [0, n) on a worker
/// pool, then calls consume(i, result) for every i in ascending order
/// on the calling thread. Work must be safe to invoke concurrently;
/// consume runs strictly serially. Exceptions from either side cancel
/// the run and rethrow on the caller.
///
/// This is the execution primitive behind the probe executor; studies
/// whose unit of work is not a single handshake (chain compression,
/// multi-visit tuning, the Meta /24 scan) use it directly.
template <typename Work, typename Consume>
void parallel_ordered(std::size_t n, const options& opt, Work&& work,
                      Consume&& consume) {
  using result_t = std::decay_t<std::invoke_result_t<Work&, std::size_t>>;
  const std::size_t threads = resolved_threads(opt);
  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      consume(i, work(i));
    }
    return;
  }

  if (resolved_mode(opt) == executor_mode::streaming) {
    streaming_parallel_ordered(n, threads, opt.resolved_chunk(),
                               opt.resolved_ring(), std::forward<Work>(work),
                               std::forward<Consume>(consume));
    return;
  }

  const std::size_t chunk = opt.resolved_chunk();
  const std::size_t chunks = (n + chunk - 1) / chunk;
  // Backpressure: workers stall once they are `window` chunks ahead of
  // the ordered consumer, bounding buffered results to O(threads) even
  // when consume is slower than work. window >= 1 cannot deadlock: a
  // worker waits only on chunks strictly above the consume frontier,
  // and the frontier chunk is always claimed before any waiter's.
  const std::size_t window = std::max<std::size_t>(4 * threads, 8);
  std::vector<std::unique_ptr<std::vector<result_t>>> done(chunks);
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::size_t consumed_chunks = 0;  // guarded by mu
  std::exception_ptr error;

  auto worker = [&] {
    for (;;) {
      const std::size_t c = next.fetch_add(1);
      if (c >= chunks || failed.load()) {
        return;
      }
      {
        std::unique_lock<std::mutex> lock{mu};
        cv.wait(lock, [&] {
          return c < consumed_chunks + window || failed.load();
        });
      }
      if (failed.load()) {
        return;
      }
      const std::size_t lo = c * chunk;
      const std::size_t hi = std::min(n, lo + chunk);
      auto results = std::make_unique<std::vector<result_t>>();
      results->reserve(hi - lo);
      try {
        for (std::size_t i = lo; i < hi; ++i) {
          results->push_back(work(i));
        }
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock{mu};
          if (!failed.exchange(true)) {
            error = std::current_exception();
          }
        }
        cv.notify_all();
        return;
      }
      {
        const std::lock_guard<std::mutex> lock{mu};
        done[c] = std::move(results);
      }
      cv.notify_all();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(std::min(threads, chunks));
  for (std::size_t t = 0; t < std::min(threads, chunks); ++t) {
    pool.emplace_back(worker);
  }

  // Sequencer invariant: the ordered consumer must see every index
  // exactly once, in ascending order — this is what makes parallel
  // aggregation bit-identical to serial. Checked per consume call in
  // debug/sanitizer builds (sequencer_ticket is a no-op otherwise).
  sequencer_ticket ticket;
  try {
    std::unique_lock<std::mutex> lock{mu};
    for (std::size_t c = 0; c < chunks; ++c) {
      cv.wait(lock, [&] { return done[c] != nullptr || failed.load(); });
      if (failed.load()) {
        break;
      }
      const auto results = std::move(done[c]);
      lock.unlock();
      const std::size_t lo = c * chunk;
      for (std::size_t j = 0; j < results->size(); ++j) {
        ticket.advance(lo + j);
        consume(lo + j, std::move((*results)[j]));
      }
      lock.lock();
      ++consumed_chunks;
      cv.notify_all();  // release workers stalled on the window
    }
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock{mu};
      if (!failed.exchange(true)) {
        error = std::current_exception();
      }
    }
    cv.notify_all();
  }

  for (auto& t : pool) {
    t.join();
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

/// Executes probe plans against one population. Stateless between runs;
/// cheap to construct.
class executor {
 public:
  explicit executor(const internet::model& m, options opt = {})
      : model_(m), opt_(opt) {}

  /// Runs the plan on the stateless reach backend, streaming every
  /// probe to the sink in plan order, wrapped in the sink's
  /// on_begin/on_end lifecycle. Throws config_error on a plan without
  /// variants.
  void run(const probe_plan& plan, observation_sink& sink) const;

  /// Same, over an already-resolved sample (callers that need the
  /// sample size up front — e.g. to pre-reserve aggregates — pass it
  /// back in rather than paying a second population walk).
  void run(const probe_plan& plan, const std::vector<std::uint32_t>& sampled,
           observation_sink& sink) const;

  /// The record indices the plan's sample spec resolves to (the shared
  /// deterministic sampling; exposed so aggregators can pre-reserve).
  [[nodiscard]] std::vector<std::uint32_t> sample(
      const probe_plan& plan) const {
    return sample_indices(model_, plan.filter, plan.max_services);
  }

  [[nodiscard]] const internet::model& model() const noexcept {
    return model_;
  }
  [[nodiscard]] const options& opts() const noexcept { return opt_; }

 private:
  const internet::model& model_;
  options opt_;
};

}  // namespace certquic::engine
