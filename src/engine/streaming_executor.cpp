#include "engine/streaming_executor.hpp"

#include <cstdlib>
#include <cstring>

namespace certquic::engine {

executor_mode executor_mode_from_env() {
  if (const char* env = std::getenv("CERTQUIC_EXECUTOR");
      env != nullptr && *env != '\0') {
    if (std::strcmp(env, "chunked") == 0) {
      return executor_mode::chunked;
    }
    // Anything else — including explicit "streaming" — gets the
    // default; an unknown value must not silently change results, and
    // both executors are bit-identical anyway.
  }
  return executor_mode::streaming;
}

}  // namespace certquic::engine
