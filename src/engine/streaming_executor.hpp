// The lock-free streaming executor: a producer/consumer pipeline over
// per-worker SPSC rings (ring.hpp) that replaces the historical
// chunk-and-join path of parallel_ordered. N probe workers each own one
// ring; the caller's thread runs the plan-order sequencer, draining the
// rings ticket by ticket and streaming every result to the consumer the
// moment it is available — no join barrier, so records flow into the
// sink while later shards are still probing, and a slow sink stalls
// workers only once their own ring fills (bounded backpressure), never
// at a chunk boundary.
//
// How plan order survives without a barrier:
//  * chunk c of the index space is *statically* owned by worker
//    w = c % workers, and each worker walks its chunks in ascending
//    order — so worker w produces its items in exactly the order the
//    global plan visits them;
//  * the sequencer visits tickets 0, 1, 2, ... (for backend runs the
//    ticket encodes (variant, shard, index) through the plan's
//    variant-major enumeration) and pops ticket i from the ring of the
//    worker that owns chunk i / chunk — per ring, its consumption
//    order equals the producer's production order, so the FIFO ring
//    hands it exactly the item it is waiting for;
//  * therefore the next ticket the sequencer needs is always the head
//    of exactly one ring: either it is already buffered (progress) or
//    its owner is still computing it and the ring has space for it
//    (the items before it in that ring have been consumed) — the
//    pipeline cannot deadlock, and delivery is strictly ascending.
// work(i) calls and the consume order are identical to the serial loop,
// which is what keeps parallel aggregates bit-identical to serial ones
// (tests/executor_test.cpp pins this at 1/2/8/16 threads against the
// chunked path, over both the reach and backscatter backends).
//
// Cancellation: a failure flag is checked by workers between items and
// inside the push-backpressure loop, and by the sequencer inside the
// pop loop, so an exception on either side (worker or sink) drains the
// pipeline promptly; the first exception is rethrown on the caller
// after all workers joined.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

#include "engine/ring.hpp"
#include "util/assert.hpp"

namespace certquic::engine {

/// Which executor implementation parallel_ordered routes through.
enum class executor_mode : std::uint8_t {
  /// Resolve via $CERTQUIC_EXECUTOR ("streaming" | "chunked");
  /// streaming when unset — the pipelined design is the engine.
  automatic,
  /// Lock-free SPSC-ring pipeline (this header).
  streaming,
  /// Historical chunk-and-join path (engine.hpp) — kept as the
  /// reference implementation the streaming path is diffed against.
  chunked,
};

/// $CERTQUIC_EXECUTOR resolution; streaming unless the environment
/// explicitly says "chunked".
[[nodiscard]] executor_mode executor_mode_from_env();

/// Per-worker ring capacity when options::ring is 0. 64 entries bounds
/// buffered results to O(threads * 64) items — the same order as the
/// old chunk window — while giving workers enough slack to ride out
/// sink latency spikes.
inline constexpr std::size_t kDefaultRingCapacity = 64;

/// Debug-only sequencer-ticket monotonicity check: the sequencer must
/// deliver tickets 0, 1, 2, ... with no gap, duplicate or reordering —
/// the invariant that makes parallel aggregation bit-identical to
/// serial. advance(t) asserts t is exactly the next expected ticket in
/// CERTQUIC_ENABLE_ASSERTS builds (death-tested by executor_test) and
/// compiles to nothing in release builds.
class sequencer_ticket {
 public:
  void advance(std::size_t ticket) noexcept {
#if defined(CERTQUIC_ENABLE_ASSERTS)
    CERTQUIC_ASSERT(ticket == next_,
                    "sequencer ticket left plan order — ordered delivery "
                    "must be monotone ascending with no gaps");
    ++next_;
#else
    (void)ticket;
#endif
  }

#if defined(CERTQUIC_ENABLE_ASSERTS)
 private:
  std::size_t next_ = 0;
#endif
};

/// Ordered parallel map over SPSC rings: computes work(i) for i in
/// [0, n) on `threads` workers and calls consume(i, result) for every i
/// in ascending order on the calling thread — the same contract as
/// parallel_ordered (engine.hpp), which routes here by default; call
/// through that entry point unless you are the dispatch itself or a
/// test pinning the two implementations against each other.
/// `chunk` is the partition granularity (>= 1), `ring_capacity` the
/// per-worker buffer (rounded up to a power of two by the ring).
/// Exceptions from work or consume cancel the run and rethrow on the
/// caller. Requires n >= 1 and threads >= 1 (callers keep the serial
/// fast path for the degenerate cases).
template <typename Work, typename Consume>
void streaming_parallel_ordered(std::size_t n, std::size_t threads,
                                std::size_t chunk, std::size_t ring_capacity,
                                Work&& work, Consume&& consume) {
  using result_t = std::decay_t<std::invoke_result_t<Work&, std::size_t>>;
  const std::size_t chunks = (n + chunk - 1) / chunk;
  const std::size_t workers = std::min(threads, chunks);

  // One ring per worker; unique_ptr keeps each alignas(64) ring stable
  // and off the others' cache lines regardless of vector reallocation.
  std::vector<std::unique_ptr<spsc_ring<result_t>>> rings;
  rings.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    rings.push_back(std::make_unique<spsc_ring<result_t>>(ring_capacity));
  }

  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::exception_ptr error;
  const auto record_failure = [&](std::exception_ptr e) {
    {
      const std::lock_guard<std::mutex> lock{error_mu};
      if (error == nullptr) {
        error = std::move(e);
      }
    }
    failed.store(true, std::memory_order_release);
  };

  const auto worker = [&](std::size_t w) {
    spsc_ring<result_t>& ring = *rings[w];
    try {
      for (std::size_t c = w; c < chunks; c += workers) {
        const std::size_t lo = c * chunk;
        const std::size_t hi = std::min(n, lo + chunk);
        for (std::size_t i = lo; i < hi; ++i) {
          if (failed.load(std::memory_order_acquire)) {
            return;
          }
          result_t result = work(i);
          // Backpressure: a full ring parks this producer (only this
          // one — the sink is behind on *our* items) until the
          // sequencer drains a slot or the run is cancelled. try_push
          // leaves `result` intact on failure, so the retry is safe.
          while (!ring.try_push(std::move(result))) {
            if (failed.load(std::memory_order_acquire)) {
              return;
            }
            std::this_thread::yield();
          }
        }
      }
    } catch (...) {
      record_failure(std::current_exception());
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back(worker, w);
  }

  // The plan-order sequencer: ticket i lives at the head of the ring
  // owned by chunk i's worker — pop it, assert monotonicity, stream it.
  sequencer_ticket ticket;
  bool aborted = false;
  try {
    for (std::size_t c = 0; c < chunks && !aborted; ++c) {
      spsc_ring<result_t>& ring = *rings[c % workers];
      const std::size_t lo = c * chunk;
      const std::size_t hi = std::min(n, lo + chunk);
      for (std::size_t i = lo; i < hi; ++i) {
        std::optional<result_t> item;
        while (!(item = ring.try_pop())) {
          if (failed.load(std::memory_order_acquire)) {
            aborted = true;
            break;
          }
          std::this_thread::yield();
        }
        if (aborted) {
          break;
        }
        ticket.advance(i);
        consume(i, std::move(*item));
      }
    }
  } catch (...) {
    record_failure(std::current_exception());
  }

  for (std::thread& t : pool) {
    t.join();
  }
  if (error != nullptr) {
    std::rethrow_exception(error);
  }
}

}  // namespace certquic::engine
