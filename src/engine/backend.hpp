// Pluggable execution backends for the experiment engine.
//
// A probe_backend owns *world construction*: how simulators, servers
// and telescopes are instantiated for each shard of a run, and how one
// unit of plan work executes inside that world. The engine driver
// (run_backend) guarantees the rest: units are partitioned into shards
// by the backend's own rule — never by the thread count — shards
// execute concurrently on the engine pool, and per-unit outcomes reach
// the consumer on the caller's thread in ascending unit order. Shared-
// world aggregates are therefore bit-identical at 1, 2 or N threads.
//
// Two backends ship:
//  * reach_backend      — stateless: a fresh simulator per probe (the
//    historical quicreach model; golden figures are captured under it).
//  * backscatter_backend — stateful: each shard hosts one simulator and
//    one telescope shared by a deterministic slice of spoofed sessions
//    (the §3.2/§4.3 telescope and ZMap studies).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.hpp"
#include "engine/probe_plan.hpp"
#include "internet/chain_cache.hpp"
#include "internet/model.hpp"
#include "net/address.hpp"
#include "quic/behavior.hpp"
#include "scan/reach.hpp"
#include "scan/telescope.hpp"
#include "x509/chain.hpp"

namespace certquic::engine {

/// One shard of a backend run: a deterministic slice of the unit index
/// space plus the shard-scoped randomness stream. The partition depends
/// only on the plan and the backend — never on the thread count.
struct shard_context {
  std::size_t index = 0;  // shard number
  std::size_t lo = 0;     // first unit (inclusive)
  std::size_t hi = 0;     // last unit (exclusive)
  std::uint64_t seed = 0; // shard_seed(base_seed, index)
};

/// Per-shard stream separator: identical for a given (base, index)
/// regardless of how many shards run concurrently.
[[nodiscard]] std::uint64_t shard_seed(std::uint64_t base_seed,
                                       std::size_t shard_index);

/// One executed unit. Stateless backends fill only `probe`; shared-
/// world backends additionally report what the telescope attributed to
/// the unit's sensor (empty — datagrams == 0 — otherwise).
struct unit_outcome {
  scan::probe_result probe{};
  scan::backscatter_session backscatter{};
};

/// The execution-backend interface. Implementations hold only
/// immutable run inputs; run_shard must be safe to call concurrently
/// for distinct shards.
///
/// Shard-partition invariants (what makes backend runs reproducible):
///  1. The unit→shard partition is a pure function of the plan and the
///     backend — unit k belongs to shard k / units_per_shard() — and
///     never of the thread count, which only decides how many shard
///     worlds are alive at once.
///  2. Each shard's randomness derives from shard_seed(base_seed(),
///     shard index) plus per-unit seeds carried in the plan; nothing a
///     shard draws depends on scheduling or on other shards.
///  3. Units within a shard run in ascending order inside one world,
///     so shared-world interactions (slot reuse, telescope state) are
///     part of the plan, not of the execution.
/// Together these guarantee bit-identical aggregates at 1, 2 or N
/// threads — the property engine_test/backend_test pin at 1/2/8 and
/// `tools/verify.sh --threads N` enforces on the golden outputs.
class probe_backend {
 public:
  virtual ~probe_backend() = default;

  /// Total units of work in this run.
  [[nodiscard]] virtual std::size_t unit_count() const = 0;

  /// Units per shard world. 0 means stateless: every unit runs in its
  /// own fresh world, so the driver may chunk freely (the partition
  /// cannot influence results). A non-zero value pins the partition:
  /// unit k always belongs to shard k / units_per_shard(), keeping
  /// shared-world aggregates thread-count-invariant.
  [[nodiscard]] virtual std::size_t units_per_shard() const { return 0; }

  /// Base seed the driver derives shard seeds from.
  [[nodiscard]] virtual std::uint64_t base_seed() const { return 0; }

  /// Builds the shard's world and runs units [ctx.lo, ctx.hi) inside
  /// it, in ascending unit order; result[i] is unit ctx.lo + i.
  [[nodiscard]] virtual std::vector<unit_outcome> run_shard(
      const shard_context& ctx) const = 0;
};

/// Drives a backend on the engine pool: shards execute concurrently,
/// outcomes stream to consume(unit_index, outcome) in unit order on the
/// calling thread. consume therefore needs no locking and may hold
/// mutable aggregation state; it observes every unit exactly once, in
/// ascending order, regardless of how shards were scheduled. For
/// stateless backends (units_per_shard() == 0) the driver chunks
/// freely — the partition cannot influence results — while a non-zero
/// value is honoured exactly, because it is part of the experiment's
/// semantics.
template <typename Consume>
void run_backend(const probe_backend& backend, const options& opt,
                 Consume&& consume) {
  const std::size_t units = backend.unit_count();
  if (units == 0) {
    return;
  }
  std::size_t per_shard = backend.units_per_shard();
  if (per_shard == 0) {
    per_shard = opt.resolved_chunk();
  }
  const std::size_t shards = (units + per_shard - 1) / per_shard;
  // One shard is one work item; its outcome vector already batches
  // per_shard units, so no inner chunking.
  options shard_opt = opt;
  shard_opt.chunk = 1;
  parallel_ordered(
      shards, shard_opt,
      [&](std::size_t s) {
        shard_context ctx;
        ctx.index = s;
        ctx.lo = s * per_shard;
        ctx.hi = std::min(units, ctx.lo + per_shard);
        ctx.seed = shard_seed(backend.base_seed(), s);
        return backend.run_shard(ctx);
      },
      [&](std::size_t s, std::vector<unit_outcome>&& outcomes) {
        const std::size_t lo = s * per_shard;
        for (std::size_t j = 0; j < outcomes.size(); ++j) {
          consume(lo + j, std::move(outcomes[j]));
        }
      });
}

// ---------------------------------------------------------------------------
// reach_backend: the stateless quicreach world (one simulator per probe)

class reach_backend final : public probe_backend {
 public:
  /// Runs `plan`'s cross product over the resolved sample, variant-
  /// major (unit k probes service k % sample under variant k / sample).
  /// Plans with more than one variant visit each service repeatedly, so
  /// chain materialization is memoized behind a thread-safe cache keyed
  /// by (record, protocol, chain profile); results are bit-identical
  /// either way.
  reach_backend(const internet::model& m, const probe_plan& plan,
                const std::vector<std::uint32_t>& sampled);

  [[nodiscard]] std::size_t unit_count() const override {
    return sampled_.size() * plan_.variants.size();
  }
  [[nodiscard]] std::uint64_t base_seed() const override {
    return plan_.base_seed;
  }
  [[nodiscard]] std::vector<unit_outcome> run_shard(
      const shard_context& ctx) const override;

 private:
  const internet::model& model_;
  const probe_plan& plan_;
  const std::vector<std::uint32_t>& sampled_;
  std::optional<internet::chain_cache> cache_;  // multi-variant plans only
  scan::reach prober_;
};

// ---------------------------------------------------------------------------
// backscatter_backend: shard-shared simulator + telescope worlds

/// One spoofed session: an attacker sends a single unacknowledged
/// Initial towards `server` with a telescope sensor as its source
/// address; everything the server answers lands on the telescope.
struct spoofed_session {
  net::endpoint_id server;        // attacked endpoint
  x509::chain chain;              // chain that endpoint serves
  quic::server_behavior behavior;
  std::string sni;
  std::size_t initial_size = 1362;
  net::duration timeout = net::seconds(400);
  /// Per-session randomness stream (client/server nonces); a pure
  /// function of the session's position so shards never interact.
  std::uint64_t seed = 0;
};

/// A backscatter run: the session list plus the world parameters every
/// shard replicates (telescope base block, provider labelling, shared
/// compression dictionary).
struct backscatter_plan {
  std::vector<spoofed_session> sessions;
  /// Sessions per shared simulator+telescope world. Part of the plan —
  /// not an execution knob — because it fixes which sessions coexist in
  /// one world; the thread count only decides how many worlds run at
  /// once.
  std::size_t sessions_per_shard = 32;
  std::uint64_t base_seed = 0;
  net::ipv4 telescope_base = net::ipv4::of(203, 0, 113, 0);
  /// /24 server prefixes labelled at the telescope (provider grouping).
  std::vector<std::pair<net::ipv4, std::string>> provider_prefixes;
  /// Dictionary backing certificate compression on spawned servers.
  bytes dictionary;
};

class backscatter_backend final : public probe_backend {
 public:
  explicit backscatter_backend(backscatter_plan plan)
      : plan_(std::move(plan)) {}

  [[nodiscard]] std::size_t unit_count() const override {
    return plan_.sessions.size();
  }
  [[nodiscard]] std::size_t units_per_shard() const override {
    return plan_.sessions_per_shard == 0 ? 1 : plan_.sessions_per_shard;
  }
  [[nodiscard]] std::uint64_t base_seed() const override {
    return plan_.base_seed;
  }
  [[nodiscard]] std::vector<unit_outcome> run_shard(
      const shard_context& ctx) const override;

  [[nodiscard]] const backscatter_plan& plan() const noexcept {
    return plan_;
  }

 private:
  backscatter_plan plan_;
};

}  // namespace certquic::engine
