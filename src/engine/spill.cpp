#include "engine/spill.hpp"

#include <cinttypes>
#include <fstream>
#include <sstream>

#include "util/errors.hpp"
#include "util/hex.hpp"

namespace certquic::engine {
namespace {

constexpr const char* kMagic = "certquic-spill";
constexpr const char* kVersion = "v1";

}  // namespace

spill_sink::spill_sink(std::string path) : path_(std::move(path)) {
  file_ = std::fopen(path_.c_str(), "w");
  if (file_ == nullptr) {
    throw config_error("spill_sink: cannot open " + path_);
  }
}

spill_sink::~spill_sink() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

void spill_sink::write_header(std::size_t variants, std::size_t sampled) {
  std::fprintf(file_, "%s %s %zu %zu\n", kMagic, kVersion, variants, sampled);
  header_written_ = true;
}

void spill_sink::on_begin(const probe_plan& plan, std::size_t sampled) {
  if (!header_written_) {
    write_header(plan.variants.size(), sampled);
  }
}

void spill_sink::on_record(const probe_record& rec) {
  if (file_ == nullptr) {
    throw config_error("spill_sink: record after on_end");
  }
  if (!header_written_) {
    write_header(0, 0);  // driven without a lifecycle; counts unknown
  }
  const quic::observation& o = rec.result.obs;
  std::fprintf(
      file_,
      "%" PRIu32 " %" PRIu32 " %d %d %d %d %d %d %zu %zu %zu %zu %zu %zu "
      "%zu %zu %zu %zu %zu %d %zu %zu %" PRIu64 " %" PRIu64 " %" PRIu64
      " %" PRIu64 " %s\n",
      rec.service_index, rec.variant_index,
      static_cast<int>(rec.result.cls), o.response_received ? 1 : 0,
      o.retry_seen ? 1 : 0, o.version_negotiation_seen ? 1 : 0,
      o.handshake_complete ? 1 : 0, o.timed_out ? 1 : 0, o.client_datagrams,
      o.acks_before_complete, o.bytes_sent_first_flight, o.bytes_sent_total,
      o.bytes_received_total, o.bytes_received_first_burst,
      o.tls_bytes_first_burst, o.padding_bytes_first_burst,
      o.tls_bytes_received, o.padding_bytes_received, o.server_datagrams,
      o.compression_used ? 1 : 0, o.certificate_msg_size,
      o.certificate_uncompressed_size, o.start_time, o.complete_time,
      o.first_receive_time, o.last_receive_time,
      o.certificate_message.empty()
          ? "-"
          : to_hex(o.certificate_message).c_str());
  ++records_;
}

void spill_sink::on_end() {
  if (file_ == nullptr) {
    return;
  }
  // Surface disk-full / I/O failures here instead of reporting a
  // truncated spill as success: a clean-looking but short file would
  // silently replay into wrong aggregates.
  const bool write_error = std::ferror(file_) != 0;
  const bool close_error = std::fclose(file_) != 0;
  file_ = nullptr;
  if (write_error || close_error) {
    throw config_error("spill_sink: I/O error writing " + path_);
  }
}

std::size_t spill_reader::replay(const std::string& path,
                                 observation_sink& sink) const {
  std::ifstream in{path};
  if (!in) {
    throw config_error("spill_reader: cannot open " + path);
  }
  std::string magic;
  std::string version;
  std::size_t variants = 0;
  std::size_t sampled = 0;
  in >> magic >> version >> variants >> sampled;
  if (magic != kMagic || version != kVersion) {
    throw codec_error("spill_reader: not a " + std::string(kVersion) +
                      " spill file: " + path);
  }
  if (variants != 0 && variants != plan_.variants.size()) {
    throw config_error("spill_reader: spill captured under " +
                       std::to_string(variants) +
                       " variants, plan has " +
                       std::to_string(plan_.variants.size()));
  }

  sink.on_begin(plan_, sampled);
  std::size_t records = 0;
  std::string line;
  std::getline(in, line);  // consume the header's newline
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream fields{line};
    std::uint32_t service_index = 0;
    std::uint32_t variant_index = 0;
    int cls = 0;
    int response = 0, retry = 0, vn = 0, complete = 0, timed_out = 0;
    int compression = 0;
    std::string hex;
    scan::probe_result result;
    quic::observation& o = result.obs;
    fields >> service_index >> variant_index >> cls >> response >> retry >>
        vn >> complete >> timed_out >> o.client_datagrams >>
        o.acks_before_complete >> o.bytes_sent_first_flight >>
        o.bytes_sent_total >> o.bytes_received_total >>
        o.bytes_received_first_burst >> o.tls_bytes_first_burst >>
        o.padding_bytes_first_burst >> o.tls_bytes_received >>
        o.padding_bytes_received >> o.server_datagrams >> compression >>
        o.certificate_msg_size >> o.certificate_uncompressed_size >>
        o.start_time >> o.complete_time >> o.first_receive_time >>
        o.last_receive_time >> hex;
    if (!fields) {
      throw codec_error("spill_reader: truncated record in " + path);
    }
    if (cls < 0 ||
        cls > static_cast<int>(scan::handshake_class::unreachable)) {
      throw codec_error("spill_reader: handshake class out of range");
    }
    result.cls = static_cast<scan::handshake_class>(cls);
    o.response_received = response != 0;
    o.retry_seen = retry != 0;
    o.version_negotiation_seen = vn != 0;
    o.handshake_complete = complete != 0;
    o.timed_out = timed_out != 0;
    o.compression_used = compression != 0;
    if (hex != "-") {
      o.certificate_message = from_hex(hex);
    }
    if (service_index >= model_.records().size()) {
      throw config_error("spill_reader: service index out of range");
    }
    if (variant_index >= plan_.variants.size()) {
      throw config_error("spill_reader: variant index out of range");
    }
    sink.on_record(probe_record{
        .service_index = service_index,
        .variant_index = variant_index,
        .record = model_.records()[service_index],
        .variant = plan_.variants[variant_index],
        .result = result,
    });
    ++records;
  }
  sink.on_end();
  return records;
}

}  // namespace certquic::engine
