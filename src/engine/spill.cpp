#include "engine/spill.hpp"

#include <cinttypes>
#include <fstream>
#include <memory>
#include <sstream>

#include "util/assert.hpp"
#include "util/errors.hpp"
#include "util/hex.hpp"

namespace certquic::engine {
namespace {

constexpr const char* kMagic = "certquic-spill";
constexpr const char* kVersion = "v3";
constexpr const char* kFooterTag = "end";

/// One decoded spill line, not yet resolved against a model/plan.
struct parsed_record {
  std::uint32_t service_index = 0;
  std::uint32_t variant_index = 0;
  scan::probe_result result;
};

parsed_record parse_record_line(const std::string& line,
                                const std::string& path) {
  std::istringstream fields{line};
  parsed_record rec;
  int cls = 0;
  int response = 0, retry = 0, vn = 0, complete = 0, timed_out = 0;
  int compression = 0;
  std::string hex;
  quic::observation& o = rec.result.obs;
  fields >> rec.service_index >> rec.variant_index >> cls >> response >>
      retry >> vn >> complete >> timed_out >> o.client_datagrams >>
      o.acks_before_complete >> o.bytes_sent_first_flight >>
      o.bytes_sent_total >> o.bytes_received_total >>
      o.bytes_received_first_burst >> o.tls_bytes_first_burst >>
      o.padding_bytes_first_burst >> o.tls_bytes_received >>
      o.padding_bytes_received >> o.server_datagrams >> compression >>
      o.certificate_msg_size >> o.certificate_uncompressed_size >>
      o.start_time >> o.complete_time >> o.first_receive_time >>
      o.last_receive_time >> o.first_app_byte_time >>
      o.app_bytes_received >> hex;
  if (!fields) {
    throw codec_error("spill_reader: truncated record in " + path);
  }
  if (cls < 0 || cls > static_cast<int>(scan::handshake_class::unreachable)) {
    throw codec_error("spill_reader: handshake class out of range in " +
                      path);
  }
  rec.result.cls = static_cast<scan::handshake_class>(cls);
  o.response_received = response != 0;
  o.retry_seen = retry != 0;
  o.version_negotiation_seen = vn != 0;
  o.handshake_complete = complete != 0;
  o.timed_out = timed_out != 0;
  o.compression_used = compression != 0;
  if (hex != "-") {
    o.certificate_message = from_hex(hex);
  }
  // The TTFB is derived, not stored: recompute it exactly as
  // scan::reach does so replayed records carry the same timeline.
  if (o.first_app_byte_time != 0) {
    rec.result.ttfb = o.first_app_byte_time - o.start_time;
  }
  return rec;
}

/// Streaming cursor over one spill file: parses the header up front,
/// buffers one decoded record at a time, and validates the record-count
/// footer when the stream runs out. Replay and the k-way merge share it
/// so both enforce the same integrity checks.
class spill_cursor {
 public:
  explicit spill_cursor(std::string path)
      : path_(std::move(path)), in_(path_) {
    if (!in_) {
      throw config_error("spill_reader: cannot open " + path_);
    }
    std::string magic;
    std::string version;
    in_ >> magic >> version >> variants_ >> sampled_;
    if (magic != kMagic || version != kVersion) {
      throw codec_error("spill_reader: not a " + std::string(kVersion) +
                        " spill file: " + path_);
    }
    std::string line;
    std::getline(in_, line);  // consume the header's newline
    fill();
  }

  [[nodiscard]] std::size_t variants() const noexcept { return variants_; }
  [[nodiscard]] std::size_t sampled() const noexcept { return sampled_; }
  [[nodiscard]] std::size_t records_read() const noexcept {
    return records_;
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// The next record, or nullptr once the footer has validated the
  /// complete stream.
  [[nodiscard]] const parsed_record* peek() const noexcept {
    return have_next_ ? &next_ : nullptr;
  }

  void advance() {
    ++records_;
    fill();
  }

 private:
  void fill() {
    have_next_ = false;
    std::string line;
    while (std::getline(in_, line)) {
      if (line.empty()) {
        continue;
      }
      if (line.compare(0, std::char_traits<char>::length(kMagic), kMagic) ==
          0) {
        check_footer(line);
        ensure_nothing_after_footer();
        return;
      }
      next_ = parse_record_line(line, path_);
      have_next_ = true;
      return;
    }
    // EOF without a footer: the file was cut at a line boundary (crash,
    // disk-full after a flush) — refuse to pass it off as complete.
    throw codec_error("spill_reader: missing footer in " + path_ +
                      " — truncated spill? (complete files end with '" +
                      kMagic + " " + kFooterTag + " <record_count>')");
  }

  void check_footer(const std::string& line) {
    std::istringstream fields{line};
    std::string magic;
    std::string tag;
    std::size_t count = 0;
    fields >> magic >> tag >> count;
    if (!fields || tag != kFooterTag) {
      throw codec_error("spill_reader: malformed footer in " + path_ +
                        ": " + line);
    }
    if (count != records_) {
      throw codec_error(
          "spill_reader: footer records " + std::to_string(count) +
          " != " + std::to_string(records_) + " records present in " +
          path_ + " — truncated spill");
    }
  }

  void ensure_nothing_after_footer() {
    std::string line;
    while (std::getline(in_, line)) {
      if (!line.empty()) {
        throw codec_error("spill_reader: data after footer in " + path_);
      }
    }
  }

  std::string path_;
  std::ifstream in_;
  std::size_t variants_ = 0;
  std::size_t sampled_ = 0;
  std::size_t records_ = 0;
  parsed_record next_;
  bool have_next_ = false;
};

/// Resolves a decoded line against the model and plan and streams it.
void emit(const internet::model& model, const probe_plan& plan,
          const parsed_record& rec, observation_sink& sink) {
  if (rec.service_index >= model.records().size()) {
    throw config_error("spill_reader: service index out of range");
  }
  if (rec.variant_index >= plan.variants.size()) {
    throw config_error("spill_reader: variant index out of range");
  }
  sink.on_record(probe_record{
      .service_index = rec.service_index,
      .variant_index = rec.variant_index,
      .record = model.records()[rec.service_index],
      .variant = plan.variants[rec.variant_index],
      .result = rec.result,
  });
}

void check_variant_count(const spill_cursor& cur, const probe_plan& plan) {
  if (cur.variants() != plan.variants.size()) {
    throw config_error("spill_reader: " + cur.path() + " captured under " +
                       std::to_string(cur.variants()) +
                       " variants, plan has " +
                       std::to_string(plan.variants.size()));
  }
}

}  // namespace

spill_sink::spill_sink(std::string path) : path_(std::move(path)) {
  file_ = std::fopen(path_.c_str(), "w");
  if (file_ == nullptr) {
    throw config_error("spill_sink: cannot open " + path_);
  }
}

spill_sink::~spill_sink() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

void spill_sink::on_begin(const probe_plan& plan, std::size_t sampled) {
  if (header_written_) {
    throw config_error("spill_sink: on_begin called twice for " + path_);
  }
  std::fprintf(file_, "%s %s %zu %zu\n", kMagic, kVersion,
               plan.variants.size(), sampled);
  header_written_ = true;
}

void spill_sink::on_record(const probe_record& rec) {
  if (file_ == nullptr) {
    throw config_error("spill_sink: record after on_end");
  }
  if (!header_written_) {
    // A header with made-up counts would silently disable the replay
    // side's plan-shape validation, so a lifecycle-less record stream
    // is an error rather than a degraded spill.
    throw config_error(
        "spill_sink: on_record before on_begin — drive the sink through "
        "the executor (or call on_begin) so the header records the real "
        "variant and sample counts");
  }
  const quic::observation& o = rec.result.obs;
  std::fprintf(
      file_,
      "%" PRIu32 " %" PRIu32 " %d %d %d %d %d %d %zu %zu %zu %zu %zu %zu "
      "%zu %zu %zu %zu %zu %d %zu %zu %" PRIu64 " %" PRIu64 " %" PRIu64
      " %" PRIu64 " %" PRIu64 " %zu %s\n",
      rec.service_index, rec.variant_index,
      static_cast<int>(rec.result.cls), o.response_received ? 1 : 0,
      o.retry_seen ? 1 : 0, o.version_negotiation_seen ? 1 : 0,
      o.handshake_complete ? 1 : 0, o.timed_out ? 1 : 0, o.client_datagrams,
      o.acks_before_complete, o.bytes_sent_first_flight, o.bytes_sent_total,
      o.bytes_received_total, o.bytes_received_first_burst,
      o.tls_bytes_first_burst, o.padding_bytes_first_burst,
      o.tls_bytes_received, o.padding_bytes_received, o.server_datagrams,
      o.compression_used ? 1 : 0, o.certificate_msg_size,
      o.certificate_uncompressed_size, o.start_time, o.complete_time,
      o.first_receive_time, o.last_receive_time, o.first_app_byte_time,
      o.app_bytes_received,
      o.certificate_message.empty()
          ? "-"
          : to_hex(o.certificate_message).c_str());
  ++records_;
}

void spill_sink::on_end() {
  if (file_ == nullptr) {
    return;
  }
  // The footer is the integrity seal: replay refuses files without it
  // (or with a mismatching count), so a spill cut at a line boundary —
  // which parses cleanly record by record — cannot silently replay
  // into wrong aggregates.
  std::fprintf(file_, "%s %s %zu\n", kMagic, kFooterTag, records_);
  const bool write_error = std::ferror(file_) != 0;
  const bool close_error = std::fclose(file_) != 0;
  file_ = nullptr;
  if (write_error || close_error) {
    throw config_error("spill_sink: I/O error writing " + path_);
  }
}

std::size_t spill_reader::replay(const std::string& path,
                                 observation_sink& sink) const {
  spill_cursor cur{path};
  check_variant_count(cur, plan_);
  sink.on_begin(plan_, cur.sampled());
  while (const parsed_record* rec = cur.peek()) {
    emit(model_, plan_, *rec, sink);
    cur.advance();
  }
  sink.on_end();
  return cur.records_read();
}

std::string to_string(spill_state s) {
  switch (s) {
    case spill_state::complete:
      return "complete";
    case spill_state::truncated:
      return "truncated";
    case spill_state::missing:
      return "missing";
  }
  return "unknown";
}

spill_probe_result spill_probe(const std::string& path) {
  spill_probe_result out;
  try {
    spill_cursor cur{path};
    out.variants = cur.variants();
    out.sampled = cur.sampled();
    out.state = spill_state::truncated;  // header parsed, rest pending
    while (cur.peek() != nullptr) {
      // Count the peeked record before advancing: advance() parses
      // ahead and throws at the tear, which would otherwise drop the
      // last cleanly-parsed record from the salvage count.
      out.records = cur.records_read() + 1;
      cur.advance();
    }
    out.state = spill_state::complete;
  } catch (const config_error&) {
    // The cursor throws config_error only for an unopenable file.
    out.state = spill_state::missing;
  } catch (const codec_error&) {
    // Bad magic, mid-line cut, footerless tail, footer mismatch: all
    // present as `truncated` — a crashed writer is indistinguishable
    // from corruption, and both mean "discard and re-run the slice".
    // Set explicitly: the cursor constructor itself throws when the
    // tear falls inside the first record line (or the header).
    out.state = spill_state::truncated;
  }
  return out;
}

std::size_t spill_merge::replay(const std::vector<std::string>& paths,
                                observation_sink& sink) const {
  if (paths.empty()) {
    throw config_error("spill_merge: no spill files to merge");
  }
  try {
    return replay_merge(paths, sink);
  } catch (const codec_error& e) {
    // Augment the parse failure with each shard's integrity verdict so
    // the operator (or the resume logic's logs) can see at a glance
    // which slices survived a crash and which need re-running.
    std::string msg = e.what();
    msg += "; shard integrity:";
    for (const std::string& path : paths) {
      msg += " " + path + "=" + to_string(spill_probe(path).state);
    }
    throw codec_error(msg);
  }
}

std::size_t spill_merge::replay_merge(const std::vector<std::string>& paths,
                                      observation_sink& sink) const {
  std::vector<std::unique_ptr<spill_cursor>> cursors;
  cursors.reserve(paths.size());
  std::size_t total_sampled = 0;
  for (const std::string& path : paths) {
    cursors.push_back(std::make_unique<spill_cursor>(path));
    check_variant_count(*cursors.back(), plan_);
    total_sampled += cursors.back()->sampled();
  }

  sink.on_begin(plan_, total_sampled);
  // Plan order over the sharded sample is (variant, shard, position):
  // each file already stores its slice variant-major, so the merge
  // walks the variant axis once and drains every cursor's run of that
  // variant in shard order. Each file is read exactly once.
  std::size_t total = 0;
#if defined(CERTQUIC_ENABLE_ASSERTS)
  // Merge invariant: the emitted stream's (variant, shard) key must
  // never move backwards — that is the plan order the downstream
  // aggregate's bit-identity rests on.
  std::uint64_t last_key = 0;
  bool emitted_any = false;
#endif
  for (std::uint32_t v = 0; v < plan_.variants.size(); ++v) {
    for (std::size_t shard = 0; shard < cursors.size(); ++shard) {
      auto& cur = cursors[shard];
      while (cur->peek() != nullptr && cur->peek()->variant_index == v) {
#if defined(CERTQUIC_ENABLE_ASSERTS)
        const std::uint64_t key =
            (static_cast<std::uint64_t>(v) << 32) | shard;
        CERTQUIC_ASSERT(!emitted_any || key >= last_key,
                        "spill_merge: merged stream left (variant, shard) "
                        "plan order");
        last_key = key;
        emitted_any = true;
#endif
        emit(model_, plan_, *cur->peek(), sink);
        cur->advance();
        ++total;
      }
    }
  }
  for (const auto& cur : cursors) {
    if (cur->peek() != nullptr) {
      throw codec_error("spill_merge: variant runs out of plan order in " +
                        cur->path());
    }
  }
  sink.on_end();
  return total;
}

}  // namespace certquic::engine
