// Out-of-core sinks: spill_sink streams probe_records to disk as
// line-delimited records instead of aggregating in memory, spill_reader
// replays a spilled file back through any sink against the same model
// and plan, and spill_merge re-assembles a sharded spill set into one
// plan-ordered stream. Together they decouple probing from aggregation:
// a million-domain sweep can run shard by shard, spill each shard, and
// be re-aggregated by any number of sinks without re-simulating a
// single handshake — and without ever holding more than one record in
// memory.
//
// Format (version 3, one record per line, space-separated):
//   certquic-spill v3 <variant_count> <sampled_services>
//   <service_index> <variant_index> <class> <26 observation fields>
//   <hex certificate message | "-">
//   ...
//   certquic-spill end <record_count>
// (v3 appended the handshake-timeline fields first_app_byte_time and
// app_bytes_received after last_receive_time; probe_result::ttfb is
// derived from them on replay rather than stored.)
// The footer is written by on_end() and is what makes a spill file
// *validatable*: a file truncated exactly at a line boundary (crash or
// disk-full after a flush) parses cleanly line by line but fails the
// footer check, so replay throws instead of silently aggregating fewer
// records. Mid-line truncation is caught by the field parser. Every
// field of scan::probe_result round-trips, so replayed aggregates are
// bit-identical to direct ones (enforced by tests/backend_test and
// tests/outofcore_test).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "engine/sink.hpp"

namespace certquic::engine {

/// Streams records to a file. The sink requires the full lifecycle:
/// on_begin writes the header with the *real* variant and sample
/// counts (a header with made-up counts would disable the replay-side
/// plan-shape validation), on_record appends one line per probe, and
/// on_end writes the record-count footer, flushes and closes. Driving
/// on_record without on_begin throws.
class spill_sink final : public observation_sink {
 public:
  /// Opens `path` for writing; throws config_error when that fails.
  explicit spill_sink(std::string path);
  ~spill_sink() override;

  spill_sink(const spill_sink&) = delete;
  spill_sink& operator=(const spill_sink&) = delete;

  void on_begin(const probe_plan& plan, std::size_t sampled) override;
  void on_record(const probe_record& rec) override;
  void on_end() override;

  [[nodiscard]] std::size_t records_written() const noexcept {
    return records_;
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  bool header_written_ = false;
  std::size_t records_ = 0;
};

/// Replays spilled files. Records are reconstructed against the model
/// and plan the spill was captured under: service/variant indices are
/// resolved back to references, the probe result is decoded verbatim.
class spill_reader {
 public:
  spill_reader(const internet::model& m, const probe_plan& plan)
      : model_(m), plan_(plan) {}

  /// Streams every spilled record through `sink` (with the full
  /// on_begin/on_record/on_end lifecycle) and returns the record count.
  /// Throws codec_error on a malformed, truncated (missing or
  /// mismatching footer) or version-mismatched file and config_error
  /// when the file's variant count or an index does not fit the model
  /// or plan.
  std::size_t replay(const std::string& path, observation_sink& sink) const;

 private:
  const internet::model& model_;
  const probe_plan& plan_;
};

/// Integrity verdict on one spill file, without needing the model or
/// plan it was captured under.
enum class spill_state : std::uint8_t {
  complete,   // header, records and footer all validate
  truncated,  // opens but fails integrity (cut mid-line, cut at a line
              // boundary before the footer, or otherwise malformed —
              // a crashed writer is indistinguishable from corruption)
  missing,    // cannot be opened
};

[[nodiscard]] std::string to_string(spill_state s);

/// What spill_probe learned about a file.
struct spill_probe_result {
  spill_state state = spill_state::missing;
  /// Records parsed before the verdict; the full count for complete
  /// files, the salvage horizon for truncated ones.
  std::size_t records = 0;
  std::size_t variants = 0;  // header variant count (0 when missing)
  std::size_t sampled = 0;   // header sample count (0 when missing)

  [[nodiscard]] bool complete() const noexcept {
    return state == spill_state::complete;
  }
};

/// Classifies a spill file on disk: `complete` iff every record parses
/// and the record-count footer validates, `truncated` for anything
/// that opens but fails those checks, `missing` when the file cannot
/// be opened. This is the public face of the footer integrity check —
/// resume logic (the longitudinal service's shard checkpoints) and
/// spill_merge's error reporting both use it instead of probing via
/// catch-codec_error.
[[nodiscard]] spill_probe_result spill_probe(const std::string& path);

/// Merges per-shard spill files of one plan back into a single
/// plan-ordered stream. Each shard file holds a contiguous slice of the
/// plan's sample, spilled in plan order (variant-major over the slice);
/// the merge is a k-way replay keyed on (variant, shard): all shards'
/// records under variants[0] in shard order, then variants[1], ... —
/// exactly the order one in-memory run over the concatenated sample
/// would produce. Every file is streamed exactly once; peak memory is
/// one buffered record per shard.
class spill_merge {
 public:
  spill_merge(const internet::model& m, const probe_plan& plan)
      : model_(m), plan_(plan) {}

  /// Streams the merged record stream through `sink` (one
  /// on_begin/on_end pair; on_begin's sample size is the sum of the
  /// shard headers) and returns the total record count. Shard files
  /// are merged in the order given, which must be the shard order of
  /// the original partition — the merge trusts that order and each
  /// file's within-variant record order (it cannot know the sample,
  /// so only *cross-variant* disorder inside a file is detectable and
  /// throws codec_error; the study-level stream digest is what
  /// catches everything else). Also throws codec_error when any file
  /// is malformed or truncated — with every shard's spill_probe
  /// verdict appended to the message — and config_error on an empty
  /// file list or a plan-shape mismatch.
  std::size_t replay(const std::vector<std::string>& paths,
                     observation_sink& sink) const;

 private:
  std::size_t replay_merge(const std::vector<std::string>& paths,
                           observation_sink& sink) const;

  const internet::model& model_;
  const probe_plan& plan_;
};

}  // namespace certquic::engine
