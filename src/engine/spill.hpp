// Out-of-core sinks: spill_sink streams probe_records to disk as
// line-delimited records instead of aggregating in memory, and
// spill_reader replays a spilled file back through any sink against the
// same model and plan. Together they decouple probing from aggregation:
// a million-domain sweep can run once, spill, and be re-aggregated by
// any number of sinks without re-simulating a single handshake.
//
// Format (version 1, one record per line, space-separated):
//   certquic-spill v1 <variant_count> <sampled_services>
//   <service_index> <variant_index> <class> <24 observation fields>
//   <hex certificate message | "-">
// Every field of scan::probe_result round-trips, so replayed aggregates
// are bit-identical to direct ones (enforced by tests/backend_test).
#pragma once

#include <cstdio>
#include <string>

#include "engine/sink.hpp"

namespace certquic::engine {

/// Streams records to a file. The header is written on on_begin (or
/// lazily before the first record when the sink is driven without a
/// lifecycle); on_end flushes and closes.
class spill_sink final : public observation_sink {
 public:
  /// Opens `path` for writing; throws config_error when that fails.
  explicit spill_sink(std::string path);
  ~spill_sink() override;

  spill_sink(const spill_sink&) = delete;
  spill_sink& operator=(const spill_sink&) = delete;

  void on_begin(const probe_plan& plan, std::size_t sampled) override;
  void on_record(const probe_record& rec) override;
  void on_end() override;

  [[nodiscard]] std::size_t records_written() const noexcept {
    return records_;
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  void write_header(std::size_t variants, std::size_t sampled);

  std::string path_;
  std::FILE* file_ = nullptr;
  bool header_written_ = false;
  std::size_t records_ = 0;
};

/// Replays spilled files. Records are reconstructed against the model
/// and plan the spill was captured under: service/variant indices are
/// resolved back to references, the probe result is decoded verbatim.
class spill_reader {
 public:
  spill_reader(const internet::model& m, const probe_plan& plan)
      : model_(m), plan_(plan) {}

  /// Streams every spilled record through `sink` (with the full
  /// on_begin/on_record/on_end lifecycle) and returns the record count.
  /// Throws codec_error on a malformed or version-mismatched file and
  /// config_error when an index does not fit the model or plan.
  std::size_t replay(const std::string& path, observation_sink& sink) const;

 private:
  const internet::model& model_;
  const probe_plan& plan_;
};

}  // namespace certquic::engine
