#include "engine/backend.hpp"

#include <memory>
#include <unordered_set>

#include "net/simulator.hpp"
#include "quic/client.hpp"
#include "quic/server.hpp"
#include "util/rng.hpp"

namespace certquic::engine {

std::uint64_t shard_seed(std::uint64_t base_seed, std::size_t shard_index) {
  std::uint64_t state = base_seed ^ (0x9e37'79b9'7f4a'7c15ULL +
                                     static_cast<std::uint64_t>(shard_index));
  const std::uint64_t seed = splitmix64(state);
  return seed == 0 ? 1 : seed;
}

// ---------------------------------------------------------------------------
// reach_backend

reach_backend::reach_backend(const internet::model& m, const probe_plan& plan,
                             const std::vector<std::uint32_t>& sampled)
    : model_(m),
      plan_(plan),
      sampled_(sampled),
      cache_(plan.variants.size() > 1
                 ? std::optional<internet::chain_cache>{std::in_place, m}
                 : std::nullopt),
      prober_(m, cache_ ? &*cache_ : nullptr) {}

std::vector<unit_outcome> reach_backend::run_shard(
    const shard_context& ctx) const {
  const std::size_t services = sampled_.size();
  std::vector<unit_outcome> out;
  out.reserve(ctx.hi - ctx.lo);
  for (std::size_t k = ctx.lo; k < ctx.hi; ++k) {
    const auto& variant = plan_.variants[k / services];
    const auto& rec = model_.records()[sampled_[k % services]];
    scan::probe_options popt = variant.to_probe_options();
    popt.seed_override = probe_seed(plan_.base_seed, rec.domain, variant.salt);
    unit_outcome outcome;
    outcome.probe = prober_.probe(rec, popt);
    out.push_back(std::move(outcome));
  }
  return out;
}

// ---------------------------------------------------------------------------
// backscatter_backend

std::vector<unit_outcome> backscatter_backend::run_shard(
    const shard_context& ctx) const {
  // One world per shard: a simulator and a telescope shared by the
  // shard's slice of sessions. Everything seeded below is a pure
  // function of the plan and the shard index, so the world's evolution
  // cannot depend on which thread runs it.
  net::simulator sim{ctx.seed ^ 0x7e1e'5c0eULL};
  scan::telescope scope{sim, plan_.telescope_base};
  for (const auto& [prefix, provider] : plan_.provider_prefixes) {
    scope.map_prefix(prefix, provider);
  }

  std::vector<std::unique_ptr<quic::server>> servers;
  std::vector<std::unique_ptr<quic::client>> attackers;
  std::vector<net::endpoint_id> sensors;
  std::unordered_set<net::endpoint_id> spawned;
  attackers.reserve(ctx.hi - ctx.lo);
  sensors.reserve(ctx.hi - ctx.lo);

  for (std::size_t i = ctx.lo; i < ctx.hi; ++i) {
    const spoofed_session& session = plan_.sessions[i];
    // Fleet endpoints may repeat across sessions (slot reuse); the
    // first session touching an endpoint in this world spawns its
    // server, later ones attack the existing instance.
    if (spawned.insert(session.server).second) {
      servers.push_back(std::make_unique<quic::server>(
          sim, session.server, session.chain, session.behavior,
          plan_.dictionary, session.seed ^ 0x5e4));
    }
    quic::client_config config;
    config.initial_size = session.initial_size;
    config.send_acks = false;  // spoofed: replies route to the sensor
    config.sni = session.sni;
    config.timeout = session.timeout;
    config.spoof_source = scope.allocate_sensor();
    sensors.push_back(*config.spoof_source);
    const net::endpoint_id attacker_ep{
        net::ipv4::of(10, 66, 0, 1),
        static_cast<std::uint16_t>(10000 + (i - ctx.lo))};
    attackers.push_back(std::make_unique<quic::client>(
        sim, attacker_ep, session.server, std::move(config),
        session.seed ^ 0xC11));
    attackers.back()->start();
  }
  sim.run();

  std::vector<unit_outcome> out;
  out.reserve(ctx.hi - ctx.lo);
  for (std::size_t j = 0; j < attackers.size(); ++j) {
    unit_outcome outcome;
    outcome.probe.obs = attackers[j]->result();
    outcome.probe.cls = scan::classify(outcome.probe.obs);
    outcome.backscatter = scope.observed_at(sensors[j]);
    out.push_back(std::move(outcome));
  }
  return out;
}

}  // namespace certquic::engine
