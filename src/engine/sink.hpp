// Streaming consumer interface for probe results — the engine's second
// load-bearing API. The executor delivers records to the sink strictly
// in plan order (variant-major, then the sampled service order) on the
// caller's thread, so aggregators need no locking and parallel runs
// aggregate bit-identically to serial ones.
//
// Sinks have a lifecycle: on_begin(plan, sampled_services) fires once
// before the first record (also on empty runs) so aggregators can
// pre-reserve, then one on_record per probe, then on_end() exactly
// once. Sinks compose: tee_sink fans a stream out to several
// aggregators, filter_sink gates it on a predicate, and spill_sink
// (engine/spill.hpp) streams it to disk for out-of-core sweeps.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/probe_plan.hpp"
#include "internet/model.hpp"
#include "scan/reach.hpp"
#include "util/assert.hpp"

namespace certquic::engine {

/// Debug-only lifecycle state machine: embed one in a sink and call
/// begin()/record()/end() from on_begin/on_record/on_end to assert the
/// contract order (on_begin → on_record* → on_end) in
/// CERTQUIC_ENABLE_ASSERTS builds. A fresh on_begin after on_end is
/// allowed — that is a legal reuse for a new run. Compiles to an empty
/// class with no-op members in release builds, so embedding it is free.
///
/// spill_sink deliberately does NOT use this guard: a lifecycle
/// violation there corrupts an on-disk artifact, so it throws
/// config_error in every build mode instead (see engine/spill.cpp).
class sink_lifecycle {
 public:
  void begin() noexcept {
#if defined(CERTQUIC_ENABLE_ASSERTS)
    CERTQUIC_ASSERT(!begun_ || ended_,
                    "sink lifecycle: on_begin called twice in one run");
    begun_ = true;
    ended_ = false;
#endif
  }
  void record() noexcept {
#if defined(CERTQUIC_ENABLE_ASSERTS)
    CERTQUIC_ASSERT(begun_, "sink lifecycle: on_record before on_begin");
    CERTQUIC_ASSERT(!ended_, "sink lifecycle: on_record after on_end");
#endif
  }
  void end() noexcept {
#if defined(CERTQUIC_ENABLE_ASSERTS)
    CERTQUIC_ASSERT(begun_, "sink lifecycle: on_end before on_begin");
    CERTQUIC_ASSERT(!ended_, "sink lifecycle: on_end called twice");
    ended_ = true;
#endif
  }

#if defined(CERTQUIC_ENABLE_ASSERTS)
 private:
  bool begun_ = false;
  bool ended_ = false;
#endif
};

/// One delivered probe. References stay valid only for the duration of
/// the on_record() call (the record and variant live in the model and
/// plan respectively; the result is owned by the executor's buffer).
struct probe_record {
  std::uint32_t service_index = 0;  // index into model.records()
  std::uint32_t variant_index = 0;  // index into plan.variants
  const internet::service_record& record;
  const probe_variant& variant;
  const scan::probe_result& result;

  /// The probe's handshake timeline (first Initial → first application
  /// byte); 0 when the variant did not measure TTFB or the exchange
  /// never completed.
  [[nodiscard]] net::duration ttfb() const noexcept { return result.ttfb; }
};

/// Aggregator interface: every study is one of these.
///
/// Lifecycle invariants (what sink implementations may rely on):
///  1. on_begin fires exactly once per run, before any record — also
///     on empty runs — with the plan and the resolved sample size, so
///     aggregators can pre-reserve for sampled * variants records.
///  2. on_record fires exactly once per probe, strictly in plan order
///     (variant-major: all services under variants[0], then
///     variants[1], ...), always on the executor's calling thread.
///     Sinks therefore never need locking, and parallel runs aggregate
///     bit-identically to serial ones.
///  3. on_end fires exactly once, after the last record, also on empty
///     runs. A run that throws (from a worker or the sink itself)
///     aborts without on_end — a sink that observed on_end has seen
///     the complete stream.
///  4. The references inside a probe_record are borrowed: record and
///     variant point into the model and plan, the result into the
///     executor's buffer. None survive the on_record call; copy what
///     you keep.
/// Composing sinks preserve all four: tee_sink forwards each call to
/// every child in construction order, filter_sink gates only
/// on_record, and spill_sink writes the stream to disk such that
/// spill_reader replays it through any sink with the same guarantees.
class observation_sink {
 public:
  virtual ~observation_sink() = default;

  /// Called once before the first record. `sampled_services` is the
  /// resolved sample size; the run delivers sampled_services *
  /// plan.variants.size() records, which is what reserving aggregators
  /// should size for.
  virtual void on_begin(const probe_plan& plan,
                        std::size_t sampled_services) {
    (void)plan;
    (void)sampled_services;
  }

  /// Called once per probe, in plan order, on the executor's caller
  /// thread.
  virtual void on_record(const probe_record& rec) = 0;

  /// Called once after the last record, also when the run was empty.
  virtual void on_end() {}
};

/// Adapter turning a callable into a sink, for one-off consumers.
template <typename Fn>
class callback_sink final : public observation_sink {
 public:
  explicit callback_sink(Fn fn) : fn_(std::move(fn)) {}
  void on_record(const probe_record& rec) override { fn_(rec); }

 private:
  Fn fn_;
};

template <typename Fn>
callback_sink(Fn) -> callback_sink<Fn>;

/// Fans one stream out to several sinks; lifecycle calls and records
/// reach the children in construction order.
class tee_sink final : public observation_sink {
 public:
  explicit tee_sink(std::vector<observation_sink*> sinks)
      : sinks_(std::move(sinks)) {}

  void on_begin(const probe_plan& plan, std::size_t sampled) override {
    lifecycle_.begin();
    for (observation_sink* sink : sinks_) {
      sink->on_begin(plan, sampled);
    }
  }
  void on_record(const probe_record& rec) override {
    lifecycle_.record();
    for (observation_sink* sink : sinks_) {
      sink->on_record(rec);
    }
  }
  void on_end() override {
    lifecycle_.end();
    for (observation_sink* sink : sinks_) {
      sink->on_end();
    }
  }

 private:
  std::vector<observation_sink*> sinks_;
  sink_lifecycle lifecycle_;
};

/// Forwards only records matching a predicate; lifecycle calls always
/// pass through (the downstream sink still sees exactly one
/// on_begin/on_end pair).
template <typename Pred>
class filter_sink final : public observation_sink {
 public:
  filter_sink(observation_sink& next, Pred pred)
      : next_(next), pred_(std::move(pred)) {}

  void on_begin(const probe_plan& plan, std::size_t sampled) override {
    lifecycle_.begin();
    next_.on_begin(plan, sampled);
  }
  void on_record(const probe_record& rec) override {
    lifecycle_.record();
    if (pred_(rec)) {
      next_.on_record(rec);
    }
  }
  void on_end() override {
    lifecycle_.end();
    next_.on_end();
  }

 private:
  observation_sink& next_;
  Pred pred_;
  sink_lifecycle lifecycle_;
};

template <typename Pred>
filter_sink(observation_sink&, Pred) -> filter_sink<Pred>;

}  // namespace certquic::engine
