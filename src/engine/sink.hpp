// Streaming consumer interface for probe results. The executor delivers
// records to the sink strictly in plan order (variant-major, then the
// sampled service order) on the caller's thread, so aggregators need no
// locking and parallel runs aggregate bit-identically to serial ones.
#pragma once

#include <cstdint>

#include "engine/probe_plan.hpp"
#include "internet/model.hpp"
#include "scan/reach.hpp"

namespace certquic::engine {

/// One delivered probe. References stay valid only for the duration of
/// the on_record() call (the record and variant live in the model and
/// plan respectively; the result is owned by the executor's buffer).
struct probe_record {
  std::uint32_t service_index = 0;  // index into model.records()
  std::uint32_t variant_index = 0;  // index into plan.variants
  const internet::service_record& record;
  const probe_variant& variant;
  const scan::probe_result& result;
};

/// Aggregator interface: every study is one of these.
class observation_sink {
 public:
  virtual ~observation_sink() = default;
  /// Called once per probe, in plan order, on the executor's caller
  /// thread.
  virtual void on_record(const probe_record& rec) = 0;
};

/// Adapter turning a callable into a sink, for one-off consumers.
template <typename Fn>
class callback_sink final : public observation_sink {
 public:
  explicit callback_sink(Fn fn) : fn_(std::move(fn)) {}
  void on_record(const probe_record& rec) override { fn_(rec); }

 private:
  Fn fn_;
};

template <typename Fn>
callback_sink(Fn) -> callback_sink<Fn>;

}  // namespace certquic::engine
