#include "engine/probe_plan.hpp"

#include "util/rng.hpp"

namespace certquic::engine {
namespace {

bool matches(const internet::service_record& rec, service_filter f) {
  switch (f) {
    case service_filter::quic:
      return rec.serves_quic();
    case service_filter::tls:
      return rec.serves_tls();
    case service_filter::all:
      return true;
  }
  return false;
}

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 0xcbf2'9ce4'8422'2325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x0000'0100'0000'01b3ULL;
  }
  return h;
}

}  // namespace

std::vector<std::uint32_t> sample_indices(const internet::model& m,
                                          service_filter filter,
                                          std::size_t cap) {
  const auto& records = m.records();
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < records.size(); ++i) {
    if (matches(records[i], filter)) {
      out.push_back(i);
    }
  }
  const std::size_t total = out.size();
  if (cap == 0 || total <= cap) {
    return out;
  }
  // Single-pass striding: compact every stride-th match in place.
  const std::size_t stride = (total + cap - 1) / cap;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < total; i += stride) {
    out[kept++] = out[i];
  }
  out.resize(kept);
  return out;
}

scan::probe_options probe_variant::to_probe_options() const {
  scan::probe_options opt;
  opt.initial_size = initial_size;
  opt.offer_compression = offer_compression;
  opt.capture_certificate = capture_certificate;
  opt.chain_profile = chain_profile;
  opt.send_acks = ack != quic::ack_policy::none;
  opt.ack_delay =
      ack == quic::ack_policy::instant ? 0 : net::milliseconds(1);
  opt.timeout = timeout;
  opt.network = network;
  opt.measure_ttfb = measure_ttfb;
  return opt;
}

probe_plan probe_plan::single(probe_variant v, std::size_t max_services,
                              service_filter f) {
  probe_plan plan;
  plan.filter = f;
  plan.max_services = max_services;
  plan.variants.push_back(std::move(v));
  return plan;
}

probe_plan& probe_plan::sweep_initial_sizes(
    const std::vector<std::size_t>& sizes) {
  for (const std::size_t size : sizes) {
    probe_variant v;
    v.initial_size = size;
    variants.push_back(std::move(v));
  }
  return *this;
}

probe_plan& probe_plan::sweep_ack_policies(std::size_t initial_size) {
  for (const quic::ack_policy policy :
       {quic::ack_policy::delayed, quic::ack_policy::instant,
        quic::ack_policy::none}) {
    probe_variant v;
    v.initial_size = initial_size;
    v.ack = policy;
    variants.push_back(std::move(v));
  }
  return *this;
}

probe_plan& probe_plan::sweep_chain_profiles(std::size_t initial_size) {
  for (const x509::pq_profile profile : x509::all_pq_profiles()) {
    probe_variant v;
    v.initial_size = initial_size;
    v.chain_profile = profile;
    variants.push_back(std::move(v));
  }
  return *this;
}

std::uint64_t probe_seed(std::uint64_t base_seed, const std::string& domain,
                         std::uint64_t salt) {
  if (base_seed == 0 && salt == 0) {
    return 0;  // historical record-derived seeding
  }
  std::uint64_t state = base_seed ^ fnv1a64(domain);
  std::uint64_t seed = splitmix64(state);
  state = seed ^ salt;
  seed = splitmix64(state);
  return seed == 0 ? 1 : seed;
}

}  // namespace certquic::engine
