#include "internet/model.hpp"

#include <algorithm>
#include <array>
#include <span>
#include <thread>

#include "util/errors.hpp"

namespace certquic::internet {
namespace {

// Fig. 13: handshake-class percentages per rank group at Initial=1362,
// rows ordered most-popular group first: {Amplification, Multi-RTT,
// RETRY, 1-RTT}.
constexpr double kClassMatrix[10][4] = {
    {64.18, 32.76, 0.04, 3.02},  // [1, 100001)
    {64.46, 34.53, 0.07, 0.95},
    {62.86, 36.34, 0.04, 0.76},
    {64.31, 35.10, 0.08, 0.50},
    {63.30, 36.39, 0.03, 0.29},
    {61.43, 38.33, 0.03, 0.21},
    {56.55, 43.15, 0.06, 0.23},
    {57.50, 42.33, 0.01, 0.16},
    {56.80, 42.96, 0.06, 0.18},
    {57.37, 42.40, 0.06, 0.18},  // [900001, 1000001)
};

// Multi-RTT chain mix: Fig. 7a rows that exceed the limit at common
// Initial sizes (weights are the published shares; "other" covers the
// long tail outside the top-10).
struct chain_weight {
  const char* id;
  double weight;
  double rsa_leaf_fraction;
};
constexpr chain_weight kMultiRttChains[] = {
    {"le-r3-x1cross", 16.80, 1.0},
    {"le-r3-x1cross-ec", 10.31, 0.0},
    {"le-e1-x2", 1.55, 0.0},
    {"gts-1c3", 1.53, 0.1},
    {"le-r3-x1self", 1.27, 0.4},
    {"gts-1d4", 1.03, 0.0},
    {"sectigo", 0.92, 1.0},
    {"cpanel", 0.83, 1.0},
    {"globalsign", 0.37, 1.0},
    {"other", 2.20, 0.0},
};

// Non-Cloudflare amplifiers (4% of the amplifying class): legacy
// implementations fronting ordinary — mostly large — chains.
constexpr chain_weight kLegacyAmplifierChains[] = {
    {"le-r3-x1cross", 0.40, 1.0},
    {"sectigo", 0.25, 1.0},
    {"cpanel", 0.20, 1.0},
    {"gts-1c3", 0.15, 0.2},
};

// 1-RTT chain mix: small ECDSA chains behind compliant coalescing
// servers. The gts-1c3 entry is deliberately borderline: it only fits
// the budget for large client Initials, feeding the 1-RTT uptick the
// paper observes for bigger Initials.
constexpr chain_weight kOneRttChains[] = {
    {"le-e1-x2", 0.45, 0.0},
    {"cloudflare", 0.30, 0.0},
    {"le-r3", 0.10, 0.0},
    {"gts-1c3", 0.15, 0.0},
};

// Fig. 7b chain mix for HTTPS-only services (shares sum to 71.91; the
// remainder flows through the "other" generator).
constexpr chain_weight kHttpsChains[] = {
    {"le-r3-x1cross", 41.42, 0.9},
    {"sectigo", 6.33, 1.0},
    {"cpanel", 5.03, 1.0},
    {"digicert", 4.55, 0.95},
    {"amazon", 4.24, 1.0},
    {"comodo", 4.03, 1.0},
    {"le-r3", 1.76, 0.6},
    {"godaddy", 1.60, 1.0},
    {"comodo-with-root", 1.55, 1.0},
    {"cloudflare", 1.40, 0.0},
    {"other", 28.09, 0.0},
};

constexpr const char* kTlds[] = {"com", "com", "com", "com", "net",
                                 "org", "io",  "de",  "co",  "app"};

std::string synth_domain(std::uint32_t rank, rng& r) {
  // Rank-tagged names keep the population readable in reports while the
  // random label models realistic name-length variance.
  return r.ascii_label(4, 14) + std::to_string(rank % 997) + "." +
         kTlds[r.uniform(0, std::size(kTlds) - 1)];
}

/// Weighted chain pick without per-record heap churn: the weights land
/// in a stack array sized by the (constexpr) table. Deliberately NOT a
/// function-local static — same-sized tables share one template
/// instantiation, so a static would be initialized from whichever
/// table is consulted first and poison the others (and its magic-
/// static init would race under parallel synthesis). Draw-stream-
/// identical to the historical vector-building version —
/// weighted_index consumes exactly one uniform either way.
template <std::size_t N>
const chain_weight& pick_chain(rng& r, const chain_weight (&table)[N]) {
  std::array<double, N> weights;
  for (std::size_t i = 0; i < N; ++i) {
    weights[i] = table[i].weight;
  }
  return table[r.weighted_index(weights)];
}

std::size_t resolved_synth_threads(std::size_t requested,
                                   std::size_t domains) {
  if (requested > 0) {
    return requested;  // an explicit request is always honoured
  }
  const unsigned hw = std::thread::hardware_concurrency();
  // Auto mode only: don't spin up a pool for populations too small to
  // amortize the thread launch.
  return std::min<std::size_t>(hw == 0 ? 1 : hw,
                               std::max<std::size_t>(1, domains / 4096));
}

}  // namespace

model model::generate(const config& cfg) {
  model m;
  m.seed_ = cfg.seed;
  m.eco_ = ca::ecosystem::make(cfg.seed ^ 0xCA);
  m.resolver_ = dns::resolver{cfg.seed ^ 0xD25};
  m.dictionary_ = m.eco_.compression_dictionary();

  rng master{cfg.seed};
  const std::size_t group_size =
      std::max<std::size_t>(1, cfg.domains / kRankGroups);

  // Per-group deployment rates: QUIC ~21% (sigma ~3pp across groups),
  // HTTPS-only ~59% (Fig. 12).
  std::array<double, kRankGroups> quic_rate{};
  std::array<double, kRankGroups> https_rate{};
  for (std::size_t g = 0; g < kRankGroups; ++g) {
    quic_rate[g] = std::clamp(master.normal(0.21, 0.028), 0.14, 0.28);
    https_rate[g] = std::clamp(master.normal(0.59, 0.02), 0.52, 0.66);
  }

  // The master stream's only remaining job is handing every record its
  // seed; everything below is a pure function of (rank, seed) and the
  // rates above. That makes synthesis embarrassingly parallel *and*
  // bit-identical at any thread count — the million-record census
  // population builds in the time of the seed walk plus N/threads
  // record syntheses, with no quadratic pass and no chain
  // materialization (chains stay on-demand via chain_of).
  std::vector<std::uint64_t> seeds(cfg.domains);
  for (auto& seed : seeds) {
    seed = master.next();
  }
  m.records_.resize(cfg.domains);

  const double a_rate = m.resolver_.rates().a_record;
  const auto synth_record = [&](std::uint32_t index) {
    const std::uint32_t rank = index + 1;
    service_record& rec = m.records_[index];
    rec.rank = rank;
    rec.seed = seeds[index];
    rng r{rec.seed};
    rec.domain = synth_domain(rank, r);

    const dns::resolution res = m.resolver_.resolve(rec.seed);
    rec.dns_result = res.result;
    if (res.result != dns::outcome::a_record) {
      rec.svc = service_class::unresolved;
      return;
    }
    rec.address = res.address;

    const std::size_t g =
        std::min<std::size_t>((rank - 1) / group_size, kRankGroups - 1);
    // Deployment classes are fractions of *all* domains in a group;
    // condition on the A-record funnel stage.
    const double p_quic = quic_rate[g] / a_rate;
    const double p_https_only = https_rate[g] / a_rate;
    const double dice = r.uniform01();
    if (dice < p_quic) {
      rec.svc = service_class::quic;
    } else if (dice < p_quic + p_https_only) {
      rec.svc = service_class::https_only;
    } else {
      rec.svc = service_class::no_tls;
      return;
    }

    if (rec.svc == service_class::quic) {
      // Sample the intended handshake class from the Fig. 13 row, then
      // draw a (chain, behaviour) pair that produces it at common
      // Initial sizes. The actual class is always *measured* by the
      // scanner — borderline chains flip with the Initial size, which
      // is exactly the interdependence §4.1 describes.
      const double* row = kClassMatrix[g];
      const auto cls = r.weighted_index(std::span<const double>{row, 4});
      switch (cls) {
        case 0:  // Amplification
          if (r.chance(0.96)) {
            rec.chain_profile = "cloudflare";
            rec.behavior = behavior_kind::cloudflare;
          } else {
            const auto& chain = pick_chain(r, kLegacyAmplifierChains);
            rec.chain_profile = chain.id;
            rec.force_rsa_leaf = r.chance(chain.rsa_leaf_fraction);
            rec.behavior = behavior_kind::legacy_amplifier;
            if (r.chance(0.15)) {
              // A few legacy amplifiers front SAN-heavy shared-hosting
              // leaves, producing the 4.5-5.5x tail of Fig. 4.
              rec.cruise_sans =
                  static_cast<std::uint16_t>(40 + r.uniform(0, 160));
            }
          }
          break;
        case 1: {  // Multi-RTT
          const auto& chain = pick_chain(r, kMultiRttChains);
          rec.chain_profile = chain.id;
          rec.force_rsa_leaf = r.chance(chain.rsa_leaf_fraction);
          // Lean servers (no ACK datagram) on small chains sit right at
          // the budget boundary: they flip between Multi-RTT and 1-RTT
          // with the client Initial size (the ±1% drift of Fig. 3) and
          // are the services a §5 Initial-size cache can rescue.
          const bool small_chain = rec.chain_profile == "le-e1-x2";
          rec.behavior = r.chance(small_chain ? 0.6 : 0.04)
                             ? behavior_kind::standard_lean
                             : behavior_kind::standard_no_coalesce;
          if (r.chance(0.012)) {
            // Cruise-liner leaves (Appendix E) live in shared-hosting
            // multi-RTT chains.
            rec.cruise_sans = static_cast<std::uint16_t>(
                r.pareto(8.0, 220.0, 1.1));
          }
          break;
        }
        case 2:  // RETRY
          rec.chain_profile = r.chance(0.5) ? "cloudflare" : "le-r3";
          rec.behavior = behavior_kind::retry_always;
          break;
        default: {  // 1-RTT
          const auto& chain = pick_chain(r, kOneRttChains);
          rec.chain_profile = chain.id;
          rec.behavior = behavior_kind::compliant_coalesce;
          break;
        }
      }
      // Table 1: 96% of QUIC services accept brotli; 0.05% accept all
      // three algorithms.
      rec.supports_brotli = r.chance(0.96);
      rec.supports_all_algorithms = rec.supports_brotli && r.chance(0.0005);
      // §3.2: certificates differ between HTTPS and QUIC for 3.3%.
      rec.rotated_cert = r.chance(0.033);

      // §4.1 load balancers: encapsulation overhead by popularity.
      const double p_lb = rank <= group_size / 100     ? 0.25
                          : rank <= group_size / 10 * 1 ? 0.12
                                                        : 0.0108;
      if (r.chance(p_lb)) {
        static constexpr std::uint8_t kOverheads[] = {8, 16, 20, 28};
        rec.lb_overhead = kOverheads[r.uniform(0, 3)];
      }
    } else {
      const auto& chain = pick_chain(r, kHttpsChains);
      rec.chain_profile = chain.id;
      rec.force_rsa_leaf = r.chance(chain.rsa_leaf_fraction);
      if (r.chance(0.015)) {
        rec.cruise_sans =
            static_cast<std::uint16_t>(r.pareto(8.0, 320.0, 1.05));
      }
    }

    // Redirect topology for the HTTPS collection pipeline: ~15% of TLS
    // sites redirect to another name (www-canonicalization, vanity
    // domains).
    if (rec.serves_tls() && r.chance(0.15) && rank > 1) {
      rec.redirect_to = static_cast<std::int32_t>(r.uniform(0, rank - 2));
    }
  };

  const std::size_t threads =
      resolved_synth_threads(cfg.synth_threads, cfg.domains);
  if (threads <= 1) {
    for (std::uint32_t i = 0; i < cfg.domains; ++i) {
      synth_record(i);
    }
  } else {
    // Contiguous rank ranges per worker: records are written in place,
    // so no ordering or locking is needed.
    std::vector<std::thread> pool;
    pool.reserve(threads);
    const std::size_t per_worker = (cfg.domains + threads - 1) / threads;
    for (std::size_t t = 0; t < threads; ++t) {
      const auto lo = static_cast<std::uint32_t>(t * per_worker);
      const auto hi = static_cast<std::uint32_t>(
          std::min<std::size_t>(cfg.domains, (t + 1) * per_worker));
      if (lo >= hi) {
        break;
      }
      pool.emplace_back([&synth_record, lo, hi] {
        for (std::uint32_t i = lo; i < hi; ++i) {
          synth_record(i);
        }
      });
    }
    for (auto& worker : pool) {
      worker.join();
    }
  }
  return m;
}

std::size_t model::rank_group(const service_record& r) const {
  const std::size_t group_size =
      std::max<std::size_t>(1, records_.size() / kRankGroups);
  return std::min<std::size_t>((r.rank - 1) / group_size, kRankGroups - 1);
}

x509::chain model::chain_of(const service_record& rec, fetch_protocol proto,
                            x509::pq_profile pq) const {
  if (!rec.serves_tls()) {
    throw config_error("chain_of: record serves no TLS: " + rec.domain);
  }
  // Rotated services re-issued their certificate between the HTTPS scan
  // and the QUIC scan: perturb the issuance stream for QUIC fetches.
  const bool rotate = rec.rotated_cert && proto == fetch_protocol::quic;
  rng r{rotate ? rec.seed ^ 0x0707'0707ULL : rec.seed};

  if (rec.cruise_sans > 0) {
    return eco_.issue_cruise_liner(rec.domain, rec.cruise_sans, r, pq);
  }
  if (rec.chain_profile == "other") {
    return eco_.issue_other(
        rec.domain, r, {.quic_flavor = rec.serves_quic(), .pq = pq});
  }
  ca::chain_profile profile = eco_.profile(rec.chain_profile);
  if (rec.force_rsa_leaf) {
    profile.leaf.key_alg = x509::key_algorithm::rsa_2048;
    profile.leaf.rsa_mix = 0.0;
  }
  return eco_.issue(profile, rec.domain, r, pq);
}

quic::server_behavior model::behavior_of(const service_record& rec) const {
  quic::server_behavior b;
  switch (rec.behavior) {
    case behavior_kind::cloudflare:
      b = quic::server_behavior::cloudflare();
      break;
    case behavior_kind::legacy_amplifier:
      b = quic::server_behavior::compliant();
      b.policy = quic::amplification_policy::min_initial_only;
      break;
    case behavior_kind::standard_no_coalesce:
      b = quic::server_behavior::standard_no_coalesce();
      break;
    case behavior_kind::standard_lean:
      b = quic::server_behavior::standard_no_coalesce();
      b.ack_in_separate_datagram = false;
      break;
    case behavior_kind::compliant_coalesce:
      b = quic::server_behavior::compliant();
      break;
    case behavior_kind::retry_always:
      b = quic::server_behavior::retry_always();
      break;
  }
  b.compression_support.clear();
  if (rec.supports_all_algorithms) {
    b.compression_support = {compress::algorithm::brotli,
                             compress::algorithm::zlib,
                             compress::algorithm::zstd};
  } else if (rec.supports_brotli) {
    b.compression_support = {compress::algorithm::brotli};
  }
  return b;
}

std::vector<meta_host> model::meta_pop(bool post_disclosure) const {
  // Host octets present in the Fig. 11 scans of the /24.
  std::vector<int> octets;
  for (int i = 1; i <= 43; ++i) {
    octets.push_back(i);
  }
  for (int i = 49; i <= 60; ++i) {
    octets.push_back(i);
  }
  octets.push_back(63);
  for (int i = 128; i <= 132; ++i) {
    octets.push_back(i);
  }
  for (int i = 158; i <= 164; ++i) {
    octets.push_back(i);
  }
  for (int i = 167; i <= 169; ++i) {
    octets.push_back(i);
  }
  octets.push_back(172);
  octets.push_back(174);
  octets.push_back(182);
  octets.push_back(183);

  std::vector<meta_host> hosts;
  hosts.reserve(octets.size());
  rng r{seed_ ^ 0x3E7A};
  for (const int octet : octets) {
    meta_host h;
    h.address = net::ipv4::of(157, 240, 229, static_cast<std::uint8_t>(octet));
    h.seed = r.next();
    h.serves_quic = true;
    if (octet == 35 || octet == 36) {
      // §4.3 group 2: facebook front-ends, ~7 kB responses (~5x).
      h.services = "facebook.com, messenger.com, fbcdn.net";
      h.sni = "facebook.com";
      h.retransmissions = 1;
      h.extra_sans = 4;
    } else if (octet == 60 || octet == 63) {
      // §4.3 group 3: instagram/whatsapp, ~35 kB responses (~28x).
      h.services = "whatsapp.net, instagram.com, igcdn.com";
      h.sni = "instagram.com";
      h.retransmissions = 7;
      h.extra_sans = 14;
    } else if (octet % 17 == 0) {
      // §4.3 group 1: no QUIC HTTP/3 service on this host.
      h.services = "(no QUIC service)";
      h.sni = "";
      h.serves_quic = false;
    } else if (octet >= 128) {
      h.services = "instagram.com, igcdn.com";
      h.sni = "instagram.com";
      // Pre-disclosure variance across PoP hosts (Fig. 11a): deep
      // retransmission schedules and big SAN-laden leaves, up to ~45x
      // at the telescope.
      h.retransmissions = 6 + r.uniform(0, 3);  // 6..9
      h.extra_sans = static_cast<std::uint16_t>(30 + r.uniform(0, 70));
    } else {
      h.services = "facebook.com, messenger.com, fbcdn.net";
      h.sni = "facebook.com";
      h.retransmissions = 1 + r.uniform(0, 3);  // 1..4
      h.extra_sans = static_cast<std::uint16_t>(2 + r.uniform(0, 6));
    }
    if (post_disclosure && h.serves_quic) {
      // October 2022 fix: retransmissions capped and configurations
      // homogenised; responses land at ~5x mean (Fig. 11b) — still
      // above the RFC 9000 limit.
      h.retransmissions = 1;
      h.extra_sans = 0;
    }
    hosts.push_back(std::move(h));
  }
  return hosts;
}

x509::chain model::meta_chain(const meta_host& h) const {
  rng r{h.seed};
  ca::chain_profile profile = eco_.profile("digicert");
  profile.leaf.key_alg = x509::key_algorithm::ecdsa_p256;
  profile.leaf.rsa_mix = 0.0;
  profile.leaf.min_sans = 1 + h.extra_sans;
  profile.leaf.max_sans = 1 + h.extra_sans;
  return eco_.issue(profile, h.sni.empty() ? "meta.example" : h.sni, r);
}

quic::server_behavior model::meta_behavior(const meta_host& h) const {
  quic::server_behavior b =
      quic::server_behavior::meta_pre_disclosure(h.retransmissions);
  return b;
}

}  // namespace certquic::internet
