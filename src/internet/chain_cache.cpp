#include "internet/chain_cache.hpp"

namespace certquic::internet {

std::shared_ptr<const x509::chain> chain_cache::chain_of(
    const service_record& rec, fetch_protocol proto,
    x509::pq_profile pq) const {
  // Ranks are 1-based and unique across the population, so (rank,
  // protocol, profile) identifies the materialization exactly; the
  // profile occupies two low bits so a key never aliases.
  const std::uint64_t key = (static_cast<std::uint64_t>(rec.rank) << 3) |
                            (proto == fetch_protocol::quic ? 4u : 0u) |
                            static_cast<std::uint64_t>(pq);
  {
    const std::lock_guard<std::mutex> lock{mu_};
    if (const auto it = chains_.find(key); it != chains_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Materialize outside the lock: issuance is the expensive part and
  // deterministic, so a racing duplicate is wasted work, never a wrong
  // answer.
  auto chain =
      std::make_shared<const x509::chain>(model_.chain_of(rec, proto, pq));
  const std::lock_guard<std::mutex> lock{mu_};
  const auto [it, inserted] = chains_.emplace(key, std::move(chain));
  if (inserted) {
    misses_.fetch_add(1, std::memory_order_relaxed);
  } else {
    hits_.fetch_add(1, std::memory_order_relaxed);
  }
  return it->second;
}

std::size_t chain_cache::size() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return chains_.size();
}

}  // namespace certquic::internet
