// Epoch-over-epoch churn for the longitudinal census service.
//
// Every decision of epoch k derives from splitmix64 streams seeded by
// (epoch_seed(base, k), record index) — no stream state crosses epoch
// or record boundaries. That makes the epoch-k population a pure
// function of (config, churn_config, k): the service can skip, replay
// or crash-resume epochs in any order and always sees the same world,
// which is the invariant the resume bit-identity tests pin down.
#include <cstddef>

#include "internet/model.hpp"
#include "util/rng.hpp"

namespace certquic::internet {
namespace {

constexpr std::uint64_t kGolden = 0x9e37'79b9'7f4a'7c15ULL;

/// Chain profiles a migrating or arriving service can land on — the
/// ecosystem ids the generator itself deals from, so chain_of always
/// resolves them.
constexpr const char* kChurnChains[] = {
    "le-r3-x1cross", "le-e1-x2", "gts-1c3", "cloudflare", "sectigo",
    "le-r3",
};

/// Uniform double in [0, 1) from one raw draw (same construction as
/// rng::uniform01, without instantiating a generator).
double unit(std::uint64_t u) noexcept {
  return static_cast<double>(u >> 11) * 0x1.0p-53;
}

/// The decision bundle one record draws for one epoch. All draws are
/// taken up front so the consumed stream length never depends on the
/// record's current state.
struct churn_draws {
  double depart;
  double arrive;
  double key;
  double chain;
  double alpn;
  std::uint64_t pick;
  std::uint64_t fresh_seed;
};

churn_draws draw_for(std::uint64_t epoch_stream, std::size_t index) {
  std::uint64_t x =
      epoch_stream ^ (static_cast<std::uint64_t>(index) + 1) * kGolden;
  (void)splitmix64(x);  // decorrelate from the xor construction
  churn_draws d;
  d.depart = unit(splitmix64(x));
  d.arrive = unit(splitmix64(x));
  d.key = unit(splitmix64(x));
  d.chain = unit(splitmix64(x));
  d.alpn = unit(splitmix64(x));
  d.pick = splitmix64(x);
  d.fresh_seed = splitmix64(x);
  return d;
}

void clear_tls_state(service_record& rec) {
  rec.chain_profile.clear();
  rec.force_rsa_leaf = false;
  rec.cruise_sans = 0;
  rec.rotated_cert = false;
  rec.supports_brotli = false;
  rec.supports_all_algorithms = false;
  rec.lb_overhead = 0;
}

/// Fresh deployment state for a domain entering the TLS population.
void deploy_service(service_record& rec, const churn_draws& d) {
  rec.seed = d.fresh_seed;
  clear_tls_state(rec);
  rec.svc = (d.pick & 1) != 0 ? service_class::quic
                              : service_class::https_only;
  rec.chain_profile =
      kChurnChains[(d.pick >> 1) % std::size(kChurnChains)];
  rec.behavior = rec.chain_profile == "cloudflare"
                     ? behavior_kind::cloudflare
                     : ((d.pick & 0x100) != 0
                            ? behavior_kind::compliant_coalesce
                            : behavior_kind::standard_no_coalesce);
  rec.supports_brotli = (d.pick >> 16) % 100 < 96;  // Table 1 rate
}

}  // namespace

std::uint64_t epoch_seed(std::uint64_t base_seed,
                         std::uint64_t epoch) noexcept {
  std::uint64_t x = base_seed ^ 0xE90C'0000'5EED'0000ULL ^ (epoch * kGolden);
  (void)splitmix64(x);
  return splitmix64(x);
}

churn_summary model::evolve_to_epoch(const churn_config& churn,
                                     std::uint64_t epoch) {
  churn_summary last{};
  for (std::uint64_t k = 1; k <= epoch; ++k) {
    last = churn_summary{};
    last.epoch = k;
    const std::uint64_t stream = epoch_seed(seed_, k);
    for (std::size_t i = 0; i < records_.size(); ++i) {
      service_record& rec = records_[i];
      const churn_draws d = draw_for(stream, i);

      if (rec.svc != service_class::unresolved) {
        if (d.depart < churn.departure) {
          // The domain went dark: next epoch's scan sees a DNS miss.
          rec.svc = service_class::unresolved;
          rec.dns_result = dns::outcome::timeout;
          rec.address = net::ipv4{};
          clear_tls_state(rec);
          rec.behavior = behavior_kind::standard_no_coalesce;
          ++last.departures;
          continue;
        }
      } else if (d.arrive < churn.arrival) {
        // A dark domain came online — run it through the DNS funnel
        // under its fresh seed; only an A record admits it.
        const dns::resolution res = resolver_.resolve(d.fresh_seed);
        if (res.result == dns::outcome::a_record) {
          rec.dns_result = res.result;
          rec.address = res.address;
          deploy_service(rec, d);
          ++last.arrivals;
        }
        continue;
      }

      if (rec.svc == service_class::no_tls) {
        if (d.arrive < churn.arrival) {
          // An existing plain-HTTP host grew a TLS (or QUIC) endpoint.
          deploy_service(rec, d);
          ++last.arrivals;
        }
        continue;
      }
      if (!rec.serves_tls()) {
        continue;
      }

      if (d.key < churn.key_rotation) {
        // Re-keyed certificate: the chain structure stays, the bytes
        // (and the record-derived probe randomness) change.
        rec.seed = d.fresh_seed;
        ++last.key_rotations;
      }
      if (d.chain < churn.chain_migration) {
        const char* next =
            kChurnChains[d.pick % std::size(kChurnChains)];
        if (rec.chain_profile != next) {
          rec.chain_profile = next;
          rec.force_rsa_leaf = false;
          rec.cruise_sans = 0;
          ++last.chain_migrations;
        }
      }
      if (rec.svc == service_class::https_only && d.alpn < churn.alpn_gain) {
        rec.svc = service_class::quic;
        rec.behavior = (d.pick & 2) != 0
                           ? behavior_kind::compliant_coalesce
                           : behavior_kind::standard_no_coalesce;
        ++last.alpn_gains;
      } else if (rec.svc == service_class::quic &&
                 d.alpn < churn.alpn_loss) {
        rec.svc = service_class::https_only;
        ++last.alpn_losses;
      }
    }
  }
  return last;
}

model model::at_epoch(const config& cfg, const churn_config& churn,
                      std::uint64_t epoch, churn_summary* last) {
  model m = generate(cfg);
  const churn_summary summary = m.evolve_to_epoch(churn, epoch);
  if (last != nullptr) {
    *last = summary;
  }
  return m;
}

}  // namespace certquic::internet
