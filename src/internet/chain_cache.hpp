// Thread-safe memoization of model::chain_of, keyed by (record, fetch
// protocol, chain profile). Chain materialization — synthetic issuance
// plus DER encoding — is the hot path of repeat-visit plans (the tuner
// probes every service twice, multi-variant sweeps probe it once per
// variant, the PQC study visits every service once per profile) and of
// combined corpus/compression drivers that walk the same TLS sample.
// Since chain_of is a pure function of the key, concurrent misses may
// race to materialize the same chain; every racer produces identical
// bytes, so the first insert wins and all callers observe the same
// chain.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "internet/model.hpp"

namespace certquic::internet {

class chain_cache {
 public:
  explicit chain_cache(const model& m) : model_(m) {}

  chain_cache(const chain_cache&) = delete;
  chain_cache& operator=(const chain_cache&) = delete;

  /// The chain `rec` serves over `proto` under chain profile `pq`,
  /// materialized at most once per key. Safe to call concurrently from
  /// engine workers.
  [[nodiscard]] std::shared_ptr<const x509::chain> chain_of(
      const service_record& rec, fetch_protocol proto,
      x509::pq_profile pq = x509::pq_profile::classical) const;

  [[nodiscard]] const model& population() const noexcept { return model_; }

  /// Distinct chains held.
  [[nodiscard]] std::size_t size() const;
  /// Lookups served from the cache / materializations performed.
  [[nodiscard]] std::size_t hits() const noexcept { return hits_.load(); }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_.load(); }

 private:
  const model& model_;
  mutable std::mutex mu_;
  mutable std::unordered_map<std::uint64_t,
                             std::shared_ptr<const x509::chain>>
      chains_;
  mutable std::atomic<std::size_t> hits_{0};
  mutable std::atomic<std::size_t> misses_{0};
};

/// Cache-aware fetch shared by every chain consumer: goes through
/// `cache` when one is provided, else materializes directly. Keeps the
/// optional-cache dispatch in one place.
[[nodiscard]] inline x509::chain fetch_chain(
    const model& m, const chain_cache* cache, const service_record& rec,
    fetch_protocol proto,
    x509::pq_profile pq = x509::pq_profile::classical) {
  return cache != nullptr ? *cache->chain_of(rec, proto, pq)
                          : m.chain_of(rec, proto, pq);
}

}  // namespace certquic::internet
