// The synthetic Internet: a ranked domain population whose deployment
// mix reproduces the marginal distributions the paper measured.
//
// Calibration sources (all from the paper):
//  * DNS funnel rates                       — §3.1
//  * QUIC / HTTPS-only shares per rank group — Fig. 12 (~21% / ~59%)
//  * handshake-class mix per rank group      — Fig. 13 (at Initial 1362)
//  * chain shares                            — Fig. 7a / 7b
//  * browser compression support             — Table 1 (brotli 96%,
//    all three algorithms 0.05%)
//  * load-balancer encapsulation by rank     — §4.1 (25% top-1k,
//    12% top-10k, ~1% elsewhere; 1.2% overall)
//  * certificate rotation noise              — §3.2 (3.3%)
//  * Meta point-of-presence host map         — §4.3 / Fig. 11
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ca/ecosystem.hpp"
#include "dns/resolver.hpp"
#include "net/address.hpp"
#include "quic/behavior.hpp"
#include "x509/chain.hpp"

namespace certquic::internet {

/// What a domain serves.
enum class service_class : std::uint8_t {
  unresolved,  // DNS failure or no A record
  no_tls,      // web server without TLS
  https_only,  // TLS over TCP only
  quic,        // QUIC (and HTTPS)
};

/// Server implementation archetypes driving handshake behaviour.
enum class behavior_kind : std::uint8_t {
  cloudflare,            // §4.1: separate padded ACK, padding not counted
  legacy_amplifier,      // pre-RFC implementations without byte limits
  standard_no_coalesce,  // compliant; padded ACK + no coalescing
  standard_lean,         // compliant, no coalescing, no ACK datagram —
                         // borderline services that flip multi-RTT/1-RTT
                         // with the Initial size (§4.1)
  compliant_coalesce,    // fully compliant + coalescing
  retry_always,          // a-priori DoS protection
};

/// One domain of the ranked population. Records are compact; the
/// certificate chain is re-materialized deterministically on demand.
struct service_record {
  std::uint32_t rank = 0;  // 1-based
  std::uint64_t seed = 0;
  std::string domain;
  dns::outcome dns_result = dns::outcome::timeout;
  net::ipv4 address;
  service_class svc = service_class::unresolved;

  std::string chain_profile;       // ecosystem id, or "other"
  bool force_rsa_leaf = false;
  std::uint16_t cruise_sans = 0;   // >0: SAN-heavy leaf (Appendix E)
  bool rotated_cert = false;       // QUIC cert differs from HTTPS (§3.2)

  behavior_kind behavior = behavior_kind::standard_no_coalesce;
  bool supports_brotli = false;
  bool supports_all_algorithms = false;  // the 0.05% (Meta-operated)
  std::uint8_t lb_overhead = 0;          // encapsulation bytes, 0 = none

  std::int32_t redirect_to = -1;  // index of redirect target, -1 = none

  [[nodiscard]] bool serves_tls() const noexcept {
    return svc == service_class::https_only || svc == service_class::quic;
  }
  [[nodiscard]] bool serves_quic() const noexcept {
    return svc == service_class::quic;
  }
};

/// Which protocol a chain is being fetched over (certificates may
/// rotate between the HTTPS and QUIC scans, §3.2).
enum class fetch_protocol { https, quic };

/// One host of the Meta point-of-presence /24 (§4.3, Fig. 11).
struct meta_host {
  net::ipv4 address;
  std::string services;  // e.g. "facebook.com, messenger.com, fbcdn.net"
  std::string sni;
  bool serves_quic = false;
  std::size_t retransmissions = 0;  // mvfst resend budget
  std::uint16_t extra_sans = 0;     // instagram/whatsapp carry big SANs
  std::uint64_t seed = 0;
};

/// Generation parameters.
struct config {
  std::size_t domains = 100'000;
  std::uint64_t seed = 42;
  /// Worker threads for population synthesis. The master stream only
  /// hands each record its seed, so synthesis is a pure per-record
  /// function and the generated population is bit-identical at any
  /// thread count. 0 = all hardware threads, capped to one worker per
  /// ~4k domains so tiny populations stay serial; an explicit value is
  /// always honoured (1 forces serial).
  std::size_t synth_threads = 0;
};

/// Per-epoch churn rates for the longitudinal service: between two
/// census epochs, each domain independently rotates its keys, migrates
/// its chain, gains/loses QUIC (the h3 ALPN), or enters/leaves the
/// population. Defaults follow the paper's observed noise floors
/// (§3.2's 3.3% certificate rotation) with small plausible rates for
/// the structural moves.
struct churn_config {
  double key_rotation = 0.033;     // re-keyed cert, same chain profile
  double chain_migration = 0.010;  // switched CA / chain profile
  double alpn_gain = 0.006;        // https_only grew an h3 endpoint
  double alpn_loss = 0.004;        // quic service dropped h3
  double arrival = 0.003;          // unresolved/no-TLS domain came online
  double departure = 0.003;        // resolved domain went dark
};

/// What one epoch's churn actually did to the population.
struct churn_summary {
  std::uint64_t epoch = 0;
  std::size_t key_rotations = 0;
  std::size_t chain_migrations = 0;
  std::size_t alpn_gains = 0;
  std::size_t alpn_losses = 0;
  std::size_t arrivals = 0;
  std::size_t departures = 0;

  [[nodiscard]] std::size_t total() const noexcept {
    return key_rotations + chain_migrations + alpn_gains + alpn_losses +
           arrivals + departures;
  }
};

/// The per-epoch seed every churn decision of epoch `epoch` derives
/// from: a pure function of (base_seed, epoch), so any epoch's world is
/// reproducible in isolation — no stream state carries across epochs.
[[nodiscard]] std::uint64_t epoch_seed(std::uint64_t base_seed,
                                       std::uint64_t epoch) noexcept;

/// The generated population plus materialization helpers.
class model {
 public:
  [[nodiscard]] static model generate(const config& cfg);

  /// The population as of census epoch `epoch`: generate(cfg) evolved
  /// through epochs 1..epoch under the churn rates. A pure function of
  /// (cfg, churn, epoch) — computing other epochs first (or never)
  /// cannot change the result, which is what makes a crash-resumed
  /// epoch bit-identical to a fresh one. Epoch 0 is the base
  /// population. When `last` is given it receives the summary of the
  /// final epoch step (zeroed at epoch 0).
  [[nodiscard]] static model at_epoch(const config& cfg,
                                      const churn_config& churn,
                                      std::uint64_t epoch,
                                      churn_summary* last = nullptr);

  /// Applies churn epochs 1..epoch in place and returns the last
  /// step's summary. Must be called exactly once, on a freshly
  /// generated base model — evolving an already-evolved model would
  /// double-apply epochs. Prefer at_epoch unless the base model is
  /// being reused. (Implementation: internet/churn.cpp.)
  churn_summary evolve_to_epoch(const churn_config& churn,
                                std::uint64_t epoch);

  [[nodiscard]] const std::vector<service_record>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] const ca::ecosystem& ecosystem() const noexcept {
    return eco_;
  }
  [[nodiscard]] const dns::resolver& resolver() const noexcept {
    return resolver_;
  }
  [[nodiscard]] std::size_t domain_count() const noexcept {
    return records_.size();
  }

  /// Number of rank groups used for the Fig. 12/13 analyses.
  static constexpr std::size_t kRankGroups = 10;
  /// Rank group of a record (0 = most popular).
  [[nodiscard]] std::size_t rank_group(const service_record& r) const;

  /// Deterministically materializes the chain a record serves over the
  /// given protocol. Rotated services yield a different (re-issued)
  /// leaf over QUIC than over HTTPS. `pq` selects the chain profile of
  /// the PQC what-if axis; the default reproduces today's chains
  /// byte-for-byte, and a record's chain structure (hierarchy, SANs)
  /// is held fixed across profiles so per-record size deltas isolate
  /// the algorithm change.
  [[nodiscard]] x509::chain chain_of(
      const service_record& r, fetch_protocol proto,
      x509::pq_profile pq = x509::pq_profile::classical) const;

  /// Server behaviour profile for a QUIC record.
  [[nodiscard]] quic::server_behavior behavior_of(
      const service_record& r) const;

  /// Shared compression dictionary for the whole population.
  [[nodiscard]] const bytes& compression_dictionary() const noexcept {
    return dictionary_;
  }

  /// The Meta PoP /24 before or after the responsible disclosure.
  [[nodiscard]] std::vector<meta_host> meta_pop(bool post_disclosure) const;
  /// Chain served by a Meta host.
  [[nodiscard]] x509::chain meta_chain(const meta_host& h) const;
  /// Behaviour of a Meta host (mvfst semantics).
  [[nodiscard]] quic::server_behavior meta_behavior(const meta_host& h) const;

 private:
  std::vector<service_record> records_;
  ca::ecosystem eco_;
  dns::resolver resolver_{0xd5d5};
  bytes dictionary_;
  std::uint64_t seed_ = 0;
};

}  // namespace certquic::internet
