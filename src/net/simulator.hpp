// Deterministic discrete-event network simulator.
//
// A single event queue drives datagram deliveries and endpoint timers.
// Paths model one-way delay, random loss, an IP MTU (QUIC forbids
// fragmentation, so oversize datagrams are silently dropped — this is
// what breaks reachability behind encapsulating load balancers, §4.1),
// optional per-destination encapsulation overhead, and an optional
// bottleneck bandwidth: datagrams serialize onto the path one after
// another, so a burst spreads out in time instead of arriving as one
// instant (the time-domain model behind the TTFB studies).
//
// Spoofing falls out of the design: a sender may stamp any source
// address; replies are routed to whoever owns that address (a telescope,
// §4.3) or to nobody.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/address.hpp"
#include "net/time.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace certquic::net {

/// One UDP datagram in flight.
struct datagram {
  endpoint_id src;
  endpoint_id dst;
  bytes payload;
};

/// Per-destination path properties.
struct path_config {
  /// IP MTU; the usable UDP payload is mtu - 28 (IPv4 + UDP headers).
  std::size_t mtu = 1500;
  duration one_way_delay = milliseconds(10);
  /// Independent per-datagram loss probability.
  double loss_rate = 0.0;
  /// Extra bytes added by tunnel encapsulation in front of the load
  /// balancer; they count against the MTU but are stripped before
  /// delivery (the receiver never sees them).
  std::size_t encapsulation_overhead = 0;
  /// Bottleneck bandwidth in bits per second; 0 = unconstrained (every
  /// datagram departs instantly, the historical behaviour all goldens
  /// are captured under). When set, each datagram occupies the link for
  /// its serialization time and later datagrams queue behind it.
  std::uint64_t bandwidth_bps = 0;

  /// Largest UDP payload this path can carry without fragmentation.
  [[nodiscard]] std::size_t udp_capacity() const noexcept {
    const std::size_t headers = 28 + encapsulation_overhead;
    return mtu > headers ? mtu - headers : 0;
  }
};

/// A named symmetric network regime for time-domain studies: both
/// directions of a probe share the same loss rate and bottleneck
/// bandwidth, and the RTT splits evenly into two one-way delays. The
/// default reproduces the historical simulator setup (10 ms each way,
/// no loss, no bandwidth cap), so plans that never set a condition stay
/// bit-identical.
struct network_condition {
  std::string name = "ideal";
  duration rtt = milliseconds(20);
  double loss_rate = 0.0;
  std::uint64_t bandwidth_bps = 0;  // 0 = unconstrained

  /// Applies this condition to a path_config (delay is one direction's
  /// share of the RTT; MTU/encapsulation are left to the caller).
  void apply_to(path_config& path) const {
    path.one_way_delay = rtt / 2;
    path.loss_rate = loss_rate;
    path.bandwidth_bps = bandwidth_bps;
  }
};

/// Delivery/drop counters, per simulator.
struct traffic_stats {
  std::uint64_t delivered = 0;
  std::uint64_t dropped_oversize = 0;
  std::uint64_t dropped_loss = 0;
  std::uint64_t dropped_unroutable = 0;
  std::uint64_t bytes_delivered = 0;
};

/// The event-driven fabric. Endpoints attach handlers keyed by their
/// address; `send` schedules delivery after the path delay; `schedule`
/// arms arbitrary timers (QUIC PTO). `run` drains events in time order.
class simulator {
 public:
  explicit simulator(std::uint64_t loss_seed = 0x105e'5eedULL)
      : loss_seed_(loss_seed) {}

  using handler = std::function<void(const datagram&)>;
  using timer_fn = std::function<void()>;

  /// Registers (or replaces) the receive handler for an endpoint.
  void attach(const endpoint_id& ep, handler h);
  /// Removes an endpoint; datagrams to it become unroutable.
  void detach(const endpoint_id& ep);

  /// Sets the path used for datagrams addressed *to* `dst`.
  void set_path_to(const endpoint_id& dst, const path_config& path);
  /// Path lookup (default path when unset).
  [[nodiscard]] const path_config& path_to(const endpoint_id& dst) const;

  /// Sends a datagram; applies MTU check, loss and delay. The source
  /// address is taken from the datagram and is NOT validated — spoofing
  /// is allowed by design.
  void send(datagram d);

  /// Arms a timer.
  void schedule(duration delay, timer_fn fn);

  /// Current virtual time.
  [[nodiscard]] time_point now() const noexcept { return now_; }

  /// Runs until the queue is empty or `max_events` fired.
  /// Returns the number of events processed.
  std::size_t run(std::size_t max_events = 10'000'000);

  /// Runs until the queue is empty or virtual time would pass
  /// `deadline`. `now()` advances to `deadline` only when every event
  /// up to it has fired; an exit on `max_events` leaves `now()` at the
  /// last processed event so a later run never fires events in the
  /// past (virtual time is monotonic).
  std::size_t run_until(time_point deadline,
                        std::size_t max_events = 10'000'000);

  [[nodiscard]] const traffic_stats& stats() const noexcept { return stats_; }

 private:
  struct event {
    time_point at;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    std::function<void()> fn;
  };
  struct event_later {
    bool operator()(const event& a, const event& b) const noexcept {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  void push(time_point at, std::function<void()> fn);

  time_point now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<event, std::vector<event>, event_later> queue_;
  std::unordered_map<endpoint_id, handler> endpoints_;
  std::unordered_map<endpoint_id, path_config> paths_;
  path_config default_path_{};
  traffic_stats stats_{};
  /// Loss is drawn as a pure hash of (loss_seed_, send sequence
  /// number), not from a shared RNG stream: whether datagram N is lost
  /// depends only on N, so path-config changes (MTU, encapsulation)
  /// that alter *other* datagrams' fates cannot cascade into the loss
  /// pattern of the rest of the run.
  std::uint64_t loss_seed_;
  std::uint64_t send_seq_ = 0;
  /// Per-destination link-busy horizon for bandwidth serialization.
  std::unordered_map<endpoint_id, time_point> link_busy_;
};

}  // namespace certquic::net
