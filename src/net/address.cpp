#include "net/address.hpp"

#include <charconv>

#include "util/errors.hpp"

namespace certquic::net {

ipv4 ipv4::parse(const std::string& dotted) {
  std::uint32_t out = 0;
  const char* p = dotted.data();
  const char* end = p + dotted.size();
  for (int i = 0; i < 4; ++i) {
    unsigned octet = 0;
    const auto [next, ec] = std::from_chars(p, end, octet);
    if (ec != std::errc{} || octet > 255) {
      throw codec_error("bad IPv4 literal: " + dotted);
    }
    out = (out << 8) | octet;
    p = next;
    if (i < 3) {
      if (p == end || *p != '.') {
        throw codec_error("bad IPv4 literal: " + dotted);
      }
      ++p;
    }
  }
  if (p != end) {
    throw codec_error("bad IPv4 literal: " + dotted);
  }
  return ipv4{out};
}

std::string ipv4::to_string() const {
  return std::to_string(value >> 24) + "." +
         std::to_string((value >> 16) & 0xff) + "." +
         std::to_string((value >> 8) & 0xff) + "." +
         std::to_string(value & 0xff);
}

std::string endpoint_id::to_string() const {
  return ip.to_string() + ":" + std::to_string(port);
}

}  // namespace certquic::net
