// IPv4-style addressing for the simulated Internet.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace certquic::net {

/// IPv4 address (host byte order internally).
struct ipv4 {
  std::uint32_t value = 0;

  /// Builds from dotted octets, e.g. ipv4::of(157, 240, 229, 35).
  [[nodiscard]] static constexpr ipv4 of(std::uint8_t a, std::uint8_t b,
                                         std::uint8_t c, std::uint8_t d) {
    return ipv4{(static_cast<std::uint32_t>(a) << 24) |
                (static_cast<std::uint32_t>(b) << 16) |
                (static_cast<std::uint32_t>(c) << 8) | d};
  }

  /// Parses "a.b.c.d"; throws codec_error on malformed input.
  [[nodiscard]] static ipv4 parse(const std::string& dotted);

  /// Last octet — the paper scans Meta /24s by host octet (Fig. 11).
  [[nodiscard]] constexpr std::uint8_t host_octet() const {
    return static_cast<std::uint8_t>(value & 0xff);
  }

  /// The /24 prefix (lower octet zeroed).
  [[nodiscard]] constexpr ipv4 slash24() const {
    return ipv4{value & 0xffffff00u};
  }

  [[nodiscard]] std::string to_string() const;

  constexpr auto operator<=>(const ipv4&) const = default;
};

/// UDP endpoint: address + port.
struct endpoint_id {
  ipv4 ip;
  std::uint16_t port = 0;

  [[nodiscard]] std::string to_string() const;
  constexpr auto operator<=>(const endpoint_id&) const = default;
};

}  // namespace certquic::net

template <>
struct std::hash<certquic::net::ipv4> {
  std::size_t operator()(const certquic::net::ipv4& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value);
  }
};

template <>
struct std::hash<certquic::net::endpoint_id> {
  std::size_t operator()(const certquic::net::endpoint_id& e) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(e.ip.value) << 16) | e.port);
  }
};
