#include "net/simulator.hpp"

#include <algorithm>

namespace certquic::net {
namespace {

/// Uniform [0, 1) draw that is a pure function of (seed, seq): two
/// splitmix64 rounds over the sequence number. Quality is plenty for
/// loss decisions, and — unlike a shared RNG stream — the draw for one
/// datagram can never be perturbed by what happened to another.
double loss_draw(std::uint64_t seed, std::uint64_t seq) {
  std::uint64_t state = seed ^ (seq + 0x9e37'79b9'7f4a'7c15ULL);
  (void)splitmix64(state);
  const std::uint64_t word = splitmix64(state);
  return static_cast<double>(word >> 11) * 0x1.0p-53;
}

}  // namespace

void simulator::attach(const endpoint_id& ep, handler h) {
  endpoints_[ep] = std::move(h);
}

void simulator::detach(const endpoint_id& ep) { endpoints_.erase(ep); }

void simulator::set_path_to(const endpoint_id& dst, const path_config& path) {
  paths_[dst] = path;
}

const path_config& simulator::path_to(const endpoint_id& dst) const {
  const auto it = paths_.find(dst);
  return it != paths_.end() ? it->second : default_path_;
}

void simulator::push(time_point at, std::function<void()> fn) {
  queue_.push(event{at, next_seq_++, std::move(fn)});
}

void simulator::send(datagram d) {
  const path_config& path = path_to(d.dst);
  // Every send consumes one sequence number, whatever its fate, so the
  // per-seq loss draws below stay aligned across config changes.
  const std::uint64_t seq = send_seq_++;
  if (d.payload.size() > path.udp_capacity()) {
    // QUIC sets DF; an oversize datagram is dropped, not fragmented.
    ++stats_.dropped_oversize;
    return;
  }
  // Bandwidth serialization: the datagram departs once the link frees
  // up and occupies it for its transmit time; an uncapped path departs
  // instantly (the historical behaviour).
  time_point depart = now_;
  if (path.bandwidth_bps > 0) {
    const std::uint64_t bits =
        static_cast<std::uint64_t>(d.payload.size()) * 8;
    const duration serialize =
        (bits * 1'000'000 + path.bandwidth_bps - 1) / path.bandwidth_bps;
    time_point& busy = link_busy_[d.dst];
    depart = std::max(now_, busy) + serialize;
    busy = depart;
  }
  if (path.loss_rate > 0.0 &&
      loss_draw(loss_seed_, seq) < path.loss_rate) {
    ++stats_.dropped_loss;
    return;
  }
  push(depart + path.one_way_delay, [this, d = std::move(d)]() {
    const auto it = endpoints_.find(d.dst);
    if (it == endpoints_.end()) {
      ++stats_.dropped_unroutable;
      return;
    }
    ++stats_.delivered;
    stats_.bytes_delivered += d.payload.size();
    it->second(d);
  });
}

void simulator::schedule(duration delay, timer_fn fn) {
  push(now_ + delay, std::move(fn));
}

std::size_t simulator::run(std::size_t max_events) {
  std::size_t processed = 0;
  while (!queue_.empty() && processed < max_events) {
    // Copy out, then pop before invoking: the handler may push events.
    auto fn = queue_.top().fn;
    now_ = queue_.top().at;
    queue_.pop();
    fn();
    ++processed;
  }
  return processed;
}

std::size_t simulator::run_until(time_point deadline, std::size_t max_events) {
  std::size_t processed = 0;
  while (!queue_.empty() && processed < max_events &&
         queue_.top().at <= deadline) {
    auto fn = queue_.top().fn;
    now_ = queue_.top().at;
    queue_.pop();
    fn();
    ++processed;
  }
  // Clamp forward only when everything up to the deadline has fired.
  // An exit on max_events leaves events at <= deadline queued; jumping
  // now_ past them would make a later run fire them with at < now_ —
  // virtual time running backwards.
  if (now_ < deadline && (queue_.empty() || queue_.top().at > deadline)) {
    now_ = deadline;
  }
  return processed;
}

}  // namespace certquic::net
