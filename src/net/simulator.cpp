#include "net/simulator.hpp"

namespace certquic::net {

void simulator::attach(const endpoint_id& ep, handler h) {
  endpoints_[ep] = std::move(h);
}

void simulator::detach(const endpoint_id& ep) { endpoints_.erase(ep); }

void simulator::set_path_to(const endpoint_id& dst, const path_config& path) {
  paths_[dst] = path;
}

const path_config& simulator::path_to(const endpoint_id& dst) const {
  const auto it = paths_.find(dst);
  return it != paths_.end() ? it->second : default_path_;
}

void simulator::push(time_point at, std::function<void()> fn) {
  queue_.push(event{at, next_seq_++, std::move(fn)});
}

void simulator::send(datagram d) {
  const path_config& path = path_to(d.dst);
  if (d.payload.size() > path.udp_capacity()) {
    // QUIC sets DF; an oversize datagram is dropped, not fragmented.
    ++stats_.dropped_oversize;
    return;
  }
  if (path.loss_rate > 0.0 && loss_rng_.chance(path.loss_rate)) {
    ++stats_.dropped_loss;
    return;
  }
  push(now_ + path.one_way_delay, [this, d = std::move(d)]() {
    const auto it = endpoints_.find(d.dst);
    if (it == endpoints_.end()) {
      ++stats_.dropped_unroutable;
      return;
    }
    ++stats_.delivered;
    stats_.bytes_delivered += d.payload.size();
    it->second(d);
  });
}

void simulator::schedule(duration delay, timer_fn fn) {
  push(now_ + delay, std::move(fn));
}

std::size_t simulator::run(std::size_t max_events) {
  std::size_t processed = 0;
  while (!queue_.empty() && processed < max_events) {
    // Copy out, then pop before invoking: the handler may push events.
    auto fn = queue_.top().fn;
    now_ = queue_.top().at;
    queue_.pop();
    fn();
    ++processed;
  }
  return processed;
}

std::size_t simulator::run_until(time_point deadline, std::size_t max_events) {
  std::size_t processed = 0;
  while (!queue_.empty() && processed < max_events &&
         queue_.top().at <= deadline) {
    auto fn = queue_.top().fn;
    now_ = queue_.top().at;
    queue_.pop();
    fn();
    ++processed;
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return processed;
}

}  // namespace certquic::net
