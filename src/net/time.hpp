// Virtual time for the deterministic network simulation.
#pragma once

#include <cstdint>

namespace certquic::net {

/// Microseconds since simulation start.
using time_point = std::uint64_t;
/// Microsecond duration.
using duration = std::uint64_t;

inline constexpr duration microseconds(std::uint64_t n) { return n; }
inline constexpr duration milliseconds(std::uint64_t n) { return n * 1000; }
inline constexpr duration seconds(std::uint64_t n) { return n * 1000000; }

/// Renders a duration as fractional seconds for reports.
inline double to_seconds(duration d) {
  return static_cast<double>(d) / 1e6;
}

}  // namespace certquic::net
