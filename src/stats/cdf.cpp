#include "stats/cdf.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "util/text_table.hpp"

namespace certquic::stats {

sample_set::sample_set(const sample_set& other)
    : samples_(other.samples_),
      sorted_(other.sorted_.load(std::memory_order_acquire)) {}

sample_set& sample_set::operator=(const sample_set& other) {
  if (this != &other) {
    samples_ = other.samples_;
    sorted_.store(other.sorted_.load(std::memory_order_acquire),
                  std::memory_order_release);
  }
  return *this;
}

sample_set::sample_set(sample_set&& other) noexcept
    : samples_(std::move(other.samples_)),
      sorted_(other.sorted_.load(std::memory_order_acquire)) {}

sample_set& sample_set::operator=(sample_set&& other) noexcept {
  if (this != &other) {
    samples_ = std::move(other.samples_);
    sorted_.store(other.sorted_.load(std::memory_order_acquire),
                  std::memory_order_release);
  }
  return *this;
}

namespace {

#if defined(CERTQUIC_ENABLE_ASSERTS)
constexpr const char* kMutateDuringRead =
    "sample_set: mutation while a concurrent query is in flight — "
    "finalize() the set and stop mutating before sharing it across "
    "threads";
#endif

}  // namespace

void sample_set::add(double x) {
  CERTQUIC_ASSERT(readers_.load(std::memory_order_acquire) == 0,
                  kMutateDuringRead);
  samples_.push_back(x);
  sorted_.store(false, std::memory_order_relaxed);
}

void sample_set::add_all(const std::vector<double>& xs) {
  CERTQUIC_ASSERT(readers_.load(std::memory_order_acquire) == 0,
                  kMutateDuringRead);
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_.store(false, std::memory_order_relaxed);
}

void sample_set::reserve(std::size_t n) {
  CERTQUIC_ASSERT(readers_.load(std::memory_order_acquire) == 0,
                  kMutateDuringRead);
  samples_.reserve(n);
}

void sample_set::finalize() { ensure_sorted(); }

void sample_set::ensure_sorted() const {
  // Double-checked: the release-store below pairs with this acquire,
  // so a thread seeing sorted_ == true also sees the sorted samples_.
  if (sorted_.load(std::memory_order_acquire)) {
    return;
  }
  const std::lock_guard<std::mutex> lock{sort_mutex_};
  if (!sorted_.load(std::memory_order_relaxed)) {
    std::sort(samples_.begin(), samples_.end());
    sorted_.store(true, std::memory_order_release);
  }
}

double sample_set::quantile(double q) const {
#if defined(CERTQUIC_ENABLE_ASSERTS)
  const read_guard guard{readers_};
#endif
  if (samples_.empty()) {
    throw std::logic_error("quantile of empty sample_set");
  }
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double idx = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(idx));
  const auto hi = static_cast<std::size_t>(std::ceil(idx));
  const double frac = idx - std::floor(idx);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double sample_set::mean() const {
#if defined(CERTQUIC_ENABLE_ASSERTS)
  const read_guard guard{readers_};
#endif
  if (samples_.empty()) {
    return 0.0;
  }
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double sample_set::fraction_at_or_below(double x) const {
#if defined(CERTQUIC_ENABLE_ASSERTS)
  const read_guard guard{readers_};
#endif
  if (samples_.empty()) {
    return 0.0;
  }
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double sample_set::fraction_above(double x) const {
  return 1.0 - fraction_at_or_below(x);
}

std::vector<cdf_point> sample_set::cdf_series(std::size_t points) const {
  std::vector<cdf_point> out;
  if (samples_.empty() || points == 0) {
    return out;
  }
  ensure_sorted();
  const std::size_t n = points < 2 ? 2 : points;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(n - 1);
    out.push_back({quantile(q), q});
  }
  return out;
}

std::string sample_set::quantile_line() const {
  if (samples_.empty()) {
    return "(empty)";
  }
  std::string out;
  for (const double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0}) {
    if (!out.empty()) {
      out += "  ";
    }
    out += "p" + std::to_string(static_cast<int>(q * 100)) + "=" +
           certquic::fixed(quantile(q), 1);
  }
  return out;
}

histogram::histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins) {
  if (bins == 0 || !(hi > lo)) {
    throw std::logic_error("histogram: invalid range or bin count");
  }
}

void histogram::add(double x, double weight) {
  auto idx = static_cast<long>(std::floor((x - lo_) / width_));
  idx = std::clamp(idx, 0L, static_cast<long>(counts_.size()) - 1L);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double histogram::bin_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double histogram::bin_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double histogram::count(std::size_t i) const { return counts_.at(i); }

}  // namespace certquic::stats
