// Empirical distributions: quantiles, CDF evaluation and CDF series for
// regenerating the paper's cumulative plots.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace certquic::stats {

/// One (x, F(x)) point of an empirical CDF.
struct cdf_point {
  double x = 0.0;
  double f = 0.0;
};

/// Stores samples and answers distribution queries.
///
/// Samples are sorted lazily on first query; adding after a query is
/// allowed and re-sorts on the next query.
///
/// Thread-safety contract: mutation (add/add_all/reserve) is
/// single-threaded, like any container. Const queries are safe to call
/// concurrently — the lazy sort is guarded, so the first query from
/// any thread sorts exactly once and later queries are pure reads.
/// Aggregators that share a finished set across threads should still
/// call finalize() once before publishing it; that makes every
/// subsequent query lock-free instead of paying the guard's fast-path
/// atomic load under contention.
class sample_set {
 public:
  sample_set() = default;
  // The sort guard (a mutex) is per-object state, not data: copies and
  // moves transfer the samples and sort flag and get fresh guards.
  // Copying concurrently with a query on the source is outside the
  // contract above (it reads samples_ unguarded).
  sample_set(const sample_set& other);
  sample_set& operator=(const sample_set& other);
  sample_set(sample_set&& other) noexcept;
  sample_set& operator=(sample_set&& other) noexcept;

  /// Adds one observation.
  void add(double x);
  /// Adds many observations.
  void add_all(const std::vector<double>& xs);
  /// Pre-allocates capacity for `n` total samples; hot aggregation
  /// paths call this once with the planned probe count so large sweeps
  /// do not pay reallocation churn per add().
  void reserve(std::size_t n);

  /// Sorts eagerly so the set can be shared read-only across threads
  /// with no synchronization on the query path. Called by aggregators
  /// in on_end(), before results fan out to parallel readers.
  void finalize();

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  /// Quantile by linear interpolation between order statistics;
  /// q clamped to [0, 1]. Throws std::logic_error on an empty set.
  [[nodiscard]] double quantile(double q) const;
  /// Convenience median == quantile(0.5).
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double min() const { return quantile(0.0); }
  [[nodiscard]] double max() const { return quantile(1.0); }
  [[nodiscard]] double mean() const;

  /// Empirical CDF at x: fraction of samples <= x. 0 for an empty set.
  [[nodiscard]] double fraction_at_or_below(double x) const;
  /// Fraction of samples strictly above x.
  [[nodiscard]] double fraction_above(double x) const;

  /// Evenly spaced CDF series with `points` entries (by quantile), e.g.
  /// for printing figure data. Always includes min and max.
  [[nodiscard]] std::vector<cdf_point> cdf_series(std::size_t points) const;

  /// Renders "p10 p25 p50 p75 p90 p99 max" on one line for quick reports.
  [[nodiscard]] std::string quantile_line() const;

 private:
  void ensure_sorted() const;

#if defined(CERTQUIC_ENABLE_ASSERTS)
  /// Debug invariant check: queries bump this counter for their
  /// duration, and mutation asserts it is zero — catching the
  /// out-of-contract shape (an aggregator mutating a set it already
  /// published to concurrent readers, i.e. a missing finalize-then-
  /// stop-mutating handoff) with a named failure instead of a silent
  /// race.
  class read_guard {
   public:
    explicit read_guard(std::atomic<int>& readers) noexcept
        : readers_(readers) {
      readers_.fetch_add(1, std::memory_order_acq_rel);
    }
    ~read_guard() { readers_.fetch_sub(1, std::memory_order_acq_rel); }
    read_guard(const read_guard&) = delete;
    read_guard& operator=(const read_guard&) = delete;

   private:
    std::atomic<int>& readers_;
  };
  mutable std::atomic<int> readers_{0};
#endif

  mutable std::vector<double> samples_;
  /// Guards the lazy sort only; queries after the acquire-load of
  /// sorted_ touch samples_ without locking.
  mutable std::mutex sort_mutex_;
  mutable std::atomic<bool> sorted_{true};
};

/// Fixed-width histogram over [lo, hi) used for binned figures
/// (e.g. handshake classes per Initial size).
class histogram {
 public:
  /// Creates `bins` equal-width buckets covering [lo, hi).
  histogram(double lo, double hi, std::size_t bins);

  /// Adds an observation; out-of-range values clamp to the edge buckets.
  void add(double x, double weight = 1.0);

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] double count(std::size_t i) const;
  [[nodiscard]] double total() const noexcept { return total_; }

 private:
  double lo_;
  double width_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace certquic::stats
