// Streaming summary statistics (count / mean / stddev / min / max).
#pragma once

#include <cstddef>
#include <limits>

namespace certquic::stats {

/// Welford-style accumulator: numerically stable mean and variance in one
/// pass, no sample storage. Used wherever only moments are reported
/// (e.g. mean amplification factors with confidence intervals, Fig. 11).
class summary {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Merges another summary into this one (parallel-reduction friendly).
  void merge(const summary& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  /// Sample standard deviation.
  [[nodiscard]] double stddev() const noexcept;
  /// Half-width of the 95% normal-approximation confidence interval for
  /// the mean (1.96 * stddev / sqrt(n)); 0 with fewer than two samples.
  [[nodiscard]] double ci95_half_width() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double total() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace certquic::stats
