#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace certquic::stats {

void summary::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void summary::merge(const summary& other) noexcept {
  if (other.n_ == 0) {
    return;
  }
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total_n = na + nb;
  mean_ += delta * nb / total_n;
  m2_ += other.m2_ + delta * delta * na * nb / total_n;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double summary::variance() const noexcept {
  if (n_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(n_ - 1);
}

double summary::stddev() const noexcept { return std::sqrt(variance()); }

double summary::ci95_half_width() const noexcept {
  if (n_ < 2) {
    return 0.0;
  }
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

}  // namespace certquic::stats
