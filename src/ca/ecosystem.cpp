#include "ca/ecosystem.hpp"

#include <algorithm>

#include "util/errors.hpp"
#include "x509/extensions.hpp"

namespace certquic::ca {

using x509::certificate;
using x509::certificate_spec;
using x509::distinguished_name;
using x509::key_algorithm;
using x509::signature_algorithm;

namespace {

/// Extension richness of a CA certificate; modern intermediates carry
/// the full operational set, legacy roots are sparse.
enum class ca_style { root, legacy_root, intermediate };

std::shared_ptr<const certificate> make_ca_cert(
    rng& r, const distinguished_name& subject,
    const distinguished_name& issuer, key_algorithm key,
    key_algorithm issuer_key, ca_style style, const std::string& url_host) {
  certificate_spec spec;
  spec.subject = subject;
  spec.issuer = issuer;
  spec.key_alg = key;
  spec.sig_alg = x509::signature_by(issuer_key);
  // CA certificates are long-lived.
  spec.valid = {"200904000000Z", "300904000000Z"};
  spec.extensions.push_back(x509::make_basic_constraints(true, 0));
  spec.extensions.push_back(x509::make_key_usage(0x86));  // sign+certSign+crl
  spec.extensions.push_back(x509::make_subject_key_id(r));
  if (style != ca_style::legacy_root) {
    bytes issuer_key_id(20);
    r.fill(issuer_key_id);
    spec.extensions.push_back(x509::make_authority_key_id(issuer_key_id));
  }
  if (style == ca_style::intermediate) {
    spec.extensions.push_back(x509::make_ext_key_usage(true));
    spec.extensions.push_back(x509::make_certificate_policies(
        false, "http://" + url_host + "/cps"));
    spec.extensions.push_back(x509::make_authority_info_access(
        "http://ocsp." + url_host, "http://" + url_host + "/root.crt"));
    spec.extensions.push_back(x509::make_crl_distribution_points(
        "http://crl." + url_host + "/root.crl"));
  }
  return std::make_shared<const certificate>(std::move(spec), r);
}

/// ML-DSA twin of a classical parent certificate: the same position in
/// the hierarchy (subject, issuer) and the same extension richness as
/// its classical counterpart — built through make_ca_cert so
/// intermediates keep their full operational set (EKU, policies, AIA,
/// CRL DP) — with ML-DSA-65 keys on intermediates, ML-DSA-87 on roots,
/// and ML-DSA-87 signatures (every named parent is signed by a
/// root-grade key). Per-record pqc_full size deltas therefore isolate
/// the algorithm change; only the operational host is a synthetic
/// placeholder of realistic length.
std::shared_ptr<const certificate> make_pqc_twin(const certificate& parent,
                                                 rng& r) {
  const bool root = parent.self_signed();
  return make_ca_cert(
      r, parent.subject(), parent.issuer(),
      root ? key_algorithm::mldsa_87 : key_algorithm::mldsa_65,
      key_algorithm::mldsa_87, root ? ca_style::root : ca_style::intermediate,
      "pq.pki.example");
}

}  // namespace

std::size_t chain_profile::parent_wire_size() const {
  std::size_t total = 0;
  for (const auto& parent : parents) {
    total += parent->size();
  }
  return total;
}

ecosystem ecosystem::make(std::uint64_t seed) {
  rng r{seed};
  ecosystem eco;

  // ---- Distinguished names of the real hierarchies -----------------------
  const auto dn_cf =
      distinguished_name::org("US", "Cloudflare, Inc.", "Cloudflare Inc ECC CA-3");
  const auto dn_baltimore = distinguished_name::org(
      "IE", "Baltimore", "Baltimore CyberTrust Root");
  const auto dn_r3 = distinguished_name::org("US", "Let's Encrypt", "R3");
  const auto dn_e1 = distinguished_name::org("US", "Let's Encrypt", "E1");
  const auto dn_x1 = distinguished_name::org(
      "US", "Internet Security Research Group", "ISRG Root X1");
  const auto dn_x2 = distinguished_name::org(
      "US", "Internet Security Research Group", "ISRG Root X2");
  const auto dn_dst = distinguished_name::org(
      "US", "Digital Signature Trust Co.", "DST Root CA X3");
  const auto dn_gts_r1 = distinguished_name::org(
      "US", "Google Trust Services LLC", "GTS Root R1");
  const auto dn_gts_1c3 = distinguished_name::org(
      "US", "Google Trust Services LLC", "GTS CA 1C3");
  const auto dn_gts_1d4 = distinguished_name::org(
      "US", "Google Trust Services LLC", "GTS CA 1D4");
  const auto dn_globalsign_root = distinguished_name::org(
      "BE", "GlobalSign nv-sa", "GlobalSign Root CA - R3");
  const auto dn_usertrust = distinguished_name::org(
      "US", "The USERTRUST Network", "USERTrust RSA Certification Authority");
  const auto dn_sectigo = distinguished_name::org(
      "GB", "Sectigo Limited", "Sectigo RSA Domain Validation Secure Server CA");
  const auto dn_comodo = distinguished_name::org(
      "GB", "COMODO CA Limited", "COMODO RSA Certification Authority");
  const auto dn_cpanel =
      distinguished_name::org("US", "cPanel, Inc.", "cPanel, Inc. Certification Authority");
  const auto dn_globalsign_atlas = distinguished_name::org(
      "BE", "GlobalSign nv-sa", "GlobalSign Atlas R3 DV TLS CA H2 2021");
  const auto dn_digicert_root = distinguished_name::org(
      "US", "DigiCert Inc", "DigiCert Global Root CA");
  const auto dn_digicert_ca1 = distinguished_name::org(
      "US", "DigiCert Inc", "DigiCert TLS RSA SHA256 2020 CA1");
  const auto dn_amazon_root =
      distinguished_name::org("US", "Amazon", "Amazon Root CA 1");
  const auto dn_amazon_m01 =
      distinguished_name::org("US", "Amazon", "Amazon RSA 2048 M01");
  const auto dn_godaddy_root = distinguished_name::org(
      "US", "GoDaddy.com, Inc.", "GoDaddy Root Certificate Authority - G2");
  const auto dn_godaddy_g2 = distinguished_name::org(
      "US", "GoDaddy.com, Inc.", "GoDaddy Secure Certificate Authority - G2");

  // ---- Parent certificates ------------------------------------------------
  const auto cf_ecc = make_ca_cert(r, dn_cf, dn_baltimore,
                                   key_algorithm::ecdsa_p256,
                                   key_algorithm::rsa_2048,
                                   ca_style::intermediate, "cloudflare.com");
  const auto le_r3 = make_ca_cert(r, dn_r3, dn_x1, key_algorithm::rsa_2048,
                                  key_algorithm::rsa_4096,
                                  ca_style::intermediate, "x1.i.lencr.org");
  const auto le_e1 = make_ca_cert(r, dn_e1, dn_x2, key_algorithm::ecdsa_p384,
                                  key_algorithm::ecdsa_p384,
                                  ca_style::intermediate, "x2.i.lencr.org");
  const auto isrg_x1_cross =
      make_ca_cert(r, dn_x1, dn_dst, key_algorithm::rsa_4096,
                   key_algorithm::rsa_2048, ca_style::intermediate,
                   "apps.identrust.com");
  const auto isrg_x1_self =
      make_ca_cert(r, dn_x1, dn_x1, key_algorithm::rsa_4096,
                   key_algorithm::rsa_4096, ca_style::root, "x1.i.lencr.org");
  const auto isrg_x2_self =
      make_ca_cert(r, dn_x2, dn_x2, key_algorithm::ecdsa_p384,
                   key_algorithm::ecdsa_p384, ca_style::root,
                   "x2.i.lencr.org");
  const auto gts_r1_cross = make_ca_cert(
      r, dn_gts_r1, dn_globalsign_root, key_algorithm::rsa_4096,
      key_algorithm::rsa_2048, ca_style::intermediate, "pki.goog");
  const auto gts_1c3 =
      make_ca_cert(r, dn_gts_1c3, dn_gts_r1, key_algorithm::rsa_2048,
                   key_algorithm::rsa_4096, ca_style::intermediate,
                   "pki.goog");
  const auto gts_1d4 =
      make_ca_cert(r, dn_gts_1d4, dn_gts_r1, key_algorithm::ecdsa_p256,
                   key_algorithm::rsa_4096, ca_style::intermediate,
                   "pki.goog");
  // As served by Sectigo, the USERTrust root is cross-signed by the
  // older AAA Certificate Services root rather than self-signed.
  const auto dn_aaa = distinguished_name::org(
      "GB", "Comodo CA Limited", "AAA Certificate Services");
  const auto usertrust_root = make_ca_cert(
      r, dn_usertrust, dn_aaa, key_algorithm::rsa_4096,
      key_algorithm::rsa_2048, ca_style::root, "usertrust.com");
  const auto sectigo_dv =
      make_ca_cert(r, dn_sectigo, dn_usertrust, key_algorithm::rsa_2048,
                   key_algorithm::rsa_4096, ca_style::intermediate,
                   "sectigo.com");
  const auto comodo_root =
      make_ca_cert(r, dn_comodo, dn_comodo, key_algorithm::rsa_4096,
                   key_algorithm::rsa_4096, ca_style::root, "comodoca.com");
  const auto cpanel_ca =
      make_ca_cert(r, dn_cpanel, dn_comodo, key_algorithm::rsa_2048,
                   key_algorithm::rsa_4096, ca_style::intermediate,
                   "comodoca.com");
  const auto globalsign_atlas = make_ca_cert(
      r, dn_globalsign_atlas, dn_globalsign_root, key_algorithm::rsa_2048,
      key_algorithm::rsa_2048, ca_style::intermediate, "globalsign.com");
  const auto digicert_root = make_ca_cert(
      r, dn_digicert_root, dn_digicert_root, key_algorithm::rsa_2048,
      key_algorithm::rsa_2048, ca_style::legacy_root, "digicert.com");
  const auto digicert_ca1 =
      make_ca_cert(r, dn_digicert_ca1, dn_digicert_root,
                   key_algorithm::rsa_2048, key_algorithm::rsa_2048,
                   ca_style::intermediate, "digicert.com");
  const auto amazon_root = make_ca_cert(
      r, dn_amazon_root, dn_amazon_root, key_algorithm::rsa_2048,
      key_algorithm::rsa_2048, ca_style::legacy_root, "amazontrust.com");
  const auto amazon_m01 =
      make_ca_cert(r, dn_amazon_m01, dn_amazon_root, key_algorithm::rsa_2048,
                   key_algorithm::rsa_2048, ca_style::intermediate,
                   "amazontrust.com");
  const auto godaddy_g2 =
      make_ca_cert(r, dn_godaddy_g2, dn_godaddy_root, key_algorithm::rsa_2048,
                   key_algorithm::rsa_2048, ca_style::intermediate,
                   "certs.godaddy.com");

  // ---- Fig. 7a (QUIC services) + Fig. 7b (HTTPS-only) rows ---------------
  // Shares are the published row percentages; 96.49% / 71.91% coverage,
  // the remainder flows through issue_other().
  auto add = [&eco](chain_profile p) { eco.profiles_.push_back(std::move(p)); };

  add({.id = "cloudflare",
       .display = "Cloudflare Inc ECC CA-3",
       .parents = {cf_ecc},
       .quic_share = 0.6154,
       .https_share = 0.0140,
       .leaf = {.key_alg = key_algorithm::ecdsa_p256,
                .min_sans = 4,
                .max_sans = 6,
                .sct_count = 3,
                .url_host = "cloudflaressl.com"},
       .parents_pqc = {}});
  // Fig. 7a rows 2 and 3: both serve R3 plus the DST-cross-signed ISRG
  // Root X1 (§4.2 calls this out as superfluous); they differ in the
  // leaf key algorithm.
  add({.id = "le-r3-x1cross",
       .display = "Let's Encrypt R3 + ISRG Root X1 (DST cross), RSA leaves",
       .parents = {le_r3, isrg_x1_cross},
       .quic_share = 0.1680,
       .https_share = 0.4142,
       .leaf = {.key_alg = key_algorithm::rsa_2048,
                .min_sans = 1,
                .max_sans = 2,
                .sct_count = 2,
                .lean_extensions = true,
                .url_host = "r3.o.lencr.org"},
       .parents_pqc = {}});
  add({.id = "le-r3-x1cross-ec",
       .display = "Let's Encrypt R3 + ISRG Root X1 (DST cross), ECDSA leaves",
       .parents = {le_r3, isrg_x1_cross},
       .quic_share = 0.1031,
       .https_share = 0.0,
       .leaf = {.key_alg = key_algorithm::ecdsa_p256,
                .min_sans = 1,
                .max_sans = 3,
                .sct_count = 2,
                .lean_extensions = true,
                .url_host = "r3.o.lencr.org"},
       .parents_pqc = {}});
  add({.id = "le-r3",
       .display = "Let's Encrypt R3",
       .parents = {le_r3},
       .quic_share = 0.0,
       .https_share = 0.0176,
       .leaf = {.key_alg = key_algorithm::ecdsa_p256,
                .rsa_mix = 0.35,
                .min_sans = 1,
                .max_sans = 3,
                .sct_count = 2,
                .lean_extensions = true,
                .url_host = "r3.o.lencr.org"},
       .parents_pqc = {}});
  add({.id = "le-e1-x2",
       .display = "Let's Encrypt E1 + ISRG Root X2",
       .parents = {le_e1, isrg_x2_self},
       .quic_share = 0.0189,
       .https_share = 0.0,
       .leaf = {.key_alg = key_algorithm::ecdsa_p256,
                .min_sans = 1,
                .max_sans = 3,
                .sct_count = 2,
                .lean_extensions = true,
                .url_host = "e1.o.lencr.org"},
       .parents_pqc = {}});
  add({.id = "gts-1c3",
       .display = "GTS CA 1C3 + GTS Root R1",
       .parents = {gts_1c3, gts_r1_cross},
       .quic_share = 0.0153,
       .https_share = 0.0,
       .leaf = {.key_alg = key_algorithm::ecdsa_p256,
                .min_sans = 1,
                .max_sans = 6,
                .sct_count = 2,
                .url_host = "pki.goog"},
       .parents_pqc = {}});
  add({.id = "le-r3-x1self",
       .display = "Let's Encrypt R3 + ISRG Root X1 (self-signed)",
       .parents = {le_r3, isrg_x1_self},
       .quic_share = 0.0127,
       .https_share = 0.0,
       .leaf = {.key_alg = key_algorithm::ecdsa_p256,
                .rsa_mix = 0.3,
                .min_sans = 1,
                .max_sans = 4,
                .sct_count = 2,
                .lean_extensions = true,
                .url_host = "r3.o.lencr.org"},
       .parents_pqc = {}});
  add({.id = "gts-1d4",
       .display = "GTS CA 1D4 + GTS Root R1",
       .parents = {gts_1d4, gts_r1_cross},
       .quic_share = 0.0103,
       .https_share = 0.0,
       .leaf = {.key_alg = key_algorithm::ecdsa_p256,
                .min_sans = 1,
                .max_sans = 4,
                .sct_count = 2,
                .url_host = "pki.goog"},
       .parents_pqc = {}});
  add({.id = "sectigo",
       .display = "Sectigo RSA DV + USERTrust RSA CA",
       .parents = {sectigo_dv, usertrust_root},
       .quic_share = 0.0092,
       .https_share = 0.0633,
       .leaf = {.key_alg = key_algorithm::rsa_2048,
                .min_sans = 1,
                .max_sans = 3,
                .sct_count = 2,
                .url_host = "sectigo.com"},
       .parents_pqc = {}});
  add({.id = "cpanel",
       .display = "cPanel, Inc. CA + COMODO RSA CA",
       .parents = {cpanel_ca, comodo_root},
       .quic_share = 0.0083,
       .https_share = 0.0503,
       .leaf = {.key_alg = key_algorithm::rsa_2048,
                .min_sans = 2,
                .max_sans = 8,
                .sct_count = 3,
                .url_host = "comodoca.com"},
       .parents_pqc = {}});
  add({.id = "globalsign",
       .display = "GlobalSign Atlas R3 DV TLS CA H2 2021",
       .parents = {globalsign_atlas},
       .quic_share = 0.0037,
       .https_share = 0.0,
       .leaf = {.key_alg = key_algorithm::rsa_2048,
                .min_sans = 1,
                .max_sans = 3,
                .sct_count = 2,
                .url_host = "globalsign.com"},
       .parents_pqc = {}});
  // HTTPS-only rows absent from the QUIC top-10.
  add({.id = "digicert",
       .display = "DigiCert TLS RSA SHA256 2020 CA1 + DigiCert Global Root",
       .parents = {digicert_ca1, digicert_root},
       .quic_share = 0.0,
       .https_share = 0.0455,
       .leaf = {.key_alg = key_algorithm::rsa_2048,
                .min_sans = 1,
                .max_sans = 6,
                .sct_count = 3,
                .organization_validated = true,
                .url_host = "digicert.com"},
       .parents_pqc = {}});
  add({.id = "amazon",
       .display = "Amazon RSA 2048 M01 + Amazon Root CA 1",
       .parents = {amazon_m01, amazon_root},
       .quic_share = 0.0,
       .https_share = 0.0424,
       .leaf = {.key_alg = key_algorithm::rsa_2048,
                .min_sans = 1,
                .max_sans = 5,
                .sct_count = 2,
                .url_host = "amazontrust.com"},
       .parents_pqc = {}});
  add({.id = "comodo",
       .display = "cPanel, Inc. CA + COMODO RSA CA (legacy)",
       .parents = {cpanel_ca, comodo_root},
       .quic_share = 0.0,
       .https_share = 0.0403,
       .leaf = {.key_alg = key_algorithm::rsa_2048,
                .min_sans = 1,
                .max_sans = 6,
                .sct_count = 3,
                .url_host = "comodoca.com"},
       .parents_pqc = {}});
  add({.id = "godaddy",
       .display = "GoDaddy Secure CA - G2",
       .parents = {godaddy_g2},
       .quic_share = 0.0,
       .https_share = 0.0160,
       .leaf = {.key_alg = key_algorithm::rsa_2048,
                .min_sans = 1,
                .max_sans = 4,
                .sct_count = 2,
                .url_host = "godaddy.com"},
       .parents_pqc = {}});
  add({.id = "comodo-with-root",
       .display = "Sectigo RSA DV + USERTrust + COMODO root (superfluous anchor)",
       .parents = {sectigo_dv, usertrust_root, comodo_root},
       .quic_share = 0.0,
       .https_share = 0.0155,
       .leaf = {.key_alg = key_algorithm::rsa_2048,
                .min_sans = 1,
                .max_sans = 4,
                .sct_count = 3,
                .url_host = "sectigo.com"},
       .parents_pqc = {}});

  // ML-DSA twins of every distinct named parent, for pqc_full chains.
  // Drawn from a dedicated stream so the classical parents above — and
  // every golden output derived from them — keep their exact bytes.
  rng pq_rng{seed ^ 0x90C5'0D5AULL};
  std::vector<std::pair<const certificate*,
                        std::shared_ptr<const certificate>>>
      twins;
  for (auto& p : eco.profiles_) {
    p.parents_pqc.reserve(p.parents.size());
    for (const auto& parent : p.parents) {
      std::shared_ptr<const certificate> twin;
      for (const auto& [classical, existing] : twins) {
        if (classical == parent.get()) {
          twin = existing;
          break;
        }
      }
      if (!twin) {
        twin = make_pqc_twin(*parent, pq_rng);
        twins.emplace_back(parent.get(), twin);
      }
      p.parents_pqc.push_back(std::move(twin));
    }
  }
  return eco;
}

const chain_profile& ecosystem::profile(std::string_view id) const {
  for (const auto& p : profiles_) {
    if (p.id == id) {
      return p;
    }
  }
  throw config_error("unknown chain profile: " + std::string(id));
}

x509::chain ecosystem::issue(const chain_profile& profile,
                             const std::string& domain, rng& r,
                             x509::pq_profile pq) const {
  const auto& parents = pq == x509::pq_profile::pqc_full
                            ? profile.parents_pqc
                            : profile.parents;
  const leaf_profile& lp = profile.leaf;
  certificate_spec spec;
  spec.issuer = parents.empty() ? distinguished_name::cn("Unknown Issuer")
                                : parents.front()->subject();
  spec.subject = distinguished_name::cn(domain);
  // The classical key draw is consumed under every profile so a
  // record's chain keeps its structure (SANs, SCT count) across the
  // PQC sweep; both PQC stages then put ML-DSA-44 on the leaf.
  spec.key_alg = (lp.rsa_mix > 0.0 && r.chance(lp.rsa_mix))
                     ? key_algorithm::rsa_2048
                     : lp.key_alg;
  if (pq != x509::pq_profile::classical) {
    spec.key_alg = key_algorithm::mldsa_44;
  }
  const key_algorithm issuing_key = parents.empty()
                                        ? key_algorithm::rsa_2048
                                        : parents.front()->key_alg();
  spec.sig_alg = x509::signature_by(issuing_key);

  std::vector<std::string> sans;
  sans.push_back(domain);
  const auto extra = r.uniform(lp.min_sans > 0 ? lp.min_sans - 1 : 0,
                               lp.max_sans > 0 ? lp.max_sans - 1 : 0);
  for (std::uint64_t i = 0; i < extra; ++i) {
    sans.push_back(i == 0 ? "www." + domain
                          : r.ascii_label(3, 10) + "." + domain);
  }

  bytes issuer_key_id(20);
  r.fill(issuer_key_id);
  spec.extensions = {
      x509::make_basic_constraints(false),
      x509::make_key_usage(0x80),
      x509::make_ext_key_usage(true),
      x509::make_subject_key_id(r),
      x509::make_authority_key_id(issuer_key_id),
      x509::make_subject_alt_name(sans),
      x509::make_certificate_policies(
          lp.organization_validated,
          lp.lean_extensions ? "" : "http://" + lp.url_host + "/cps"),
      x509::make_authority_info_access("http://ocsp." + lp.url_host,
                                       "http://" + lp.url_host + "/ca.crt"),
  };
  if (!lp.lean_extensions) {
    spec.extensions.push_back(x509::make_crl_distribution_points(
        "http://crl." + lp.url_host + "/ca.crl"));
  }
  const std::size_t scts =
      lp.sct_count > 1 && r.chance(0.5) ? lp.sct_count - 1 : lp.sct_count;
  spec.extensions.push_back(x509::make_sct_list(scts, r));
  certificate leaf{std::move(spec), r};
  return x509::chain{std::move(leaf), parents};
}

x509::chain ecosystem::issue_other(const std::string& domain, rng& r,
                                   const other_chain_options& opt) const {
  // Long-tail CA: random identity, depth 1-4, Table 2 algorithm mixes.
  // QUIC-flavoured tails skew ECDSA and small; HTTPS-only tails skew RSA
  // and reach the 38 kB monsters of Fig. 6.
  const std::string ca_org = r.ascii_label(4, 12);
  const std::string ca_host = ca_org + ".example";

  // Table 2 non-leaf mixes: QUIC {RSA2048, RSA4096, EC256, EC384} =
  // {15.1, 22.4, 40.4, 22.1}%; HTTPS-only = {63.3, 32.1, 2.7, 1.6}%.
  static constexpr double kQuicNonLeaf[] = {0.151, 0.224, 0.404, 0.221};
  static constexpr double kHttpsNonLeaf[] = {0.633, 0.321, 0.027, 0.016};
  static constexpr key_algorithm kAlgs[] = {
      key_algorithm::rsa_2048, key_algorithm::rsa_4096,
      key_algorithm::ecdsa_p256, key_algorithm::ecdsa_p384};
  // The classical draw is always consumed so the tail hierarchy (depth,
  // names, SANs) is identical across chain profiles; pqc_full then
  // replaces the algorithms: ML-DSA-87 root, ML-DSA-65 intermediates.
  const bool pqc_full = opt.pq == x509::pq_profile::pqc_full;
  auto pick_nonleaf = [&](bool root) {
    const key_algorithm classical =
        kAlgs[r.weighted_index(opt.quic_flavor ? kQuicNonLeaf
                                               : kHttpsNonLeaf)];
    if (!pqc_full) {
      return classical;
    }
    return root ? key_algorithm::mldsa_87 : key_algorithm::mldsa_65;
  };

  // Depth distribution: mostly a single intermediate; monsters are rare
  // and deep. A "monster" event also inflates per-certificate content.
  const bool monster = r.chance(opt.quic_flavor ? 0.005 : 0.012);
  std::size_t depth;
  if (monster) {
    depth = 3 + r.uniform(0, 3);  // 3-6 parents
  } else {
    const double d = r.uniform01();
    depth = d < 0.55 ? 1 : (d < 0.9 ? 2 : 3);
  }

  std::vector<std::shared_ptr<const certificate>> parents;
  distinguished_name child_issuer;
  // Build top-down: root first, then intermediates; serve leaf-first.
  distinguished_name above = distinguished_name::org(
      "US", ca_org + " Trust Services", ca_org + " Root CA");
  key_algorithm above_key = pick_nonleaf(true);
  std::vector<std::shared_ptr<const certificate>> top_down;
  const bool include_anchor = r.chance(0.15);  // superfluous root
  if (include_anchor) {
    rng root_rng = r.fork(1);
    top_down.push_back(make_ca_cert(root_rng, above, above, above_key,
                                    above_key, ca_style::root, ca_host));
  }
  distinguished_name parent_dn = above;
  key_algorithm parent_key = above_key;
  for (std::size_t level = 0; level < depth; ++level) {
    const auto dn = distinguished_name::org(
        "US", ca_org + " Trust Services",
        ca_org + " CA " + std::to_string(level + 1));
    const key_algorithm key = pick_nonleaf(false);
    rng level_rng = r.fork(100 + level);
    auto cert = make_ca_cert(level_rng, dn, parent_dn, key, parent_key,
                             ca_style::intermediate, ca_host);
    if (monster) {
      // Monster chains in the wild carry bloated intermediates
      // (government/enterprise CAs with enormous policy statements,
      // kilobyte CPS texts and piles of embedded SCTs). Model by
      // re-issuing with oversized policy content; HTTPS-only tails are
      // allowed to grow larger than QUIC tails (Fig. 6: 38 kB vs 18 kB).
      certificate_spec spec;
      spec.subject = dn;
      spec.issuer = parent_dn;
      spec.key_alg =
          pqc_full ? key_algorithm::mldsa_65 : key_algorithm::rsa_4096;
      spec.sig_alg = x509::signature_by(
          pqc_full ? key_algorithm::mldsa_87 : key_algorithm::rsa_4096);
      const std::size_t cps_len =
          opt.quic_flavor ? 300 + level_rng.uniform(0, 500)
                          : 900 + level_rng.uniform(0, 2600);
      spec.extensions = {
          x509::make_basic_constraints(true, 0),
          x509::make_key_usage(0x86),
          x509::make_subject_key_id(level_rng),
          x509::make_certificate_policies(
              true, "http://" + ca_host + "/cps/" +
                        level_rng.ascii_label(cps_len, cps_len + 200)),
          x509::make_sct_list(3 + level_rng.uniform(0, 5), level_rng),
      };
      cert = std::make_shared<const certificate>(std::move(spec), level_rng);
    }
    top_down.push_back(std::move(cert));
    parent_dn = dn;
    parent_key = key;
  }
  child_issuer = parent_dn;

  // Serve leaf-first order: reverse of construction.
  parents.assign(top_down.rbegin(), top_down.rend());

  // Leaf algorithm, Table 2 leaf mixes: QUIC {19.2, 1.4, 78.9, 0.5}%;
  // HTTPS-only {81.4, 8.1, 7.8, 1.9}% (residuals folded into EC384).
  static constexpr double kQuicLeaf[] = {0.192, 0.014, 0.789, 0.005};
  static constexpr double kHttpsLeaf[] = {0.814, 0.081, 0.078, 0.019};
  key_algorithm leaf_key =
      kAlgs[r.weighted_index(opt.quic_flavor ? kQuicLeaf : kHttpsLeaf)];
  if (opt.pq != x509::pq_profile::classical) {
    leaf_key = key_algorithm::mldsa_44;
  }

  certificate_spec spec;
  spec.issuer = child_issuer;
  spec.subject = distinguished_name::cn(domain);
  spec.key_alg = leaf_key;
  spec.sig_alg = x509::signature_by(parent_key);
  std::vector<std::string> sans{domain, "www." + domain};
  const auto extra = r.uniform(0, monster ? 40 : 4);
  for (std::uint64_t i = 0; i < extra; ++i) {
    sans.push_back(r.ascii_label(3, 12) + "." + domain);
  }
  bytes issuer_key_id(20);
  r.fill(issuer_key_id);
  spec.extensions = {
      x509::make_basic_constraints(false),
      x509::make_key_usage(0x80),
      x509::make_ext_key_usage(true),
      x509::make_subject_key_id(r),
      x509::make_authority_key_id(issuer_key_id),
      x509::make_subject_alt_name(sans),
      x509::make_certificate_policies(false, "http://" + ca_host + "/cps"),
      x509::make_authority_info_access("http://ocsp." + ca_host,
                                       "http://" + ca_host + "/ca.crt"),
      x509::make_sct_list(1 + r.uniform(0, 2), r),
  };
  certificate leaf{std::move(spec), r};
  return x509::chain{std::move(leaf), std::move(parents)};
}

x509::chain ecosystem::issue_cruise_liner(const std::string& domain,
                                          std::size_t san_count, rng& r,
                                          x509::pq_profile pq) const {
  const chain_profile& base = profile("cpanel");
  const auto& parents =
      pq == x509::pq_profile::pqc_full ? base.parents_pqc : base.parents;
  certificate_spec spec;
  spec.issuer = parents.front()->subject();
  spec.subject = distinguished_name::cn(domain);
  spec.key_alg = pq == x509::pq_profile::classical ? key_algorithm::rsa_2048
                                                   : key_algorithm::mldsa_44;
  spec.sig_alg = x509::signature_by(parents.front()->key_alg());
  std::vector<std::string> sans;
  sans.reserve(san_count + 1);
  sans.push_back(domain);
  for (std::size_t i = 0; i < san_count; ++i) {
    // Shared-hosting SANs: unrelated customer domains on one cert.
    sans.push_back(r.ascii_label(4, 14) + "." +
                   (r.chance(0.5) ? "com" : "net"));
  }
  bytes issuer_key_id(20);
  r.fill(issuer_key_id);
  spec.extensions = {
      x509::make_basic_constraints(false),
      x509::make_key_usage(0x80),
      x509::make_ext_key_usage(true),
      x509::make_subject_key_id(r),
      x509::make_authority_key_id(issuer_key_id),
      x509::make_subject_alt_name(sans),
      x509::make_certificate_policies(false, "http://comodoca.com/cps"),
      x509::make_sct_list(3, r),
  };
  certificate leaf{std::move(spec), r};
  return x509::chain{std::move(leaf), parents};
}

bytes ecosystem::compression_dictionary() const {
  bytes dict;
  // Common DER fragments first (coldest part of the window)...
  for (const char* fragment :
       {"http://ocsp.", "http://crl.", "/cps", ".com/", ".org/", "www.",
        "Let's Encrypt", "DigiCert Inc", "Sectigo Limited",
        "Google Trust Services LLC", "Cloudflare, Inc.", "Amazon",
        "GlobalSign nv-sa", "Domain Control Validated"}) {
    append(dict, std::string_view{fragment});
  }
  for (std::size_t i = 0; i < 8; ++i) {
    append(dict, x509::well_known_log_id(i));
  }
  // ...then every named parent certificate: the hottest content, since
  // most served chains consist largely of these exact bytes.
  std::vector<const x509::certificate*> seen;
  for (const auto& p : profiles_) {
    for (const auto& parent : p.parents) {
      if (std::find(seen.begin(), seen.end(), parent.get()) == seen.end()) {
        seen.push_back(parent.get());
        append(dict, parent->der());
      }
    }
  }
  return dict;
}

}  // namespace certquic::ca
