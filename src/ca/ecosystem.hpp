// The Web CA ecosystem model: the named certificate hierarchies of
// Figure 7 plus a heavy-tailed generator for everything else.
//
// Calibration constants in this header are taken from the paper:
//  * chain shares for QUIC services (Fig. 7a, 96.5% top-10 coverage) and
//    HTTPS-only services (Fig. 7b, 72% coverage);
//  * leaf key-algorithm mixes per deployment class (Table 2);
//  * chain-size tails up to 18 kB (QUIC) / 38 kB (HTTPS-only) (Fig. 6).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "x509/chain.hpp"

namespace certquic::ca {

/// Leaf issuance parameters for one chain profile.
struct leaf_profile {
  x509::key_algorithm key_alg = x509::key_algorithm::ecdsa_p256;
  /// Weight of RSA-2048 leaves (vs `key_alg`) for profiles with mixed
  /// issuance; 0 = always `key_alg`.
  double rsa_mix = 0.0;
  std::size_t min_sans = 1;
  std::size_t max_sans = 4;
  /// Upper bound on embedded SCTs; issuance samples sct_count or
  /// sct_count-1 with equal probability (real logs vary per batch).
  std::size_t sct_count = 2;
  bool organization_validated = false;
  /// Lean issuance (Let's Encrypt style): no CRL distribution point and
  /// no CPS qualifier on the leaf.
  bool lean_extensions = false;
  /// CA operational host used in AIA/CRL/CPS URLs, e.g. "r3.o.lencr.org".
  std::string url_host;
};

/// One deployed parent-chain variant — a row of Figure 7.
struct chain_profile {
  std::string id;       // machine id, e.g. "le-r3-x1cross"
  std::string display;  // "Let's Encrypt R3 + ISRG Root X1 (DST cross)"
  /// Parent certificates in served order (leaf's issuer first).
  std::vector<std::shared_ptr<const x509::certificate>> parents;
  /// Share of QUIC services using this chain (Fig. 7a), fraction.
  double quic_share = 0.0;
  /// Share of HTTPS-only services using this chain (Fig. 7b), fraction.
  double https_share = 0.0;
  leaf_profile leaf;
  /// ML-DSA twins of `parents` (same hierarchy and served order), used
  /// when issuing under x509::pq_profile::pqc_full. Built by make()
  /// from a dedicated rng stream, so the classical parents — and every
  /// golden figure derived from them — are byte-identical with or
  /// without the PQC axis.
  std::vector<std::shared_ptr<const x509::certificate>> parents_pqc;

  /// Sum of parent DER sizes (the white boxes of Fig. 7).
  [[nodiscard]] std::size_t parent_wire_size() const;
};

/// Options for the long-tail ("other chains") generator.
struct other_chain_options {
  /// True for QUIC-flavoured tails (smaller, more ECDSA — Table 2),
  /// false for HTTPS-only flavour (larger, RSA-heavy).
  bool quic_flavor = true;
  /// Chain profile to issue under. The generator consumes the same
  /// random draws for every profile, so a record's tail chain keeps its
  /// depth, SAN mix and hierarchy across profiles — only the key and
  /// signature material changes.
  x509::pq_profile pq = x509::pq_profile::classical;
};

/// The modelled CA universe.
class ecosystem {
 public:
  /// Builds every named CA hierarchy; deterministic for a given seed.
  [[nodiscard]] static ecosystem make(std::uint64_t seed = 0xCA12);

  /// Profiles in Fig. 7a/7b row order (largest share first).
  [[nodiscard]] const std::vector<chain_profile>& profiles() const noexcept {
    return profiles_;
  }

  /// Profile lookup by id; throws config_error for unknown ids.
  [[nodiscard]] const chain_profile& profile(std::string_view id) const;

  /// Issues a leaf for `domain` under the given profile and returns the
  /// served chain (leaf + shared parents). Deterministic in `r`. The
  /// chain profile selects the PQC what-if stage: `pqc_leaf` swaps the
  /// leaf key for ML-DSA-44, `pqc_full` additionally serves the ML-DSA
  /// parent twins and post-quantum signatures.
  [[nodiscard]] x509::chain issue(
      const chain_profile& profile, const std::string& domain, rng& r,
      x509::pq_profile pq = x509::pq_profile::classical) const;

  /// Issues a chain from the long tail of small CAs: random hierarchy
  /// depth 1-4, occasionally a superfluous trust anchor, and rare
  /// monster chains reproducing the 18-38 kB tails of Fig. 6.
  [[nodiscard]] x509::chain issue_other(const std::string& domain, rng& r,
                                        const other_chain_options& opt) const;

  /// Issues a "cruise-liner" leaf (Appendix E): a SAN-heavy certificate
  /// whose SAN count follows a bounded-Pareto distribution.
  [[nodiscard]] x509::chain issue_cruise_liner(
      const std::string& domain, std::size_t san_count, rng& r,
      x509::pq_profile pq = x509::pq_profile::classical) const;

  /// Shared compression dictionary: every named parent certificate,
  /// well-known CT log ids and common OID/URL/name fragments — the role
  /// brotli's built-in dictionary plays for real chains.
  [[nodiscard]] bytes compression_dictionary() const;

 private:
  std::vector<chain_profile> profiles_;
};

}  // namespace certquic::ca
