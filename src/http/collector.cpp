#include "http/collector.hpp"

#include "util/hex.hpp"

namespace certquic::http {

std::int64_t collector::follow_redirects(std::size_t index) const {
  const auto& records = model_.records();
  std::size_t current = index;
  for (std::size_t hop = 0; hop <= kMaxRedirects; ++hop) {
    const auto& rec = records[current];
    if (!rec.serves_tls()) {
      return -1;
    }
    if (rec.redirect_to < 0 ||
        static_cast<std::size_t>(rec.redirect_to) == current) {
      return static_cast<std::int64_t>(current);
    }
    current = static_cast<std::size_t>(rec.redirect_to);
  }
  return -1;  // redirect loop / too deep
}

collection_stats collector::collect_all(const chain_sink& sink) const {
  collection_stats stats;
  const auto& records = model_.records();
  stats.names_total = records.size();

  std::unordered_set<std::size_t> visited_tls;  // record indices seen
  std::unordered_set<std::string> serials;

  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& rec = records[i];
    if (rec.dns_result != dns::outcome::a_record) {
      continue;
    }
    ++stats.names_with_a_record;
    if (rec.svc == internet::service_class::unresolved) {
      continue;
    }
    ++stats.http_reachable;  // port 80 answers for every live web host
    if (!rec.serves_tls()) {
      continue;
    }

    // Walk the redirect path, collecting every TLS name along it.
    std::size_t current = i;
    for (std::size_t hop = 0; hop <= kMaxRedirects; ++hop) {
      const auto& here = records[current];
      if (!here.serves_tls()) {
        break;
      }
      if (visited_tls.insert(current).second) {
        ++stats.names_covered;
        if (here.serves_quic()) {
          ++stats.quic_capable;
        }
        const x509::chain chain =
            model_.chain_of(here, internet::fetch_protocol::https);
        if (serials.insert(to_hex(chain.leaf().serial())).second) {
          ++stats.unique_certificates;
        }
        if (sink) {
          sink(here, chain);
        }
      }
      if (here.redirect_to < 0 ||
          static_cast<std::size_t>(here.redirect_to) == current) {
        break;
      }
      ++stats.redirects_followed;
      current = static_cast<std::size_t>(here.redirect_to);
    }
    ++stats.https_reachable;
  }
  return stats;
}

}  // namespace certquic::http
