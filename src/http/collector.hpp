// HTTPS certificate collection (§3.1): port checks, redirect following
// (HTTP 3xx and meta http-equiv), TLS-over-TCP certificate fetch.
//
// TCP itself has no amplification limit, so no byte-level simulation is
// needed here; what matters for the study is which names end up serving
// which chains, including everyone reached through redirects.
#pragma once

#include <functional>
#include <unordered_set>

#include "internet/model.hpp"

namespace certquic::http {

/// Aggregate funnel counters matching §3.1.
struct collection_stats {
  std::size_t names_total = 0;
  std::size_t names_with_a_record = 0;
  std::size_t http_reachable = 0;       // port 80
  std::size_t https_reachable = 0;      // port 443 with TLS
  std::size_t redirects_followed = 0;
  std::size_t names_covered = 0;        // incl. redirect targets
  std::size_t unique_certificates = 0;  // distinct leaf serials
  std::size_t quic_capable = 0;
};

/// Invoked for every TLS-serving name encountered (including redirect
/// targets; a record may be visited more than once via redirects — the
/// collector deduplicates).
using chain_sink = std::function<void(const internet::service_record&,
                                      const x509::chain&)>;

/// Walks the population like the paper's libcurl/libxml2 pipeline.
class collector {
 public:
  explicit collector(const internet::model& m) : model_(m) {}

  /// Follows at most this many redirect hops per name.
  static constexpr std::size_t kMaxRedirects = 10;

  /// Collects certificates for every name; `sink` may be empty.
  [[nodiscard]] collection_stats collect_all(const chain_sink& sink = {}) const;

  /// Resolves the final record index a name lands on after redirects,
  /// or -1 when the redirect chain leaves TLS or loops out.
  [[nodiscard]] std::int64_t follow_redirects(std::size_t index) const;

 private:
  const internet::model& model_;
};

}  // namespace certquic::http
