// DER (Distinguished Encoding Rules) encoder/decoder subset.
//
// Implements exactly the ASN.1 universe needed by X.509v3 certificates:
// definite-length TLV framing, INTEGER (small and big), OBJECT IDENTIFIER
// with base-128 arcs, BIT/OCTET STRING, BOOLEAN, NULL, the string types
// used in distinguished names, UTCTime and SEQUENCE/SET/context tags.
//
// Faithful DER byte layout is what makes the certificate-size analysis in
// this reproduction meaningful: every certificate in the corpus is a real
// DER byte string whose length reacts to names, keys and extensions the
// same way real certificates do.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string_view>
#include <vector>

#include "util/buffer.hpp"
#include "util/bytes.hpp"

namespace certquic::asn1 {

/// Universal class tag numbers used by X.509.
enum class tag : std::uint8_t {
  boolean = 0x01,
  integer = 0x02,
  bit_string = 0x03,
  octet_string = 0x04,
  null_value = 0x05,
  object_identifier = 0x06,
  utf8_string = 0x0c,
  printable_string = 0x13,
  ia5_string = 0x16,
  utc_time = 0x17,
  generalized_time = 0x18,
  sequence = 0x30,  // constructed
  set = 0x31,       // constructed
};

/// Object identifier as a list of arcs, e.g. {2, 5, 4, 3} for id-at-cn.
using oid = std::vector<std::uint32_t>;

/// Encodes the definite-length header for `length` content bytes.
[[nodiscard]] bytes encode_header(std::uint8_t tag_byte, std::size_t length);

/// Wraps `content` in a TLV with the given tag byte.
[[nodiscard]] bytes wrap(std::uint8_t tag_byte, bytes_view content);
[[nodiscard]] bytes wrap(tag t, bytes_view content);

/// SEQUENCE of pre-encoded elements (concatenated, then wrapped).
[[nodiscard]] bytes sequence(std::initializer_list<bytes_view> elements);
[[nodiscard]] bytes sequence(const std::vector<bytes>& elements);

/// SET OF pre-encoded elements.
[[nodiscard]] bytes set(std::initializer_list<bytes_view> elements);

/// Context-specific tag [n]; constructed if `constructed`.
[[nodiscard]] bytes context(unsigned n, bytes_view content,
                            bool constructed = true);

/// INTEGER from a signed machine integer (two's-complement minimal form).
[[nodiscard]] bytes encode_integer(std::int64_t v);

/// INTEGER from an unsigned big-endian magnitude (e.g. serial numbers,
/// RSA moduli). Prepends 0x00 when the leading bit is set so the value
/// stays positive; strips redundant leading zero octets.
[[nodiscard]] bytes encode_big_integer(bytes_view magnitude);

/// OBJECT IDENTIFIER with standard arc packing. Throws codec_error on
/// fewer than two arcs or first-arc constraints violated.
[[nodiscard]] bytes encode_oid(const oid& arcs);

/// BIT STRING with `unused_bits` trailing unused bits (0 for X.509 keys
/// and signatures).
[[nodiscard]] bytes encode_bit_string(bytes_view data,
                                      std::uint8_t unused_bits = 0);

[[nodiscard]] bytes encode_octet_string(bytes_view data);
[[nodiscard]] bytes encode_boolean(bool v);
[[nodiscard]] bytes encode_null();
[[nodiscard]] bytes encode_printable_string(std::string_view s);
[[nodiscard]] bytes encode_utf8_string(std::string_view s);
[[nodiscard]] bytes encode_ia5_string(std::string_view s);
/// UTCTime, `s` must be "YYMMDDHHMMSSZ" (13 chars).
[[nodiscard]] bytes encode_utc_time(std::string_view s);

/// A decoded TLV element; `content` views into the reader's buffer.
struct tlv {
  std::uint8_t tag_byte = 0;
  bytes_view content;

  [[nodiscard]] bool is(tag t) const noexcept {
    return tag_byte == static_cast<std::uint8_t>(t);
  }
};

/// Reads one TLV from `r`. Throws codec_error on truncated or
/// indefinite-length input (DER forbids indefinite lengths).
[[nodiscard]] tlv read_tlv(buffer_reader& r);

/// Splits a constructed element's content into its child TLVs.
[[nodiscard]] std::vector<tlv> children(const tlv& parent);

/// Decodes an INTEGER TLV content into a signed machine integer.
/// Throws codec_error if it does not fit in 64 bits.
[[nodiscard]] std::int64_t decode_integer(const tlv& t);

/// Decodes an OBJECT IDENTIFIER TLV back into arcs.
[[nodiscard]] oid decode_oid(const tlv& t);

}  // namespace certquic::asn1
