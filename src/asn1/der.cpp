#include "asn1/der.hpp"

#include "util/errors.hpp"

namespace certquic::asn1 {
namespace {

bytes concat(std::initializer_list<bytes_view> elements) {
  bytes out;
  std::size_t total = 0;
  for (const auto& e : elements) {
    total += e.size();
  }
  out.reserve(total);
  for (const auto& e : elements) {
    append(out, e);
  }
  return out;
}

bytes encode_string(tag t, std::string_view s) {
  return wrap(t, bytes_view{reinterpret_cast<const std::uint8_t*>(s.data()),
                            s.size()});
}

}  // namespace

bytes encode_header(std::uint8_t tag_byte, std::size_t length) {
  bytes out;
  out.push_back(tag_byte);
  if (length < 0x80) {
    out.push_back(static_cast<std::uint8_t>(length));
    return out;
  }
  // Long form: minimal number of length octets (DER requirement).
  bytes len_octets;
  std::size_t v = length;
  while (v > 0) {
    len_octets.push_back(static_cast<std::uint8_t>(v & 0xff));
    v >>= 8;
  }
  out.push_back(static_cast<std::uint8_t>(0x80 | len_octets.size()));
  out.insert(out.end(), len_octets.rbegin(), len_octets.rend());
  return out;
}

bytes wrap(std::uint8_t tag_byte, bytes_view content) {
  bytes out = encode_header(tag_byte, content.size());
  append(out, content);
  return out;
}

bytes wrap(tag t, bytes_view content) {
  return wrap(static_cast<std::uint8_t>(t), content);
}

bytes sequence(std::initializer_list<bytes_view> elements) {
  return wrap(tag::sequence, concat(elements));
}

bytes sequence(const std::vector<bytes>& elements) {
  bytes content;
  for (const auto& e : elements) {
    append(content, e);
  }
  return wrap(tag::sequence, content);
}

bytes set(std::initializer_list<bytes_view> elements) {
  return wrap(tag::set, concat(elements));
}

bytes context(unsigned n, bytes_view content, bool constructed) {
  if (n > 30) {
    throw codec_error("context tag > 30 not supported");
  }
  const auto tag_byte = static_cast<std::uint8_t>(
      0x80 | (constructed ? 0x20 : 0x00) | n);
  return wrap(tag_byte, content);
}

bytes encode_integer(std::int64_t v) {
  // Build the minimal two's-complement representation.
  bytes content;
  bool more = true;
  while (more) {
    const auto octet = static_cast<std::uint8_t>(v & 0xff);
    v >>= 8;
    content.insert(content.begin(), octet);
    const bool sign_bit = (octet & 0x80) != 0;
    more = !((v == 0 && !sign_bit) || (v == -1 && sign_bit));
  }
  return wrap(tag::integer, content);
}

bytes encode_big_integer(bytes_view magnitude) {
  std::size_t start = 0;
  while (start + 1 < magnitude.size() && magnitude[start] == 0) {
    ++start;
  }
  bytes content;
  if (magnitude.empty()) {
    content.push_back(0);
  } else {
    if (magnitude[start] & 0x80) {
      content.push_back(0);  // keep the value positive
    }
    content.insert(content.end(), magnitude.begin() + static_cast<long>(start),
                   magnitude.end());
  }
  return wrap(tag::integer, content);
}

bytes encode_oid(const oid& arcs) {
  if (arcs.size() < 2) {
    throw codec_error("OID needs at least two arcs");
  }
  if (arcs[0] > 2 || (arcs[0] < 2 && arcs[1] >= 40)) {
    throw codec_error("invalid OID root arcs");
  }
  bytes content;
  auto push_base128 = [&content](std::uint32_t v) {
    std::uint8_t chunks[5];
    int n = 0;
    do {
      chunks[n++] = static_cast<std::uint8_t>(v & 0x7f);
      v >>= 7;
    } while (v > 0);
    for (int i = n - 1; i > 0; --i) {
      content.push_back(static_cast<std::uint8_t>(chunks[i] | 0x80));
    }
    content.push_back(chunks[0]);
  };
  push_base128(arcs[0] * 40 + arcs[1]);
  for (std::size_t i = 2; i < arcs.size(); ++i) {
    push_base128(arcs[i]);
  }
  return wrap(tag::object_identifier, content);
}

bytes encode_bit_string(bytes_view data, std::uint8_t unused_bits) {
  if (unused_bits > 7) {
    throw codec_error("bit string unused_bits > 7");
  }
  bytes content;
  content.reserve(data.size() + 1);
  content.push_back(unused_bits);
  append(content, data);
  return wrap(tag::bit_string, content);
}

bytes encode_octet_string(bytes_view data) {
  return wrap(tag::octet_string, data);
}

bytes encode_boolean(bool v) {
  const std::uint8_t octet = v ? 0xff : 0x00;
  return wrap(tag::boolean, bytes_view{&octet, 1});
}

bytes encode_null() { return wrap(tag::null_value, bytes_view{}); }

bytes encode_printable_string(std::string_view s) {
  return encode_string(tag::printable_string, s);
}

bytes encode_utf8_string(std::string_view s) {
  return encode_string(tag::utf8_string, s);
}

bytes encode_ia5_string(std::string_view s) {
  return encode_string(tag::ia5_string, s);
}

bytes encode_utc_time(std::string_view s) {
  if (s.size() != 13 || s.back() != 'Z') {
    throw codec_error("UTCTime must be YYMMDDHHMMSSZ");
  }
  return encode_string(tag::utc_time, s);
}

tlv read_tlv(buffer_reader& r) {
  tlv out;
  out.tag_byte = r.u8();
  const std::uint8_t first_len = r.u8();
  std::size_t length = 0;
  if (first_len < 0x80) {
    length = first_len;
  } else if (first_len == 0x80) {
    throw codec_error("indefinite length is not valid DER");
  } else {
    const int n_octets = first_len & 0x7f;
    if (n_octets > 8) {
      throw codec_error("length too large");
    }
    for (int i = 0; i < n_octets; ++i) {
      length = (length << 8) | r.u8();
    }
  }
  out.content = r.raw(length);
  return out;
}

std::vector<tlv> children(const tlv& parent) {
  std::vector<tlv> out;
  buffer_reader r{parent.content};
  while (!r.empty()) {
    out.push_back(read_tlv(r));
  }
  return out;
}

std::int64_t decode_integer(const tlv& t) {
  if (!t.is(tag::integer)) {
    throw codec_error("not an INTEGER");
  }
  if (t.content.empty() || t.content.size() > 8) {
    throw codec_error("INTEGER does not fit in 64 bits");
  }
  std::int64_t v = (t.content[0] & 0x80) ? -1 : 0;
  for (const std::uint8_t b : t.content) {
    v = (v << 8) | b;
  }
  return v;
}

oid decode_oid(const tlv& t) {
  if (!t.is(tag::object_identifier)) {
    throw codec_error("not an OID");
  }
  oid arcs;
  std::size_t i = 0;
  auto read_base128 = [&]() -> std::uint32_t {
    std::uint32_t v = 0;
    while (i < t.content.size()) {
      const std::uint8_t b = t.content[i++];
      if (v >> 25 != 0) {
        // Another 7-bit group would push past 32 bits; the arc would
        // silently wrap instead of round-tripping.
        throw codec_error("OID arc exceeds 32 bits");
      }
      v = (v << 7) | (b & 0x7f);
      if (!(b & 0x80)) {
        return v;
      }
    }
    throw codec_error("truncated OID arc");
  };
  if (t.content.empty()) {
    throw codec_error("empty OID");
  }
  const std::uint32_t first = read_base128();
  if (first < 40) {
    arcs.push_back(0);
    arcs.push_back(first);
  } else if (first < 80) {
    arcs.push_back(1);
    arcs.push_back(first - 40);
  } else {
    arcs.push_back(2);
    arcs.push_back(first - 80);
  }
  while (i < t.content.size()) {
    arcs.push_back(read_base128());
  }
  return arcs;
}

}  // namespace certquic::asn1
