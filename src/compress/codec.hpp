// TLS certificate-compression algorithm presets (RFC 8879 model).
//
// The paper (§3.2, Table 1, §4.2) studies three algorithms negotiated via
// the TLS compress_certificate extension: brotli (Chromium), zlib and
// zstd (Safari/TLS-over-TCP). All three are LZ-family; our presets share
// the LZ77 engine and differ in window and shared-dictionary use, which
// reproduces their near-identical rates on certificate chains
// (73% / 74% / 72% mean in the paper).
#pragma once

#include <string>

#include "compress/lz.hpp"
#include "util/bytes.hpp"

namespace certquic::compress {

/// TLS 1.3 CertificateCompressionAlgorithm code points (RFC 8879 §3).
enum class algorithm : std::uint16_t {
  zlib = 1,
  brotli = 2,
  zstd = 3,
};

/// Human-readable algorithm name ("brotli", "zlib", "zstd").
[[nodiscard]] std::string to_string(algorithm a);

/// A configured certificate compressor.
///
/// The dictionary plays the role of brotli's built-in dictionary plus
/// ecosystem knowledge (common intermediate certificates, OID and URL
/// fragments); `ca::ecosystem::compression_dictionary()` builds one.
class codec {
 public:
  /// Creates a codec; `dictionary` may be empty (pure self-referential
  /// compression, as with plain zlib).
  explicit codec(algorithm a, bytes dictionary = {});

  [[nodiscard]] algorithm alg() const noexcept { return alg_; }
  [[nodiscard]] const bytes& dictionary() const noexcept {
    return dictionary_;
  }

  /// Compresses a certificate-chain payload.
  [[nodiscard]] bytes compress(bytes_view input) const;

  /// Decompresses; throws codec_error on malformed input.
  [[nodiscard]] bytes decompress(bytes_view data) const;

  /// Fraction of bytes saved: 1 - compressed/original (0 for empty
  /// input). This is the "compression rate" reported in Table 1.
  [[nodiscard]] double savings(bytes_view input) const;

 private:
  algorithm alg_;
  bytes dictionary_;
  lz_params params_;
};

}  // namespace certquic::compress
