#include "compress/codec.hpp"

#include "util/errors.hpp"

namespace certquic::compress {

std::string to_string(algorithm a) {
  switch (a) {
    case algorithm::zlib:
      return "zlib";
    case algorithm::brotli:
      return "brotli";
    case algorithm::zstd:
      return "zstd";
  }
  throw config_error("unknown compression algorithm");
}

codec::codec(algorithm a, bytes dictionary)
    : alg_(a), dictionary_(std::move(dictionary)) {
  switch (alg_) {
    case algorithm::brotli:
      // Large window, full shared dictionary, patient matcher.
      params_.window = 1 << 22;
      params_.max_dictionary = 1 << 22;
      params_.good_enough = 2048;
      break;
    case algorithm::zlib:
      // DEFLATE's 32 KiB window also caps usable dictionary.
      params_.window = 1 << 15;
      params_.max_dictionary = 1 << 15;
      params_.good_enough = 258;
      break;
    case algorithm::zstd:
      // Large window but a slightly less patient match search.
      params_.window = 1 << 22;
      params_.max_dictionary = 1 << 22;
      params_.good_enough = 512;
      break;
  }
}

bytes codec::compress(bytes_view input) const {
  return lz_compress(input, dictionary_, params_);
}

bytes codec::decompress(bytes_view data) const {
  // The decoder only ever sees distances within window+output, so the
  // (possibly truncated) dictionary suffix used during compression and
  // the full dictionary agree on every reachable byte.
  return lz_decompress(data, dictionary_);
}

double codec::savings(bytes_view input) const {
  if (input.empty()) {
    return 0.0;
  }
  const bytes compressed = compress(input);
  const double original = static_cast<double>(input.size());
  return 1.0 - static_cast<double>(compressed.size()) / original;
}

}  // namespace certquic::compress
