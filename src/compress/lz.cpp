#include "compress/lz.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/errors.hpp"

namespace certquic::compress {
namespace {

constexpr std::size_t kHashBits = 16;
constexpr std::size_t kHashSize = 1u << kHashBits;
constexpr std::size_t kMaxChainSteps = 64;

std::uint32_t hash4(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

std::size_t match_length(const std::uint8_t* a, const std::uint8_t* b,
                         std::size_t max_len) noexcept {
  std::size_t n = 0;
  while (n < max_len && a[n] == b[n]) {
    ++n;
  }
  return n;
}

}  // namespace

void write_varint(bytes& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t read_varint(bytes_view data, std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos >= data.size()) {
      throw codec_error("varint truncated");
    }
    const std::uint8_t b = data[pos++];
    // shift caps at 63 (ten groups): the tenth group may only carry
    // the top bit, and nothing may continue past it — otherwise a run
    // of continuation bytes would push the shift count past 63, which
    // is undefined for a 64-bit shift.
    if (shift >= 63 && (b & 0xfe) != 0) {
      throw codec_error("varint overflow");
    }
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) {
      return v;
    }
    shift += 7;
  }
}

bytes lz_compress(bytes_view input, bytes_view dictionary,
                  const lz_params& params) {
  // Work over dict || input; only input positions emit tokens.
  const std::size_t dict_len =
      std::min(dictionary.size(), params.max_dictionary);
  const bytes_view dict = dictionary.subspan(dictionary.size() - dict_len);

  bytes all;
  all.reserve(dict_len + input.size());
  append(all, dict);
  append(all, input);

  std::vector<std::int32_t> head(kHashSize, -1);
  std::vector<std::int32_t> prev(all.size(), -1);

  auto insert = [&](std::size_t pos) {
    if (pos + 4 <= all.size()) {
      const std::uint32_t h = hash4(all.data() + pos);
      prev[pos] = head[h];
      head[h] = static_cast<std::int32_t>(pos);
    }
  };
  // Pre-index the dictionary so the first input bytes can reference it.
  for (std::size_t i = 0; i < dict_len; ++i) {
    insert(i);
  }

  bytes out;
  out.reserve(input.size() / 2 + 16);
  std::size_t pos = dict_len;           // cursor in `all`
  std::size_t literal_start = dict_len; // first unemitted literal

  auto flush_literals = [&](std::size_t upto) {
    write_varint(out, upto - literal_start);
    out.insert(out.end(), all.begin() + static_cast<long>(literal_start),
               all.begin() + static_cast<long>(upto));
    literal_start = upto;
  };

  while (pos < all.size()) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    if (pos + kMinMatch <= all.size()) {
      const std::size_t max_len = all.size() - pos;
      std::int32_t candidate = head[hash4(all.data() + pos)];
      std::size_t steps = 0;
      while (candidate >= 0 && steps < kMaxChainSteps) {
        const auto cand_pos = static_cast<std::size_t>(candidate);
        const std::size_t dist = pos - cand_pos;
        if (dist > params.window) {
          break;  // chain only gets older
        }
        const std::size_t len =
            match_length(all.data() + cand_pos, all.data() + pos, max_len);
        if (len > best_len) {
          best_len = len;
          best_dist = dist;
          if (len >= params.good_enough) {
            break;
          }
        }
        candidate = prev[cand_pos];
        ++steps;
      }
    }

    if (best_len >= kMinMatch) {
      flush_literals(pos);
      write_varint(out, best_dist);
      write_varint(out, best_len);
      // Index every position covered by the match so later references
      // can land inside it.
      const std::size_t end = pos + best_len;
      while (pos < end) {
        insert(pos);
        ++pos;
      }
      literal_start = pos;
    } else {
      insert(pos);
      ++pos;
    }
  }
  if (literal_start < all.size() || out.empty()) {
    flush_literals(all.size());
  }
  return out;
}

bytes lz_decompress(bytes_view compressed, bytes_view dictionary) {
  bytes out;
  std::size_t pos = 0;
  while (pos < compressed.size()) {
    const std::uint64_t lit_len = read_varint(compressed, pos);
    if (lit_len > compressed.size() - pos) {
      throw codec_error("literal run truncated");
    }
    out.insert(out.end(), compressed.begin() + static_cast<long>(pos),
               compressed.begin() + static_cast<long>(pos + lit_len));
    pos += lit_len;
    if (pos >= compressed.size()) {
      break;  // final literal run
    }
    const std::uint64_t dist = read_varint(compressed, pos);
    const std::uint64_t len = read_varint(compressed, pos);
    if (dist == 0 || len < kMinMatch) {
      throw codec_error("invalid match token");
    }
    if (dist > out.size() + dictionary.size()) {
      throw codec_error("match distance exceeds history");
    }
    for (std::uint64_t i = 0; i < len; ++i) {
      std::uint8_t value;
      if (dist > out.size()) {
        // Reaches into the dictionary suffix.
        const std::size_t back = static_cast<std::size_t>(dist) - out.size();
        value = dictionary[dictionary.size() - back];
      } else {
        value = out[out.size() - static_cast<std::size_t>(dist)];
      }
      out.push_back(value);
    }
  }
  return out;
}

}  // namespace certquic::compress
