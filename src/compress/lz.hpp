// LZ77 compressor with external-dictionary support.
//
// This is the real compression engine behind the RFC 8879 certificate
// compression model. DER certificate chains compress well because issuer
// names, OIDs, URLs and whole intermediate certificates repeat — an LZ
// back-reference scheme over a shared dictionary captures exactly that
// redundancy, which is also what brotli/zlib/zstd exploit in practice.
//
// Token format (verified lossless by round-trip property tests):
//   repeat {
//     varint literal_len; literal bytes;
//     [ varint match_distance (>=1); varint match_len (>=kMinMatch) ]
//   }
// A final literal run with no trailing match ends the stream. Distances
// may reach back beyond the start of the input into the dictionary.
#pragma once

#include <cstddef>

#include "util/bytes.hpp"

namespace certquic::compress {

/// Minimum back-reference length worth encoding.
inline constexpr std::size_t kMinMatch = 4;

/// Tuning knobs differentiating the algorithm presets.
struct lz_params {
  /// Maximum back-reference distance (window), including dictionary.
  std::size_t window = 1 << 22;
  /// Maximum dictionary prefix considered (0 = dictionary disabled).
  std::size_t max_dictionary = 1 << 22;
  /// Match-lengths at or above this stop the search early (greedy cap).
  std::size_t good_enough = 512;
};

/// Compresses `input` against `dictionary` (may be empty).
[[nodiscard]] bytes lz_compress(bytes_view input, bytes_view dictionary,
                                const lz_params& params = {});

/// Reverses lz_compress; requires the same dictionary bytes.
/// Throws codec_error on malformed streams.
[[nodiscard]] bytes lz_decompress(bytes_view compressed, bytes_view dictionary);

/// Unsigned LEB128 used by the token stream (exposed for tests).
void write_varint(bytes& out, std::uint64_t v);
[[nodiscard]] std::uint64_t read_varint(bytes_view data, std::size_t& pos);

}  // namespace certquic::compress
