// TLS 1.3 handshake messages as carried in QUIC CRYPTO frames (RFC 8446,
// RFC 9001) plus RFC 8879 certificate compression.
//
// Message framing, extension TLVs and field widths are wire-accurate;
// cryptographic payloads (randoms, key shares, signatures, MACs) are
// size-faithful placeholders. The paper's phenomena depend only on byte
// counts, and those are exact here.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "compress/codec.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "x509/chain.hpp"

namespace certquic::tls {

/// TLS 1.3 HandshakeType code points.
enum class handshake_type : std::uint8_t {
  client_hello = 1,
  server_hello = 2,
  encrypted_extensions = 8,
  certificate = 11,
  certificate_verify = 15,
  finished = 20,
  compressed_certificate = 25,
};

/// Frames a handshake body: 1-byte type + 3-byte length + body.
[[nodiscard]] bytes frame(handshake_type type, bytes_view body);

/// Reads the type and total framed size of the first handshake message
/// in `data`. Throws codec_error on truncation.
struct frame_info {
  handshake_type type;
  std::size_t total_size;  // header + body
};
[[nodiscard]] frame_info peek_frame(bytes_view data);

/// ClientHello parameters relevant to this study.
struct client_hello_config {
  std::string server_name;
  /// Algorithms offered in compress_certificate (RFC 8879); empty =
  /// extension absent (like quicreach's stack, §3.2).
  std::vector<compress::algorithm> compression_algorithms;
};

/// Encodes a realistic ClientHello (~250-330 bytes before QUIC padding):
/// random, ciphers, SNI, ALPN h3, supported groups/versions, x25519 key
/// share, QUIC transport parameters, optional compress_certificate.
[[nodiscard]] bytes encode_client_hello(const client_hello_config& config,
                                        rng& r);

/// Parses the compression algorithms offered by a ClientHello built by
/// encode_client_hello ({} when the extension is absent).
[[nodiscard]] std::vector<compress::algorithm> parse_offered_compression(
    bytes_view client_hello_frame);

/// Encodes ServerHello: random, selected cipher, x25519 share (~123 B).
[[nodiscard]] bytes encode_server_hello(rng& r);

/// Encodes EncryptedExtensions: ALPN + QUIC transport parameters.
[[nodiscard]] bytes encode_encrypted_extensions(rng& r);

/// Encodes the Certificate message for a chain: per-certificate 3-byte
/// length + DER + empty extensions.
[[nodiscard]] bytes encode_certificate(const x509::chain& chain);

/// Encodes a CompressedCertificate (RFC 8879 §4) wrapping the chain's
/// Certificate message compressed with `codec`.
[[nodiscard]] bytes encode_compressed_certificate(
    const x509::chain& chain, const compress::codec& codec);

/// Encodes CertificateVerify with a signature sized by the leaf key.
[[nodiscard]] bytes encode_certificate_verify(x509::key_algorithm leaf_key,
                                              rng& r);

/// Encodes Finished (32-byte verify_data for SHA-256 suites).
[[nodiscard]] bytes encode_finished(rng& r);

/// The server's first flight, split by encryption level as QUIC carries
/// it: ServerHello at the Initial level, the rest at Handshake level.
struct server_flight {
  bytes server_hello;                 // Initial-level CRYPTO payload
  std::vector<bytes> handshake_msgs;  // EE, (Compressed)Cert, CV, Finished

  /// Bytes of Handshake-level CRYPTO data.
  [[nodiscard]] std::size_t handshake_crypto_size() const noexcept;
  /// Total TLS bytes across both levels.
  [[nodiscard]] std::size_t total_size() const noexcept;
};

/// Builds the server's first flight for `chain`. When `codec` is
/// non-null the certificate goes out compressed (the server picked an
/// algorithm the client offered).
[[nodiscard]] server_flight build_server_flight(
    const x509::chain& chain, const compress::codec* codec, rng& r);

}  // namespace certquic::tls
