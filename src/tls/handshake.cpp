#include "tls/handshake.hpp"

#include "util/buffer.hpp"
#include "util/errors.hpp"

namespace certquic::tls {
namespace {

// TLS extension code points used below.
constexpr std::uint16_t kExtServerName = 0;
constexpr std::uint16_t kExtSupportedGroups = 10;
constexpr std::uint16_t kExtAlpn = 16;
constexpr std::uint16_t kExtSignatureAlgorithms = 13;
constexpr std::uint16_t kExtCompressCertificate = 27;
constexpr std::uint16_t kExtSupportedVersions = 43;
constexpr std::uint16_t kExtPskModes = 45;
constexpr std::uint16_t kExtKeyShare = 51;
constexpr std::uint16_t kExtQuicTransportParams = 57;

void put_extension(buffer_writer& w, std::uint16_t type, bytes_view body) {
  w.u16(type);
  w.u16(static_cast<std::uint16_t>(body.size()));
  w.raw(body);
}

bytes random_bytes(std::size_t n, rng& r) {
  bytes out(n);
  r.fill(out);
  return out;
}

}  // namespace

bytes frame(handshake_type type, bytes_view body) {
  buffer_writer w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u24(static_cast<std::uint32_t>(body.size()));
  w.raw(body);
  return std::move(w).take();
}

frame_info peek_frame(bytes_view data) {
  buffer_reader r{data};
  const auto type = static_cast<handshake_type>(r.u8());
  const std::uint32_t len = r.u24();
  if (r.remaining() < len) {
    throw codec_error("handshake frame truncated");
  }
  return {type, 4 + static_cast<std::size_t>(len)};
}

bytes encode_client_hello(const client_hello_config& config, rng& r) {
  buffer_writer body;
  body.u16(0x0303);  // legacy_version
  body.raw(random_bytes(32, r));
  body.u8(32);  // legacy_session_id (middlebox compat)
  body.raw(random_bytes(32, r));
  // Cipher suites: the three TLS 1.3 suites.
  body.u16(6);
  body.u16(0x1301);
  body.u16(0x1302);
  body.u16(0x1303);
  body.u8(1);  // legacy_compression_methods
  body.u8(0);

  buffer_writer exts;
  {
    // server_name: list { type(1) + len(2) + host }.
    buffer_writer sni;
    sni.u16(static_cast<std::uint16_t>(config.server_name.size() + 3));
    sni.u8(0);
    sni.u16(static_cast<std::uint16_t>(config.server_name.size()));
    sni.raw(config.server_name);
    put_extension(exts, kExtServerName, sni.view());
  }
  {
    buffer_writer groups;  // x25519, secp256r1, secp384r1
    groups.u16(6);
    groups.u16(0x001d);
    groups.u16(0x0017);
    groups.u16(0x0018);
    put_extension(exts, kExtSupportedGroups, groups.view());
  }
  {
    buffer_writer alpn;  // "h3"
    alpn.u16(3);
    alpn.u8(2);
    alpn.raw(std::string_view{"h3"});
    put_extension(exts, kExtAlpn, alpn.view());
  }
  {
    buffer_writer sig_algs;
    sig_algs.u16(8);
    sig_algs.u16(0x0403);  // ecdsa_secp256r1_sha256
    sig_algs.u16(0x0804);  // rsa_pss_rsae_sha256
    sig_algs.u16(0x0401);  // rsa_pkcs1_sha256
    sig_algs.u16(0x0503);  // ecdsa_secp384r1_sha384
    put_extension(exts, kExtSignatureAlgorithms, sig_algs.view());
  }
  {
    buffer_writer versions;
    versions.u8(2);
    versions.u16(0x0304);
    put_extension(exts, kExtSupportedVersions, versions.view());
  }
  {
    buffer_writer psk;
    psk.u8(1);
    psk.u8(1);  // psk_dhe_ke
    put_extension(exts, kExtPskModes, psk.view());
  }
  {
    buffer_writer share;  // one x25519 entry
    share.u16(4 + 32);
    share.u16(0x001d);
    share.u16(32);
    share.raw(random_bytes(32, r));
    put_extension(exts, kExtKeyShare, share.view());
  }
  {
    // QUIC transport parameters: a realistic ~60-byte blob of varint
    // id/len/value entries; content does not matter for byte accounting.
    put_extension(exts, kExtQuicTransportParams, random_bytes(58, r));
  }
  if (!config.compression_algorithms.empty()) {
    buffer_writer comp;
    comp.u8(static_cast<std::uint8_t>(
        config.compression_algorithms.size() * 2));
    for (const auto alg : config.compression_algorithms) {
      comp.u16(static_cast<std::uint16_t>(alg));
    }
    put_extension(exts, kExtCompressCertificate, comp.view());
  }

  body.u16(static_cast<std::uint16_t>(exts.size()));
  body.raw(exts.view());
  return frame(handshake_type::client_hello, body.view());
}

std::vector<compress::algorithm> parse_offered_compression(
    bytes_view client_hello_frame) {
  buffer_reader r{client_hello_frame};
  const auto info = peek_frame(client_hello_frame);
  if (info.type != handshake_type::client_hello) {
    throw codec_error("not a ClientHello");
  }
  r.skip(4);       // frame header
  r.skip(2 + 32);  // version + random
  const std::uint8_t session_len = r.u8();
  r.skip(session_len);
  const std::uint16_t cipher_len = r.u16();
  r.skip(cipher_len);
  const std::uint8_t comp_len = r.u8();
  r.skip(comp_len);
  const std::uint16_t ext_total = r.u16();
  buffer_reader exts{r.raw(ext_total)};
  std::vector<compress::algorithm> out;
  while (!exts.empty()) {
    const std::uint16_t type = exts.u16();
    const std::uint16_t len = exts.u16();
    buffer_reader ext_body{exts.raw(len)};
    if (type == kExtCompressCertificate) {
      const std::uint8_t list_len = ext_body.u8();
      for (int i = 0; i < list_len / 2; ++i) {
        out.push_back(static_cast<compress::algorithm>(ext_body.u16()));
      }
    }
  }
  return out;
}

bytes encode_server_hello(rng& r) {
  buffer_writer body;
  body.u16(0x0303);
  body.raw(random_bytes(32, r));
  body.u8(32);
  body.raw(random_bytes(32, r));  // echoed legacy_session_id
  body.u16(0x1301);               // TLS_AES_128_GCM_SHA256
  body.u8(0);                     // compression
  buffer_writer exts;
  {
    buffer_writer versions;
    versions.u16(0x0304);
    put_extension(exts, kExtSupportedVersions, versions.view());
  }
  {
    buffer_writer share;
    share.u16(0x001d);
    share.u16(32);
    share.raw(random_bytes(32, r));
    put_extension(exts, kExtKeyShare, share.view());
  }
  body.u16(static_cast<std::uint16_t>(exts.size()));
  body.raw(exts.view());
  return frame(handshake_type::server_hello, body.view());
}

bytes encode_encrypted_extensions(rng& r) {
  buffer_writer exts;
  {
    buffer_writer alpn;
    alpn.u16(3);
    alpn.u8(2);
    alpn.raw(std::string_view{"h3"});
    put_extension(exts, kExtAlpn, alpn.view());
  }
  {
    // Server QUIC transport parameters (~90 bytes: includes original
    // and retry connection ids, stateless reset token, limits).
    put_extension(exts, kExtQuicTransportParams, random_bytes(94, r));
  }
  buffer_writer body;
  body.u16(static_cast<std::uint16_t>(exts.size()));
  body.raw(exts.view());
  return frame(handshake_type::encrypted_extensions, body.view());
}

bytes encode_certificate(const x509::chain& chain) {
  buffer_writer body;
  body.u8(0);  // certificate_request_context
  const auto list_len = body.reserve_u24();
  const std::size_t list_start = body.size();
  chain.for_each([&body](const x509::certificate& cert) {
    body.u24(static_cast<std::uint32_t>(cert.der().size()));
    body.raw(cert.der());
    body.u16(0);  // per-entry extensions
  });
  body.patch_u24(list_len,
                 static_cast<std::uint32_t>(body.size() - list_start));
  return frame(handshake_type::certificate, body.view());
}

bytes encode_compressed_certificate(const x509::chain& chain,
                                    const compress::codec& codec) {
  const bytes inner = encode_certificate(chain);
  const bytes compressed = codec.compress(inner);
  buffer_writer body;
  body.u16(static_cast<std::uint16_t>(codec.alg()));
  body.u24(static_cast<std::uint32_t>(inner.size()));
  body.u24(static_cast<std::uint32_t>(compressed.size()));
  body.raw(compressed);
  return frame(handshake_type::compressed_certificate, body.view());
}

bytes encode_certificate_verify(x509::key_algorithm leaf_key, rng& r) {
  buffer_writer body;
  std::size_t sig_size = 0;
  switch (leaf_key) {
    case x509::key_algorithm::rsa_2048:
      body.u16(0x0804);  // rsa_pss_rsae_sha256
      sig_size = 256;
      break;
    case x509::key_algorithm::rsa_4096:
      body.u16(0x0804);
      sig_size = 512;
      break;
    case x509::key_algorithm::ecdsa_p256:
      body.u16(0x0403);
      sig_size = 71;
      break;
    case x509::key_algorithm::ecdsa_p384:
      body.u16(0x0503);
      sig_size = 103;
      break;
    case x509::key_algorithm::mldsa_44:
    case x509::key_algorithm::mldsa_65:
    case x509::key_algorithm::mldsa_87:
      // The PQC what-if sweeps account for ML-DSA bytes on the
      // certificates themselves (x509/key.cpp); CertificateVerify
      // keeps the zero-length placeholder body the checked-in PQC
      // goldens were captured with.
      break;
  }
  body.u16(static_cast<std::uint16_t>(sig_size));
  body.raw(random_bytes(sig_size, r));
  return frame(handshake_type::certificate_verify, body.view());
}

bytes encode_finished(rng& r) {
  return frame(handshake_type::finished, random_bytes(32, r));
}

std::size_t server_flight::handshake_crypto_size() const noexcept {
  std::size_t total = 0;
  for (const auto& msg : handshake_msgs) {
    total += msg.size();
  }
  return total;
}

std::size_t server_flight::total_size() const noexcept {
  return server_hello.size() + handshake_crypto_size();
}

server_flight build_server_flight(const x509::chain& chain,
                                  const compress::codec* codec, rng& r) {
  server_flight flight;
  flight.server_hello = encode_server_hello(r);
  flight.handshake_msgs.push_back(encode_encrypted_extensions(r));
  flight.handshake_msgs.push_back(
      codec != nullptr ? encode_compressed_certificate(chain, *codec)
                       : encode_certificate(chain));
  flight.handshake_msgs.push_back(
      encode_certificate_verify(chain.leaf().key_alg(), r));
  flight.handshake_msgs.push_back(encode_finished(r));
  return flight;
}

}  // namespace certquic::tls
