// DNS resolution simulation reproducing the §3.1 funnel.
//
// The paper resolves 1M Tranco names through 8.8.8.8: 976k resolve,
// 13k SERVFAIL, 9k NXDOMAIN, ~2k time out or are REFUSED, and 866k
// return an A record. The per-name outcome here is deterministic given
// the resolver seed and the domain id.
#pragma once

#include <cstdint>
#include <string>

#include "net/address.hpp"
#include "util/rng.hpp"

namespace certquic::dns {

/// Resolution outcome classes observed in the paper's scan.
enum class outcome {
  a_record,     // usable IPv4 answer
  no_a_record,  // resolved, but no A record (CNAME dead ends, AAAA-only)
  servfail,
  nxdomain,
  timeout,
  refused,
};

[[nodiscard]] std::string to_string(outcome o);

/// Result of one lookup.
struct resolution {
  outcome result = outcome::timeout;
  net::ipv4 address;  // valid only for a_record
};

/// Outcome probabilities; defaults match §3.1 (fractions of 1M).
struct funnel_rates {
  double a_record = 0.866;
  double no_a_record = 0.110;
  double servfail = 0.013;
  double nxdomain = 0.009;
  double timeout = 0.0015;
  double refused = 0.0005;
};

/// Deterministic resolver simulation.
class resolver {
 public:
  explicit resolver(std::uint64_t seed = 0xd5d5, funnel_rates rates = {});

  /// Resolves a domain by id; the same id always yields the same
  /// outcome and address.
  [[nodiscard]] resolution resolve(std::uint64_t domain_id) const;

  [[nodiscard]] const funnel_rates& rates() const noexcept { return rates_; }

 private:
  std::uint64_t seed_;
  funnel_rates rates_;
};

}  // namespace certquic::dns
