#include "dns/resolver.hpp"

#include "util/errors.hpp"

namespace certquic::dns {

std::string to_string(outcome o) {
  switch (o) {
    case outcome::a_record:
      return "A";
    case outcome::no_a_record:
      return "resolved-no-A";
    case outcome::servfail:
      return "SERVFAIL";
    case outcome::nxdomain:
      return "NXDOMAIN";
    case outcome::timeout:
      return "timeout";
    case outcome::refused:
      return "REFUSED";
  }
  throw config_error("unknown dns outcome");
}

resolver::resolver(std::uint64_t seed, funnel_rates rates)
    : seed_(seed), rates_(rates) {}

resolution resolver::resolve(std::uint64_t domain_id) const {
  rng r{seed_ ^ (domain_id * 0x9e3779b97f4a7c15ULL)};
  const double weights[] = {rates_.a_record, rates_.no_a_record,
                            rates_.servfail, rates_.nxdomain,
                            rates_.timeout,  rates_.refused};
  const auto pick = r.weighted_index(weights);
  resolution out;
  out.result = static_cast<outcome>(pick);
  if (out.result == outcome::a_record) {
    // Synthetic unicast space: avoid 0/127/224+ first octets.
    const auto a = static_cast<std::uint8_t>(1 + r.uniform(0, 199));
    const auto b = static_cast<std::uint8_t>(r.uniform(0, 255));
    const auto c = static_cast<std::uint8_t>(r.uniform(0, 255));
    const auto d = static_cast<std::uint8_t>(1 + r.uniform(0, 253));
    out.address = net::ipv4::of(a, b, c, d);
  }
  return out;
}

}  // namespace certquic::dns
