// The longitudinal census service: repeated census epochs over an
// evolving internet::model (internet/churn.cpp), executed through the
// plan → backend → sink engine, persisted through the spill pipeline
// into an epoch_store, and reported as epoch-over-epoch deltas.
//
// Resume invariants (what the kill-and-resume tests pin down):
//  1. Epoch worlds are pure functions of (config, churn, epoch) — a
//     resumed process regenerates exactly the world the killed one
//     probed (model::at_epoch).
//  2. Shard slices are pure functions of the epoch's sample and the
//     shard count, and each slice's spill is bit-identical however
//     many threads probed it.
//  3. On entry to an epoch every shard file is classified with
//     engine::spill_probe: complete shards (matching the manifest's
//     record count and the slice's shape) are reused without
//     re-probing, truncated ones are discarded and re-run, missing
//     ones are run. The manifest is advisory; the spill footer is the
//     source of truth.
//  4. An epoch's aggregate is always produced by merging its shard
//     files in shard order — never partially from memory — so a
//     resumed epoch folds the byte-identical record stream an
//     uninterrupted run folds. The sealed digest cross-checks it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/longitudinal.hpp"
#include "engine/engine.hpp"
#include "internet/model.hpp"

namespace certquic::service {

/// One run (or resume) of the service.
struct service_options {
  /// Epoch store directory; required. Reopening an existing store
  /// resumes it (the store validates the configuration matches).
  std::string store_dir;
  std::size_t domains = 20'000;
  std::uint64_t seed = 42;
  /// 0 = census every QUIC service of each epoch's population.
  std::size_t sample = 0;
  std::size_t shards = 4;
  std::size_t initial_size = 1362;
  /// Target epoch count of the store (epochs 0..epochs-1).
  std::size_t epochs = 4;
  internet::churn_config churn{};
  /// Stop after sealing this many *new* epochs in this call (0 = run
  /// to the target). The `serve` loop uses 1 to stream per-epoch
  /// progress; the store stays resumable between calls.
  std::size_t max_epochs_per_call = 0;
  /// Crash injection for the resume tests: stop (cleanly, store
  /// resumable) before probing the (N+1)-th shard slice of this call.
  /// Reused complete shards do not count. 0 = no limit.
  std::size_t abort_after_shards = 0;
};

/// One sealed epoch's report.
struct epoch_report {
  std::uint64_t epoch = 0;
  internet::churn_summary churn{};
  std::size_t sampled = 0;        // QUIC services the epoch probed
  std::size_t shards_probed = 0;  // slices executed in this call
  std::size_t shards_reused = 0;  // complete on disk, not re-probed
  core::epoch_aggregate aggregate;
};

/// What one run_epochs call accomplished. A complete run reports every
/// epoch of the store (earlier-sealed epochs are re-merged from their
/// shards), so a resumed run's output is bit-identical to an
/// uninterrupted one.
struct service_result {
  std::vector<epoch_report> epochs;
  bool complete = false;          // the store holds all target epochs
  std::size_t probed_shards = 0;  // slices executed in this call
};

/// Runs (or resumes) the service until the store holds `opt.epochs`
/// sealed epochs or a bound (max_epochs_per_call / abort_after_shards)
/// stops it. Throws config_error on an empty store_dir or zero epochs,
/// and codec_error when a sealed epoch's re-merged stream contradicts
/// its manifest digest (on-disk corruption).
[[nodiscard]] service_result run_epochs(const service_options& opt,
                                        const engine::options& exec = {});

/// Renders the deterministic per-epoch census table plus the
/// epoch-over-epoch delta table — shared by `certquic_scan epochs`,
/// `serve` and bench/fig_epoch_deltas so their outputs stay diffable.
[[nodiscard]] std::string render_epoch_tables(const service_result& r);

}  // namespace certquic::service
