#include "service/census_service.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "engine/spill.hpp"
#include "service/epoch_store.hpp"
#include "util/errors.hpp"
#include "util/text_table.hpp"

namespace certquic::service {
namespace {

/// The one-variant QUIC census plan every epoch runs.
engine::probe_plan epoch_plan(const service_options& opt) {
  engine::probe_variant variant;
  variant.initial_size = opt.initial_size;
  return engine::probe_plan::single(std::move(variant), opt.sample);
}

/// A complete shard is reusable iff its header matches the slice shape
/// and its record count is exactly what the deterministic slice
/// produces (and the manifest checkpoint, when present, agrees).
bool reusable_shard(const engine::spill_probe_result& probe,
                    std::size_t slice_services, std::size_t variants,
                    const std::optional<std::size_t>& checkpoint) {
  const std::size_t expected_records = slice_services * variants;
  return probe.complete() && probe.sampled == slice_services &&
         probe.variants == variants && probe.records == expected_records &&
         (!checkpoint.has_value() || *checkpoint == expected_records);
}

std::string signed_str(long long v) {
  return (v >= 0 ? "+" : "") + std::to_string(v);
}

std::string signed_fixed(double v, int digits) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.*f", digits, v);
  return buf;
}

std::string quantile_cell(const stats::sample_set& s, double q,
                          int digits) {
  return s.empty() ? std::string("-") : fixed(s.quantile(q), digits);
}

}  // namespace

service_result run_epochs(const service_options& opt,
                          const engine::options& exec) {
  if (opt.store_dir.empty()) {
    throw config_error("run_epochs: store_dir must be set");
  }
  if (opt.epochs == 0) {
    throw config_error("run_epochs: epochs must be at least 1");
  }
  epoch_store store{{
      .root = opt.store_dir,
      .seed = opt.seed,
      .domains = opt.domains,
      .sample = opt.sample,
      .shards = opt.shards,
      .initial_size = opt.initial_size,
  }};
  const engine::probe_plan plan = epoch_plan(opt);

  service_result out;
  std::size_t epochs_sealed_this_call = 0;
  for (std::uint64_t e = 0; e < opt.epochs; ++e) {
    epoch_report rep;
    rep.epoch = e;
    const internet::model m = internet::model::at_epoch(
        {.domains = opt.domains, .seed = opt.seed}, opt.churn, e,
        &rep.churn);
    const engine::executor eng{m, exec};
    const std::vector<std::uint32_t> sampled = eng.sample(plan);
    rep.sampled = sampled.size();
    const std::size_t shards = std::clamp<std::size_t>(
        opt.shards, 1, std::max<std::size_t>(1, sampled.size()));
    const std::size_t per_shard =
        (std::max<std::size_t>(1, sampled.size()) + shards - 1) / shards;
    store.ensure_epoch_dir(e);

    // Shard pass: reuse complete slices, discard truncated ones,
    // (re-)run whatever is left. The spill footer — not the manifest —
    // decides completeness (resume invariant 3).
    std::vector<std::string> paths;
    paths.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      const std::string path = store.shard_path(e, s);
      paths.push_back(path);
      const std::size_t lo = std::min(sampled.size(), s * per_shard);
      const std::size_t hi = std::min(sampled.size(), lo + per_shard);
      const auto probe = engine::spill_probe(path);
      const auto checkpoint = store.shard_records(e, s);
      if (reusable_shard(probe, hi - lo, plan.variants.size(),
                         checkpoint)) {
        ++rep.shards_reused;
        if (!checkpoint.has_value()) {
          // Complete file, lost checkpoint line (kill between the
          // spill's close and the manifest append): re-seal it.
          store.note_shard(e, s, probe.records);
        }
        continue;
      }
      if (opt.abort_after_shards != 0 &&
          out.probed_shards >= opt.abort_after_shards) {
        // Injected crash point: leave the store as a kill here would.
        return out;
      }
      if (probe.state != engine::spill_state::missing) {
        std::error_code ec;
        std::filesystem::remove(path, ec);
      }
      const std::vector<std::uint32_t> slice(sampled.begin() + lo,
                                             sampled.begin() + hi);
      engine::spill_sink sink{path};
      eng.run(plan, slice, sink);
      store.note_shard(e, s, sink.records_written());
      ++rep.shards_probed;
      ++out.probed_shards;
    }

    // The epoch aggregate always comes from the shard merge (resume
    // invariant 4): a resumed epoch folds the byte-identical stream an
    // uninterrupted run folds.
    core::epoch_aggregate_sink agg{rep.aggregate};
    const engine::spill_merge merge{m, plan};
    merge.replay(paths, agg);

    if (const auto sealed = store.epoch_done(e)) {
      if (sealed->records != rep.aggregate.records ||
          sealed->digest != rep.aggregate.stream_digest) {
        throw codec_error(
            "run_epochs: epoch " + std::to_string(e) +
            " re-merged stream contradicts its manifest checkpoint in " +
            store.manifest_path() +
            " — the store is corrupted; use a fresh directory");
      }
    } else {
      store.note_epoch_done(e, rep.aggregate.records,
                            rep.aggregate.stream_digest);
      ++epochs_sealed_this_call;
    }
    out.epochs.push_back(std::move(rep));

    if (opt.max_epochs_per_call != 0 &&
        epochs_sealed_this_call >= opt.max_epochs_per_call &&
        e + 1 < opt.epochs) {
      return out;
    }
  }
  out.complete = true;
  return out;
}

std::string render_epoch_tables(const service_result& r) {
  std::string out;
  text_table census({"epoch", "sampled", "Ampl", "Multi", "RETRY", "1-RTT",
                     "unreach", "ampl-med", "cert-med[B]", "churn"});
  for (const epoch_report& rep : r.epochs) {
    const core::epoch_aggregate& a = rep.aggregate;
    census.add_row(
        {std::to_string(rep.epoch), std::to_string(rep.sampled),
         std::to_string(a.count(scan::handshake_class::amplification)),
         std::to_string(a.count(scan::handshake_class::multi_rtt)),
         std::to_string(a.count(scan::handshake_class::retry)),
         std::to_string(a.count(scan::handshake_class::one_rtt)),
         std::to_string(a.count(scan::handshake_class::unreachable)),
         quantile_cell(a.first_burst_amplification, 0.5, 2),
         quantile_cell(a.certificate_msg_sizes, 0.5, 0),
         std::to_string(rep.churn.total())});
  }
  out += census.render();

  if (r.epochs.size() > 1) {
    out += "\nepoch-over-epoch deltas\n";
    text_table deltas({"epoch", "dAmpl", "dMulti", "dRETRY", "d1-RTT",
                       "dunreach", "d-ampl-med", "d-cert-med", "key-rot",
                       "chain-mig", "+h3", "-h3", "arrive", "depart"});
    for (std::size_t i = 1; i < r.epochs.size(); ++i) {
      const epoch_report& prev = r.epochs[i - 1];
      const epoch_report& cur = r.epochs[i];
      const core::epoch_delta d =
          core::delta_between(prev.aggregate, cur.aggregate);
      deltas.add_row(
          {std::to_string(cur.epoch),
           signed_str(d.class_shift(scan::handshake_class::amplification)),
           signed_str(d.class_shift(scan::handshake_class::multi_rtt)),
           signed_str(d.class_shift(scan::handshake_class::retry)),
           signed_str(d.class_shift(scan::handshake_class::one_rtt)),
           signed_str(d.class_shift(scan::handshake_class::unreachable)),
           signed_fixed(d.amplification_median_delta, 3),
           signed_fixed(d.certificate_median_delta, 0),
           std::to_string(cur.churn.key_rotations),
           std::to_string(cur.churn.chain_migrations),
           std::to_string(cur.churn.alpn_gains),
           std::to_string(cur.churn.alpn_losses),
           std::to_string(cur.churn.arrivals),
           std::to_string(cur.churn.departures)});
    }
    out += deltas.render();
  }
  return out;
}

}  // namespace certquic::service
