// On-disk state of the longitudinal census service: one store directory
// holds a MANIFEST plus one sub-directory of spill shards per epoch.
//
// Layout:
//   <root>/MANIFEST
//   <root>/epoch_0000/shard_0000.spill ... shard_<K-1>.spill
//   <root>/epoch_0001/...
//
// MANIFEST format (line-delimited text, append-only after the header):
//   certquic-epochs v1 seed <S> domains <D> sample <N> shards <K> initial <B>
//   shard <epoch> <shard> <records>
//   epoch <epoch> done <records> <digest-hex16>
//   ...
// The header pins the run configuration; opening a store under a
// different configuration throws config_error (silently mixing two
// populations in one store would corrupt every delta). `shard` lines
// are appended (and flushed) after each slice completes; `epoch` lines
// seal an epoch with its record count and order-sensitive stream
// digest.
//
// Crash robustness: the manifest is an advisory checkpoint, not the
// source of truth — shard completeness is always re-verified against
// the spill footer (engine::spill_probe) on resume. A process killed
// mid-append can leave one partial final line; the loader tolerates
// (drops) exactly that, and throws codec_error on any other malformed
// line.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>

namespace certquic::service {

/// The configuration a store is pinned to.
struct store_config {
  std::string root;
  std::uint64_t seed = 42;
  std::size_t domains = 0;
  std::size_t sample = 0;  // 0 = every QUIC service
  std::size_t shards = 0;
  std::size_t initial_size = 0;
};

/// A sealed epoch's checkpoint line.
struct epoch_checkpoint {
  std::size_t records = 0;
  std::uint64_t digest = 0;
};

class epoch_store {
 public:
  /// Opens (or creates) the store at cfg.root. A fresh directory gets
  /// a new manifest; an existing manifest is loaded and validated
  /// against cfg (config_error on mismatch, codec_error on a manifest
  /// that is malformed beyond the tolerated partial final line).
  explicit epoch_store(store_config cfg);

  [[nodiscard]] const store_config& config() const noexcept { return cfg_; }
  [[nodiscard]] const std::string& manifest_path() const noexcept {
    return manifest_;
  }

  /// Paths. ensure_epoch_dir creates the epoch's shard directory.
  [[nodiscard]] std::string epoch_dir(std::uint64_t epoch) const;
  [[nodiscard]] std::string shard_path(std::uint64_t epoch,
                                       std::size_t shard) const;
  void ensure_epoch_dir(std::uint64_t epoch) const;

  /// Checkpoint appends; both flush before returning so a kill right
  /// after a shard completes cannot lose the line.
  void note_shard(std::uint64_t epoch, std::size_t shard,
                  std::size_t records);
  void note_epoch_done(std::uint64_t epoch, std::size_t records,
                       std::uint64_t digest);

  /// Loaded checkpoint state.
  [[nodiscard]] std::optional<std::size_t> shard_records(
      std::uint64_t epoch, std::size_t shard) const;
  [[nodiscard]] std::optional<epoch_checkpoint> epoch_done(
      std::uint64_t epoch) const;

 private:
  void write_header();
  void load();
  void append_line(const std::string& line);

  store_config cfg_;
  std::string manifest_;
  std::map<std::pair<std::uint64_t, std::size_t>, std::size_t> shards_;
  std::map<std::uint64_t, epoch_checkpoint> done_;
};

}  // namespace certquic::service
