#include "service/epoch_store.hpp"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/errors.hpp"

namespace certquic::service {
namespace {

constexpr const char* kMagic = "certquic-epochs";
constexpr const char* kVersion = "v1";

std::string epoch_dir_name(std::uint64_t epoch) {
  char name[32];
  std::snprintf(name, sizeof name, "epoch_%04llu",
                static_cast<unsigned long long>(epoch));
  return name;
}

std::string shard_file_name(std::size_t shard) {
  char name[32];
  std::snprintf(name, sizeof name, "shard_%04zu.spill", shard);
  return name;
}

void check_field(const char* field, std::uint64_t manifest_value,
                 std::uint64_t requested, const std::string& path) {
  if (manifest_value != requested) {
    throw config_error(
        "epoch_store: " + path + " was created with " + field + " " +
        std::to_string(manifest_value) + ", reopened with " +
        std::to_string(requested) +
        " — one store holds one run configuration; use a fresh directory");
  }
}

}  // namespace

epoch_store::epoch_store(store_config cfg) : cfg_(std::move(cfg)) {
  if (cfg_.root.empty()) {
    throw config_error("epoch_store: store root directory must be set");
  }
  std::error_code ec;
  std::filesystem::create_directories(cfg_.root, ec);
  if (ec) {
    throw config_error("epoch_store: cannot create " + cfg_.root + ": " +
                       ec.message());
  }
  manifest_ = (std::filesystem::path(cfg_.root) / "MANIFEST").string();
  if (std::filesystem::exists(manifest_)) {
    load();
  } else {
    write_header();
  }
}

void epoch_store::write_header() {
  std::FILE* f = std::fopen(manifest_.c_str(), "w");
  if (f == nullptr) {
    throw config_error("epoch_store: cannot write " + manifest_);
  }
  std::fprintf(f, "%s %s seed %" PRIu64 " domains %zu sample %zu shards "
               "%zu initial %zu\n",
               kMagic, kVersion, cfg_.seed, cfg_.domains, cfg_.sample,
               cfg_.shards, cfg_.initial_size);
  const bool failed = std::ferror(f) != 0;
  if (std::fclose(f) != 0 || failed) {
    throw config_error("epoch_store: I/O error writing " + manifest_);
  }
}

void epoch_store::load() {
  std::ifstream in{manifest_};
  if (!in) {
    throw config_error("epoch_store: cannot read " + manifest_);
  }
  std::string header;
  if (!std::getline(in, header)) {
    throw codec_error("epoch_store: empty manifest " + manifest_);
  }
  {
    std::istringstream fields{header};
    std::string magic;
    std::string version;
    std::string kw_seed;
    std::string kw_domains;
    std::string kw_sample;
    std::string kw_shards;
    std::string kw_initial;
    std::uint64_t seed = 0;
    std::size_t domains = 0;
    std::size_t sample = 0;
    std::size_t shards = 0;
    std::size_t initial = 0;
    fields >> magic >> version >> kw_seed >> seed >> kw_domains >>
        domains >> kw_sample >> sample >> kw_shards >> shards >>
        kw_initial >> initial;
    if (!fields || magic != kMagic || version != kVersion ||
        kw_seed != "seed" || kw_domains != "domains" ||
        kw_sample != "sample" || kw_shards != "shards" ||
        kw_initial != "initial") {
      throw codec_error("epoch_store: not a " + std::string(kVersion) +
                        " epoch manifest: " + manifest_);
    }
    check_field("seed", seed, cfg_.seed, manifest_);
    check_field("domains", domains, cfg_.domains, manifest_);
    check_field("sample", sample, cfg_.sample, manifest_);
    check_field("shards", shards, cfg_.shards, manifest_);
    check_field("initial", initial, cfg_.initial_size, manifest_);
  }

  std::string line;
  while (std::getline(in, line)) {
    if (in.eof()) {
      // The final line lacks a trailing '\n': a kill mid-append. Even
      // if its prefix happens to parse (a cut digit or digest is still
      // valid syntax), the checkpoint is untrustworthy — drop it. The
      // spill footers re-derive it (and resume re-seals the epoch).
      break;
    }
    if (line.empty()) {
      continue;
    }
    std::istringstream fields{line};
    std::string tag;
    fields >> tag;
    bool parsed = false;
    if (tag == "shard") {
      std::uint64_t epoch = 0;
      std::size_t shard = 0;
      std::size_t records = 0;
      fields >> epoch >> shard >> records;
      if (fields) {
        shards_[{epoch, shard}] = records;
        parsed = true;
      }
    } else if (tag == "epoch") {
      std::uint64_t epoch = 0;
      std::string kw_done;
      std::size_t records = 0;
      std::string digest_hex;
      fields >> epoch >> kw_done >> records >> digest_hex;
      std::uint64_t digest = 0;
      if (fields && kw_done == "done" &&
          std::sscanf(digest_hex.c_str(), "%" SCNx64, &digest) == 1) {
        done_[epoch] = epoch_checkpoint{records, digest};
        parsed = true;
      }
    }
    if (!parsed) {
      throw codec_error("epoch_store: malformed manifest line in " +
                        manifest_ + ": " + line);
    }
  }
}

std::string epoch_store::epoch_dir(std::uint64_t epoch) const {
  return (std::filesystem::path(cfg_.root) / epoch_dir_name(epoch))
      .string();
}

std::string epoch_store::shard_path(std::uint64_t epoch,
                                    std::size_t shard) const {
  return (std::filesystem::path(cfg_.root) / epoch_dir_name(epoch) /
          shard_file_name(shard))
      .string();
}

void epoch_store::ensure_epoch_dir(std::uint64_t epoch) const {
  std::error_code ec;
  std::filesystem::create_directories(epoch_dir(epoch), ec);
  if (ec) {
    throw config_error("epoch_store: cannot create " + epoch_dir(epoch) +
                       ": " + ec.message());
  }
}

void epoch_store::append_line(const std::string& line) {
  std::FILE* f = std::fopen(manifest_.c_str(), "a");
  if (f == nullptr) {
    throw config_error("epoch_store: cannot append to " + manifest_);
  }
  std::fputs(line.c_str(), f);
  std::fputc('\n', f);
  const bool failed = std::fflush(f) != 0 || std::ferror(f) != 0;
  if (std::fclose(f) != 0 || failed) {
    throw config_error("epoch_store: I/O error appending to " + manifest_);
  }
}

void epoch_store::note_shard(std::uint64_t epoch, std::size_t shard,
                             std::size_t records) {
  append_line("shard " + std::to_string(epoch) + " " +
              std::to_string(shard) + " " + std::to_string(records));
  shards_[{epoch, shard}] = records;
}

void epoch_store::note_epoch_done(std::uint64_t epoch, std::size_t records,
                                  std::uint64_t digest) {
  char hex[24];
  std::snprintf(hex, sizeof hex, "%016" PRIx64, digest);
  append_line("epoch " + std::to_string(epoch) + " done " +
              std::to_string(records) + " " + hex);
  done_[epoch] = epoch_checkpoint{records, digest};
}

std::optional<std::size_t> epoch_store::shard_records(
    std::uint64_t epoch, std::size_t shard) const {
  const auto it = shards_.find({epoch, shard});
  if (it == shards_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::optional<epoch_checkpoint> epoch_store::epoch_done(
    std::uint64_t epoch) const {
  const auto it = done_.find(epoch);
  if (it == done_.end()) {
    return std::nullopt;
  }
  return it->second;
}

}  // namespace certquic::service
