#include "scan/telescope.hpp"

#include "util/errors.hpp"
#include "util/hex.hpp"

namespace certquic::scan {

telescope::telescope(net::simulator& sim, net::ipv4 base)
    : sim_(sim), base_(base.slash24()) {}

telescope::~telescope() {
  for (const auto& sensor : sensors_) {
    sim_.detach(sensor);
  }
}

net::endpoint_id telescope::allocate_sensor() {
  if (next_host_ == 0xff) {
    next_host_ = 1;
    ++next_port_;
  }
  const net::endpoint_id sensor{
      net::ipv4{base_.value | next_host_++}, next_port_};
  sensors_.push_back(sensor);
  sim_.attach(sensor, [this](const net::datagram& d) { on_datagram(d); });
  return sensor;
}

void telescope::map_prefix(net::ipv4 prefix, std::string provider) {
  prefixes_[prefix.slash24().value] = std::move(provider);
}

void telescope::on_datagram(const net::datagram& d) {
  ++datagrams_;
  std::string provider = "unknown";
  const auto it = prefixes_.find(d.src.ip.slash24().value);
  if (it != prefixes_.end()) {
    provider = it->second;
  }
  std::string scid_hex = "(unparsed)";
  try {
    const auto packets = quic::parse_datagram(d.payload);
    if (!packets.empty()) {
      scid_hex = to_hex(packets.front().scid);
    }
  } catch (const codec_error&) {
    // keep the sentinel; bytes still count
  }
  const auto account = [&](backscatter_session& session) {
    if (session.datagrams == 0) {
      session.provider = provider;
      session.scid_hex = scid_hex;
      session.first_seen = sim_.now();
    }
    session.last_seen = sim_.now();
    session.bytes += d.payload.size();
    ++session.datagrams;
  };
  account(sessions_[{provider, scid_hex}]);
  // Per-sensor attribution: d.dst is the sensor the backscatter landed
  // on, which identifies the spoofed session that elicited it.
  account(by_sensor_[d.dst]);
}

backscatter_session telescope::observed_at(
    const net::endpoint_id& sensor) const {
  const auto it = by_sensor_.find(sensor);
  return it == by_sensor_.end() ? backscatter_session{} : it->second;
}

std::vector<backscatter_session> telescope::sessions() const {
  std::vector<backscatter_session> out;
  out.reserve(sessions_.size());
  for (const auto& [key, session] : sessions_) {
    out.push_back(session);
  }
  return out;
}

}  // namespace certquic::scan
