// quicreach-equivalent scanner (§3.2): performs one complete handshake
// per probe, with configurable Initial size, and classifies the result.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "internet/chain_cache.hpp"
#include "internet/model.hpp"
#include "net/simulator.hpp"
#include "net/time.hpp"
#include "scan/classify.hpp"

namespace certquic::scan {

/// One probe's parameters.
struct probe_options {
  std::size_t initial_size = 1362;
  /// Algorithms offered via compress_certificate; quicreach's stack
  /// offers none (§3.2) — the compression probe offers all three.
  std::vector<compress::algorithm> offer_compression{};
  /// QScanner mode: retain the raw certificate message.
  bool capture_certificate = false;
  /// Chain profile the probed server materializes its certificates
  /// under — the server-side PQC what-if axis. `classical` reproduces
  /// today's Internet (and every golden figure).
  x509::pq_profile chain_profile = x509::pq_profile::classical;
  /// False imitates an adversary / ZMap probe: never acknowledge.
  bool send_acks = true;
  /// Delay before acknowledging a burst; 0 is the instant-ACK client
  /// variant ("ReACKed QUICer"). Ignored when send_acks is false.
  net::duration ack_delay = net::milliseconds(1);
  /// Observation deadline; unset keeps the client default.
  std::optional<net::duration> timeout{};
  /// Non-zero replaces the record-derived simulator seeding with an
  /// engine-supplied per-probe seed (engine::probe_seed); 0 preserves
  /// the historical seeds the golden figures are captured under.
  std::uint64_t seed_override = 0;
  /// Network regime both directions of the probe run under. The
  /// default ("ideal": 20 ms RTT, no loss, no bandwidth cap) is
  /// exactly the historical simulator setup, so existing plans and
  /// goldens are unchanged.
  net::network_condition network{};
  /// Request one application object after the handshake and time the
  /// first response byte (probe_result::ttfb). Off by default — the
  /// extra exchange perturbs byte totals that size-domain goldens pin.
  bool measure_ttfb = false;
};

/// One probe's result.
struct probe_result {
  handshake_class cls = handshake_class::unreachable;
  quic::observation obs;
  /// Handshake timeline: first Initial sent → first application byte
  /// received. 0 when the probe did not measure TTFB (measure_ttfb
  /// off) or never saw an application byte (failed/lossy exchange).
  net::duration ttfb = 0;
};

/// Stateless prober over a synthetic-Internet model. Each probe runs in
/// a fresh simulator, mirroring the paper's independent handshakes
/// (which pause 30 minutes between same-service probes).
class reach {
 public:
  /// With a chain_cache, repeat visits of the same service reuse the
  /// materialized chain instead of re-issuing it (the cache is pure
  /// memoization: probe results are bit-identical either way).
  explicit reach(const internet::model& m,
                 const internet::chain_cache* cache = nullptr)
      : model_(m), cache_(cache) {}

  /// Probes one QUIC service. Throws config_error when the record does
  /// not serve QUIC.
  [[nodiscard]] probe_result probe(const internet::service_record& rec,
                                   const probe_options& opt) const;

 private:
  const internet::model& model_;
  const internet::chain_cache* cache_ = nullptr;
};

}  // namespace certquic::scan
