#include "scan/zmap.hpp"

#include "quic/server.hpp"

namespace certquic::scan {

zmap_result zmap_probe(x509::chain chain,
                       const quic::server_behavior& behavior,
                       std::size_t initial_size, net::duration listen_for,
                       std::uint64_t seed) {
  net::simulator sim{seed};
  const net::endpoint_id server_ep{net::ipv4::of(198, 51, 100, 1), 443};
  const net::endpoint_id prober_ep{net::ipv4::of(10, 98, 0, 1), 61000};

  quic::server srv{sim, server_ep, std::move(chain), behavior, {}, seed ^ 1};
  quic::client_config config;
  config.initial_size = initial_size;
  config.send_acks = false;
  config.timeout = listen_for;
  quic::client cli{sim, prober_ep, server_ep, std::move(config), seed ^ 2};
  cli.start();
  sim.run();

  const quic::observation& obs = cli.result();
  zmap_result out;
  out.responded = obs.response_received;
  out.bytes_sent = obs.bytes_sent_first_flight;
  out.bytes_received = obs.bytes_received_total;
  out.server_datagrams = obs.server_datagrams;
  out.amplification = obs.total_amplification();
  // Span between the first and last backscatter datagram — the
  // "session duration" of §4.3 (Meta median ~51 s, max ~206 s).
  out.backscatter_duration =
      obs.last_receive_time > obs.first_receive_time
          ? obs.last_receive_time - obs.first_receive_time
          : 0;
  return out;
}

}  // namespace certquic::scan
