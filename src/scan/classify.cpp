#include "scan/classify.hpp"

#include "util/errors.hpp"

namespace certquic::scan {

std::string to_string(handshake_class c) {
  switch (c) {
    case handshake_class::one_rtt:
      return "1-RTT";
    case handshake_class::retry:
      return "RETRY";
    case handshake_class::multi_rtt:
      return "Multi-RTT";
    case handshake_class::amplification:
      return "Amplification";
    case handshake_class::unreachable:
      return "unreachable";
  }
  throw config_error("unknown handshake_class");
}

handshake_class classify(const quic::observation& obs) {
  if (!obs.response_received) {
    return handshake_class::unreachable;
  }
  if (obs.retry_seen) {
    return handshake_class::retry;
  }
  if (!obs.handshake_complete) {
    return handshake_class::unreachable;
  }
  if (obs.acks_before_complete == 0) {
    // Completed within a single round trip; compliant only if the
    // server stayed within 3x of the client's first flight.
    return obs.bytes_received_first_burst <=
                   3 * obs.bytes_sent_first_flight
               ? handshake_class::one_rtt
               : handshake_class::amplification;
  }
  return handshake_class::multi_rtt;
}

}  // namespace certquic::scan
