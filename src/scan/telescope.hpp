// Network-telescope backscatter collector (§3.2/§4.3): owns a block of
// unused addresses; when attackers spoof sources from that block, the
// victims' inbound traffic — the servers' amplified responses — arrives
// here. Sessions are keyed by (provider, source connection id), exactly
// as in the paper's analysis.
#pragma once

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/simulator.hpp"
#include "quic/packet.hpp"

namespace certquic::scan {

/// One backscatter session (unique provider + SCID).
struct backscatter_session {
  std::string provider;
  std::string scid_hex;
  std::size_t bytes = 0;
  std::size_t datagrams = 0;
  net::time_point first_seen = 0;
  net::time_point last_seen = 0;

  [[nodiscard]] net::duration duration() const noexcept {
    return last_seen - first_seen;
  }
};

/// A passive telescope attached to a simulator.
class telescope {
 public:
  /// Claims sensors inside `base`/24, ports drawn sequentially.
  telescope(net::simulator& sim, net::ipv4 base);
  ~telescope();

  telescope(const telescope&) = delete;
  telescope& operator=(const telescope&) = delete;

  /// Allocates the next sensor address for an attacker to spoof.
  [[nodiscard]] net::endpoint_id allocate_sensor();

  /// Maps a /24 server prefix to a provider label for grouping.
  void map_prefix(net::ipv4 prefix, std::string provider);

  /// All sessions observed so far.
  [[nodiscard]] std::vector<backscatter_session> sessions() const;

  /// Everything that arrived at one sensor address. Each spoofed
  /// session owns exactly one sensor, so this is the per-session view
  /// the engine's backscatter backend streams out; an untouched sensor
  /// yields an empty session (datagrams == 0).
  [[nodiscard]] backscatter_session observed_at(
      const net::endpoint_id& sensor) const;

  [[nodiscard]] std::size_t datagrams_seen() const noexcept {
    return datagrams_;
  }

 private:
  void on_datagram(const net::datagram& d);

  net::simulator& sim_;
  net::ipv4 base_;
  std::uint16_t next_port_ = 20000;
  std::uint8_t next_host_ = 1;
  std::vector<net::endpoint_id> sensors_;
  std::map<std::uint32_t, std::string> prefixes_;  // /24 -> provider
  std::map<std::pair<std::string, std::string>, backscatter_session>
      sessions_;
  std::unordered_map<net::endpoint_id, backscatter_session> by_sensor_;
  std::size_t datagrams_ = 0;
};

}  // namespace certquic::scan
