// Handshake classification (§3.2): maps one observed handshake to the
// paper's four groups (plus unreachable).
#pragma once

#include <string>

#include "quic/client.hpp"

namespace certquic::scan {

/// The §3.2 handshake groups.
enum class handshake_class {
  one_rtt,        // complete in 1 RTT, within the amplification limit
  retry,          // server demanded address validation first
  multi_rtt,      // complete but needed extra round trips
  amplification,  // complete in 1 RTT but limit exceeded (non-compliant)
  unreachable,    // no usable response
};

[[nodiscard]] std::string to_string(handshake_class c);

/// Classifies a finished observation.
[[nodiscard]] handshake_class classify(const quic::observation& obs);

}  // namespace certquic::scan
