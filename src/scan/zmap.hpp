// ZMap-style adversary imitation (§3.2/§4.3): sends a single Initial,
// never acknowledges, and measures everything the server sends back
// (including PTO retransmissions).
#pragma once

#include "internet/model.hpp"
#include "net/simulator.hpp"
#include "quic/behavior.hpp"
#include "quic/client.hpp"
#include "x509/chain.hpp"

namespace certquic::scan {

/// Result of one silent probe.
struct zmap_result {
  bool responded = false;
  std::size_t bytes_sent = 0;
  std::size_t bytes_received = 0;
  std::size_t server_datagrams = 0;
  double amplification = 0.0;
  /// Wall-clock span between first and last server datagram.
  net::duration backscatter_duration = 0;
};

/// Probes an arbitrary server endpoint with one unacknowledged Initial
/// of `initial_size` bytes and listens for `listen_for`.
[[nodiscard]] zmap_result zmap_probe(x509::chain chain,
                                     const quic::server_behavior& behavior,
                                     std::size_t initial_size,
                                     net::duration listen_for,
                                     std::uint64_t seed);

}  // namespace certquic::scan
