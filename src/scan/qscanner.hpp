// QScanner-equivalent (§3.2): fetches the TLS certificate chain over
// QUIC and parses the delivered DER certificates.
#pragma once

#include <string>
#include <vector>

#include "internet/model.hpp"
#include "scan/reach.hpp"

namespace certquic::scan {

/// Summary of one certificate delivered over QUIC.
struct fetched_certificate {
  std::string serial_hex;
  std::size_t der_size = 0;
};

/// Result of one QUIC certificate fetch.
struct qscan_result {
  bool ok = false;
  std::vector<fetched_certificate> certificates;  // leaf first
  std::size_t chain_wire_size = 0;                // sum of DER sizes
};

/// Certificate scanner over QUIC.
class qscanner {
 public:
  explicit qscanner(const internet::model& m) : reach_(m) {}

  /// Fetches and parses the chain served over QUIC.
  [[nodiscard]] qscan_result fetch(const internet::service_record& rec) const;

  /// Parses a captured Certificate message out of a finished probe
  /// observation (capture_certificate mode). Lets engine-driven scans
  /// reuse the probe result instead of re-running the handshake.
  [[nodiscard]] static qscan_result parse(const quic::observation& obs);

  /// Compares the leaf served over QUIC against the one served over
  /// HTTPS (the §3.2 sanitization: 96.7% identical).
  [[nodiscard]] bool leaf_matches_https(const internet::model& m,
                                        const internet::service_record& rec,
                                        const qscan_result& fetched) const;

 private:
  reach reach_;
};

}  // namespace certquic::scan
