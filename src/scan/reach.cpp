#include "scan/reach.hpp"

#include "net/simulator.hpp"
#include "quic/client.hpp"
#include "quic/server.hpp"
#include "util/errors.hpp"

namespace certquic::scan {

probe_result reach::probe(const internet::service_record& rec,
                          const probe_options& opt) const {
  if (!rec.serves_quic()) {
    throw config_error("reach::probe on non-QUIC service " + rec.domain);
  }
  const std::uint64_t seed =
      opt.seed_override != 0 ? opt.seed_override : rec.seed;
  net::simulator sim{seed ^ 0x5ca7};

  const net::endpoint_id server_ep{rec.address, 443};
  const net::endpoint_id client_ep{net::ipv4::of(10, 99, 0, 1), 40443};

  // Forward path: the encapsulating load balancer (if any) eats into
  // the MTU in front of the server (§4.1). Both directions then share
  // the probe's network condition (delay/loss/bandwidth); the default
  // condition reproduces the historical 10 ms-each-way setup exactly.
  net::path_config to_server;
  to_server.encapsulation_overhead = rec.lb_overhead;
  opt.network.apply_to(to_server);
  sim.set_path_to(server_ep, to_server);
  net::path_config to_client;
  opt.network.apply_to(to_client);
  to_client.one_way_delay = opt.network.rtt - opt.network.rtt / 2;
  sim.set_path_to(client_ep, to_client);

  quic::server srv{sim,
                   server_ep,
                   internet::fetch_chain(model_, cache_, rec,
                                         internet::fetch_protocol::quic,
                                         opt.chain_profile),
                   model_.behavior_of(rec),
                   model_.compression_dictionary(),
                   seed ^ 0x5e4};

  quic::client_config config;
  config.initial_size = opt.initial_size;
  config.offer_compression = opt.offer_compression;
  config.sni = rec.domain;
  config.capture_certificate = opt.capture_certificate;
  config.send_acks = opt.send_acks;
  config.ack_delay = opt.ack_delay;
  config.fetch_app_data = opt.measure_ttfb;
  if (opt.timeout) {
    config.timeout = *opt.timeout;
  }
  quic::client cli{sim, client_ep, server_ep, std::move(config),
                   seed ^ 0xC11};
  cli.start();
  sim.run();

  probe_result out;
  out.obs = cli.result();
  out.cls = classify(out.obs);
  if (out.obs.first_app_byte_time != 0) {
    out.ttfb = out.obs.first_app_byte_time - out.obs.start_time;
  }
  return out;
}

}  // namespace certquic::scan
