#include "scan/qscanner.hpp"

#include "asn1/der.hpp"
#include "util/hex.hpp"

namespace certquic::scan {
namespace {

/// Extracts the serialNumber from a DER certificate (second element of
/// the TBSCertificate, after the [0] version tag).
std::string serial_of(bytes_view der) {
  buffer_reader r{der};
  const asn1::tlv cert = asn1::read_tlv(r);
  const auto outer = asn1::children(cert);
  if (outer.empty()) {
    throw codec_error("empty certificate");
  }
  const auto tbs = asn1::children(outer[0]);
  if (tbs.size() < 2) {
    throw codec_error("malformed TBSCertificate");
  }
  // tbs[0] is the [0] EXPLICIT version, tbs[1] the serial INTEGER.
  return to_hex(tbs[1].content);
}

}  // namespace

qscan_result qscanner::fetch(const internet::service_record& rec) const {
  probe_options opt;
  opt.initial_size = 1362;
  opt.capture_certificate = true;
  return parse(reach_.probe(rec, opt).obs);
}

qscan_result qscanner::parse(const quic::observation& obs) {
  qscan_result out;
  if (!obs.handshake_complete || obs.certificate_message.empty()) {
    return out;
  }
  // Parse the Certificate message: context(1) + list length(3) +
  // entries of 3-byte length + DER + 2-byte extensions.
  buffer_reader r{obs.certificate_message};
  r.skip(4);  // handshake frame header
  r.skip(1);  // certificate_request_context
  const std::uint32_t list_len = r.u24();
  buffer_reader list{r.raw(list_len)};
  while (!list.empty()) {
    const std::uint32_t cert_len = list.u24();
    const bytes_view der = list.raw(cert_len);
    const std::uint16_t ext_len = list.u16();
    list.skip(ext_len);
    out.certificates.push_back({serial_of(der), der.size()});
    out.chain_wire_size += der.size();
  }
  out.ok = !out.certificates.empty();
  return out;
}

bool qscanner::leaf_matches_https(const internet::model& m,
                                  const internet::service_record& rec,
                                  const qscan_result& fetched) const {
  if (!fetched.ok) {
    return false;
  }
  const auto https_chain = m.chain_of(rec, internet::fetch_protocol::https);
  return to_hex(https_chain.leaf().serial()) ==
         fetched.certificates.front().serial_hex;
}

}  // namespace certquic::scan
