#include "quic/server.hpp"

#include <algorithm>

#include "tls/handshake.hpp"
#include "util/errors.hpp"

namespace certquic::quic {
namespace {

std::string to_string_impl(amplification_policy p) {
  switch (p) {
    case amplification_policy::unlimited:
      return "unlimited (pre-Draft-09)";
    case amplification_policy::min_initial_only:
      return "min-Initial check only (Draft 09)";
    case amplification_policy::max_three_handshake_packets:
      return "<=3 Handshake packets (Drafts 10-12)";
    case amplification_policy::max_three_datagrams:
      return "<=3 datagrams (Drafts 13-14)";
    case amplification_policy::three_x_bytes:
      return "3x bytes (Draft 15+ / RFC 9000)";
  }
  throw config_error("unknown amplification_policy");
}

bytes random_cid(rng& r, std::size_t len) {
  bytes cid(len);
  r.fill(cid);
  return cid;
}

}  // namespace

std::string to_string(amplification_policy p) { return to_string_impl(p); }

server_behavior server_behavior::compliant() {
  server_behavior b;
  b.coalesce_levels = true;
  b.max_retransmissions = 2;
  return b;
}

server_behavior server_behavior::standard_no_coalesce() {
  server_behavior b;
  b.coalesce_levels = false;
  // Common off-the-shelf stacks acknowledge the client Initial in its
  // own padded datagram before the ServerHello datagram; unlike
  // Cloudflare they count those padding bytes against the limit, which
  // wastes most of the pre-validation budget (§4.1: "multi-RTT
  // handshakes are caused by large certificates AND missing packet
  // coalescence").
  b.ack_in_separate_datagram = true;
  b.max_retransmissions = 2;
  return b;
}

server_behavior server_behavior::cloudflare() {
  server_behavior b;
  b.coalesce_levels = false;
  b.ack_in_separate_datagram = true;
  b.count_padding_in_limit = false;  // the reported accounting bug
  // Cloudflare pads these datagrams at the UDP layer beyond the QUIC
  // minimum; the targets are calibrated so the two Initial-level
  // datagrams carry the constant 2462 superfluous bytes of §4.1.
  b.pad_target = 1332;
  b.ack_pad_target = 1333;
  b.max_retransmissions = 1;
  b.compression_support = {compress::algorithm::brotli};
  return b;
}

server_behavior server_behavior::google() {
  server_behavior b;
  b.coalesce_levels = true;
  // §4.3: "All hypergiants exceed the amplification limit due to
  // resends" — Google stays below 10x but does not count resends.
  b.limit_covers_retransmissions = false;
  b.max_retransmissions = 2;
  b.compression_support = {compress::algorithm::brotli};
  return b;
}

server_behavior server_behavior::meta_pre_disclosure(
    std::size_t retransmissions) {
  server_behavior b;
  b.coalesce_levels = true;
  b.limit_covers_retransmissions = false;  // the mvfst non-compliance
  b.max_retransmissions = retransmissions;
  b.pto_initial = net::milliseconds(400);
  b.compression_support = {compress::algorithm::brotli,
                           compress::algorithm::zlib,
                           compress::algorithm::zstd};
  return b;
}

server_behavior server_behavior::meta_post_disclosure() {
  server_behavior b = meta_pre_disclosure(1);
  return b;
}

server_behavior server_behavior::retry_always() {
  server_behavior b;
  b.always_retry = true;
  b.coalesce_levels = true;
  b.max_retransmissions = 2;
  return b;
}

server::server(net::simulator& sim, net::endpoint_id address,
               x509::chain chain, server_behavior behavior,
               bytes codec_dictionary, std::uint64_t seed)
    : sim_(sim),
      address_(address),
      chain_(std::move(chain)),
      behavior_(behavior),
      codec_dictionary_(std::move(codec_dictionary)),
      rng_(seed) {
  sim_.attach(address_, [this](const net::datagram& d) { on_datagram(d); });
}

server::~server() { sim_.detach(address_); }

void server::on_datagram(const net::datagram& d) {
  std::vector<packet> packets;
  try {
    packets = parse_datagram(d.payload);
  } catch (const codec_error&) {
    return;  // garbage is dropped silently
  }
  auto it = conns_.find(d.src);
  if (it == conns_.end()) {
    // New connection requires a client Initial of minimum size.
    const bool has_initial =
        std::any_of(packets.begin(), packets.end(), [](const packet& p) {
          return p.type == packet_type::initial;
        });
    if (!has_initial || d.payload.size() < kMinInitialSize) {
      return;  // RFC 9000 §14.1: drop undersized client Initials
    }
    auto conn = std::make_unique<connection>();
    conn->peer = d.src;
    conn->our_scid = random_cid(rng_, 8);
    it = conns_.emplace(d.src, std::move(conn)).first;
    ++stats_.connections;
  }
  connection& c = *it->second;

  const bool first_contact = c.bytes_received == 0;
  c.bytes_received += d.payload.size();
  if (!first_contact) {
    // Any datagram from the claimed address after our first flight
    // completes the round trip and validates the path (RFC 9000 §8.1).
    if (!c.validated) {
      c.validated = true;
      ++c.pto_generation;  // cancel outstanding retransmission timers
      if (c.budget_blocked) {
        // The budget had a flight parked; validation releases it now —
        // account how long the limit gated the timeline.
        c.budget_blocked = false;
        stats_.budget_blocked_us += sim_.now() - c.blocked_since;
      }
      pump(c, /*include_ack=*/false);
    }
    for (const packet& p : packets) {
      if (p.type == packet_type::handshake) {
        c.done = true;  // client reached Handshake keys; flight delivered
      }
      if (p.type == packet_type::initial) {
        c.largest_seen_initial_pn = std::max(c.largest_seen_initial_pn,
                                             p.packet_number);
      }
      if (p.type == packet_type::one_rtt) {
        maybe_send_app_response(c, p);
      }
    }
    return;
  }

  for (const packet& p : packets) {
    if (p.type == packet_type::initial) {
      handle_client_initial(c, p, d.payload.size());
      break;
    }
  }
}

void server::handle_client_initial(connection& c, const packet& p,
                                   std::size_t datagram_size) {
  (void)datagram_size;
  c.client_dcid = p.dcid;
  c.client_scid = p.scid;
  c.largest_seen_initial_pn = p.packet_number;
  c.largest_seen_valid = true;

  if (p.version != behavior_.supported_version) {
    // Version mismatch: reply with Version Negotiation and forget the
    // attempt (RFC 9000 §6). The client retries with our version,
    // paying one extra round trip.
    const packet vn = make_version_negotiation(
        p.scid, p.dcid, {behavior_.supported_version});
    const bytes wire = encode_datagram({vn});
    ++stats_.datagrams_sent;
    stats_.bytes_sent += wire.size();
    sim_.send({address_, c.peer, wire});
    conns_.erase(c.peer);
    return;
  }

  if (behavior_.always_retry && p.token.empty()) {
    packet retry;
    retry.type = packet_type::retry;
    retry.dcid = c.client_scid;
    retry.scid = c.our_scid;
    retry.token = random_cid(rng_, 24);
    // A Retry consumes the connection attempt: the client will come
    // back with the token in a fresh Initial.
    const bytes wire = encode_datagram({retry});
    ++stats_.retries_sent;
    ++stats_.datagrams_sent;
    stats_.bytes_sent += wire.size();
    sim_.send({address_, c.peer, wire});
    conns_.erase(c.peer);
    return;
  }
  if (!p.token.empty()) {
    c.validated = true;  // token proves a completed round trip
  }

  // Negotiate certificate compression: use the first mutually supported
  // algorithm in server preference order.
  const tls::client_hello_config* unused = nullptr;
  (void)unused;
  std::unique_ptr<compress::codec> codec;
  bytes crypto_payload;
  for (const frame& f : p.frames) {
    if (const auto* cf = std::get_if<crypto_frame>(&f)) {
      append(crypto_payload, cf->data);
    }
  }
  if (!crypto_payload.empty()) {
    try {
      const auto offered = tls::parse_offered_compression(crypto_payload);
      for (const auto alg : behavior_.compression_support) {
        if (std::find(offered.begin(), offered.end(), alg) != offered.end()) {
          codec = std::make_unique<compress::codec>(alg, codec_dictionary_);
          break;
        }
      }
    } catch (const codec_error&) {
      // Not a parseable ClientHello (e.g. a raw probe); serve anyway.
    }
  }

  const tls::server_flight flight =
      tls::build_server_flight(chain_, codec.get(), rng_);
  c.initial_stream = flight.server_hello;
  c.handshake_stream.clear();
  for (const auto& msg : flight.handshake_msgs) {
    append(c.handshake_stream, msg);
  }

  pump(c, /*include_ack=*/true);
  if (!c.validated) {
    c.pto = behavior_.pto_initial;
    arm_pto(c);
  }
}

bool server::charge(connection& c, std::size_t wire_bytes,
                    std::size_t padding_bytes,
                    std::size_t handshake_packets) {
  if (c.validated || c.limit_exempt) {
    return true;
  }
  switch (behavior_.policy) {
    case amplification_policy::unlimited:
    case amplification_policy::min_initial_only:
      // min-Initial was enforced on receive; no send-side limit.
      return true;
    case amplification_policy::max_three_handshake_packets:
      if (c.handshake_packets_sent + handshake_packets > 3) {
        return false;
      }
      return true;
    case amplification_policy::max_three_datagrams:
      if (c.datagrams_sent + 1 > 3) {
        return false;
      }
      return true;
    case amplification_policy::three_x_bytes: {
      const std::size_t counted =
          behavior_.count_padding_in_limit
              ? wire_bytes
              : wire_bytes - std::min(wire_bytes, padding_bytes);
      if (c.budget_spent + counted > 3 * c.bytes_received) {
        return false;
      }
      c.budget_spent += counted;
      return true;
    }
  }
  throw config_error("unknown amplification_policy");
}

void server::transmit(connection& c, std::vector<packet> packets) {
  std::size_t handshake_packets = 0;
  for (const auto& p : packets) {
    if (p.type == packet_type::handshake) {
      ++handshake_packets;
    }
  }
  c.handshake_packets_sent += handshake_packets;
  ++c.datagrams_sent;
  const bytes wire = encode_datagram(packets);
  ++stats_.datagrams_sent;
  stats_.bytes_sent += wire.size();
  if (behavior_.pacing_bps == 0) {
    sim_.send({address_, c.peer, wire});
    return;
  }
  // Pacing: space this connection's datagrams by their serialization
  // time at pacing_bps instead of bursting them at one instant. The
  // send itself is deferred via a timer; the datagram's fate (path
  // loss, MTU) is still decided at departure.
  const std::uint64_t bits = static_cast<std::uint64_t>(wire.size()) * 8;
  const net::duration serialize =
      (bits * 1'000'000 + behavior_.pacing_bps - 1) / behavior_.pacing_bps;
  const net::time_point depart = std::max(sim_.now(), c.next_send_at);
  c.next_send_at = depart + serialize;
  const net::endpoint_id peer = c.peer;
  sim_.schedule(depart - sim_.now(), [this, peer, wire]() {
    sim_.send({address_, peer, wire});
  });
}

void server::pump(connection& c, bool include_ack) {
  // Per-datagram fixed overheads.
  const std::size_t max_udp = behavior_.max_udp_payload;

  bool ack_pending = include_ack;
  const bool cloudflare_style =
      behavior_.ack_in_separate_datagram && !behavior_.coalesce_levels;

  // Cloudflare pattern, datagram 1: a padded, ACK-only Initial.
  if (cloudflare_style && ack_pending) {
    packet ack_pkt;
    ack_pkt.type = packet_type::initial;
    ack_pkt.dcid = c.client_scid;
    ack_pkt.scid = c.our_scid;
    ack_pkt.packet_number = c.next_pn_initial++;
    ack_pkt.frames.push_back(ack_frame{c.largest_seen_initial_pn});
    std::vector<packet> dgram{std::move(ack_pkt)};
    const std::size_t padding =
        pad_datagram_to(dgram, behavior_.ack_pad_target);
    std::size_t wire = 0;
    for (const auto& p : dgram) {
      wire += p.wire_size();
    }
    if (charge(c, wire, padding, 0)) {
      transmit(c, std::move(dgram));
    }
    ack_pending = false;
  }

  while (!c.done) {
    const std::size_t initial_left = c.initial_stream.size() - c.initial_sent;
    const std::size_t hs_left =
        c.handshake_stream.size() - c.handshake_sent;
    if (initial_left == 0 && hs_left == 0) {
      break;
    }

    std::vector<packet> dgram;
    std::size_t space = max_udp;

    if (initial_left > 0 || ack_pending) {
      packet init;
      init.type = packet_type::initial;
      init.dcid = c.client_scid;
      init.scid = c.our_scid;
      init.packet_number = c.next_pn_initial++;
      if (ack_pending) {
        init.frames.push_back(ack_frame{c.largest_seen_initial_pn});
        ack_pending = false;
      }
      if (initial_left > 0) {
        // Header + CRYPTO framing overhead, conservatively 60 bytes.
        const std::size_t chunk = std::min(initial_left, space - 60);
        crypto_frame cf;
        cf.offset = c.initial_sent;
        cf.data.assign(
            c.initial_stream.begin() + static_cast<long>(c.initial_sent),
            c.initial_stream.begin() +
                static_cast<long>(c.initial_sent + chunk));
        c.initial_sent += chunk;
        init.frames.push_back(std::move(cf));
      }
      dgram.push_back(std::move(init));
      space = space > dgram.back().wire_size()
                  ? space - dgram.back().wire_size()
                  : 0;
    }

    if (hs_left > 0 && c.initial_sent == c.initial_stream.size()) {
      const bool may_coalesce = behavior_.coalesce_levels || dgram.empty();
      if (may_coalesce && space > 80) {
        packet hs;
        hs.type = packet_type::handshake;
        hs.dcid = c.client_scid;
        hs.scid = c.our_scid;
        hs.packet_number = c.next_pn_handshake++;
        const std::size_t overhead = 50;  // header + frame framing
        const std::size_t chunk = std::min(hs_left, space - overhead);
        crypto_frame cf;
        cf.offset = c.handshake_sent;
        cf.data.assign(
            c.handshake_stream.begin() + static_cast<long>(c.handshake_sent),
            c.handshake_stream.begin() +
                static_cast<long>(c.handshake_sent + chunk));
        c.handshake_sent += chunk;
        hs.frames.push_back(std::move(cf));
        dgram.push_back(std::move(hs));
      }
    }

    if (dgram.empty()) {
      break;  // nothing fit (shouldn't happen)
    }

    // Pad datagrams carrying ack-eliciting Initial packets.
    std::size_t padding = 0;
    const bool has_ack_eliciting_initial =
        std::any_of(dgram.begin(), dgram.end(), [](const packet& p) {
          return p.type == packet_type::initial && p.ack_eliciting();
        });
    std::size_t wire = 0;
    for (const auto& p : dgram) {
      wire += p.wire_size();
    }
    if (has_ack_eliciting_initial && wire < behavior_.pad_target) {
      padding = pad_datagram_to(dgram, behavior_.pad_target);
      wire = 0;
      for (const auto& p : dgram) {
        wire += p.wire_size();
      }
    }

    std::size_t handshake_packets = 0;
    for (const auto& p : dgram) {
      if (p.type == packet_type::handshake) {
        ++handshake_packets;
      }
    }
    if (!charge(c, wire, padding, handshake_packets)) {
      if (!c.budget_blocked && !c.validated) {
        // The limit is now gating *time*, not just volume: this flight
        // stalls until the client's next datagram validates the path.
        c.budget_blocked = true;
        c.blocked_since = sim_.now();
        ++stats_.budget_blocked_flights;
      }
      // Budget exhausted: roll back the stream watermarks consumed by
      // this datagram and wait for validation.
      for (const auto& p : dgram) {
        for (const auto& f : p.frames) {
          if (const auto* cf = std::get_if<crypto_frame>(&f)) {
            if (p.type == packet_type::initial) {
              c.initial_sent -= cf->data.size();
            } else {
              c.handshake_sent -= cf->data.size();
            }
          }
        }
        if (p.type == packet_type::initial) {
          --c.next_pn_initial;
        } else {
          --c.next_pn_handshake;
        }
      }
      break;
    }
    transmit(c, std::move(dgram));
  }
}

void server::retransmit(connection& c) {
  if (c.validated || c.done) {
    return;
  }
  if (c.retransmissions >= behavior_.max_retransmissions) {
    return;  // give up; connection idles out
  }
  ++c.retransmissions;
  ++stats_.retransmission_flights;

  // Resend everything transmitted so far (unconfirmed Initial +
  // Handshake data), as observed for real deployments.
  const std::size_t initial_sent = c.initial_sent;
  const std::size_t handshake_sent = c.handshake_sent;
  if (behavior_.limit_covers_retransmissions) {
    // Budget stays charged; re-check against the remaining allowance.
    c.initial_sent = 0;
    c.handshake_sent = 0;
    // Temporarily clamp streams to the previously sent watermarks so the
    // pump resends exactly the first flight.
    const bytes initial_backup = c.initial_stream;
    const bytes handshake_backup = c.handshake_stream;
    c.initial_stream.resize(initial_sent);
    c.handshake_stream.resize(handshake_sent);
    pump(c, /*include_ack=*/false);
    c.initial_stream = initial_backup;
    c.handshake_stream = handshake_backup;
    c.initial_sent = std::max(c.initial_sent, initial_sent);
    c.handshake_sent = std::max(c.handshake_sent, handshake_sent);
  } else {
    // Meta/mvfst behaviour: the limit is not applied to resends. The
    // buggy implementations flush *everything* pending on PTO — the
    // already-sent flight plus any tail the first-flight limit held
    // back — which is how 28-45x amplification factors arise (§4.3).
    c.limit_exempt = true;
    c.initial_sent = 0;
    c.handshake_sent = 0;
    pump(c, /*include_ack=*/false);
    c.limit_exempt = false;
    c.initial_sent = std::max(c.initial_sent, initial_sent);
    c.handshake_sent = std::max(c.handshake_sent, handshake_sent);
  }
  c.pto *= 2;
  arm_pto(c);
}

void server::maybe_send_app_response(connection& c, const packet& p) {
  if (c.app_response_sent) {
    return;
  }
  const stream_frame* request = nullptr;
  for (const frame& f : p.frames) {
    if (const auto* sf = std::get_if<stream_frame>(&f)) {
      request = sf;
      break;
    }
  }
  if (request == nullptr) {
    return;
  }
  c.app_response_sent = true;
  // A fixed-size response head: the timeline only needs the *first*
  // application byte, so one datagram stands in for the object. The
  // client sends its request only after the handshake completed, so
  // the path is validated and no budget applies here.
  packet resp;
  resp.type = packet_type::one_rtt;
  resp.dcid = c.client_scid;
  resp.packet_number = c.next_pn_app++;
  resp.frames.push_back(stream_frame{request->id, 0, bytes(256, 0x5a)});
  std::vector<packet> dgram;
  dgram.push_back(std::move(resp));
  transmit(c, std::move(dgram));
}

void server::arm_pto(connection& c) {
  const std::uint64_t generation = c.pto_generation;
  const net::endpoint_id peer = c.peer;
  sim_.schedule(c.pto, [this, peer, generation]() {
    const auto it = conns_.find(peer);
    if (it == conns_.end()) {
      return;
    }
    connection& conn = *it->second;
    if (conn.pto_generation != generation) {
      return;  // cancelled
    }
    retransmit(conn);
  });
}

}  // namespace certquic::quic
