// QUIC variable-length integers (RFC 9000 §16).
#pragma once

#include <cstdint>

#include "util/buffer.hpp"
#include "util/bytes.hpp"

namespace certquic::quic {

/// Largest value representable (2^62 - 1).
inline constexpr std::uint64_t kVarintMax = (1ULL << 62) - 1;

/// Bytes needed to encode `v` (1, 2, 4 or 8). Throws codec_error above
/// kVarintMax.
[[nodiscard]] std::size_t varint_size(std::uint64_t v);

/// Appends the minimal QUIC varint encoding of `v`.
void write_varint(buffer_writer& w, std::uint64_t v);

/// Reads one varint; throws codec_error on truncation.
[[nodiscard]] std::uint64_t read_varint(buffer_reader& r);

}  // namespace certquic::quic
