// QUIC client endpoint: performs one handshake attempt and records the
// byte-level observations the paper's classification is built on.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/simulator.hpp"
#include "quic/packet.hpp"
#include "tls/handshake.hpp"
#include "util/rng.hpp"

namespace certquic::quic {

/// Client acknowledgement behaviours ("ReACKed QUICer", Mücke et al.):
/// how eagerly a client acknowledges the server's handshake bursts.
enum class ack_policy : std::uint8_t {
  delayed,  // minimal delayed-ack: batch a burst, answer after a tick
  instant,  // acknowledge every burst immediately (instant-ACK client)
  none,     // silent adversary / ZMap probe: never acknowledge anything
};

[[nodiscard]] std::string to_string(ack_policy p);

/// Client-side handshake parameters.
struct client_config {
  /// Target UDP payload of the first flight (the paper sweeps
  /// 1200..1472; browsers use 1250/1357, Table 1).
  std::size_t initial_size = 1362;
  /// Algorithms offered in compress_certificate; empty mirrors
  /// quicreach's stack (no compression support).
  std::vector<compress::algorithm> offer_compression{};
  /// False imitates an adversary / ZMap probe: never ACK, never answer.
  bool send_acks = true;
  /// Delay before a received burst is acknowledged; 0 is the
  /// instant-ACK client variant. Ignored when send_acks is false.
  net::duration ack_delay = net::milliseconds(1);
  std::string sni = "example.org";
  /// Give-up deadline for the observation.
  net::duration timeout = net::seconds(3);
  /// When set, the first flight is stamped with this source address
  /// (IP spoofing); responses then route to whoever owns it.
  std::optional<net::endpoint_id> spoof_source{};
  /// Retain the raw (Compressed)Certificate message bytes in the
  /// observation (QScanner mode, §3.2).
  bool capture_certificate = false;
  /// QUIC version offered in the first flight; on a Version
  /// Negotiation reply the client retries once with a version the
  /// server listed (costing one round trip, §2).
  std::uint32_t version = kVersion1;
  /// Send a one-chunk application request (a 1-RTT STREAM frame)
  /// together with the Finished flight and record when the first
  /// response byte arrives — the TTFB timeline. Off by default: the
  /// extra exchange changes byte totals, and every size-domain golden
  /// is captured without it.
  bool fetch_app_data = false;
};

/// Everything measured during one handshake attempt.
struct observation {
  bool response_received = false;
  bool retry_seen = false;
  bool version_negotiation_seen = false;
  bool handshake_complete = false;
  bool timed_out = false;

  std::size_t client_datagrams = 0;
  /// Client datagrams sent after the first flight but before the
  /// handshake completed — zero means a true 1-RTT handshake.
  std::size_t acks_before_complete = 0;

  std::size_t bytes_sent_first_flight = 0;
  std::size_t bytes_sent_total = 0;
  std::size_t bytes_received_total = 0;
  /// Bytes received before the client's second datagram: the server's
  /// pre-validation allowance (Figs. 4 and 5).
  std::size_t bytes_received_first_burst = 0;
  /// TLS bytes (CRYPTO payload) of the first burst.
  std::size_t tls_bytes_first_burst = 0;
  /// PADDING bytes of the first burst.
  std::size_t padding_bytes_first_burst = 0;
  std::size_t tls_bytes_received = 0;
  std::size_t padding_bytes_received = 0;
  std::size_t server_datagrams = 0;

  /// Certificate message observations.
  bool compression_used = false;
  std::size_t certificate_msg_size = 0;          // framed, as received
  std::size_t certificate_uncompressed_size = 0; // declared by sender
  /// Raw framed (Compressed)Certificate bytes when capture was enabled.
  bytes certificate_message;

  net::time_point start_time = 0;
  net::time_point complete_time = 0;
  net::time_point first_receive_time = 0;
  net::time_point last_receive_time = 0;
  /// When the first application (STREAM) byte arrived; 0 when the
  /// probe did not request application data or never received any.
  net::time_point first_app_byte_time = 0;
  /// Application bytes received over the whole observation.
  std::size_t app_bytes_received = 0;

  /// First-burst amplification factor (Fig. 4): UDP payload received
  /// before validation over UDP payload sent in the first flight.
  [[nodiscard]] double first_burst_amplification() const {
    return bytes_sent_first_flight == 0
               ? 0.0
               : static_cast<double>(bytes_received_first_burst) /
                     static_cast<double>(bytes_sent_first_flight);
  }

  /// Total amplification including resends (Fig. 9 / §4.3).
  [[nodiscard]] double total_amplification() const {
    return bytes_sent_first_flight == 0
               ? 0.0
               : static_cast<double>(bytes_received_total) /
                     static_cast<double>(bytes_sent_first_flight);
  }
};

/// A single-use handshake client.
class client {
 public:
  client(net::simulator& sim, net::endpoint_id local,
         net::endpoint_id server, client_config config, std::uint64_t seed);
  ~client();

  client(const client&) = delete;
  client& operator=(const client&) = delete;

  /// Sends the first flight.
  void start();

  [[nodiscard]] const observation& result() const noexcept { return obs_; }
  [[nodiscard]] bool finished() const noexcept {
    return obs_.handshake_complete || obs_.timed_out;
  }

 private:
  void send_initial(const bytes& token);
  void on_datagram(const net::datagram& d);
  void maybe_complete();
  void send_ack_flight();

  net::simulator& sim_;
  net::endpoint_id local_;
  net::endpoint_id server_;
  client_config config_;
  rng rng_;
  observation obs_;

  bytes dcid_;
  bytes scid_;  // empty: browsers commonly use zero-length source CIDs
  bytes server_scid_;
  bytes initial_stream_;    // reassembled Initial-level CRYPTO (in order)
  bytes handshake_stream_;  // reassembled Handshake-level CRYPTO
  std::uint64_t largest_initial_pn_ = 0;
  std::uint64_t largest_handshake_pn_ = 0;
  bool handshake_keys_ = false;
  bool ack_timer_armed_ = false;
  bool finished_sent_ = false;
  std::uint64_t next_pn_initial_ = 0;
  std::uint64_t next_pn_handshake_ = 0;
  std::uint64_t next_pn_app_ = 0;
};

}  // namespace certquic::quic
