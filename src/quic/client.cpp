#include "quic/client.hpp"

#include <algorithm>

#include "util/errors.hpp"

namespace certquic::quic {
namespace {

/// Appends a CRYPTO chunk to an in-order reassembly buffer, ignoring
/// already-received prefixes (retransmissions restart at offset 0).
/// Chunks beyond the current tail are dropped — with the simulator's
/// in-order delivery this only happens when datagrams were lost, in
/// which case the handshake stalls and times out like a real one.
void reassemble(bytes& stream, const crypto_frame& cf) {
  if (cf.offset > stream.size()) {
    return;  // gap: predecessor lost
  }
  const std::size_t already = stream.size() - cf.offset;
  if (already >= cf.data.size()) {
    return;  // fully duplicate
  }
  stream.insert(stream.end(), cf.data.begin() + static_cast<long>(already),
                cf.data.end());
}

}  // namespace

std::string to_string(ack_policy p) {
  switch (p) {
    case ack_policy::delayed:
      return "delayed-ack";
    case ack_policy::instant:
      return "instant-ack";
    case ack_policy::none:
      return "no-ack";
  }
  return "?";
}

client::client(net::simulator& sim, net::endpoint_id local,
               net::endpoint_id server, client_config config,
               std::uint64_t seed)
    : sim_(sim),
      local_(local),
      server_(server),
      config_(std::move(config)),
      rng_(seed) {
  dcid_.resize(8);
  rng_.fill(dcid_);
  sim_.attach(local_, [this](const net::datagram& d) { on_datagram(d); });
}

client::~client() { sim_.detach(local_); }

void client::start() {
  obs_.start_time = sim_.now();
  send_initial(/*token=*/{});
  sim_.schedule(config_.timeout, [this]() {
    if (!obs_.handshake_complete) {
      obs_.timed_out = true;
    }
  });
}

void client::send_initial(const bytes& token) {
  tls::client_hello_config ch;
  ch.server_name = config_.sni;
  ch.compression_algorithms = config_.offer_compression;

  packet init;
  init.type = packet_type::initial;
  init.version = config_.version;
  init.dcid = dcid_;
  init.scid = scid_;
  init.token = token;
  init.packet_number = next_pn_initial_++;
  init.frames.push_back(crypto_frame{0, tls::encode_client_hello(ch, rng_)});

  std::vector<packet> dgram{std::move(init)};
  (void)pad_datagram_to(dgram, config_.initial_size);
  const bytes wire = encode_datagram(dgram);

  const net::endpoint_id src = config_.spoof_source.value_or(local_);
  ++obs_.client_datagrams;
  obs_.bytes_sent_total += wire.size();
  if (obs_.bytes_sent_first_flight == 0) {
    obs_.bytes_sent_first_flight = wire.size();
  }
  sim_.send({src, server_, wire});
}

void client::on_datagram(const net::datagram& d) {
  std::vector<packet> packets;
  try {
    packets = parse_datagram(d.payload);
  } catch (const codec_error&) {
    return;
  }
  if (!obs_.response_received) {
    obs_.first_receive_time = sim_.now();
  }
  obs_.last_receive_time = sim_.now();
  obs_.response_received = true;
  ++obs_.server_datagrams;
  obs_.bytes_received_total += d.payload.size();
  const bool in_first_burst = obs_.client_datagrams <= 1;
  if (in_first_burst) {
    obs_.bytes_received_first_burst += d.payload.size();
  }

  for (const packet& p : packets) {
    if (p.is_version_negotiation()) {
      if (!obs_.version_negotiation_seen && config_.send_acks) {
        obs_.version_negotiation_seen = true;
        for (const std::uint32_t v : p.supported_versions) {
          if (v != 0) {
            config_.version = v;  // adopt and retry once
            send_initial(/*token=*/{});
            break;
          }
        }
      }
      continue;
    }
    if (p.type == packet_type::retry) {
      if (!obs_.retry_seen) {
        obs_.retry_seen = true;
        if (config_.send_acks) {
          // Fresh attempt carrying the token (RFC 9000 §8.1.2).
          send_initial(p.token);
        }
      }
      continue;
    }
    if (p.type == packet_type::one_rtt) {
      // Application data: the response to our request. The timeline's
      // endpoint is the first STREAM byte (TTFB).
      for (const frame& f : p.frames) {
        if (const auto* sf = std::get_if<stream_frame>(&f)) {
          if (obs_.first_app_byte_time == 0 && !sf->data.empty()) {
            obs_.first_app_byte_time = sim_.now();
          }
          obs_.app_bytes_received += sf->data.size();
        }
      }
      continue;
    }
    server_scid_ = p.scid;
    const frame_accounting fa = account(p.frames);
    obs_.tls_bytes_received += fa.crypto_payload;
    obs_.padding_bytes_received += fa.padding;
    if (in_first_burst) {
      obs_.tls_bytes_first_burst += fa.crypto_payload;
      obs_.padding_bytes_first_burst += fa.padding;
    }
    for (const frame& f : p.frames) {
      if (const auto* cf = std::get_if<crypto_frame>(&f)) {
        if (p.type == packet_type::initial) {
          reassemble(initial_stream_, *cf);
        } else if (p.type == packet_type::handshake) {
          reassemble(handshake_stream_, *cf);
          handshake_keys_ = true;
        }
      }
    }
    if (p.type == packet_type::initial) {
      largest_initial_pn_ = std::max(largest_initial_pn_, p.packet_number);
    } else if (p.type == packet_type::handshake) {
      largest_handshake_pn_ = std::max(largest_handshake_pn_,
                                       p.packet_number);
    }
  }

  maybe_complete();

  if (config_.send_acks && !ack_timer_armed_ && !finished_sent_) {
    ack_timer_armed_ = true;
    // Delayed-ack batches a burst into one acknowledgement; a zero
    // delay (instant-ACK variant) still fires after every delivery
    // already queued for this instant, so same-instant bursts batch.
    sim_.schedule(config_.ack_delay, [this]() { send_ack_flight(); });
  }
}

void client::maybe_complete() {
  if (obs_.handshake_complete) {
    return;
  }
  // ServerHello complete at the Initial level?
  try {
    if (initial_stream_.empty()) {
      return;
    }
    const auto sh = tls::peek_frame(initial_stream_);
    if (sh.type != tls::handshake_type::server_hello ||
        initial_stream_.size() < sh.total_size) {
      return;
    }
  } catch (const codec_error&) {
    return;  // still partial
  }
  // Walk the Handshake-level stream; complete when Finished is whole.
  std::size_t offset = 0;
  bool saw_finished = false;
  while (offset < handshake_stream_.size()) {
    tls::frame_info info{};
    try {
      info = tls::peek_frame(
          bytes_view{handshake_stream_.data() + offset,
                     handshake_stream_.size() - offset});
    } catch (const codec_error&) {
      return;  // truncated message at the tail
    }
    if (info.type == tls::handshake_type::certificate ||
        info.type == tls::handshake_type::compressed_certificate) {
      obs_.certificate_msg_size = info.total_size;
      obs_.compression_used =
          info.type == tls::handshake_type::compressed_certificate;
      if (config_.capture_certificate) {
        obs_.certificate_message.assign(
            handshake_stream_.begin() + static_cast<long>(offset),
            handshake_stream_.begin() +
                static_cast<long>(offset + info.total_size));
      }
      if (obs_.compression_used) {
        // uncompressed_length sits right after the 2-byte algorithm id.
        buffer_reader r{bytes_view{handshake_stream_.data() + offset,
                                   handshake_stream_.size() - offset}};
        r.skip(4 + 2);
        obs_.certificate_uncompressed_size = r.u24();
      } else {
        obs_.certificate_uncompressed_size = info.total_size;
      }
    }
    if (info.type == tls::handshake_type::finished) {
      saw_finished = true;
    }
    offset += info.total_size;
  }
  if (!saw_finished) {
    return;
  }
  obs_.handshake_complete = true;
  obs_.complete_time = sim_.now();
}

void client::send_ack_flight() {
  ack_timer_armed_ = false;
  if (finished_sent_ || !config_.send_acks) {
    return;
  }
  if (!obs_.handshake_complete) {
    ++obs_.acks_before_complete;
  }

  std::vector<packet> dgram;
  packet init_ack;
  init_ack.type = packet_type::initial;
  init_ack.dcid = server_scid_.empty() ? dcid_ : server_scid_;
  init_ack.scid = scid_;
  init_ack.packet_number = next_pn_initial_++;
  init_ack.frames.push_back(ack_frame{largest_initial_pn_});
  dgram.push_back(std::move(init_ack));

  if (handshake_keys_) {
    packet hs;
    hs.type = packet_type::handshake;
    hs.dcid = server_scid_.empty() ? dcid_ : server_scid_;
    hs.scid = scid_;
    hs.packet_number = next_pn_handshake_++;
    hs.frames.push_back(ack_frame{largest_handshake_pn_});
    if (obs_.handshake_complete) {
      hs.frames.push_back(crypto_frame{0, tls::encode_finished(rng_)});
      finished_sent_ = true;
    }
    dgram.push_back(std::move(hs));
    if (finished_sent_ && config_.fetch_app_data) {
      // Coalesce the application request behind the Finished flight —
      // last in the datagram, as a length-less short-header packet
      // must be. TTFB then measures first Initial → first response
      // byte with no client-side think time.
      packet req;
      req.type = packet_type::one_rtt;
      req.dcid = server_scid_.empty() ? dcid_ : server_scid_;
      req.packet_number = next_pn_app_++;
      const std::string request = "GET /index.html";
      req.frames.push_back(
          stream_frame{0, 0, bytes(request.begin(), request.end())});
      dgram.push_back(std::move(req));
    }
  }

  // Client Initial-bearing datagrams must also meet the 1200-byte
  // minimum... but ACK-only Initial packets are not ack-eliciting, so
  // no padding is required here (RFC 9000 §14.1 applies to
  // ack-eliciting Initials).
  const bytes wire = encode_datagram(dgram);
  ++obs_.client_datagrams;
  obs_.bytes_sent_total += wire.size();
  sim_.send({local_, server_, wire});
}

}  // namespace certquic::quic
