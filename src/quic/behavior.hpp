// Server-side behaviour profiles: the anti-amplification policy variants
// of Table 3 plus the deployment quirks the paper attributes to specific
// operators (§4.1, §4.3).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "compress/codec.hpp"
#include "net/time.hpp"
#include "quic/packet.hpp"

namespace certquic::quic {

/// Historical anti-amplification rules (Appendix C, Table 3).
enum class amplification_policy {
  /// Pre-Draft-09: no server-side limit at all.
  unlimited,
  /// Draft 09: server may only reject client Initials < 1200 bytes;
  /// responses themselves are unlimited.
  min_initial_only,
  /// Drafts 10-12: at most three Handshake packets before validation.
  max_three_handshake_packets,
  /// Drafts 13-14: at most three datagrams before validation.
  max_three_datagrams,
  /// Drafts 15-34 and RFC 9000: at most 3x the bytes received.
  three_x_bytes,
};

[[nodiscard]] std::string to_string(amplification_policy p);

/// Complete server behaviour description.
struct server_behavior {
  amplification_policy policy = amplification_policy::three_x_bytes;

  /// RFC 9000 requires padding bytes to count against the limit;
  /// false reproduces the Cloudflare accounting bug (§4.1).
  bool count_padding_in_limit = true;

  /// Coalesce Initial and Handshake packets into one datagram.
  bool coalesce_levels = true;

  /// Send the Initial ACK in its own padded datagram before the
  /// ServerHello datagram (Cloudflare's observed two-datagram pattern).
  bool ack_in_separate_datagram = false;

  /// Always answer tokenless Initials with Retry (a-priori DoS defence).
  bool always_retry = false;

  /// RFC 9002 §6.2.2.1: retransmitted bytes count against the limit;
  /// false reproduces the Meta/mvfst behaviour (§4.3).
  bool limit_covers_retransmissions = true;

  /// How many times the first flight is retransmitted to an
  /// unvalidated, silent client before giving up.
  std::size_t max_retransmissions = 2;

  /// Server's maximum UDP payload per datagram.
  std::size_t max_udp_payload = 1252;

  /// Padding target for datagrams carrying ack-eliciting Initials.
  std::size_t pad_target = kMinInitialSize;

  /// Padding target of the standalone ACK datagram when
  /// `ack_in_separate_datagram` is set (Cloudflare pads that one at the
  /// UDP layer; its target differs slightly from the QUIC-level one).
  std::size_t ack_pad_target = kMinInitialSize;

  /// First probe-timeout; doubles per retransmission (RFC 9002).
  net::duration pto_initial = net::milliseconds(400);

  /// Server-side send pacing in bits per second: consecutive datagrams
  /// of one connection depart spaced by their serialization time
  /// instead of as one instantaneous burst. 0 (the default every
  /// size-domain golden is captured under) sends bursts instantly.
  std::uint64_t pacing_bps = 0;

  /// Certificate-compression algorithms the server supports.
  std::vector<compress::algorithm> compression_support;

  /// QUIC version the server accepts; Initials for other versions get
  /// a Version Negotiation reply (§2: an extra round trip when client
  /// and server do not agree on a version directly).
  std::uint32_t supported_version = kVersion1;

  // ---- Named presets used by the synthetic Internet -------------------

  /// Fully RFC-compliant server with packet coalescing (rare in the
  /// wild: yields the 0.75% 1-RTT handshakes when chains are small).
  [[nodiscard]] static server_behavior compliant();

  /// RFC-compliant but without coalescing — the common deployment that
  /// wastes budget on padding and lands in multi-RTT (§4.1).
  [[nodiscard]] static server_behavior standard_no_coalesce();

  /// Cloudflare: separate padded ACK datagram, no coalescing, padding
  /// not counted against the limit, brotli support, small ECDSA chain.
  [[nodiscard]] static server_behavior cloudflare();

  /// Google front-ends: compliant 3x accounting with coalescing,
  /// moderate retransmissions.
  [[nodiscard]] static server_behavior google();

  /// Meta/mvfst before the disclosure: retransmissions exempt from the
  /// limit; `retransmissions` tunes facebook (~1) vs instagram/whatsapp
  /// (~7) host groups.
  [[nodiscard]] static server_behavior meta_pre_disclosure(
      std::size_t retransmissions);

  /// Meta after the October 2022 fix: retransmissions capped so the
  /// mean amplification is ~5x (still slightly above the limit).
  [[nodiscard]] static server_behavior meta_post_disclosure();

  /// Always-on Retry (the ~200 services of §4.1).
  [[nodiscard]] static server_behavior retry_always();
};

}  // namespace certquic::quic
