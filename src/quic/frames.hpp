// QUIC v1 frames used during the handshake (RFC 9000 §19 subset).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "util/buffer.hpp"
#include "util/bytes.hpp"

namespace certquic::quic {

/// PADDING — run-length compressed representation of 0x00 frames.
struct padding_frame {
  std::size_t count = 0;
};

/// PING — ack-eliciting no-op.
struct ping_frame {};

/// ACK — minimal single-range form acknowledging [0, largest].
struct ack_frame {
  std::uint64_t largest = 0;
};

/// CRYPTO — a slice of the TLS handshake byte stream.
struct crypto_frame {
  std::uint64_t offset = 0;
  bytes data;
};

/// CONNECTION_CLOSE (transport flavour, type 0x1c).
struct connection_close_frame {
  std::uint64_t error_code = 0;
  std::string reason;
};

/// STREAM — application data (RFC 9000 §19.8). Encoded with the OFF,
/// LEN and FIN bits all set (type 0x0f), the one shape the handshake
/// timeline needs: a request and a response, each a single chunk.
struct stream_frame {
  std::uint64_t id = 0;
  std::uint64_t offset = 0;
  bytes data;
};

using frame = std::variant<padding_frame, ping_frame, ack_frame, crypto_frame,
                           connection_close_frame, stream_frame>;

/// Serialized size of a frame in bytes.
[[nodiscard]] std::size_t frame_size(const frame& f);

/// Appends the wire encoding of `f`.
void write_frame(buffer_writer& w, const frame& f);

/// Parses every frame in `payload`; consecutive PADDING bytes collapse
/// into one padding_frame. Throws codec_error on malformed input.
[[nodiscard]] std::vector<frame> parse_frames(bytes_view payload);

/// True for frames that elicit acknowledgement (everything except
/// PADDING, ACK and CONNECTION_CLOSE).
[[nodiscard]] bool is_ack_eliciting(const frame& f);

/// Byte-accounting helper for a parsed frame list.
struct frame_accounting {
  std::size_t crypto_payload = 0;  // TLS bytes (CRYPTO frame data)
  std::size_t padding = 0;         // PADDING bytes
  std::size_t stream_payload = 0;  // application bytes (STREAM data)
  bool ack_eliciting = false;
};
[[nodiscard]] frame_accounting account(const std::vector<frame>& frames);

}  // namespace certquic::quic
