#include "quic/varint.hpp"

#include "util/errors.hpp"

namespace certquic::quic {

std::size_t varint_size(std::uint64_t v) {
  if (v < (1ULL << 6)) {
    return 1;
  }
  if (v < (1ULL << 14)) {
    return 2;
  }
  if (v < (1ULL << 30)) {
    return 4;
  }
  if (v <= kVarintMax) {
    return 8;
  }
  throw codec_error("varint overflow: " + std::to_string(v));
}

void write_varint(buffer_writer& w, std::uint64_t v) {
  switch (varint_size(v)) {
    case 1:
      w.u8(static_cast<std::uint8_t>(v));
      break;
    case 2:
      w.u16(static_cast<std::uint16_t>(v | 0x4000));
      break;
    case 4:
      w.u32(static_cast<std::uint32_t>(v | 0x8000'0000u));
      break;
    default:
      w.u64(v | 0xc000'0000'0000'0000ULL);
      break;
  }
}

std::uint64_t read_varint(buffer_reader& r) {
  const std::uint8_t first = r.peek_u8();
  switch (first >> 6) {
    case 0:
      return r.u8();
    case 1:
      return r.u16() & 0x3fffULL;
    case 2:
      return r.u32() & 0x3fff'ffffULL;
    default:
      return r.u64() & 0x3fff'ffff'ffff'ffffULL;
  }
}

}  // namespace certquic::quic
