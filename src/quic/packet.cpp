#include "quic/packet.hpp"

#include "quic/varint.hpp"
#include "util/buffer.hpp"
#include "util/errors.hpp"

namespace certquic::quic {
namespace {

std::uint8_t first_byte(const packet& p) {
  if (p.type == packet_type::one_rtt) {
    // Short header: form=0, fixed=1, spin/key/reserved=0, pn_len-1.
    return static_cast<std::uint8_t>(0x40 | (kPacketNumberSize - 1));
  }
  // form=1, fixed=1, type, reserved=0, pn_len encoded as len-1.
  return static_cast<std::uint8_t>(
      0xc0 | (static_cast<std::uint8_t>(p.type) << 4) |
      (kPacketNumberSize - 1));
}

}  // namespace

std::size_t packet::payload_size() const {
  std::size_t total = 0;
  for (const auto& f : frames) {
    total += frame_size(f);
  }
  return total;
}

bool packet::ack_eliciting() const {
  for (const auto& f : frames) {
    if (is_ack_eliciting(f)) {
      return true;
    }
  }
  return false;
}

std::size_t packet::wire_size() const {
  if (type == packet_type::one_rtt) {
    // Short header: no version, scid or length field; the packet runs
    // to the end of the datagram. (The dcid keeps its length prefix —
    // a simulation convention, since real 1-RTT receivers know their
    // own cid length while this codec parses packets generically.)
    return 1 + 1 + dcid.size() + kPacketNumberSize + payload_size() +
           kAeadTagSize;
  }
  std::size_t header = 1 + 4 + 1 + dcid.size() + 1 + scid.size();
  if (is_version_negotiation()) {
    return header + 4 * supported_versions.size();
  }
  if (type == packet_type::retry) {
    // Retry: header + token + 16-byte integrity tag, no length/pn.
    return header + token.size() + kAeadTagSize;
  }
  if (type == packet_type::initial) {
    header += varint_size(token.size()) + token.size();
  }
  const std::size_t protected_size =
      kPacketNumberSize + payload_size() + kAeadTagSize;
  return header + varint_size(protected_size) + protected_size;
}

bytes encode_packet(const packet& p) {
  buffer_writer w;
  w.u8(first_byte(p));
  if (p.type == packet_type::one_rtt) {
    w.u8(static_cast<std::uint8_t>(p.dcid.size()));
    w.raw(p.dcid);
    w.u16(static_cast<std::uint16_t>(p.packet_number));
    for (const auto& f : p.frames) {
      write_frame(w, f);
    }
    w.zeros(kAeadTagSize);
    return std::move(w).take();
  }
  w.u32(p.version);
  w.u8(static_cast<std::uint8_t>(p.dcid.size()));
  w.raw(p.dcid);
  w.u8(static_cast<std::uint8_t>(p.scid.size()));
  w.raw(p.scid);
  if (p.is_version_negotiation()) {
    for (const std::uint32_t v : p.supported_versions) {
      w.u32(v);
    }
    return std::move(w).take();
  }
  if (p.type == packet_type::retry) {
    w.raw(p.token);
    w.zeros(kAeadTagSize);  // retry integrity tag
    return std::move(w).take();
  }
  if (p.type == packet_type::initial) {
    write_varint(w, p.token.size());
    w.raw(p.token);
  }
  const std::size_t protected_size =
      kPacketNumberSize + p.payload_size() + kAeadTagSize;
  write_varint(w, protected_size);
  w.u16(static_cast<std::uint16_t>(p.packet_number));
  for (const auto& f : p.frames) {
    write_frame(w, f);
  }
  w.zeros(kAeadTagSize);  // AEAD tag placeholder
  return std::move(w).take();
}

std::vector<packet> parse_datagram(bytes_view payload) {
  std::vector<packet> out;
  buffer_reader r{payload};
  while (!r.empty()) {
    if (r.peek_u8() == 0) {
      break;  // datagram-level padding
    }
    const std::uint8_t first = r.u8();
    if ((first & 0x80) == 0) {
      if ((first & 0x40) == 0) {
        throw codec_error("packet without the fixed bit");
      }
      // Short header (1-RTT): no length field, so the packet consumes
      // the rest of the datagram — it is always the last one.
      packet p;
      p.type = packet_type::one_rtt;
      const std::uint8_t dcid_len = r.u8();
      const auto dcid = r.raw(dcid_len);
      p.dcid.assign(dcid.begin(), dcid.end());
      if (r.remaining() < kPacketNumberSize + kAeadTagSize) {
        throw codec_error("short-header packet truncated");
      }
      p.packet_number = r.u16();
      p.frames = parse_frames(r.raw(r.remaining() - kAeadTagSize));
      r.skip(kAeadTagSize);
      out.push_back(std::move(p));
      break;
    }
    packet p;
    p.type = static_cast<packet_type>((first >> 4) & 0x03);
    p.version = r.u32();
    const std::uint8_t dcid_len = r.u8();
    const auto dcid = r.raw(dcid_len);
    p.dcid.assign(dcid.begin(), dcid.end());
    const std::uint8_t scid_len = r.u8();
    const auto scid = r.raw(scid_len);
    p.scid.assign(scid.begin(), scid.end());
    if (p.is_version_negotiation()) {
      // The remainder of a VN packet is the version list; it consumes
      // the rest of the datagram (RFC 9000 §17.2.1).
      while (r.remaining() >= 4) {
        p.supported_versions.push_back(r.u32());
      }
      out.push_back(std::move(p));
      continue;
    }
    if (p.type == packet_type::retry) {
      // Token is everything up to the 16-byte integrity tag.
      const std::size_t rest = r.remaining();
      if (rest < kAeadTagSize) {
        throw codec_error("retry packet truncated");
      }
      const auto token = r.raw(rest - kAeadTagSize);
      p.token.assign(token.begin(), token.end());
      r.skip(kAeadTagSize);
      out.push_back(std::move(p));
      continue;
    }
    if (p.type == packet_type::initial) {
      const std::uint64_t token_len = read_varint(r);
      const auto token = r.raw(token_len);
      p.token.assign(token.begin(), token.end());
    }
    const std::uint64_t protected_size = read_varint(r);
    if (protected_size < kPacketNumberSize + kAeadTagSize) {
      throw codec_error("packet length too small");
    }
    p.packet_number = r.u16();
    const std::size_t frame_bytes =
        static_cast<std::size_t>(protected_size) - kPacketNumberSize -
        kAeadTagSize;
    p.frames = parse_frames(r.raw(frame_bytes));
    r.skip(kAeadTagSize);
    out.push_back(std::move(p));
  }
  return out;
}

packet make_version_negotiation(bytes_view client_scid,
                                bytes_view client_dcid,
                                const std::vector<std::uint32_t>& versions) {
  packet vn;
  vn.version = 0;
  vn.dcid.assign(client_scid.begin(), client_scid.end());
  vn.scid.assign(client_dcid.begin(), client_dcid.end());
  vn.supported_versions = versions;
  return vn;
}

std::size_t pad_datagram_to(std::vector<packet>& packets, std::size_t target) {
  if (packets.empty()) {
    throw config_error("pad_datagram_to on empty datagram");
  }
  std::size_t current = 0;
  for (const auto& p : packets) {
    current += p.wire_size();
  }
  if (current >= target) {
    return 0;
  }
  // PADDING frames are 1 byte each, so packet length grows by exactly
  // the padding count unless the length varint itself widens; iterate
  // until the encoded size lands on target.
  std::size_t added_total = 0;
  while (current < target) {
    const std::size_t missing = target - current;
    packet& last = packets.back();
    if (!last.frames.empty()) {
      if (auto* padding = std::get_if<padding_frame>(&last.frames.back())) {
        padding->count += missing;
        added_total += missing;
        current = 0;
        for (const auto& p : packets) {
          current += p.wire_size();
        }
        continue;
      }
    }
    last.frames.push_back(padding_frame{missing});
    added_total += missing;
    current = 0;
    for (const auto& p : packets) {
      current += p.wire_size();
    }
  }
  // The varint growth can overshoot by at most 7 bytes; shrink back.
  while (current > target && added_total > 0) {
    packet& last = packets.back();
    auto* padding = std::get_if<padding_frame>(&last.frames.back());
    if (padding == nullptr || padding->count == 0) {
      break;
    }
    --padding->count;
    --added_total;
    if (padding->count == 0) {
      last.frames.pop_back();
    }
    current = 0;
    for (const auto& p : packets) {
      current += p.wire_size();
    }
  }
  return added_total;
}

bytes encode_datagram(const std::vector<packet>& packets) {
  bytes out;
  for (const auto& p : packets) {
    append(out, encode_packet(p));
  }
  return out;
}

datagram_accounting account_datagram(bytes_view payload) {
  datagram_accounting acc;
  acc.total = payload.size();
  for (const auto& p : parse_datagram(payload)) {
    const frame_accounting fa = account(p.frames);
    acc.crypto_payload += fa.crypto_payload;
    acc.padding += fa.padding;
    acc.stream_payload += fa.stream_payload;
    acc.has_initial |= p.type == packet_type::initial;
    acc.has_handshake |= p.type == packet_type::handshake;
    acc.has_retry |= p.type == packet_type::retry;
  }
  return acc;
}

}  // namespace certquic::quic
