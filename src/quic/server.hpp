// QUIC server endpoint for one service (domain + certificate chain +
// behaviour profile), attached to the network simulator.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "net/simulator.hpp"
#include "quic/behavior.hpp"
#include "util/rng.hpp"
#include "x509/chain.hpp"

namespace certquic::quic {

/// Aggregated server-side counters (all connections).
struct server_stats {
  std::uint64_t connections = 0;
  std::uint64_t retries_sent = 0;
  std::uint64_t datagrams_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t retransmission_flights = 0;
  /// Flights the amplification limit held back until validation — the
  /// budget gating *when* bytes go out, not just whether (the stall is
  /// the round trip the multi-RTT timelines pay).
  std::uint64_t budget_blocked_flights = 0;
  /// Total virtual time connections spent with a flight blocked on the
  /// amplification budget, from the blocking send attempt until
  /// validation released it.
  std::uint64_t budget_blocked_us = 0;
};

/// A QUIC/TLS server. One instance serves one certificate chain under
/// one behaviour profile; it accepts any number of connections.
class server {
 public:
  /// `codec_dictionary` backs certificate compression when a client
  /// offers an algorithm in `behavior.compression_support`.
  server(net::simulator& sim, net::endpoint_id address, x509::chain chain,
         server_behavior behavior, bytes codec_dictionary, std::uint64_t seed);
  ~server();

  server(const server&) = delete;
  server& operator=(const server&) = delete;

  [[nodiscard]] const net::endpoint_id& address() const noexcept {
    return address_;
  }
  [[nodiscard]] const server_stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const x509::chain& chain() const noexcept { return chain_; }
  [[nodiscard]] const server_behavior& behavior() const noexcept {
    return behavior_;
  }

 private:
  struct connection {
    net::endpoint_id peer;
    bytes client_dcid;   // what the client called us
    bytes client_scid;   // the client's source cid (our dcid towards it)
    bytes our_scid;
    bool validated = false;
    bool done = false;   // full flight delivered and acknowledged
    bool limit_exempt = false;  // transient: non-compliant resend pump
    std::uint64_t bytes_received = 0;
    std::uint64_t budget_spent = 0;  // per-policy accounting units
    std::size_t handshake_packets_sent = 0;
    std::size_t datagrams_sent = 0;
    std::uint64_t next_pn_initial = 0;
    std::uint64_t next_pn_handshake = 0;
    std::uint64_t largest_seen_initial_pn = 0;
    bool largest_seen_valid = false;
    // TLS byte streams by encryption level.
    bytes initial_stream;    // ServerHello
    bytes handshake_stream;  // EE..Finished (possibly compressed cert)
    std::size_t initial_sent = 0;    // first-transmission watermark
    std::size_t handshake_sent = 0;
    std::size_t retransmissions = 0;
    net::duration pto = 0;
    std::uint64_t pto_generation = 0;  // cancels stale timers
    bool budget_blocked = false;       // a flight waits on validation
    net::time_point blocked_since = 0;
    bool app_response_sent = false;    // one response per connection
    std::uint64_t next_pn_app = 0;
    net::time_point next_send_at = 0;  // pacing horizon (pacing_bps)
  };

  void on_datagram(const net::datagram& d);
  void handle_client_initial(connection& c, const packet& p,
                             std::size_t datagram_size);
  /// Sends as much pending flight data as the policy allows.
  void pump(connection& c, bool include_ack);
  /// Retransmits everything sent so far (unvalidated client timeout).
  void retransmit(connection& c);
  void arm_pto(connection& c);
  /// Answers the client's 1-RTT STREAM request with one response
  /// datagram (once per connection) — the application byte the TTFB
  /// timeline ends on.
  void maybe_send_app_response(connection& c, const packet& p);

  /// Checks and charges the amplification budget for one datagram of
  /// `wire_bytes` containing `padding_bytes` of padding and
  /// `handshake_packets` Handshake-type packets. Returns false when the
  /// policy forbids sending.
  [[nodiscard]] bool charge(connection& c, std::size_t wire_bytes,
                            std::size_t padding_bytes,
                            std::size_t handshake_packets);

  void transmit(connection& c, std::vector<packet> packets);

  net::simulator& sim_;
  net::endpoint_id address_;
  x509::chain chain_;
  server_behavior behavior_;
  bytes codec_dictionary_;
  rng rng_;
  server_stats stats_;
  std::unordered_map<net::endpoint_id, std::unique_ptr<connection>> conns_;
};

}  // namespace certquic::quic
