// QUIC v1 long-header packets, short-header 1-RTT packets and datagram
// (de)coalescing (RFC 9000 §17.2/§17.3). AEAD is modelled by a 16-byte
// tag; header protection is not applied (the simulation parses its own
// packets). All sizes on the wire are exact.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "quic/frames.hpp"
#include "util/bytes.hpp"

namespace certquic::quic {

inline constexpr std::uint32_t kVersion1 = 0x00000001;
/// Minimum UDP payload for datagrams carrying ack-eliciting Initials.
inline constexpr std::size_t kMinInitialSize = 1200;
/// AEAD tag appended to every protected packet.
inline constexpr std::size_t kAeadTagSize = 16;
/// Packet-number length used throughout the simulation.
inline constexpr std::size_t kPacketNumberSize = 2;

/// Packet types: the four long-header values (which are also their
/// wire type bits) plus the short-header 1-RTT form. 1-RTT packets
/// carry the post-handshake application data (STREAM frames) of the
/// TTFB timeline; having no length field, they extend to the end of
/// the datagram and must therefore be coalesced last (RFC 9000 §12.2).
enum class packet_type : std::uint8_t {
  initial = 0,
  zero_rtt = 1,
  handshake = 2,
  retry = 3,
  one_rtt = 4,  // short header; not a long-header type-bits value
};

/// A QUIC long-header packet before encryption.
///
/// Version Negotiation packets are represented as `version == 0` with
/// the offered versions in `supported_versions` (RFC 9000 §17.2.1).
struct packet {
  packet_type type = packet_type::initial;
  std::uint32_t version = kVersion1;
  bytes dcid;
  bytes scid;
  bytes token;  // Initial: client token; Retry: the issued retry token
  std::uint64_t packet_number = 0;
  std::vector<frame> frames;
  std::vector<std::uint32_t> supported_versions;  // VN packets only

  [[nodiscard]] bool is_version_negotiation() const noexcept {
    return version == 0;
  }

  /// Size of the encoded packet on the wire.
  [[nodiscard]] std::size_t wire_size() const;
  /// Sum of frame payload sizes.
  [[nodiscard]] std::size_t payload_size() const;
  /// True when any frame is ack-eliciting.
  [[nodiscard]] bool ack_eliciting() const;
};

/// Encodes one packet.
[[nodiscard]] bytes encode_packet(const packet& p);

/// Builds a Version Negotiation packet echoing the client's connection
/// ids and listing the server's supported versions.
[[nodiscard]] packet make_version_negotiation(
    bytes_view client_scid, bytes_view client_dcid,
    const std::vector<std::uint32_t>& versions);

/// Parses every packet coalesced into one UDP datagram; stops at
/// trailing datagram padding (a zero first byte). Throws codec_error on
/// malformed packets.
[[nodiscard]] std::vector<packet> parse_datagram(bytes_view payload);

/// Appends enough PADDING to the last packet's frames so the encoded
/// datagram reaches exactly `target` bytes. No-op when already >=
/// target. Returns the number of padding bytes added.
std::size_t pad_datagram_to(std::vector<packet>& packets, std::size_t target);

/// Encodes a coalesced datagram (packets concatenated).
[[nodiscard]] bytes encode_datagram(const std::vector<packet>& packets);

/// Byte-accounting across a parsed datagram.
struct datagram_accounting {
  std::size_t total = 0;           // UDP payload bytes
  std::size_t crypto_payload = 0;  // TLS bytes
  std::size_t padding = 0;         // PADDING bytes
  std::size_t stream_payload = 0;  // application STREAM bytes
  bool has_initial = false;
  bool has_handshake = false;
  bool has_retry = false;

  /// Everything that is not TLS payload: headers, ACKs, padding, tags.
  [[nodiscard]] std::size_t quic_overhead() const noexcept {
    return total - crypto_payload;
  }
};
[[nodiscard]] datagram_accounting account_datagram(bytes_view payload);

}  // namespace certquic::quic
