#include "quic/frames.hpp"

#include "quic/varint.hpp"
#include "util/errors.hpp"

namespace certquic::quic {
namespace {

constexpr std::uint8_t kPadding = 0x00;
constexpr std::uint8_t kPing = 0x01;
constexpr std::uint8_t kAck = 0x02;
constexpr std::uint8_t kCrypto = 0x06;
// STREAM with OFF, LEN and FIN bits (RFC 9000 §19.8).
constexpr std::uint8_t kStreamOffLenFin = 0x0f;
constexpr std::uint8_t kConnectionClose = 0x1c;

struct size_visitor {
  std::size_t operator()(const padding_frame& f) const { return f.count; }
  std::size_t operator()(const ping_frame&) const { return 1; }
  std::size_t operator()(const ack_frame& f) const {
    // type + largest + delay(0) + range_count(0) + first_range(largest).
    return 1 + varint_size(f.largest) + 1 + 1 + varint_size(f.largest);
  }
  std::size_t operator()(const crypto_frame& f) const {
    return 1 + varint_size(f.offset) + varint_size(f.data.size()) +
           f.data.size();
  }
  std::size_t operator()(const connection_close_frame& f) const {
    return 1 + varint_size(f.error_code) + 1 +
           varint_size(f.reason.size()) + f.reason.size();
  }
  std::size_t operator()(const stream_frame& f) const {
    return 1 + varint_size(f.id) + varint_size(f.offset) +
           varint_size(f.data.size()) + f.data.size();
  }
};

struct write_visitor {
  buffer_writer& w;

  void operator()(const padding_frame& f) const { w.zeros(f.count); }
  void operator()(const ping_frame&) const { w.u8(kPing); }
  void operator()(const ack_frame& f) const {
    w.u8(kAck);
    write_varint(w, f.largest);
    write_varint(w, 0);  // ack delay
    write_varint(w, 0);  // additional ranges
    write_varint(w, f.largest);  // first range covers everything
  }
  void operator()(const crypto_frame& f) const {
    w.u8(kCrypto);
    write_varint(w, f.offset);
    write_varint(w, f.data.size());
    w.raw(f.data);
  }
  void operator()(const connection_close_frame& f) const {
    w.u8(kConnectionClose);
    write_varint(w, f.error_code);
    write_varint(w, 0);  // offending frame type
    write_varint(w, f.reason.size());
    w.raw(f.reason);
  }
  void operator()(const stream_frame& f) const {
    w.u8(kStreamOffLenFin);
    write_varint(w, f.id);
    write_varint(w, f.offset);
    write_varint(w, f.data.size());
    w.raw(f.data);
  }
};

}  // namespace

std::size_t frame_size(const frame& f) { return std::visit(size_visitor{}, f); }

void write_frame(buffer_writer& w, const frame& f) {
  std::visit(write_visitor{w}, f);
}

std::vector<frame> parse_frames(bytes_view payload) {
  std::vector<frame> out;
  buffer_reader r{payload};
  while (!r.empty()) {
    const std::uint8_t type = r.peek_u8();
    switch (type) {
      case kPadding: {
        std::size_t count = 0;
        while (!r.empty() && r.peek_u8() == kPadding) {
          (void)r.u8();
          ++count;
        }
        out.push_back(padding_frame{count});
        break;
      }
      case kPing:
        (void)r.u8();
        out.push_back(ping_frame{});
        break;
      case kAck: {
        (void)r.u8();
        ack_frame f;
        f.largest = read_varint(r);
        (void)read_varint(r);  // delay
        const std::uint64_t ranges = read_varint(r);
        (void)read_varint(r);  // first range
        for (std::uint64_t i = 0; i < ranges; ++i) {
          (void)read_varint(r);  // gap
          (void)read_varint(r);  // range length
        }
        out.push_back(f);
        break;
      }
      case kCrypto: {
        (void)r.u8();
        crypto_frame f;
        f.offset = read_varint(r);
        const std::uint64_t len = read_varint(r);
        const bytes_view data = r.raw(len);
        f.data.assign(data.begin(), data.end());
        out.push_back(std::move(f));
        break;
      }
      case kStreamOffLenFin: {
        (void)r.u8();
        stream_frame f;
        f.id = read_varint(r);
        f.offset = read_varint(r);
        const std::uint64_t len = read_varint(r);
        const bytes_view data = r.raw(len);
        f.data.assign(data.begin(), data.end());
        out.push_back(std::move(f));
        break;
      }
      case kConnectionClose: {
        (void)r.u8();
        connection_close_frame f;
        f.error_code = read_varint(r);
        (void)read_varint(r);  // frame type
        const std::uint64_t len = read_varint(r);
        const bytes_view reason = r.raw(len);
        f.reason.assign(reason.begin(), reason.end());
        out.push_back(std::move(f));
        break;
      }
      default:
        throw codec_error("unsupported frame type " + std::to_string(type));
    }
  }
  return out;
}

bool is_ack_eliciting(const frame& f) {
  return std::holds_alternative<ping_frame>(f) ||
         std::holds_alternative<crypto_frame>(f) ||
         std::holds_alternative<stream_frame>(f);
}

frame_accounting account(const std::vector<frame>& frames) {
  frame_accounting acc;
  for (const auto& f : frames) {
    if (const auto* crypto = std::get_if<crypto_frame>(&f)) {
      acc.crypto_payload += crypto->data.size();
    } else if (const auto* padding = std::get_if<padding_frame>(&f)) {
      acc.padding += padding->count;
    } else if (const auto* stream = std::get_if<stream_frame>(&f)) {
      acc.stream_payload += stream->data.size();
    }
    acc.ack_eliciting = acc.ack_eliciting || is_ack_eliciting(f);
  }
  return acc;
}

}  // namespace certquic::quic
