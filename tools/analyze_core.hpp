// certquic_analyze — the repo's architecture analyzer.
//
// Where tools/lint_core.* asks "does this line look nondeterministic",
// this layer asks "does the tree have the shape the documentation
// promises". It is built on a real (but dependency-free) token
// scanner — `scan_source` strips block and line comments, string,
// character and raw-string literals, and records preprocessor
// directives — so nothing here ever matches text inside a comment or
// a literal. The same scanner feeds the determinism lint
// (lint_core.cpp), which is what fixed the historical
// `//`-inside-a-URL truncation and block-comment false-positive
// classes.
//
// Two passes run on top of the scanner:
//
//   layering   The `#include` graph across all src/<module>/ units is
//              extracted and checked against the checked-in layer
//              spec (tools/layers.txt — one layer per line, lowest
//              first, mirroring the docs/ARCHITECTURE.md layer map).
//              A module may include modules on its own line or on
//              earlier (lower) lines; an include of a later line is a
//              `layer-upward` finding, any include cycle is a
//              `layer-cycle` finding, and a mismatch between the spec
//              and the set of modules actually present under src/ is
//              a `layer-drift` finding (both directions — adding a
//              module without placing it in a layer fails the gate).
//              The graph is also emitted as build/depgraph.{json,dot}
//              so the docs can embed the real thing.
//
//   hygiene    IWYU-lite header discipline:
//              `pragma-once`     every header carries #pragma once;
//              `self-contained`  a header's companion .cpp includes
//                                its own header FIRST, so every
//                                header is compiled stand-alone at
//                                least once;
//              `unused-include`  a direct project include none of
//                                whose declared symbols appear in the
//                                including unit. The symbol match is
//                                token-level and deliberately
//                                generous (type/using/typedef/macro
//                                names, every identifier followed by
//                                `(`, `=` or `{`, and the header's
//                                stem), so it prefers missing a dead
//                                include over flagging a live one —
//                                conservative, and waivable through
//                                tools/lint_waivers.txt like any lint
//                                finding.
//
// Findings reuse `lint::finding` and the lint's waiver machinery, so
// one waiver file governs the whole gate and stale waivers still fail
// it. tools/certquic_analyze (the CLI) runs scanner + layering +
// hygiene + the five migrated lint rules in one pass, plus a
// `nondet-source` self-scan over tools/ itself — the analyzer obeys
// its own rules.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint_core.hpp"

namespace certquic::analyze {

/// One #include directive surviving comment stripping.
struct include_directive {
  std::size_t line = 0;   // 1-based
  std::string target;     // path between the quotes / angle brackets
  bool angled = false;    // <...> (system) vs "..." (project)
};

/// Token-scanner view of one source file. `code_lines` parallels
/// `raw_lines` with every comment and every string/char/raw-string
/// literal body blanked to spaces (quotes kept, line structure kept),
/// so regexes over it can never match commented-out or quoted text.
struct scanned_file {
  std::vector<std::string> raw_lines;
  std::vector<std::string> code_lines;
  std::vector<include_directive> includes;
  bool has_pragma_once = false;
};

/// Scans one in-memory source file. Handles `//` and `/* */` comments,
/// "..." strings with escapes, '...' char literals (digit separators
/// like 0x90C5'0D5A are NOT treated as literals), and R"delim(...)delim"
/// raw strings. Preprocessor directives are detected on the blanked
/// view, so `#include` inside a block comment does not count.
[[nodiscard]] scanned_file scan_source(const std::string& content);

/// The checked-in layer spec: one layer per line, lowest first,
/// modules separated by whitespace; '#' lines and blank lines are
/// skipped. Throws config_error on an empty spec or a module named
/// twice.
struct layer_spec {
  std::string source_path;  // as given to load_layer_spec (diagnostics)
  std::vector<std::vector<std::string>> layers;      // lowest first
  std::map<std::string, std::size_t> layer_of;       // module -> index
  std::map<std::string, std::size_t> spec_line_of;   // module -> file line
};

[[nodiscard]] layer_spec load_layer_spec(const std::string& path);

/// The module-level include graph extracted from the scanned tree.
struct module_graph {
  /// One cross-module include site backing an edge.
  struct site {
    std::string path;   // root-relative includer
    std::size_t line = 0;
    std::string raw;    // the raw #include line (findings / waivers)
  };
  std::set<std::string> modules;  // every module seen under the root
  std::map<std::pair<std::string, std::string>, std::vector<site>> edges;
};

/// Which passes to run (the CLI runs all three; tests isolate them).
struct analysis_options {
  bool run_lint = true;      // the five determinism rules (lint_core)
  bool run_layering = true;  // layer spec conformance + cycles + drift
  bool run_hygiene = true;   // pragma-once / self-contained / unused-include
};

/// Everything one analysis run produces: unwaived findings (apply
/// waivers with lint::apply_waivers) plus the include graph for the
/// depgraph artifacts.
struct analysis_result {
  std::vector<lint::finding> findings;
  module_graph graph;
};

/// Analyzes files (absolute paths under `root`). The module drift
/// check additionally enumerates `root`'s subdirectories, so a module
/// escapes neither by being left out of the file list nor by being
/// left out of the spec. Throws config_error on unreadable files.
[[nodiscard]] analysis_result analyze_tree(
    const std::vector<std::string>& files, const std::string& root,
    const layer_spec& spec, const analysis_options& opts);

/// The dependency-graph artifacts. JSON schema (all arrays sorted):
///   {"root": "src",
///    "layers": [{"index": 0, "modules": ["util"]}, ...],
///    "modules": [{"name": "asn1", "layer": 1, "files": 3,
///                 "includes": ["util"]}, ...],
///    "edges": [{"from": "asn1", "to": "util", "sites": 3}, ...]}
/// The DOT form clusters modules by layer for rendering.
[[nodiscard]] std::string depgraph_json(const module_graph& graph,
                                        const layer_spec& spec,
                                        const std::string& root_name);
[[nodiscard]] std::string depgraph_dot(const module_graph& graph,
                                       const layer_spec& spec);

}  // namespace certquic::analyze
