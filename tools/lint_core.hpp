// certquic_lint — the repo's determinism lint.
//
// The engine's headline guarantee (parallel runs bit-identical to
// serial, spill replays byte-identical) rests on source-level
// discipline that no compiler flag checks: no wall-clock or global
// entropy in probe paths, no iteration over unordered containers
// feeding aggregates, no unreviewed floating-point accumulation in
// golden-feeding paths, and no ad-hoc rng seeding outside the
// per-probe hash(base_seed, domain, salt) scheme. This lint scans
// src/ for those patterns; intentional uses are waived explicitly —
// either inline ("// certquic-lint: allow <rule> — reason") or in the
// checked-in waiver file tools/lint_waivers.txt.
//
// Rules (ids are what waivers name):
//   nondet-source   calls to std::rand/srand, std::random_device,
//                   chrono::{system,steady,high_resolution}_clock,
//                   time()/clock_gettime()/gettimeofday() — anywhere
//                   in src/. Simulated time is the only clock.
//   unordered-iter  range-for / .begin() iteration over a variable
//                   declared std::unordered_{map,set} in engine/ or
//                   core/ (aggregators and sinks): hash-order would
//                   feed aggregates in nondeterministic order.
//   float-accum     `x += ...` where x was declared float/double (or
//                   vector<double> element) in engine/, core/ or
//                   stats/ — golden-feeding paths. Order-sensitive
//                   float accumulation is only deterministic because
//                   the stream is plan-ordered; each site must say so
//                   via a waiver.
//   raw-rng         direct construction of certquic::rng with an
//                   explicit seed outside util/rng.{hpp,cpp}. Probe
//                   paths must derive seeds via
//                   engine::probe_seed(base_seed, domain, salt) or an
//                   explicitly waived scheme.
//   atomic-plain    plain (memberless) use of a variable declared
//                   std::atomic in engine/ — e.g. `head_ == tail_` or
//                   `flag = true` where the lock-free ring protocol
//                   requires an explicit .load(acquire) /
//                   .store(release). Implicit seq_cst compiles and
//                   races-free under TSan, but it hides the intended
//                   ordering and invites the plain-load-where-acquire-
//                   is-required misuse the streaming executor's rings
//                   depend on never happening.
//
// The scanner is token-level: every rule matches against the blanked
// code view produced by analyze::scan_source (tools/analyze_core.*),
// in which block and line comments and string/char/raw-string literal
// bodies are spaces. A `//` inside a URL string no longer truncates
// the line before matching, and a pattern inside a block comment no
// longer matches at all. Findings still carry the RAW source line —
// that is what waiver substrings and humans read.
//
// The waiver machinery is shared with the architecture analyzer
// (certquic_analyze): its rule ids (layer-upward, layer-cycle,
// layer-drift, pragma-once, self-contained, unused-include) are valid
// in the waiver file too, and `apply_waivers` takes the set of rules
// in scope for the current run so a lint-only run neither consumes
// nor staleness-flags an analyzer waiver.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace certquic::lint {

/// One lint hit: file (relative to the scan root), 1-based line, rule
/// id, the offending source line and a human explanation.
struct finding {
  std::string path;
  std::size_t line = 0;
  std::string rule;
  std::string message;
  std::string source_line;
};

/// One parsed entry of the waiver file.
struct waiver {
  std::string rule;
  std::string path;       // relative to the scan root
  std::string substring;  // must appear in the flagged line; "*" = any
  std::string reason;
  std::size_t file_line = 0;  // line in the waiver file (diagnostics)
};

/// Result of a lint run: surviving findings plus any waivers that
/// matched nothing (stale waivers fail the gate too — the file must
/// describe reality).
struct report {
  std::vector<finding> findings;
  std::vector<waiver> unused_waivers;

  [[nodiscard]] bool clean() const noexcept {
    return findings.empty() && unused_waivers.empty();
  }
};

/// Parses the pipe-delimited waiver file:
///   rule|path|line-substring|reason
/// '#' lines and blank lines are skipped. Throws config_error on a
/// malformed line (wrong field count, unknown rule, empty reason).
[[nodiscard]] std::vector<waiver> load_waivers(const std::string& path);

/// Lints one in-memory file. `relative_path` decides which
/// path-scoped rules apply (unordered-iter: engine/ and core/;
/// float-accum: engine/, core/ and stats/) and is what waivers match
/// against. Companion headers/sources share declaration context only
/// when linted through lint_files/lint_sources (which merge
/// per-basename units).
[[nodiscard]] std::vector<finding> lint_source(
    const std::string& relative_path, const std::string& content);

/// Lints preloaded (relative_path, content) pairs with per-basename
/// declaration-unit merge, exactly as lint_files does for on-disk
/// trees. Returns UNWAIVED findings sorted by (path, line, rule);
/// callers apply waivers via apply_waivers. This is the entry the
/// architecture analyzer uses — it has already read every file once.
[[nodiscard]] std::vector<finding> lint_sources(
    const std::vector<std::pair<std::string, std::string>>& sources);

/// Only the nondet-source rule, token-level, for the tools/ self-scan:
/// the analyzer must obey its own no-wall-clock rule, but tools/ is
/// not subject to the src/-shaped aggregator/golden-path rules.
[[nodiscard]] std::vector<finding> lint_nondet_only(
    const std::string& relative_path, const std::string& content);

/// Applies waivers to findings (first matching waiver wins). A waiver
/// participates only when its rule is in `rules_in_scope`: out-of-
/// scope waivers are neither applied nor reported stale, so the
/// lint-only gate (five lint rules in scope) coexists with the full
/// analyze gate (all rules in scope, which performs the complete
/// stale-waiver check).
[[nodiscard]] report apply_waivers(std::vector<finding> findings,
                                   const std::vector<waiver>& waivers,
                                   const std::set<std::string>& rules_in_scope);

/// Lints files on disk. Paths must live under `root`; findings carry
/// root-relative paths. Waivers are applied with the five lint rules
/// in scope (first matching waiver wins; every in-scope waiver must
/// match at least one finding or it is reported unused). Throws
/// config_error on unreadable files.
[[nodiscard]] report lint_files(const std::vector<std::string>& files,
                                const std::string& root,
                                const std::vector<waiver>& waivers);

/// All .hpp/.cpp files under root, sorted (deterministic scan order).
[[nodiscard]] std::vector<std::string> collect_sources(
    const std::string& root);

/// The five determinism-lint rule ids (the scope of a lint-only run).
[[nodiscard]] const std::set<std::string>& lint_rules();

/// Every rule id the toolchain implements: the five lint rules plus
/// the analyzer's layer-upward / layer-cycle / layer-drift /
/// pragma-once / self-contained / unused-include (the scope of a full
/// certquic_analyze run, and what the waiver file may name).
[[nodiscard]] const std::set<std::string>& all_rules();

/// True for rule ids the toolchain implements (waiver validation).
[[nodiscard]] bool known_rule(const std::string& rule);

}  // namespace certquic::lint
