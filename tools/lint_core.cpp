#include "lint_core.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>

#include "analyze_core.hpp"
#include "util/errors.hpp"

namespace certquic::lint {
namespace {

constexpr const char* kInlineWaiverTag = "certquic-lint: allow ";

/// Files allowed to construct rng directly: the generator itself.
bool rng_allowlisted(const std::string& relative_path) {
  return relative_path == "util/rng.hpp" || relative_path == "util/rng.cpp";
}

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// unordered-iter applies where aggregates are built.
bool in_aggregator_paths(const std::string& relative_path) {
  return starts_with(relative_path, "engine/") ||
         starts_with(relative_path, "core/") ||
         starts_with(relative_path, "service/");
}

/// atomic-plain applies where lock-free executor code lives: plain
/// (memberless) use of a std::atomic both hides the intended ordering
/// (implicit seq_cst reads as "unconsidered") and breaks the ring's
/// documented acquire/release contract when someone reaches for
/// `head_ == tail_` instead of an explicit acquire load.
bool in_executor_paths(const std::string& relative_path) {
  return starts_with(relative_path, "engine/");
}

/// float-accum applies to golden-feeding paths.
bool in_golden_paths(const std::string& relative_path) {
  return starts_with(relative_path, "engine/") ||
         starts_with(relative_path, "core/") ||
         starts_with(relative_path, "service/") ||
         starts_with(relative_path, "stats/");
}

/// Rules waived by an inline "// certquic-lint: allow <rule> — reason"
/// comment on this raw line. Raw, not scrubbed: the allowance lives in
/// a comment, which the token scanner blanks.
std::set<std::string> inline_allowances(const std::string& raw_line) {
  std::set<std::string> out;
  std::size_t pos = 0;
  while ((pos = raw_line.find(kInlineWaiverTag, pos)) != std::string::npos) {
    pos += std::string(kInlineWaiverTag).size();
    std::size_t end = pos;
    while (end < raw_line.size() &&
           (std::isalnum(static_cast<unsigned char>(raw_line[end])) != 0 ||
            raw_line[end] == '-')) {
      ++end;
    }
    out.insert(raw_line.substr(pos, end - pos));
    pos = end;
  }
  return out;
}

/// The scrubbed code view flattened to one line, for declaration
/// regexes that must see across wrapped lines. Comments and literal
/// bodies are already spaces here, so `double` in a doc comment never
/// registers a declaration.
std::string flatten_code(const analyze::scanned_file& scan) {
  std::string out;
  for (const std::string& line : scan.code_lines) {
    out += line;
    out += ' ';
  }
  return out;
}

/// Identifiers declared as std::unordered_{map,set} in this unit.
std::set<std::string> unordered_decls(const std::string& flat) {
  static const std::regex decl{
      R"(unordered_(?:map|set)\s*<[^;]*>\s*([A-Za-z_]\w*)\s*[;={(])"};
  std::set<std::string> names;
  for (std::sregex_iterator it{flat.begin(), flat.end(), decl}, end;
       it != end; ++it) {
    names.insert((*it)[1].str());
  }
  return names;
}

/// Identifiers declared float/double (including vector<double>
/// elements via the `double> name` shape) in this unit.
std::set<std::string> float_decls(const std::string& flat) {
  static const std::regex decl{
      R"((?:\bdouble\b|\bfloat\b)\s*>*\s+([A-Za-z_]\w*)\s*(?:[;={,)]|\[))"};
  std::set<std::string> names;
  for (std::sregex_iterator it{flat.begin(), flat.end(), decl}, end;
       it != end; ++it) {
    names.insert((*it)[1].str());
  }
  return names;
}

/// Identifiers declared std::atomic<...> in this unit.
std::set<std::string> atomic_decls(const std::string& flat) {
  static const std::regex decl{
      R"(std\s*::\s*atomic\s*<[^;]*?>\s*([A-Za-z_]\w*)\s*[;={(])"};
  std::set<std::string> names;
  for (std::sregex_iterator it{flat.begin(), flat.end(), decl}, end;
       it != end; ++it) {
    names.insert((*it)[1].str());
  }
  return names;
}

struct nondet_pattern {
  std::regex re;
  const char* what;
};

const std::vector<nondet_pattern>& nondet_patterns() {
  // Boundary class before bare time(/clock( excludes identifier chars,
  // '.', and '>' so member calls on simulated-time structs
  // (obs.complete_time, clock-> ...) don't hit; ':' stays IN bounds so
  // std::time( / ::time( are caught.
  static const std::vector<nondet_pattern> patterns = [] {
    std::vector<nondet_pattern> p;
    p.push_back({std::regex{R"(\bstd\s*::\s*rand\b)"}, "std::rand"});
    p.push_back({std::regex{R"(\bsrand\s*\()"}, "srand()"});
    p.push_back({std::regex{R"(\brandom_device\b)"}, "std::random_device"});
    p.push_back({std::regex{R"(\bsystem_clock\b)"}, "chrono::system_clock"});
    p.push_back({std::regex{R"(\bsteady_clock\b)"}, "chrono::steady_clock"});
    p.push_back({std::regex{R"(\bhigh_resolution_clock\b)"},
                 "chrono::high_resolution_clock"});
    p.push_back({std::regex{R"((?:^|[^A-Za-z0-9_.>])time\s*\()"}, "time()"});
    p.push_back(
        {std::regex{R"((?:^|[^A-Za-z0-9_.>])clock\s*\()"}, "clock()"});
    p.push_back({std::regex{R"(\bclock_gettime\b)"}, "clock_gettime()"});
    p.push_back({std::regex{R"(\bgettimeofday\b)"}, "gettimeofday()"});
    return p;
  }();
  return patterns;
}

const std::vector<std::regex>& raw_rng_patterns() {
  static const std::vector<std::regex> patterns = {
      // rng name{...} / rng{...} temporaries.
      std::regex{R"(\brng\s+[A-Za-z_]\w*\s*\{)"},
      std::regex{R"(\brng\s*\{)"},
      // rng(...) invocation (not rng::rng definitions, not `rng name(`
      // function declarations returning rng).
      std::regex{R"((?:^|[^A-Za-z0-9_:])rng\s*\()"},
  };
  return patterns;
}

/// Which of the five rules to run over a unit.
struct rule_mask {
  bool nondet = true;
  bool unordered = false;
  bool float_accum = false;
  bool atomic = false;
  bool rng = false;
};

rule_mask mask_for(const std::string& relative_path) {
  rule_mask m;
  m.unordered = in_aggregator_paths(relative_path);
  m.float_accum = in_golden_paths(relative_path);
  m.atomic = in_executor_paths(relative_path);
  m.rng = !rng_allowlisted(relative_path);
  return m;
}

/// Matches all enabled rules against the scanned file. Every regex
/// runs on the BLANKED code line (scan.code_lines), so commented-out
/// and quoted text can't match; findings carry the RAW line, which is
/// what waiver substrings and humans read.
void lint_scanned(const std::string& relative_path,
                  const analyze::scanned_file& scan, const rule_mask& mask,
                  const std::set<std::string>& unordered_names,
                  const std::set<std::string>& float_names,
                  const std::set<std::string>& atomic_names,
                  std::vector<finding>& out) {
  // Per-name iteration/accumulation regexes, built once per file.
  std::vector<std::pair<std::string, std::regex>> iter_res;
  if (mask.unordered) {
    for (const std::string& name : unordered_names) {
      iter_res.emplace_back(
          name, std::regex{R"((?::\s*[\w.>-]*\b)" + name + R"(\b\s*\)|\b)" +
                           name + R"(\s*\.\s*c?begin\s*\())"});
    }
  }
  std::vector<std::pair<std::string, std::regex>> accum_res;
  if (mask.float_accum) {
    for (const std::string& name : float_names) {
      accum_res.emplace_back(
          name, std::regex{R"(\b)" + name +
                           R"(\s*(?:\[[^\]]*\])?\s*[+-]=)"});
    }
  }
  // Plain (memberless) atomic use: the name with no `.load(...)` /
  // `.store(...)` / other member call after it and no member/scope
  // qualifier before it. Declaration lines (contain `atomic<`) are
  // exempt.
  std::vector<std::pair<std::string, std::regex>> atomic_res;
  static const std::regex atomic_decl_line{R"(atomic\s*<)"};
  if (mask.atomic) {
    for (const std::string& name : atomic_names) {
      atomic_res.emplace_back(
          name, std::regex{R"((?:^|[^A-Za-z0-9_.>:]))" + name +
                           R"((?![\w]|\s*\.))"});
    }
  }

  std::set<std::string> prev_allow;
  for (std::size_t n = 0; n < scan.raw_lines.size(); ++n) {
    const std::size_t line_no = n + 1;
    const std::string& raw = scan.raw_lines[n];
    const std::string& line = scan.code_lines[n];
    const std::set<std::string> allow = inline_allowances(raw);
    const auto waived = [&](const char* rule) {
      return allow.count(rule) != 0 || prev_allow.count(rule) != 0;
    };

    if (mask.nondet && !waived("nondet-source")) {
      for (const nondet_pattern& p : nondet_patterns()) {
        if (std::regex_search(line, p.re)) {
          out.push_back({relative_path, line_no, "nondet-source",
                         std::string(p.what) +
                             " is nondeterministic: probe paths must use "
                             "simulated time and seeded util::rng only",
                         raw});
          break;
        }
      }
    }
    if (mask.unordered && !waived("unordered-iter")) {
      for (const auto& [name, re] : iter_res) {
        if (std::regex_search(line, re)) {
          out.push_back({relative_path, line_no, "unordered-iter",
                         "iteration over unordered container '" + name +
                             "' — hash order must not feed aggregates; "
                             "iterate a sorted or plan-ordered view",
                         raw});
          break;
        }
      }
    }
    if (mask.float_accum && !waived("float-accum")) {
      for (const auto& [name, re] : accum_res) {
        if (std::regex_search(line, re)) {
          out.push_back({relative_path, line_no, "float-accum",
                         "floating-point accumulation into '" + name +
                             "' in a golden-feeding path — waive with the "
                             "reason the order is deterministic",
                         raw});
          break;
        }
      }
    }
    if (mask.atomic && !waived("atomic-plain") &&
        !std::regex_search(line, atomic_decl_line)) {
      for (const auto& [name, re] : atomic_res) {
        if (std::regex_search(line, re)) {
          out.push_back({relative_path, line_no, "atomic-plain",
                         "plain use of std::atomic '" + name +
                             "' — implicit seq_cst hides the intended "
                             "ordering; use an explicit .load/.store with "
                             "the memory order the protocol requires "
                             "(acquire/release for ring cursors)",
                         raw});
          break;
        }
      }
    }
    if (mask.rng && !waived("raw-rng")) {
      for (const std::regex& re : raw_rng_patterns()) {
        if (std::regex_search(line, re)) {
          out.push_back({relative_path, line_no, "raw-rng",
                         "direct rng construction bypasses the per-probe "
                         "hash(base_seed, domain, salt) discipline — derive "
                         "seeds via engine::probe_seed or waive with the "
                         "seeding scheme",
                         raw});
          break;
        }
      }
    }
    prev_allow = allow;
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    throw config_error("certquic_lint: cannot read " + path);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Root-relative path with forward slashes.
std::string relativize(const std::string& file, const std::string& root) {
  const std::filesystem::path rel = std::filesystem::relative(file, root);
  return rel.generic_string();
}

/// Unit key: companion .hpp/.cpp files share declaration context (a
/// member declared double in cdf.hpp is accumulation-checked in
/// cdf.cpp).
std::string unit_key(const std::string& relative_path) {
  const std::filesystem::path p{relative_path};
  return (p.parent_path() / p.stem()).generic_string();
}

}  // namespace

const std::set<std::string>& lint_rules() {
  static const std::set<std::string> rules = {
      "nondet-source", "unordered-iter", "float-accum",
      "raw-rng",       "atomic-plain",
  };
  return rules;
}

const std::set<std::string>& all_rules() {
  static const std::set<std::string> rules = [] {
    std::set<std::string> r = lint_rules();
    r.insert("layer-upward");
    r.insert("layer-cycle");
    r.insert("layer-drift");
    r.insert("pragma-once");
    r.insert("self-contained");
    r.insert("unused-include");
    return r;
  }();
  return rules;
}

bool known_rule(const std::string& rule) {
  return all_rules().count(rule) != 0;
}

std::vector<waiver> load_waivers(const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    throw config_error("certquic_lint: cannot read waiver file " + path);
  }
  std::vector<waiver> out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::vector<std::string> fields;
    std::size_t start = 0;
    for (std::size_t pos = 0; pos <= line.size(); ++pos) {
      if (pos == line.size() || line[pos] == '|') {
        fields.push_back(line.substr(start, pos - start));
        start = pos + 1;
      }
    }
    if (fields.size() != 4) {
      throw config_error("certquic_lint: waiver line " +
                         std::to_string(line_no) +
                         " needs rule|path|substring|reason: " + line);
    }
    waiver w{fields[0], fields[1], fields[2], fields[3], line_no};
    if (!known_rule(w.rule)) {
      throw config_error("certquic_lint: waiver line " +
                         std::to_string(line_no) + " names unknown rule '" +
                         w.rule + "'");
    }
    if (w.substring.empty() || w.reason.empty()) {
      throw config_error("certquic_lint: waiver line " +
                         std::to_string(line_no) +
                         " needs a non-empty substring and reason");
    }
    out.push_back(std::move(w));
  }
  return out;
}

std::vector<finding> lint_source(const std::string& relative_path,
                                 const std::string& content) {
  const analyze::scanned_file scan = analyze::scan_source(content);
  const std::string flat = flatten_code(scan);
  std::vector<finding> out;
  lint_scanned(relative_path, scan, mask_for(relative_path),
               unordered_decls(flat), float_decls(flat), atomic_decls(flat),
               out);
  return out;
}

std::vector<finding> lint_nondet_only(const std::string& relative_path,
                                      const std::string& content) {
  const analyze::scanned_file scan = analyze::scan_source(content);
  rule_mask mask;  // nondet only
  mask.unordered = mask.float_accum = mask.atomic = mask.rng = false;
  std::vector<finding> out;
  lint_scanned(relative_path, scan, mask, {}, {}, {}, out);
  return out;
}

std::vector<finding> lint_sources(
    const std::vector<std::pair<std::string, std::string>>& sources) {
  // Pass 1: scan everything and merge declaration context per unit.
  struct scanned_source {
    std::string relative;
    analyze::scanned_file scan;
  };
  std::vector<scanned_source> scans;
  scans.reserve(sources.size());
  std::map<std::string, std::set<std::string>> unit_unordered;
  std::map<std::string, std::set<std::string>> unit_float;
  std::map<std::string, std::set<std::string>> unit_atomic;
  for (const auto& [relative, content] : sources) {
    scanned_source src{relative, analyze::scan_source(content)};
    const std::string flat = flatten_code(src.scan);
    const std::string key = unit_key(relative);
    for (const std::string& name : unordered_decls(flat)) {
      unit_unordered[key].insert(name);
    }
    for (const std::string& name : float_decls(flat)) {
      unit_float[key].insert(name);
    }
    for (const std::string& name : atomic_decls(flat)) {
      unit_atomic[key].insert(name);
    }
    scans.push_back(std::move(src));
  }

  // Pass 2: lint each file against its unit's declarations.
  std::vector<finding> all;
  for (const scanned_source& src : scans) {
    const std::string key = unit_key(src.relative);
    lint_scanned(src.relative, src.scan, mask_for(src.relative),
                 unit_unordered[key], unit_float[key], unit_atomic[key], all);
  }
  std::sort(all.begin(), all.end(), [](const finding& a, const finding& b) {
    return std::tie(a.path, a.line, a.rule) < std::tie(b.path, b.line, b.rule);
  });
  return all;
}

report apply_waivers(std::vector<finding> findings,
                     const std::vector<waiver>& waivers,
                     const std::set<std::string>& rules_in_scope) {
  report rep;
  std::vector<bool> used(waivers.size(), false);
  std::vector<bool> in_scope(waivers.size(), false);
  for (std::size_t w = 0; w < waivers.size(); ++w) {
    in_scope[w] = rules_in_scope.count(waivers[w].rule) != 0;
  }
  for (finding& f : findings) {
    bool waived = false;
    for (std::size_t w = 0; w < waivers.size(); ++w) {
      if (in_scope[w] && waivers[w].rule == f.rule &&
          waivers[w].path == f.path &&
          (waivers[w].substring == "*" ||
           f.source_line.find(waivers[w].substring) != std::string::npos)) {
        used[w] = true;
        waived = true;
        break;
      }
    }
    if (!waived) {
      rep.findings.push_back(std::move(f));
    }
  }
  for (std::size_t w = 0; w < waivers.size(); ++w) {
    if (in_scope[w] && !used[w]) {
      rep.unused_waivers.push_back(waivers[w]);
    }
  }
  return rep;
}

report lint_files(const std::vector<std::string>& files,
                  const std::string& root,
                  const std::vector<waiver>& waivers) {
  std::vector<std::pair<std::string, std::string>> sources;
  sources.reserve(files.size());
  for (const std::string& file : files) {
    sources.emplace_back(relativize(file, root), read_file(file));
  }
  return apply_waivers(lint_sources(sources), waivers, lint_rules());
}

std::vector<std::string> collect_sources(const std::string& root) {
  std::vector<std::string> out;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    const std::string ext = entry.path().extension().string();
    if (ext == ".hpp" || ext == ".cpp") {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace certquic::lint
