// certquic_lint — determinism lint over src/ (see lint_core.hpp for
// the rule set and waiver semantics).
//
// Usage:
//   certquic_lint --root <srcdir> [--waivers <file>] [files...]
//
// With no file arguments, every .hpp/.cpp under --root is scanned.
// Exit status: 0 clean, 1 findings or stale waivers, 2 usage/IO error.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "lint_core.hpp"
#include "util/errors.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --root <srcdir> [--waivers <file>] [files...]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string waiver_path;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--waivers") == 0 && i + 1 < argc) {
      waiver_path = argv[++i];
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if (root.empty()) {
    return usage(argv[0]);
  }

  try {
    std::vector<certquic::lint::waiver> waivers;
    if (!waiver_path.empty()) {
      waivers = certquic::lint::load_waivers(waiver_path);
    }
    if (files.empty()) {
      files = certquic::lint::collect_sources(root);
    }
    const certquic::lint::report rep =
        certquic::lint::lint_files(files, root, waivers);
    for (const certquic::lint::finding& f : rep.findings) {
      std::printf("%s:%zu: [%s] %s\n", f.path.c_str(), f.line,
                  f.rule.c_str(), f.message.c_str());
      std::printf("    %s\n", f.source_line.c_str());
    }
    for (const certquic::lint::waiver& w : rep.unused_waivers) {
      std::printf(
          "%s:%zu: [stale-waiver] waiver matches no finding — remove it "
          "(%s|%s|%s)\n",
          waiver_path.c_str(), w.file_line, w.rule.c_str(), w.path.c_str(),
          w.substring.c_str());
    }
    if (rep.clean()) {
      std::printf("certquic_lint: %zu files clean\n", files.size());
      return 0;
    }
    std::printf("certquic_lint: %zu finding(s), %zu stale waiver(s)\n",
                rep.findings.size(), rep.unused_waivers.size());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "certquic_lint: %s\n", e.what());
    return 2;
  }
}
