// certquic_analyze — architecture analyzer over src/ (see
// analyze_core.hpp for the scanner, the layering and hygiene passes,
// and lint_core.hpp for the five migrated determinism rules).
//
// Usage:
//   certquic_analyze --root <srcdir> --layers <spec>
//                    [--waivers <file>] [--out-dir <dir>]
//                    [--self-scan <toolsdir>] [files...]
//
// With no file arguments, every .hpp/.cpp under --root is scanned.
// One run executes all passes — lint + layering + hygiene — with ALL
// rule ids in waiver scope, so this is also the complete stale-waiver
// check. --out-dir writes depgraph.json and depgraph.dot there.
// --self-scan additionally runs the nondet-source rule over the given
// tools directory: the analyzer obeys its own no-wall-clock rule.
// Exit status: 0 clean, 1 findings or stale waivers, 2 usage/IO error.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analyze_core.hpp"
#include "lint_core.hpp"
#include "util/errors.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --root <srcdir> --layers <spec> "
               "[--waivers <file>] [--out-dir <dir>] "
               "[--self-scan <toolsdir>] [files...]\n",
               argv0);
  return 2;
}

void write_artifact(const std::string& path, const std::string& content) {
  std::ofstream out{path, std::ios::binary};
  if (!out) {
    throw certquic::config_error("certquic_analyze: cannot write " + path);
  }
  out << content;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string layers_path;
  std::string waiver_path;
  std::string out_dir;
  std::string self_scan_dir;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--layers") == 0 && i + 1 < argc) {
      layers_path = argv[++i];
    } else if (std::strcmp(argv[i], "--waivers") == 0 && i + 1 < argc) {
      waiver_path = argv[++i];
    } else if (std::strcmp(argv[i], "--out-dir") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--self-scan") == 0 && i + 1 < argc) {
      self_scan_dir = argv[++i];
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if (root.empty() || layers_path.empty()) {
    return usage(argv[0]);
  }

  try {
    const certquic::analyze::layer_spec spec =
        certquic::analyze::load_layer_spec(layers_path);
    std::vector<certquic::lint::waiver> waivers;
    if (!waiver_path.empty()) {
      waivers = certquic::lint::load_waivers(waiver_path);
    }
    if (files.empty()) {
      files = certquic::lint::collect_sources(root);
    }

    certquic::analyze::analysis_result result =
        certquic::analyze::analyze_tree(files, root, spec, {});

    // The self-scan: nondet-source over the tool sources themselves,
    // reported under "<dirname>/..." so waivers could name them (none
    // do at head — the tools are clean with zero waivers).
    std::size_t self_scanned = 0;
    if (!self_scan_dir.empty()) {
      const std::string prefix =
          std::filesystem::path(self_scan_dir).filename().string() + "/";
      for (const std::string& file :
           certquic::lint::collect_sources(self_scan_dir)) {
        std::ifstream in{file, std::ios::binary};
        if (!in) {
          throw certquic::config_error("certquic_analyze: cannot read " +
                                       file);
        }
        std::string content{std::istreambuf_iterator<char>(in),
                            std::istreambuf_iterator<char>()};
        const std::string relative =
            prefix +
            std::filesystem::relative(file, self_scan_dir).generic_string();
        std::vector<certquic::lint::finding> hits =
            certquic::lint::lint_nondet_only(relative, content);
        result.findings.insert(result.findings.end(),
                               std::make_move_iterator(hits.begin()),
                               std::make_move_iterator(hits.end()));
        ++self_scanned;
      }
    }

    const certquic::lint::report rep = certquic::lint::apply_waivers(
        std::move(result.findings), waivers, certquic::lint::all_rules());

    if (!out_dir.empty()) {
      std::filesystem::create_directories(out_dir);
      const std::string root_name =
          std::filesystem::path(root).filename().string();
      write_artifact(
          out_dir + "/depgraph.json",
          certquic::analyze::depgraph_json(result.graph, spec, root_name));
      write_artifact(out_dir + "/depgraph.dot",
                     certquic::analyze::depgraph_dot(result.graph, spec));
    }

    for (const certquic::lint::finding& f : rep.findings) {
      std::printf("%s:%zu: [%s] %s\n", f.path.c_str(), f.line,
                  f.rule.c_str(), f.message.c_str());
      if (!f.source_line.empty()) {
        std::printf("    %s\n", f.source_line.c_str());
      }
    }
    for (const certquic::lint::waiver& w : rep.unused_waivers) {
      std::printf(
          "%s:%zu: [stale-waiver] waiver matches no finding — remove it "
          "(%s|%s|%s)\n",
          waiver_path.c_str(), w.file_line, w.rule.c_str(), w.path.c_str(),
          w.substring.c_str());
    }
    if (rep.clean()) {
      std::printf(
          "certquic_analyze: %zu files clean (%zu modules, %zu edges, "
          "%zu tool files self-scanned)\n",
          files.size(), result.graph.modules.size(),
          result.graph.edges.size(), self_scanned);
      return 0;
    }
    std::printf("certquic_analyze: %zu finding(s), %zu stale waiver(s)\n",
                rep.findings.size(), rep.unused_waivers.size());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "certquic_analyze: %s\n", e.what());
    return 2;
  }
}
