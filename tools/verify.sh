#!/bin/sh
# Tier-1 verification gate — the exact command sequence from ROADMAP.md.
# Exits nonzero on any configure, build or test failure.
#
# Usage: tools/verify.sh [extra ctest args...]
#   tools/verify.sh                 # full tier-1 + tier-2 run
#   tools/verify.sh -L tier1        # tier-1 only
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

jobs=$(nproc 2>/dev/null || echo 4)

cmake -B build -S .
cmake --build build -j "$jobs"
cd build
# ROADMAP's bare `-j` greedily eats any following argument, so pass the
# job count explicitly to keep extra ctest args (e.g. -L tier1) working.
ctest --output-on-failure -j "$jobs" "$@"
