#!/bin/sh
# Tier-1 verification gate — the exact command sequence from ROADMAP.md.
# Exits nonzero on any configure, build or test failure.
#
# Usage: tools/verify.sh [--docs] [--outofcore] [--threads N] [--sanitize]
#                        [--bench] [--analyze] [--tidy] [extra ctest args...]
#   tools/verify.sh                 # full tier-1 + tier-2 run + determinism
#                                   # lint + architecture analyzer + out-of-
#                                   # core and epochs (kill-resume) smokes +
#                                   # docs check
#   tools/verify.sh -L tier1        # tier-1 only (+ lint/smokes/docs)
#   tools/verify.sh --docs          # docs/golden-coverage check only (no build)
#   tools/verify.sh --outofcore     # build + out-of-core smoke only: a small
#                                   # sharded spill-merge census diffed
#                                   # byte-for-byte against the in-memory
#                                   # census output
#   tools/verify.sh --threads 8     # engine-determinism gate: runs tier-1
#                                   # twice (CERTQUIC_THREADS=1 and =N),
#                                   # diffs the golden bench outputs between
#                                   # the serial and parallel engine runs,
#                                   # then runs the docs check
#   tools/verify.sh --sanitize      # sanitizer gate: tier-1 under
#                                   # ASan+UBSan (build-asan/), then the
#                                   # threaded suites under TSan
#                                   # (build-tsan/). Both with -Werror and
#                                   # CERTQUIC_ASSERT enabled; zero
#                                   # suppressions outside
#                                   # tools/lint_waivers.txt.
#   tools/verify.sh --bench         # throughput gate: build, run the
#                                   # bench/throughput_* suite (census,
#                                   # corpus, spill, epochs) on the smoke
#                                   # population, assemble
#                                   # build/BENCH_throughput.json and
#                                   # sanity-check its keys.
#   tools/verify.sh --analyze       # build + architecture analyzer only:
#                                   # include-graph layering against
#                                   # tools/layers.txt, IWYU-lite header
#                                   # hygiene, the token-level lint rules
#                                   # and the tools/ nondet self-scan;
#                                   # emits build/depgraph.{json,dot}.
#                                   # Runs in the default gate too.
#   tools/verify.sh --tidy          # opt-in: additionally run clang-tidy
#                                   # (the checked-in .clang-tidy) over
#                                   # src/ via run-clang-tidy and the
#                                   # exported compile_commands.json;
#                                   # skipped with a notice when
#                                   # run-clang-tidy is not installed.
# Flags combine in any order; the docs and out-of-core checks run in
# every build mode. All builds configure with -DCERTQUIC_WERROR=ON —
# the tree is warning-clean and stays that way.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

# Static documentation / golden-coverage check:
#  * every golden file under tests/golden/ must correspond to exactly one
#    bench target (bench/<name>.cpp) and be exercised by golden_test;
#  * every relative markdown link in README.md and docs/ must resolve.
docs_check() {
  docs_status=0
  for golden in tests/golden/*.txt; do
    name=$(basename "$golden" .txt)
    if [ ! -f "bench/$name.cpp" ]; then
      echo "FAIL docs: $golden has no matching bench/$name.cpp target"
      docs_status=1
    fi
    if ! grep -q "\"$name\"" tests/golden_test.cpp; then
      echo "FAIL docs: $golden is not exercised by tests/golden_test.cpp"
      docs_status=1
    fi
  done
  for doc in README.md docs/*.md; do
    [ -f "$doc" ] || continue
    doc_dir=$(dirname "$doc")
    # Markdown targets of the form ](path) — URLs and pure anchors skip.
    for link in $(grep -o '](\([^)]*\))' "$doc" 2>/dev/null \
                    | sed 's/^](//; s/)$//'); do
      case $link in
        http://*|https://*|mailto:*|'#'*) continue ;;
      esac
      target=${link%%#*}
      [ -n "$target" ] || continue
      if [ ! -e "$doc_dir/$target" ]; then
        echo "FAIL docs: $doc links to missing file: $link"
        docs_status=1
      fi
    done
  done
  if [ "$docs_status" -eq 0 ]; then
    echo "OK   docs: golden<->bench coverage and markdown links"
  fi
  return "$docs_status"
}

# Out-of-core smoke: the sharded spill → merge pipeline must print the
# byte-identical census table that the in-memory aggregator prints on
# the same population (certquic_scan exits nonzero itself when the two
# paths' aggregates diverge internally). Expects cwd = build/.
outofcore_check() {
  ooc_dir=$(mktemp -d)
  ooc_status=0
  ./tools/certquic_scan census --domains 2000 --sample 300 \
    > "$ooc_dir/census.txt" || ooc_status=1
  ./tools/certquic_scan outofcore --domains 2000 --sample 300 --shards 3 \
    --spill-dir "$ooc_dir/spill" > "$ooc_dir/outofcore.txt" \
    2> "$ooc_dir/outofcore.log" || ooc_status=1
  if [ "$ooc_status" -eq 0 ] &&
     cmp -s "$ooc_dir/census.txt" "$ooc_dir/outofcore.txt"; then
    echo "OK   outofcore: spill-merge census == in-memory census"
  else
    echo "FAIL outofcore: spill-merge output differs from in-memory census"
    diff -u "$ooc_dir/census.txt" "$ooc_dir/outofcore.txt" || true
    cat "$ooc_dir/outofcore.log" || true
    ooc_status=1
  fi
  rm -rf "$ooc_dir"
  return "$ooc_status"
}

# Longitudinal-service smoke: a 3-epoch run killed after 4 shard slices
# (with the last written shard additionally cut mid-record, as a crash
# mid-write would leave it) and then resumed must print the
# byte-identical epoch tables of an uninterrupted run. Expects cwd =
# build/.
epochs_check() {
  ep_dir=$(mktemp -d)
  ep_status=0
  ep_flags="--domains 2000 --sample 150 --shards 3 --epochs 3"
  ./tools/certquic_scan epochs $ep_flags --store "$ep_dir/full" \
    > "$ep_dir/full.txt" 2> /dev/null || ep_status=1
  # The aborted run must itself exit nonzero (incomplete, resumable).
  if ./tools/certquic_scan epochs $ep_flags --store "$ep_dir/resume" \
       --abort-after-shards 4 > /dev/null 2>&1; then
    echo "FAIL epochs: crash-injected run exited zero"
    ep_status=1
  fi
  last_shard=$(find "$ep_dir/resume" -name 'shard_*.spill' | sort | tail -1)
  if [ -n "$last_shard" ]; then
    head -c 64 "$last_shard" > "$last_shard.cut"
    mv "$last_shard.cut" "$last_shard"
  else
    echo "FAIL epochs: crash-injected run left no shard files"
    ep_status=1
  fi
  ./tools/certquic_scan epochs $ep_flags --store "$ep_dir/resume" \
    > "$ep_dir/resumed.txt" 2> /dev/null || ep_status=1
  if [ "$ep_status" -eq 0 ] &&
     cmp -s "$ep_dir/full.txt" "$ep_dir/resumed.txt"; then
    echo "OK   epochs: killed-and-resumed run == uninterrupted run"
  else
    echo "FAIL epochs: resumed output differs from uninterrupted run"
    diff -u "$ep_dir/full.txt" "$ep_dir/resumed.txt" || true
    ep_status=1
  fi
  rm -rf "$ep_dir"
  return "$ep_status"
}

# Determinism lint over the module-registered sources, against the
# checked-in waiver file. The `lint` target depends on (and builds)
# the certquic_lint binary. Expects cwd = repo root.
lint_check() {
  if cmake --build build --target lint; then
    echo "OK   lint: src/ clean against tools/lint_waivers.txt"
  else
    echo "FAIL lint: determinism lint found unwaived findings"
    return 1
  fi
}

# Architecture analyzer over the module-registered sources: layering
# against tools/layers.txt, IWYU-lite header hygiene (pragma-once /
# self-contained / unused-include), the token-level lint rules and the
# tools/ nondet-source self-scan — one run, every rule in waiver
# scope, depgraph.{json,dot} written into build/. The `analyze` target
# depends on (and builds) the certquic_analyze binary. Expects cwd =
# repo root.
analyze_check() {
  if cmake --build build --target analyze; then
    echo "OK   analyze: layering + hygiene clean; build/depgraph.json written"
  else
    echo "FAIL analyze: architecture analyzer found unwaived findings"
    return 1
  fi
}

# Opt-in clang-tidy stage: the checked-in .clang-tidy over src/,
# driven by build/compile_commands.json (exported unconditionally by
# the root CMakeLists). Skips with a notice when run-clang-tidy is
# not on PATH — the gate must not depend on tools the container may
# lack. Expects cwd = repo root.
tidy_check() {
  tidy_runner=$(command -v run-clang-tidy || true)
  if [ -z "$tidy_runner" ]; then
    tidy_runner=$(command -v run-clang-tidy-18 || true)
  fi
  if [ -z "$tidy_runner" ]; then
    echo "SKIP tidy: run-clang-tidy not found on PATH"
    return 0
  fi
  if "$tidy_runner" -p build -quiet "$repo_root/src/.*" \
       > build/tidy.log 2>&1; then
    echo "OK   tidy: clang-tidy clean over src/"
  else
    echo "FAIL tidy: clang-tidy reported findings (build/tidy.log)"
    tail -40 build/tidy.log
    return 1
  fi
}

# Throughput gate: each bench/throughput_* binary runs on the smoke
# population and writes one single-line JSON object; the objects are
# assembled into build/BENCH_throughput.json and the required keys are
# checked. Expects cwd = build/.
bench_check() {
  tp_dir=$(mktemp -d)
  tp_status=0
  tp_env="CERTQUIC_DOMAINS=2000 CERTQUIC_SEED=42 CERTQUIC_SAMPLE=200 \
CERTQUIC_PQ_PROFILE=classical"
  printf '{"bench": "throughput", "paths": [\n' > "$tp_dir/assembled.json"
  tp_sep=""
  for tp_path in census corpus spill epochs; do
    if ! env $tp_env CERTQUIC_BENCH_JSON="$tp_dir/$tp_path.json" \
         "./bench/throughput_$tp_path" > "$tp_dir/$tp_path.txt" 2>&1; then
      echo "FAIL bench: throughput_$tp_path exited nonzero"
      cat "$tp_dir/$tp_path.txt"
      tp_status=1
      continue
    fi
    for key in '"path": "'"$tp_path"'"' '"probes_per_sec"' \
               '"records_per_sec"' '"wall_seconds"' '"threads"'; do
      if ! grep -q "$key" "$tp_dir/$tp_path.json"; then
        echo "FAIL bench: throughput_$tp_path JSON missing key $key"
        tp_status=1
      fi
    done
    printf '%s  ' "$tp_sep" >> "$tp_dir/assembled.json"
    cat "$tp_dir/$tp_path.json" >> "$tp_dir/assembled.json"
    tp_sep=","
  done
  printf ']}\n' >> "$tp_dir/assembled.json"
  if [ "$tp_status" -eq 0 ]; then
    cp "$tp_dir/assembled.json" BENCH_throughput.json
    echo "OK   bench: BENCH_throughput.json written (census/corpus/spill/epochs)"
  fi
  rm -rf "$tp_dir"
  return "$tp_status"
}

# Flags may appear in any order; everything unrecognized is passed on
# to ctest.
docs_only=0
outofcore_only=0
sanitize=0
bench=0
analyze_only=0
tidy=0
engine_threads=""
while [ $# -gt 0 ]; do
  case $1 in
    --docs)
      docs_only=1
      shift
      ;;
    --outofcore)
      outofcore_only=1
      shift
      ;;
    --sanitize)
      sanitize=1
      shift
      ;;
    --bench)
      bench=1
      shift
      ;;
    --analyze)
      analyze_only=1
      shift
      ;;
    --tidy)
      tidy=1
      shift
      ;;
    --threads)
      engine_threads=${2:?--threads needs a value}
      shift 2
      ;;
    *)
      break
      ;;
  esac
done

if [ "$docs_only" -eq 1 ] && [ "$outofcore_only" -eq 0 ] &&
   [ "$sanitize" -eq 0 ] && [ "$bench" -eq 0 ] &&
   [ -z "$engine_threads" ]; then
  docs_check
  exit $?
fi

jobs=$(nproc 2>/dev/null || echo 4)

if [ "$sanitize" -eq 1 ]; then
  # Sanitizer gate. Two builds (the ASan and TSan runtimes cannot link
  # together): tier-1 under ASan+UBSan, then the suites that actually
  # spin up worker threads under TSan. CERTQUIC_ASSERT is on in both
  # (CERTQUIC_SANITIZE implies it), UBSan findings are hard failures
  # (-fno-sanitize-recover), and there are no suppression files — the
  # only sanctioned waiver mechanism in this repo is
  # tools/lint_waivers.txt, which governs the lint, not the sanitizers.
  echo "== ASan+UBSan: tier-1 =="
  cmake -B build-asan -S . -DCERTQUIC_WERROR=ON \
        -DCERTQUIC_SANITIZE="address;undefined"
  cmake --build build-asan -j "$jobs"
  (cd build-asan && ctest --output-on-failure -j "$jobs" -L tier1 "$@")

  echo "== TSan: threaded suites =="
  cmake -B build-tsan -S . -DCERTQUIC_WERROR=ON -DCERTQUIC_SANITIZE=thread
  cmake --build build-tsan -j "$jobs"
  (cd build-tsan && ctest --output-on-failure -j "$jobs" "$@" -R \
    '^(engine_test|backend_test|ring_test|executor_test|outofcore_test|service_test|ttfb_test|stats_test|net_test)$')

  echo "OK   sanitize: ASan+UBSan tier-1 and TSan threaded suites clean"
  exit 0
fi

cmake -B build -S . -DCERTQUIC_WERROR=ON
cmake --build build -j "$jobs"
cd build

if [ "$analyze_only" -eq 1 ] && [ "$outofcore_only" -eq 0 ] &&
   [ "$bench" -eq 0 ] && [ -z "$engine_threads" ]; then
  cd "$repo_root"
  status=0
  analyze_check || status=1
  if [ "$tidy" -eq 1 ]; then
    tidy_check || status=1
  fi
  docs_check || status=1
  exit "$status"
fi

if [ "$outofcore_only" -eq 1 ] && [ -z "$engine_threads" ]; then
  status=0
  outofcore_check || status=1
  cd "$repo_root"
  docs_check || status=1
  exit "$status"
fi

if [ "$bench" -eq 1 ] && [ -z "$engine_threads" ]; then
  status=0
  bench_check || status=1
  cd "$repo_root"
  docs_check || status=1
  exit "$status"
fi

if [ -z "$engine_threads" ]; then
  # ROADMAP's bare `-j` greedily eats any following argument, so pass the
  # job count explicitly to keep extra ctest args (e.g. -L tier1) working.
  ctest --output-on-failure -j "$jobs" "$@"
  outofcore_check
  epochs_check
  cd "$repo_root"
  status=0
  lint_check || status=1
  analyze_check || status=1
  if [ "$tidy" -eq 1 ]; then
    tidy_check || status=1
  fi
  docs_check || status=1
  exit "$status"
fi

# --threads N: the engine-determinism gate. Tier-1 must pass with the
# serial engine and with N worker threads, and the golden bench
# binaries — plus fig09, whose spoofed-amplification pass runs on the
# engine's shared-world backscatter backend — must print byte-identical
# output under both settings.
for t in 1 "$engine_threads"; do
  echo "== tier-1 with CERTQUIC_THREADS=$t =="
  CERTQUIC_THREADS=$t ctest --output-on-failure -j "$jobs" -L tier1 "$@"
done

# Same knobs as CERTQUIC_SMOKE_KNOBS in the root CMakeLists (the values
# the checked-in goldens are captured with).
smoke_env="CERTQUIC_DOMAINS=2000 CERTQUIC_SEED=42 CERTQUIC_SAMPLE=200 \
CERTQUIC_PQ_PROFILE=classical"
out_dir=$(mktemp -d)
trap 'rm -rf "$out_dir"' EXIT
status=0
for bin in fig02_cert_field_sizes fig04_amplification_cdf \
           fig06_chain_size_cdf tab01_browser_profiles \
           tab02_crypto_algorithms fig09_spoofed_amplification \
           fig_pqc_chain_impact fig_outofcore_rss \
           fig_ttfb_cdf fig_ttfb_pqc fig_epoch_deltas; do
  # fig_ttfb_pqc / fig_epoch_deltas additionally drop machine-readable
  # perf records (BENCH_ttfb.json / BENCH_epochs.json) next to the
  # build tree.
  bench_json=""
  if [ "$bin" = "fig_ttfb_pqc" ]; then
    bench_json="CERTQUIC_BENCH_JSON=$PWD/BENCH_ttfb.json"
  fi
  if [ "$bin" = "fig_epoch_deltas" ]; then
    bench_json="CERTQUIC_BENCH_JSON=$PWD/BENCH_epochs.json"
  fi
  env $smoke_env $bench_json CERTQUIC_THREADS=1 "./bench/$bin" \
    > "$out_dir/$bin.serial.txt"
  env $smoke_env $bench_json CERTQUIC_THREADS="$engine_threads" "./bench/$bin" \
    > "$out_dir/$bin.parallel.txt"
  if cmp -s "$out_dir/$bin.serial.txt" "$out_dir/$bin.parallel.txt"; then
    echo "OK   $bin: serial == $engine_threads-thread output"
  else
    echo "FAIL $bin: output differs between 1 and $engine_threads threads"
    diff -u "$out_dir/$bin.serial.txt" "$out_dir/$bin.parallel.txt" || true
    status=1
  fi
done
outofcore_check || status=1
epochs_check || status=1
if [ "$bench" -eq 1 ]; then
  bench_check || status=1
fi
cd "$repo_root"
lint_check || status=1
if [ "$analyze_only" -eq 1 ]; then
  analyze_check || status=1
fi
if [ "$tidy" -eq 1 ]; then
  tidy_check || status=1
fi
docs_check || status=1
exit "$status"
