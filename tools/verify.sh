#!/bin/sh
# Tier-1 verification gate — the exact command sequence from ROADMAP.md.
# Exits nonzero on any configure, build or test failure.
#
# Usage: tools/verify.sh [--threads N] [extra ctest args...]
#   tools/verify.sh                 # full tier-1 + tier-2 run
#   tools/verify.sh -L tier1        # tier-1 only
#   tools/verify.sh --threads 8     # engine-determinism gate: runs tier-1
#                                   # twice (CERTQUIC_THREADS=1 and =N) and
#                                   # diffs the golden bench outputs between
#                                   # the serial and parallel engine runs
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

engine_threads=""
if [ "${1:-}" = "--threads" ]; then
  engine_threads=${2:?--threads needs a value}
  shift 2
fi

jobs=$(nproc 2>/dev/null || echo 4)

cmake -B build -S .
cmake --build build -j "$jobs"
cd build

if [ -z "$engine_threads" ]; then
  # ROADMAP's bare `-j` greedily eats any following argument, so pass the
  # job count explicitly to keep extra ctest args (e.g. -L tier1) working.
  ctest --output-on-failure -j "$jobs" "$@"
  exit 0
fi

# --threads N: the engine-determinism gate. Tier-1 must pass with the
# serial engine and with N worker threads, and the five golden bench
# binaries — plus fig09, whose spoofed-amplification pass now runs on
# the engine's shared-world backscatter backend — must print
# byte-identical output under both settings.
for t in 1 "$engine_threads"; do
  echo "== tier-1 with CERTQUIC_THREADS=$t =="
  CERTQUIC_THREADS=$t ctest --output-on-failure -j "$jobs" -L tier1 "$@"
done

# Same knobs as CERTQUIC_SMOKE_KNOBS in the root CMakeLists (the values
# the checked-in goldens are captured with).
smoke_env="CERTQUIC_DOMAINS=2000 CERTQUIC_SEED=42 CERTQUIC_SAMPLE=200"
out_dir=$(mktemp -d)
trap 'rm -rf "$out_dir"' EXIT
status=0
for bin in fig02_cert_field_sizes fig04_amplification_cdf \
           fig06_chain_size_cdf tab01_browser_profiles \
           tab02_crypto_algorithms fig09_spoofed_amplification; do
  env $smoke_env CERTQUIC_THREADS=1 "./bench/$bin" \
    > "$out_dir/$bin.serial.txt"
  env $smoke_env CERTQUIC_THREADS="$engine_threads" "./bench/$bin" \
    > "$out_dir/$bin.parallel.txt"
  if cmp -s "$out_dir/$bin.serial.txt" "$out_dir/$bin.parallel.txt"; then
    echo "OK   $bin: serial == $engine_threads-thread output"
  else
    echo "FAIL $bin: output differs between 1 and $engine_threads threads"
    diff -u "$out_dir/$bin.serial.txt" "$out_dir/$bin.parallel.txt" || true
    status=1
  fi
done
exit "$status"
