#include "analyze_core.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <functional>
#include <regex>
#include <sstream>

#include "util/errors.hpp"

namespace certquic::analyze {
namespace {

// ---------------------------------------------------------------- scanner

bool ident_char(char c) {
  return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_';
}

/// True when the quote at `pos` opens a raw string literal: the quote
/// is preceded by an R (optionally with a u8/u/U/L encoding prefix)
/// that is not the tail of a longer identifier.
bool raw_string_prefix(const std::string& text, std::size_t pos) {
  if (pos == 0 || text[pos - 1] != 'R') {
    return false;
  }
  std::size_t start = pos - 1;  // index of the 'R'
  if (start >= 2 && text[start - 2] == 'u' && text[start - 1] == '8') {
    start -= 2;
  } else if (start >= 1 && (text[start - 1] == 'u' ||
                            text[start - 1] == 'U' ||
                            text[start - 1] == 'L')) {
    start -= 1;
  }
  return start == 0 || !ident_char(text[start - 1]);
}

}  // namespace

scanned_file scan_source(const std::string& content) {
  std::string scrubbed;
  scrubbed.reserve(content.size());

  enum class state {
    code,
    line_comment,
    block_comment,
    string_lit,
    char_lit,
    raw_string,
  };
  state st = state::code;
  std::string raw_delim;  // the )delim" terminator of the raw string
  char prev_code = '\0';  // last significant code character emitted

  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (st) {
      case state::code:
        if (c == '/' && next == '/') {
          st = state::line_comment;
          scrubbed += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          st = state::block_comment;
          scrubbed += "  ";
          ++i;
        } else if (c == '"') {
          if (raw_string_prefix(content, i)) {
            // R"delim( ... )delim" — collect the delimiter, blank
            // everything through the opening parenthesis.
            std::size_t paren = i + 1;
            while (paren < content.size() && content[paren] != '(') {
              ++paren;
            }
            raw_delim = ")" + content.substr(i + 1, paren - i - 1) + "\"";
            st = state::raw_string;
            scrubbed += '"';
            for (std::size_t k = i + 1;
                 k <= paren && k < content.size(); ++k) {
              scrubbed += content[k] == '\n' ? '\n' : ' ';
            }
            i = std::min(paren, content.size() - 1);
          } else {
            st = state::string_lit;
            scrubbed += '"';
          }
        } else if (c == '\'') {
          // A quote directly after an identifier character is a digit
          // separator (0x90C5'0D5A), not a character literal.
          if (ident_char(prev_code)) {
            scrubbed += ' ';
          } else {
            st = state::char_lit;
            scrubbed += '\'';
          }
        } else {
          scrubbed += c;
          if (std::isspace(static_cast<unsigned char>(c)) == 0) {
            prev_code = c;
          }
        }
        break;
      case state::line_comment:
        if (c == '\n') {
          st = state::code;
          scrubbed += '\n';
        } else {
          scrubbed += ' ';
        }
        break;
      case state::block_comment:
        if (c == '*' && next == '/') {
          st = state::code;
          scrubbed += "  ";
          ++i;
        } else {
          scrubbed += c == '\n' ? '\n' : ' ';
        }
        break;
      case state::string_lit:
        if (c == '\\' && next != '\0') {
          scrubbed += c == '\n' ? '\n' : ' ';
          scrubbed += next == '\n' ? '\n' : ' ';
          ++i;
        } else if (c == '"') {
          st = state::code;
          scrubbed += '"';
          prev_code = '"';
        } else {
          scrubbed += c == '\n' ? '\n' : ' ';
        }
        break;
      case state::char_lit:
        if (c == '\\' && next != '\0') {
          scrubbed += "  ";
          ++i;
        } else if (c == '\'') {
          st = state::code;
          scrubbed += '\'';
          prev_code = '\'';
        } else {
          scrubbed += c == '\n' ? '\n' : ' ';
        }
        break;
      case state::raw_string:
        if (content.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 1; k < raw_delim.size(); ++k) {
            scrubbed += ' ';
          }
          scrubbed += '"';
          i += raw_delim.size() - 1;
          st = state::code;
          prev_code = '"';
        } else {
          scrubbed += c == '\n' ? '\n' : ' ';
        }
        break;
    }
  }

  const auto split = [](const std::string& text) {
    std::vector<std::string> lines;
    std::string line;
    std::istringstream in{text};
    while (std::getline(in, line)) {
      lines.push_back(line);
    }
    return lines;
  };
  scanned_file out;
  out.raw_lines = split(content);
  out.code_lines = split(scrubbed);
  // The blanked text replaces characters 1:1 with newlines kept, so
  // the views line up; resize defends the structure anyway.
  out.code_lines.resize(out.raw_lines.size());

  // Preprocessor directives, detected on the blanked view so a
  // commented-out `#include` never counts. Include targets are read
  // from the raw line (the scanner blanks quoted paths like any other
  // string literal).
  static const std::regex include_re{
      R"(^\s*#\s*include\s*([<"])([^>"]+)[>"])"};
  static const std::regex pragma_once_re{R"(^\s*#\s*pragma\s+once\b)"};
  static const std::regex include_head_re{R"(^\s*#\s*include\b)"};
  for (std::size_t n = 0; n < out.code_lines.size(); ++n) {
    const std::string& code = out.code_lines[n];
    if (std::regex_search(code, pragma_once_re)) {
      out.has_pragma_once = true;
      continue;
    }
    if (!std::regex_search(code, include_head_re)) {
      continue;
    }
    std::smatch m;
    if (std::regex_search(out.raw_lines[n], m, include_re)) {
      out.includes.push_back({n + 1, m[2].str(), m[1].str() == "<"});
    }
  }
  return out;
}

// ------------------------------------------------------------- layer spec

layer_spec load_layer_spec(const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    throw config_error("certquic_analyze: cannot read layer spec " + path);
  }
  layer_spec spec;
  spec.source_path = path;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    std::istringstream fields{line};
    std::vector<std::string> layer;
    std::string module;
    while (fields >> module) {
      if (spec.layer_of.count(module) != 0) {
        throw config_error("certquic_analyze: layer spec line " +
                           std::to_string(line_no) + " names module '" +
                           module + "' twice");
      }
      spec.layer_of[module] = spec.layers.size();
      spec.spec_line_of[module] = line_no;
      layer.push_back(module);
    }
    if (!layer.empty()) {
      spec.layers.push_back(std::move(layer));
    }
  }
  if (spec.layers.empty()) {
    throw config_error("certquic_analyze: layer spec " + path +
                       " declares no layers");
  }
  return spec;
}

// -------------------------------------------------------------- analysis

namespace {

struct loaded_file {
  std::string relative;  // root-relative, forward slashes
  scanned_file scan;
};

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    throw config_error("certquic_analyze: cannot read " + path);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string relativize(const std::string& file, const std::string& root) {
  return std::filesystem::relative(file, root).generic_string();
}

std::string module_of(const std::string& relative) {
  const std::size_t slash = relative.find('/');
  return slash == std::string::npos ? std::string{}
                                    : relative.substr(0, slash);
}

/// Resolves a quoted include target to a root-relative path: the
/// root-relative form first ("engine/spill.hpp"), then the includer's
/// own directory ("spill.hpp" from engine/). Empty when the target
/// names no scanned file.
std::string resolve_include(const std::string& target,
                            const std::string& includer,
                            const std::set<std::string>& known) {
  if (known.count(target) != 0) {
    return target;
  }
  const std::size_t slash = includer.rfind('/');
  if (slash != std::string::npos) {
    const std::string sibling = includer.substr(0, slash + 1) + target;
    if (known.count(sibling) != 0) {
      return sibling;
    }
  }
  return {};
}

const std::set<std::string>& cpp_keywords() {
  static const std::set<std::string> kw = {
      "alignas",    "alignof",     "asm",       "auto",
      "bool",       "break",       "case",      "catch",
      "char",       "class",       "co_await",  "co_return",
      "co_yield",   "concept",     "const",     "const_cast",
      "consteval",  "constexpr",   "constinit", "continue",
      "decltype",   "default",     "delete",    "do",
      "double",     "dynamic_cast", "else",     "enum",
      "explicit",   "export",      "extern",    "false",
      "final",      "float",       "for",       "friend",
      "goto",       "if",          "inline",    "int",
      "long",       "mutable",     "namespace", "new",
      "noexcept",   "nullptr",     "operator",  "override",
      "private",    "protected",   "public",    "register",
      "reinterpret_cast", "requires", "return", "short",
      "signed",     "sizeof",      "static",    "static_assert",
      "static_cast", "struct",     "switch",    "template",
      "this",       "throw",       "true",      "try",
      "typedef",    "typeid",      "typename",  "union",
      "unsigned",   "using",       "virtual",   "void",
      "volatile",   "while",
  };
  return kw;
}

/// Identifiers a header "provides", for the unused-include check.
/// Deliberately generous — everything that declares, defines, or even
/// just names something callable or assignable counts, plus the
/// header's stem — so a live include is essentially never flagged.
/// Conservative by construction; the rare leftover is waivable.
std::set<std::string> provided_symbols(const std::string& relative,
                                       const scanned_file& scan) {
  std::string flat;
  for (const std::string& line : scan.code_lines) {
    flat += line;
    flat += ' ';
  }
  std::set<std::string> out;
  static const std::vector<std::regex> decl_res = {
      std::regex{R"((?:class|struct|union)\s+([A-Za-z_]\w*))"},
      std::regex{R"(enum\s+(?:class\s+|struct\s+)?([A-Za-z_]\w*))"},
      std::regex{R"(using\s+([A-Za-z_]\w*)\s*=)"},
      std::regex{R"(typedef[^;]*?\b([A-Za-z_]\w*)\s*;)"},
      std::regex{R"(#\s*define\s+([A-Za-z_]\w*))"},
      std::regex{R"(\b([A-Za-z_]\w*)\s*\()"},
      std::regex{R"(\b([A-Za-z_]\w*)\s*[={])"},
  };
  for (const std::regex& re : decl_res) {
    for (std::sregex_iterator it{flat.begin(), flat.end(), re}, end;
         it != end; ++it) {
      const std::string name = (*it)[1].str();
      if (cpp_keywords().count(name) == 0) {
        out.insert(name);
      }
    }
  }
  out.insert(std::filesystem::path{relative}.stem().string());
  return out;
}

/// Every identifier appearing in the unit's code view.
std::set<std::string> used_identifiers(const scanned_file& scan) {
  std::set<std::string> out;
  static const std::regex ident_re{R"([A-Za-z_]\w*)"};
  for (const std::string& line : scan.code_lines) {
    for (std::sregex_iterator it{line.begin(), line.end(), ident_re}, end;
         it != end; ++it) {
      out.insert(it->str());
    }
  }
  return out;
}

/// First-level directories under `root` that contain any source file —
/// the modules that exist on disk, independent of the file list.
std::set<std::string> modules_on_disk(const std::string& root) {
  std::set<std::string> out;
  for (const auto& dir : std::filesystem::directory_iterator(root)) {
    if (!dir.is_directory()) {
      continue;
    }
    for (const auto& entry :
         std::filesystem::recursive_directory_iterator(dir.path())) {
      if (!entry.is_regular_file()) {
        continue;
      }
      const std::string ext = entry.path().extension().string();
      if (ext == ".hpp" || ext == ".cpp") {
        out.insert(dir.path().filename().string());
        break;
      }
    }
  }
  return out;
}

void check_layering(const std::string& root, const layer_spec& spec,
                    const module_graph& graph,
                    std::vector<lint::finding>& out) {
  // Drift, both directions: the spec and the tree must name the same
  // module set. Spec-side findings anchor in the spec file itself;
  // tree-side findings anchor on the module directory.
  const std::set<std::string> on_disk = modules_on_disk(root);
  for (const auto& [module, line] : spec.spec_line_of) {
    if (on_disk.count(module) == 0) {
      out.push_back({spec.source_path, line, "layer-drift",
                     "layer spec names module '" + module +
                         "' but no such module exists under the scan root",
                     module});
    }
  }
  for (const std::string& module : on_disk) {
    if (spec.layer_of.count(module) == 0) {
      out.push_back({module, 0, "layer-drift",
                     "module '" + module +
                         "' exists under the scan root but the layer spec "
                         "does not place it in any layer — add it to the "
                         "spec (and the ARCHITECTURE.md layer map)",
                     ""});
    }
  }

  // Upward edges: an include of a module in a strictly higher layer.
  for (const auto& [edge, sites] : graph.edges) {
    const auto from = spec.layer_of.find(edge.first);
    const auto to = spec.layer_of.find(edge.second);
    if (from == spec.layer_of.end() || to == spec.layer_of.end()) {
      continue;  // drift already reported
    }
    if (from->second < to->second) {
      for (const module_graph::site& s : sites) {
        out.push_back({s.path, s.line, "layer-upward",
                       "module '" + edge.first + "' (layer " +
                           std::to_string(from->second) + ") includes '" +
                           edge.second + "' (layer " +
                           std::to_string(to->second) +
                           ") — lower layers never include upper ones",
                       s.raw});
      }
    }
  }

  // Cycles: DFS over the module graph; every distinct cycle is
  // reported once, anchored at the first include site of the edge
  // leaving its lexicographically smallest member.
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [edge, sites] : graph.edges) {
    adj[edge.first].push_back(edge.second);
  }
  std::set<std::vector<std::string>> seen_cycles;
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  const std::function<void(const std::string&)> dfs =
      [&](const std::string& node) {
        color[node] = 1;
        stack.push_back(node);
        for (const std::string& next : adj[node]) {
          if (color[next] == 1) {
            std::vector<std::string> cycle{
                std::find(stack.begin(), stack.end(), next), stack.end()};
            std::rotate(cycle.begin(),
                        std::min_element(cycle.begin(), cycle.end()),
                        cycle.end());
            if (!seen_cycles.insert(cycle).second) {
              continue;
            }
            std::string text;
            for (const std::string& m : cycle) {
              text += m + " -> ";
            }
            text += cycle.front();
            const std::string& succ =
                cycle.size() > 1 ? cycle[1] : cycle.front();
            module_graph::site anchor;
            const auto edge_sites =
                graph.edges.find({cycle.front(), succ});
            if (edge_sites != graph.edges.end() &&
                !edge_sites->second.empty()) {
              anchor = edge_sites->second.front();
            }
            out.push_back({anchor.path, anchor.line, "layer-cycle",
                           "module include cycle: " + text, anchor.raw});
          } else if (color[next] == 0) {
            dfs(next);
          }
        }
        stack.pop_back();
        color[node] = 2;
      };
  for (const std::string& module : graph.modules) {
    if (color[module] == 0) {
      dfs(module);
    }
  }
}

void check_hygiene(const std::vector<loaded_file>& files,
                   std::vector<lint::finding>& out) {
  std::map<std::string, const scanned_file*> by_path;
  std::set<std::string> known;
  for (const loaded_file& f : files) {
    by_path[f.relative] = &f.scan;
    known.insert(f.relative);
  }
  std::map<std::string, std::set<std::string>> symbols_cache;
  const auto symbols_of =
      [&](const std::string& rel) -> const std::set<std::string>& {
    auto it = symbols_cache.find(rel);
    if (it == symbols_cache.end()) {
      it = symbols_cache
               .emplace(rel, provided_symbols(rel, *by_path.at(rel)))
               .first;
    }
    return it->second;
  };

  for (const loaded_file& f : files) {
    const bool is_header =
        f.relative.size() > 4 &&
        f.relative.rfind(".hpp") == f.relative.size() - 4;
    const std::string self_header =
        is_header ? std::string{}
                  : f.relative.substr(0, f.relative.size() - 4) + ".hpp";

    // pragma-once: every header says so.
    if (is_header && !f.scan.has_pragma_once) {
      out.push_back({f.relative, 1, "pragma-once",
                     "header lacks #pragma once — every certquic header "
                     "carries it",
                     f.scan.raw_lines.empty() ? "" : f.scan.raw_lines[0]});
    }

    // self-contained: a companion .cpp includes its own header first,
    // which makes every header compile stand-alone at least once.
    if (!is_header && known.count(self_header) != 0 &&
        !f.scan.includes.empty()) {
      const include_directive& first = f.scan.includes.front();
      const std::string resolved =
          first.angled ? std::string{}
                       : resolve_include(first.target, f.relative, known);
      if (resolved != self_header) {
        out.push_back(
            {f.relative, first.line, "self-contained",
             "first include is not the unit's own header '" + self_header +
                 "' — including it first proves the header is "
                 "self-contained",
             f.scan.raw_lines[first.line - 1]});
      }
    }

    // unused-include: a direct project include none of whose declared
    // symbols appears in this unit.
    const std::set<std::string> used = used_identifiers(f.scan);
    for (const include_directive& inc : f.scan.includes) {
      if (inc.angled) {
        continue;
      }
      const std::string resolved =
          resolve_include(inc.target, f.relative, known);
      if (resolved.empty() || resolved == self_header ||
          resolved == f.relative) {
        continue;
      }
      const std::set<std::string>& provided = symbols_of(resolved);
      const bool live = std::any_of(
          provided.begin(), provided.end(),
          [&](const std::string& sym) { return used.count(sym) != 0; });
      if (!live) {
        out.push_back({f.relative, inc.line, "unused-include",
                       "no symbol declared by '" + resolved +
                           "' appears in this unit — drop the include or "
                           "waive it with the reason it must stay",
                       f.scan.raw_lines[inc.line - 1]});
      }
    }
  }
}

}  // namespace

analysis_result analyze_tree(const std::vector<std::string>& files,
                             const std::string& root, const layer_spec& spec,
                             const analysis_options& opts) {
  analysis_result result;
  std::vector<loaded_file> loaded;
  loaded.reserve(files.size());
  std::vector<std::pair<std::string, std::string>> lint_inputs;
  for (const std::string& file : files) {
    std::string content = read_file(file);
    const std::string relative = relativize(file, root);
    if (opts.run_lint) {
      lint_inputs.emplace_back(relative, content);
    }
    loaded.push_back({relative, scan_source(content)});
  }
  std::sort(loaded.begin(), loaded.end(),
            [](const loaded_file& a, const loaded_file& b) {
              return a.relative < b.relative;
            });

  // The module include graph — built unconditionally, because the
  // depgraph artifacts are derived from it even when layering is off.
  std::set<std::string> known;
  for (const loaded_file& f : loaded) {
    known.insert(f.relative);
    const std::string module = module_of(f.relative);
    if (!module.empty()) {
      result.graph.modules.insert(module);
    }
  }
  for (const loaded_file& f : loaded) {
    const std::string from = module_of(f.relative);
    if (from.empty()) {
      continue;
    }
    for (const include_directive& inc : f.scan.includes) {
      if (inc.angled) {
        continue;
      }
      const std::string resolved =
          resolve_include(inc.target, f.relative, known);
      const std::string to =
          resolved.empty() ? module_of(inc.target) : module_of(resolved);
      // Only modules that exist in this scan form edges: an include of
      // a nonexistent module is a compile error, not our beat.
      if (!to.empty() && to != from &&
          result.graph.modules.count(to) != 0) {
        result.graph.edges[{from, to}].push_back(
            {f.relative, inc.line, f.scan.raw_lines[inc.line - 1]});
      }
    }
  }

  if (opts.run_lint) {
    std::vector<lint::finding> lint_findings =
        lint::lint_sources(lint_inputs);
    result.findings.insert(result.findings.end(),
                           std::make_move_iterator(lint_findings.begin()),
                           std::make_move_iterator(lint_findings.end()));
  }
  if (opts.run_layering) {
    check_layering(root, spec, result.graph, result.findings);
  }
  if (opts.run_hygiene) {
    check_hygiene(loaded, result.findings);
  }
  std::sort(result.findings.begin(), result.findings.end(),
            [](const lint::finding& a, const lint::finding& b) {
              return std::tie(a.path, a.line, a.rule) <
                     std::tie(b.path, b.line, b.rule);
            });
  return result;
}

// -------------------------------------------------------------- artifacts

std::string depgraph_json(const module_graph& graph, const layer_spec& spec,
                          const std::string& root_name) {
  std::ostringstream out;
  out << "{\n  \"root\": \"" << root_name << "\",\n  \"layers\": [\n";
  for (std::size_t i = 0; i < spec.layers.size(); ++i) {
    out << "    {\"index\": " << i << ", \"modules\": [";
    for (std::size_t m = 0; m < spec.layers[i].size(); ++m) {
      out << (m != 0 ? ", " : "") << '"' << spec.layers[i][m] << '"';
    }
    out << "]}" << (i + 1 < spec.layers.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"modules\": [\n";
  std::size_t count = 0;
  for (const std::string& module : graph.modules) {
    std::set<std::string> includes;
    for (const auto& [edge, sites] : graph.edges) {
      if (edge.first == module) {
        includes.insert(edge.second);
      }
    }
    const auto layer = spec.layer_of.find(module);
    out << "    {\"name\": \"" << module << "\", \"layer\": ";
    if (layer != spec.layer_of.end()) {
      out << layer->second;
    } else {
      out << -1;
    }
    out << ", \"includes\": [";
    std::size_t i = 0;
    for (const std::string& inc : includes) {
      out << (i++ != 0 ? ", " : "") << '"' << inc << '"';
    }
    out << "]}" << (++count < graph.modules.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"edges\": [\n";
  count = 0;
  for (const auto& [edge, sites] : graph.edges) {
    out << "    {\"from\": \"" << edge.first << "\", \"to\": \""
        << edge.second << "\", \"sites\": " << sites.size() << "}"
        << (++count < graph.edges.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

std::string depgraph_dot(const module_graph& graph, const layer_spec& spec) {
  std::ostringstream out;
  out << "digraph certquic {\n  rankdir=BT;\n  node [shape=box];\n";
  for (std::size_t i = 0; i < spec.layers.size(); ++i) {
    out << "  subgraph cluster_" << i << " {\n    label=\"layer " << i
        << "\";\n    rank=same;\n";
    for (const std::string& module : spec.layers[i]) {
      if (graph.modules.count(module) != 0) {
        out << "    \"" << module << "\";\n";
      }
    }
    out << "  }\n";
  }
  for (const std::string& module : graph.modules) {
    if (spec.layer_of.count(module) == 0) {
      out << "  \"" << module << "\";\n";
    }
  }
  for (const auto& [edge, sites] : graph.edges) {
    out << "  \"" << edge.first << "\" -> \"" << edge.second << "\";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace certquic::analyze
