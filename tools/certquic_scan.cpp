// certquic_scan — command-line front-end to the measurement toolkit.
// `certquic_scan --help` lists every subcommand and flag.
//
// Every engine-backed subcommand accepts --threads N (0 = default:
// $CERTQUIC_THREADS, else all hardware threads); results are
// bit-identical at any thread count.
//
// `census` classifies handshakes at one Initial size; `sweep` runs the
// Fig. 3 size sweep; `compress` runs the §4.2 study; `spoof` runs the
// §4.3 telescope study; `outofcore` runs the same census through the
// sharded spill → merge pipeline (its stdout is byte-identical to
// `census` on the same population — the verify.sh gate diffs the two —
// while shard/RSS details go to stderr); `ttfb` runs the time-domain
// chain-profile x network-condition sweep and prints per-cell TTFB
// medians; `epochs` runs the longitudinal census service over an
// evolving population (checkpointed in an epoch store; rerunning the
// same store resumes an interrupted run); `serve` is its bounded
// service loop, sealing one epoch per pass; `domain` probes one
// service in detail.
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <string>

#include "core/amplification_study.hpp"
#include "core/census.hpp"
#include "core/compression_study.hpp"
#include "core/outofcore_study.hpp"
#include "core/ttfb_study.hpp"
#include "engine/engine.hpp"
#include "scan/qscanner.hpp"
#include "scan/reach.hpp"
#include "service/census_service.hpp"
#include "util/text_table.hpp"

namespace {

using namespace certquic;

void usage(std::FILE* out) {
  std::fputs(
      "usage: certquic_scan <command> [flags]\n"
      "\n"
      "commands:\n"
      "  census     classify handshakes at one Initial size\n"
      "  sweep      Fig. 3 Initial-size sweep\n"
      "  compress   certificate-compression study (paper SS4.2)\n"
      "  spoof      spoofed-handshake telescope study (paper SS4.3)\n"
      "  outofcore  census via the sharded spill->merge pipeline\n"
      "  ttfb       time-domain TTFB sweep (chain profile x network)\n"
      "  epochs     longitudinal census over an evolving population;\n"
      "             rerunning the same --store resumes an interrupted run\n"
      "  serve      bounded service loop: seal one epoch per pass\n"
      "  domain     probe one service in detail: domain <name>\n"
      "\n"
      "flags:\n"
      "  --domains N     population size (default 20000)\n"
      "  --seed S        population seed (default 42)\n"
      "  --initial B     client Initial size in bytes (default 1362)\n"
      "  --sample N      probe at most N services (default 1500)\n"
      "  --sessions N    spoof: sessions per provider (default 80)\n"
      "  --shards N      outofcore/epochs/serve: spill shards (default 8)\n"
      "  --spill-dir DIR outofcore: keep the spill shards in DIR\n"
      "  --no-compare    outofcore: skip the in-memory baseline\n"
      "  --epochs N      epochs/serve: target epoch count (default 4)\n"
      "  --store DIR     epochs/serve: epoch store directory (default: a\n"
      "                  temp dir removed afterwards; resume needs --store)\n"
      "  --abort-after-shards N  epochs: stop (store resumable) after\n"
      "                  probing N shard slices — crash injection\n"
      "  --threads N     engine threads (0 = default)\n",
      out);
}

bool known_command(const std::string& cmd) {
  for (const char* known :
       {"census", "sweep", "compress", "spoof", "outofcore", "ttfb",
        "epochs", "serve", "domain"}) {
    if (cmd == known) {
      return true;
    }
  }
  return false;
}

struct cli_options {
  std::string command;
  std::string domain;
  std::size_t domains = 20000;
  std::uint64_t seed = 42;
  std::size_t initial = 1362;
  std::size_t sample = 1500;
  std::size_t sessions = 80;
  std::size_t shards = 8;
  std::string spill_dir;     // empty = temp dir, removed afterwards
  bool no_compare = false;   // skip the materializing baseline
  std::size_t epochs = 4;
  std::string store_dir;     // empty = temp dir, removed afterwards
  std::size_t abort_after_shards = 0;
  std::size_t threads = 0;   // 0 = engine default

  [[nodiscard]] engine::options exec() const { return {.threads = threads}; }
};

bool parse_args(int argc, char** argv, cli_options& opt) {
  if (argc < 2) {
    return false;
  }
  opt.command = argv[1];
  int i = 2;
  if (opt.command == "domain") {
    if (argc < 3) {
      return false;
    }
    opt.domain = argv[2];
    i = 3;
  }
  for (; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--no-compare") {
      opt.no_compare = true;
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "flag %s needs a value\n", flag.c_str());
      return false;
    }
    if (flag == "--spill-dir") {
      opt.spill_dir = argv[++i];
      continue;
    }
    if (flag == "--store") {
      opt.store_dir = argv[++i];
      continue;
    }
    const auto value = std::strtoull(argv[++i], nullptr, 10);
    if (flag == "--domains") {
      opt.domains = value;
    } else if (flag == "--seed") {
      opt.seed = value;
    } else if (flag == "--initial") {
      opt.initial = value;
    } else if (flag == "--sample") {
      opt.sample = value;
    } else if (flag == "--sessions") {
      opt.sessions = value;
    } else if (flag == "--shards") {
      opt.shards = value;
    } else if (flag == "--epochs") {
      opt.epochs = value;
    } else if (flag == "--abort-after-shards") {
      opt.abort_after_shards = value;
    } else if (flag == "--threads") {
      opt.threads = value;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

/// Renders the census-format class table from per-class counts, shared
/// by `census` and `outofcore` so the verify gate can diff their
/// stdout byte for byte.
template <typename CountFn>
void print_class_table(std::size_t probed, std::size_t initial,
                       CountFn&& count_of) {
  text_table table({"class", "count", "share"});
  for (const auto cls :
       {scan::handshake_class::amplification,
        scan::handshake_class::multi_rtt, scan::handshake_class::retry,
        scan::handshake_class::one_rtt,
        scan::handshake_class::unreachable}) {
    const std::size_t count = count_of(cls);
    const double share =
        probed == 0 ? 0.0
                    : static_cast<double>(count) /
                          static_cast<double>(probed);
    table.add_row({scan::to_string(cls), std::to_string(count),
                   pct(share)});
  }
  std::printf("%zu services probed @ Initial=%zu\n%s", probed, initial,
              table.render().c_str());
}

int run_census(const internet::model& m, const cli_options& opt) {
  core::census_options copt;
  copt.initial_size = opt.initial;
  copt.max_services = opt.sample;
  const auto census = core::run_census(m, copt, opt.exec());
  print_class_table(census.probed, opt.initial,
                    [&](scan::handshake_class c) { return census.count(c); });
  return 0;
}

/// Removes a disposable spill directory on scope exit — also on the
/// error paths (disk-full, failed replay) the pipeline exists to hit.
struct temp_dir_cleanup {
  std::string dir;  // empty = nothing to clean
  ~temp_dir_cleanup() {
    if (!dir.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
  }
};

int run_outofcore(const internet::model& m, const cli_options& opt) {
  core::outofcore_options oopt;
  oopt.max_services = opt.sample;
  oopt.shards = opt.shards;
  oopt.initial_size = opt.initial;
  // --no-compare skips the materializing baseline entirely: the true
  // out-of-core mode for populations whose record stream outgrows RAM.
  oopt.compare_in_memory = !opt.no_compare;
  const bool temp_dir = opt.spill_dir.empty();
  oopt.spill_dir =
      temp_dir ? (std::filesystem::temp_directory_path() /
                  ("certquic_outofcore_" + std::to_string(::getpid())))
                     .string()
               : opt.spill_dir;
  // An explicit --spill-dir keeps the shard files for later
  // re-aggregation; only the fallback temp directory is disposable.
  oopt.keep_spills = !temp_dir;
  const temp_dir_cleanup cleanup{temp_dir ? oopt.spill_dir : ""};
  const auto result = core::run_outofcore_study(m, oopt, opt.exec());

  // stdout carries only the deterministic aggregate (byte-identical to
  // `census` on the same population); shard and RSS details go to
  // stderr so the verify gate can diff the two subcommands.
  print_class_table(result.spill.records, opt.initial,
                    [&](scan::handshake_class c) {
                      return result.spill.count(c);
                    });
  std::fprintf(stderr,
               "out-of-core: %zu services, %zu shards, %zu spilled "
               "records\n",
               result.sampled, result.shards, result.spill.records);
  if (!temp_dir) {
    std::fprintf(stderr, "spill shards kept in %s\n",
                 oopt.spill_dir.c_str());
  }
  if (result.compared) {
    std::fprintf(stderr,
                 "peak RSS: spill+merge %zu kB | in-memory %zu kB%s\n",
                 result.spill_peak_rss_kb, result.in_memory_peak_rss_kb,
                 result.spill_peak_rss_kb == 0 ? " (not measurable)" : "");
  } else {
    std::fprintf(stderr, "peak RSS: spill+merge %zu kB%s\n",
                 result.spill_peak_rss_kb,
                 result.spill_peak_rss_kb == 0 ? " (not measurable)" : "");
  }
  if (result.compared) {
    std::fprintf(stderr, "aggregates identical: %s\n",
                 result.identical ? "yes" : "NO");
    if (!result.identical) {
      return 1;
    }
  }
  return 0;
}

int run_sweep(const internet::model& m, const cli_options& opt) {
  text_table table({"Initial", "Ampl", "Multi", "RETRY", "1-RTT",
                    "unreachable"});
  for (const std::size_t size : core::initial_size_sweep()) {
    core::census_options copt;
    copt.initial_size = size;
    copt.max_services = opt.sample;
    copt.collect_payload_details = false;
    const auto census = core::run_census(m, copt, opt.exec());
    table.add_row({std::to_string(size),
                   pct(census.share(scan::handshake_class::amplification)),
                   pct(census.share(scan::handshake_class::multi_rtt)),
                   pct(census.share(scan::handshake_class::retry)),
                   pct(census.share(scan::handshake_class::one_rtt)),
                   pct(census.share(scan::handshake_class::unreachable))});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

int run_compress(const internet::model& m, const cli_options& opt) {
  core::compression_options copt;
  copt.max_chains = opt.sample;
  copt.max_probes = opt.sample / 4;
  const auto study = core::run_compression_study(m, copt, opt.exec());
  std::printf("brotli median rate %.1f%% | under 3x1357: %.1f%% compressed "
              "vs %.1f%% plain | wild mean %.1f%%\n",
              study.synthetic_savings[0].median() * 100.0,
              study.under_limit_compressed * 100.0,
              study.under_limit_uncompressed * 100.0,
              study.wild_savings.mean() * 100.0);
  return 0;
}

int run_spoof(const internet::model& m, const cli_options& opt) {
  const auto result = core::run_telescope_study(
      m, {.sessions_per_provider = opt.sessions});
  text_table table({"provider", "sessions", "median", "max"});
  for (const auto& [provider, samples] : result.amplification) {
    table.add_row({provider, std::to_string(samples.size()),
                   fixed(samples.median(), 1) + "x",
                   fixed(samples.max(), 1) + "x"});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

int run_ttfb(const internet::model& m, const cli_options& opt) {
  core::ttfb_options topt;
  topt.initial_size = opt.initial;
  topt.max_services = opt.sample;
  const auto study = core::run_ttfb_study(m, topt, opt.exec());
  text_table table({"profile", "condition", "probed", "fetched",
                    "med [ms]", "p95 [ms]"});
  for (const auto& cell : study.cells) {
    table.add_row(
        {x509::to_string(cell.profile), cell.condition.name,
         std::to_string(cell.probed), std::to_string(cell.completed()),
         cell.ttfb_ms.empty() ? std::string("-")
                              : fixed(cell.ttfb_ms.median(), 1),
         cell.ttfb_ms.empty() ? std::string("-")
                              : fixed(cell.ttfb_ms.quantile(0.95), 1)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

service::service_options service_opts(const cli_options& opt,
                                      const std::string& store_dir) {
  service::service_options sopt;
  sopt.store_dir = store_dir;
  sopt.domains = opt.domains;
  sopt.seed = opt.seed;
  sopt.sample = opt.sample;
  sopt.shards = opt.shards;
  sopt.initial_size = opt.initial;
  sopt.epochs = opt.epochs;
  sopt.abort_after_shards = opt.abort_after_shards;
  return sopt;
}

/// `epochs`/`serve` build one model per epoch themselves, so unlike the
/// other subcommands they never touch the up-front base model.
int run_epochs_cmd(const cli_options& opt) {
  const bool temp_store = opt.store_dir.empty();
  const std::string store_dir =
      temp_store ? (std::filesystem::temp_directory_path() /
                    ("certquic_epochs_" + std::to_string(::getpid())))
                       .string()
                 : opt.store_dir;
  const temp_dir_cleanup cleanup{temp_store ? store_dir : ""};
  const auto result =
      service::run_epochs(service_opts(opt, store_dir), opt.exec());
  std::printf("%s", service::render_epoch_tables(result).c_str());
  std::fprintf(stderr, "epochs: %zu reported, %zu shard slices probed\n",
               result.epochs.size(), result.probed_shards);
  if (!result.complete) {
    std::fprintf(stderr,
                 "epochs: run incomplete; rerun with the same --store "
                 "to resume\n");
    return 3;
  }
  return 0;
}

int run_serve(const cli_options& opt) {
  const bool temp_store = opt.store_dir.empty();
  const std::string store_dir =
      temp_store ? (std::filesystem::temp_directory_path() /
                    ("certquic_serve_" + std::to_string(::getpid())))
                       .string()
                 : opt.store_dir;
  const temp_dir_cleanup cleanup{temp_store ? store_dir : ""};
  service::service_options sopt = service_opts(opt, store_dir);
  sopt.max_epochs_per_call = 1;
  std::size_t reported = 0;
  while (true) {
    const auto result = service::run_epochs(sopt, opt.exec());
    if (result.epochs.size() <= reported && !result.complete) {
      std::fprintf(stderr, "serve: no progress (crash injection?); "
                           "store left resumable\n");
      return 3;
    }
    reported = result.epochs.size();
    const auto& last = result.epochs.back();
    std::fprintf(stderr,
                 "serve: epoch %llu sealed (%zu records, churn %zu, "
                 "%zu/%zu slices probed/reused)\n",
                 static_cast<unsigned long long>(last.epoch),
                 last.aggregate.records, last.churn.total(),
                 last.shards_probed, last.shards_reused);
    if (result.complete) {
      std::printf("%s", service::render_epoch_tables(result).c_str());
      return 0;
    }
  }
}

int run_domain(const internet::model& m, const cli_options& opt) {
  for (const auto& rec : m.records()) {
    if (rec.domain != opt.domain) {
      continue;
    }
    if (!rec.serves_quic()) {
      std::printf("%s: no QUIC service (class: %d)\n", rec.domain.c_str(),
                  static_cast<int>(rec.svc));
      return 0;
    }
    const scan::reach prober{m};
    const auto result =
        prober.probe(rec, {.initial_size = opt.initial,
                           .capture_certificate = true});
    std::printf("%s @ %s\n", rec.domain.c_str(),
                rec.address.to_string().c_str());
    std::printf("  class         : %s\n",
                scan::to_string(result.cls).c_str());
    std::printf("  sent/received : %zu / %zu bytes (first-burst ampl "
                "%.2fx)\n",
                result.obs.bytes_sent_total,
                result.obs.bytes_received_total,
                result.obs.first_burst_amplification());
    std::printf("  cert message  : %zu bytes%s\n",
                result.obs.certificate_msg_size,
                result.obs.compression_used ? " (compressed)" : "");
    const auto chain = m.chain_of(rec, internet::fetch_protocol::quic);
    std::printf("  chain         : %zu certs, %zu bytes\n", chain.depth(),
                chain.wire_size());
    chain.for_each([](const x509::certificate& cert) {
      std::printf("    %s\n", cert.describe().c_str());
    });
    return 0;
  }
  std::fprintf(stderr, "domain not found in population: %s\n",
               opt.domain.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2) {
    const std::string first = argv[1];
    if (first == "--help" || first == "-h" || first == "help") {
      usage(stdout);
      return 0;
    }
    if (!known_command(first)) {
      std::fprintf(stderr, "unknown command: %s\n\n", first.c_str());
      usage(stderr);
      return 2;
    }
  }
  cli_options opt;
  if (!parse_args(argc, argv, opt)) {
    usage(stderr);
    return 2;
  }
  try {
    // The longitudinal subcommands build one model per epoch; every
    // other subcommand probes the one base population.
    if (opt.command == "epochs") {
      return run_epochs_cmd(opt);
    }
    if (opt.command == "serve") {
      return run_serve(opt);
    }
    const auto model = internet::model::generate(
        {.domains = opt.domains, .seed = opt.seed});
    if (opt.command == "census") {
      return run_census(model, opt);
    }
    if (opt.command == "sweep") {
      return run_sweep(model, opt);
    }
    if (opt.command == "compress") {
      return run_compress(model, opt);
    }
    if (opt.command == "spoof") {
      return run_spoof(model, opt);
    }
    if (opt.command == "outofcore") {
      return run_outofcore(model, opt);
    }
    if (opt.command == "ttfb") {
      return run_ttfb(model, opt);
    }
    return run_domain(model, opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "certquic_scan %s: %s\n", opt.command.c_str(),
                 e.what());
    return 1;
  }
}
