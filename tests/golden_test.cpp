// Golden-file regression tests for the paper-figure bench binaries.
//
// Each test re-runs one bench binary on a small, fixed-seed population and
// diffs its stdout against the reference under tests/golden/. This turns
// the paper's figures and tables from write-only printers into enforced
// regression checks: any change to the synthetic Internet, the certificate
// encoder or the handshake pipeline that shifts a published number shows
// up as a diff here.
//
// Regenerating after an intentional change:
//   build/tests/golden_test --update-golden
// (or CERTQUIC_UPDATE_GOLDEN=1 ctest -R golden_test)
#include <string>

#include <gtest/gtest.h>

#include "golden.hpp"

#ifndef CERTQUIC_BENCH_BIN_DIR
#error "CERTQUIC_BENCH_BIN_DIR must point at the built bench binaries"
#endif
#ifndef CERTQUIC_SMOKE_ENV
#error "CERTQUIC_SMOKE_ENV must carry the shared smoke-run knobs"
#endif

namespace certquic::test {
namespace {

// Population knobs, single-sourced from CERTQUIC_SMOKE_KNOBS in the root
// CMakeLists so smoke runs and golden captures can never diverge. The
// checked-in golden files must be regenerated whenever they change.
constexpr const char* kEnv = CERTQUIC_SMOKE_ENV;

void check_bench(const std::string& binary) {
  // The binary path is quoted so a checkout under a directory with spaces
  // still resolves; the knobs must stay unquoted words for `env`.
  const std::string command = std::string("env ") + kEnv + " '" +
                              CERTQUIC_BENCH_BIN_DIR "/" + binary + "'";
  std::string out;
  const int status = run_capture(command, out);
  ASSERT_EQ(status, 0) << command << " exited with " << status;
  ASSERT_FALSE(normalize_text(out).empty()) << binary << " printed nothing";
  EXPECT_TRUE(golden_compare(binary + ".txt", out));
}

TEST(Golden, Fig02CertFieldSizes) { check_bench("fig02_cert_field_sizes"); }

TEST(Golden, Fig04AmplificationCdf) { check_bench("fig04_amplification_cdf"); }

TEST(Golden, Fig06ChainSizeCdf) { check_bench("fig06_chain_size_cdf"); }

TEST(Golden, Tab01BrowserProfiles) { check_bench("tab01_browser_profiles"); }

TEST(Golden, Tab02CryptoAlgorithms) { check_bench("tab02_crypto_algorithms"); }

TEST(Golden, FigPqcChainImpact) { check_bench("fig_pqc_chain_impact"); }

TEST(Golden, FigOutofcoreRss) { check_bench("fig_outofcore_rss"); }

TEST(Golden, FigTtfbCdf) { check_bench("fig_ttfb_cdf"); }

TEST(Golden, FigTtfbPqc) { check_bench("fig_ttfb_pqc"); }

TEST(Golden, FigEpochDeltas) { check_bench("fig_epoch_deltas"); }

}  // namespace
}  // namespace certquic::test

int main(int argc, char** argv) {
  certquic::test::parse_update_golden_flag(argc, argv);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
