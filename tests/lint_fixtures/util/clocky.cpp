// Lint fixture: wall-clock use — nondet-source applies everywhere
// under src/, including util/.
#include <chrono>

namespace demo {

long long now_ms() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

}  // namespace demo
