// Regression: rule patterns inside block comments, string literals
// and raw string literals must never match — this file has zero
// findings.
#include <string>

/* The probe path must never call std::rand or
   std::chrono::system_clock::now() — simulated time only. */

namespace fx {

std::string rejected_apis() {
  std::string msg = "do not call srand(time(nullptr)) or gettimeofday";
  msg += R"(steady_clock, random_device and clock_gettime( are banned)";
  return msg;
}

}  // namespace fx
