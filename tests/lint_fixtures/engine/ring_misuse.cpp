// Lint fixture: an SPSC-ring-shaped class that tests its cursors with
// a plain (memberless) atomic read — the exact misuse atomic-plain
// exists to catch: `head_ == tail_` is an implicit seq_cst load where
// the ring protocol requires an explicit acquire.
#include <atomic>
#include <cstddef>

namespace demo {

class bad_ring {
 public:
  bool empty() const {
    return head_ == tail_;  // plain load where acquire is required
  }

  bool empty_correctly() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::size_t> head_{0};
  std::atomic<std::size_t> tail_{0};
};

}  // namespace demo
