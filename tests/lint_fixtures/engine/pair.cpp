// Lint fixture: iterates the unordered member declared in pair.hpp —
// the finding must land here even though the declaration is in the
// header (merged per-basename declaration unit).
#include "pair.hpp"

namespace demo {

int agg::total() const {
  int sum = 0;
  for (const auto& kv : by_id) {
    sum += kv.second;
  }
  return sum;
}

}  // namespace demo
