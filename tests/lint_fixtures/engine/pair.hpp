// Lint fixture: header declaring an unordered member that the
// companion .cpp iterates — exercises the merged header/source
// declaration unit (the cdf.hpp/cdf.cpp situation).
#pragma once

#include <unordered_map>

namespace demo {

struct agg {
  std::unordered_map<int, int> by_id;
  int total() const;
};

}  // namespace demo
