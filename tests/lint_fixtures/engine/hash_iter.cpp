// Lint fixture: iteration over an unordered container inside engine/
// — must be flagged as unordered-iter (hash order would feed an
// aggregate nondeterministically). NOT compiled; scanned by lint_test.
#include <unordered_map>

namespace demo {

int aggregate() {
  std::unordered_map<int, int> counts;
  counts[1] = 2;
  int sum = 0;
  for (const auto& kv : counts) {
    sum += kv.second;
  }
  return sum;
}

}  // namespace demo
