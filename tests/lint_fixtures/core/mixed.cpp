// Lint fixture: float accumulation in core/ — one bare violation and
// one carrying an inline waiver that must suppress the finding.
namespace demo {

double tally(double x) {
  double acc = 0.0;
  acc += x;
  double waived = 0.0;
  // certquic-lint: allow float-accum — fixture: inline waiver exercised
  waived += x;
  return acc + waived;
}

}  // namespace demo
