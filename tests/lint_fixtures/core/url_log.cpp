// Regression: a `//` inside a string literal (URL) must NOT truncate
// the line before rule matching — the accumulation after the string
// on the same line has to be found.
#include <string>

namespace fx {

struct tally {
  double total = 0;
};

void log_and_add(tally& t, double x) {
  const std::string endpoint = "http://crt.example/logs"; t.total += x;
}

}  // namespace fx
