// Lint fixture: ad-hoc rng construction outside util/rng — must be
// flagged raw-rng regardless of directory.
#include "util/rng.hpp"

namespace demo {

unsigned long long draw() {
  certquic::rng r{42};
  return r.next_u64();
}

}  // namespace demo
