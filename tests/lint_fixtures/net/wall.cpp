// Lint fixture: libc time() call — flagged nondet-source, but waived
// by the fixture waiver file (exercises file-level waivers).
#include <ctime>

namespace demo {

long stamp() {
  return static_cast<long>(time(nullptr));
}

}  // namespace demo
