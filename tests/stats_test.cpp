// Unit and property tests for the stats module.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <thread>
#include <utility>
#include <vector>

#include "stats/cdf.hpp"
#include "stats/summary.hpp"
#include "util/rng.hpp"

namespace certquic::stats {
namespace {

TEST(Summary, BasicMoments) {
  summary s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(v);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.total(), 40.0);
}

TEST(Summary, EmptyIsSafe) {
  const summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_half_width(), 0.0);
}

TEST(Summary, MergeMatchesSequential) {
  rng r{5};
  summary whole;
  summary left;
  summary right;
  for (int i = 0; i < 1000; ++i) {
    const double v = r.normal(10.0, 3.0);
    whole.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Summary, MergeWithEmpty) {
  summary a;
  a.add(1.0);
  a.add(3.0);
  summary b;
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(SampleSet, QuantilesInterpolate) {
  sample_set s;
  for (const double v : {10.0, 20.0, 30.0, 40.0}) {
    s.add(v);
  }
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0 / 3.0), 20.0);
}

TEST(SampleSet, EmptyThrowsOnQuantile) {
  const sample_set s;
  EXPECT_THROW((void)s.quantile(0.5), std::logic_error);
  EXPECT_EQ(s.fraction_at_or_below(1.0), 0.0);
}

TEST(SampleSet, FractionQueries) {
  sample_set s;
  s.add_all({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  EXPECT_DOUBLE_EQ(s.fraction_at_or_below(5.0), 0.5);
  EXPECT_DOUBLE_EQ(s.fraction_above(5.0), 0.5);
  EXPECT_DOUBLE_EQ(s.fraction_at_or_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.fraction_above(10.0), 0.0);
}

TEST(SampleSet, AddAfterQueryResorts) {
  sample_set s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  s.add(1.0);
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(SampleSet, ConcurrentQuantileReadsAreSafe) {
  // Regression for the lazy-sort data race: const quantile queries used
  // to sort through mutable state with no synchronization, so two
  // first readers could sort the vector under each other. The guarded
  // sort must give every concurrent reader the same answer (run under
  // TSan this also proves the absence of the race).
  sample_set s;
  rng r{99};
  for (int i = 0; i < 10'000; ++i) {
    s.add(r.log_normal(3.0, 1.0));
  }
  // Deliberately NOT finalized: the first readers race to sort.
  std::vector<std::thread> threads;
  std::array<double, 8> medians{};
  for (std::size_t t = 0; t < medians.size(); ++t) {
    threads.emplace_back([&s, &medians, t]() {
      for (int i = 0; i < 100; ++i) {
        medians[t] = s.median();
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  for (const double m : medians) {
    EXPECT_DOUBLE_EQ(m, medians[0]);
  }
}

TEST(SampleSet, FinalizeMakesReadsLockFree) {
  sample_set s;
  for (const double v : {5.0, 1.0, 3.0}) {
    s.add(v);
  }
  s.finalize();
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  // Adding again invalidates the sort; finalize restores it.
  s.add(0.0);
  s.finalize();
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
}

TEST(SampleSet, CopyAndMovePreserveSamplesAndSortState) {
  sample_set s;
  for (const double v : {9.0, 2.0, 7.0}) {
    s.add(v);
  }
  sample_set copied = s;  // unsorted copy
  EXPECT_DOUBLE_EQ(copied.median(), 7.0);
  s.finalize();
  sample_set moved = std::move(s);
  EXPECT_DOUBLE_EQ(moved.median(), 7.0);
  sample_set assigned;
  assigned = copied;
  EXPECT_DOUBLE_EQ(assigned.quantile(0.0), 2.0);
}

TEST(SampleSet, CdfSeriesSpansRange) {
  sample_set s;
  for (int i = 1; i <= 100; ++i) {
    s.add(i);
  }
  const auto series = s.cdf_series(11);
  ASSERT_EQ(series.size(), 11u);
  EXPECT_DOUBLE_EQ(series.front().x, 1.0);
  EXPECT_DOUBLE_EQ(series.front().f, 0.0);
  EXPECT_DOUBLE_EQ(series.back().x, 100.0);
  EXPECT_DOUBLE_EQ(series.back().f, 1.0);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_LE(series[i - 1].x, series[i].x);
    EXPECT_LT(series[i - 1].f, series[i].f);
  }
}

TEST(SampleSet, MeanMatchesDefinition) {
  sample_set s;
  s.add_all({2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
}

TEST(SampleSet, ReserveKeepsQueriesIntact) {
  sample_set s;
  s.reserve(1000);
  EXPECT_TRUE(s.empty());
  s.add(3.0);
  s.add(1.0);
  s.reserve(2000);  // reserve after adds must not disturb samples
  s.add(2.0);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(Histogram, BinningAndClamping) {
  histogram h{0.0, 10.0, 5};
  h.add(0.5);    // bin 0
  h.add(9.9);    // bin 4
  h.add(-3.0);   // clamps to bin 0
  h.add(42.0);   // clamps to bin 4
  h.add(4.0, 2.5);  // weighted, bin 2
  EXPECT_EQ(h.bins(), 5u);
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(2), 2.5);
  EXPECT_DOUBLE_EQ(h.count(4), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 6.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(Histogram, RejectsInvalidConstruction) {
  EXPECT_THROW((histogram{0.0, 10.0, 0}), std::logic_error);
  EXPECT_THROW((histogram{10.0, 0.0, 4}), std::logic_error);
}

// Property: for random corpora, quantile and fraction_at_or_below are
// consistent inverses (F(Q(q)) >= q).
class QuantileConsistency : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantileConsistency, FractionOfQuantileCoversQ) {
  rng r{GetParam()};
  sample_set s;
  for (int i = 0; i < 500; ++i) {
    s.add(r.log_normal(5.0, 1.5));
  }
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double x = s.quantile(q);
    EXPECT_GE(s.fraction_at_or_below(x) + 1e-9, q);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileConsistency,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace certquic::stats
