// Unit, integration and property tests for the QUIC transport module.
#include <gtest/gtest.h>

#include "ca/ecosystem.hpp"
#include "net/simulator.hpp"
#include "quic/behavior.hpp"
#include "quic/client.hpp"
#include "quic/frames.hpp"
#include "quic/packet.hpp"
#include "quic/server.hpp"
#include "quic/varint.hpp"
#include "util/errors.hpp"

namespace certquic::quic {
namespace {

const net::endpoint_id kClientEp{net::ipv4::of(10, 1, 0, 1), 40000};
const net::endpoint_id kServerEp{net::ipv4::of(192, 0, 2, 1), 443};

TEST(Varint, KnownEncodings) {
  buffer_writer w;
  write_varint(w, 37);        // 1 byte
  write_varint(w, 15293);     // 2 bytes
  write_varint(w, 494878333); // 4 bytes
  const bytes out = std::move(w).take();
  // RFC 9000 §A.1 sample values.
  const bytes expected = {0x25, 0x7b, 0xbd, 0x9d, 0x7f, 0x3e, 0x7d};
  EXPECT_EQ(out, expected);
}

TEST(Varint, RoundTripAllSizeClasses) {
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{63}, std::uint64_t{64},
        std::uint64_t{16383}, std::uint64_t{16384}, (std::uint64_t{1} << 30) - 1,
        std::uint64_t{1} << 30, kVarintMax}) {
    buffer_writer w;
    write_varint(w, v);
    EXPECT_EQ(w.size(), varint_size(v));
    const bytes data = std::move(w).take();
    buffer_reader r{data};
    EXPECT_EQ(read_varint(r), v);
  }
}

TEST(Varint, RejectsOverflow) {
  EXPECT_THROW((void)varint_size(kVarintMax + 1), codec_error);
}

TEST(Frames, SizesMatchEncoding) {
  rng r{1};
  bytes crypto_data(321);
  r.fill(crypto_data);
  const std::vector<frame> frames = {
      padding_frame{17},
      ping_frame{},
      ack_frame{7},
      crypto_frame{100, crypto_data},
      stream_frame{0, 64, bytes(48, 0x33)},
      connection_close_frame{0x0a, "bye"},
  };
  for (const auto& f : frames) {
    buffer_writer w;
    write_frame(w, f);
    EXPECT_EQ(w.size(), frame_size(f));
  }
}

TEST(Frames, ParseRoundTrip) {
  bytes crypto_data = {9, 8, 7, 6, 5};
  buffer_writer w;
  write_frame(w, crypto_frame{42, crypto_data});
  write_frame(w, ack_frame{3});
  write_frame(w, padding_frame{25});
  const bytes payload = std::move(w).take();
  const auto parsed = parse_frames(payload);
  ASSERT_EQ(parsed.size(), 3u);
  const auto& cf = std::get<crypto_frame>(parsed[0]);
  EXPECT_EQ(cf.offset, 42u);
  EXPECT_EQ(cf.data, crypto_data);
  EXPECT_EQ(std::get<ack_frame>(parsed[1]).largest, 3u);
  EXPECT_EQ(std::get<padding_frame>(parsed[2]).count, 25u);

  const auto acc = account(parsed);
  EXPECT_EQ(acc.crypto_payload, 5u);
  EXPECT_EQ(acc.padding, 25u);
  EXPECT_TRUE(acc.ack_eliciting);
}

TEST(Frames, AckOnlyIsNotAckEliciting) {
  const auto acc = account({ack_frame{1}, padding_frame{10}});
  EXPECT_FALSE(acc.ack_eliciting);
}

TEST(Packet, WireSizeMatchesEncoding) {
  rng r{2};
  packet p;
  p.type = packet_type::initial;
  p.dcid.resize(8);
  r.fill(p.dcid);
  p.token.resize(24);
  r.fill(p.token);
  bytes crypto_data(800);
  r.fill(crypto_data);
  p.frames.push_back(crypto_frame{0, crypto_data});
  p.frames.push_back(padding_frame{100});
  EXPECT_EQ(encode_packet(p).size(), p.wire_size());
}

TEST(Packet, DatagramRoundTripWithCoalescing) {
  rng r{3};
  packet init;
  init.type = packet_type::initial;
  init.dcid.resize(8);
  r.fill(init.dcid);
  init.scid.resize(8);
  r.fill(init.scid);
  init.packet_number = 0;
  init.frames.push_back(ack_frame{0});
  init.frames.push_back(crypto_frame{0, bytes(120, 0x42)});

  packet hs;
  hs.type = packet_type::handshake;
  hs.dcid = init.dcid;
  hs.scid = init.scid;
  hs.packet_number = 0;
  hs.frames.push_back(crypto_frame{0, bytes(900, 0x41)});

  const bytes wire = encode_datagram({init, hs});
  const auto parsed = parse_datagram(wire);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].type, packet_type::initial);
  EXPECT_EQ(parsed[1].type, packet_type::handshake);
  EXPECT_EQ(parsed[0].dcid, init.dcid);

  const auto acc = account_datagram(wire);
  EXPECT_EQ(acc.total, wire.size());
  EXPECT_EQ(acc.crypto_payload, 1020u);
  EXPECT_TRUE(acc.has_initial);
  EXPECT_TRUE(acc.has_handshake);
}

TEST(Packet, RetryRoundTrip) {
  packet retry;
  retry.type = packet_type::retry;
  retry.dcid = bytes(8, 1);
  retry.scid = bytes(8, 2);
  retry.token = bytes(24, 3);
  const bytes wire = encode_datagram({retry});
  EXPECT_EQ(wire.size(), retry.wire_size());
  const auto parsed = parse_datagram(wire);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].type, packet_type::retry);
  EXPECT_EQ(parsed[0].token, bytes(24, 3));
}

TEST(Packet, PadDatagramHitsExactTarget) {
  for (const std::size_t target : {1200u, 1252u, 1362u, 1472u}) {
    rng r{4};
    packet p;
    p.type = packet_type::initial;
    p.dcid.resize(8);
    r.fill(p.dcid);
    p.frames.push_back(crypto_frame{0, bytes(300, 0x55)});
    std::vector<packet> dgram{p};
    (void)pad_datagram_to(dgram, target);
    EXPECT_EQ(encode_datagram(dgram).size(), target);
  }
}

TEST(Packet, ParseRejectsMissingFixedBit) {
  // A non-zero first byte with neither the long-header nor the fixed
  // bit set is not a QUIC packet (a 0x00 byte would be datagram-level
  // padding instead).
  const bytes data = {0x20, 0x01, 0x02};
  EXPECT_THROW((void)parse_datagram(data), codec_error);
}

TEST(Packet, ParseRejectsTruncatedShortHeader) {
  // A fixed-bit short header that ends before packet number + AEAD tag.
  const bytes data = {0x40, 0x01, 0x02};
  EXPECT_THROW((void)parse_datagram(data), codec_error);
}

TEST(Packet, OneRttRoundTrip) {
  rng r{6};
  packet p;
  p.type = packet_type::one_rtt;
  p.dcid.resize(8);
  r.fill(p.dcid);
  p.packet_number = 3;
  p.frames.push_back(stream_frame{0, 0, bytes(200, 0x5a)});
  const bytes wire = encode_datagram({p});
  EXPECT_EQ(wire.size(), p.wire_size());
  const auto parsed = parse_datagram(wire);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].type, packet_type::one_rtt);
  EXPECT_EQ(parsed[0].dcid, p.dcid);
  EXPECT_EQ(parsed[0].packet_number, 3u);
  ASSERT_EQ(parsed[0].frames.size(), 1u);
  const auto* sf = std::get_if<stream_frame>(&parsed[0].frames[0]);
  ASSERT_NE(sf, nullptr);
  EXPECT_EQ(sf->data, bytes(200, 0x5a));

  const auto acc = account_datagram(wire);
  EXPECT_EQ(acc.stream_payload, 200u);
}

TEST(Packet, OneRttCoalescesLastAfterLongHeaders) {
  // A short-header packet has no length field, so it must close the
  // datagram; the parser consumes the rest of the buffer for it.
  rng r{7};
  packet hs;
  hs.type = packet_type::handshake;
  hs.dcid.resize(8);
  r.fill(hs.dcid);
  hs.frames.push_back(crypto_frame{0, bytes(40, 0x21)});

  packet app;
  app.type = packet_type::one_rtt;
  app.dcid = hs.dcid;
  app.frames.push_back(stream_frame{0, 0, bytes(15, 0x47)});

  const auto parsed = parse_datagram(encode_datagram({hs, app}));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].type, packet_type::handshake);
  EXPECT_EQ(parsed[1].type, packet_type::one_rtt);
  const auto* sf = std::get_if<stream_frame>(&parsed[1].frames[0]);
  ASSERT_NE(sf, nullptr);
  EXPECT_EQ(sf->data.size(), 15u);
}

TEST(Packet, TrailingZerosAreDatagramPadding) {
  rng r{5};
  packet p;
  p.type = packet_type::initial;
  p.dcid.resize(8);
  r.fill(p.dcid);
  p.frames.push_back(crypto_frame{0, bytes(10, 0x11)});
  bytes wire = encode_datagram({p});
  wire.resize(wire.size() + 64, 0);  // UDP-layer padding
  const auto parsed = parse_datagram(wire);
  EXPECT_EQ(parsed.size(), 1u);
}

// ---- End-to-end handshakes over the simulator ---------------------------

struct handshake_fixture {
  net::simulator sim;
  ca::ecosystem eco = ca::ecosystem::make();

  observation run(const char* profile, server_behavior behavior,
                  client_config config, const std::string& domain = "x.org") {
    rng issue_rng{99};
    auto chain = eco.issue(eco.profile(profile), domain, issue_rng);
    server srv{sim, kServerEp, std::move(chain), behavior,
               eco.compression_dictionary(), 1};
    client cli{sim, kClientEp, kServerEp, std::move(config), 2};
    cli.start();
    sim.run();
    return cli.result();
  }
};

TEST(Handshake, CompliantSmallChainCompletesIn1Rtt) {
  handshake_fixture fx;
  const auto obs = fx.run("cloudflare", server_behavior::compliant(),
                          client_config{.initial_size = 1362});
  EXPECT_TRUE(obs.handshake_complete);
  EXPECT_FALSE(obs.retry_seen);
  EXPECT_EQ(obs.acks_before_complete, 0u);
  // Compliant server: never exceed 3x before validation.
  EXPECT_LE(obs.bytes_received_first_burst, 3 * obs.bytes_sent_first_flight);
}

TEST(Handshake, LargeChainForcesMultiRtt) {
  handshake_fixture fx;
  const auto obs = fx.run("le-r3-x1cross",
                          server_behavior::standard_no_coalesce(),
                          client_config{.initial_size = 1362});
  EXPECT_TRUE(obs.handshake_complete);
  EXPECT_GE(obs.acks_before_complete, 1u);
  EXPECT_LE(obs.bytes_received_first_burst, 3 * obs.bytes_sent_first_flight);
}

TEST(Handshake, CloudflareProfileAmplifiesButCompletes1Rtt) {
  handshake_fixture fx;
  const auto obs = fx.run("cloudflare", server_behavior::cloudflare(),
                          client_config{.initial_size = 1362});
  EXPECT_TRUE(obs.handshake_complete);
  EXPECT_EQ(obs.acks_before_complete, 0u);  // completed within 1 RTT
  // ... yet the first burst exceeds the anti-amplification limit (§4.1).
  EXPECT_GT(obs.bytes_received_first_burst, 3 * obs.bytes_sent_first_flight);
  // The overshoot stays small (Fig. 4: factors below ~6x).
  EXPECT_LT(obs.first_burst_amplification(), 6.0);
  // Superfluous padding is substantial (§4.1: ~2.4 kB constant).
  EXPECT_GT(obs.padding_bytes_first_burst, 1800u);
}

TEST(Handshake, CloudflarePaddingIsConstantAcrossDomains) {
  // §4.1: "exactly 2462 superfluous QUIC padding bytes" regardless of
  // the (varying) TLS payload size.
  std::vector<std::size_t> paddings;
  for (int i = 0; i < 5; ++i) {
    handshake_fixture fx;
    const auto obs = fx.run("cloudflare", server_behavior::cloudflare(),
                            client_config{.initial_size = 1362},
                            "domain" + std::to_string(i) + ".example");
    paddings.push_back(obs.padding_bytes_first_burst);
  }
  for (const auto p : paddings) {
    EXPECT_EQ(p, 2462u);  // the constant the paper reports
  }
}

TEST(Handshake, RetryServerTriggersRetryAndCompletes) {
  handshake_fixture fx;
  const auto obs = fx.run("cloudflare", server_behavior::retry_always(),
                          client_config{.initial_size = 1362});
  EXPECT_TRUE(obs.retry_seen);
  EXPECT_TRUE(obs.handshake_complete);
  EXPECT_GE(obs.client_datagrams, 2u);
}

TEST(Handshake, CompressionNegotiatedWhenOffered) {
  handshake_fixture fx;
  client_config config;
  config.initial_size = 1250;  // Chromium default
  config.offer_compression = {compress::algorithm::brotli};
  const auto obs = fx.run("le-r3-x1cross", server_behavior::cloudflare(),
                          std::move(config));
  EXPECT_TRUE(obs.handshake_complete);
  EXPECT_TRUE(obs.compression_used);
  EXPECT_LT(obs.certificate_msg_size, obs.certificate_uncompressed_size / 2);
}

TEST(Handshake, CompressionAbsentWithoutOffer) {
  handshake_fixture fx;
  const auto obs = fx.run("le-r3-x1cross", server_behavior::cloudflare(),
                          client_config{.initial_size = 1362});
  EXPECT_FALSE(obs.compression_used);
}

TEST(Handshake, SilentClientElicitsRetransmissions) {
  handshake_fixture fx;
  client_config config;
  config.initial_size = 1252;
  config.send_acks = false;
  config.timeout = net::seconds(300);
  const auto obs = fx.run("le-r3-x1cross",
                          server_behavior::meta_pre_disclosure(7),
                          std::move(config));
  // mvfst behaviour: resends ignore the limit; amplification blows up.
  EXPECT_GT(obs.total_amplification(), 10.0);
  EXPECT_GE(obs.server_datagrams, 8u);  // initial flight + 7 resends
}

TEST(Handshake, CompliantServerNeverExceeds3xEvenWhenSilent) {
  handshake_fixture fx;
  client_config config;
  config.initial_size = 1252;
  config.send_acks = false;
  config.timeout = net::seconds(300);
  const auto obs = fx.run("le-r3-x1cross", server_behavior::compliant(),
                          std::move(config));
  EXPECT_LE(obs.bytes_received_total, 3 * obs.bytes_sent_first_flight);
}

TEST(Handshake, UndersizedInitialIsDropped) {
  handshake_fixture fx;
  const auto obs = fx.run("cloudflare", server_behavior::compliant(),
                          client_config{.initial_size = 900,
                                        .timeout = net::seconds(1)});
  EXPECT_FALSE(obs.response_received);
  EXPECT_TRUE(obs.timed_out);
}

TEST(Handshake, AppDataExchangeMeasuresTtfb) {
  handshake_fixture fx;
  client_config config;
  config.initial_size = 1362;
  config.fetch_app_data = true;
  const auto obs = fx.run("cloudflare", server_behavior::compliant(),
                          std::move(config));
  ASSERT_TRUE(obs.handshake_complete);
  EXPECT_EQ(obs.app_bytes_received, 256u);
  // 1-RTT timeline: the request coalesces with the Finished flight,
  // which leaves ack_delay (1 ms) after the server burst arrives; the
  // response lands one RTT (20 ms) later.
  EXPECT_EQ(obs.first_app_byte_time,
            obs.complete_time + net::milliseconds(1) + net::milliseconds(20));
}

TEST(Handshake, NoAppDataWithoutFetchFlag) {
  handshake_fixture fx;
  const auto obs = fx.run("cloudflare", server_behavior::compliant(),
                          client_config{.initial_size = 1362});
  EXPECT_TRUE(obs.handshake_complete);
  EXPECT_EQ(obs.app_bytes_received, 0u);
  EXPECT_EQ(obs.first_app_byte_time, 0u);
}

TEST(Handshake, PtoRetransmissionTimingUnderLoss) {
  // The server's first flight is lost; the PTO retransmission restores
  // the handshake on an exact deterministic timeline: client Initial
  // arrives at 10 ms, the first flight (sent at 10 ms) is dropped, the
  // 400 ms PTO fires at 410 ms and the retransmitted flight lands at
  // 420 ms. The google profile retransmits outside the amplification
  // limit — a compliant server has no budget left for the resend and
  // must wait for the client to retry instead.
  handshake_fixture fx;
  net::path_config to_client;
  to_client.loss_rate = 1.0;
  fx.sim.set_path_to(kClientEp, to_client);
  fx.sim.schedule(net::milliseconds(100), [&fx]() {
    fx.sim.set_path_to(kClientEp, net::path_config{});  // loss ends
  });
  const auto obs = fx.run("cloudflare", server_behavior::google(),
                          client_config{.initial_size = 1362});
  ASSERT_TRUE(obs.handshake_complete);
  EXPECT_EQ(obs.first_receive_time, net::milliseconds(420));
}

TEST(Handshake, ServerPacingSpreadsBurstWithoutChangingBytes) {
  handshake_fixture fx_burst;
  const auto burst = fx_burst.run("le-r3-x1cross",
                                  server_behavior::standard_no_coalesce(),
                                  client_config{.initial_size = 1362});

  handshake_fixture fx_paced;
  server_behavior paced = server_behavior::standard_no_coalesce();
  paced.pacing_bps = 2'000'000;  // ~5 ms per full datagram
  const auto spread = fx_paced.run("le-r3-x1cross", paced,
                                   client_config{.initial_size = 1362});

  ASSERT_TRUE(burst.handshake_complete);
  ASSERT_TRUE(spread.handshake_complete);
  // Pacing only re-times the same bytes.
  EXPECT_EQ(spread.bytes_received_total, burst.bytes_received_total);
  EXPECT_EQ(spread.tls_bytes_received, burst.tls_bytes_received);
  // The multi-datagram burst arrives spread out, delaying completion.
  EXPECT_GT(spread.complete_time, burst.complete_time);
  EXPECT_GT(spread.last_receive_time - spread.first_receive_time,
            burst.last_receive_time - burst.first_receive_time);
}

TEST(Handshake, BudgetBlockedFlightsAreTimed) {
  // A chain larger than 3x the client Initial forces the compliant
  // server to park its flight on the amplification budget until the
  // client's ACK validates the path; the stats record both the event
  // and the blocked duration (at least the client-side ack_delay, at
  // most the round trip that releases it).
  net::simulator sim;
  ca::ecosystem eco = ca::ecosystem::make();
  rng issue_rng{99};
  auto chain = eco.issue(eco.profile("le-r3-x1cross"), "x.org", issue_rng);
  server srv{sim,   kServerEp, std::move(chain),
             server_behavior::compliant(), eco.compression_dictionary(), 1};
  client cli{sim, kClientEp, kServerEp,
             client_config{.initial_size = 1362}, 2};
  cli.start();
  sim.run();
  ASSERT_TRUE(cli.result().handshake_complete);
  EXPECT_GE(srv.stats().budget_blocked_flights, 1u);
  EXPECT_GE(srv.stats().budget_blocked_us,
            static_cast<std::uint64_t>(net::milliseconds(1)));
  EXPECT_LE(srv.stats().budget_blocked_us,
            static_cast<std::uint64_t>(net::milliseconds(21)));
}

// Property: an RFC-9000-compliant server never exceeds the 3x limit
// before validation, across Initial sizes, chains and coalescing modes.
struct ComplianceCase {
  const char* profile;
  std::size_t initial_size;
  bool coalesce;
  bool acks;
};

class AmplificationInvariant
    : public ::testing::TestWithParam<ComplianceCase> {};

TEST_P(AmplificationInvariant, Holds) {
  const auto& param = GetParam();
  handshake_fixture fx;
  server_behavior behavior = param.coalesce
                                 ? server_behavior::compliant()
                                 : server_behavior::standard_no_coalesce();
  client_config config;
  config.initial_size = param.initial_size;
  config.send_acks = param.acks;
  config.timeout = net::seconds(120);
  const auto obs = fx.run(param.profile, behavior, std::move(config));
  ASSERT_TRUE(obs.response_received);
  EXPECT_LE(obs.bytes_received_first_burst, 3 * obs.bytes_sent_first_flight);
  if (!param.acks) {
    EXPECT_LE(obs.bytes_received_total, 3 * obs.bytes_sent_first_flight);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AmplificationInvariant,
    ::testing::Values(
        ComplianceCase{"cloudflare", 1200, true, true},
        ComplianceCase{"cloudflare", 1472, false, true},
        ComplianceCase{"le-r3-x1cross", 1200, true, true},
        ComplianceCase{"le-r3-x1cross", 1200, false, false},
        ComplianceCase{"le-r3-x1cross", 1362, true, false},
        ComplianceCase{"le-r3-x1cross", 1472, false, true},
        ComplianceCase{"sectigo", 1250, true, true},
        ComplianceCase{"sectigo", 1362, false, false},
        ComplianceCase{"cpanel", 1302, true, true},
        ComplianceCase{"gts-1c3", 1362, false, true}));

TEST(Packet, VersionNegotiationRoundTrip) {
  const packet vn = make_version_negotiation(
      bytes{1, 2}, bytes{3, 4, 5}, {kVersion1, 0x6b3343cfu});
  EXPECT_TRUE(vn.is_version_negotiation());
  const bytes wire = encode_datagram({vn});
  EXPECT_EQ(wire.size(), vn.wire_size());
  const auto parsed = parse_datagram(wire);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_TRUE(parsed[0].is_version_negotiation());
  ASSERT_EQ(parsed[0].supported_versions.size(), 2u);
  EXPECT_EQ(parsed[0].supported_versions[0], kVersion1);
  EXPECT_EQ(parsed[0].dcid, (bytes{1, 2}));
}

TEST(Handshake, VersionMismatchNegotiatesAndCompletes) {
  handshake_fixture fx;
  server_behavior behavior = server_behavior::compliant();
  behavior.supported_version = 0x6b3343cfu;  // QUIC v2 code point
  client_config config;
  config.initial_size = 1362;  // client offers v1
  const auto obs = fx.run("cloudflare", behavior, std::move(config));
  EXPECT_TRUE(obs.version_negotiation_seen);
  EXPECT_TRUE(obs.handshake_complete);
  EXPECT_GE(obs.client_datagrams, 2u);  // original + renegotiated Initial
}

TEST(Handshake, MatchingVersionSkipsNegotiation) {
  handshake_fixture fx;
  const auto obs = fx.run("cloudflare", server_behavior::compliant(),
                          client_config{.initial_size = 1362});
  EXPECT_FALSE(obs.version_negotiation_seen);
}

TEST(Handshake, SilentClientIgnoresVersionNegotiation) {
  handshake_fixture fx;
  server_behavior behavior = server_behavior::compliant();
  behavior.supported_version = 0x6b3343cfu;
  client_config config;
  config.initial_size = 1362;
  config.send_acks = false;
  config.timeout = net::seconds(2);
  const auto obs = fx.run("cloudflare", behavior, std::move(config));
  EXPECT_FALSE(obs.version_negotiation_seen);
  EXPECT_FALSE(obs.handshake_complete);
  // A VN reply is tiny: no amplification value for attackers.
  EXPECT_LT(obs.bytes_received_total, 100u);
}

// Fuzz property: arbitrary bytes never crash the datagram parser —
// they either parse or raise codec_error.
class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, RandomBytesAreSafe) {
  rng r{GetParam()};
  for (int round = 0; round < 400; ++round) {
    bytes noise(static_cast<std::size_t>(r.uniform(0, 1600)));
    r.fill(noise);
    try {
      const auto packets = parse_datagram(noise);
      for (const auto& p : packets) {
        (void)p.wire_size();
      }
    } catch (const codec_error&) {
      // expected for malformed input
    }
  }
}

TEST_P(ParserFuzz, TruncatedValidDatagramsAreSafe) {
  rng r{GetParam() ^ 0xfeed};
  packet init;
  init.type = packet_type::initial;
  init.dcid.resize(8);
  r.fill(init.dcid);
  bytes crypto(600);
  r.fill(crypto);
  init.frames.push_back(crypto_frame{0, crypto});
  std::vector<packet> dgram{init};
  (void)pad_datagram_to(dgram, 1200);
  const bytes wire = encode_datagram(dgram);
  for (std::size_t cut = 0; cut < wire.size(); cut += 7) {
    const bytes_view truncated{wire.data(), cut};
    try {
      (void)parse_datagram(truncated);
    } catch (const codec_error&) {
    }
  }
}

TEST_P(ParserFuzz, BitFlippedDatagramsAreSafe) {
  rng r{GetParam() ^ 0xf11b};
  packet init;
  init.type = packet_type::initial;
  init.dcid.resize(8);
  r.fill(init.dcid);
  bytes crypto(300);
  r.fill(crypto);
  init.frames.push_back(crypto_frame{0, crypto});
  bytes wire = encode_datagram({init});
  for (int round = 0; round < 300; ++round) {
    bytes mutated = wire;
    const auto pos = r.uniform(0, mutated.size() - 1);
    mutated[pos] ^= static_cast<std::uint8_t>(1u << r.uniform(0, 7));
    try {
      (void)parse_datagram(mutated);
    } catch (const codec_error&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

// Property: the historical draft policies order total attacker-visible
// bytes as expected (Table 3 ablation).
TEST(Handshake, DraftPolicyOrdering) {
  auto run_policy = [](amplification_policy policy) {
    handshake_fixture fx;
    server_behavior behavior = server_behavior::compliant();
    behavior.policy = policy;
    behavior.max_retransmissions = 0;
    client_config config;
    config.initial_size = 1200;
    config.send_acks = false;
    config.timeout = net::seconds(30);
    const auto obs = fx.run("le-r3-x1cross", behavior, std::move(config));
    return obs.bytes_received_total;
  };
  const auto unlimited = run_policy(amplification_policy::unlimited);
  const auto three_datagrams =
      run_policy(amplification_policy::max_three_datagrams);
  const auto three_x = run_policy(amplification_policy::three_x_bytes);
  EXPECT_GE(unlimited, three_datagrams);
  EXPECT_GE(unlimited, three_x);
  EXPECT_GT(unlimited, 4000u);  // full flight flows pre-Draft-09
  EXPECT_LE(three_x, 3 * 1200u);
}

}  // namespace
}  // namespace certquic::quic
