// Tier-1 suite for the architecture analyzer (tools/analyze_core.*).
//
// Three halves:
//   1. Token-scanner unit tests — comments, string/char/raw-string
//      literals and digit separators are blanked exactly as promised;
//      preprocessor directives are only seen outside comments.
//   2. Fixture trees — tests/analyze_fixtures/{clean,upward,cycle,
//      hygiene,drift} each pin an EXACT finding set (zero findings,
//      one upward edge, one cycle, three hygiene violations, two
//      drift directions).
//   3. Real tree — src/ must analyze clean against tools/layers.txt
//      and tools/lint_waivers.txt (the same gate verify.sh runs), the
//      spec's module set must match the src/ module directories in
//      both directions, the emitted depgraph must agree with both,
//      and tools/ itself must pass the nondet-source self-scan.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "analyze_core.hpp"
#include "lint_core.hpp"

namespace certquic::analyze {
namespace {

const std::string kFixtureRoot = CERTQUIC_ANALYZE_FIXTURE_DIR;
const std::string kSrcRoot = CERTQUIC_LINT_SRC_DIR;
const std::string kWaiverFile = CERTQUIC_LINT_WAIVER_FILE;
const std::string kLayersFile = CERTQUIC_LAYERS_FILE;
const std::string kToolsDir = CERTQUIC_TOOLS_DIR;

std::vector<std::tuple<std::string, std::size_t, std::string>> keys(
    const std::vector<lint::finding>& findings) {
  std::vector<std::tuple<std::string, std::size_t, std::string>> out;
  out.reserve(findings.size());
  for (const lint::finding& f : findings) {
    out.emplace_back(f.path, f.line, f.rule);
  }
  return out;
}

analysis_result analyze_fixture(const std::string& tree) {
  const std::string root = kFixtureRoot + "/" + tree + "/src";
  const layer_spec spec =
      load_layer_spec(kFixtureRoot + "/" + tree + "/layers.txt");
  return analyze_tree(lint::collect_sources(root), root, spec, {});
}

// ---------------------------------------------------------- scanner

TEST(Scanner, LineCommentsAreBlanked) {
  const scanned_file s = scan_source("int a; // std::rand() here\nint b;\n");
  ASSERT_EQ(s.code_lines.size(), 2u);
  EXPECT_EQ(s.code_lines[0].find("rand"), std::string::npos);
  EXPECT_NE(s.code_lines[0].find("int a;"), std::string::npos);
  EXPECT_EQ(s.raw_lines[0], "int a; // std::rand() here");
}

TEST(Scanner, BlockCommentsSpanLines) {
  const scanned_file s =
      scan_source("/* system_clock\n   random_device */ int c;\n");
  EXPECT_EQ(s.code_lines[0].find("system_clock"), std::string::npos);
  EXPECT_EQ(s.code_lines[1].find("random_device"), std::string::npos);
  EXPECT_NE(s.code_lines[1].find("int c;"), std::string::npos);
}

TEST(Scanner, StringBodiesAreBlankedButTheLineSurvives) {
  // The `//` inside the URL must not swallow the code after it.
  const scanned_file s =
      scan_source("auto u = \"http://x.example\"; total += 1;\n");
  EXPECT_EQ(s.code_lines[0].find("http"), std::string::npos);
  EXPECT_NE(s.code_lines[0].find("total += 1;"), std::string::npos);
}

TEST(Scanner, RawStringsAreBlanked) {
  const scanned_file s =
      scan_source("auto r = R\"(srand(1) gettimeofday)\"; int after;\n");
  EXPECT_EQ(s.code_lines[0].find("srand"), std::string::npos);
  EXPECT_EQ(s.code_lines[0].find("gettimeofday"), std::string::npos);
  EXPECT_NE(s.code_lines[0].find("int after;"), std::string::npos);
}

TEST(Scanner, DigitSeparatorsAreNotCharLiterals) {
  const scanned_file s =
      scan_source("auto v = 0x90C5'0D5A; clock_gettime_marker();\n");
  EXPECT_NE(s.code_lines[0].find("clock_gettime_marker"),
            std::string::npos);
}

TEST(Scanner, EscapedQuotesStayInsideTheLiteral) {
  const scanned_file s =
      scan_source("auto q = \"say \\\"hi\\\" now\"; int live;\n");
  EXPECT_EQ(s.code_lines[0].find("hi"), std::string::npos);
  EXPECT_NE(s.code_lines[0].find("int live;"), std::string::npos);
}

TEST(Scanner, IncludesAndPragmaAreTracked) {
  const scanned_file s = scan_source(
      "#pragma once\n"
      "#include \"mod/a.hpp\"\n"
      "#include <vector>\n"
      "/* #include \"mod/ghost.hpp\" */\n");
  EXPECT_TRUE(s.has_pragma_once);
  ASSERT_EQ(s.includes.size(), 2u);
  EXPECT_EQ(s.includes[0].line, 2u);
  EXPECT_EQ(s.includes[0].target, "mod/a.hpp");
  EXPECT_FALSE(s.includes[0].angled);
  EXPECT_EQ(s.includes[1].target, "vector");
  EXPECT_TRUE(s.includes[1].angled);
}

// --------------------------------------------------------- fixtures

TEST(AnalyzeFixtures, CleanTreeHasZeroFindings) {
  const analysis_result r = analyze_fixture("clean");
  EXPECT_TRUE(r.findings.empty()) << keys(r.findings).size();
  // The include graph is exactly mid->base, top->mid.
  ASSERT_EQ(r.graph.edges.size(), 2u);
  EXPECT_EQ(r.graph.edges.count({"mid", "base"}), 1u);
  EXPECT_EQ(r.graph.edges.count({"top", "mid"}), 1u);
}

TEST(AnalyzeFixtures, UpwardEdgeIsExactlyOneFinding) {
  const analysis_result r = analyze_fixture("upward");
  EXPECT_EQ(keys(r.findings),
            (std::vector<std::tuple<std::string, std::size_t, std::string>>{
                {"base/low.hpp", 3, "layer-upward"},
            }));
}

TEST(AnalyzeFixtures, CycleIsExactlyOneFinding) {
  // alpha and beta share a layer (same-layer includes are legal), so
  // the only finding is the cycle, anchored at the edge leaving the
  // lexicographically smallest member.
  const analysis_result r = analyze_fixture("cycle");
  EXPECT_EQ(keys(r.findings),
            (std::vector<std::tuple<std::string, std::size_t, std::string>>{
                {"alpha/a.hpp", 3, "layer-cycle"},
            }));
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_NE(r.findings[0].message.find("alpha -> beta -> alpha"),
            std::string::npos);
}

TEST(AnalyzeFixtures, HygieneViolationsAreExact) {
  const analysis_result r = analyze_fixture("hygiene");
  EXPECT_EQ(keys(r.findings),
            (std::vector<std::tuple<std::string, std::size_t, std::string>>{
                {"mod/dead.cpp", 1, "unused-include"},
                {"mod/late.cpp", 1, "self-contained"},
                {"mod/nopragma.hpp", 1, "pragma-once"},
            }));
}

TEST(AnalyzeFixtures, DriftIsReportedInBothDirections) {
  const analysis_result r = analyze_fixture("drift");
  ASSERT_EQ(r.findings.size(), 2u);
  // Spec side: 'ghost' is named on line 5 of the spec but absent from
  // disk; the finding anchors in the spec file itself.
  const auto spec_side = std::find_if(
      r.findings.begin(), r.findings.end(), [](const lint::finding& f) {
        return f.message.find("'ghost'") != std::string::npos;
      });
  ASSERT_NE(spec_side, r.findings.end());
  EXPECT_EQ(spec_side->rule, "layer-drift");
  EXPECT_EQ(spec_side->line, 5u);
  EXPECT_NE(spec_side->path.find("layers.txt"), std::string::npos);
  // Tree side: 'rogue' exists on disk but the spec does not place it.
  const auto tree_side = std::find_if(
      r.findings.begin(), r.findings.end(), [](const lint::finding& f) {
        return f.message.find("'rogue'") != std::string::npos;
      });
  ASSERT_NE(tree_side, r.findings.end());
  EXPECT_EQ(tree_side->rule, "layer-drift");
  EXPECT_EQ(tree_side->path, "rogue");
}

TEST(AnalyzeFixtures, BadSpecsThrow) {
  EXPECT_THROW((void)load_layer_spec(kFixtureRoot + "/no-such-file.txt"),
               std::exception);
}

// -------------------------------------------------------- real tree

TEST(AnalyzeRealTree, SrcIsCleanAgainstCheckedInSpecAndWaivers) {
  const layer_spec spec = load_layer_spec(kLayersFile);
  const analysis_result r =
      analyze_tree(lint::collect_sources(kSrcRoot), kSrcRoot, spec, {});
  const lint::report rep = lint::apply_waivers(
      r.findings, lint::load_waivers(kWaiverFile), lint::all_rules());
  for (const lint::finding& f : rep.findings) {
    ADD_FAILURE() << f.path << ":" << f.line << ": [" << f.rule << "] "
                  << f.message << "\n    " << f.source_line;
  }
  for (const lint::waiver& w : rep.unused_waivers) {
    ADD_FAILURE() << "stale waiver (line " << w.file_line
                  << " of lint_waivers.txt): " << w.rule << "|" << w.path
                  << "|" << w.substring;
  }
  EXPECT_TRUE(rep.clean());
}

TEST(AnalyzeRealTree, LayerSpecMatchesSrcModulesBothWays) {
  // Adding a src/<module>/ without placing it in tools/layers.txt (or
  // vice versa) fails tier-1 here — the spec cannot drift from disk.
  const layer_spec spec = load_layer_spec(kLayersFile);
  std::set<std::string> spec_modules;
  for (const auto& [module, layer] : spec.layer_of) {
    spec_modules.insert(module);
  }
  std::set<std::string> disk_modules;
  for (const auto& dir : std::filesystem::directory_iterator(kSrcRoot)) {
    if (dir.is_directory()) {
      disk_modules.insert(dir.path().filename().string());
    }
  }
  EXPECT_EQ(spec_modules, disk_modules);
}

TEST(AnalyzeRealTree, DepgraphAgreesWithSpecAndDisk) {
  const layer_spec spec = load_layer_spec(kLayersFile);
  const analysis_result r =
      analyze_tree(lint::collect_sources(kSrcRoot), kSrcRoot, spec, {});
  std::set<std::string> spec_modules;
  for (const auto& [module, layer] : spec.layer_of) {
    spec_modules.insert(module);
  }
  EXPECT_EQ(r.graph.modules, spec_modules);
  // The emitted JSON names every module exactly once.
  const std::string json = depgraph_json(r.graph, spec, "src");
  for (const std::string& module : spec_modules) {
    EXPECT_NE(json.find("\"name\": \"" + module + "\""), std::string::npos)
        << module;
  }
  // Every edge in the graph points strictly downward or same-layer
  // (anything else would have been a finding above).
  for (const auto& [edge, sites] : r.graph.edges) {
    EXPECT_GE(spec.layer_of.at(edge.first), spec.layer_of.at(edge.second))
        << edge.first << " -> " << edge.second;
  }
}

TEST(AnalyzeRealTree, ToolsPassTheNondetSelfScan) {
  // The analyzer obeys its own no-wall-clock rule, with zero waivers.
  const auto files = lint::collect_sources(kToolsDir);
  ASSERT_GE(files.size(), 5u);
  for (const std::string& file : files) {
    std::ifstream in{file, std::ios::binary};
    ASSERT_TRUE(in) << file;
    const std::string content{std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>()};
    const std::string relative =
        "tools/" +
        std::filesystem::relative(file, kToolsDir).generic_string();
    for (const lint::finding& f : lint::lint_nondet_only(relative, content)) {
      ADD_FAILURE() << f.path << ":" << f.line << ": [" << f.rule << "] "
                    << f.source_line;
    }
  }
}

}  // namespace
}  // namespace certquic::analyze
