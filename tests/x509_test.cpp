// Unit and property tests for the X.509 certificate model.
#include <gtest/gtest.h>

#include "asn1/der.hpp"
#include "util/rng.hpp"
#include "x509/certificate.hpp"
#include "x509/chain.hpp"
#include "x509/oids.hpp"

namespace certquic::x509 {
namespace {

certificate make_leaf(rng& r, key_algorithm key = key_algorithm::ecdsa_p256,
                      signature_algorithm sig =
                          signature_algorithm::sha256_rsa_2048,
                      std::vector<std::string> sans = {"example.org",
                                                       "www.example.org"}) {
  certificate_spec spec;
  spec.issuer = distinguished_name::org("US", "Example CA", "Example CA R1");
  spec.subject = distinguished_name::cn("example.org");
  spec.key_alg = key;
  spec.sig_alg = sig;
  spec.extensions = {
      make_basic_constraints(false),
      make_key_usage(0x80),
      make_ext_key_usage(),
      make_subject_key_id(r),
      make_authority_key_id(bytes(20, 0xab)),
      make_subject_alt_name(sans),
      make_certificate_policies(false, "http://cps.example.com"),
      make_authority_info_access("http://ocsp.example.com",
                                 "http://ca.example.com/r1.crt"),
      make_crl_distribution_points("http://crl.example.com/r1.crl"),
      make_sct_list(2, r),
  };
  return certificate{std::move(spec), r};
}

certificate make_ca(rng& r, const std::string& cn,
                    key_algorithm key = key_algorithm::rsa_2048,
                    bool self_signed = false) {
  certificate_spec spec;
  spec.issuer = distinguished_name::org(
      "US", "Example Trust", self_signed ? cn : "Example Root");
  spec.subject = distinguished_name::org("US", "Example Trust", cn);
  spec.key_alg = key;
  spec.sig_alg = signature_algorithm::sha256_rsa_4096;
  spec.extensions = {
      make_basic_constraints(true, 0),
      make_key_usage(0x06),
      make_subject_key_id(r),
  };
  return certificate{std::move(spec), r};
}

TEST(DistinguishedName, EncodeAndRender) {
  const auto dn = distinguished_name::org("US", "Let's Encrypt", "R3");
  EXPECT_EQ(dn.to_string(), "C=US, O=Let's Encrypt, CN=R3");
  EXPECT_EQ(dn.common_name(), "R3");
  const bytes der = dn.encode();
  EXPECT_EQ(der[0], 0x30);
  // C(13) + O(~24) + CN(~9) + header: spot-check a plausible size window.
  EXPECT_GT(der.size(), 30u);
  EXPECT_LT(der.size(), 70u);
}

TEST(DistinguishedName, EqualityIsStructural) {
  const auto a = distinguished_name::cn("x");
  const auto b = distinguished_name::cn("x");
  const auto c = distinguished_name::cn("y");
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(Key, SpkiSizesMatchRealWorld) {
  rng r{1};
  // Real-world DER sizes: RSA-2048 SPKI = 294 B, RSA-4096 = 550 B,
  // P-256 = 91 B, P-384 = 120 B.
  EXPECT_EQ(encode_spki(key_algorithm::rsa_2048, r).size(), 294u);
  EXPECT_EQ(encode_spki(key_algorithm::rsa_4096, r).size(), 550u);
  EXPECT_EQ(encode_spki(key_algorithm::ecdsa_p256, r).size(), 91u);
  EXPECT_EQ(encode_spki(key_algorithm::ecdsa_p384, r).size(), 120u);
}

TEST(Key, SignatureSizesMatchRealWorld) {
  rng r{2};
  EXPECT_EQ(encode_signature_value(signature_algorithm::sha256_rsa_2048, r)
                .size(),
            261u);  // 256 + BIT STRING framing
  EXPECT_EQ(encode_signature_value(signature_algorithm::sha256_rsa_4096, r)
                .size(),
            517u);
  // ECDSA signatures jitter by the r/s sign octets: P-256 in [70, 74],
  // P-384 in [102, 106] including framing.
  for (int i = 0; i < 50; ++i) {
    const auto p256 =
        encode_signature_value(signature_algorithm::ecdsa_sha256, r).size();
    EXPECT_GE(p256, 70u);
    EXPECT_LE(p256, 77u);
    const auto p384 =
        encode_signature_value(signature_algorithm::ecdsa_sha384, r).size();
    EXPECT_GE(p384, 102u);
    EXPECT_LE(p384, 109u);
  }
}

TEST(Key, SignatureByIssuerKey) {
  EXPECT_EQ(signature_by(key_algorithm::rsa_2048),
            signature_algorithm::sha256_rsa_2048);
  EXPECT_EQ(signature_by(key_algorithm::ecdsa_p384),
            signature_algorithm::ecdsa_sha384);
}

TEST(Extensions, SubjectAltNameRoundTrip) {
  const std::vector<std::string> names = {"a.example", "*.b.example",
                                          "c.example"};
  const extension ext = make_subject_alt_name(names);
  EXPECT_EQ(parse_subject_alt_name(ext), names);
}

TEST(Extensions, SanSizeGrowsWithNames) {
  std::vector<std::string> names;
  const extension empty_ish = make_subject_alt_name({"x.example"});
  for (int i = 0; i < 50; ++i) {
    names.push_back("host" + std::to_string(i) + ".example.com");
  }
  const extension big = make_subject_alt_name(names);
  EXPECT_GT(big.encoded_size(), empty_ish.encoded_size() + 45 * 20);
}

TEST(Extensions, BasicConstraintsDistinguishesCa) {
  const extension ca = make_basic_constraints(true, 0);
  const extension leaf = make_basic_constraints(false);
  EXPECT_GT(ca.value.size(), leaf.value.size());
  EXPECT_TRUE(ca.critical);
}

TEST(Extensions, SctListSizeScalesWithCount) {
  rng r{3};
  const auto two = make_sct_list(2, r).encoded_size();
  const auto three = make_sct_list(3, r).encoded_size();
  // 119-byte SCT + 2-byte length prefix, plus up to two DER length-form
  // promotions (OCTET STRING and Extension SEQUENCE crossing 255 bytes).
  EXPECT_GE(three - two, 121u);
  EXPECT_LE(three - two, 123u);
}

TEST(Certificate, EncodesRealisticLeafSize) {
  rng r{4};
  const certificate leaf = make_leaf(r);
  // A DV ECDSA leaf with 2 SANs and 2 SCTs is ~1.0-1.3 kB in the wild.
  EXPECT_GT(leaf.size(), 900u);
  EXPECT_LT(leaf.size(), 1400u);
  EXPECT_FALSE(leaf.is_ca());
  EXPECT_FALSE(leaf.self_signed());
}

TEST(Certificate, FieldSizesSumToTotal) {
  rng r{5};
  const certificate leaf = make_leaf(r);
  const field_sizes& s = leaf.sizes();
  EXPECT_EQ(s.total, leaf.der().size());
  EXPECT_GT(s.other(), 0u);
  EXPECT_EQ(s.subject + s.issuer + s.public_key_info + s.extensions +
                s.signature + s.other(),
            s.total);
}

TEST(Certificate, DerParsesAsThreeElementSequence) {
  rng r{6};
  const certificate leaf = make_leaf(r);
  buffer_reader reader{leaf.der()};
  const asn1::tlv outer = asn1::read_tlv(reader);
  EXPECT_TRUE(outer.is(asn1::tag::sequence));
  EXPECT_TRUE(reader.empty());
  const auto kids = asn1::children(outer);
  ASSERT_EQ(kids.size(), 3u);          // tbs, sigAlg, signature
  EXPECT_TRUE(kids[0].is(asn1::tag::sequence));
  EXPECT_TRUE(kids[1].is(asn1::tag::sequence));
  EXPECT_TRUE(kids[2].is(asn1::tag::bit_string));
}

TEST(Certificate, RsaLeafLargerThanEcdsaLeaf) {
  rng r{7};
  const certificate ec = make_leaf(r, key_algorithm::ecdsa_p256);
  const certificate rsa = make_leaf(r, key_algorithm::rsa_2048,
                                    signature_algorithm::sha256_rsa_2048);
  EXPECT_GT(rsa.size(), ec.size() + 150);
}

TEST(Certificate, SanBytesTracked) {
  rng r{8};
  const certificate leaf = make_leaf(r);
  EXPECT_GT(leaf.san_bytes(), 0u);
  EXPECT_LT(leaf.san_bytes(), leaf.size());
  EXPECT_EQ(leaf.subject_alt_names().size(), 2u);
}

TEST(Certificate, CaAndSelfSignedDetection) {
  rng r{9};
  const certificate ca = make_ca(r, "Example Root", key_algorithm::rsa_4096,
                                 /*self_signed=*/false);
  EXPECT_TRUE(ca.is_ca());
  certificate_spec root_spec;
  root_spec.issuer = distinguished_name::org("US", "T", "Root X");
  root_spec.subject = distinguished_name::org("US", "T", "Root X");
  root_spec.extensions = {make_basic_constraints(true)};
  const certificate root{std::move(root_spec), r};
  EXPECT_TRUE(root.self_signed());
}

TEST(Certificate, SerialIsPositiveAnd16Bytes) {
  rng r{10};
  for (int i = 0; i < 20; ++i) {
    const certificate leaf = make_leaf(r);
    EXPECT_EQ(leaf.serial().size(), 16u);
    EXPECT_EQ(leaf.serial()[0] & 0x80, 0);
  }
}

TEST(Chain, SizesAndDepth) {
  rng r{11};
  auto inter = std::make_shared<const certificate>(make_ca(r, "CA 1"));
  auto root = std::make_shared<const certificate>(
      make_ca(r, "Root", key_algorithm::rsa_4096));
  const certificate leaf = make_leaf(r);
  const std::size_t leaf_size = leaf.size();
  const chain c{leaf, {inter, root}};
  EXPECT_EQ(c.depth(), 3u);
  EXPECT_EQ(c.wire_size(), leaf_size + inter->size() + root->size());
  EXPECT_EQ(c.parent_wire_size(), inter->size() + root->size());
  EXPECT_EQ(c.concatenated_der().size(), c.wire_size());
}

TEST(Chain, EmptyChainBehaviour) {
  const chain c;
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.wire_size(), 0u);
  EXPECT_THROW((void)c.leaf(), config_error);
}

TEST(Chain, DetectsTrustAnchorInclusion) {
  rng r{12};
  certificate_spec root_spec;
  root_spec.issuer = distinguished_name::org("US", "T", "Root X");
  root_spec.subject = distinguished_name::org("US", "T", "Root X");
  root_spec.extensions = {make_basic_constraints(true)};
  auto root = std::make_shared<const certificate>(
      certificate{std::move(root_spec), r});
  auto inter = std::make_shared<const certificate>(make_ca(r, "CA 2"));

  const chain with_anchor{make_leaf(r), {inter, root}};
  EXPECT_TRUE(with_anchor.includes_trust_anchor());
  const chain without{make_leaf(r), {inter}};
  EXPECT_FALSE(without.includes_trust_anchor());
}

TEST(Chain, SharedParentsReuseBytes) {
  rng r{13};
  auto inter = std::make_shared<const certificate>(make_ca(r, "Shared CA"));
  const chain a{make_leaf(r), {inter}};
  const chain b{make_leaf(r), {inter}};
  EXPECT_EQ(a.parents()[0].get(), b.parents()[0].get());
}

// Property sweep: every (key, signature) combination encodes, parses and
// accounts sizes consistently.
struct AlgCase {
  key_algorithm key;
  signature_algorithm sig;
};

class CertificateAlgSweep : public ::testing::TestWithParam<AlgCase> {};

TEST_P(CertificateAlgSweep, EncodesAndAccounts) {
  rng r{977};
  const auto& param = GetParam();
  const certificate leaf = make_leaf(r, param.key, param.sig);
  EXPECT_EQ(leaf.sizes().total, leaf.size());
  // SPKI sizes must match the algorithm exactly.
  const std::size_t expected_spki =
      param.key == key_algorithm::rsa_2048     ? 294u
      : param.key == key_algorithm::rsa_4096   ? 550u
      : param.key == key_algorithm::ecdsa_p256 ? 91u
                                               : 120u;
  EXPECT_EQ(leaf.sizes().public_key_info, expected_spki);
  buffer_reader reader{leaf.der()};
  EXPECT_NO_THROW((void)asn1::read_tlv(reader));
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, CertificateAlgSweep,
    ::testing::Values(
        AlgCase{key_algorithm::rsa_2048, signature_algorithm::sha256_rsa_2048},
        AlgCase{key_algorithm::rsa_2048, signature_algorithm::sha256_rsa_4096},
        AlgCase{key_algorithm::rsa_4096, signature_algorithm::sha256_rsa_2048},
        AlgCase{key_algorithm::ecdsa_p256, signature_algorithm::ecdsa_sha256},
        AlgCase{key_algorithm::ecdsa_p256,
                signature_algorithm::sha256_rsa_2048},
        AlgCase{key_algorithm::ecdsa_p384, signature_algorithm::ecdsa_sha384}));

}  // namespace
}  // namespace certquic::x509
