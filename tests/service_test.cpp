// Longitudinal-service tests: the epoch service must be crash-resumable
// — a killed run (complete shards on disk, one truncated, the rest
// missing) resumed in a fresh process must produce bit-identical
// aggregates, digests and rendered tables to an uninterrupted run at 1,
// 2 and 8 threads; complete shards must be reused rather than
// re-probed; a store must reject a mismatched configuration; and a
// corrupted (reordered) shard stream must be caught by the sealed
// epoch digest.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/spill.hpp"
#include "service/census_service.hpp"
#include "service/epoch_store.hpp"
#include "util/errors.hpp"

namespace certquic {
namespace {

namespace fs = std::filesystem;

service::service_options small_opts(const std::string& store_dir) {
  service::service_options opt;
  opt.store_dir = store_dir;
  opt.domains = 2000;
  opt.seed = 42;
  opt.sample = 120;
  opt.shards = 3;
  opt.epochs = 3;
  return opt;
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  return dir;
}

std::vector<fs::path> shard_files(const fs::path& root) {
  std::vector<fs::path> shards;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (entry.is_regular_file() &&
        entry.path().filename().string().rfind("shard_", 0) == 0) {
      shards.push_back(entry.path());
    }
  }
  std::sort(shards.begin(), shards.end());
  return shards;
}

/// Cuts a file mid-line, as a kill mid-write would.
void truncate_file(const fs::path& path, std::size_t keep_bytes) {
  std::ifstream in{path, std::ios::binary};
  std::string bytes{std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>()};
  ASSERT_GT(bytes.size(), keep_bytes);
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out.write(bytes.data(), static_cast<std::streamsize>(keep_bytes));
}

void expect_identical(const service::service_result& a,
                      const service::service_result& b) {
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t i = 0; i < a.epochs.size(); ++i) {
    const core::epoch_aggregate& ag = a.epochs[i].aggregate;
    const core::epoch_aggregate& bg = b.epochs[i].aggregate;
    EXPECT_EQ(ag.records, bg.records) << "epoch " << i;
    EXPECT_EQ(ag.stream_digest, bg.stream_digest) << "epoch " << i;
    EXPECT_EQ(ag.counts, bg.counts) << "epoch " << i;
    EXPECT_EQ(ag.bytes_sent_total, bg.bytes_sent_total) << "epoch " << i;
    EXPECT_EQ(ag.bytes_received_total, bg.bytes_received_total)
        << "epoch " << i;
    ASSERT_EQ(ag.first_burst_amplification.size(),
              bg.first_burst_amplification.size())
        << "epoch " << i;
    if (!ag.first_burst_amplification.empty()) {
      EXPECT_EQ(ag.first_burst_amplification.median(),
                bg.first_burst_amplification.median())
          << "epoch " << i;
      EXPECT_EQ(ag.first_burst_amplification.quantile(0.95),
                bg.first_burst_amplification.quantile(0.95))
          << "epoch " << i;
    }
  }
  EXPECT_EQ(service::render_epoch_tables(a),
            service::render_epoch_tables(b));
}

TEST(CensusService, KillAndResumeBitIdenticalAcrossThreads) {
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const engine::options exec{.threads = threads};
    const std::string tag = std::to_string(threads);

    const auto full_dir = fresh_dir("certquic_service_full_" + tag);
    const auto full =
        service::run_epochs(small_opts(full_dir.string()), exec);
    ASSERT_TRUE(full.complete);
    ASSERT_EQ(full.epochs.size(), 3u);
    EXPECT_EQ(full.probed_shards, 9u);

    // Kill after 4 shard slices: epoch 0 sealed, epoch 1 in progress.
    const auto kill_dir = fresh_dir("certquic_service_kill_" + tag);
    auto aborted_opts = small_opts(kill_dir.string());
    aborted_opts.abort_after_shards = 4;
    const auto aborted = service::run_epochs(aborted_opts, exec);
    EXPECT_FALSE(aborted.complete);
    EXPECT_EQ(aborted.probed_shards, 4u);
    ASSERT_EQ(aborted.epochs.size(), 1u);

    // Worse than a clean kill: the last shard written is also cut
    // mid-record, as a crash mid-write would leave it.
    const auto shards = shard_files(kill_dir);
    ASSERT_FALSE(shards.empty());
    truncate_file(shards.back(), 64);
    ASSERT_EQ(engine::spill_probe(shards.back().string()).state,
              engine::spill_state::truncated);

    const auto resumed =
        service::run_epochs(small_opts(kill_dir.string()), exec);
    ASSERT_TRUE(resumed.complete);
    // Epoch 0's three shards are reused; the truncated one and the
    // five never-written ones are (re-)probed.
    EXPECT_EQ(resumed.probed_shards, 6u);
    expect_identical(full, resumed);
    fs::remove_all(full_dir);
    fs::remove_all(kill_dir);
  }
}

TEST(CensusService, ThreadCountsAgreeWithSerial) {
  const auto serial_dir = fresh_dir("certquic_service_serial");
  const auto serial = service::run_epochs(
      small_opts(serial_dir.string()), {.threads = 1});
  for (const std::size_t threads : {2u, 8u}) {
    const auto dir =
        fresh_dir("certquic_service_mt_" + std::to_string(threads));
    const auto mt = service::run_epochs(small_opts(dir.string()),
                                        {.threads = threads});
    expect_identical(serial, mt);
    fs::remove_all(dir);
  }
  fs::remove_all(serial_dir);
}

TEST(CensusService, ResumeReusesCompleteShards) {
  const auto dir = fresh_dir("certquic_service_reuse");
  const auto first = service::run_epochs(small_opts(dir.string()));
  ASSERT_TRUE(first.complete);
  EXPECT_EQ(first.probed_shards, 9u);

  const auto second = service::run_epochs(small_opts(dir.string()));
  ASSERT_TRUE(second.complete);
  EXPECT_EQ(second.probed_shards, 0u);
  for (const auto& rep : second.epochs) {
    EXPECT_EQ(rep.shards_probed, 0u);
    EXPECT_EQ(rep.shards_reused, 3u);
  }
  expect_identical(first, second);
  fs::remove_all(dir);
}

TEST(CensusService, ManifestConfigMismatchThrows) {
  const auto dir = fresh_dir("certquic_service_mismatch");
  auto opt = small_opts(dir.string());
  opt.epochs = 1;
  ASSERT_TRUE(service::run_epochs(opt).complete);
  opt.seed = 43;
  EXPECT_THROW((void)service::run_epochs(opt), config_error);
  fs::remove_all(dir);
}

TEST(CensusService, CorruptedStoreDetected) {
  const auto dir = fresh_dir("certquic_service_corrupt");
  auto opt = small_opts(dir.string());
  opt.epochs = 1;
  ASSERT_TRUE(service::run_epochs(opt).complete);

  // Swap two record lines of one shard: the file still carries a valid
  // footer and the right record count, so only the sealed epoch's
  // order-sensitive stream digest can catch it.
  const auto shards = shard_files(dir);
  ASSERT_FALSE(shards.empty());
  std::vector<std::string> lines;
  {
    std::ifstream in{shards.front()};
    std::string line;
    while (std::getline(in, line)) {
      lines.push_back(line);
    }
  }
  ASSERT_GE(lines.size(), 4u);  // header, >=2 records, footer
  std::swap(lines[1], lines[2]);
  {
    std::ofstream out{shards.front(), std::ios::trunc};
    for (const std::string& line : lines) {
      out << line << '\n';
    }
  }
  EXPECT_THROW((void)service::run_epochs(opt), codec_error);
  fs::remove_all(dir);
}

TEST(CensusService, BoundedServeLoopSealsOneEpochPerCall) {
  const auto full_dir = fresh_dir("certquic_service_serve_full");
  const auto full = service::run_epochs(small_opts(full_dir.string()));

  const auto dir = fresh_dir("certquic_service_serve");
  auto opt = small_opts(dir.string());
  opt.max_epochs_per_call = 1;
  service::service_result last;
  for (std::size_t pass = 1; pass <= 3; ++pass) {
    last = service::run_epochs(opt);
    EXPECT_EQ(last.epochs.size(), pass);
    EXPECT_EQ(last.complete, pass == 3);
  }
  expect_identical(full, last);
  fs::remove_all(full_dir);
  fs::remove_all(dir);
}

TEST(CensusService, RejectsEmptyOptions) {
  EXPECT_THROW((void)service::run_epochs({}), config_error);
  auto opt = small_opts("/tmp/certquic_service_unused");
  opt.epochs = 0;
  EXPECT_THROW((void)service::run_epochs(opt), config_error);
}

}  // namespace
}  // namespace certquic
