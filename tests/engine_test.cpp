// Engine determinism and probe-plan tests: the sharded parallel
// executor must produce byte-identical aggregates to the serial path on
// a fixed-seed population, at any thread count.
#include <atomic>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/amplification_study.hpp"
#include "core/census.hpp"
#include "core/certificates.hpp"
#include "core/compression_study.hpp"
#include "core/funnel.hpp"
#include "core/tuner.hpp"
#include "engine/engine.hpp"
#include "scan/reach.hpp"

namespace certquic {
namespace {

const internet::model& shared_model() {
  static const internet::model m =
      internet::model::generate({.domains = 2000, .seed = 42});
  return m;
}

/// Full-precision rendering so any bit-level difference in a double
/// (e.g. from a reordered floating-point sum) shows up in the digest.
std::string full(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", x);
  return buf;
}

std::string digest(const stats::sample_set& s) {
  std::ostringstream out;
  out << s.size();
  if (!s.empty()) {
    // mean() sums in insertion order — it detects reordered merges that
    // the sorted quantiles would mask.
    out << ' ' << full(s.mean()) << ' ' << full(s.min()) << ' '
        << full(s.median()) << ' ' << full(s.max());
  }
  return out.str();
}

std::string digest(const core::census_result& census) {
  std::ostringstream out;
  out << census.initial_size << '|' << census.probed << '|';
  for (const auto count : census.counts) {
    out << count << ',';
  }
  out << '|';
  for (const auto& group : census.group_counts) {
    for (const auto count : group) {
      out << count << ',';
    }
  }
  out << '|' << digest(census.first_burst_amplification);
  out << '|' << census.multi_tls_exceeding_limit << '|'
      << census.max_non_tls_bytes << '|' << census.amplifying << '|'
      << census.amplifying_cloudflare << '|'
      << digest(census.cloudflare_padding) << '|';
  for (const auto& [total, tls] : census.multi_rtt_payload) {
    out << total << ':' << tls << ',';
  }
  return out.str();
}

std::string digest(const core::compression_result& study) {
  std::ostringstream out;
  for (const auto& savings : study.synthetic_savings) {
    out << digest(savings) << '|';
  }
  out << full(study.under_limit_compressed) << '|'
      << full(study.under_limit_uncompressed) << '|'
      << full(study.support_brotli) << '|' << full(study.support_all_three)
      << '|' << digest(study.wild_savings);
  return out.str();
}

std::string digest(const std::vector<core::meta_probe_row>& rows) {
  std::ostringstream out;
  for (const auto& row : rows) {
    out << row.host_octet << ':' << row.responded << ':'
        << row.bytes_received << ':' << full(row.amplification.mean())
        << ':' << full(row.duration_s) << '|';
  }
  return out.str();
}

TEST(EngineDeterminism, CensusIdenticalAcrossThreadCounts) {
  core::census_options opt;
  opt.initial_size = 1362;
  opt.max_services = 300;
  const std::string serial =
      digest(core::run_census(shared_model(), opt, engine::options::serial()));
  for (const std::size_t threads : {2UL, 8UL}) {
    const std::string parallel = digest(
        core::run_census(shared_model(), opt, {.threads = threads}));
    EXPECT_EQ(serial, parallel) << "census diverged at " << threads
                                << " threads";
  }
}

TEST(EngineDeterminism, CompressionStudyIdenticalAcrossThreadCounts) {
  core::compression_options opt;
  opt.max_chains = 200;
  opt.max_probes = 80;
  const std::string serial = digest(core::run_compression_study(
      shared_model(), opt, engine::options::serial()));
  for (const std::size_t threads : {2UL, 8UL}) {
    const std::string parallel = digest(core::run_compression_study(
        shared_model(), opt, {.threads = threads}));
    EXPECT_EQ(serial, parallel) << "compression study diverged at "
                                << threads << " threads";
  }
}

TEST(EngineDeterminism, MetaScanIdenticalAcrossThreadCounts) {
  const std::string serial = digest(core::run_meta_scan(
      shared_model(), false, 2, engine::options::serial()));
  for (const std::size_t threads : {2UL, 8UL}) {
    const std::string parallel = digest(
        core::run_meta_scan(shared_model(), false, 2, {.threads = threads}));
    EXPECT_EQ(serial, parallel) << "meta scan diverged at " << threads
                                << " threads";
  }
}

TEST(EngineDeterminism, TunerStudyIdenticalAcrossThreadCounts) {
  const auto serial =
      core::run_tuner_study(shared_model(), 150, engine::options::serial());
  for (const std::size_t threads : {2UL, 8UL}) {
    const auto parallel =
        core::run_tuner_study(shared_model(), 150, {.threads = threads});
    EXPECT_EQ(serial.services, parallel.services);
    EXPECT_EQ(serial.multi_rtt_default, parallel.multi_rtt_default);
    EXPECT_EQ(serial.multi_rtt_tuned, parallel.multi_rtt_tuned);
    EXPECT_EQ(serial.converted_to_one_rtt, parallel.converted_to_one_rtt);
  }
}

TEST(EngineDeterminism, FunnelConsistencyIdenticalAcrossThreadCounts) {
  const auto serial = core::run_funnel(
      shared_model(), {.consistency_sample = 60}, engine::options::serial());
  for (const std::size_t threads : {2UL, 8UL}) {
    const auto parallel = core::run_funnel(
        shared_model(), {.consistency_sample = 60}, {.threads = threads});
    EXPECT_EQ(serial.consistency_checked, parallel.consistency_checked);
    EXPECT_EQ(serial.consistency_same, parallel.consistency_same);
  }
}

TEST(EngineDeterminism, CorpusMeansIdenticalAcrossThreadCounts) {
  const auto serial = core::analyze_corpus(shared_model(), {.max_services = 400},
                                           engine::options::serial());
  const auto parallel = core::analyze_corpus(
      shared_model(), {.max_services = 400}, {.threads = 8});
  EXPECT_EQ(digest(serial.quic_chain_sizes), digest(parallel.quic_chain_sizes));
  EXPECT_EQ(digest(serial.field_extensions), digest(parallel.field_extensions));
  EXPECT_EQ(digest(serial.san_shares), digest(parallel.san_shares));
  EXPECT_EQ(serial.quadrant_small_low, parallel.quadrant_small_low);
  EXPECT_EQ(serial.alg_counts, parallel.alg_counts);
}

TEST(SampleIndices, CapZeroSelectsEveryMatch) {
  const auto& m = shared_model();
  const auto all = engine::sample_indices(m, engine::service_filter::quic, 0);
  std::size_t quic_total = 0;
  for (const auto& rec : m.records()) {
    quic_total += rec.serves_quic() ? 1 : 0;
  }
  EXPECT_EQ(all.size(), quic_total);
  for (const auto index : all) {
    EXPECT_TRUE(m.records()[index].serves_quic());
  }
}

TEST(SampleIndices, StridingMatchesHistoricalRule) {
  const auto& m = shared_model();
  const std::size_t cap = 100;
  const auto sampled =
      engine::sample_indices(m, engine::service_filter::quic, cap);
  // The historical interleaved walk, reproduced literally.
  std::size_t quic_total = 0;
  for (const auto& rec : m.records()) {
    quic_total += rec.serves_quic() ? 1 : 0;
  }
  const std::size_t stride = (quic_total + cap - 1) / cap;
  std::vector<std::uint32_t> expected;
  std::size_t quic_index = 0;
  for (std::uint32_t i = 0; i < m.records().size(); ++i) {
    if (!m.records()[i].serves_quic()) {
      continue;
    }
    if (quic_index++ % stride == 0) {
      expected.push_back(i);
    }
  }
  EXPECT_EQ(sampled, expected);
}

TEST(SampleIndices, TlsFilterIncludesHttpsOnly) {
  const auto& m = shared_model();
  const auto tls = engine::sample_indices(m, engine::service_filter::tls, 0);
  const auto quic = engine::sample_indices(m, engine::service_filter::quic, 0);
  EXPECT_GT(tls.size(), quic.size());
}

TEST(ParallelOrdered, ConsumesInAscendingIndexOrder) {
  std::vector<std::size_t> consumed;
  engine::parallel_ordered(
      257, engine::options{.threads = 8, .chunk = 16},
      [](std::size_t i) { return i * 3; },
      [&](std::size_t i, std::size_t value) {
        EXPECT_EQ(value, i * 3);
        consumed.push_back(i);
      });
  ASSERT_EQ(consumed.size(), 257u);
  for (std::size_t i = 0; i < consumed.size(); ++i) {
    EXPECT_EQ(consumed[i], i);
  }
}

TEST(ParallelOrdered, PropagatesWorkerExceptions) {
  std::atomic<std::size_t> consumed{0};
  EXPECT_THROW(
      engine::parallel_ordered(
          100, engine::options{.threads = 4, .chunk = 8},
          [](std::size_t i) -> int {
            if (i == 57) {
              throw std::runtime_error("boom");
            }
            return static_cast<int>(i);
          },
          [&](std::size_t, int) { ++consumed; }),
      std::runtime_error);
  EXPECT_LT(consumed.load(), 100u);
}

TEST(ProbeSeed, ZeroBaseAndSaltPreserveRecordSeeding) {
  EXPECT_EQ(engine::probe_seed(0, "a.example", 0), 0u);
  EXPECT_NE(engine::probe_seed(1, "a.example", 0), 0u);
  EXPECT_NE(engine::probe_seed(0, "a.example", 1), 0u);
  // Distinct per domain and per salt, stable across calls.
  EXPECT_NE(engine::probe_seed(1, "a.example", 0),
            engine::probe_seed(1, "b.example", 0));
  EXPECT_NE(engine::probe_seed(1, "a.example", 1),
            engine::probe_seed(1, "a.example", 2));
  EXPECT_EQ(engine::probe_seed(7, "a.example", 3),
            engine::probe_seed(7, "a.example", 3));
}

TEST(ProbePlan, SweepBuilderExpandsVariants) {
  engine::probe_plan plan;
  plan.sweep_initial_sizes({1200, 1250, 1472});
  ASSERT_EQ(plan.variants.size(), 3u);
  EXPECT_EQ(plan.variants[0].initial_size, 1200u);
  EXPECT_EQ(plan.variants[2].initial_size, 1472u);
}

TEST(ProbePlan, NoAckVariantNeverAcknowledges) {
  const auto& m = shared_model();
  engine::probe_variant variant;
  variant.initial_size = 1362;
  variant.ack = quic::ack_policy::none;
  const auto plan = engine::probe_plan::single(std::move(variant), 20);
  std::size_t probes = 0;
  engine::callback_sink sink{[&](const engine::probe_record& pr) {
    ++probes;
    // A silent client sends nothing beyond its first flight.
    EXPECT_EQ(pr.result.obs.bytes_sent_total,
              pr.result.obs.bytes_sent_first_flight);
  }};
  engine::executor{m, {.threads = 2}}.run(plan, sink);
  EXPECT_GT(probes, 0u);
}

#if defined(CERTQUIC_ENABLE_ASSERTS)
// CERTQUIC_ASSERT is compiled in (Debug and sanitized builds): the
// sink lifecycle contract must abort loudly on misuse, not corrupt
// aggregates silently. Compiled out with the asserts themselves.
TEST(SinkLifecycleDeath, RecordBeforeBeginAborts) {
  engine::sink_lifecycle lc;
  EXPECT_DEATH_IF_SUPPORTED(lc.record(), "on_record before on_begin");
}

TEST(SinkLifecycleDeath, DoubleBeginAborts) {
  engine::sink_lifecycle lc;
  lc.begin();
  EXPECT_DEATH_IF_SUPPORTED(lc.begin(), "on_begin called twice");
}

TEST(SinkLifecycleDeath, RecordAfterEndAborts) {
  engine::sink_lifecycle lc;
  lc.begin();
  lc.record();
  lc.end();
  EXPECT_DEATH_IF_SUPPORTED(lc.record(), "after on_end");
}

TEST(SinkLifecycleDeath, LegalReuseDoesNotAbort) {
  engine::sink_lifecycle lc;
  lc.begin();
  lc.record();
  lc.end();
  lc.begin();  // re-begin after end is the documented reuse path
  lc.record();
  lc.end();
}
#endif  // CERTQUIC_ENABLE_ASSERTS

TEST(ProbePlan, MultiVariantPlansEnumerateVariantMajor) {
  const auto& m = shared_model();
  engine::probe_plan plan;
  plan.max_services = 10;
  plan.sweep_initial_sizes({1200, 1472});
  std::vector<std::uint32_t> variant_order;
  engine::callback_sink sink{[&](const engine::probe_record& pr) {
    variant_order.push_back(pr.variant_index);
    EXPECT_EQ(pr.variant.initial_size, pr.variant_index == 0 ? 1200u : 1472u);
  }};
  engine::executor{m, {.threads = 4}}.run(plan, sink);
  const std::size_t services = variant_order.size() / 2;
  ASSERT_GT(services, 0u);
  for (std::size_t i = 0; i < variant_order.size(); ++i) {
    EXPECT_EQ(variant_order[i], i < services ? 0u : 1u);
  }
}

}  // namespace
}  // namespace certquic
