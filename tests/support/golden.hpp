// Golden-file regression framework.
//
// A golden test captures a program's (or function's) text output and diffs
// it against a checked-in reference under tests/golden/. On mismatch the
// assertion fails with a line-level diff; running the suite with
// `--update-golden` (or CERTQUIC_UPDATE_GOLDEN=1 in the environment)
// rewrites the reference files instead, which is the documented
// regeneration path after an intentional output change.
#pragma once

#include <string>

#include <gtest/gtest.h>

namespace certquic::test {

/// Directory holding the checked-in golden files. Defaults to the
/// compile-time CERTQUIC_GOLDEN_DIR (set by CMake to <repo>/tests/golden);
/// the CERTQUIC_GOLDEN_DIR environment variable overrides it.
[[nodiscard]] std::string golden_dir();

/// True when this process should rewrite golden files instead of diffing.
[[nodiscard]] bool update_golden_requested();

/// Turns update mode on/off for this process (used by main() after
/// scanning argv for --update-golden).
void set_update_golden(bool enabled);

/// Strips `--update-golden` out of argv (adjusting argc) and enables
/// update mode if it was present. Call before InitGoogleTest.
void parse_update_golden_flag(int& argc, char** argv);

/// Normalizes text for stable comparison: CRLF -> LF, trailing whitespace
/// stripped per line, exactly one trailing newline on non-empty output.
[[nodiscard]] std::string normalize_text(std::string text);

/// Compares `actual` against golden file `name` (relative to golden_dir()).
/// In update mode, (re)writes the file and succeeds. Otherwise fails with
/// a unified-style diff when the contents differ, and with instructions
/// when the golden file is missing.
[[nodiscard]] ::testing::AssertionResult golden_compare(
    const std::string& name, const std::string& actual);

/// Runs `command` under `sh -c`, captures its stdout into `out`, and
/// returns the shell exit status (-1 when the pipe itself fails). stderr
/// passes through so CTest logs keep diagnostics.
[[nodiscard]] int run_capture(const std::string& command, std::string& out);

}  // namespace certquic::test
