#include "golden.hpp"

#include <sys/wait.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#ifndef CERTQUIC_GOLDEN_DIR
#define CERTQUIC_GOLDEN_DIR ""
#endif

namespace certquic::test {
namespace {

bool g_update_golden = false;

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string::size_type pos = 0;
  while (pos < text.size()) {
    const auto nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(pos));
      break;
    }
    lines.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

// Minimal line diff: first divergence plus a few lines of context from
// each side. Enough to read in a CTest log without a real diff algorithm.
std::string first_divergence(const std::string& expected,
                             const std::string& actual) {
  const auto exp = split_lines(expected);
  const auto act = split_lines(actual);
  std::size_t i = 0;
  while (i < exp.size() && i < act.size() && exp[i] == act[i]) {
    ++i;
  }
  std::ostringstream out;
  out << "first difference at line " << (i + 1) << ":\n";
  for (std::size_t j = i; j < std::min(exp.size(), i + 4); ++j) {
    out << "  - " << exp[j] << "\n";
  }
  for (std::size_t j = i; j < std::min(act.size(), i + 4); ++j) {
    out << "  + " << act[j] << "\n";
  }
  if (exp.size() != act.size()) {
    out << "  (expected " << exp.size() << " lines, got " << act.size()
        << ")\n";
  }
  return out.str();
}

}  // namespace

std::string golden_dir() {
  if (const char* env = std::getenv("CERTQUIC_GOLDEN_DIR");
      env != nullptr && *env != '\0') {
    return env;
  }
  return CERTQUIC_GOLDEN_DIR;
}

bool update_golden_requested() {
  if (g_update_golden) {
    return true;
  }
  const char* env = std::getenv("CERTQUIC_UPDATE_GOLDEN");
  return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
}

void set_update_golden(bool enabled) { g_update_golden = enabled; }

void parse_update_golden_flag(int& argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--update-golden") == 0) {
      set_update_golden(true);
    } else {
      argv[out++] = argv[i];
    }
  }
  argv[out] = nullptr;
  argc = out;
}

std::string normalize_text(std::string text) {
  std::string out;
  out.reserve(text.size());
  for (const auto& line : split_lines(text)) {
    std::string trimmed = line;
    while (!trimmed.empty() &&
           (trimmed.back() == ' ' || trimmed.back() == '\t' ||
            trimmed.back() == '\r')) {
      trimmed.pop_back();
    }
    out += trimmed;
    out += '\n';
  }
  // Collapse runs of trailing blank lines to the single final newline.
  while (out.size() >= 2 && out[out.size() - 1] == '\n' &&
         out[out.size() - 2] == '\n') {
    out.pop_back();
  }
  if (out == "\n") {
    out.clear();
  }
  return out;
}

::testing::AssertionResult golden_compare(const std::string& name,
                                          const std::string& actual) {
  namespace fs = std::filesystem;
  const fs::path path = fs::path(golden_dir()) / name;
  const std::string normalized = normalize_text(actual);

  if (update_golden_requested()) {
    fs::create_directories(path.parent_path());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return ::testing::AssertionFailure()
             << "cannot write golden file " << path;
    }
    out << normalized;
    return ::testing::AssertionSuccess() << "updated " << path;
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return ::testing::AssertionFailure()
           << "missing golden file " << path
           << "\nGenerate it with: golden_test --update-golden";
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string expected = normalize_text(buf.str());
  if (expected == normalized) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << "output differs from golden file " << path << "\n"
         << first_divergence(expected, normalized)
         << "If the change is intentional, regenerate with: "
            "golden_test --update-golden";
}

int run_capture(const std::string& command, std::string& out) {
  out.clear();
  FILE* pipe = ::popen(command.c_str(), "r");
  if (pipe == nullptr) {
    return -1;
  }
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) {
    out.append(buf, n);
  }
  const int status = ::pclose(pipe);
  if (status == -1) {
    return -1;
  }
  if (!WIFEXITED(status)) {
    // Signal death (e.g. a crash after the output was flushed) must not
    // masquerade as exit 0.
    return 128 + (WIFSIGNALED(status) ? WTERMSIG(status) : 0);
  }
  return WEXITSTATUS(status);
}

}  // namespace certquic::test
