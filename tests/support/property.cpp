#include "property.hpp"

#include <algorithm>

#include "quic/varint.hpp"

namespace certquic::test {

std::uint64_t gen_varint_value(rng& r) {
  switch (r.uniform(0, 3)) {
    case 0:
      return r.uniform(0, 63);                      // 1-byte band
    case 1:
      return r.uniform(64, 16383);                  // 2-byte band
    case 2:
      return r.uniform(16384, 1073741823);          // 4-byte band
    default:
      return r.uniform(1073741824, quic::kVarintMax);  // 8-byte band
  }
}

bytes gen_bytes(rng& r, std::size_t min_len, std::size_t max_len) {
  bytes out(r.uniform(min_len, max_len));
  r.fill(out);
  return out;
}

bytes gen_compressible_bytes(rng& r, std::size_t min_len,
                             std::size_t max_len) {
  const std::size_t target = r.uniform(min_len, max_len);
  bytes out;
  out.reserve(target);
  while (out.size() < target) {
    switch (r.uniform(0, 2)) {
      case 0: {  // literal stretch
        bytes lit = gen_bytes(r, 1, 24);
        append(out, lit);
        break;
      }
      case 1: {  // run of one byte
        const auto b = static_cast<std::uint8_t>(r.uniform(0, 255));
        out.insert(out.end(), r.uniform(4, 32), b);
        break;
      }
      default: {  // repeat an earlier slice, the LZ sweet spot
        if (out.empty()) {
          break;
        }
        const std::size_t start = r.uniform(0, out.size() - 1);
        const std::size_t len =
            r.uniform(1, std::min<std::size_t>(out.size() - start, 48));
        // Self-overlapping copies are legal LZ matches; keep the source
        // snapshot to avoid iterator invalidation while appending.
        bytes slice(out.begin() + static_cast<std::ptrdiff_t>(start),
                    out.begin() + static_cast<std::ptrdiff_t>(start + len));
        append(out, slice);
        break;
      }
    }
  }
  out.resize(target);
  return out;
}

asn1::oid gen_oid(rng& r, std::size_t max_extra_arcs) {
  asn1::oid arcs;
  const auto first = static_cast<std::uint32_t>(r.uniform(0, 2));
  arcs.push_back(first);
  if (first < 2) {
    arcs.push_back(static_cast<std::uint32_t>(r.uniform(0, 39)));
  } else {
    arcs.push_back(static_cast<std::uint32_t>(r.uniform(0, 999)));
  }
  const std::size_t extra = r.uniform(0, max_extra_arcs);
  for (std::size_t i = 0; i < extra; ++i) {
    // Mix small arcs with multi-septet ones to exercise base-128 packing.
    arcs.push_back(static_cast<std::uint32_t>(
        r.chance(0.5) ? r.uniform(0, 127) : r.uniform(128, 0xffffffffULL)));
  }
  return arcs;
}

std::string gen_printable(rng& r, std::size_t min_len, std::size_t max_len) {
  static constexpr char kAlphabet[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789 '()+,-./:=?";
  const std::size_t len = r.uniform(min_len, max_len);
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[r.uniform(0, sizeof(kAlphabet) - 2)]);
  }
  return out;
}

std::int64_t gen_int64(rng& r) {
  const auto magnitude = [&]() -> std::uint64_t {
    switch (r.uniform(0, 3)) {
      case 0:
        return r.uniform(0, 127);
      case 1:
        return r.uniform(128, 65535);
      case 2:
        return r.uniform(65536, 0xffffffffULL);
      default:
        return r.uniform(0x100000000ULL, 0x7fffffffffffffffULL);
    }
  }();
  const auto v = static_cast<std::int64_t>(magnitude);
  return r.chance(0.5) ? -v : v;
}

}  // namespace certquic::test
