// Seeded-RNG property-test helpers.
//
// Every generator draws from the project's own deterministic `certquic::rng`
// so a failing case reproduces bit-for-bit from its (seed, iteration) pair.
// No generator touches the wall clock or global state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "asn1/der.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace certquic::test {

/// Default iteration count for round-trip properties. Small enough to keep
/// tier-1 fast, large enough to hit every encoding band of each codec.
inline constexpr std::size_t kDefaultIterations = 256;

/// Seed used by all property suites unless a test overrides it. Fixed so a
/// red run is reproducible on any machine.
inline constexpr std::uint64_t kPropertySeed = 0xce27'9d1c'5eed'0001ULL;

/// Runs `fn(rng&, i)` for i in [0, iterations). Each iteration gets an
/// independent fork of the base generator, so properties can consume any
/// number of draws without disturbing later iterations.
template <typename Fn>
void for_each_iteration(Fn&& fn, std::size_t iterations = kDefaultIterations,
                        std::uint64_t seed = kPropertySeed) {
  rng base(seed);
  for (std::size_t i = 0; i < iterations; ++i) {
    rng it = base.fork(i);
    fn(it, i);
  }
}

/// QUIC varint value spread uniformly across the four encoding bands
/// (1/2/4/8 bytes) rather than uniformly over [0, 2^62), which would
/// almost never produce short encodings.
[[nodiscard]] std::uint64_t gen_varint_value(rng& r);

/// Random byte string with length uniform in [min_len, max_len].
[[nodiscard]] bytes gen_bytes(rng& r, std::size_t min_len, std::size_t max_len);

/// Byte string with LZ-friendly structure: runs, repeats of earlier slices
/// and literal stretches, so compressor back-references actually trigger.
[[nodiscard]] bytes gen_compressible_bytes(rng& r, std::size_t min_len,
                                           std::size_t max_len);

/// Valid OBJECT IDENTIFIER arc list (first arc in [0,2], second constrained
/// to [0,39] when the first is 0 or 1, as DER requires).
[[nodiscard]] asn1::oid gen_oid(rng& r, std::size_t max_extra_arcs = 8);

/// PrintableString-safe ASCII text of length in [min_len, max_len].
[[nodiscard]] std::string gen_printable(rng& r, std::size_t min_len,
                                        std::size_t max_len);

/// Signed 64-bit integer spread across magnitude bands (so 1-byte and
/// 8-byte DER INTEGER encodings both occur).
[[nodiscard]] std::int64_t gen_int64(rng& r);

}  // namespace certquic::test
