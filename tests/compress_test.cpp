// Unit and property tests for the LZ77 codec and algorithm presets.
#include <gtest/gtest.h>

#include <string>

#include "ca/ecosystem.hpp"
#include "compress/codec.hpp"
#include "compress/lz.hpp"
#include "util/errors.hpp"
#include "util/rng.hpp"

namespace certquic::compress {
namespace {

TEST(Varint, RoundTripsBoundaries) {
  for (const std::uint64_t v :
       {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL, 0xffffffffULL,
        0xffffffffffffffffULL}) {
    bytes out;
    write_varint(out, v);
    std::size_t pos = 0;
    EXPECT_EQ(read_varint(out, pos), v);
    EXPECT_EQ(pos, out.size());
  }
}

TEST(Varint, ThrowsOnTruncation) {
  const bytes data = {0x80};
  std::size_t pos = 0;
  EXPECT_THROW((void)read_varint(data, pos), codec_error);
}

TEST(Varint, ThrowsOnOverlongContinuationRun) {
  // Ten continuation groups exhaust a 64-bit value; an eleventh used
  // to push the shift count past 63 — undefined behaviour caught by
  // UBSan — instead of failing. Must throw, not keep shifting.
  const bytes data = {0x80, 0x80, 0x80, 0x80, 0x80, 0x80,
                      0x80, 0x80, 0x80, 0x80, 0x01};
  std::size_t pos = 0;
  EXPECT_THROW((void)read_varint(data, pos), codec_error);
}

TEST(Varint, ThrowsWhenTopGroupOverflows64Bits) {
  // The tenth group may only carry bit 63; anything wider overflows.
  const bytes data = {0xff, 0xff, 0xff, 0xff, 0xff,
                      0xff, 0xff, 0xff, 0xff, 0x02};
  std::size_t pos = 0;
  EXPECT_THROW((void)read_varint(data, pos), codec_error);
}

TEST(Lz, EmptyInput) {
  const bytes compressed = lz_compress({}, {});
  EXPECT_EQ(lz_decompress(compressed, {}), bytes{});
}

TEST(Lz, IncompressibleInputStaysIntact) {
  rng r{1};
  bytes input(512);
  r.fill(input);
  const bytes compressed = lz_compress(input, {});
  EXPECT_EQ(lz_decompress(compressed, {}), input);
  // Random data cannot shrink; overhead must stay tiny.
  EXPECT_LE(compressed.size(), input.size() + 16);
}

TEST(Lz, RepetitiveInputShrinksALot) {
  bytes input;
  for (int i = 0; i < 100; ++i) {
    append(input, std::string_view{"certificate chains repeat a lot! "});
  }
  const bytes compressed = lz_compress(input, {});
  EXPECT_EQ(lz_decompress(compressed, {}), input);
  EXPECT_LT(compressed.size(), input.size() / 10);
}

TEST(Lz, DictionaryEnablesCrossReferences) {
  bytes dictionary;
  for (int i = 0; i < 8; ++i) {
    append(dictionary, std::string_view{"shared intermediate certificate "});
  }
  bytes input = dictionary;  // input equals dictionary content
  const bytes with_dict = lz_compress(input, dictionary);
  const bytes without = lz_compress(input, {});
  EXPECT_LT(with_dict.size(), without.size());
  EXPECT_EQ(lz_decompress(with_dict, dictionary), input);
}

TEST(Lz, DecompressRejectsCorruptStreams) {
  // Match distance beyond history.
  bytes bogus;
  write_varint(bogus, 0);  // no literals
  write_varint(bogus, 99); // distance
  write_varint(bogus, 8);  // length
  EXPECT_THROW((void)lz_decompress(bogus, {}), codec_error);

  // Literal run longer than stream.
  bytes truncated;
  write_varint(truncated, 1000);
  truncated.push_back('x');
  EXPECT_THROW((void)lz_decompress(truncated, {}), codec_error);

  // Zero match distance.
  bytes zero_dist;
  write_varint(zero_dist, 1);
  zero_dist.push_back('a');
  write_varint(zero_dist, 0);
  write_varint(zero_dist, 8);
  EXPECT_THROW((void)lz_decompress(zero_dist, {}), codec_error);
}

TEST(Lz, MatchMayReachAcrossDictionaryBoundary) {
  const bytes dictionary = to_bytes("abcdefgh");
  // Input starts with dictionary suffix + its own prefix repeated.
  const bytes input = to_bytes("efghefghefgh");
  const bytes compressed = lz_compress(input, dictionary);
  EXPECT_EQ(lz_decompress(compressed, dictionary), input);
}

TEST(Codec, NamesAndCodePoints) {
  EXPECT_EQ(to_string(algorithm::brotli), "brotli");
  EXPECT_EQ(to_string(algorithm::zlib), "zlib");
  EXPECT_EQ(to_string(algorithm::zstd), "zstd");
  EXPECT_EQ(static_cast<std::uint16_t>(algorithm::zlib), 1);
  EXPECT_EQ(static_cast<std::uint16_t>(algorithm::brotli), 2);
  EXPECT_EQ(static_cast<std::uint16_t>(algorithm::zstd), 3);
}

TEST(Codec, SavingsDefinition) {
  codec c{algorithm::brotli};
  EXPECT_EQ(c.savings({}), 0.0);
  bytes input;
  for (int i = 0; i < 64; ++i) {
    append(input, std::string_view{"aaaaaaaaaaaaaaaa"});
  }
  const double s = c.savings(input);
  EXPECT_GT(s, 0.9);
  EXPECT_LE(s, 1.0);
}

// The headline claim of §4.2: compressing real certificate chains with a
// shared dictionary saves roughly 65-75% of bytes.
TEST(Codec, CertificateChainsReachPaperSavings) {
  auto eco = ca::ecosystem::make();
  const bytes dict = eco.compression_dictionary();
  codec brotli{algorithm::brotli, dict};
  rng r{7};
  double total_savings = 0.0;
  int n = 0;
  for (const char* id : {"cloudflare", "le-r3-x1cross", "le-r3", "sectigo"}) {
    for (int i = 0; i < 5; ++i) {
      const auto chain = eco.issue(eco.profile(id),
                                   "domain" + std::to_string(i) + ".example",
                                   r);
      const bytes payload = chain.concatenated_der();
      const bytes compressed = brotli.compress(payload);
      EXPECT_EQ(brotli.decompress(compressed), payload) << id;
      total_savings += brotli.savings(payload);
      ++n;
    }
  }
  const double mean = total_savings / n;
  EXPECT_GT(mean, 0.55);
  EXPECT_LT(mean, 0.90);
}

TEST(Codec, AlgorithmsRankPlausibly) {
  auto eco = ca::ecosystem::make();
  const bytes dict = eco.compression_dictionary();
  rng r{9};
  const auto chain = eco.issue(eco.profile("le-r3-x1cross"), "big.example", r);
  const bytes payload = chain.concatenated_der();
  const double brotli_s = codec{algorithm::brotli, dict}.savings(payload);
  const double zlib_s = codec{algorithm::zlib, dict}.savings(payload);
  const double zstd_s = codec{algorithm::zstd, dict}.savings(payload);
  // brotli >= zstd (same window, more patient search); zlib is limited
  // by its 32 KiB dictionary cap but stays in the same ballpark
  // (paper: 73% / 74% / 72% are within two points of each other).
  EXPECT_GE(brotli_s + 1e-9, zstd_s);
  EXPECT_NEAR(brotli_s, zlib_s, 0.15);
  EXPECT_NEAR(brotli_s, zstd_s, 0.15);
}

// Property: random structured corpora round-trip losslessly under every
// algorithm preset.
struct FuzzCase {
  algorithm alg;
  std::uint64_t seed;
};

class CodecFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(CodecFuzz, LosslessRoundTrip) {
  const auto& param = GetParam();
  rng r{param.seed};
  bytes dictionary(static_cast<std::size_t>(r.uniform(0, 4096)));
  r.fill(dictionary);
  codec c{param.alg, dictionary};
  for (int round = 0; round < 20; ++round) {
    // Mix of random spans and repeated motifs, like DER structures.
    bytes input;
    const auto segments = r.uniform(1, 12);
    for (std::uint64_t s = 0; s < segments; ++s) {
      if (r.chance(0.5)) {
        bytes random_part(static_cast<std::size_t>(r.uniform(1, 300)));
        r.fill(random_part);
        append(input, random_part);
      } else {
        const std::string motif = r.ascii_label(2, 24);
        const auto repeats = r.uniform(1, 40);
        for (std::uint64_t k = 0; k < repeats; ++k) {
          append(input, motif);
        }
      }
      if (r.chance(0.3) && !dictionary.empty()) {
        // Splice a dictionary fragment so cross-references get exercised.
        const auto off = r.uniform(0, dictionary.size() - 1);
        const auto len =
            r.uniform(1, dictionary.size() - static_cast<std::size_t>(off));
        append(input, bytes_view{dictionary.data() + off,
                                 static_cast<std::size_t>(len)});
      }
    }
    const bytes compressed = c.compress(input);
    EXPECT_EQ(c.decompress(compressed), input);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsAndSeeds, CodecFuzz,
    ::testing::Values(FuzzCase{algorithm::brotli, 1},
                      FuzzCase{algorithm::brotli, 2},
                      FuzzCase{algorithm::zlib, 3},
                      FuzzCase{algorithm::zlib, 4},
                      FuzzCase{algorithm::zstd, 5},
                      FuzzCase{algorithm::zstd, 6}));

}  // namespace
}  // namespace certquic::compress
