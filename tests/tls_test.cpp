// Unit tests for the TLS 1.3 handshake message layer.
#include <gtest/gtest.h>

#include "ca/ecosystem.hpp"
#include "tls/handshake.hpp"
#include "util/errors.hpp"
#include "util/rng.hpp"

namespace certquic::tls {
namespace {

class TlsTest : public ::testing::Test {
 protected:
  ca::ecosystem eco_ = ca::ecosystem::make();
  rng rng_{77};

  x509::chain make_chain(const char* profile = "cloudflare") {
    return eco_.issue(eco_.profile(profile), "example.org", rng_);
  }
};

TEST_F(TlsTest, FrameRoundTrip) {
  const bytes body = {1, 2, 3, 4, 5};
  const bytes framed = frame(handshake_type::finished, body);
  EXPECT_EQ(framed.size(), body.size() + 4);
  const auto info = peek_frame(framed);
  EXPECT_EQ(info.type, handshake_type::finished);
  EXPECT_EQ(info.total_size, framed.size());
}

TEST_F(TlsTest, PeekFrameRejectsTruncation) {
  bytes framed = frame(handshake_type::finished, bytes(32, 0));
  framed.resize(framed.size() - 1);
  EXPECT_THROW((void)peek_frame(framed), codec_error);
}

TEST_F(TlsTest, ClientHelloRealisticSize) {
  client_hello_config config;
  config.server_name = "www.example.org";
  const bytes ch = encode_client_hello(config, rng_);
  // Realistic browser ClientHellos (sans padding) run ~250-400 bytes.
  EXPECT_GT(ch.size(), 250u);
  EXPECT_LT(ch.size(), 420u);
  EXPECT_EQ(peek_frame(ch).type, handshake_type::client_hello);
}

TEST_F(TlsTest, ClientHelloCompressionOfferRoundTrip) {
  client_hello_config config;
  config.server_name = "example.org";
  config.compression_algorithms = {compress::algorithm::brotli,
                                   compress::algorithm::zstd};
  const bytes ch = encode_client_hello(config, rng_);
  const auto offered = parse_offered_compression(ch);
  ASSERT_EQ(offered.size(), 2u);
  EXPECT_EQ(offered[0], compress::algorithm::brotli);
  EXPECT_EQ(offered[1], compress::algorithm::zstd);

  client_hello_config none;
  none.server_name = "example.org";
  EXPECT_TRUE(parse_offered_compression(encode_client_hello(none, rng_))
                  .empty());
}

TEST_F(TlsTest, ServerHelloSizeStable) {
  const bytes sh = encode_server_hello(rng_);
  EXPECT_EQ(peek_frame(sh).type, handshake_type::server_hello);
  // SH with key_share + supported_versions: ~120-135 bytes framed.
  EXPECT_GT(sh.size(), 110u);
  EXPECT_LT(sh.size(), 140u);
}

TEST_F(TlsTest, CertificateMessageMatchesChainSize) {
  const auto chain = make_chain();
  const bytes cert_msg = encode_certificate(chain);
  // Framing: 4 (frame) + 1 (context) + 3 (list len) + per-cert 3+2.
  const std::size_t expected =
      4 + 1 + 3 + chain.wire_size() + chain.depth() * 5;
  EXPECT_EQ(cert_msg.size(), expected);
  EXPECT_EQ(peek_frame(cert_msg).type, handshake_type::certificate);
}

TEST_F(TlsTest, CompressedCertificateShrinksChain) {
  const auto chain = make_chain("le-r3-x1cross");
  const compress::codec codec{compress::algorithm::brotli,
                              eco_.compression_dictionary()};
  const bytes plain = encode_certificate(chain);
  const bytes compressed = encode_compressed_certificate(chain, codec);
  EXPECT_EQ(peek_frame(compressed).type,
            handshake_type::compressed_certificate);
  EXPECT_LT(compressed.size(), plain.size() / 2);
}

TEST_F(TlsTest, CertificateVerifySizeTracksKey) {
  const auto rsa =
      encode_certificate_verify(x509::key_algorithm::rsa_2048, rng_).size();
  const auto ec =
      encode_certificate_verify(x509::key_algorithm::ecdsa_p256, rng_).size();
  EXPECT_EQ(rsa, 4u + 4u + 256u);
  EXPECT_EQ(ec, 4u + 4u + 71u);
}

TEST_F(TlsTest, FinishedIs36Bytes) {
  EXPECT_EQ(encode_finished(rng_).size(), 36u);
}

TEST_F(TlsTest, ServerFlightLevelsSplitCorrectly) {
  const auto chain = make_chain();
  const auto flight = build_server_flight(chain, nullptr, rng_);
  EXPECT_EQ(peek_frame(flight.server_hello).type,
            handshake_type::server_hello);
  ASSERT_EQ(flight.handshake_msgs.size(), 4u);
  EXPECT_EQ(peek_frame(flight.handshake_msgs[0]).type,
            handshake_type::encrypted_extensions);
  EXPECT_EQ(peek_frame(flight.handshake_msgs[1]).type,
            handshake_type::certificate);
  EXPECT_EQ(peek_frame(flight.handshake_msgs[2]).type,
            handshake_type::certificate_verify);
  EXPECT_EQ(peek_frame(flight.handshake_msgs[3]).type,
            handshake_type::finished);
  EXPECT_EQ(flight.total_size(),
            flight.server_hello.size() + flight.handshake_crypto_size());
}

TEST_F(TlsTest, FlightSizeDominatedByCertificate) {
  const auto small = build_server_flight(make_chain("cloudflare"), nullptr,
                                         rng_);
  const auto big = build_server_flight(make_chain("le-r3-x1cross"), nullptr,
                                       rng_);
  // §2: "the size of a server reply is mainly determined by its
  // certificate [chain]".
  EXPECT_GT(big.total_size(), small.total_size() + 1500);
}

TEST_F(TlsTest, CompressedFlightFitsAmplificationBudget) {
  const auto chain = make_chain("le-r3-x1cross");
  const compress::codec codec{compress::algorithm::brotli,
                              eco_.compression_dictionary()};
  const auto plain = build_server_flight(chain, nullptr, rng_);
  const auto packed = build_server_flight(chain, &codec, rng_);
  // §4.2: compression keeps 99% of chains under 3x1357 = 4071 bytes.
  EXPECT_GT(plain.total_size(), 4071u);
  EXPECT_LT(packed.total_size(), 4071u);
}

}  // namespace
}  // namespace certquic::tls
