// Streaming-executor tests: the SPSC-ring pipeline must be
// bit-identical to the historical chunk-and-join path at 1/2/8/16
// threads across both the reach (census) and backscatter backends, must
// keep workers producing while a slow sink drains (no join barrier),
// must survive degenerate ring capacities, must propagate worker and
// sink exceptions, and must die on a sequencer-ticket monotonicity
// violation in assert-enabled builds.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/amplification_study.hpp"
#include "core/census.hpp"
#include "engine/backend.hpp"
#include "engine/engine.hpp"
#include "engine/streaming_executor.hpp"

namespace certquic {
namespace {

const internet::model& shared_model() {
  static const internet::model m =
      internet::model::generate({.domains = 2000, .seed = 42});
  return m;
}

std::string full(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", x);
  return buf;
}

std::string digest(const stats::sample_set& s) {
  std::ostringstream out;
  out << s.size();
  if (!s.empty()) {
    out << ' ' << full(s.mean()) << ' ' << full(s.min()) << ' '
        << full(s.median()) << ' ' << full(s.max());
  }
  return out.str();
}

std::string digest(const core::census_result& census) {
  std::ostringstream out;
  out << census.initial_size << '|' << census.probed << '|';
  for (const auto count : census.counts) {
    out << count << ',';
  }
  out << '|';
  for (const auto& group : census.group_counts) {
    for (const auto count : group) {
      out << count << ',';
    }
  }
  out << '|' << digest(census.first_burst_amplification);
  out << '|' << census.multi_tls_exceeding_limit << '|'
      << census.max_non_tls_bytes << '|' << census.amplifying << '|'
      << census.amplifying_cloudflare << '|'
      << digest(census.cloudflare_padding) << '|';
  for (const auto& [total, tls] : census.multi_rtt_payload) {
    out << total << ':' << tls << ',';
  }
  return out.str();
}

std::string digest(const engine::unit_outcome& o) {
  std::ostringstream out;
  out << o.backscatter.provider << ':' << o.backscatter.bytes << ':'
      << o.backscatter.datagrams << ':' << o.backscatter.first_seen << ':'
      << o.backscatter.last_seen << ':' << o.probe.obs.bytes_sent_total;
  return out.str();
}

std::string census_digest(engine::options opt) {
  core::census_options census_opt;
  census_opt.initial_size = 1362;
  census_opt.max_services = 300;
  return digest(core::run_census(shared_model(), census_opt, opt));
}

TEST(StreamingExecutor, CensusMatchesChunkedPathAtEveryThreadCount) {
  // The reach backend through both executors: byte-identical aggregates
  // at 1/2/8/16 threads, and both equal to serial.
  const std::string serial = census_digest(engine::options::serial());
  for (const std::size_t threads : {1UL, 2UL, 8UL, 16UL}) {
    const std::string streaming = census_digest(
        {.threads = threads, .mode = engine::executor_mode::streaming});
    const std::string chunked = census_digest(
        {.threads = threads, .mode = engine::executor_mode::chunked});
    EXPECT_EQ(serial, streaming)
        << "streaming diverged from serial at " << threads << " threads";
    EXPECT_EQ(streaming, chunked)
        << "executors diverged at " << threads << " threads";
  }
}

TEST(StreamingExecutor, BackscatterBackendMatchesChunkedPath) {
  // The shared-world backend through run_backend: per-unit outcomes in
  // plan order must be identical across executors and thread counts.
  const auto plan = core::build_telescope_plan(
      shared_model(), {.sessions_per_provider = 20});
  const engine::backscatter_backend backend{plan};

  const auto collect = [&](engine::options opt) {
    std::vector<std::string> digests;
    engine::run_backend(backend, opt,
                        [&](std::size_t, engine::unit_outcome&& o) {
                          digests.push_back(digest(o));
                        });
    return digests;
  };
  const auto serial = collect(engine::options::serial());
  ASSERT_EQ(serial.size(), plan.sessions.size());
  for (const std::size_t threads : {2UL, 8UL, 16UL}) {
    EXPECT_EQ(serial,
              collect({.threads = threads,
                       .mode = engine::executor_mode::streaming}))
        << "streaming backscatter diverged at " << threads << " threads";
    EXPECT_EQ(serial, collect({.threads = threads,
                               .mode = engine::executor_mode::chunked}))
        << "chunked backscatter diverged at " << threads << " threads";
  }
}

TEST(StreamingExecutor, WorkersKeepProducingWhileSinkStalls) {
  // The no-join-barrier property: park the sequencer inside the very
  // first consume call until every work(i) has run. Under chunk-and-join
  // windowing workers would stall long before n items; under streaming,
  // each worker owns 64 items and a 128-slot ring, so all n results are
  // produced while consume(0) is still blocked.
  constexpr std::size_t kN = 256;
  std::atomic<std::size_t> produced{0};
  std::vector<std::size_t> order;
  order.reserve(kN);
  engine::streaming_parallel_ordered(
      kN, /*threads=*/4, /*chunk=*/16, /*ring_capacity=*/128,
      [&](std::size_t i) {
        produced.fetch_add(1);
        return i * 3;
      },
      [&](std::size_t i, std::size_t result) {
        if (i == 0) {
          while (produced.load() < kN) {
            std::this_thread::yield();
          }
        }
        EXPECT_EQ(result, i * 3);
        order.push_back(i);
      });
  ASSERT_EQ(order.size(), kN);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(order[i], i) << "delivery left plan order";
  }
}

TEST(StreamingExecutor, CapacityOneRingsStillDeliverInPlanOrder) {
  // Degenerate ring: every push waits for the matching pop, maximizing
  // producer/sequencer interleaving. Order and values must still hold.
  constexpr std::size_t kN = 257;
  std::size_t expected = 0;
  engine::streaming_parallel_ordered(
      kN, /*threads=*/8, /*chunk=*/4, /*ring_capacity=*/1,
      [](std::size_t i) { return i + 1; },
      [&](std::size_t i, std::size_t result) {
        EXPECT_EQ(i, expected);
        EXPECT_EQ(result, i + 1);
        ++expected;
      });
  EXPECT_EQ(expected, kN);
}

TEST(StreamingExecutor, PropagatesWorkerExceptions) {
  std::atomic<std::size_t> consumed{0};
  EXPECT_THROW(
      engine::streaming_parallel_ordered(
          1000, /*threads=*/4, /*chunk=*/8, /*ring_capacity=*/16,
          [](std::size_t i) {
            if (i == 57) {
              throw std::runtime_error("probe failed");
            }
            return i;
          },
          [&](std::size_t, std::size_t) { consumed.fetch_add(1); }),
      std::runtime_error);
  EXPECT_LE(consumed.load(), 57u) << "consume must stop at the failure";
}

TEST(StreamingExecutor, PropagatesConsumeExceptions) {
  std::atomic<std::size_t> worked{0};
  EXPECT_THROW(
      engine::streaming_parallel_ordered(
          1000, /*threads=*/4, /*chunk=*/8, /*ring_capacity=*/16,
          [&](std::size_t i) {
            worked.fetch_add(1);
            return i;
          },
          [](std::size_t i, std::size_t) {
            if (i == 10) {
              throw std::runtime_error("sink failed");
            }
          }),
      std::runtime_error);
  // Cancellation is prompt: workers see the failure flag and bail well
  // before the full index space.
  EXPECT_LT(worked.load(), 1000u);
}

TEST(StreamingExecutor, EnvSelectsExecutorMode) {
  // options::mode wins over the environment; automatic defers to it.
  EXPECT_EQ(engine::resolved_mode({.mode = engine::executor_mode::chunked}),
            engine::executor_mode::chunked);
  EXPECT_EQ(engine::resolved_mode({.mode = engine::executor_mode::streaming}),
            engine::executor_mode::streaming);
  // Default environment in the test harness has no CERTQUIC_EXECUTOR:
  // automatic resolves to streaming.
  if (std::getenv("CERTQUIC_EXECUTOR") == nullptr) {
    EXPECT_EQ(engine::resolved_mode({}), engine::executor_mode::streaming);
  }
}

#if defined(CERTQUIC_ENABLE_ASSERTS)
TEST(SequencerTicketDeath, DetectsGapSkipAndReplay) {
  {
    engine::sequencer_ticket ticket;
    ticket.advance(0);
    ticket.advance(1);
    EXPECT_DEATH_IF_SUPPORTED(ticket.advance(3), "left plan order");
  }
  {
    engine::sequencer_ticket ticket;
    ticket.advance(0);
    EXPECT_DEATH_IF_SUPPORTED(ticket.advance(0), "left plan order");
  }
  {
    engine::sequencer_ticket ticket;
    EXPECT_DEATH_IF_SUPPORTED(ticket.advance(5), "left plan order");
  }
}
#endif  // CERTQUIC_ENABLE_ASSERTS

}  // namespace
}  // namespace certquic
