// Tier-1 suite for the determinism lint (tools/lint_core.*).
//
// Two halves:
//   1. Fixture scan — tests/lint_fixtures/ contains one known
//      violation per rule (plus an inline-waived site and a
//      file-waived site); the exact finding set is asserted.
//   2. Real-tree scan — src/ must lint clean against the checked-in
//      tools/lint_waivers.txt, with no stale waivers. This is the
//      same gate tools/verify.sh runs; keeping it tier-1 means a
//      nondeterminism hazard cannot land without either a fix or a
//      reviewed waiver.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "lint_core.hpp"

namespace certquic::lint {
namespace {

std::vector<std::tuple<std::string, std::size_t, std::string>> keys(
    const std::vector<finding>& findings) {
  std::vector<std::tuple<std::string, std::size_t, std::string>> out;
  out.reserve(findings.size());
  for (const finding& f : findings) {
    out.emplace_back(f.path, f.line, f.rule);
  }
  return out;
}

const std::string kFixtureRoot = CERTQUIC_LINT_FIXTURE_DIR;
const std::string kSrcRoot = CERTQUIC_LINT_SRC_DIR;
const std::string kWaiverFile = CERTQUIC_LINT_WAIVER_FILE;

TEST(LintFixtures, FindsExactlyTheKnownViolations) {
  const auto files = collect_sources(kFixtureRoot);
  const report rep = lint_files(files, kFixtureRoot, {});
  EXPECT_EQ(keys(rep.findings),
            (std::vector<std::tuple<std::string, std::size_t, std::string>>{
                {"core/mixed.cpp", 7, "float-accum"},
                {"core/url_log.cpp", 13, "float-accum"},
                {"engine/hash_iter.cpp", 12, "unordered-iter"},
                {"engine/pair.cpp", 10, "unordered-iter"},
                {"engine/ring_misuse.cpp", 13, "atomic-plain"},
                {"net/wall.cpp", 8, "nondet-source"},
                {"scan/seeded.cpp", 8, "raw-rng"},
                {"util/clocky.cpp", 8, "nondet-source"},
            }));
  EXPECT_TRUE(rep.unused_waivers.empty());
}

TEST(LintFixtures, StringLiteralSlashSlashDoesNotTruncateTheLine) {
  // core/url_log.cpp puts a float accumulation AFTER a "http://..."
  // URL string on the same line. The old line-based scanner cut the
  // line at the `//` inside the string and missed the accumulation;
  // the token scanner blanks the literal body instead and must find
  // it at the pinned line.
  const auto files = collect_sources(kFixtureRoot);
  const report rep = lint_files(files, kFixtureRoot, {});
  const bool hit = std::any_of(
      rep.findings.begin(), rep.findings.end(), [](const finding& f) {
        return f.path == "core/url_log.cpp" && f.line == 13 &&
               f.rule == "float-accum";
      });
  EXPECT_TRUE(hit);
}

TEST(LintFixtures, CommentsAndLiteralsNeverMatch) {
  // util/commented.cpp spells every nondet-source pattern inside a
  // block comment, a string literal and a raw string literal — zero
  // findings (the old scanner flagged the block-comment lines).
  const auto files = collect_sources(kFixtureRoot);
  const report rep = lint_files(files, kFixtureRoot, {});
  for (const finding& f : rep.findings) {
    EXPECT_NE(f.path, "util/commented.cpp")
        << f.line << ": [" << f.rule << "] " << f.source_line;
  }
}

TEST(LintFixtures, HeaderDeclarationsReachTheCompanionSource) {
  // pair.hpp declares the unordered member; pair.cpp iterates it. The
  // finding must land in the .cpp — proof the per-basename declaration
  // unit merge works (the cdf.hpp/cdf.cpp situation in the real tree).
  const auto files = collect_sources(kFixtureRoot);
  const report rep = lint_files(files, kFixtureRoot, {});
  const bool hit = std::any_of(
      rep.findings.begin(), rep.findings.end(), [](const finding& f) {
        return f.path == "engine/pair.cpp" && f.rule == "unordered-iter";
      });
  EXPECT_TRUE(hit);
}

TEST(LintFixtures, InlineWaiverSuppressesOnlyItsLine) {
  // core/mixed.cpp has two float accumulations; the second carries
  // "// certquic-lint: allow float-accum — ..." on the preceding line.
  const auto files = collect_sources(kFixtureRoot);
  const report rep = lint_files(files, kFixtureRoot, {});
  std::size_t mixed_hits = 0;
  for (const finding& f : rep.findings) {
    if (f.path == "core/mixed.cpp") {
      ++mixed_hits;
      EXPECT_EQ(f.line, 7u);
    }
  }
  EXPECT_EQ(mixed_hits, 1u);
}

TEST(LintFixtures, FileWaiverSuppressesAndIsMarkedUsed) {
  const auto files = collect_sources(kFixtureRoot);
  const auto waivers = load_waivers(kFixtureRoot + "/waivers.txt");
  ASSERT_EQ(waivers.size(), 1u);
  const report rep = lint_files(files, kFixtureRoot, waivers);
  for (const finding& f : rep.findings) {
    EXPECT_NE(f.path, "net/wall.cpp");
  }
  EXPECT_TRUE(rep.unused_waivers.empty());
}

TEST(LintFixtures, StaleWaiverIsReported) {
  waiver stale;
  stale.rule = "raw-rng";
  stale.path = "core/mixed.cpp";  // file exists but has no raw-rng hit
  stale.substring = "*";
  stale.reason = "fixture: deliberately stale";
  stale.file_line = 1;
  const auto files = collect_sources(kFixtureRoot);
  const report rep = lint_files(files, kFixtureRoot, {stale});
  ASSERT_EQ(rep.unused_waivers.size(), 1u);
  EXPECT_EQ(rep.unused_waivers[0].path, "core/mixed.cpp");
  EXPECT_FALSE(rep.clean());
}

TEST(LintFixtures, MalformedWaiverFilesThrow) {
  EXPECT_THROW((void)load_waivers(kSrcRoot + "/does-not-exist.txt"),
               std::exception);
}

TEST(LintRules, KnownRuleIds) {
  EXPECT_TRUE(known_rule("nondet-source"));
  EXPECT_TRUE(known_rule("unordered-iter"));
  EXPECT_TRUE(known_rule("float-accum"));
  EXPECT_TRUE(known_rule("raw-rng"));
  EXPECT_TRUE(known_rule("atomic-plain"));
  // The analyzer's rule ids are valid waiver targets too.
  EXPECT_TRUE(known_rule("layer-upward"));
  EXPECT_TRUE(known_rule("layer-cycle"));
  EXPECT_TRUE(known_rule("layer-drift"));
  EXPECT_TRUE(known_rule("pragma-once"));
  EXPECT_TRUE(known_rule("self-contained"));
  EXPECT_TRUE(known_rule("unused-include"));
  EXPECT_FALSE(known_rule("made-up-rule"));
}

TEST(LintRules, OutOfScopeWaiversAreNeitherAppliedNorStale) {
  // An analyzer-rule waiver must not be reported stale by a lint-only
  // run (lint_rules scope), but must participate under all_rules.
  waiver w;
  w.rule = "unused-include";
  w.path = "mod/dead.cpp";
  w.substring = "*";
  w.reason = "scope test";
  w.file_line = 1;
  const report lint_scope = apply_waivers({}, {w}, lint_rules());
  EXPECT_TRUE(lint_scope.clean());
  const report full_scope = apply_waivers({}, {w}, all_rules());
  ASSERT_EQ(full_scope.unused_waivers.size(), 1u);
  EXPECT_EQ(full_scope.unused_waivers[0].rule, "unused-include");
}

TEST(LintRealTree, SrcLintsCleanAgainstCheckedInWaivers) {
  const auto files = collect_sources(kSrcRoot);
  ASSERT_GT(files.size(), 50u);  // sanity: the whole tree was scanned
  const auto waivers = load_waivers(kWaiverFile);
  const report rep = lint_files(files, kSrcRoot, waivers);
  for (const finding& f : rep.findings) {
    ADD_FAILURE() << f.path << ":" << f.line << ": [" << f.rule << "] "
                  << f.message << "\n    " << f.source_line;
  }
  for (const waiver& w : rep.unused_waivers) {
    ADD_FAILURE() << "stale waiver (line " << w.file_line
                  << " of lint_waivers.txt): " << w.rule << "|" << w.path
                  << "|" << w.substring;
  }
  EXPECT_TRUE(rep.clean());
}

}  // namespace
}  // namespace certquic::lint
