// Unit and integration tests for the measurement tools (§3.2 toolchain).
#include <gtest/gtest.h>

#include "scan/classify.hpp"
#include "scan/qscanner.hpp"
#include "scan/reach.hpp"
#include "scan/telescope.hpp"
#include "scan/zmap.hpp"
#include "util/errors.hpp"

namespace certquic::scan {
namespace {

const internet::model& shared_model() {
  static const internet::model m =
      internet::model::generate({.domains = 4000, .seed = 42});
  return m;
}

const internet::service_record* find_quic(
    internet::behavior_kind kind,
    const std::string& chain = std::string{}) {
  for (const auto& rec : shared_model().records()) {
    if (rec.serves_quic() && rec.behavior == kind && rec.cruise_sans == 0 &&
        (chain.empty() || rec.chain_profile == chain)) {
      return &rec;
    }
  }
  return nullptr;
}

TEST(Classify, MapsObservationsToGroups) {
  quic::observation obs;
  EXPECT_EQ(classify(obs), handshake_class::unreachable);

  obs.response_received = true;
  obs.retry_seen = true;
  EXPECT_EQ(classify(obs), handshake_class::retry);

  obs.retry_seen = false;
  obs.handshake_complete = true;
  obs.bytes_sent_first_flight = 1200;
  obs.bytes_received_first_burst = 3600;
  EXPECT_EQ(classify(obs), handshake_class::one_rtt);

  obs.bytes_received_first_burst = 3601;
  EXPECT_EQ(classify(obs), handshake_class::amplification);

  obs.acks_before_complete = 1;
  EXPECT_EQ(classify(obs), handshake_class::multi_rtt);
}

TEST(Classify, Names) {
  EXPECT_EQ(to_string(handshake_class::one_rtt), "1-RTT");
  EXPECT_EQ(to_string(handshake_class::amplification), "Amplification");
}

TEST(Reach, ClassifiesByBehavior) {
  const reach prober{shared_model()};
  struct expectation {
    internet::behavior_kind kind;
    handshake_class cls;
  };
  const expectation cases[] = {
      {internet::behavior_kind::cloudflare, handshake_class::amplification},
      {internet::behavior_kind::standard_no_coalesce,
       handshake_class::multi_rtt},
      {internet::behavior_kind::retry_always, handshake_class::retry},
      {internet::behavior_kind::compliant_coalesce,
       handshake_class::one_rtt},
  };
  for (const auto& c : cases) {
    const auto* rec = find_quic(c.kind);
    if (rec == nullptr) {
      continue;  // not all kinds present in a 4k sample
    }
    const auto result = prober.probe(*rec, {.initial_size = 1362});
    EXPECT_EQ(result.cls, c.cls)
        << rec->domain << " / " << rec->chain_profile;
  }
}

TEST(Reach, RejectsNonQuicRecords) {
  const reach prober{shared_model()};
  for (const auto& rec : shared_model().records()) {
    if (!rec.serves_quic()) {
      EXPECT_THROW((void)prober.probe(rec, {}), config_error);
      break;
    }
  }
}

TEST(Reach, ProbeIsDeterministic) {
  const reach prober{shared_model()};
  const auto* rec = find_quic(internet::behavior_kind::cloudflare);
  ASSERT_NE(rec, nullptr);
  const auto a = prober.probe(*rec, {.initial_size = 1362});
  const auto b = prober.probe(*rec, {.initial_size = 1362});
  EXPECT_EQ(a.cls, b.cls);
  EXPECT_EQ(a.obs.bytes_received_total, b.obs.bytes_received_total);
}

TEST(QScanner, FetchesAndParsesChain) {
  const qscanner qs{shared_model()};
  const auto* rec = find_quic(internet::behavior_kind::standard_no_coalesce);
  ASSERT_NE(rec, nullptr);
  const auto fetched = qs.fetch(*rec);
  ASSERT_TRUE(fetched.ok);
  const auto chain =
      shared_model().chain_of(*rec, internet::fetch_protocol::quic);
  EXPECT_EQ(fetched.certificates.size(), chain.depth());
  EXPECT_EQ(fetched.chain_wire_size, chain.wire_size());
  // Leaf serial seen on the wire matches the chain we materialize.
  EXPECT_TRUE(qs.leaf_matches_https(shared_model(), *rec, fetched) ||
              rec->rotated_cert);
}

TEST(QScanner, DetectsRotation) {
  const qscanner qs{shared_model()};
  std::size_t checked = 0;
  std::size_t mismatches = 0;
  for (const auto& rec : shared_model().records()) {
    if (!rec.serves_quic() || !rec.rotated_cert) {
      continue;
    }
    const auto fetched = qs.fetch(rec);
    if (!fetched.ok) {
      continue;
    }
    ++checked;
    mismatches += qs.leaf_matches_https(shared_model(), rec, fetched) ? 0 : 1;
    if (checked >= 3) {
      break;
    }
  }
  EXPECT_GT(checked, 0u);
  EXPECT_EQ(mismatches, checked);  // rotated => leaf differs
}

TEST(Zmap, SilentProbeMeasuresResends) {
  const auto& m = shared_model();
  const auto pop = m.meta_pop(false);
  const internet::meta_host* deep = nullptr;
  for (const auto& host : pop) {
    if (host.serves_quic && host.retransmissions >= 7) {
      deep = &host;
      break;
    }
  }
  ASSERT_NE(deep, nullptr);
  const auto result = zmap_probe(m.meta_chain(*deep), m.meta_behavior(*deep),
                                 1252, net::seconds(400), 99);
  EXPECT_TRUE(result.responded);
  EXPECT_GT(result.amplification, 15.0);
  // PTO schedule: ~0.4 * (2^retx - 1) seconds of backscatter.
  EXPECT_GT(net::to_seconds(result.backscatter_duration), 40.0);
}

TEST(Telescope, GroupsSessionsByProviderAndScid) {
  net::simulator sim;
  telescope scope{sim, net::ipv4::of(203, 0, 113, 0)};
  scope.map_prefix(net::ipv4::of(104, 16, 1, 0), "Cloudflare");

  const auto sensor_a = scope.allocate_sensor();
  const auto sensor_b = scope.allocate_sensor();
  EXPECT_NE(sensor_a, sensor_b);

  // Hand-crafted backscatter: two datagrams of one session, one of
  // another, from a "Cloudflare" host.
  quic::packet p;
  p.type = quic::packet_type::initial;
  p.scid = bytes{1, 2, 3, 4};
  p.dcid = bytes{9};
  p.frames.push_back(quic::ack_frame{0});
  const net::endpoint_id server{net::ipv4::of(104, 16, 1, 77), 443};
  sim.send({server, sensor_a, quic::encode_datagram({p})});
  sim.send({server, sensor_a, quic::encode_datagram({p})});
  p.scid = bytes{5, 6, 7, 8};
  sim.send({server, sensor_b, quic::encode_datagram({p})});
  sim.run();

  const auto sessions = scope.sessions();
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(scope.datagrams_seen(), 3u);
  for (const auto& session : sessions) {
    EXPECT_EQ(session.provider, "Cloudflare");
    EXPECT_TRUE(session.datagrams == 1 || session.datagrams == 2);
  }
}

TEST(Telescope, UnmappedPrefixIsUnknown) {
  net::simulator sim;
  telescope scope{sim, net::ipv4::of(203, 0, 113, 0)};
  const auto sensor = scope.allocate_sensor();
  quic::packet p;
  p.type = quic::packet_type::initial;
  p.scid = bytes{1};
  p.frames.push_back(quic::ack_frame{0});
  sim.send({{net::ipv4::of(8, 8, 8, 8), 443}, sensor,
            quic::encode_datagram({p})});
  sim.run();
  const auto sessions = scope.sessions();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].provider, "unknown");
}

// Property sweep: classification is stable across Initial sizes for
// unambiguous behaviours (retry stays retry, cloudflare stays
// amplification).
class StableClassification
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StableClassification, CloudflareAlwaysAmplifies) {
  const reach prober{shared_model()};
  const auto* rec = find_quic(internet::behavior_kind::cloudflare);
  ASSERT_NE(rec, nullptr);
  const auto result = prober.probe(*rec, {.initial_size = GetParam()});
  EXPECT_EQ(result.cls, handshake_class::amplification);
  EXPECT_EQ(result.obs.padding_bytes_first_burst, 2462u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, StableClassification,
                         ::testing::Values(1200u, 1250u, 1302u, 1362u,
                                           1412u, 1472u));

}  // namespace
}  // namespace certquic::scan
