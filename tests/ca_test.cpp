// Unit tests for the CA ecosystem model.
#include <gtest/gtest.h>

#include <set>

#include "ca/ecosystem.hpp"
#include "util/errors.hpp"

namespace certquic::ca {
namespace {

class EcosystemTest : public ::testing::Test {
 protected:
  ecosystem eco_ = ecosystem::make();
};

TEST_F(EcosystemTest, SharesMatchPaperCoverage) {
  double quic_total = 0.0;
  double https_total = 0.0;
  for (const auto& p : eco_.profiles()) {
    quic_total += p.quic_share;
    https_total += p.https_share;
  }
  // Fig. 7: top-10 chains cover 96.5% of QUIC and 72% of HTTPS-only.
  EXPECT_NEAR(quic_total, 0.965, 0.002);
  EXPECT_NEAR(https_total, 0.719, 0.002);
}

TEST_F(EcosystemTest, CloudflareDominatesQuic) {
  const auto& cf = eco_.profile("cloudflare");
  EXPECT_NEAR(cf.quic_share, 0.6154, 1e-6);
  for (const auto& p : eco_.profiles()) {
    EXPECT_LE(p.quic_share, cf.quic_share);
  }
}

TEST_F(EcosystemTest, ProfileLookupThrowsOnUnknown) {
  EXPECT_THROW((void)eco_.profile("no-such-ca"), config_error);
}

TEST_F(EcosystemTest, CloudflareChainIsShortestAmongTopChains) {
  // §4.2: "the shortest chains ... are issued by Cloudflare".
  const auto cf_size = eco_.profile("cloudflare").parent_wire_size();
  for (const char* id : {"le-r3-x1cross", "sectigo", "cpanel", "gts-1c3"}) {
    EXPECT_LT(cf_size, eco_.profile(id).parent_wire_size()) << id;
  }
}

TEST_F(EcosystemTest, ParentSizesAreRealistic) {
  // Real-world sizes (±25%): CF ECC CA-3 ~1.1k; R3+X1 ~2.6-3.3k parents;
  // Sectigo+USERTrust ~3.0-3.9k.
  const auto cf = eco_.profile("cloudflare").parent_wire_size();
  EXPECT_GT(cf, 800u);
  EXPECT_LT(cf, 1500u);
  const auto le = eco_.profile("le-r3-x1cross").parent_wire_size();
  EXPECT_GT(le, 2300u);
  EXPECT_LT(le, 3600u);
  const auto sectigo = eco_.profile("sectigo").parent_wire_size();
  EXPECT_GT(sectigo, 2600u);
  EXPECT_LT(sectigo, 4200u);
}

TEST_F(EcosystemTest, EcdsaChainsSmallerThanRsaChains) {
  // §5 guidance rests on ECDSA chains being substantially smaller.
  EXPECT_LT(eco_.profile("le-e1-x2").parent_wire_size(),
            eco_.profile("le-r3-x1cross").parent_wire_size());
}

TEST_F(EcosystemTest, IssueProducesValidChain) {
  rng r{42};
  const auto chain = eco_.issue(eco_.profile("cloudflare"), "example.org", r);
  EXPECT_EQ(chain.depth(), 2u);
  EXPECT_EQ(chain.leaf().subject().common_name(), "example.org");
  EXPECT_EQ(chain.leaf().issuer().common_name(), "Cloudflare Inc ECC CA-3");
  EXPECT_FALSE(chain.leaf().is_ca());
  const auto sans = chain.leaf().subject_alt_names();
  ASSERT_GE(sans.size(), 1u);
  EXPECT_EQ(sans[0], "example.org");
}

TEST_F(EcosystemTest, IssueIsDeterministicInRng) {
  rng r1{7};
  rng r2{7};
  const auto a = eco_.issue(eco_.profile("le-r3"), "same.example", r1);
  const auto b = eco_.issue(eco_.profile("le-r3"), "same.example", r2);
  EXPECT_EQ(a.leaf().der(), b.leaf().der());
}

TEST_F(EcosystemTest, SharedParentsAreReusedAcrossIssuance) {
  rng r{1};
  const auto a = eco_.issue(eco_.profile("cloudflare"), "a.example", r);
  const auto b = eco_.issue(eco_.profile("cloudflare"), "b.example", r);
  EXPECT_EQ(a.parents()[0].get(), b.parents()[0].get());
  EXPECT_NE(a.leaf().der(), b.leaf().der());
}

TEST_F(EcosystemTest, SuperfluousAnchorRowIncludesTrustAnchor) {
  rng r{2};
  const auto chain =
      eco_.issue(eco_.profile("comodo-with-root"), "legacy.example", r);
  EXPECT_TRUE(chain.includes_trust_anchor());
  const auto clean = eco_.issue(eco_.profile("sectigo"), "ok.example", r);
  EXPECT_FALSE(clean.includes_trust_anchor());
}

TEST_F(EcosystemTest, CrossSignVariantLargerThanPlainR3) {
  // Rows 2/3 vs row "le-r3": including ISRG Root X1 adds ~1.3-1.6 kB.
  const auto with_cross = eco_.profile("le-r3-x1cross").parent_wire_size();
  const auto plain = eco_.profile("le-r3").parent_wire_size();
  EXPECT_GT(with_cross, plain + 1000);
}

TEST_F(EcosystemTest, OtherChainsCoverDepthRange) {
  rng r{3};
  std::set<std::size_t> depths;
  std::size_t max_size = 0;
  for (int i = 0; i < 300; ++i) {
    const auto chain = eco_.issue_other("tail" + std::to_string(i) + ".example",
                                        r, {.quic_flavor = false});
    depths.insert(chain.depth());
    max_size = std::max(max_size, chain.wire_size());
    EXPECT_GE(chain.depth(), 2u);
  }
  EXPECT_GE(depths.size(), 3u);
  // The HTTPS-only tail must reach well past the amplification limits.
  EXPECT_GT(max_size, 8000u);
}

TEST_F(EcosystemTest, QuicFlavorSkewsSmaller) {
  rng r{4};
  double quic_total = 0.0;
  double https_total = 0.0;
  constexpr int kN = 400;
  for (int i = 0; i < kN; ++i) {
    quic_total += static_cast<double>(
        eco_.issue_other("q.example", r, {.quic_flavor = true}).wire_size());
    https_total += static_cast<double>(
        eco_.issue_other("h.example", r, {.quic_flavor = false}).wire_size());
  }
  EXPECT_LT(quic_total / kN, https_total / kN);
}

TEST_F(EcosystemTest, CruiseLinerSanBytesDominate) {
  rng r{5};
  const auto chain = eco_.issue_cruise_liner("host.example", 120, r);
  const auto& leaf = chain.leaf();
  EXPECT_EQ(leaf.subject_alt_names().size(), 121u);
  const double share = static_cast<double>(leaf.san_bytes()) /
                       static_cast<double>(leaf.size());
  EXPECT_GT(share, 0.4);  // SANs dominate a 120-name certificate
}

TEST_F(EcosystemTest, CompressionDictionaryContainsParents) {
  const bytes dict = eco_.compression_dictionary();
  // Must contain at least the ~18 named parent certificates.
  EXPECT_GT(dict.size(), 10000u);
  EXPECT_LT(dict.size(), 64000u);
}

TEST_F(EcosystemTest, MakeIsDeterministic) {
  auto a = ecosystem::make(123);
  auto b = ecosystem::make(123);
  ASSERT_EQ(a.profiles().size(), b.profiles().size());
  for (std::size_t i = 0; i < a.profiles().size(); ++i) {
    EXPECT_EQ(a.profiles()[i].parent_wire_size(),
              b.profiles()[i].parent_wire_size());
  }
}

}  // namespace
}  // namespace certquic::ca
