// SPSC ring property tests: capacity rounding, wraparound at
// power-of-two boundaries, capacity-1 rings, full/empty backpressure,
// move-only payloads (including that a failed push leaves the value
// intact), destructor cleanup of unconsumed elements, and a two-thread
// producer/consumer soak asserting strict FIFO order with zero loss.
#include <cstddef>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "engine/ring.hpp"

namespace certquic::engine {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(spsc_ring<int>{0}.capacity(), 1u);
  EXPECT_EQ(spsc_ring<int>{1}.capacity(), 1u);
  EXPECT_EQ(spsc_ring<int>{2}.capacity(), 2u);
  EXPECT_EQ(spsc_ring<int>{3}.capacity(), 4u);
  EXPECT_EQ(spsc_ring<int>{64}.capacity(), 64u);
  EXPECT_EQ(spsc_ring<int>{65}.capacity(), 128u);
}

TEST(SpscRing, FifoAcrossManyWraparounds) {
  // 8-slot ring, 10'000 elements pushed/popped in lockstep bursts: the
  // cursors cross the power-of-two boundary over a thousand times and
  // every element must come back in insertion order.
  spsc_ring<std::size_t> ring{8};
  std::size_t pushed = 0;
  std::size_t popped = 0;
  while (popped < 10'000) {
    while (pushed < 10'000 && ring.try_push(std::size_t{pushed})) {
      ++pushed;
    }
    std::optional<std::size_t> item;
    while ((item = ring.try_pop())) {
      ASSERT_EQ(*item, popped);
      ++popped;
    }
  }
  EXPECT_EQ(pushed, 10'000u);
}

TEST(SpscRing, CapacityOneAlternatesFullEmpty) {
  spsc_ring<int> ring{1};
  ASSERT_EQ(ring.capacity(), 1u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(ring.try_push(int{i}));
    EXPECT_FALSE(ring.try_push(int{-1})) << "capacity-1 ring must be full";
    const auto item = ring.try_pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
    EXPECT_FALSE(ring.try_pop().has_value()) << "ring must be empty again";
  }
}

TEST(SpscRing, BackpressureOnFullReleasesAfterPop) {
  spsc_ring<int> ring{4};
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_push(int{i}));
  }
  EXPECT_EQ(ring.approx_size(), 4u);
  EXPECT_FALSE(ring.try_push(int{99}));  // full — backpressure
  ASSERT_EQ(ring.try_pop().value(), 0);
  EXPECT_TRUE(ring.try_push(int{99}));  // one slot freed
  EXPECT_FALSE(ring.try_push(int{100}));
  for (const int expected : {1, 2, 3, 99}) {
    EXPECT_EQ(ring.try_pop().value(), expected);
  }
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscRing, MoveOnlyPayloadsAndFailedPushPreservesValue) {
  spsc_ring<std::unique_ptr<int>> ring{2};
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(1)));
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(2)));

  // The contract that makes executor retry loops safe: a push that
  // returns false must not have moved the argument out.
  auto survivor = std::make_unique<int>(3);
  EXPECT_FALSE(ring.try_push(std::move(survivor)));
  ASSERT_NE(survivor, nullptr);
  EXPECT_EQ(*survivor, 3);

  EXPECT_EQ(*ring.try_pop().value(), 1);
  EXPECT_TRUE(ring.try_push(std::move(survivor)));
  EXPECT_EQ(survivor, nullptr);
  EXPECT_EQ(*ring.try_pop().value(), 2);
  EXPECT_EQ(*ring.try_pop().value(), 3);
}

TEST(SpscRing, DestructorReleasesUnconsumedElements) {
  // Leak-checked by ASan in sanitizer builds: the dtor must destroy the
  // elements the consumer never popped, including after wraparound.
  const auto leak_if_broken = std::make_shared<int>(7);
  {
    spsc_ring<std::shared_ptr<int>> ring{4};
    ASSERT_TRUE(ring.try_push(std::shared_ptr<int>{leak_if_broken}));
    ASSERT_EQ(ring.try_pop().value(), leak_if_broken);  // advance cursors
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(ring.try_push(std::shared_ptr<int>{leak_if_broken}));
    }
    EXPECT_EQ(leak_if_broken.use_count(), 4);
  }  // ring dies holding 3 live elements
  EXPECT_EQ(leak_if_broken.use_count(), 1);
}

TEST(SpscRing, TwoThreadSoakKeepsFifoOrderWithZeroLoss) {
  // One producer, one consumer, a deliberately tiny ring so both sides
  // hit the full/empty paths constantly. The consumer asserts strictly
  // ascending values — FIFO order and zero loss in one check. Runs
  // under TSan in verify.sh --sanitize.
  constexpr std::size_t kCount = 100'000;
  spsc_ring<std::size_t> ring{4};

  std::thread producer{[&] {
    for (std::size_t i = 0; i < kCount; ++i) {
      while (!ring.try_push(std::size_t{i})) {
        std::this_thread::yield();
      }
    }
  }};

  std::vector<std::size_t> gaps;
  std::size_t expected = 0;
  while (expected < kCount) {
    std::optional<std::size_t> item;
    while (!(item = ring.try_pop())) {
      std::this_thread::yield();
    }
    if (*item != expected) {
      gaps.push_back(*item);
    }
    ++expected;
  }
  producer.join();
  EXPECT_TRUE(gaps.empty()) << "first out-of-order value: " << gaps.front();
  EXPECT_FALSE(ring.try_pop().has_value()) << "ring must drain completely";
}

}  // namespace
}  // namespace certquic::engine
