// Unit and property tests for the util module.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/buffer.hpp"
#include "util/bytes.hpp"
#include "util/hex.hpp"
#include "util/rng.hpp"
#include "util/text_table.hpp"

namespace certquic {
namespace {

TEST(BufferWriter, WritesBigEndianIntegers) {
  buffer_writer w;
  w.u8(0x01);
  w.u16(0x0203);
  w.u24(0x040506);
  w.u32(0x0708090a);
  w.u64(0x0b0c0d0e0f101112ULL);
  const bytes out = std::move(w).take();
  const bytes expected = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06,
                          0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c,
                          0x0d, 0x0e, 0x0f, 0x10, 0x11, 0x12};
  EXPECT_EQ(out, expected);
}

TEST(BufferWriter, U24RejectsOverflow) {
  buffer_writer w;
  EXPECT_THROW(w.u24(1u << 24), codec_error);
  w.u24((1u << 24) - 1);
  EXPECT_EQ(w.size(), 3u);
}

TEST(BufferWriter, ReserveAndPatch) {
  buffer_writer w;
  const auto slot16 = w.reserve_u16();
  const auto slot24 = w.reserve_u24();
  w.u8(0xff);
  w.patch_u16(slot16, 0xabcd);
  w.patch_u24(slot24, 0x123456);
  const bytes out = std::move(w).take();
  const bytes expected = {0xab, 0xcd, 0x12, 0x34, 0x56, 0xff};
  EXPECT_EQ(out, expected);
}

TEST(BufferWriter, PatchOutOfRangeThrows) {
  buffer_writer w;
  EXPECT_THROW(w.patch_u16(0, 1), codec_error);
}

TEST(BufferReader, RoundTripsWriterOutput) {
  buffer_writer w;
  w.u8(0x7f);
  w.u16(0xbeef);
  w.u24(0xabcdef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.raw(std::string_view{"hi"});
  const bytes data = std::move(w).take();

  buffer_reader r{data};
  EXPECT_EQ(r.u8(), 0x7f);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u24(), 0xabcdefu);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  const auto tail = r.raw(2);
  EXPECT_EQ(tail[0], 'h');
  EXPECT_EQ(tail[1], 'i');
  EXPECT_TRUE(r.empty());
}

TEST(BufferReader, ThrowsOnUnderrun) {
  const bytes data = {0x01};
  buffer_reader r{data};
  EXPECT_THROW((void)r.u16(), codec_error);
  EXPECT_EQ(r.u8(), 0x01);
  EXPECT_THROW((void)r.u8(), codec_error);
}

TEST(BufferReader, PeekDoesNotConsume) {
  const bytes data = {0x42, 0x43};
  buffer_reader r{data};
  EXPECT_EQ(r.peek_u8(), 0x42);
  EXPECT_EQ(r.u8(), 0x42);
  EXPECT_EQ(r.remaining(), 1u);
}

TEST(Hex, RoundTrip) {
  const bytes data = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(data), "0001abff");
  EXPECT_EQ(from_hex("0001abff"), data);
  EXPECT_EQ(from_hex("0001ABFF"), data);
}

TEST(Hex, ColonSeparated) {
  const bytes data = {0x01, 0x74, 0xca, 0x7e};
  EXPECT_EQ(to_hex_colon(data), "01:74:ca:7e");
  EXPECT_EQ(to_hex_colon(bytes{}), "");
}

TEST(Hex, RejectsInvalidInput) {
  EXPECT_THROW(from_hex("abc"), codec_error);
  EXPECT_THROW(from_hex("zz"), codec_error);
}

TEST(Rng, DeterministicForSameSeed) {
  rng a{42};
  rng b{42};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  rng a{1};
  rng b{2};
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.next() == b.next() ? 1 : 0;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformStaysInRange) {
  rng r{7};
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
  EXPECT_THROW((void)r.uniform(5, 4), config_error);
}

TEST(Rng, Uniform01MeanIsCentered) {
  rng r{9};
  double total = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double v = r.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    total += v;
  }
  EXPECT_NEAR(total / kN, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsExtremes) {
  rng r{3};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, NormalMatchesMoments) {
  rng r{11};
  double total = 0.0;
  double total_sq = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double v = r.normal(5.0, 2.0);
    total += v;
    total_sq += v * v;
  }
  const double mean = total / kN;
  const double var = total_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, ParetoStaysWithinBounds) {
  rng r{13};
  for (int i = 0; i < 10000; ++i) {
    const double v = r.pareto(1.0, 100.0, 1.2);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 100.0 + 1e-9);
  }
  EXPECT_THROW((void)r.pareto(0.0, 10.0, 1.0), config_error);
}

TEST(Rng, WeightedIndexMatchesWeights) {
  rng r{17};
  const double weights[] = {1.0, 3.0, 0.0, 6.0};
  int counts[4] = {0, 0, 0, 0};
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    ++counts[r.weighted_index(weights)];
  }
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kN, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / kN, 0.3, 0.015);
  EXPECT_NEAR(static_cast<double>(counts[3]) / kN, 0.6, 0.015);
}

TEST(Rng, WeightedIndexRejectsDegenerateInput) {
  rng r{19};
  EXPECT_THROW((void)r.weighted_index({}), config_error);
  const double zeros[] = {0.0, 0.0};
  EXPECT_THROW((void)r.weighted_index(zeros), config_error);
}

TEST(Rng, AsciiLabelRespectsLengthAndAlphabet) {
  rng r{23};
  for (int i = 0; i < 200; ++i) {
    const auto label = r.ascii_label(3, 12);
    EXPECT_GE(label.size(), 3u);
    EXPECT_LE(label.size(), 12u);
    for (const char c : label) {
      EXPECT_TRUE(c >= 'a' && c <= 'z');
    }
  }
}

TEST(Rng, ForkedStreamsAreIndependent) {
  rng parent{31};
  rng child_a = parent.fork(1);
  rng child_b = parent.fork(2);
  EXPECT_NE(child_a.next(), child_b.next());
}

TEST(Rng, FillCoversWholeSpan) {
  rng r{37};
  bytes buf(33, 0);
  r.fill(buf);
  // A 33-byte random buffer is all-zero with probability ~2^-264.
  EXPECT_TRUE(std::any_of(buf.begin(), buf.end(),
                          [](std::uint8_t b) { return b != 0; }));
}

TEST(TextTable, AlignsColumns) {
  text_table t{{"name", "value"}};
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name    value"), std::string::npos);
  EXPECT_NE(out.find("longer  22"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, HandlesRaggedRows) {
  text_table t{{"a"}};
  t.add_row({"x", "extra"});
  const std::string out = t.render();
  EXPECT_NE(out.find("extra"), std::string::npos);
}

TEST(Format, FixedAndPercent) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(pct(0.6154), "61.54%");
  EXPECT_EQ(pct(1.0, 0), "100%");
}

TEST(Format, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(272000), "272,000");
  EXPECT_EQ(with_commas(-1234567), "-1,234,567");
}

// Property sweep: round-trip every integer width over random values.
class BufferRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BufferRoundTrip, AllWidths) {
  const std::uint64_t v = GetParam();
  buffer_writer w;
  w.u8(static_cast<std::uint8_t>(v));
  w.u16(static_cast<std::uint16_t>(v));
  w.u24(static_cast<std::uint32_t>(v & 0xffffff));
  w.u32(static_cast<std::uint32_t>(v));
  w.u64(v);
  const bytes data = std::move(w).take();
  buffer_reader r{data};
  EXPECT_EQ(r.u8(), static_cast<std::uint8_t>(v));
  EXPECT_EQ(r.u16(), static_cast<std::uint16_t>(v));
  EXPECT_EQ(r.u24(), v & 0xffffff);
  EXPECT_EQ(r.u32(), static_cast<std::uint32_t>(v));
  EXPECT_EQ(r.u64(), v);
}

INSTANTIATE_TEST_SUITE_P(Values, BufferRoundTrip,
                         ::testing::Values(0ULL, 1ULL, 0x7fULL, 0x80ULL,
                                           0xffULL, 0x100ULL, 0xffffULL,
                                           0x10000ULL, 0xffffffULL,
                                           0x1000000ULL, 0xffffffffULL,
                                           0x100000000ULL,
                                           0xfedcba9876543210ULL,
                                           0xffffffffffffffffULL));

}  // namespace
}  // namespace certquic
