// Out-of-core pipeline tests: the sharded spill → merge path must
// aggregate bit-identically to the in-memory path at 1, 2 and 8
// threads, spill files must carry a validating record-count footer
// (truncation at a line boundary, a missing footer or a count mismatch
// all fail replay loudly), replay must reject wrong-plan/wrong-model
// streams, and population synthesis must be thread-count-invariant.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/outofcore_study.hpp"
#include "engine/spill.hpp"
#include "util/rss_meter.hpp"

namespace certquic {
namespace {

const internet::model& shared_model() {
  static const internet::model m =
      internet::model::generate({.domains = 2000, .seed = 42});
  return m;
}

std::filesystem::path temp_file(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

std::vector<std::string> read_lines(const std::filesystem::path& path) {
  std::ifstream in{path};
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  return lines;
}

void write_lines(const std::filesystem::path& path,
                 const std::vector<std::string>& lines) {
  std::ofstream out{path, std::ios::trunc};
  for (const std::string& line : lines) {
    out << line << '\n';
  }
}

/// Spills a small two-variant plan and returns (path, plan, record
/// count). The file ends with the v2 footer.
std::size_t spill_fixture(const std::filesystem::path& path,
                          engine::probe_plan& plan) {
  plan.max_services = 20;
  plan.sweep_initial_sizes({1200, 1362});
  engine::spill_sink sink{path.string()};
  engine::executor{shared_model(), engine::options::serial()}.run(plan,
                                                                  sink);
  return sink.records_written();
}

class counting_sink final : public engine::observation_sink {
 public:
  void on_record(const engine::probe_record&) override { ++records; }
  std::size_t records = 0;
};

TEST(OutofcoreStudy, SpillMergeMatchesInMemoryAcrossThreadCounts) {
  const auto dir = temp_file("certquic_outofcore_study_test");
  std::uint64_t first_digest = 0;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    core::outofcore_options opt;
    opt.max_services = 150;
    opt.shards = 4;
    opt.spill_dir = dir.string();
    const auto result = core::run_outofcore_study(
        shared_model(), opt, {.threads = threads});
    ASSERT_GT(result.spill.records, 0u);
    EXPECT_EQ(result.spill.records, result.sampled);
    EXPECT_TRUE(result.compared);
    EXPECT_TRUE(result.identical)
        << "spill-merge aggregate diverged at " << threads << " threads";
    EXPECT_EQ(result.shard_records.size(), result.shards);
    if (first_digest == 0) {
      first_digest = result.spill.stream_digest;
    } else {
      EXPECT_EQ(result.spill.stream_digest, first_digest)
          << "stream digest changed with " << threads << " threads";
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(OutofcoreStudy, ShardCountDoesNotChangeAggregates) {
  const auto dir = temp_file("certquic_outofcore_shards_test");
  std::uint64_t digest1 = 0, digest7 = 0;
  for (const std::size_t shards : {1u, 7u}) {
    core::outofcore_options opt;
    opt.max_services = 120;
    opt.shards = shards;
    opt.spill_dir = dir.string();
    opt.compare_in_memory = false;
    const auto result =
        core::run_outofcore_study(shared_model(), opt, {.threads = 2});
    (shards == 1 ? digest1 : digest7) = result.spill.stream_digest;
    EXPECT_EQ(result.shards, shards);
  }
  EXPECT_EQ(digest1, digest7);
  std::filesystem::remove_all(dir);
}

TEST(OutofcoreStudy, KeepSpillsLeavesValidatableShards) {
  const auto dir = temp_file("certquic_outofcore_keep_test");
  core::outofcore_options opt;
  opt.max_services = 60;
  opt.shards = 3;
  opt.spill_dir = dir.string();
  opt.keep_spills = true;
  opt.compare_in_memory = false;
  const auto result = core::run_outofcore_study(shared_model(), opt);
  ASSERT_EQ(result.spill_paths.size(), result.shards);

  engine::probe_variant variant;
  const auto plan =
      engine::probe_plan::single(std::move(variant), opt.max_services);
  counting_sink counter;
  const std::size_t merged = engine::spill_merge{shared_model(), plan}
                                 .replay(result.spill_paths, counter);
  EXPECT_EQ(merged, result.spill.records);
  EXPECT_EQ(counter.records, result.spill.records);
  std::filesystem::remove_all(dir);
}

TEST(SpillFooter, TruncationAtLineBoundaryThrows) {
  const auto path = temp_file("certquic_spill_truncated.txt");
  engine::probe_plan plan;
  const std::size_t records = spill_fixture(path, plan);
  ASSERT_GT(records, 2u);

  // Drop the footer AND the last record: every remaining line parses
  // cleanly, which is exactly the silent-data-loss case the footer
  // exists to catch.
  auto lines = read_lines(path);
  lines.resize(lines.size() - 2);
  write_lines(path, lines);

  counting_sink sink;
  const engine::spill_reader reader{shared_model(), plan};
  EXPECT_THROW((void)reader.replay(path.string(), sink), codec_error);
  std::filesystem::remove(path);
}

TEST(SpillFooter, MissingFooterThrows) {
  const auto path = temp_file("certquic_spill_nofooter.txt");
  engine::probe_plan plan;
  spill_fixture(path, plan);
  auto lines = read_lines(path);
  lines.pop_back();  // just the footer; all records intact
  write_lines(path, lines);

  counting_sink sink;
  const engine::spill_reader reader{shared_model(), plan};
  EXPECT_THROW((void)reader.replay(path.string(), sink), codec_error);
  std::filesystem::remove(path);
}

TEST(SpillFooter, CountMismatchThrows) {
  const auto path = temp_file("certquic_spill_badcount.txt");
  engine::probe_plan plan;
  const std::size_t records = spill_fixture(path, plan);
  auto lines = read_lines(path);
  lines.back() = "certquic-spill end " + std::to_string(records + 3);
  write_lines(path, lines);

  counting_sink sink;
  const engine::spill_reader reader{shared_model(), plan};
  EXPECT_THROW((void)reader.replay(path.string(), sink), codec_error);
  std::filesystem::remove(path);
}

TEST(SpillFooter, EmptySampleRoundTrips) {
  const auto path = temp_file("certquic_spill_empty.txt");
  const auto plan = engine::probe_plan::single(engine::probe_variant{}, 5);
  {
    engine::spill_sink sink{path.string()};
    const std::vector<std::uint32_t> nothing;
    engine::executor{shared_model(), engine::options::serial()}.run(
        plan, nothing, sink);
    EXPECT_EQ(sink.records_written(), 0u);
  }
  counting_sink sink;
  const engine::spill_reader reader{shared_model(), plan};
  EXPECT_EQ(reader.replay(path.string(), sink), 0u);
  EXPECT_EQ(sink.records, 0u);
  std::filesystem::remove(path);
}

TEST(SpillProbe, ClassifiesCompleteTruncatedMissing) {
  const auto path = temp_file("certquic_spill_probe.txt");
  engine::probe_plan plan;
  const std::size_t records = spill_fixture(path, plan);

  auto probe = engine::spill_probe(path.string());
  EXPECT_EQ(probe.state, engine::spill_state::complete);
  EXPECT_TRUE(probe.complete());
  EXPECT_EQ(probe.records, records);
  EXPECT_EQ(probe.variants, plan.variants.size());
  EXPECT_EQ(probe.sampled * probe.variants, records);

  // Footer dropped: every record is still salvageable, but the file
  // must not classify as complete.
  auto lines = read_lines(path);
  lines.pop_back();
  write_lines(path, lines);
  probe = engine::spill_probe(path.string());
  EXPECT_EQ(probe.state, engine::spill_state::truncated);
  EXPECT_FALSE(probe.complete());
  EXPECT_EQ(probe.records, records);

  // Cut mid-record: only the records before the tear count.
  lines.resize(3);  // header + two records
  write_lines(path, lines);
  std::ofstream{path, std::ios::app} << "torn-record 17";
  probe = engine::spill_probe(path.string());
  EXPECT_EQ(probe.state, engine::spill_state::truncated);
  EXPECT_EQ(probe.records, 2u);
  std::filesystem::remove(path);

  probe = engine::spill_probe(path.string());
  EXPECT_EQ(probe.state, engine::spill_state::missing);
  EXPECT_EQ(probe.records, 0u);

  EXPECT_EQ(engine::to_string(engine::spill_state::complete), "complete");
  EXPECT_EQ(engine::to_string(engine::spill_state::truncated), "truncated");
  EXPECT_EQ(engine::to_string(engine::spill_state::missing), "missing");
}

TEST(SpillProbe, MergeErrorNamesShardStates) {
  const auto good = temp_file("certquic_spill_probe_good.txt");
  const auto bad = temp_file("certquic_spill_probe_bad.txt");
  engine::probe_plan plan;
  spill_fixture(good, plan);
  {
    engine::probe_plan plan_again;
    spill_fixture(bad, plan_again);
  }
  auto lines = read_lines(bad);
  lines.pop_back();  // footer gone: truncated
  write_lines(bad, lines);

  counting_sink sink;
  const engine::spill_merge merge{shared_model(), plan};
  try {
    (void)merge.replay({good.string(), bad.string()}, sink);
    FAIL() << "replay of a truncated shard must throw";
  } catch (const codec_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(good.string() + "=complete"), std::string::npos)
        << what;
    EXPECT_NE(what.find(bad.string() + "=truncated"), std::string::npos)
        << what;
  }
  std::filesystem::remove(good);
  std::filesystem::remove(bad);
}

TEST(SpillLifecycle, RecordWithoutBeginThrows) {
  const auto path = temp_file("certquic_spill_nolifecycle.txt");
  engine::spill_sink sink{path.string()};
  const auto plan = engine::probe_plan::single(engine::probe_variant{}, 1);
  const internet::service_record& rec = shared_model().records().front();
  const scan::probe_result result{};
  EXPECT_THROW(sink.on_record(engine::probe_record{
                   .service_index = 0,
                   .variant_index = 0,
                   .record = rec,
                   .variant = plan.variants[0],
                   .result = result,
               }),
               config_error);
  std::filesystem::remove(path);
}

TEST(SpillReplay, WrongPlanRejected) {
  const auto path = temp_file("certquic_spill_wrongplan.txt");
  engine::probe_plan two_variant_plan;
  spill_fixture(path, two_variant_plan);  // spilled under two variants

  const auto one_variant_plan =
      engine::probe_plan::single(engine::probe_variant{}, 20);
  counting_sink sink;
  const engine::spill_reader reader{shared_model(), one_variant_plan};
  EXPECT_THROW((void)reader.replay(path.string(), sink), config_error);
  std::filesystem::remove(path);
}

TEST(SpillReplay, WrongModelRejected) {
  const auto path = temp_file("certquic_spill_wrongmodel.txt");
  engine::probe_plan plan;
  spill_fixture(path, plan);  // service indices from the 2000-domain model

  const auto tiny = internet::model::generate({.domains = 20, .seed = 42});
  counting_sink sink;
  const engine::spill_reader reader{tiny, plan};
  EXPECT_THROW((void)reader.replay(path.string(), sink), config_error);
  std::filesystem::remove(path);
}

TEST(SpillMerge, OutOfPlanOrderRejected) {
  const auto path = temp_file("certquic_spill_outoforder.txt");
  engine::probe_plan plan;
  const std::size_t records = spill_fixture(path, plan);
  ASSERT_GT(records, 2u);

  // Move the last record (variant 1) to the front of the record block:
  // the stream now goes 1, 0, ..., which no plan-ordered run produces.
  auto lines = read_lines(path);
  const std::string last_record = lines[lines.size() - 2];
  lines.erase(lines.end() - 2);
  lines.insert(lines.begin() + 1, last_record);
  write_lines(path, lines);

  counting_sink sink;
  const engine::spill_merge merge{shared_model(), plan};
  EXPECT_THROW((void)merge.replay({path.string()}, sink), codec_error);
  std::filesystem::remove(path);
}

TEST(ModelSynthesis, ParallelIdenticalToSerial) {
  const internet::config base{.domains = 5000, .seed = 99};
  internet::config serial = base;
  serial.synth_threads = 1;
  internet::config parallel = base;
  parallel.synth_threads = 8;
  const auto a = internet::model::generate(serial);
  const auto b = internet::model::generate(parallel);
  ASSERT_EQ(a.records().size(), b.records().size());
  for (std::size_t i = 0; i < a.records().size(); ++i) {
    const auto& ra = a.records()[i];
    const auto& rb = b.records()[i];
    ASSERT_EQ(ra.seed, rb.seed) << "record " << i;
    ASSERT_EQ(ra.domain, rb.domain) << "record " << i;
    ASSERT_EQ(ra.svc, rb.svc) << "record " << i;
    ASSERT_EQ(ra.chain_profile, rb.chain_profile) << "record " << i;
    ASSERT_EQ(ra.behavior, rb.behavior) << "record " << i;
    ASSERT_EQ(ra.redirect_to, rb.redirect_to) << "record " << i;
  }
}

TEST(EngineOptions, ResolvedChunkIsSingleSourced) {
  engine::options opt;
  opt.chunk = 0;
  EXPECT_EQ(opt.resolved_chunk(), 64u);
  opt.chunk = 17;
  EXPECT_EQ(opt.resolved_chunk(), 17u);
}

TEST(RssMeter, PhasesReportIndependentPeaks) {
  if (rss_meter::current_kb() == 0) {
    GTEST_SKIP() << "RSS not measurable on this platform";
  }
  std::size_t small_peak = 0;
  std::size_t big_peak = 0;
  {
    rss_meter::phase phase;
    small_peak = phase.peak_kb();
  }
  {
    rss_meter::phase phase;
    std::vector<char> ballast(64 << 20, 1);
    big_peak = phase.peak_kb();
    EXPECT_GT(ballast.size(), 0u);
  }
  EXPECT_GT(big_peak, 0u);
  EXPECT_GT(big_peak, small_peak);
  EXPECT_GE(big_peak, small_peak + (48u << 10));  // the 64 MB ballast
}

}  // namespace
}  // namespace certquic
