// Seeded round-trip property tests for the three wire codecs that every
// other layer builds on: QUIC varints, DER TLVs and the LZ engine behind
// RFC 8879 certificate compression. All randomness flows through the
// project rng with fixed seeds (tests/support/property.hpp), so a failure
// reproduces bit-for-bit from its iteration index.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <iterator>

#include "asn1/der.hpp"
#include "ca/ecosystem.hpp"
#include "compress/lz.hpp"
#include "property.hpp"
#include "quic/varint.hpp"
#include "util/buffer.hpp"
#include "util/errors.hpp"
#include "x509/key.hpp"
#include "x509/oids.hpp"

namespace certquic {
namespace {

using test::for_each_iteration;

// --- quic::varint -----------------------------------------------------

TEST(VarintProperty, RoundTripAcrossAllBands) {
  for_each_iteration([](rng& r, std::size_t i) {
    const std::uint64_t v = test::gen_varint_value(r);
    buffer_writer w;
    quic::write_varint(w, v);
    const bytes encoded = std::move(w).take();
    ASSERT_EQ(encoded.size(), quic::varint_size(v)) << "iteration " << i;
    buffer_reader rd(encoded);
    EXPECT_EQ(quic::read_varint(rd), v) << "iteration " << i;
    EXPECT_TRUE(rd.empty()) << "iteration " << i;
  });
}

TEST(VarintProperty, EncodingIsMinimalAtBandEdges) {
  // Band edges are where an off-by-one picks the wrong prefix.
  const std::uint64_t edges[] = {0,     63,         64,         16383,
                                 16384, 1073741823, 1073741824, quic::kVarintMax};
  const std::size_t sizes[] = {1, 1, 2, 2, 4, 4, 8, 8};
  for (std::size_t i = 0; i < std::size(edges); ++i) {
    EXPECT_EQ(quic::varint_size(edges[i]), sizes[i]) << "edge " << edges[i];
  }
  EXPECT_THROW((void)quic::varint_size(quic::kVarintMax + 1), codec_error);
}

TEST(VarintProperty, ConcatenatedStreamRoundTrips) {
  for_each_iteration(
      [](rng& r, std::size_t) {
        std::vector<std::uint64_t> values(r.uniform(1, 32));
        buffer_writer w;
        for (auto& v : values) {
          v = test::gen_varint_value(r);
          quic::write_varint(w, v);
        }
        const bytes encoded = std::move(w).take();
        buffer_reader rd(encoded);
        for (const auto v : values) {
          EXPECT_EQ(quic::read_varint(rd), v);
        }
        EXPECT_TRUE(rd.empty());
      },
      64);
}

// --- asn1::der --------------------------------------------------------

TEST(DerProperty, IntegerRoundTrip) {
  for_each_iteration([](rng& r, std::size_t i) {
    const std::int64_t v = test::gen_int64(r);
    const bytes encoded = asn1::encode_integer(v);
    buffer_reader rd(encoded);
    const asn1::tlv t = asn1::read_tlv(rd);
    ASSERT_TRUE(t.is(asn1::tag::integer)) << "iteration " << i;
    EXPECT_EQ(asn1::decode_integer(t), v) << "iteration " << i << " v=" << v;
    EXPECT_TRUE(rd.empty());
  });
}

TEST(DerProperty, IntegerEdgeCases) {
  // Deterministic edges the random generator cannot or rarely hits —
  // most importantly INT64_MIN, whose magnitude overflows a naive -v.
  const std::int64_t edges[] = {0,    1,          -1,
                                127,  -128,       128,
                                -129, INT64_MAX,  INT64_MIN};
  for (const std::int64_t v : edges) {
    const bytes encoded = asn1::encode_integer(v);
    buffer_reader rd(encoded);
    const asn1::tlv t = asn1::read_tlv(rd);
    ASSERT_TRUE(t.is(asn1::tag::integer)) << "v=" << v;
    EXPECT_EQ(asn1::decode_integer(t), v) << "v=" << v;
    EXPECT_TRUE(rd.empty()) << "v=" << v;
  }
}

TEST(DerProperty, OidRoundTrip) {
  for_each_iteration([](rng& r, std::size_t i) {
    const asn1::oid arcs = test::gen_oid(r);
    const bytes encoded = asn1::encode_oid(arcs);
    buffer_reader rd(encoded);
    const asn1::tlv t = asn1::read_tlv(rd);
    ASSERT_TRUE(t.is(asn1::tag::object_identifier)) << "iteration " << i;
    EXPECT_EQ(asn1::decode_oid(t), arcs) << "iteration " << i;
  });
}

TEST(DerProperty, NestedSequenceRoundTrips) {
  // SEQUENCE { INTEGER, OCTET STRING, SEQUENCE { PrintableString } }
  // with random payload sizes crossing the 1-byte/long-form length edge.
  for_each_iteration([](rng& r, std::size_t i) {
    const std::int64_t num = test::gen_int64(r);
    const bytes blob = test::gen_bytes(r, 0, 300);
    const std::string text = test::gen_printable(r, 0, 200);

    const bytes inner =
        asn1::sequence({bytes_view(asn1::encode_printable_string(text))});
    const bytes encoded = asn1::sequence({
        bytes_view(asn1::encode_integer(num)),
        bytes_view(asn1::encode_octet_string(blob)),
        bytes_view(inner),
    });

    buffer_reader rd(encoded);
    const asn1::tlv outer = asn1::read_tlv(rd);
    ASSERT_TRUE(outer.is(asn1::tag::sequence)) << "iteration " << i;
    const auto kids = asn1::children(outer);
    ASSERT_EQ(kids.size(), 3u) << "iteration " << i;
    EXPECT_EQ(asn1::decode_integer(kids[0]), num);
    EXPECT_TRUE(kids[1].is(asn1::tag::octet_string));
    EXPECT_EQ(bytes(kids[1].content.begin(), kids[1].content.end()), blob);
    const auto grandkids = asn1::children(kids[2]);
    ASSERT_EQ(grandkids.size(), 1u);
    EXPECT_EQ(std::string(grandkids[0].content.begin(),
                          grandkids[0].content.end()),
              text);
  });
}

TEST(DerProperty, BigIntegerPreservesMagnitude) {
  for_each_iteration([](rng& r, std::size_t i) {
    bytes magnitude = test::gen_bytes(r, 1, 64);
    const bytes encoded = asn1::encode_big_integer(magnitude);
    buffer_reader rd(encoded);
    const asn1::tlv t = asn1::read_tlv(rd);
    ASSERT_TRUE(t.is(asn1::tag::integer)) << "iteration " << i;
    // Decode manually: strip the sign-guard zero octet if present, then
    // compare against the magnitude with its own leading zeros stripped.
    bytes_view content = t.content;
    ASSERT_FALSE(content.empty());
    if (content[0] == 0x00 && content.size() > 1) {
      content = content.subspan(1);
    }
    std::size_t lead = 0;
    while (lead + 1 < magnitude.size() && magnitude[lead] == 0x00) {
      ++lead;
    }
    const bytes expect(magnitude.begin() + static_cast<std::ptrdiff_t>(lead),
                       magnitude.end());
    EXPECT_EQ(bytes(content.begin(), content.end()), expect)
        << "iteration " << i;
  });
}

// --- compress::lz -----------------------------------------------------

TEST(LzProperty, RoundTripWithoutDictionary) {
  for_each_iteration([](rng& r, std::size_t i) {
    const bytes input = test::gen_compressible_bytes(r, 0, 2048);
    const bytes packed = compress::lz_compress(input, {});
    EXPECT_EQ(compress::lz_decompress(packed, {}), input)
        << "iteration " << i << " len=" << input.size();
  });
}

TEST(LzProperty, RoundTripWithSharedDictionary) {
  for_each_iteration(
      [](rng& r, std::size_t i) {
        const bytes dict = test::gen_compressible_bytes(r, 64, 1024);
        // Build input that borrows slices of the dictionary so distances
        // reaching back past the input start are exercised.
        bytes input;
        const std::size_t pieces = r.uniform(1, 6);
        for (std::size_t p = 0; p < pieces; ++p) {
          if (r.chance(0.6) && !dict.empty()) {
            const std::size_t start = r.uniform(0, dict.size() - 1);
            const std::size_t len = r.uniform(
                1, std::min<std::size_t>(dict.size() - start, 128));
            input.insert(input.end(),
                         dict.begin() + static_cast<std::ptrdiff_t>(start),
                         dict.begin() + static_cast<std::ptrdiff_t>(start + len));
          } else {
            const bytes lit = test::gen_bytes(r, 1, 64);
            append(input, lit);
          }
        }
        const bytes packed = compress::lz_compress(input, dict);
        EXPECT_EQ(compress::lz_decompress(packed, dict), input)
            << "iteration " << i;
        // Dictionary hits must beat dictionary-less compression or tie.
        const bytes packed_nodict = compress::lz_compress(input, {});
        EXPECT_LE(packed.size(), packed_nodict.size() + 8) << "iteration " << i;
      },
      128);
}

TEST(LzProperty, IncompressibleInputSurvives) {
  for_each_iteration(
      [](rng& r, std::size_t i) {
        const bytes input = test::gen_bytes(r, 0, 512);  // uniform noise
        const bytes packed = compress::lz_compress(input, {});
        EXPECT_EQ(compress::lz_decompress(packed, {}), input)
            << "iteration " << i;
      },
      128);
}

TEST(LzProperty, LebVarintRoundTrip) {
  for_each_iteration([](rng& r, std::size_t) {
    const std::uint64_t v = r.next();
    bytes out;
    compress::write_varint(out, v);
    std::size_t pos = 0;
    EXPECT_EQ(compress::read_varint(out, pos), v);
    EXPECT_EQ(pos, out.size());
  });
}

// --- x509 post-quantum encodings --------------------------------------

TEST(PqcProperty, MlDsaSpkiDerRoundTripsAtFipsSizes) {
  // The SPKI must parse as SEQUENCE { AlgorithmIdentifier, BIT STRING }
  // with the CSOR OID and the exact FIPS 204 public-key length (+1 for
  // the unused-bits octet) — the sizes the whole what-if study rests on.
  struct mldsa_case {
    x509::key_algorithm alg;
    const asn1::oid& oid;
    std::size_t public_key_bytes;
  };
  const mldsa_case cases[] = {
      {x509::key_algorithm::mldsa_44, x509::oids::ml_dsa_44, 1312},
      {x509::key_algorithm::mldsa_65, x509::oids::ml_dsa_65, 1952},
      {x509::key_algorithm::mldsa_87, x509::oids::ml_dsa_87, 2592},
  };
  for_each_iteration(
      [&](rng& r, std::size_t i) {
        for (const auto& c : cases) {
          const bytes spki = x509::encode_spki(c.alg, r);
          buffer_reader rd(spki);
          const asn1::tlv outer = asn1::read_tlv(rd);
          ASSERT_TRUE(outer.is(asn1::tag::sequence)) << "iteration " << i;
          EXPECT_TRUE(rd.empty());
          const auto kids = asn1::children(outer);
          ASSERT_EQ(kids.size(), 2u);
          const auto alg_kids = asn1::children(kids[0]);
          ASSERT_EQ(alg_kids.size(), 1u);  // absent parameters
          EXPECT_EQ(asn1::decode_oid(alg_kids[0]), c.oid);
          ASSERT_TRUE(kids[1].is(asn1::tag::bit_string));
          EXPECT_EQ(kids[1].content.size(), c.public_key_bytes + 1);
        }
      },
      16);
}

TEST(PqcProperty, MlDsaSignatureValueHasFipsSize) {
  struct sig_case {
    x509::signature_algorithm alg;
    std::size_t signature_bytes;
  };
  const sig_case cases[] = {
      {x509::signature_algorithm::mldsa_44, 2420},
      {x509::signature_algorithm::mldsa_65, 3309},
      {x509::signature_algorithm::mldsa_87, 4627},
  };
  for_each_iteration(
      [&](rng& r, std::size_t i) {
        for (const auto& c : cases) {
          const bytes sig = x509::encode_signature_value(c.alg, r);
          buffer_reader rd(sig);
          const asn1::tlv t = asn1::read_tlv(rd);
          ASSERT_TRUE(t.is(asn1::tag::bit_string)) << "iteration " << i;
          EXPECT_EQ(t.content.size(), c.signature_bytes + 1);
          EXPECT_TRUE(rd.empty());
        }
      },
      16);
}

TEST(PqcProperty, ChainSizesGrowStrictlyWithProfile) {
  // For any named hierarchy and any issuance randomness, the three
  // chain profiles must order strictly: classical < pqc_leaf (ML-DSA
  // leaf key dwarfs any classical SPKI) < pqc_full (parents and
  // signatures go post-quantum too).
  const auto eco = ca::ecosystem::make(0x77);
  for_each_iteration(
      [&](rng& r, std::size_t i) {
        const auto& profile = eco.profiles()[static_cast<std::size_t>(
            r.uniform(0, eco.profiles().size() - 1))];
        const std::string domain = r.ascii_label(4, 12) + ".example";
        const std::uint64_t seed = r.next();
        std::array<std::size_t, 3> sizes{};
        for (std::size_t p = 0; p < 3; ++p) {
          rng issue_rng{seed};
          sizes[p] = eco.issue(profile, domain, issue_rng,
                               x509::all_pq_profiles()[p])
                         .wire_size();
        }
        EXPECT_LT(sizes[0], sizes[1]) << "iteration " << i << " "
                                      << profile.id;
        EXPECT_LT(sizes[1], sizes[2]) << "iteration " << i << " "
                                      << profile.id;
      },
      64);
}

TEST(PqcProperty, CruiseLinerChainSizesGrowStrictlyWithProfile) {
  // The third profile-aware generator: SAN-heavy shared-hosting leaves
  // must order strictly too, across the whole Pareto SAN range.
  const auto eco = ca::ecosystem::make(0x79);
  for_each_iteration(
      [&](rng& r, std::size_t i) {
        const std::string domain = r.ascii_label(4, 12) + ".example";
        const std::size_t sans = r.uniform(8, 220);
        const std::uint64_t seed = r.next();
        std::array<std::size_t, 3> sizes{};
        for (std::size_t p = 0; p < 3; ++p) {
          rng issue_rng{seed};
          sizes[p] = eco.issue_cruise_liner(domain, sans, issue_rng,
                                            x509::all_pq_profiles()[p])
                         .wire_size();
        }
        EXPECT_LT(sizes[0], sizes[1]) << "iteration " << i << " sans=" << sans;
        EXPECT_LT(sizes[1], sizes[2]) << "iteration " << i << " sans=" << sans;
      },
      32);
}

TEST(PqcProperty, TailChainSizesGrowStrictlyWithProfile) {
  // Same law for the long-tail generator: identical draws across
  // profiles keep depth and SAN structure fixed, so sizes order
  // strictly per issuance.
  const auto eco = ca::ecosystem::make(0x78);
  for_each_iteration(
      [&](rng& r, std::size_t i) {
        const std::string domain = r.ascii_label(4, 12) + ".example";
        const bool quic_flavor = r.chance(0.5);
        const std::uint64_t seed = r.next();
        std::array<std::size_t, 3> sizes{};
        for (std::size_t p = 0; p < 3; ++p) {
          rng issue_rng{seed};
          sizes[p] = eco.issue_other(domain, issue_rng,
                                     {.quic_flavor = quic_flavor,
                                      .pq = x509::all_pq_profiles()[p]})
                         .wire_size();
        }
        EXPECT_LT(sizes[0], sizes[1]) << "iteration " << i;
        EXPECT_LT(sizes[1], sizes[2]) << "iteration " << i;
      },
      64);
}

}  // namespace
}  // namespace certquic
