// Tier-1 suite for the PQC chain-profile axis: the study must be
// bit-identical at 1, 2 and 8 threads, the classical slice must
// reproduce the existing corpus (fig06) numbers exactly, and the
// (record, protocol, profile) chain cache must keep profiles apart.
#include <gtest/gtest.h>

#include "core/certificates.hpp"
#include "core/pqc_study.hpp"
#include "core/ttfb_study.hpp"
#include "internet/chain_cache.hpp"

namespace certquic::core {
namespace {

const internet::model& shared_model() {
  static const internet::model m =
      internet::model::generate({.domains = 2000, .seed = 42});
  return m;
}

pqc_study_result run_study(std::size_t threads) {
  pqc_options opt;
  opt.max_services = 150;
  opt.max_corpus = 300;
  return run_pqc_study(shared_model(), opt, {.threads = threads});
}

void expect_identical_sets(const stats::sample_set& a,
                           const stats::sample_set& b) {
  ASSERT_EQ(a.size(), b.size());
  if (a.empty()) {
    return;
  }
  // Bit-identical, not approximately equal: the whole point of the
  // engine's determinism contract. Quantiles first — they sort both
  // sets in place, so the mean then sums in one canonical order
  // (sample_set::mean adds in storage order, which earlier queries may
  // have re-sorted).
  EXPECT_EQ(a.median(), b.median());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(a.mean(), b.mean());
}

TEST(PqcStudy, BitIdenticalAcrossThreadCounts) {
  const auto serial = run_study(1);
  ASSERT_EQ(serial.slices.size(), 3u);
  for (const std::size_t threads : {2u, 8u}) {
    const auto parallel = run_study(threads);
    ASSERT_EQ(parallel.slices.size(), serial.slices.size());
    for (std::size_t i = 0; i < serial.slices.size(); ++i) {
      const auto& s = serial.slices[i];
      const auto& p = parallel.slices[i];
      EXPECT_EQ(p.profile, s.profile);
      EXPECT_EQ(p.probed, s.probed);
      EXPECT_EQ(p.counts, s.counts);
      EXPECT_EQ(p.over_amp_limit, s.over_amp_limit);
      expect_identical_sets(p.quic_chain_sizes, s.quic_chain_sizes);
      expect_identical_sets(p.https_chain_sizes, s.https_chain_sizes);
      expect_identical_sets(p.amplification, s.amplification);
    }
  }
}

TEST(PqcStudy, ClassicalReproducesCorpusChainSizes) {
  // The classical slice of the study walks the same deterministic TLS
  // sample as analyze_corpus — the fig06 aggregator — so its chain-size
  // distributions must match that study bit-for-bit.
  const auto corpus = analyze_corpus(shared_model(), {.max_services = 300});
  const auto study = run_study(0);
  const auto& classical = study.slice(x509::pq_profile::classical);
  expect_identical_sets(classical.quic_chain_sizes, corpus.quic_chain_sizes);
  expect_identical_sets(classical.https_chain_sizes,
                        corpus.https_chain_sizes);
  EXPECT_EQ(classical.over_amp_limit, corpus.all_chains_over_4071);
}

TEST(PqcStudy, ProfilesShiftSizesAndClassesMonotonically) {
  const auto study = run_study(0);
  const auto& classical = study.slice(x509::pq_profile::classical);
  const auto& leaf = study.slice(x509::pq_profile::pqc_leaf);
  const auto& full = study.slice(x509::pq_profile::pqc_full);
  EXPECT_LT(classical.quic_chain_sizes.median(),
            leaf.quic_chain_sizes.median());
  EXPECT_LT(leaf.quic_chain_sizes.median(), full.quic_chain_sizes.median());
  EXPECT_LE(classical.over_amp_limit, leaf.over_amp_limit);
  EXPECT_LE(leaf.over_amp_limit, full.over_amp_limit);
  // Bigger chains can only push handshakes out of 1-RTT.
  EXPECT_LE(full.count(scan::handshake_class::one_rtt),
            classical.count(scan::handshake_class::one_rtt));
  // Every profile probed the same services.
  EXPECT_EQ(classical.probed, leaf.probed);
  EXPECT_EQ(classical.probed, full.probed);
}

TEST(PqcStudy, TtfbMonotoneAcrossProfilesUnderMatchedRandomness) {
  // Matched per-probe randomness (base seed and salt zero) makes the
  // profile runs paired samples: the only difference is chain size, so
  // per-service TTFB can only grow with the profile — which makes the
  // medians monotone classical <= pqc_leaf <= pqc_full on every
  // network condition.
  ttfb_options opt;
  opt.max_services = 150;
  const auto study = run_ttfb_study(shared_model(), opt);
  ASSERT_EQ(study.cells.size(), 3 * study.conditions.size());
  for (std::size_t c = 0; c < study.conditions.size(); ++c) {
    const auto& classical = study.cell(x509::pq_profile::classical, c);
    const auto& leaf = study.cell(x509::pq_profile::pqc_leaf, c);
    const auto& full = study.cell(x509::pq_profile::pqc_full, c);
    ASSERT_FALSE(classical.ttfb_ms.empty());
    EXPECT_LE(classical.ttfb_ms.median(), leaf.ttfb_ms.median())
        << study.conditions[c].name;
    EXPECT_LE(leaf.ttfb_ms.median(), full.ttfb_ms.median())
        << study.conditions[c].name;
    // Bigger chains never make more probes fetch the object.
    EXPECT_LE(full.completed(), classical.completed())
        << study.conditions[c].name;
  }
}

TEST(ChainCache, KeysIncludeChainProfile) {
  const auto& m = shared_model();
  const internet::service_record* rec = nullptr;
  for (const auto& r : m.records()) {
    if (r.serves_tls()) {
      rec = &r;
      break;
    }
  }
  ASSERT_NE(rec, nullptr);

  internet::chain_cache cache{m};
  const auto classical =
      cache.chain_of(*rec, internet::fetch_protocol::https);
  const auto full = cache.chain_of(*rec, internet::fetch_protocol::https,
                                   x509::pq_profile::pqc_full);
  EXPECT_NE(classical.get(), full.get());
  EXPECT_LT(classical->wire_size(), full->wire_size());
  EXPECT_EQ(cache.size(), 2u);
  // Repeat lookups hit the memoized entries.
  EXPECT_EQ(cache.chain_of(*rec, internet::fetch_protocol::https).get(),
            classical.get());
  EXPECT_EQ(cache
                .chain_of(*rec, internet::fetch_protocol::https,
                          x509::pq_profile::pqc_full)
                .get(),
            full.get());
  EXPECT_EQ(cache.hits(), 2u);
}

}  // namespace
}  // namespace certquic::core
