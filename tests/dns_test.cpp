// Unit tests for the DNS resolver simulation.
#include <gtest/gtest.h>

#include "dns/resolver.hpp"

namespace certquic::dns {
namespace {

TEST(Resolver, DeterministicPerDomainId) {
  const resolver r{123};
  for (std::uint64_t id = 0; id < 50; ++id) {
    const resolution a = r.resolve(id);
    const resolution b = r.resolve(id);
    EXPECT_EQ(a.result, b.result);
    EXPECT_EQ(a.address, b.address);
  }
}

TEST(Resolver, DifferentSeedsChangeOutcomes) {
  const resolver a{1};
  const resolver b{2};
  int differing = 0;
  for (std::uint64_t id = 0; id < 200; ++id) {
    differing += a.resolve(id).result != b.resolve(id).result ? 1 : 0;
  }
  EXPECT_GT(differing, 0);
}

TEST(Resolver, FunnelRatesMatchPaper) {
  // §3.1 of 1M names: 866k A, 13k SERVFAIL, 9k NXDOMAIN, ~2k other.
  const resolver r{42};
  constexpr int kN = 40000;
  int counts[6] = {};
  for (std::uint64_t id = 0; id < kN; ++id) {
    ++counts[static_cast<int>(r.resolve(id).result)];
  }
  EXPECT_NEAR(counts[0] / double(kN), 0.866, 0.01);   // A records
  EXPECT_NEAR(counts[1] / double(kN), 0.110, 0.01);   // no A
  EXPECT_NEAR(counts[2] / double(kN), 0.013, 0.004);  // SERVFAIL
  EXPECT_NEAR(counts[3] / double(kN), 0.009, 0.004);  // NXDOMAIN
  EXPECT_LT(counts[4] / double(kN), 0.01);            // timeout
  EXPECT_LT(counts[5] / double(kN), 0.01);            // REFUSED
}

TEST(Resolver, ARecordsGetUsableAddresses) {
  const resolver r{7};
  for (std::uint64_t id = 0; id < 500; ++id) {
    const resolution res = r.resolve(id);
    if (res.result == outcome::a_record) {
      EXPECT_NE(res.address.value, 0u);
      EXPECT_LT(res.address.value >> 24, 224u);  // not multicast
    } else {
      EXPECT_EQ(res.address.value, 0u);
    }
  }
}

TEST(Resolver, OutcomeNames) {
  EXPECT_EQ(to_string(outcome::a_record), "A");
  EXPECT_EQ(to_string(outcome::servfail), "SERVFAIL");
  EXPECT_EQ(to_string(outcome::nxdomain), "NXDOMAIN");
  EXPECT_EQ(to_string(outcome::refused), "REFUSED");
}

}  // namespace
}  // namespace certquic::dns
