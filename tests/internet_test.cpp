// Unit tests for the synthetic-Internet generator.
#include <gtest/gtest.h>

#include <set>

#include "internet/model.hpp"

namespace certquic::internet {
namespace {

class ModelTest : public ::testing::Test {
 protected:
  static const model& shared() {
    static const model m = model::generate({.domains = 8000, .seed = 42});
    return m;
  }
};

TEST_F(ModelTest, PopulationSizeAndRanks) {
  const auto& m = shared();
  ASSERT_EQ(m.records().size(), 8000u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(m.records()[i].rank, i + 1);
  }
}

TEST_F(ModelTest, GenerationIsDeterministic) {
  const auto a = model::generate({.domains = 500, .seed = 9});
  const auto b = model::generate({.domains = 500, .seed = 9});
  for (std::size_t i = 0; i < 500; ++i) {
    EXPECT_EQ(a.records()[i].domain, b.records()[i].domain);
    EXPECT_EQ(a.records()[i].svc, b.records()[i].svc);
    EXPECT_EQ(a.records()[i].chain_profile, b.records()[i].chain_profile);
  }
}

TEST_F(ModelTest, DeploymentSharesMatchFig12) {
  const auto& m = shared();
  std::size_t quic = 0;
  std::size_t https_only = 0;
  for (const auto& rec : m.records()) {
    quic += rec.serves_quic() ? 1 : 0;
    https_only += rec.svc == service_class::https_only ? 1 : 0;
  }
  const double n = static_cast<double>(m.records().size());
  EXPECT_NEAR(quic / n, 0.21, 0.04);        // ~21% QUIC
  EXPECT_NEAR(https_only / n, 0.59, 0.05);  // ~59% HTTPS-only
}

TEST_F(ModelTest, CloudflareDominatesQuicChains) {
  const auto& m = shared();
  std::size_t quic = 0;
  std::size_t cloudflare = 0;
  for (const auto& rec : m.records()) {
    if (!rec.serves_quic()) {
      continue;
    }
    ++quic;
    cloudflare += rec.chain_profile == "cloudflare" ? 1 : 0;
  }
  ASSERT_GT(quic, 0u);
  EXPECT_NEAR(static_cast<double>(cloudflare) / static_cast<double>(quic),
              0.60, 0.05);  // Fig. 7a: 61.5%
}

TEST_F(ModelTest, ChainMaterializationIsDeterministic) {
  const auto& m = shared();
  for (const auto& rec : m.records()) {
    if (!rec.serves_tls()) {
      continue;
    }
    const auto a = m.chain_of(rec, fetch_protocol::https);
    const auto b = m.chain_of(rec, fetch_protocol::https);
    EXPECT_EQ(a.leaf().der(), b.leaf().der());
    break;
  }
}

TEST_F(ModelTest, RotatedServicesServeDifferentLeafOverQuic) {
  const auto& m = shared();
  std::size_t rotated_seen = 0;
  for (const auto& rec : m.records()) {
    if (!rec.serves_quic()) {
      continue;
    }
    const auto https = m.chain_of(rec, fetch_protocol::https);
    const auto quic = m.chain_of(rec, fetch_protocol::quic);
    if (rec.rotated_cert) {
      ++rotated_seen;
      EXPECT_NE(https.leaf().serial(), quic.leaf().serial());
    } else {
      EXPECT_EQ(https.leaf().der(), quic.leaf().der());
    }
    if (rotated_seen >= 3) {
      break;
    }
  }
  EXPECT_GT(rotated_seen, 0u);
}

TEST_F(ModelTest, BehaviorMappingIsConsistent) {
  const auto& m = shared();
  for (const auto& rec : m.records()) {
    if (!rec.serves_quic()) {
      continue;
    }
    const auto b = m.behavior_of(rec);
    switch (rec.behavior) {
      case behavior_kind::cloudflare:
        EXPECT_FALSE(b.count_padding_in_limit);
        EXPECT_TRUE(b.ack_in_separate_datagram);
        break;
      case behavior_kind::legacy_amplifier:
        EXPECT_EQ(b.policy, quic::amplification_policy::min_initial_only);
        break;
      case behavior_kind::standard_no_coalesce:
        EXPECT_FALSE(b.coalesce_levels);
        EXPECT_TRUE(b.count_padding_in_limit);
        break;
      case behavior_kind::standard_lean:
        EXPECT_FALSE(b.ack_in_separate_datagram);
        break;
      case behavior_kind::compliant_coalesce:
        EXPECT_TRUE(b.coalesce_levels);
        break;
      case behavior_kind::retry_always:
        EXPECT_TRUE(b.always_retry);
        break;
    }
  }
}

TEST_F(ModelTest, BrotliSupportMatchesTable1) {
  const auto& m = shared();
  std::size_t quic = 0;
  std::size_t brotli = 0;
  for (const auto& rec : m.records()) {
    if (!rec.serves_quic()) {
      continue;
    }
    ++quic;
    brotli += rec.supports_brotli ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(brotli) / static_cast<double>(quic), 0.96,
              0.03);
}

TEST_F(ModelTest, LoadBalancersConcentrateAtTopRanks) {
  // §4.1: top-1k 25%, top-10k 12%, elsewhere ~1%.
  const auto m = model::generate({.domains = 50000, .seed = 11});
  std::size_t top_lb = 0;
  std::size_t top_n = 0;
  std::size_t tail_lb = 0;
  std::size_t tail_n = 0;
  for (const auto& rec : m.records()) {
    if (!rec.serves_quic()) {
      continue;
    }
    if (rec.rank <= 50) {  // scaled top-1k equivalent (0.1%)
      ++top_n;
      top_lb += rec.lb_overhead > 0 ? 1 : 0;
    } else if (rec.rank > 5000) {
      ++tail_n;
      tail_lb += rec.lb_overhead > 0 ? 1 : 0;
    }
  }
  ASSERT_GT(top_n, 0u);
  ASSERT_GT(tail_n, 0u);
  const double top_rate = static_cast<double>(top_lb) / top_n;
  const double tail_rate = static_cast<double>(tail_lb) / tail_n;
  EXPECT_GT(top_rate, 0.10);
  EXPECT_LT(tail_rate, 0.03);
}

TEST_F(ModelTest, RankGroupPartitioning) {
  const auto& m = shared();
  const auto& first = m.records().front();
  const auto& last = m.records().back();
  EXPECT_EQ(m.rank_group(first), 0u);
  EXPECT_EQ(m.rank_group(last), model::kRankGroups - 1);
}

TEST_F(ModelTest, MetaPopHostGroups) {
  const auto& m = shared();
  const auto pre = m.meta_pop(false);
  EXPECT_GT(pre.size(), 60u);
  std::set<int> octets;
  bool found_facebook = false;
  bool found_instagram = false;
  bool found_silent = false;
  for (const auto& host : pre) {
    octets.insert(host.address.host_octet());
    if (host.address.host_octet() == 35) {
      EXPECT_TRUE(host.serves_quic);
      EXPECT_EQ(host.retransmissions, 1u);
      found_facebook = true;
    }
    if (host.address.host_octet() == 60) {
      EXPECT_GE(host.retransmissions, 7u);
      found_instagram = true;
    }
    found_silent |= !host.serves_quic;
  }
  EXPECT_TRUE(found_facebook);
  EXPECT_TRUE(found_instagram);
  EXPECT_TRUE(found_silent);
  EXPECT_TRUE(octets.contains(183));
  EXPECT_FALSE(octets.contains(44));  // gap in the observed octet list

  const auto post = m.meta_pop(true);
  for (const auto& host : post) {
    if (host.serves_quic) {
      EXPECT_EQ(host.retransmissions, 1u);  // homogeneous after the fix
    }
  }
}

TEST_F(ModelTest, MetaChainsScaleWithSans) {
  const auto& m = shared();
  const auto pop = m.meta_pop(false);
  const meta_host* fb = nullptr;
  const meta_host* ig = nullptr;
  for (const auto& host : pop) {
    if (host.address.host_octet() == 35) {
      fb = &host;
    }
    if (host.address.host_octet() == 60) {
      ig = &host;
    }
  }
  ASSERT_NE(fb, nullptr);
  ASSERT_NE(ig, nullptr);
  EXPECT_GT(m.meta_chain(*ig).wire_size(), m.meta_chain(*fb).wire_size());
  EXPECT_FALSE(m.meta_behavior(*ig).limit_covers_retransmissions);
}

class ChurnTest : public ::testing::Test {
 protected:
  static constexpr config kConfig{.domains = 1500, .seed = 7};

  static void expect_same_records(const model& a, const model& b) {
    ASSERT_EQ(a.records().size(), b.records().size());
    for (std::size_t i = 0; i < a.records().size(); ++i) {
      const service_record& ra = a.records()[i];
      const service_record& rb = b.records()[i];
      EXPECT_EQ(ra.seed, rb.seed) << "record " << i;
      EXPECT_EQ(ra.domain, rb.domain) << "record " << i;
      EXPECT_EQ(ra.dns_result, rb.dns_result) << "record " << i;
      EXPECT_EQ(ra.address.to_string(), rb.address.to_string())
          << "record " << i;
      EXPECT_EQ(ra.svc, rb.svc) << "record " << i;
      EXPECT_EQ(ra.chain_profile, rb.chain_profile) << "record " << i;
      EXPECT_EQ(ra.force_rsa_leaf, rb.force_rsa_leaf) << "record " << i;
      EXPECT_EQ(ra.cruise_sans, rb.cruise_sans) << "record " << i;
      EXPECT_EQ(ra.behavior, rb.behavior) << "record " << i;
      EXPECT_EQ(ra.supports_brotli, rb.supports_brotli) << "record " << i;
    }
  }
};

TEST_F(ChurnTest, EpochZeroIsTheBasePopulation) {
  const model base = model::generate(kConfig);
  const model at0 = model::at_epoch(kConfig, {}, 0);
  expect_same_records(base, at0);
}

TEST_F(ChurnTest, EpochIsPureFunctionOfConfigAndIndex) {
  // Epoch 3 must be bit-identical whether epochs 0..2 were ever
  // materialized (a resumed service regenerates exactly the world the
  // killed process probed).
  const model direct = model::at_epoch(kConfig, {}, 3);
  for (std::uint64_t e = 0; e < 3; ++e) {
    const model detour = model::at_epoch(kConfig, {}, e);
    ASSERT_EQ(detour.records().size(), kConfig.domains);
  }
  const model again = model::at_epoch(kConfig, {}, 3);
  expect_same_records(direct, again);

  // And the manual path (generate + evolve) agrees with at_epoch.
  model folded = model::generate(kConfig);
  (void)folded.evolve_to_epoch({}, 3);
  expect_same_records(direct, folded);
}

TEST_F(ChurnTest, ChurnActuallyChangesThePopulation) {
  churn_summary summary;
  const model base = model::at_epoch(kConfig, {}, 0);
  const model evolved = model::at_epoch(kConfig, {}, 4, &summary);
  EXPECT_EQ(summary.epoch, 4u);
  EXPECT_GT(summary.total(), 0u);
  EXPECT_GT(summary.key_rotations, 0u);

  std::size_t differing = 0;
  ASSERT_EQ(base.records().size(), evolved.records().size());
  for (std::size_t i = 0; i < base.records().size(); ++i) {
    const service_record& rb = base.records()[i];
    const service_record& re = evolved.records()[i];
    EXPECT_EQ(rb.domain, re.domain) << "churn must not rename domains";
    EXPECT_EQ(rb.rank, re.rank);
    if (rb.seed != re.seed || rb.svc != re.svc ||
        rb.chain_profile != re.chain_profile) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0u);
}

TEST_F(ChurnTest, EpochSeedsAreDistinctPerEpoch) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t e = 0; e < 64; ++e) {
    seeds.insert(epoch_seed(42, e));
  }
  EXPECT_EQ(seeds.size(), 64u);
  EXPECT_NE(epoch_seed(42, 1), epoch_seed(43, 1));
}

}  // namespace
}  // namespace certquic::internet
