// Tier-1 suite for the time-domain TTFB study: the profile x condition
// sweep must be bit-identical at 1, 2 and 8 threads, the classical x
// ideal cell must reproduce the census class counts exactly (matched
// randomness: measuring time must not move the size-domain numbers),
// and the v3 spill format must round-trip the handshake timeline.
#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/census.hpp"
#include "core/ttfb_study.hpp"
#include "engine/engine.hpp"
#include "engine/spill.hpp"

namespace certquic::core {
namespace {

const internet::model& shared_model() {
  static const internet::model m =
      internet::model::generate({.domains = 2000, .seed = 42});
  return m;
}

ttfb_study_result run_study(std::size_t threads) {
  ttfb_options opt;
  opt.max_services = 150;
  return run_ttfb_study(shared_model(), opt, {.threads = threads});
}

void expect_identical_sets(const stats::sample_set& a,
                           const stats::sample_set& b) {
  ASSERT_EQ(a.size(), b.size());
  if (a.empty()) {
    return;
  }
  EXPECT_EQ(a.median(), b.median());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(a.mean(), b.mean());
}

TEST(TtfbStudy, BitIdenticalAcrossThreadCounts) {
  const auto serial = run_study(1);
  ASSERT_EQ(serial.cells.size(), 12u);  // 3 profiles x 4 conditions
  for (const std::size_t threads : {2u, 8u}) {
    const auto parallel = run_study(threads);
    ASSERT_EQ(parallel.cells.size(), serial.cells.size());
    for (std::size_t i = 0; i < serial.cells.size(); ++i) {
      const auto& s = serial.cells[i];
      const auto& p = parallel.cells[i];
      EXPECT_EQ(p.profile, s.profile);
      EXPECT_EQ(p.condition.name, s.condition.name);
      EXPECT_EQ(p.probed, s.probed);
      EXPECT_EQ(p.counts, s.counts);
      expect_identical_sets(p.ttfb_ms, s.ttfb_ms);
    }
  }
}

TEST(TtfbStudy, ClassicalIdealCellMatchesCensusCounts) {
  // The classical x ideal cell probes the census population under the
  // census's record-derived randomness; requesting one object after
  // the handshake must not perturb a single classification. This is
  // the matched-randomness contract that makes TTFB an overlay on the
  // existing size-domain results rather than a separate experiment.
  const auto study = run_study(0);
  const auto& cell = study.cell(x509::pq_profile::classical, 0);
  ASSERT_EQ(cell.condition.name, "ideal");

  census_options copt;
  copt.max_services = 150;
  copt.collect_payload_details = false;
  const auto census = run_census(shared_model(), copt);

  EXPECT_EQ(cell.probed, census.probed);
  EXPECT_EQ(cell.counts, census.counts);
  // Every 1-RTT and multi-RTT handshake went on to fetch the object.
  EXPECT_EQ(cell.completed(),
            cell.count(scan::handshake_class::one_rtt) +
                cell.count(scan::handshake_class::multi_rtt) +
                cell.count(scan::handshake_class::amplification) +
                cell.count(scan::handshake_class::retry));
}

TEST(TtfbStudy, TtfbIsRttLadderOnIdealPath) {
  // On the loss-free, unconstrained path the timeline is exact: a
  // 1-RTT handshake fetches in 2 RTT + ack delay (41 ms), one extra
  // round trip per additional flight. Every observed TTFB must sit on
  // that ladder.
  const auto study = run_study(0);
  const auto& cell = study.cell(x509::pq_profile::classical, 0);
  ASSERT_FALSE(cell.ttfb_ms.empty());
  EXPECT_DOUBLE_EQ(cell.ttfb_ms.min(), 41.0);
  const double steps = (cell.ttfb_ms.max() - 41.0) / 21.0;
  EXPECT_DOUBLE_EQ(steps, std::round(steps));
}

TEST(TtfbStudy, SpillV3RoundTripsTimeline) {
  const auto& m = shared_model();
  engine::probe_plan plan;
  plan.max_services = 40;
  engine::probe_variant v;
  v.measure_ttfb = true;
  v.network = default_network_conditions()[3];  // constrained
  plan.variants.push_back(v);

  const std::string path =
      (std::filesystem::temp_directory_path() / "certquic_ttfb_spill.txt")
          .string();

  std::vector<net::duration> direct;
  engine::callback_sink direct_sink{[&](const engine::probe_record& pr) {
    direct.push_back(pr.ttfb());
  }};
  const engine::executor eng{m, {.threads = 2}};
  eng.run(plan, direct_sink);
  ASSERT_GT(direct.size(), 0u);
  bool any_nonzero = false;
  for (const net::duration d : direct) {
    any_nonzero |= d != 0;
  }
  ASSERT_TRUE(any_nonzero) << "no probe measured a TTFB — nothing to pin";

  engine::spill_sink spill{path};
  eng.run(plan, spill);

  std::vector<net::duration> replayed;
  engine::callback_sink replay_sink{[&](const engine::probe_record& pr) {
    replayed.push_back(pr.ttfb());
  }};
  const engine::spill_reader reader{m, plan};
  reader.replay(path, replay_sink);

  EXPECT_EQ(replayed, direct);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace certquic::core
