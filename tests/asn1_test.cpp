// Unit and property tests for the DER encoder/decoder.
#include <gtest/gtest.h>

#include "asn1/der.hpp"
#include "util/errors.hpp"
#include "util/rng.hpp"

namespace certquic::asn1 {
namespace {

bytes_view view(const bytes& b) { return b; }

TEST(DerHeader, ShortForm) {
  const bytes h = encode_header(0x30, 0x7f);
  const bytes expected = {0x30, 0x7f};
  EXPECT_EQ(h, expected);
}

TEST(DerHeader, LongForm) {
  const bytes one = encode_header(0x30, 0x80);
  const bytes expected_one = {0x30, 0x81, 0x80};
  EXPECT_EQ(one, expected_one);

  const bytes two = encode_header(0x30, 0x1234);
  const bytes expected_two = {0x30, 0x82, 0x12, 0x34};
  EXPECT_EQ(two, expected_two);
}

TEST(DerInteger, KnownEncodings) {
  // Canonical two's-complement minimal forms.
  EXPECT_EQ(encode_integer(0), (bytes{0x02, 0x01, 0x00}));
  EXPECT_EQ(encode_integer(127), (bytes{0x02, 0x01, 0x7f}));
  EXPECT_EQ(encode_integer(128), (bytes{0x02, 0x02, 0x00, 0x80}));
  EXPECT_EQ(encode_integer(256), (bytes{0x02, 0x02, 0x01, 0x00}));
  EXPECT_EQ(encode_integer(-1), (bytes{0x02, 0x01, 0xff}));
  EXPECT_EQ(encode_integer(-128), (bytes{0x02, 0x01, 0x80}));
  EXPECT_EQ(encode_integer(-129), (bytes{0x02, 0x02, 0xff, 0x7f}));
  EXPECT_EQ(encode_integer(65537), (bytes{0x02, 0x03, 0x01, 0x00, 0x01}));
}

TEST(DerBigInteger, PrependsZeroForHighBit) {
  const bytes magnitude = {0x80, 0x01};
  const bytes enc = encode_big_integer(magnitude);
  EXPECT_EQ(enc, (bytes{0x02, 0x03, 0x00, 0x80, 0x01}));
}

TEST(DerBigInteger, StripsRedundantLeadingZeros) {
  const bytes magnitude = {0x00, 0x00, 0x01, 0x02};
  const bytes enc = encode_big_integer(magnitude);
  EXPECT_EQ(enc, (bytes{0x02, 0x02, 0x01, 0x02}));
}

TEST(DerBigInteger, EmptyEncodesZero) {
  EXPECT_EQ(encode_big_integer({}), (bytes{0x02, 0x01, 0x00}));
}

TEST(DerOid, KnownEncodings) {
  // sha256WithRSAEncryption = 1.2.840.113549.1.1.11.
  const bytes rsa = encode_oid({1, 2, 840, 113549, 1, 1, 11});
  const bytes expected = {0x06, 0x09, 0x2a, 0x86, 0x48, 0x86,
                          0xf7, 0x0d, 0x01, 0x01, 0x0b};
  EXPECT_EQ(rsa, expected);

  // id-ce-subjectAltName = 2.5.29.17.
  const bytes san = encode_oid({2, 5, 29, 17});
  const bytes expected_san = {0x06, 0x03, 0x55, 0x1d, 0x11};
  EXPECT_EQ(san, expected_san);
}

TEST(DerOid, RejectsInvalidArcs) {
  EXPECT_THROW((void)encode_oid({1}), codec_error);
  EXPECT_THROW((void)encode_oid({3, 1}), codec_error);
  EXPECT_THROW((void)encode_oid({0, 40}), codec_error);
}

TEST(DerBitString, PrependsUnusedBits) {
  const bytes data = {0xaa};
  EXPECT_EQ(encode_bit_string(data), (bytes{0x03, 0x02, 0x00, 0xaa}));
  EXPECT_EQ(encode_bit_string(data, 3), (bytes{0x03, 0x02, 0x03, 0xaa}));
  EXPECT_THROW((void)encode_bit_string(data, 8), codec_error);
}

TEST(DerPrimitives, BooleanNullStrings) {
  EXPECT_EQ(encode_boolean(true), (bytes{0x01, 0x01, 0xff}));
  EXPECT_EQ(encode_boolean(false), (bytes{0x01, 0x01, 0x00}));
  EXPECT_EQ(encode_null(), (bytes{0x05, 0x00}));
  EXPECT_EQ(encode_printable_string("US"), (bytes{0x13, 0x02, 'U', 'S'}));
  EXPECT_EQ(encode_utf8_string("ab"), (bytes{0x0c, 0x02, 'a', 'b'}));
  EXPECT_EQ(encode_ia5_string("x"), (bytes{0x16, 0x01, 'x'}));
}

TEST(DerUtcTime, ValidatesShape) {
  EXPECT_EQ(encode_utc_time("220910000000Z").size(), 15u);
  EXPECT_THROW((void)encode_utc_time("2209100000Z"), codec_error);
  EXPECT_THROW((void)encode_utc_time("2209100000000"), codec_error);
}

TEST(DerSequence, NestsAndMeasures) {
  const bytes inner = encode_integer(5);
  const bytes seq = sequence({view(inner), view(inner)});
  EXPECT_EQ(seq.size(), 2 + 2 * inner.size());
  EXPECT_EQ(seq[0], 0x30);
}

TEST(DerContext, TagBytes) {
  const bytes c0 = context(0, view(encode_integer(2)));
  EXPECT_EQ(c0[0], 0xa0);
  const bytes c2 = context(2, {}, /*constructed=*/false);
  EXPECT_EQ(c2[0], 0x82);
  EXPECT_THROW((void)context(31, {}), codec_error);
}

TEST(DerDecode, ReadTlvRoundTrip) {
  const bytes seq = sequence({view(encode_integer(300)),
                              view(encode_oid({2, 5, 4, 3}))});
  buffer_reader r{seq};
  const tlv outer = read_tlv(r);
  EXPECT_TRUE(outer.is(tag::sequence));
  EXPECT_TRUE(r.empty());

  const auto kids = children(outer);
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(decode_integer(kids[0]), 300);
  EXPECT_EQ(decode_oid(kids[1]), (oid{2, 5, 4, 3}));
}

TEST(DerDecode, RejectsIndefiniteLength) {
  const bytes data = {0x30, 0x80, 0x00, 0x00};
  buffer_reader r{data};
  EXPECT_THROW((void)read_tlv(r), codec_error);
}

TEST(DerDecode, RejectsTruncatedContent) {
  const bytes data = {0x30, 0x05, 0x01};
  buffer_reader r{data};
  EXPECT_THROW((void)read_tlv(r), codec_error);
}

TEST(DerDecode, OidArcWidthLimit) {
  // An arc of 2^32 (five base-128 groups, first carrying bit 32) used
  // to wrap silently to 0 in the 32-bit accumulator; it must throw.
  const bytes data = {0x06, 0x06, 0x2a, 0x90, 0x80, 0x80, 0x80, 0x00};
  buffer_reader r{data};
  const tlv t = read_tlv(r);
  EXPECT_THROW((void)decode_oid(t), codec_error);
}

TEST(DerDecode, OidMaxArcRoundTrips) {
  // 2^32 - 1 is the widest representable arc and must still decode.
  const oid arcs{2, 47, 0xffff'ffffu};
  const bytes enc = encode_oid(arcs);
  buffer_reader r{enc};
  EXPECT_EQ(decode_oid(read_tlv(r)), arcs);
}

TEST(DerDecode, IntegerWidthLimit) {
  bytes data = {0x02, 0x09, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  buffer_reader r{data};
  const tlv t = read_tlv(r);
  EXPECT_THROW((void)decode_integer(t), codec_error);
}

// Property: INTEGER round-trips for random 64-bit values.
class IntegerRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntegerRoundTrip, EncodeDecode) {
  rng r{GetParam()};
  for (int i = 0; i < 500; ++i) {
    const auto v = static_cast<std::int64_t>(r.next());
    const bytes enc = encode_integer(v);
    buffer_reader reader{enc};
    EXPECT_EQ(decode_integer(read_tlv(reader)), v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntegerRoundTrip,
                         ::testing::Values(101u, 202u, 303u, 404u));

// Property: OIDs with random arcs round-trip.
class OidRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OidRoundTrip, EncodeDecode) {
  rng r{GetParam()};
  for (int i = 0; i < 200; ++i) {
    oid arcs;
    arcs.push_back(static_cast<std::uint32_t>(r.uniform(0, 2)));
    arcs.push_back(static_cast<std::uint32_t>(
        r.uniform(0, arcs[0] < 2 ? 39 : 1000)));
    const auto extra = r.uniform(0, 8);
    for (std::uint64_t k = 0; k < extra; ++k) {
      arcs.push_back(static_cast<std::uint32_t>(r.uniform(0, 1 << 28)));
    }
    const bytes enc = encode_oid(arcs);
    buffer_reader reader{enc};
    EXPECT_EQ(decode_oid(read_tlv(reader)), arcs);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OidRoundTrip,
                         ::testing::Values(11u, 22u, 33u, 44u));

// Property: random nested structures survive header round-trips at every
// size class (short form, 1-, 2- and 3-octet long forms).
class HeaderRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HeaderRoundTrip, WrapUnwrap) {
  rng r{99};
  bytes payload(GetParam());
  r.fill(payload);
  const bytes wrapped = wrap(tag::octet_string, payload);
  buffer_reader reader{wrapped};
  const tlv t = read_tlv(reader);
  EXPECT_TRUE(t.is(tag::octet_string));
  EXPECT_EQ(bytes(t.content.begin(), t.content.end()), payload);
  EXPECT_TRUE(reader.empty());
}

INSTANTIATE_TEST_SUITE_P(Sizes, HeaderRoundTrip,
                         ::testing::Values(0u, 1u, 127u, 128u, 255u, 256u,
                                           65535u, 65536u, 100000u));

}  // namespace
}  // namespace certquic::asn1
