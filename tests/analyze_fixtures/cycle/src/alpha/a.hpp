#pragma once

#include "beta/b.hpp"

namespace fx {
inline int a_value() { return b_value(); }
}
