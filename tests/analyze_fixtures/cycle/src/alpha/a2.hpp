#pragma once

namespace fx {
inline int a2_value() { return 11; }
}
