#pragma once

#include "alpha/a2.hpp"

namespace fx {
inline int b_value() { return a2_value(); }
}
