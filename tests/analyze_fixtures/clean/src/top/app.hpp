#pragma once

#include "mid/widget.hpp"

namespace fx {
inline int app_value() { return widget_value(); }
}
