#include "base/thing.hpp"

namespace fx {
int base_value() { return 7; }
}
