#include "mid/widget.hpp"

namespace fx {
int widget_value() { return widget_base() + 1; }
}
