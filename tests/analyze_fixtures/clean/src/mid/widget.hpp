#pragma once

#include "base/thing.hpp"

namespace fx {
int widget_value();
inline int widget_base() { return base_value(); }
}
