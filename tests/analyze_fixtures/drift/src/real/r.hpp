#pragma once

namespace fx {
inline int r_value() { return 1; }
}
