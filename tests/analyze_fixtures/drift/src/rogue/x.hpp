#pragma once

namespace fx {
inline int x_value() { return 2; }
}
