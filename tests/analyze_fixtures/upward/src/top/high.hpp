#pragma once

namespace fx {
inline int high_value() { return 3; }
}
