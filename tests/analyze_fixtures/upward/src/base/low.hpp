#pragma once

#include "top/high.hpp"

namespace fx {
inline int low_value() { return high_value(); }
}
