#include "mod/unused.hpp"

namespace fx {
int dead_value() { return 9; }
}
