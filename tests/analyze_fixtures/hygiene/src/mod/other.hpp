#pragma once

namespace fx {
inline int other_value() { return 2; }
}
