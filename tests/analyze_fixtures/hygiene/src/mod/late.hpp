#pragma once

namespace fx {
int late_value();
}
