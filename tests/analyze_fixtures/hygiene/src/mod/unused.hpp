#pragma once

inline int spare_helper() { return 4; }
