namespace fx {
int nopragma_value();
}
