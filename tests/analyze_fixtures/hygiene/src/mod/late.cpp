#include "mod/other.hpp"
#include "mod/late.hpp"

namespace fx {
int late_value() { return other_value(); }
}
