// Unit tests for the HTTPS certificate-collection pipeline.
#include <gtest/gtest.h>

#include "http/collector.hpp"

namespace certquic::http {
namespace {

class CollectorTest : public ::testing::Test {
 protected:
  static const internet::model& shared() {
    static const internet::model m =
        internet::model::generate({.domains = 4000, .seed = 42});
    return m;
  }
};

TEST_F(CollectorTest, FunnelOrderingHolds) {
  const collector c{shared()};
  const auto stats = c.collect_all();
  EXPECT_EQ(stats.names_total, 4000u);
  EXPECT_LE(stats.names_with_a_record, stats.names_total);
  EXPECT_LE(stats.http_reachable, stats.names_with_a_record);
  EXPECT_LE(stats.https_reachable, stats.http_reachable);
  EXPECT_LE(stats.unique_certificates, stats.names_covered);
  EXPECT_LE(stats.quic_capable, stats.names_covered);
  EXPECT_GT(stats.https_reachable, 0u);
  EXPECT_GT(stats.redirects_followed, 0u);
}

TEST_F(CollectorTest, SinkSeesEveryTlsNameOnce) {
  const collector c{shared()};
  std::size_t sink_calls = 0;
  std::set<std::string> domains;
  const auto stats = c.collect_all(
      [&](const internet::service_record& rec, const x509::chain& chain) {
        ++sink_calls;
        EXPECT_TRUE(rec.serves_tls());
        EXPECT_FALSE(chain.empty());
        EXPECT_TRUE(domains.insert(rec.domain).second) << rec.domain;
      });
  EXPECT_EQ(sink_calls, stats.names_covered);
}

TEST_F(CollectorTest, RedirectResolutionTerminates) {
  const auto& m = shared();
  const collector c{m};
  for (std::size_t i = 0; i < m.records().size(); ++i) {
    if (!m.records()[i].serves_tls()) {
      continue;
    }
    const std::int64_t target = c.follow_redirects(i);
    if (target >= 0) {
      const auto& final_rec = m.records()[static_cast<std::size_t>(target)];
      EXPECT_TRUE(final_rec.serves_tls());
    }
  }
}

TEST_F(CollectorTest, CollectionIsDeterministic) {
  const collector c{shared()};
  const auto a = c.collect_all();
  const auto b = c.collect_all();
  EXPECT_EQ(a.names_covered, b.names_covered);
  EXPECT_EQ(a.unique_certificates, b.unique_certificates);
  EXPECT_EQ(a.redirects_followed, b.redirects_followed);
}

}  // namespace
}  // namespace certquic::http
