// Backend and sink-lifecycle tests: shared-world (backscatter) shards
// must aggregate bit-identically at 1, 2 and 8 threads, spilled record
// streams must replay losslessly, sinks must compose, and the chain
// cache must be a pure thread-safe memoization.
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/amplification_study.hpp"
#include "core/census.hpp"
#include "core/policy_study.hpp"
#include "engine/backend.hpp"
#include "engine/spill.hpp"
#include "internet/chain_cache.hpp"

namespace certquic {
namespace {

const internet::model& shared_model() {
  static const internet::model m =
      internet::model::generate({.domains = 2000, .seed = 42});
  return m;
}

std::string full(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", x);
  return buf;
}

std::string digest(const stats::sample_set& s) {
  std::ostringstream out;
  out << s.size();
  if (!s.empty()) {
    out << ' ' << full(s.mean()) << ' ' << full(s.min()) << ' '
        << full(s.median()) << ' ' << full(s.max());
  }
  return out.str();
}

std::string digest(const core::telescope_result& t) {
  std::ostringstream out;
  for (const auto& [provider, samples] : t.amplification) {
    out << provider << '=' << digest(samples) << '|';
  }
  out << digest(t.meta_session_duration_s) << '|'
      << full(t.meta_max_amplification);
  return out.str();
}

std::string digest(const engine::unit_outcome& o) {
  std::ostringstream out;
  out << o.backscatter.provider << ':' << o.backscatter.bytes << ':'
      << o.backscatter.datagrams << ':' << o.backscatter.first_seen << ':'
      << o.backscatter.last_seen << ':' << o.probe.obs.bytes_sent_total;
  return out.str();
}

std::string record_digest(const engine::probe_record& pr) {
  const quic::observation& o = pr.result.obs;
  std::ostringstream out;
  out << pr.service_index << ':' << pr.variant_index << ':'
      << static_cast<int>(pr.result.cls) << ':' << o.handshake_complete
      << ':' << o.bytes_sent_total << ':' << o.bytes_received_total << ':'
      << o.bytes_received_first_burst << ':' << o.tls_bytes_received << ':'
      << o.certificate_msg_size << ':' << o.complete_time << ':'
      << o.certificate_message.size();
  return out.str();
}

TEST(BackscatterBackend, TelescopeStudyIdenticalAcrossThreadCounts) {
  const core::spoofed_options opt{.sessions_per_provider = 40};
  const std::string serial = digest(core::run_telescope_study(
      shared_model(), opt, engine::options::serial()));
  for (const std::size_t threads : {2UL, 8UL}) {
    const std::string parallel = digest(
        core::run_telescope_study(shared_model(), opt, {.threads = threads}));
    EXPECT_EQ(serial, parallel)
        << "telescope aggregates diverged at " << threads << " threads";
  }
}

TEST(BackscatterBackend, PolicyStudyIdenticalAcrossThreadCounts) {
  const auto serial = core::run_policy_study(shared_model(), "le-r3-x1cross",
                                             engine::options::serial());
  for (const std::size_t threads : {2UL, 8UL}) {
    const auto parallel = core::run_policy_study(
        shared_model(), "le-r3-x1cross", {.threads = threads});
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].bytes_sent, parallel[i].bytes_sent);
      EXPECT_EQ(serial[i].bytes_received, parallel[i].bytes_received);
      EXPECT_EQ(full(serial[i].amplification),
                full(parallel[i].amplification));
    }
  }
}

TEST(BackscatterBackend, ShardPartitionIsThreadInvariant) {
  // Raw backend check, independent of any study: the same plan must
  // yield the same per-unit outcomes at every thread count, because the
  // session→world partition is part of the plan.
  const auto plan = core::build_telescope_plan(
      shared_model(), {.sessions_per_provider = 20});
  ASSERT_EQ(plan.sessions.size(), 60u);
  const engine::backscatter_backend backend{plan};

  const auto collect = [&](std::size_t threads) {
    std::vector<std::string> digests;
    engine::run_backend(backend, {.threads = threads},
                        [&](std::size_t, engine::unit_outcome&& o) {
                          digests.push_back(digest(o));
                        });
    return digests;
  };
  const auto serial = collect(1);
  ASSERT_EQ(serial.size(), plan.sessions.size());
  EXPECT_EQ(serial, collect(2));
  EXPECT_EQ(serial, collect(8));
}

TEST(BackscatterBackend, SensorsAttributeBackscatterPerSession) {
  const auto plan = core::build_telescope_plan(
      shared_model(), {.sessions_per_provider = 8});
  const engine::backscatter_backend backend{plan};
  std::size_t answered = 0;
  engine::run_backend(backend, {.threads = 2},
                      [&](std::size_t, engine::unit_outcome&& o) {
                        if (o.backscatter.datagrams == 0) {
                          return;
                        }
                        ++answered;
                        EXPECT_FALSE(o.backscatter.provider.empty());
                        EXPECT_GT(o.backscatter.bytes, 0u);
                        // The spoofing attacker itself hears nothing.
                        EXPECT_EQ(o.probe.obs.bytes_received_total, 0u);
                      });
  EXPECT_GT(answered, plan.sessions.size() / 2);
}

TEST(SinkLifecycle, BeginAndEndWrapEveryRun) {
  const auto& m = shared_model();
  engine::probe_plan plan =
      engine::probe_plan::single(engine::probe_variant{}, 10);
  struct lifecycle_sink final : engine::observation_sink {
    std::size_t begins = 0, records = 0, ends = 0, announced = 0;
    std::size_t variants = 0;
    void on_begin(const engine::probe_plan& p, std::size_t sampled) override {
      ++begins;
      announced = sampled;
      variants = p.variants.size();
      EXPECT_EQ(records, 0u);
    }
    void on_record(const engine::probe_record&) override {
      EXPECT_EQ(begins, 1u);
      EXPECT_EQ(ends, 0u);
      ++records;
    }
    void on_end() override { ++ends; }
  };

  lifecycle_sink sink;
  const engine::executor eng{m, {.threads = 4}};
  eng.run(plan, sink);
  EXPECT_EQ(sink.begins, 1u);
  EXPECT_EQ(sink.ends, 1u);
  EXPECT_EQ(sink.records, sink.announced * sink.variants);
  EXPECT_GT(sink.records, 0u);

  // An empty sample still sees exactly one begin/end pair.
  lifecycle_sink empty;
  eng.run(plan, {}, empty);
  EXPECT_EQ(empty.begins, 1u);
  EXPECT_EQ(empty.ends, 1u);
  EXPECT_EQ(empty.records, 0u);
}

TEST(SinkLifecycle, TeeAndFilterCompose) {
  const auto& m = shared_model();
  const auto plan = engine::probe_plan::single(engine::probe_variant{}, 30);

  std::size_t all = 0;
  std::size_t completed = 0;
  engine::callback_sink count_all{
      [&](const engine::probe_record&) { ++all; }};
  engine::callback_sink count_completed{
      [&](const engine::probe_record& pr) {
        EXPECT_TRUE(pr.result.obs.handshake_complete);
        ++completed;
      }};
  engine::filter_sink only_completed{
      count_completed, [](const engine::probe_record& pr) {
        return pr.result.obs.handshake_complete;
      }};
  engine::tee_sink tee{{&count_all, &only_completed}};
  engine::executor{m, {.threads = 2}}.run(plan, tee);

  EXPECT_GT(all, 0u);
  EXPECT_GT(completed, 0u);
  EXPECT_LE(completed, all);
}

TEST(SpillSink, RoundTripMatchesDirectRun) {
  const auto& m = shared_model();
  engine::probe_plan plan;
  plan.max_services = 40;
  plan.sweep_initial_sizes({1200, 1362});
  plan.variants[0].capture_certificate = true;  // exercise the hex column

  const std::string path =
      (std::filesystem::temp_directory_path() / "certquic_spill_test.txt")
          .string();

  // Direct run: record stream digests + an aggregate.
  std::vector<std::string> direct;
  stats::sample_set direct_amplification;
  engine::callback_sink direct_sink{[&](const engine::probe_record& pr) {
    direct.push_back(record_digest(pr));
    direct_amplification.add(pr.result.obs.first_burst_amplification());
  }};
  const engine::executor eng{m, {.threads = 4}};
  eng.run(plan, direct_sink);
  ASSERT_GT(direct.size(), 0u);

  // Spill the same plan, then replay the file.
  engine::spill_sink spill{path};
  eng.run(plan, spill);
  EXPECT_EQ(spill.records_written(), direct.size());

  std::vector<std::string> replayed;
  stats::sample_set replayed_amplification;
  engine::callback_sink replay_sink{[&](const engine::probe_record& pr) {
    replayed.push_back(record_digest(pr));
    replayed_amplification.add(pr.result.obs.first_burst_amplification());
  }};
  const engine::spill_reader reader{m, plan};
  const std::size_t replayed_count = reader.replay(path, replay_sink);

  EXPECT_EQ(replayed_count, direct.size());
  EXPECT_EQ(replayed, direct);
  EXPECT_EQ(digest(direct_amplification), digest(replayed_amplification));
  std::filesystem::remove(path);
}

TEST(SpillSink, ReaderRejectsForeignFiles) {
  const auto& m = shared_model();
  const std::string path =
      (std::filesystem::temp_directory_path() / "certquic_not_a_spill.txt")
          .string();
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("something else entirely\n", f);
    std::fclose(f);
  }
  const auto plan = engine::probe_plan::single(engine::probe_variant{}, 5);
  engine::callback_sink sink{[](const engine::probe_record&) {}};
  const engine::spill_reader reader{m, plan};
  EXPECT_THROW((void)reader.replay(path, sink), codec_error);
  std::filesystem::remove(path);
}

TEST(ChainCache, MemoizesAndIsThreadSafe) {
  const auto& m = shared_model();
  const internet::chain_cache cache{m};

  std::vector<const internet::service_record*> tls_records;
  for (const auto& rec : m.records()) {
    if (rec.serves_tls()) {
      tls_records.push_back(&rec);
    }
    if (tls_records.size() == 64) {
      break;
    }
  }
  ASSERT_FALSE(tls_records.empty());

  // Concurrent repeat visits: every thread fetches every record twice.
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < 8; ++t) {
    pool.emplace_back([&] {
      for (int round = 0; round < 2; ++round) {
        for (const auto* rec : tls_records) {
          const auto cached =
              cache.chain_of(*rec, internet::fetch_protocol::https);
          const auto direct =
              m.chain_of(*rec, internet::fetch_protocol::https);
          if (cached->concatenated_der() != direct.concatenated_der()) {
            mismatch.store(true);
          }
        }
      }
    });
  }
  for (auto& t : pool) {
    t.join();
  }
  EXPECT_FALSE(mismatch.load());
  EXPECT_EQ(cache.size(), tls_records.size());
  EXPECT_GT(cache.hits(), 0u);

  // Protocols are distinct cache keys (rotated certificates differ).
  const auto quic_side =
      cache.chain_of(*tls_records.front(), internet::fetch_protocol::quic);
  EXPECT_EQ(cache.size(), tls_records.size() + 1);
  (void)quic_side;
}

TEST(AckSweep, InstantAckNeverSlowerAndSilentNeverCompletes) {
  const auto sweep = core::run_ack_sweep(shared_model(), 80);
  ASSERT_EQ(sweep.slices.size(), 3u);
  const auto& delayed = sweep.slices[0];
  const auto& instant = sweep.slices[1];
  const auto& silent = sweep.slices[2];
  EXPECT_EQ(delayed.policy, quic::ack_policy::delayed);
  EXPECT_EQ(instant.policy, quic::ack_policy::instant);
  EXPECT_EQ(silent.policy, quic::ack_policy::none);

  EXPECT_EQ(delayed.probed, instant.probed);
  EXPECT_EQ(delayed.probed, silent.probed);
  EXPECT_GT(delayed.probed, 0u);

  // ACK timing shifts completion times, not outcomes: the matched
  // pairs land in identical handshake classes.
  EXPECT_EQ(delayed.counts, instant.counts);
  // A silent client cannot advance a multi-RTT handshake — those
  // services degrade to unreachable, the class delta the sweep reports.
  EXPECT_EQ(silent.count(scan::handshake_class::multi_rtt), 0u);
  EXPECT_LT(sweep.class_delta(2, scan::handshake_class::multi_rtt), 0);
  EXPECT_GT(sweep.class_delta(2, scan::handshake_class::unreachable), 0);
  EXPECT_LT(silent.completed(), delayed.completed());
  EXPECT_GT(delayed.completed(), 0u);
  // Instant ACKs can only speed a handshake up.
  EXPECT_LE(instant.handshake_ms.median(), delayed.handshake_ms.median());
  EXPECT_LT(instant.handshake_ms.mean(), delayed.handshake_ms.mean());
}

TEST(AckSweep, DeterministicAcrossThreadCounts) {
  const auto serial =
      core::run_ack_sweep(shared_model(), 50, engine::options::serial());
  const auto parallel = core::run_ack_sweep(shared_model(), 50, {.threads = 8});
  ASSERT_EQ(serial.slices.size(), parallel.slices.size());
  for (std::size_t i = 0; i < serial.slices.size(); ++i) {
    EXPECT_EQ(serial.slices[i].counts, parallel.slices[i].counts);
    EXPECT_EQ(digest(serial.slices[i].handshake_ms),
              digest(parallel.slices[i].handshake_ms));
  }
}

}  // namespace
}  // namespace certquic
