// Unit tests for the core analysis library.
#include <gtest/gtest.h>

#include "core/amplification_study.hpp"
#include "core/browsers.hpp"
#include "core/census.hpp"
#include "core/certificates.hpp"
#include "core/compression_study.hpp"
#include "core/funnel.hpp"
#include "core/policy_study.hpp"
#include "core/tuner.hpp"

namespace certquic::core {
namespace {

const internet::model& shared_model() {
  static const internet::model m =
      internet::model::generate({.domains = 6000, .seed = 42});
  return m;
}

TEST(Census, SweepCoversExpectedSizes) {
  const auto sizes = initial_size_sweep();
  EXPECT_EQ(sizes.front(), 1200u);
  EXPECT_EQ(sizes.back(), 1472u);
  EXPECT_GE(sizes.size(), 27u);
}

TEST(Census, ClassSharesMatchFig3) {
  census_options opt;
  opt.initial_size = 1362;
  opt.max_services = 900;
  const auto census = run_census(shared_model(), opt);
  ASSERT_GT(census.probed, 500u);
  // Paper @1362: 61% amplification, 38% multi-RTT, <1% the rest.
  EXPECT_NEAR(census.share(scan::handshake_class::amplification), 0.61, 0.06);
  EXPECT_NEAR(census.share(scan::handshake_class::multi_rtt), 0.38, 0.06);
  EXPECT_LT(census.share(scan::handshake_class::one_rtt), 0.03);
}

TEST(Census, CloudflareAttribution) {
  census_options opt;
  opt.initial_size = 1362;
  opt.max_services = 900;
  const auto census = run_census(shared_model(), opt);
  ASSERT_GT(census.amplifying, 0u);
  EXPECT_NEAR(static_cast<double>(census.amplifying_cloudflare) /
                  static_cast<double>(census.amplifying),
              0.96, 0.04);
  // §4.1: the superfluous padding is constant.
  EXPECT_DOUBLE_EQ(census.cloudflare_padding.min(), 2462.0);
  EXPECT_DOUBLE_EQ(census.cloudflare_padding.max(), 2462.0);
}

TEST(Census, AmplificationFactorsStaySmall) {
  census_options opt;
  opt.initial_size = 1362;
  opt.max_services = 600;
  const auto census = run_census(shared_model(), opt);
  // Fig. 4: factors exceed 3 but stay below ~6.
  EXPECT_GT(census.first_burst_amplification.quantile(0.6), 3.0);
  EXPECT_LT(census.first_burst_amplification.max(), 6.5);
}

TEST(Census, MultiRttTlsExceedsLimitMostly) {
  census_options opt;
  opt.initial_size = 1362;
  opt.max_services = 900;
  const auto census = run_census(shared_model(), opt);
  ASSERT_FALSE(census.multi_rtt_payload.empty());
  const double share =
      static_cast<double>(census.multi_tls_exceeding_limit) /
      static_cast<double>(census.multi_rtt_payload.size());
  EXPECT_NEAR(share, 0.87, 0.07);  // Fig. 5
}

TEST(Corpus, ChainMediansMatchFig6) {
  const auto corpus = analyze_corpus(shared_model(), {.max_services = 2500});
  EXPECT_NEAR(corpus.quic_chain_sizes.median(), 2329.0, 350.0);
  EXPECT_NEAR(corpus.https_chain_sizes.median(), 4022.0, 400.0);
  EXPECT_NEAR(corpus.all_chains_over_4071, 0.35, 0.06);
  EXPECT_LT(corpus.quic_chain_sizes.median(),
            corpus.https_chain_sizes.median());
}

TEST(Corpus, TopChainCoverage) {
  const auto corpus = analyze_corpus(shared_model(), {.max_services = 2500});
  ASSERT_FALSE(corpus.quic_rows.empty());
  EXPECT_NEAR(corpus.quic_top10_coverage, 0.965, 0.03);
  EXPECT_NEAR(corpus.https_top10_coverage, 0.72, 0.05);
  // Rows are sorted by share, Cloudflare first on the QUIC side.
  EXPECT_GT(corpus.quic_rows[0].share, 0.5);
  for (std::size_t i = 1; i < corpus.quic_rows.size(); ++i) {
    EXPECT_GE(corpus.quic_rows[i - 1].share, corpus.quic_rows[i].share);
  }
}

TEST(Corpus, Table2ShapeHolds) {
  const auto corpus = analyze_corpus(shared_model(), {.max_services = 2500});
  // QUIC leaves skew ECDSA-P256; HTTPS-only leaves skew RSA-2048.
  const auto& quic_leaf = corpus.alg_counts[0][0];
  const auto& https_leaf = corpus.alg_counts[1][0];
  EXPECT_GT(quic_leaf[2], quic_leaf[0]);   // EC256 > RSA2048
  EXPECT_GT(https_leaf[0], https_leaf[2]); // RSA2048 > EC256
  // Non-leaf QUIC certificates include substantial EC shares (unique
  // certificates; Table 2: 40.4% EC256 + 22.1% EC384).
  const auto& quic_nonleaf = corpus.alg_counts[0][1];
  const std::size_t total = quic_nonleaf[0] + quic_nonleaf[1] +
                            quic_nonleaf[2] + quic_nonleaf[3];
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(quic_nonleaf[2] + quic_nonleaf[3]) /
                static_cast<double>(total),
            0.35);
}

TEST(Corpus, Fig8LargeChainsCarryHeavyNonLeaves) {
  const auto corpus = analyze_corpus(shared_model(), {.max_services = 2500});
  const double large_nonleaf =
      corpus.field_means[1][1][2].mean() + corpus.field_means[1][1][4].mean();
  const double small_nonleaf =
      corpus.field_means[0][1][2].mean() + corpus.field_means[0][1][4].mean();
  EXPECT_GT(large_nonleaf, small_nonleaf + 150.0);
}

TEST(Corpus, Fig14QuadrantsAreSkewed) {
  const auto corpus = analyze_corpus(shared_model(), {.max_services = 2500});
  const double total = static_cast<double>(
      corpus.quadrant_small_low + corpus.quadrant_small_high +
      corpus.quadrant_large_low + corpus.quadrant_large_high);
  ASSERT_GT(total, 0.0);
  EXPECT_GT(corpus.quadrant_small_low / total, 0.95);
  EXPECT_LT(corpus.quadrant_large_high / total, 0.02);
}

TEST(Compression, RatesAndLimitCompliance) {
  compression_options opt;
  opt.max_chains = 300;
  opt.max_probes = 120;
  const auto study = run_compression_study(shared_model(), opt);
  // §4.2: median synthetic rate ~65%, 99% under the limit compressed.
  EXPECT_GT(study.synthetic_savings[0].median(), 0.55);
  EXPECT_LT(study.synthetic_savings[0].median(), 0.90);
  EXPECT_GT(study.under_limit_compressed, 0.95);
  EXPECT_LT(study.under_limit_uncompressed, study.under_limit_compressed);
  // Table 1: wild mean ~73%, brotli support ~96%.
  EXPECT_GT(study.wild_savings.mean(), 0.55);
  EXPECT_NEAR(study.support_brotli, 0.96, 0.05);
}

TEST(Telescope, HypergiantOrdering) {
  const auto result =
      run_telescope_study(shared_model(), {.sessions_per_provider = 40});
  ASSERT_TRUE(result.amplification.contains("Meta"));
  ASSERT_TRUE(result.amplification.contains("Cloudflare"));
  ASSERT_TRUE(result.amplification.contains("Google"));
  const auto& meta = result.amplification.at("Meta");
  const auto& cf = result.amplification.at("Cloudflare");
  const auto& google = result.amplification.at("Google");
  // Fig. 9: everyone exceeds 3x; CF/Google below 10x; Meta way above.
  EXPECT_GT(cf.median(), 3.0);
  EXPECT_GT(google.median(), 3.0);
  EXPECT_LT(cf.quantile(0.9), 10.0);
  EXPECT_LT(google.quantile(0.9), 10.0);
  EXPECT_GT(meta.median(), 10.0);
  EXPECT_GT(result.meta_max_amplification, 25.0);
  // §4.3: session durations median ~51 s, max ~206 s.
  EXPECT_NEAR(result.meta_session_duration_s.median(), 51.0, 10.0);
  EXPECT_GT(result.meta_session_duration_s.max(), 150.0);
}

TEST(MetaScan, DisclosureImprovesBehaviour) {
  const auto pre = run_meta_scan(shared_model(), false, 2);
  const auto post = run_meta_scan(shared_model(), true, 2);
  double pre_max = 0.0;
  stats::summary post_mean;
  for (const auto& row : pre) {
    if (row.responded) {
      pre_max = std::max(pre_max, row.amplification.mean());
    }
  }
  for (const auto& row : post) {
    if (row.responded) {
      post_mean.add(row.amplification.mean());
    }
  }
  EXPECT_GT(pre_max, 25.0);          // up to 45x pre-disclosure
  EXPECT_LT(post_mean.mean(), 8.0);  // ~5x after
  EXPECT_GT(post_mean.mean(), 3.0);  // but still above the limit
}

TEST(Funnel, StagesAreConsistent) {
  const auto funnel = run_funnel(shared_model(), {.consistency_sample = 80});
  EXPECT_EQ(funnel.domains, 6000u);
  std::size_t dns_total = 0;
  for (const auto count : funnel.dns_outcomes) {
    dns_total += count;
  }
  EXPECT_EQ(dns_total, funnel.domains);
  EXPECT_GT(funnel.quic_services, 0u);
  EXPECT_NEAR(funnel.consistency_share(), 0.967, 0.035);  // §3.2
}

TEST(Browsers, Table1Profiles) {
  const auto& profiles = browser_profiles();
  ASSERT_EQ(profiles.size(), 3u);
  EXPECT_EQ(profiles[0].name, "Firefox");
  EXPECT_EQ(*profiles[0].initial_size, 1357u);
  EXPECT_TRUE(profiles[0].compression.empty());
  EXPECT_EQ(*profiles[1].initial_size, 1250u);
  EXPECT_EQ(profiles[1].compression.front(), compress::algorithm::brotli);
  EXPECT_FALSE(profiles[2].initial_size.has_value());  // Safari: no QUIC
}

TEST(PolicyStudy, HistoricalOrdering) {
  const auto rows = run_policy_study(shared_model(), "le-r3-x1cross");
  ASSERT_EQ(rows.size(), 5u);
  // Later drafts never allow more attacker-visible bytes than earlier.
  EXPECT_GE(rows[0].bytes_received, rows[2].bytes_received);
  EXPECT_GE(rows[2].bytes_received, rows[3].bytes_received);
  EXPECT_GE(rows[3].bytes_received, rows[4].bytes_received);
  // RFC 9000 bounds backscatter by 3x.
  EXPECT_LE(rows[4].amplification, 3.01);
  EXPECT_GT(rows[0].amplification, 6.0);
}

TEST(Tuner, RecommendationsClampAndConvert) {
  initial_size_tuner tuner;
  EXPECT_EQ(tuner.recommend("unknown.example"),
            initial_size_tuner::kMinInitial);
  tuner.record("small.example", 3000);
  EXPECT_EQ(tuner.recommend("small.example"),
            initial_size_tuner::kMinInitial);
  tuner.record("medium.example", 4100);
  const auto medium = tuner.recommend("medium.example");
  EXPECT_GT(medium, initial_size_tuner::kMinInitial);
  EXPECT_LE(medium, initial_size_tuner::kMaxInitial);
  tuner.record("huge.example", 50000);
  EXPECT_EQ(tuner.recommend("huge.example"),
            initial_size_tuner::kMaxInitial);
  EXPECT_EQ(tuner.size(), 3u);
  EXPECT_TRUE(tuner.knows("huge.example"));
}

}  // namespace
}  // namespace certquic::core
