// Cross-module integration tests: the full Figure-10 pipeline and the
// end-to-end invariants that tie the substrates together.
#include <gtest/gtest.h>

#include "core/census.hpp"
#include "core/funnel.hpp"
#include "http/collector.hpp"
#include "quic/client.hpp"
#include "quic/server.hpp"
#include "scan/qscanner.hpp"
#include "scan/reach.hpp"
#include "tls/handshake.hpp"

namespace certquic {
namespace {

const internet::model& shared_model() {
  static const internet::model m =
      internet::model::generate({.domains = 3000, .seed = 1234});
  return m;
}

TEST(Pipeline, DnsToCollectionToCensus) {
  const auto& m = shared_model();
  // Stage 1-2: HTTPS collection only visits resolvable TLS services.
  const http::collector collector{m};
  const auto collection = collector.collect_all();
  EXPECT_GT(collection.https_reachable, 1000u);

  // Stage 3: every collected QUIC service can be probed and classified.
  scan::reach prober{m};
  std::size_t probed = 0;
  for (const auto& rec : m.records()) {
    if (!rec.serves_quic()) {
      continue;
    }
    const auto result = prober.probe(rec, {.initial_size = 1362});
    EXPECT_NE(result.cls, scan::handshake_class::unreachable)
        << rec.domain;
    if (++probed >= 100) {
      break;
    }
  }
  EXPECT_EQ(probed, 100u);
}

TEST(Pipeline, QscannerAgreesWithHttpsCollectionForStableServices) {
  const auto& m = shared_model();
  const scan::qscanner qs{m};
  std::size_t checked = 0;
  std::size_t same = 0;
  for (const auto& rec : m.records()) {
    if (!rec.serves_quic() || rec.rotated_cert) {
      continue;
    }
    const auto fetched = qs.fetch(rec);
    if (!fetched.ok) {
      continue;
    }
    ++checked;
    same += qs.leaf_matches_https(m, rec, fetched) ? 1 : 0;
    if (checked >= 40) {
      break;
    }
  }
  ASSERT_GT(checked, 0u);
  EXPECT_EQ(same, checked);  // non-rotated services are consistent
}

TEST(Pipeline, WireBytesMatchChainArithmetic) {
  // The bytes a scanner receives must reconcile with the chain the
  // model says the service serves: TLS flight = SH + EE + CertMsg(chain)
  // + CV + Fin.
  const auto& m = shared_model();
  scan::reach prober{m};
  for (const auto& rec : m.records()) {
    if (!rec.serves_quic() ||
        rec.behavior != internet::behavior_kind::standard_no_coalesce) {
      continue;
    }
    const auto result =
        prober.probe(rec, {.initial_size = 1472,
                           .capture_certificate = true});
    if (!result.obs.handshake_complete) {
      continue;
    }
    const auto chain = m.chain_of(rec, internet::fetch_protocol::quic);
    const bytes cert_msg = tls::encode_certificate(chain);
    EXPECT_EQ(result.obs.certificate_msg_size, cert_msg.size())
        << rec.domain;
    // TLS bytes received >= certificate message (plus the other
    // handshake messages).
    EXPECT_GT(result.obs.tls_bytes_received, cert_msg.size());
    EXPECT_LT(result.obs.tls_bytes_received, cert_msg.size() + 800);
    break;
  }
}

TEST(Pipeline, FunnelCountsQuicConsistentlyWithRecords) {
  const auto& m = shared_model();
  const auto funnel = core::run_funnel(m, {.consistency_sample = 40});
  std::size_t quic = 0;
  for (const auto& rec : m.records()) {
    quic += rec.serves_quic() ? 1 : 0;
  }
  EXPECT_EQ(funnel.quic_services, quic);
  EXPECT_EQ(funnel.collection.quic_capable, quic);
}

TEST(Pipeline, CensusDeterminism) {
  core::census_options opt;
  opt.initial_size = 1302;
  opt.max_services = 200;
  const auto a = core::run_census(shared_model(), opt);
  const auto b = core::run_census(shared_model(), opt);
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(a.probed, b.probed);
}

// Failure injection: loss on the path must never break the
// anti-amplification invariant for compliant servers, and handshakes
// either complete or time out cleanly.
class LossInjection : public ::testing::TestWithParam<double> {};

TEST_P(LossInjection, CompliantServerSurvivesLoss) {
  const auto& m = shared_model();
  const internet::service_record* compliant = nullptr;
  for (const auto& rec : m.records()) {
    if (rec.serves_quic() &&
        rec.behavior == internet::behavior_kind::standard_no_coalesce) {
      compliant = &rec;
      break;
    }
  }
  ASSERT_NE(compliant, nullptr);

  net::simulator sim{77};
  const net::endpoint_id server_ep{compliant->address, 443};
  const net::endpoint_id client_ep{net::ipv4::of(10, 9, 9, 9), 4242};
  net::path_config lossy;
  lossy.loss_rate = GetParam();
  sim.set_path_to(client_ep, lossy);  // server->client direction drops

  quic::server srv{sim, server_ep,
                   m.chain_of(*compliant, internet::fetch_protocol::quic),
                   m.behavior_of(*compliant), m.compression_dictionary(), 5};
  quic::client cli{sim, client_ep, server_ep,
                   {.initial_size = 1362, .timeout = net::seconds(10)}, 6};
  cli.start();
  sim.run();

  const auto& obs = cli.result();
  EXPECT_TRUE(obs.handshake_complete || obs.timed_out);
  EXPECT_LE(obs.bytes_received_first_burst,
            3 * obs.bytes_sent_first_flight);
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossInjection,
                         ::testing::Values(0.0, 0.05, 0.2, 0.5, 0.9));

}  // namespace
}  // namespace certquic
