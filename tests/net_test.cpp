// Unit tests for the network simulator.
#include <gtest/gtest.h>

#include "net/address.hpp"
#include "net/simulator.hpp"
#include "util/errors.hpp"

namespace certquic::net {
namespace {

const endpoint_id kA{ipv4::of(10, 0, 0, 1), 1000};
const endpoint_id kB{ipv4::of(10, 0, 0, 2), 443};
const endpoint_id kSpoofed{ipv4::of(203, 0, 113, 7), 9999};

bytes payload_of(std::size_t n) { return bytes(n, 0xab); }

TEST(Address, ParseAndFormat) {
  const ipv4 a = ipv4::parse("157.240.229.35");
  EXPECT_EQ(a.to_string(), "157.240.229.35");
  EXPECT_EQ(a.host_octet(), 35);
  EXPECT_EQ(a.slash24().to_string(), "157.240.229.0");
  EXPECT_EQ(a, ipv4::of(157, 240, 229, 35));
}

TEST(Address, ParseRejectsMalformed) {
  EXPECT_THROW((void)ipv4::parse("1.2.3"), codec_error);
  EXPECT_THROW((void)ipv4::parse("1.2.3.999"), codec_error);
  EXPECT_THROW((void)ipv4::parse("1.2.3.4.5"), codec_error);
  EXPECT_THROW((void)ipv4::parse("a.b.c.d"), codec_error);
}

TEST(Address, EndpointFormatting) {
  EXPECT_EQ(kB.to_string(), "10.0.0.2:443");
}

TEST(Simulator, DeliversWithPathDelay) {
  simulator sim;
  time_point delivered_at = 0;
  sim.attach(kB, [&](const datagram& d) {
    delivered_at = sim.now();
    EXPECT_EQ(d.src, kA);
    EXPECT_EQ(d.payload.size(), 100u);
  });
  path_config path;
  path.one_way_delay = milliseconds(25);
  sim.set_path_to(kB, path);
  sim.send({kA, kB, payload_of(100)});
  sim.run();
  EXPECT_EQ(delivered_at, milliseconds(25));
  EXPECT_EQ(sim.stats().delivered, 1u);
}

TEST(Simulator, DropsOversizeDatagrams) {
  simulator sim;
  int received = 0;
  sim.attach(kB, [&](const datagram&) { ++received; });
  path_config path;
  path.mtu = 1500;  // capacity 1472
  sim.set_path_to(kB, path);
  sim.send({kA, kB, payload_of(1472)});
  sim.send({kA, kB, payload_of(1473)});
  sim.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(sim.stats().dropped_oversize, 1u);
}

TEST(Simulator, EncapsulationShrinksCapacity) {
  // §4.1: load-balancer tunneling adds headers, so large client
  // Initials exceed the path MTU and vanish.
  simulator sim;
  int received = 0;
  sim.attach(kB, [&](const datagram&) { ++received; });
  path_config path;
  path.mtu = 1500;
  path.encapsulation_overhead = 20;
  sim.set_path_to(kB, path);
  EXPECT_EQ(path.udp_capacity(), 1452u);
  sim.send({kA, kB, payload_of(1452)});
  sim.send({kA, kB, payload_of(1462)});
  sim.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(sim.stats().dropped_oversize, 1u);
}

TEST(Simulator, UnroutableCounted) {
  simulator sim;
  sim.send({kA, kB, payload_of(10)});
  sim.run();
  EXPECT_EQ(sim.stats().dropped_unroutable, 1u);
}

TEST(Simulator, SpoofedSourceRoutesReplyToVictim) {
  simulator sim;
  int server_got = 0;
  int victim_got = 0;
  sim.attach(kB, [&](const datagram& d) {
    ++server_got;
    // Reply to the (spoofed) source — the amplification reflection.
    sim.send({kB, d.src, payload_of(300)});
  });
  sim.attach(kSpoofed, [&](const datagram& d) {
    ++victim_got;
    EXPECT_EQ(d.payload.size(), 300u);
  });
  sim.send({kSpoofed, kB, payload_of(100)});  // attacker spoofs
  sim.run();
  EXPECT_EQ(server_got, 1);
  EXPECT_EQ(victim_got, 1);
}

TEST(Simulator, LossRateDropsRoughlyProportionally) {
  simulator sim{1234};
  int received = 0;
  sim.attach(kB, [&](const datagram&) { ++received; });
  path_config path;
  path.loss_rate = 0.25;
  sim.set_path_to(kB, path);
  constexpr int kN = 4000;
  for (int i = 0; i < kN; ++i) {
    sim.send({kA, kB, payload_of(10)});
  }
  sim.run();
  EXPECT_NEAR(static_cast<double>(received) / kN, 0.75, 0.03);
  EXPECT_EQ(sim.stats().dropped_loss + static_cast<std::uint64_t>(received),
            static_cast<std::uint64_t>(kN));
}

TEST(Simulator, TimersFireInOrder) {
  simulator sim;
  std::vector<int> order;
  sim.schedule(milliseconds(30), [&]() { order.push_back(3); });
  sim.schedule(milliseconds(10), [&]() { order.push_back(1); });
  sim.schedule(milliseconds(20), [&]() { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), milliseconds(30));
}

TEST(Simulator, EqualTimestampsFifo) {
  simulator sim;
  std::vector<int> order;
  sim.schedule(milliseconds(5), [&]() { order.push_back(1); });
  sim.schedule(milliseconds(5), [&]() { order.push_back(2); });
  sim.schedule(milliseconds(5), [&]() { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, HandlersMayScheduleMoreWork) {
  simulator sim;
  int fired = 0;
  std::function<void()> chain = [&]() {
    if (++fired < 5) {
      sim.schedule(milliseconds(1), chain);
    }
  };
  sim.schedule(milliseconds(1), chain);
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), milliseconds(5));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  simulator sim;
  int fired = 0;
  sim.schedule(milliseconds(10), [&]() { ++fired; });
  sim.schedule(milliseconds(50), [&]() { ++fired; });
  sim.run_until(milliseconds(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), milliseconds(20));
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, DetachMakesEndpointUnroutable) {
  simulator sim;
  int received = 0;
  sim.attach(kB, [&](const datagram&) { ++received; });
  sim.send({kA, kB, payload_of(10)});
  sim.run();
  sim.detach(kB);
  sim.send({kA, kB, payload_of(10)});
  sim.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(sim.stats().dropped_unroutable, 1u);
}

TEST(Time, Conversions) {
  EXPECT_EQ(milliseconds(1), microseconds(1000));
  EXPECT_EQ(seconds(1), milliseconds(1000));
  EXPECT_DOUBLE_EQ(to_seconds(seconds(51)), 51.0);
}

}  // namespace
}  // namespace certquic::net
