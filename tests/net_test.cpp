// Unit tests for the network simulator.
#include <gtest/gtest.h>

#include "net/address.hpp"
#include "net/simulator.hpp"
#include "util/errors.hpp"

namespace certquic::net {
namespace {

const endpoint_id kA{ipv4::of(10, 0, 0, 1), 1000};
const endpoint_id kB{ipv4::of(10, 0, 0, 2), 443};
const endpoint_id kSpoofed{ipv4::of(203, 0, 113, 7), 9999};

bytes payload_of(std::size_t n) { return bytes(n, 0xab); }

TEST(Address, ParseAndFormat) {
  const ipv4 a = ipv4::parse("157.240.229.35");
  EXPECT_EQ(a.to_string(), "157.240.229.35");
  EXPECT_EQ(a.host_octet(), 35);
  EXPECT_EQ(a.slash24().to_string(), "157.240.229.0");
  EXPECT_EQ(a, ipv4::of(157, 240, 229, 35));
}

TEST(Address, ParseRejectsMalformed) {
  EXPECT_THROW((void)ipv4::parse("1.2.3"), codec_error);
  EXPECT_THROW((void)ipv4::parse("1.2.3.999"), codec_error);
  EXPECT_THROW((void)ipv4::parse("1.2.3.4.5"), codec_error);
  EXPECT_THROW((void)ipv4::parse("a.b.c.d"), codec_error);
}

TEST(Address, EndpointFormatting) {
  EXPECT_EQ(kB.to_string(), "10.0.0.2:443");
}

TEST(Simulator, DeliversWithPathDelay) {
  simulator sim;
  time_point delivered_at = 0;
  sim.attach(kB, [&](const datagram& d) {
    delivered_at = sim.now();
    EXPECT_EQ(d.src, kA);
    EXPECT_EQ(d.payload.size(), 100u);
  });
  path_config path;
  path.one_way_delay = milliseconds(25);
  sim.set_path_to(kB, path);
  sim.send({kA, kB, payload_of(100)});
  sim.run();
  EXPECT_EQ(delivered_at, milliseconds(25));
  EXPECT_EQ(sim.stats().delivered, 1u);
}

TEST(Simulator, DropsOversizeDatagrams) {
  simulator sim;
  int received = 0;
  sim.attach(kB, [&](const datagram&) { ++received; });
  path_config path;
  path.mtu = 1500;  // capacity 1472
  sim.set_path_to(kB, path);
  sim.send({kA, kB, payload_of(1472)});
  sim.send({kA, kB, payload_of(1473)});
  sim.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(sim.stats().dropped_oversize, 1u);
}

TEST(Simulator, EncapsulationShrinksCapacity) {
  // §4.1: load-balancer tunneling adds headers, so large client
  // Initials exceed the path MTU and vanish.
  simulator sim;
  int received = 0;
  sim.attach(kB, [&](const datagram&) { ++received; });
  path_config path;
  path.mtu = 1500;
  path.encapsulation_overhead = 20;
  sim.set_path_to(kB, path);
  EXPECT_EQ(path.udp_capacity(), 1452u);
  sim.send({kA, kB, payload_of(1452)});
  sim.send({kA, kB, payload_of(1462)});
  sim.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(sim.stats().dropped_oversize, 1u);
}

TEST(Simulator, UnroutableCounted) {
  simulator sim;
  sim.send({kA, kB, payload_of(10)});
  sim.run();
  EXPECT_EQ(sim.stats().dropped_unroutable, 1u);
}

TEST(Simulator, SpoofedSourceRoutesReplyToVictim) {
  simulator sim;
  int server_got = 0;
  int victim_got = 0;
  sim.attach(kB, [&](const datagram& d) {
    ++server_got;
    // Reply to the (spoofed) source — the amplification reflection.
    sim.send({kB, d.src, payload_of(300)});
  });
  sim.attach(kSpoofed, [&](const datagram& d) {
    ++victim_got;
    EXPECT_EQ(d.payload.size(), 300u);
  });
  sim.send({kSpoofed, kB, payload_of(100)});  // attacker spoofs
  sim.run();
  EXPECT_EQ(server_got, 1);
  EXPECT_EQ(victim_got, 1);
}

TEST(Simulator, LossRateDropsRoughlyProportionally) {
  simulator sim{1234};
  int received = 0;
  sim.attach(kB, [&](const datagram&) { ++received; });
  path_config path;
  path.loss_rate = 0.25;
  sim.set_path_to(kB, path);
  constexpr int kN = 4000;
  for (int i = 0; i < kN; ++i) {
    sim.send({kA, kB, payload_of(10)});
  }
  sim.run();
  EXPECT_NEAR(static_cast<double>(received) / kN, 0.75, 0.03);
  EXPECT_EQ(sim.stats().dropped_loss + static_cast<std::uint64_t>(received),
            static_cast<std::uint64_t>(kN));
}

TEST(Simulator, TimersFireInOrder) {
  simulator sim;
  std::vector<int> order;
  sim.schedule(milliseconds(30), [&]() { order.push_back(3); });
  sim.schedule(milliseconds(10), [&]() { order.push_back(1); });
  sim.schedule(milliseconds(20), [&]() { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), milliseconds(30));
}

TEST(Simulator, EqualTimestampsFifo) {
  simulator sim;
  std::vector<int> order;
  sim.schedule(milliseconds(5), [&]() { order.push_back(1); });
  sim.schedule(milliseconds(5), [&]() { order.push_back(2); });
  sim.schedule(milliseconds(5), [&]() { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, HandlersMayScheduleMoreWork) {
  simulator sim;
  int fired = 0;
  std::function<void()> chain = [&]() {
    if (++fired < 5) {
      sim.schedule(milliseconds(1), chain);
    }
  };
  sim.schedule(milliseconds(1), chain);
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), milliseconds(5));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  simulator sim;
  int fired = 0;
  sim.schedule(milliseconds(10), [&]() { ++fired; });
  sim.schedule(milliseconds(50), [&]() { ++fired; });
  sim.run_until(milliseconds(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), milliseconds(20));
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilMaxEventsExitKeepsTimeMonotonic) {
  // Regression: exiting on max_events with events still queued before
  // the deadline used to force now() to the deadline anyway, so the
  // next run() fired those events *in the past* — handlers observed
  // sim.now() jump backwards. now() must stay at the last processed
  // event when the queue is not drained.
  simulator sim;
  std::vector<time_point> fired_at;
  sim.schedule(milliseconds(10), [&]() { fired_at.push_back(sim.now()); });
  sim.schedule(milliseconds(20), [&]() { fired_at.push_back(sim.now()); });

  const std::size_t processed = sim.run_until(milliseconds(50), 1);
  EXPECT_EQ(processed, 1u);
  EXPECT_EQ(sim.now(), milliseconds(10));  // not 50: queue not drained

  sim.run();
  ASSERT_EQ(fired_at.size(), 2u);
  EXPECT_EQ(fired_at[0], milliseconds(10));
  EXPECT_EQ(fired_at[1], milliseconds(20));  // fires at 20, not "at" 50
  EXPECT_EQ(sim.now(), milliseconds(20));
}

TEST(Simulator, RunUntilDrainedQueueStillAdvancesToDeadline) {
  // The companion invariant: when everything up to the deadline has
  // fired, now() does advance to the deadline (callers rely on it as
  // the observation cut-off).
  simulator sim;
  int fired = 0;
  sim.schedule(milliseconds(10), [&]() { ++fired; });
  sim.schedule(milliseconds(60), [&]() { ++fired; });
  sim.run_until(milliseconds(50));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), milliseconds(50));
}

TEST(Simulator, LossPatternStableAcrossConfigChanges) {
  // Loss is a pure function of (seed, send sequence): reconfiguring an
  // unrelated path — here shrinking B's MTU so some of its datagrams
  // are dropped oversize instead of sent — must not shift which of A's
  // datagrams are lost. Under a shared RNG stream it would.
  const endpoint_id kVictim{ipv4::of(10, 0, 0, 3), 443};
  auto run_pattern = [&](std::size_t b_mtu) {
    simulator sim{777};
    std::vector<int> arrived;
    sim.attach(kVictim, [&](const datagram& d) {
      arrived.push_back(static_cast<int>(d.payload[0]));
    });
    sim.attach(kB, [](const datagram&) {});
    path_config lossy;
    lossy.loss_rate = 0.5;
    sim.set_path_to(kVictim, lossy);
    // The other path is lossy too: under a shared RNG stream, dropping
    // its datagrams oversize (small MTU) skips their loss draws and
    // shifts every later draw — which is exactly the cascade the
    // per-sequence hash eliminates.
    path_config b_path;
    b_path.mtu = b_mtu;
    b_path.loss_rate = 0.5;
    sim.set_path_to(kB, b_path);
    for (int i = 0; i < 50; ++i) {
      sim.send({kA, kVictim, bytes(1, static_cast<std::uint8_t>(i))});
      sim.send({kA, kB, payload_of(1400)});  // interleaved other traffic
    }
    sim.run();
    return arrived;
  };
  // 1500 carries the 1400-byte datagrams; 1000 drops them oversize.
  EXPECT_EQ(run_pattern(1500), run_pattern(1000));
}

TEST(Simulator, BandwidthSerializesBursts) {
  // 1 Mbit/s: a 1250-byte datagram occupies the link for 10 ms. Three
  // sent back-to-back at t=0 arrive one serialization apart, each after
  // the 10 ms propagation delay.
  simulator sim;
  std::vector<time_point> arrivals;
  sim.attach(kB, [&](const datagram&) { arrivals.push_back(sim.now()); });
  path_config path;
  path.bandwidth_bps = 1'000'000;
  sim.set_path_to(kB, path);
  for (int i = 0; i < 3; ++i) {
    sim.send({kA, kB, payload_of(1250)});
  }
  sim.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], milliseconds(20));  // 10 serialize + 10 delay
  EXPECT_EQ(arrivals[1], milliseconds(30));
  EXPECT_EQ(arrivals[2], milliseconds(40));
}

TEST(Simulator, EqualTimestampDatagramsDeliverFifo) {
  // Deliveries with identical timestamps keep send order — the same
  // FIFO tie-break the timer test pins, but through the datagram path.
  simulator sim;
  std::vector<int> order;
  sim.attach(kB, [&](const datagram& d) {
    order.push_back(static_cast<int>(d.payload[0]));
  });
  for (int i = 0; i < 4; ++i) {
    sim.send({kA, kB, bytes(1, static_cast<std::uint8_t>(i))});
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(NetworkCondition, DefaultMatchesHistoricalPath) {
  network_condition cond;
  path_config path;
  path.encapsulation_overhead = 13;
  cond.apply_to(path);
  EXPECT_EQ(path.one_way_delay, milliseconds(10));
  EXPECT_EQ(path.loss_rate, 0.0);
  EXPECT_EQ(path.bandwidth_bps, 0u);
  EXPECT_EQ(path.encapsulation_overhead, 13u);  // left to the caller
}

TEST(Simulator, DetachMakesEndpointUnroutable) {
  simulator sim;
  int received = 0;
  sim.attach(kB, [&](const datagram&) { ++received; });
  sim.send({kA, kB, payload_of(10)});
  sim.run();
  sim.detach(kB);
  sim.send({kA, kB, payload_of(10)});
  sim.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(sim.stats().dropped_unroutable, 1u);
}

TEST(Time, Conversions) {
  EXPECT_EQ(milliseconds(1), microseconds(1000));
  EXPECT_EQ(seconds(1), milliseconds(1000));
  EXPECT_DOUBLE_EQ(to_seconds(seconds(51)), 51.0);
}

}  // namespace
}  // namespace certquic::net
