// Chain-profile sweep walkthrough: what happens to the handshake
// census when the Web's certificate chains go post-quantum (the
// Chou & Cao what-if on top of this paper's datasets).
//
// The sweep is one probe_plan with three variants — one per chain
// profile — so every service is probed under matched randomness and
// the per-class deltas isolate the chain-size effect. See
// docs/SCENARIOS.md for the bench twin (fig_pqc_chain_impact) and
// docs/ARCHITECTURE.md for the axis itself.
#include <cstdio>

#include "core/pqc_study.hpp"
#include "util/text_table.hpp"

int main() {
  using namespace certquic;

  const internet::config cfg{.domains = 8000, .seed = 42};
  const auto model = internet::model::generate(cfg);

  core::pqc_options opt;
  opt.max_services = 600;
  opt.max_corpus = 1200;
  const auto study = core::run_pqc_study(model, opt);

  std::printf("== chain sizes under the PQC profiles (corpus pass) ==\n");
  text_table sizes({"profile", "QUIC median", "HTTPS-only median",
                    "chains > 3x1357"});
  for (const auto& slice : study.slices) {
    sizes.add_row({x509::to_string(slice.profile),
                   fixed(slice.quic_chain_sizes.median(), 0) + " B",
                   fixed(slice.https_chain_sizes.median(), 0) + " B",
                   pct(slice.over_amp_limit, 1)});
  }
  std::printf("%s", sizes.render().c_str());

  std::printf("\n== handshake classes under the PQC profiles (census pass, "
              "Initial=%zu) ==\n",
              study.initial_size);
  text_table classes({"profile", "1-RTT", "Multi-RTT", "Amplification",
                      "failed", "median amp"});
  for (const auto& slice : study.slices) {
    classes.add_row(
        {x509::to_string(slice.profile),
         std::to_string(slice.count(scan::handshake_class::one_rtt)),
         std::to_string(slice.count(scan::handshake_class::multi_rtt)),
         std::to_string(slice.count(scan::handshake_class::amplification)),
         std::to_string(slice.count(scan::handshake_class::unreachable)),
         slice.amplification.empty()
             ? std::string("-")
             : fixed(slice.amplification.median(), 2) + "x"});
  }
  std::printf("%s", classes.render().c_str());

  const auto& full = study.slice(x509::pq_profile::pqc_full);
  std::printf(
      "\nGoing fully post-quantum moves %+lld handshakes out of 1-RTT and "
      "%+lld into multi-RTT\n(deltas vs the classical baseline of %zu "
      "probes); %.1f%% of all chains then exceed the\n3x1357-byte "
      "amplification budget.\n",
      study.class_delta(2, scan::handshake_class::one_rtt),
      study.class_delta(2, scan::handshake_class::multi_rtt),
      study.slices[0].probed, full.over_amp_limit * 100.0);
  return 0;
}
