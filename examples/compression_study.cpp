// RFC 8879 certificate compression, hands on: take one real chain, run
// it through all three algorithm presets against the shared dictionary,
// and check the anti-amplification arithmetic before and after.
#include <cstdio>

#include "ca/ecosystem.hpp"
#include "compress/codec.hpp"
#include "tls/handshake.hpp"
#include "util/text_table.hpp"

int main() {
  using namespace certquic;

  auto eco = ca::ecosystem::make();
  const bytes dictionary = eco.compression_dictionary();
  rng r{2022};

  for (const char* profile_id : {"cloudflare", "le-r3-x1cross", "cpanel"}) {
    const auto& profile = eco.profile(profile_id);
    const auto chain = eco.issue(profile, "shop.example.org", r);
    const bytes cert_msg = tls::encode_certificate(chain);

    std::printf("== %s ==\n", profile.display.c_str());
    std::printf("chain: %zu certificates, %zu bytes DER; Certificate "
                "message: %zu bytes\n",
                chain.depth(), chain.wire_size(), cert_msg.size());

    text_table table({"algorithm", "compressed", "rate", "fits 3x1357?",
                      "lossless"});
    for (const auto alg :
         {compress::algorithm::brotli, compress::algorithm::zlib,
          compress::algorithm::zstd}) {
      const compress::codec codec{alg, dictionary};
      const bytes compressed = codec.compress(cert_msg);
      const bool lossless = codec.decompress(compressed) == cert_msg;
      table.add_row({compress::to_string(alg),
                     std::to_string(compressed.size()) + " B",
                     pct(1.0 - static_cast<double>(compressed.size()) /
                                   static_cast<double>(cert_msg.size()),
                         1),
                     compressed.size() <= 3 * 1357 ? "yes" : "NO",
                     lossless ? "yes" : "NO"});
    }
    std::printf("%s", table.render().c_str());
    std::printf("uncompressed fits the common 3x1357 limit: %s\n\n",
                cert_msg.size() <= 3 * 1357 ? "yes" : "NO");
  }
  std::printf(
      "Paper §4.2: compression keeps 99%% of chains under the limit and "
      "would prevent\nmulti-RTT handshakes; only servers+clients that "
      "both support it benefit.\n");
  return 0;
}
