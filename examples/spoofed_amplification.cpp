// Adversary imitation (§4.3): spoof a victim's address towards
// hypergiant QUIC servers, watch the victim's telescope fill up with
// amplified backscatter, then actively confirm with single-Initial
// probes against the Meta /24.
#include <cstdio>

#include "core/amplification_study.hpp"
#include "util/text_table.hpp"

int main() {
  using namespace certquic;

  const auto model = internet::model::generate({.domains = 3000, .seed = 42});

  std::printf("== telescope backscatter (spoofed sources, §4.3) ==\n");
  const auto telescope =
      core::run_telescope_study(model, {.sessions_per_provider = 80});
  text_table table({"provider", "sessions", "median", "p90", "max"});
  for (const auto& [provider, samples] : telescope.amplification) {
    table.add_row({provider, std::to_string(samples.size()),
                   fixed(samples.median(), 1) + "x",
                   fixed(samples.quantile(0.9), 1) + "x",
                   fixed(samples.max(), 1) + "x"});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nEvery provider exceeds the 3x limit via resends; Meta reaches "
      "%.1fx (paper: up to 45x).\nMeta session durations: median %.0f s, "
      "max %.0f s (paper: ~51 s / 206 s) — short sessions,\nso the "
      "factors are not biased by reused connection ids.\n\n",
      telescope.meta_max_amplification,
      telescope.meta_session_duration_s.median(),
      telescope.meta_session_duration_s.max());

  std::printf("== active confirmation: Meta /24, one 1252-byte Initial ==\n");
  const auto rows = core::run_meta_scan(model, /*post_disclosure=*/false, 2);
  std::printf("  %-6s %-10s %-6s %s\n", "octet", "bytes", "ampl", "services");
  for (const auto& row : rows) {
    if (row.host_octet % 10 != 0 && row.host_octet != 35 &&
        row.host_octet != 36 && row.host_octet != 63) {
      continue;  // print a readable subset
    }
    std::printf("  %-6d %-10zu %-5.1fx %s\n", row.host_octet,
                row.bytes_received,
                row.responded ? row.amplification.mean() : 0.0,
                row.services.c_str());
  }
  std::printf(
      "\nThe *.35/*.36 facebook group answers with ~7 kB (>5x); the "
      "*.60/*.63 instagram/whatsapp\ngroup with ~35 kB (>28x) — factors "
      "similar to classic UDP amplification protocols.\n");
  return 0;
}
