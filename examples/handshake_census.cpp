// The full Figure-10 measurement pipeline, end to end:
//   1. DNS resolution funnel          (§3.1, dig @8.8.8.8)
//   2. HTTPS certificate collection   (§3.1, libcurl + libxml2)
//   3. QUIC handshake classification  (§3.2, quicreach)
//   4. QUIC certificate cross-check   (§3.2, QScanner)
//   5. merged report                  (§4.1)
#include <cstdio>

#include "core/census.hpp"
#include "core/funnel.hpp"
#include "util/text_table.hpp"

int main() {
  using namespace certquic;

  const internet::config cfg{.domains = 10000, .seed = 42};
  const auto model = internet::model::generate(cfg);

  // Stages 1-2 + 4: resolution, collection, consistency sanitization.
  const auto funnel = core::run_funnel(model, {.consistency_sample = 200});
  std::printf("== measurement funnel (paper §3.1/§3.2, 1M names) ==\n");
  text_table funnel_table({"stage", "names", "share"});
  const auto domains = static_cast<double>(funnel.domains);
  auto add = [&](const char* stage, std::size_t n) {
    funnel_table.add_row({stage, with_commas(static_cast<long long>(n)),
                          pct(static_cast<double>(n) / domains)});
  };
  add("scanned", funnel.domains);
  add("A record", funnel.dns_outcomes[0]);
  add("SERVFAIL",
      funnel.dns_outcomes[static_cast<int>(dns::outcome::servfail)]);
  add("NXDOMAIN",
      funnel.dns_outcomes[static_cast<int>(dns::outcome::nxdomain)]);
  add("HTTPS reachable", funnel.collection.https_reachable);
  add("unique certificates", funnel.collection.unique_certificates);
  add("QUIC services", funnel.quic_services);
  std::printf("%s", funnel_table.render().c_str());
  std::printf(
      "redirects followed: %zu; certificate consistent across QUIC/HTTPS: "
      "%.1f%% (paper: 96.7%%)\n\n",
      funnel.collection.redirects_followed,
      funnel.consistency_share() * 100.0);

  // Stage 3 + 5: classification census at the default Initial size.
  core::census_options opt;
  opt.initial_size = 1362;
  opt.max_services = 1500;
  const auto census = core::run_census(model, opt);
  std::printf("== handshake census @ Initial=1362 (paper §4.1) ==\n");
  text_table census_table({"class", "count", "share", "paper"});
  static const std::pair<scan::handshake_class, const char*> kRows[] = {
      {scan::handshake_class::amplification, "61%"},
      {scan::handshake_class::multi_rtt, "38%"},
      {scan::handshake_class::retry, "0.07%"},
      {scan::handshake_class::one_rtt, "0.75%"},
  };
  for (const auto& [cls, paper] : kRows) {
    census_table.add_row({scan::to_string(cls),
                          std::to_string(census.count(cls)),
                          pct(census.share(cls)), paper});
  }
  std::printf("%s", census_table.render().c_str());
  std::printf(
      "\n%.1f%% of amplifying handshakes terminate at Cloudflare-profile "
      "servers (paper: 96%%).\n",
      census.amplifying == 0
          ? 0.0
          : 100.0 * static_cast<double>(census.amplifying_cloudflare) /
                static_cast<double>(census.amplifying));

  // Client-behaviour axis ("ReACKed QUICer"): the same services probed
  // under three ACK policies — matched per-probe randomness, so every
  // delta isolates the client behaviour.
  const auto sweep = core::run_ack_sweep(model, 600);
  std::printf("\n== client ACK-policy sweep (ReACKed QUICer) ==\n");
  text_table ack_table({"client", "1-RTT", "Multi-RTT", "Amplification",
                        "unreachable", "completed", "median hs"});
  for (const auto& slice : sweep.slices) {
    ack_table.add_row(
        {quic::to_string(slice.policy),
         std::to_string(slice.count(scan::handshake_class::one_rtt)),
         std::to_string(slice.count(scan::handshake_class::multi_rtt)),
         std::to_string(slice.count(scan::handshake_class::amplification)),
         std::to_string(slice.count(scan::handshake_class::unreachable)),
         std::to_string(slice.completed()),
         slice.handshake_ms.empty()
             ? std::string("-")
             : fixed(slice.handshake_ms.median(), 1) + " ms"});
  }
  std::printf("%s", ack_table.render().c_str());
  const auto& delayed = sweep.slices[0];
  const auto& instant = sweep.slices[1];
  std::printf(
      "instant ACKs change no handshake class (multi-RTT delta %+lld) but "
      "shave the mean completed\nhandshake from %.2f ms to %.2f ms; a "
      "silent client strands every multi-RTT service\n(delta %+lld "
      "unreachable).\n",
      sweep.class_delta(1, scan::handshake_class::multi_rtt),
      delayed.handshake_ms.empty() ? 0.0 : delayed.handshake_ms.mean(),
      instant.handshake_ms.empty() ? 0.0 : instant.handshake_ms.mean(),
      sweep.class_delta(2, scan::handshake_class::unreachable));
  return 0;
}
