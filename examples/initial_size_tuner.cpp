// The §5 client-side mitigation: cache each server's observed flight
// size and pick the next visit's Initial size so the server's reply
// fits within 3x — no certificate compression required.
//
// The demo also shows the mitigation's honest limits: servers that burn
// their budget on padding, or serve chains beyond 3x1472, stay
// multi-RTT no matter what the client does.
#include <cstdio>

#include "core/tuner.hpp"
#include "scan/reach.hpp"

int main() {
  using namespace certquic;

  const auto model = internet::model::generate({.domains = 20000, .seed = 42});

  // Show the mechanism on one borderline (lean, small-chain) service.
  scan::reach prober{model};
  core::initial_size_tuner tuner;
  for (const auto& rec : model.records()) {
    if (!rec.serves_quic() ||
        rec.behavior != internet::behavior_kind::standard_lean ||
        rec.chain_profile != "le-e1-x2") {
      continue;
    }
    const auto first = prober.probe(
        rec, {.initial_size = core::initial_size_tuner::kMinInitial});
    tuner.record(rec.domain, first.obs.bytes_received_total);
    const std::size_t tuned = tuner.recommend(rec.domain);
    const auto second = prober.probe(rec, {.initial_size = tuned});
    std::printf("service %s (chain %s):\n", rec.domain.c_str(),
                rec.chain_profile.c_str());
    std::printf("  visit 1: Initial=%zu -> %s (server flight %zu bytes)\n",
                core::initial_size_tuner::kMinInitial,
                scan::to_string(first.cls).c_str(),
                first.obs.bytes_received_total);
    std::printf("  visit 2: Initial=%zu -> %s\n", tuned,
                scan::to_string(second.cls).c_str());
    break;
  }

  // Population-level effect.
  const auto study = core::run_tuner_study(model, 800);
  std::printf(
      "\npopulation study over %zu QUIC services:\n"
      "  multi-RTT with %zu-byte Initials : %zu\n"
      "  multi-RTT with tuned Initials    : %zu\n"
      "  converted to 1-RTT               : %zu\n",
      study.services, core::initial_size_tuner::kMinInitial,
      study.multi_rtt_default, study.multi_rtt_tuned,
      study.converted_to_one_rtt);
  std::printf(
      "\nOnly services whose full flight fits into 3x1472 bytes can be "
      "rescued; for everyone else\nthe paper's other remedies apply: "
      "certificate compression, smaller (ECDSA) chains, and\nserver-side "
      "packet coalescing.\n");
  return 0;
}
