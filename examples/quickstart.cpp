// Quickstart: build a tiny synthetic Internet, describe a probe plan,
// run it on the experiment engine, and aggregate through composable
// observation sinks — the three moving parts every study in this
// repository is built from. Start here.
#include <cstdio>
#include <filesystem>

#include "engine/backend.hpp"
#include "engine/engine.hpp"
#include "engine/spill.hpp"
#include "internet/model.hpp"
#include "util/text_table.hpp"

int main() {
  using namespace certquic;

  // 1. Generate a small population (deterministic for a given seed).
  const auto model = internet::model::generate({.domains = 2000, .seed = 7});
  std::printf("generated %zu domains\n", model.domain_count());

  // 2. Describe *what* to measure: a probe plan is a deterministic
  //    service sample crossed with client-configuration variants. Here:
  //    every QUIC service once, with a browser-sized Initial.
  engine::probe_plan plan =
      engine::probe_plan::single({.initial_size = 1362});

  // 3. Describe *what to keep*: sinks receive one record per probe, in
  //    plan order, wrapped in an on_begin/on_end lifecycle. Sinks
  //    compose — here a tee fans the stream into (a) a table of the
  //    first probe per server-behaviour archetype, (b) a spill file on
  //    disk, the out-of-core path for million-domain sweeps.
  text_table table({"domain", "chain", "class", "sent", "received",
                    "first-burst ampl", "RTT extra"});
  bool seen[6] = {};
  engine::callback_sink tabulate{[&](const engine::probe_record& pr) {
    const auto kind = static_cast<std::size_t>(pr.record.behavior);
    if (seen[kind]) {
      return;
    }
    seen[kind] = true;
    const quic::observation& obs = pr.result.obs;
    table.add_row({pr.record.domain, pr.record.chain_profile,
                   scan::to_string(pr.result.cls),
                   std::to_string(obs.bytes_sent_total),
                   std::to_string(obs.bytes_received_total),
                   fixed(obs.first_burst_amplification(), 2) + "x",
                   std::to_string(obs.acks_before_complete)});
  }};
  const std::string spill_path =
      (std::filesystem::temp_directory_path() / "quickstart_spill.txt")
          .string();
  engine::spill_sink spill{spill_path};
  engine::tee_sink sinks{{&tabulate, &spill}};

  // 4. Run it. The executor shards the plan across a thread pool
  //    (CERTQUIC_THREADS; parallel by default) on the stateless reach
  //    backend — one simulated handshake per probe — and streams the
  //    results back in deterministic plan order, so this output is
  //    bit-identical at any thread count.
  engine::executor{model}.run(plan, sinks);
  std::printf("\n%s", table.render().c_str());

  // 5. Re-aggregate without re-probing: replay the spill file through
  //    any other sink — here one that just counts completed handshakes
  //    behind a filter.
  std::size_t completed = 0;
  engine::callback_sink count{
      [&](const engine::probe_record&) { ++completed; }};
  engine::filter_sink only_completed{
      count, [](const engine::probe_record& pr) {
        return pr.result.obs.handshake_complete;
      }};
  const std::size_t replayed =
      engine::spill_reader{model, plan}.replay(spill_path, only_completed);
  std::printf(
      "\nspilled %zu probe records to disk; replayed them: %zu/%zu "
      "handshakes completed\n",
      spill.records_written(), completed, replayed);
  std::filesystem::remove(spill_path);

  // 6. Look at one served certificate chain.
  for (const auto& rec : model.records()) {
    if (!rec.serves_quic()) {
      continue;
    }
    const auto chain = model.chain_of(rec, internet::fetch_protocol::quic);
    std::printf("\nchain served by %s (%zu certificates, %zu bytes):\n",
                rec.domain.c_str(), chain.depth(), chain.wire_size());
    chain.for_each([](const x509::certificate& cert) {
      std::printf("  %s\n", cert.describe().c_str());
    });
    break;
  }
  std::printf(
      "\nNext: run the bench binaries (build/bench/fig*) to regenerate "
      "the paper's figures.\n");
  return 0;
}
