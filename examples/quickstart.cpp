// Quickstart: build a tiny synthetic Internet, run one QUIC handshake
// against a service of each behaviour class, and print what the scanner
// observes. Start here to see the library's moving parts in one place.
#include <cstdio>

#include "internet/model.hpp"
#include "scan/reach.hpp"
#include "util/text_table.hpp"

int main() {
  using namespace certquic;

  // 1. Generate a small population (deterministic for a given seed).
  const auto model = internet::model::generate({.domains = 2000, .seed = 7});
  std::printf("generated %zu domains\n", model.domain_count());

  // 2. Probe one QUIC service per behaviour archetype with a
  //    browser-sized Initial, exactly like the paper's quicreach scans.
  scan::reach prober{model};
  text_table table({"domain", "chain", "class", "sent", "received",
                    "first-burst ampl", "RTT extra"});
  bool seen[6] = {};
  for (const auto& rec : model.records()) {
    if (!rec.serves_quic()) {
      continue;
    }
    const auto kind = static_cast<std::size_t>(rec.behavior);
    if (seen[kind]) {
      continue;
    }
    seen[kind] = true;

    const scan::probe_result probe =
        prober.probe(rec, {.initial_size = 1362});
    const quic::observation& obs = probe.obs;
    table.add_row({rec.domain, rec.chain_profile,
                   scan::to_string(probe.cls),
                   std::to_string(obs.bytes_sent_total),
                   std::to_string(obs.bytes_received_total),
                   fixed(obs.first_burst_amplification(), 2) + "x",
                   std::to_string(obs.acks_before_complete)});
  }
  std::printf("\n%s", table.render().c_str());

  // 3. Look at one served certificate chain.
  for (const auto& rec : model.records()) {
    if (!rec.serves_quic()) {
      continue;
    }
    const auto chain = model.chain_of(rec, internet::fetch_protocol::quic);
    std::printf("\nchain served by %s (%zu certificates, %zu bytes):\n",
                rec.domain.c_str(), chain.depth(), chain.wire_size());
    chain.for_each([](const x509::certificate& cert) {
      std::printf("  %s\n", cert.describe().c_str());
    });
    break;
  }
  std::printf(
      "\nNext: run the bench binaries (build/bench/fig*) to regenerate "
      "the paper's figures.\n");
  return 0;
}
