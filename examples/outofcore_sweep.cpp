// Out-of-core sweep walkthrough: runs the same census twice — once
// through the sharded spill → merge pipeline and once through the
// materializing in-memory baseline — and reports both aggregates plus
// each path's peak RSS. The smoke run uses a small population; pass a
// domain count to reproduce the paper-scale sweep, e.g.
//
//   ./outofcore_sweep 1000000 32     # 1M domains, 32 spill shards
//
// which is the census regime where the in-memory path starts to be
// bounded by the host rather than by the protocol.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include <unistd.h>

#include "core/outofcore_study.hpp"
#include "scan/classify.hpp"
#include "util/text_table.hpp"

using namespace certquic;

int main(int argc, char** argv) {
  const std::size_t domains =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20'000;
  const std::size_t shards =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 8;

  std::printf("generating %zu-domain population...\n", domains);
  const auto model = internet::model::generate({.domains = domains});

  core::outofcore_options opt;
  opt.max_services = 0;  // probe every QUIC service
  opt.shards = shards;
  opt.spill_dir = (std::filesystem::temp_directory_path() /
                   ("certquic_outofcore_sweep_" +
                    std::to_string(::getpid())))
                      .string();
  const core::outofcore_result result =
      core::run_outofcore_study(model, opt);
  std::error_code ec;
  std::filesystem::remove_all(opt.spill_dir, ec);

  std::printf("probed %zu QUIC services across %zu spill shards\n\n",
              result.sampled, result.shards);

  text_table table({"class", "spill+merge", "in-memory"});
  for (const auto cls :
       {scan::handshake_class::amplification,
        scan::handshake_class::multi_rtt, scan::handshake_class::retry,
        scan::handshake_class::one_rtt,
        scan::handshake_class::unreachable}) {
    table.add_row({scan::to_string(cls),
                   std::to_string(result.spill.count(cls)),
                   std::to_string(result.in_memory.count(cls))});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("aggregates identical : %s\n",
              result.identical ? "yes (bit-for-bit, including order)"
                               : "NO — pipeline bug");
  if (result.spill_peak_rss_kb > 0) {
    std::printf("peak RSS             : spill+merge %zu kB vs in-memory "
                "%zu kB (%+lld kB)\n",
                result.spill_peak_rss_kb, result.in_memory_peak_rss_kb,
                static_cast<long long>(result.in_memory_peak_rss_kb) -
                    static_cast<long long>(result.spill_peak_rss_kb));
  } else {
    std::printf("peak RSS             : not measurable on this platform\n");
  }
  return result.identical ? 0 : 1;
}
